// Table II: compression efficiency (CR, weighted CR, memory-footprint
// reduction, MSE) for the six models across the paper's δ grids.
#include "bench_util.hpp"

#include "core/metrics.hpp"
#include "eval/layer_selection.hpp"
#include "nn/models.hpp"

namespace {

const std::vector<double>& delta_grid(const std::string& model) {
  // The paper sweeps 0..20% for LeNet/AlexNet/Inception and 0..8% for the
  // models whose accuracy collapses earlier (VGG-16, MobileNet, ResNet50).
  static const std::vector<double> kWide{0, 5, 10, 15, 20};
  static const std::vector<double> kNarrow{0, 2, 4, 6, 8};
  if (model == "VGG-16" || model == "MobileNet" || model == "ResNet50") {
    return kNarrow;
  }
  return kWide;
}

}  // namespace

int main(int, char** argv) {
  using namespace nocw;
  const std::string dir = bench::output_dir(argv[0]);

  Table t({"Network Model", "delta", "CR", "Weighted CR", "Mem fp reduction",
           "MSE", "Mean |M_i|"});
  std::map<std::string, double> metrics;
  for (const auto& name : nn::model_names()) {
    nn::Model m = nn::make_model(name, /*seed=*/1);
    const int idx = eval::select_layer(m);
    const auto kernel = m.graph.layer(idx).kernel();
    const double fraction =
        static_cast<double>(m.graph.layer(idx).param_count()) /
        static_cast<double>(m.graph.total_params());
    for (double delta : delta_grid(name)) {
      core::CodecConfig cfg;
      cfg.delta_percent = delta;
      const core::CompressionReport r =
          core::assess_compression(kernel, fraction, cfg);
      // The widest δ is each model's headline compression point.
      if (delta == delta_grid(name).back()) {
        metrics[name + ".cr"] = r.cr;
        metrics[name + ".weighted_cr"] = r.weighted_cr;
      }
      t.add_row({name, fmt_pct(delta / 100.0), fmt_fixed(r.cr, 2),
                 fmt_fixed(r.weighted_cr, 2), fmt_pct(r.mem_fp_reduction),
                 fmt_sci(r.mse, 2), fmt_fixed(r.mean_segment_length, 2)});
    }
  }
  bench::emit("Table II: compression efficiency vs tolerance threshold", t,
              dir, "tab2_compression");
  bench::write_summary(dir, "tab2_compression", metrics);
  return 0;
}
