// Extension: time-series telemetry of a LeNet-5 inference.
//
// Runs the full accelerator simulation (compressed selected layer, real
// codec) twice — once with a TimeSeriesSet attached, once without — and
//   1. exports the sampled series (DRAM words, link flits, queue depth,
//      MAC/decompress activity over cycles) to results/timeseries_lenet5
//      .{json,csv} for the dashboard (tools/obs_dashboard.py);
//   2. checks that sampling is observation-only: latency and energy are
//      bit-identical with the sink attached and detached (exit 1 if not);
//   3. writes the run manifest + summary entry like every other bench.
// Knobs: NOCW_TS_INTERVAL (sampling interval, cycles), NOCW_TS_CAP
// (per-series point budget before ring compaction).
#include "bench_util.hpp"

#include <filesystem>
#include <fstream>
#include <system_error>
#include <vector>

#include "accel/simulator.hpp"
#include "core/codec.hpp"
#include "eval/layer_selection.hpp"
#include "nn/models.hpp"
#include "obs/log.hpp"
#include "obs/timeseries.hpp"

int main(int, char** argv) {
  using namespace nocw;
  const std::string dir = bench::output_dir(argv[0]);

  nn::Model m = nn::make_lenet5();
  const accel::ModelSummary summary = accel::summarize(m);

  // Compress the selected layer so the decompress series is populated.
  const int node = eval::select_layer(m);
  core::CodecConfig codec;
  codec.delta_percent = 10.0;
  const auto kernel = m.graph.layer(node).kernel();
  const std::vector<float> weights(kernel.begin(), kernel.end());
  const core::CompressedLayer comp = core::compress(weights, codec);
  accel::CompressionPlan plan;
  plan[m.graph.layer(node).name()] =
      accel::LayerCompression{comp.compressed_bits(), comp.original_count};

  accel::AccelConfig cfg;
  cfg.noc_window_flits = bench::noc_window();

  // Reference run: no sink attached (the production default).
  const accel::InferenceResult r_off =
      accel::AcceleratorSim(cfg).simulate(summary, &plan);

  // Instrumented run.
  obs::TimeSeriesSet series(obs::series_capacity());
  cfg.series = &series;
  cfg.series_interval_cycles = obs::series_interval_cycles();
  const accel::InferenceResult r_on =
      accel::AcceleratorSim(cfg).simulate(summary, &plan);

  const bool bit_identical =
      r_off.latency.total() == r_on.latency.total() &&
      r_off.energy.total() == r_on.energy.total();

  std::error_code ec;
  std::filesystem::create_directories(dir + "/results", ec);
  const std::string json_path =
      env_string("NOCW_TS_JSON", dir + "/results/timeseries_lenet5.json");
  const std::string csv_path = dir + "/results/timeseries_lenet5.csv";
  {
    std::ofstream out(json_path, std::ios::trunc);
    out << series.to_json();
  }
  {
    std::ofstream out(csv_path, std::ios::trunc);
    out << series.to_csv();
  }
  obs::log("time series written to %s (and .csv)\n", json_path.c_str());

  Table t({"Series", "Points", "Stride", "Unit"});
  std::map<std::string, double> metrics{
      {"latency_cycles", r_on.latency.total().value()},
      {"energy_j", r_on.energy.total().value()},
      {"bit_identical", bit_identical ? 1.0 : 0.0},
      {"series", static_cast<double>(series.size())}};
  for (const auto& name : series.names()) {
    const obs::TimeSeries s = series.series(name);
    metrics[name + ".points"] = static_cast<double>(s.size());
    t.add_row({name, std::to_string(s.size()),
               std::to_string(s.compaction_stride()), s.unit()});
  }
  bench::emit("Extension: time-series telemetry of a LeNet-5 inference", t,
              dir, "ext_timeseries");
  bench::write_summary(dir, "ext_timeseries", metrics, m.name);

  if (!bit_identical) {
    std::fprintf(stderr,
                 "time-series sampling changed simulation results\n");
    return 1;
  }
  return 0;
}
