// Table I: fraction of the parameters accounted by the layer selected for
// compression, for each network model.
#include "bench_util.hpp"

#include "eval/layer_selection.hpp"
#include "nn/models.hpp"

int main(int, char** argv) {
  using namespace nocw;
  const std::string dir = bench::output_dir(argv[0]);

  Table t({"Network Model", "no. params x1000", "Layer name", "Type",
           "Fraction"});
  std::map<std::string, double> metrics;
  for (const auto& name : nn::model_names()) {
    const nn::Model m = nn::make_model(name, /*seed=*/1);
    const int idx = eval::select_layer(m);
    const nn::Layer& layer = m.graph.layer(idx);
    const double fraction =
        static_cast<double>(layer.param_count()) /
        static_cast<double>(m.graph.total_params());
    const char* type =
        layer.type() == nn::LayerType::Dense ? "FC" : "CONV";
    metrics[name + ".selected_fraction"] = fraction;
    t.add_row({name,
               fmt_fixed(static_cast<double>(m.graph.total_params()) / 1000.0,
                         0),
               layer.name(), type, fmt_pct(fraction)});
  }
  bench::emit("Table I: layers selected for compression", t, dir,
              "tab1_layer_selection");
  bench::write_summary(dir, "tab1_layer_selection", metrics);
  return 0;
}
