// Fig. 10 (a)-(l): accuracy vs inference latency and accuracy vs inference
// energy for every model, sweeping the tolerance threshold δ. Latency and
// energy are normalized to the original (uncompressed) model and broken
// down into the paper's components. LeNet-5 reports genuine top-1 accuracy
// of the in-repo-trained network; the ImageNet-scale models report top-5
// agreement with their own uncompressed outputs (DESIGN.md §4).
#include "bench_util.hpp"

#include <cctype>

#include "accel/simulator.hpp"
#include "eval/flow.hpp"
#include "nn/models.hpp"
#include "obs/log.hpp"

namespace {

using namespace nocw;

const std::vector<double>& delta_grid(const std::string& model) {
  static const std::vector<double> kWide{0, 5, 10, 15, 20};
  static const std::vector<double> kNarrow{0, 2, 4, 6, 8};
  if (model == "VGG-16" || model == "MobileNet" || model == "ResNet50") {
    return kNarrow;
  }
  return kWide;
}

struct SeriesPoint {
  std::string label;
  double accuracy;
  accel::LatencyBreakdown latency;
  power::EnergyBreakdown energy;
};

void emit_model(const std::string& dir, const nn::Model& model,
                const std::vector<SeriesPoint>& series) {
  const units::FracCycles lat0 = series.front().latency.total();
  const units::Joules e0 = series.front().energy.total();

  Table lat({"Config", "Accuracy", "Memory", "Communication", "Computation",
             "Total latency"});
  for (const auto& p : series) {
    lat.add_row({p.label, fmt_fixed(p.accuracy, 4),
                 fmt_fixed(p.latency.memory_cycles / lat0, 3),
                 fmt_fixed(p.latency.comm_cycles / lat0, 3),
                 fmt_fixed(p.latency.compute_cycles / lat0, 3),
                 fmt_fixed(p.latency.total() / lat0, 3)});
  }
  bench::emit("Fig. 10: " + model.name + " accuracy vs normalized latency",
              lat, dir, "fig10_" + model.name + "_latency");

  Table en({"Config", "Accuracy", "Comm dyn", "Comm leak", "Comp dyn",
            "Comp leak", "LMem dyn", "LMem leak", "MMem dyn", "MMem leak",
            "Total energy"});
  for (const auto& p : series) {
    en.add_row({p.label, fmt_fixed(p.accuracy, 4),
                fmt_fixed(p.energy.communication.dynamic_j / e0, 3),
                fmt_fixed(p.energy.communication.leakage_j / e0, 3),
                fmt_fixed(p.energy.computation.dynamic_j / e0, 3),
                fmt_fixed(p.energy.computation.leakage_j / e0, 3),
                fmt_fixed(p.energy.local_memory.dynamic_j / e0, 3),
                fmt_fixed(p.energy.local_memory.leakage_j / e0, 3),
                fmt_fixed(p.energy.main_memory.dynamic_j / e0, 3),
                fmt_fixed(p.energy.main_memory.leakage_j / e0, 3),
                fmt_fixed(p.energy.total() / e0, 3)});
  }
  bench::emit("Fig. 10: " + model.name + " accuracy vs normalized energy",
              en, dir, "fig10_" + model.name + "_energy");
}

// Prefix for one model's summary metrics: "lenet-5.d10.latency_cycles"
// style keys feed the dashboard's δ-vs-latency/energy curves.
std::string metric_key(const std::string& model, const std::string& tail) {
  std::string lower = model;
  for (char& c : lower) c = static_cast<char>(std::tolower(c));
  return lower + "." + tail;
}

void run_model(const std::string& dir, nn::Model& model,
               eval::DeltaEvaluator& ev,
               std::map<std::string, double>& metrics) {
  const accel::ModelSummary summary = accel::summarize(model);
  accel::AccelConfig cfg;
  cfg.noc_window_flits = bench::noc_window();
  accel::AcceleratorSim sim(cfg);
  const accel::InferenceResult base = sim.simulate(summary);

  std::vector<SeriesPoint> series;
  series.push_back(SeriesPoint{model.name, ev.baseline_accuracy(),
                               base.latency, base.energy});
  // The δ points are independent; evaluate_many runs them concurrently on
  // the global thread pool (bit-identical to the serial sweep).
  const std::vector<eval::DeltaPoint> points =
      ev.evaluate_many(delta_grid(model.name));
  metrics[metric_key(model.name, "d0.latency_cycles")] =
      base.latency.total().value();
  metrics[metric_key(model.name, "d0.energy_j")] =
      base.energy.total().value();
  metrics[metric_key(model.name, "d0.accuracy")] = ev.baseline_accuracy();
  for (const eval::DeltaPoint& p : points) {
    accel::CompressionPlan plan;
    plan[ev.selected_layer()] = p.compression;
    const accel::InferenceResult comp = sim.simulate(summary, &plan);
    const std::string d = "d" + fmt_fixed(p.delta_percent, 0);
    metrics[metric_key(model.name, d + ".latency_cycles")] =
        comp.latency.total().value();
    metrics[metric_key(model.name, d + ".energy_j")] =
        comp.energy.total().value();
    metrics[metric_key(model.name, d + ".accuracy")] = p.accuracy;
    series.push_back(SeriesPoint{"x-" + fmt_fixed(p.delta_percent, 0),
                                 p.accuracy, comp.latency, comp.energy});
  }
  emit_model(dir, model, series);

  const auto& last = series.back();
  const double lat_red = 1.0 - last.latency.total() /
                                   series.front().latency.total();
  const double e_red =
      1.0 - last.energy.total() / series.front().energy.total();
  obs::log(
      "[%s] at delta=%s: latency -%s, energy -%s, accuracy %.4f "
      "(baseline %.4f)\n",
      model.name.c_str(), last.label.c_str(), fmt_pct(lat_red).c_str(),
      fmt_pct(e_red).c_str(), last.accuracy, series.front().accuracy);
}

}  // namespace

int main(int, char** argv) {
  const std::string dir = bench::output_dir(argv[0]);

  obs::RunManifest man = bench::bench_manifest("fig10_tradeoff");
  {
    // LeNet-5: genuinely trained; top-1 against held-out digits.
    bench::TrainedLenet lenet = bench::trained_lenet(dir);
    eval::EvalConfig cfg;
    cfg.topk = 1;
    eval::DeltaEvaluator ev(lenet.model, lenet.test, cfg);
    run_model(dir, lenet.model, ev, man.metrics);
    // The trained model's evaluation flow anchors the run's provenance.
    ev.annotate_manifest(man);
  }
  for (const auto& name : nn::model_names()) {
    if (name == "LeNet-5") continue;
    nn::Model m = nn::make_model(name, /*seed=*/1);
    eval::EvalConfig cfg;
    cfg.topk = 5;
    cfg.probes = bench::probe_count();
    obs::log("[%s] computing probe activations (%d probes)...\n",
             name.c_str(), cfg.probes);
    eval::DeltaEvaluator ev(m, cfg);
    run_model(dir, m, ev, man.metrics);
  }
  bench::write_summary(dir, man);
  return 0;
}
