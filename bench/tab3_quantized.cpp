// Table III: stacking the proposed compression on top of TFLite-style int8
// quantization, for LeNet-5 (trained, top-1), AlexNet and VGG-16 (top-5
// agreement). Reports the QT-alone weighted CR / accuracy and the stacked
// values per δ. As in the paper's own VGG row, small δ can dip below the
// QT-alone ratio (segment overhead on 8-bit codes); moderate δ wins.
#include "bench_util.hpp"

#include "eval/quantized_flow.hpp"
#include "nn/models.hpp"
#include "obs/log.hpp"

namespace {

using namespace nocw;

void run(Table& t, const std::string& name, eval::QuantizedDeltaEvaluator& ev,
         const std::vector<double>& grid,
         std::map<std::string, double>& metrics) {
  metrics[name + ".qt_weighted_cr"] = ev.baseline().weighted_cr;
  metrics[name + ".qt_accuracy"] = ev.baseline().accuracy;
  t.add_row({name, "QT alone", fmt_fixed(ev.baseline().weighted_cr, 2),
             fmt_fixed(ev.baseline().accuracy, 4)});
  for (double delta : grid) {
    const eval::QuantizedDeltaPoint p = ev.evaluate(delta);
    if (delta == grid.back()) {
      metrics[name + ".stacked_weighted_cr"] = p.weighted_cr;
      metrics[name + ".stacked_accuracy"] = p.accuracy;
    }
    t.add_row({name, fmt_pct(delta / 100.0), fmt_fixed(p.weighted_cr, 2),
               fmt_fixed(p.accuracy, 4)});
  }
}

}  // namespace

int main(int, char** argv) {
  const std::string dir = bench::output_dir(argv[0]);
  Table t({"Network Model", "delta", "Weighted CR", "Top-k Accuracy"});
  std::map<std::string, double> metrics;

  {
    bench::TrainedLenet lenet = bench::trained_lenet(dir);
    eval::QuantizedEvalConfig cfg;
    cfg.topk = 1;
    eval::QuantizedDeltaEvaluator ev(lenet.model, lenet.test, cfg);
    run(t, "LeNet-5", ev, {0, 5, 10, 15, 20}, metrics);
  }
  {
    nn::Model m = nn::make_alexnet();
    eval::QuantizedEvalConfig cfg;
    cfg.probes = bench::probe_count();
    eval::QuantizedDeltaEvaluator ev(m, cfg);
    run(t, "AlexNet", ev, {0, 5, 10, 15, 20}, metrics);
  }
  {
    nn::Model m = nn::make_vgg16();
    eval::QuantizedEvalConfig cfg;
    cfg.probes = bench::probe_count();
    obs::log("[VGG-16] two full-resolution probe passes, be patient...\n");
    eval::QuantizedDeltaEvaluator ev(m, cfg);
    run(t, "VGG-16", ev, {0, 5, 7, 8, 10}, metrics);
  }

  bench::emit("Table III: quantization + proposed compression", t, dir,
              "tab3_quantized");
  bench::write_summary(dir, "tab3_quantized", metrics);
  return 0;
}
