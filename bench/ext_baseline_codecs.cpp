// Extension: measure (rather than assert) the paper's Sec. III-B claim that
// traditional lossless compressors cannot compress CNN weight streams,
// while the proposed lossy codec can. RLE and Huffman run on the serialized
// bytes of each data set; the proposed codec runs on the weight succession
// at δ=10%.
#include "bench_util.hpp"

#include "core/baseline_codecs.hpp"
#include "core/codec.hpp"
#include "core/entropy.hpp"
#include "eval/layer_selection.hpp"
#include "nn/models.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

int main(int, char** argv) {
  using namespace nocw;
  const std::string dir = bench::output_dir(argv[0]);

  Table t({"Data set", "Entropy (b/B)", "RLE CR", "Huffman CR",
           "Proposed CR (d=10%, lossy)"});

  auto add_bytes_row = [&](const std::string& name,
                           std::span<const std::uint8_t> bytes) {
    const double h = shannon_entropy_bytes(bytes);
    const double rle =
        core::lossless_cr(bytes.size(), core::rle_encode(bytes).size());
    const double huff =
        core::lossless_cr(bytes.size(), core::huffman_encode(bytes).size());
    t.add_row({name, fmt_fixed(h, 2), fmt_fixed(rle, 2), fmt_fixed(huff, 2),
               "-"});
  };

  // Reference byte streams.
  {
    Xoshiro256pp rng(13);
    std::vector<std::uint8_t> random(1 << 20);
    for (auto& b : random) b = static_cast<std::uint8_t>(rng() & 0xFF);
    add_bytes_row("Random data", random);
  }
  {
    const std::string text = core::sample_text(1 << 18);
    add_bytes_row("Text file",
                  std::span<const std::uint8_t>(
                      reinterpret_cast<const std::uint8_t*>(text.data()),
                      text.size()));
  }

  // Weight streams: lossless baselines vs the proposed lossy codec.
  std::map<std::string, double> metrics;
  for (const auto& name : {"LeNet-5", "MobileNet"}) {
    nn::Model m = nn::make_model(name, /*seed=*/1);
    const int idx = eval::select_layer(m);
    const auto kernel = m.graph.layer(idx).kernel();
    const auto bytes = core::weights_as_bytes(kernel);
    const double h = shannon_entropy_bytes(bytes);
    const double rle =
        core::lossless_cr(bytes.size(), core::rle_encode(bytes).size());
    const double huff =
        core::lossless_cr(bytes.size(), core::huffman_encode(bytes).size());
    core::CodecConfig cfg;
    cfg.delta_percent = 10.0;
    const auto layer = core::compress(kernel, cfg);
    metrics[std::string(name) + ".rle_cr"] = rle;
    metrics[std::string(name) + ".huffman_cr"] = huff;
    metrics[std::string(name) + ".proposed_cr"] = layer.compression_ratio();
    t.add_row({std::string(name) + " weights", fmt_fixed(h, 2),
               fmt_fixed(rle, 2), fmt_fixed(huff, 2),
               fmt_fixed(layer.compression_ratio(), 2)});
  }

  bench::emit(
      "Extension: lossless baselines vs the proposed codec (Sec. III-B)", t,
      dir, "ext_baseline_codecs");
  bench::write_summary(dir, "ext_baseline_codecs", metrics);
  return 0;
}
