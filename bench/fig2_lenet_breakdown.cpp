// Fig. 2: normalized latency and energy breakdown, layer by layer, for a
// LeNet-5 inference on the 4x4 NoC accelerator. The paper's observation:
// main memory dominates latency; communication + main memory dominate
// energy.
#include "bench_util.hpp"

#include "accel/simulator.hpp"
#include "nn/models.hpp"

int main(int, char** argv) {
  using namespace nocw;
  const std::string dir = bench::output_dir(argv[0]);

  const nn::Model m = nn::make_lenet5();
  const accel::ModelSummary summary = accel::summarize(m);
  accel::AccelConfig cfg;
  cfg.noc_window_flits = bench::noc_window();
  accel::AcceleratorSim sim(cfg);
  const accel::InferenceResult r = sim.simulate(summary);

  const units::FracCycles total_lat = r.latency.total();
  Table lat({"Layer", "Memory", "Communication", "Computation",
             "Layer share"});
  for (const auto& l : r.layers) {
    lat.add_row({l.name, fmt_pct(l.latency.memory_cycles / total_lat, 1),
                 fmt_pct(l.latency.comm_cycles / total_lat, 1),
                 fmt_pct(l.latency.compute_cycles / total_lat, 1),
                 fmt_pct(l.latency.total() / total_lat, 1)});
  }
  lat.add_row({"TOTAL (cycles)",
               fmt_fixed(r.latency.memory_cycles.value(), 0),
               fmt_fixed(r.latency.comm_cycles.value(), 0),
               fmt_fixed(r.latency.compute_cycles.value(), 0),
               fmt_fixed(total_lat.value(), 0)});
  bench::emit("Fig. 2 (left): normalized latency breakdown per layer", lat,
              dir, "fig2_latency");

  const units::Joules total_e = r.energy.total();
  Table en({"Layer", "Comm dyn", "Comm leak", "Comp dyn", "Comp leak",
            "LocalMem dyn", "LocalMem leak", "MainMem dyn", "MainMem leak"});
  for (const auto& l : r.layers) {
    en.add_row({l.name,
                fmt_pct(l.energy.communication.dynamic_j / total_e, 2),
                fmt_pct(l.energy.communication.leakage_j / total_e, 2),
                fmt_pct(l.energy.computation.dynamic_j / total_e, 2),
                fmt_pct(l.energy.computation.leakage_j / total_e, 2),
                fmt_pct(l.energy.local_memory.dynamic_j / total_e, 2),
                fmt_pct(l.energy.local_memory.leakage_j / total_e, 2),
                fmt_pct(l.energy.main_memory.dynamic_j / total_e, 2),
                fmt_pct(l.energy.main_memory.leakage_j / total_e, 2)});
  }
  en.add_row({"TOTAL (uJ)",
              fmt_fixed(r.energy.communication.dynamic_j.value() * 1e6, 3),
              fmt_fixed(r.energy.communication.leakage_j.value() * 1e6, 3),
              fmt_fixed(r.energy.computation.dynamic_j.value() * 1e6, 3),
              fmt_fixed(r.energy.computation.leakage_j.value() * 1e6, 3),
              fmt_fixed(r.energy.local_memory.dynamic_j.value() * 1e6, 3),
              fmt_fixed(r.energy.local_memory.leakage_j.value() * 1e6, 3),
              fmt_fixed(r.energy.main_memory.dynamic_j.value() * 1e6, 3),
              fmt_fixed(r.energy.main_memory.leakage_j.value() * 1e6, 3)});
  bench::emit("Fig. 2 (right): normalized energy breakdown per layer", en,
              dir, "fig2_energy");

  bench::write_summary(
      dir, "fig2_lenet_breakdown",
      {{"latency_cycles", total_lat.value()},
       {"memory_cycles", r.latency.memory_cycles.value()},
       {"comm_cycles", r.latency.comm_cycles.value()},
       {"compute_cycles", r.latency.compute_cycles.value()},
       {"energy_j", total_e.value()}},
      m.name);
  return 0;
}
