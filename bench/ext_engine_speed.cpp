// Event-driven NoC engine vs the dense reference on the fig10-style
// LeNet-5 δ-sweep (DESIGN.md §11).
//
// Both arms run the identical workload: a baseline inference plus one
// inference per δ grid point, each δ replacing only the selected layer's
// weight stream. The dense arm is the pre-event-engine configuration
// (per-cycle drain scan, no phase memoization); the event arm uses the O(1)
// drain engine with the phase-compilation cache, which rebuilds only the
// recompressed layer's flit stream per point. The arms must agree
// bit-for-bit on every latency and energy number — the speedup is recorded
// in BENCH_summary.json (ext_engine_speed.speedup) and the bench fails if
// the event engine is ever slower or any number diverges.
#include "bench_util.hpp"

#include <chrono>
#include <cstdio>
#include <vector>

#include "accel/simulator.hpp"
#include "eval/flow.hpp"
#include "nn/models.hpp"
#include "obs/log.hpp"

namespace {

using namespace nocw;

struct ArmResult {
  double wall_ms = 0.0;
  /// Baseline first, then one entry per δ point, in grid order.
  std::vector<double> latency_cycles;
  std::vector<double> energy_j;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
};

ArmResult run_arm(noc::EngineMode engine, bool reuse_phases,
                  const accel::ModelSummary& summary,
                  const eval::DeltaEvaluator& ev,
                  const std::vector<eval::DeltaPoint>& points) {
  accel::AccelConfig cfg;
  cfg.noc_window_flits = bench::noc_window();
  cfg.noc.engine = engine;
  cfg.reuse_noc_phases = reuse_phases;
  accel::AcceleratorSim sim(cfg);

  ArmResult out;
  const auto t0 = std::chrono::steady_clock::now();
  const accel::InferenceResult base = sim.simulate(summary);
  out.latency_cycles.push_back(base.latency.total().value());
  out.energy_j.push_back(base.energy.total().value());
  for (const eval::DeltaPoint& p : points) {
    accel::CompressionPlan plan;
    plan[ev.selected_layer()] = p.compression;
    const accel::InferenceResult comp = sim.simulate(summary, &plan);
    out.latency_cycles.push_back(comp.latency.total().value());
    out.energy_j.push_back(comp.energy.total().value());
  }
  out.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  out.cache_hits = sim.noc_phase_cache_hits();
  out.cache_misses = sim.noc_phase_cache_misses();
  return out;
}

}  // namespace

int main(int, char** argv) {
  const std::string dir = bench::output_dir(argv[0]);
  obs::RunManifest man = bench::bench_manifest("ext_engine_speed", "LeNet-5");

  // Shared, untimed preparation: train/load LeNet-5 and compress the
  // selected layer at every δ once. The timed arms differ only in the NoC
  // engine and the phase cache.
  bench::TrainedLenet lenet = bench::trained_lenet(dir);
  eval::EvalConfig ecfg;
  ecfg.topk = 1;
  eval::DeltaEvaluator ev(lenet.model, lenet.test, ecfg);
  const std::vector<double> grid{0, 2, 4, 6, 8, 10, 12, 14, 16, 18};
  const std::vector<eval::DeltaPoint> points = ev.evaluate_many(grid);
  const accel::ModelSummary summary = accel::summarize(lenet.model);

  const ArmResult dense = run_arm(noc::EngineMode::Dense,
                                  /*reuse_phases=*/false, summary, ev, points);
  const ArmResult event = run_arm(noc::EngineMode::Event,
                                  /*reuse_phases=*/true, summary, ev, points);

  // Equivalence gate: the event engine and the cache are speed levers only.
  bool identical = dense.latency_cycles.size() == event.latency_cycles.size();
  for (std::size_t i = 0; identical && i < dense.latency_cycles.size(); ++i) {
    identical = dense.latency_cycles[i] == event.latency_cycles[i] &&
                dense.energy_j[i] == event.energy_j[i];
  }
  const double speedup =
      event.wall_ms > 0.0 ? dense.wall_ms / event.wall_ms : 0.0;

  Table t({"Engine", "Wall ms", "Speedup", "Cache hits", "Cache misses",
           "d0 latency", "d18 latency"});
  t.add_row({"dense", fmt_fixed(dense.wall_ms, 1), "1.00",
             std::to_string(dense.cache_hits),
             std::to_string(dense.cache_misses),
             fmt_fixed(dense.latency_cycles.front(), 0),
             fmt_fixed(dense.latency_cycles.back(), 0)});
  t.add_row({"event", fmt_fixed(event.wall_ms, 1), fmt_fixed(speedup, 2),
             std::to_string(event.cache_hits),
             std::to_string(event.cache_misses),
             fmt_fixed(event.latency_cycles.front(), 0),
             fmt_fixed(event.latency_cycles.back(), 0)});
  bench::emit("Engine speed: dense reference vs event-driven δ-sweep", t,
              dir, "ext_engine_speed");

  man.metrics["dense_ms"] = dense.wall_ms;
  man.metrics["event_ms"] = event.wall_ms;
  man.metrics["speedup"] = speedup;
  man.metrics["delta_points"] = static_cast<double>(points.size());
  man.metrics["cache_hits"] = static_cast<double>(event.cache_hits);
  man.metrics["cache_misses"] = static_cast<double>(event.cache_misses);
  man.metrics["results_identical"] = identical ? 1.0 : 0.0;
  ev.annotate_manifest(man);
  bench::write_summary(dir, man);

  if (!identical) {
    std::fprintf(stderr,
                 "ERROR: event engine diverged from the dense reference\n");
    return 1;
  }
  if (speedup < 1.0) {
    std::fprintf(stderr,
                 "ERROR: event engine slower than dense (%.2fx)\n", speedup);
    return 1;
  }
  obs::log("[engine] %.1f ms dense -> %.1f ms event (%.2fx, %llu cache "
           "hits)\n",
           dense.wall_ms, event.wall_ms, speedup,
           static_cast<unsigned long long>(event.cache_hits));
  return 0;
}
