// Fig. 4/5: pictorial behaviour of the compression technique.
//
// Fig. 4: a small parameter succession clustered into weakly monotonic
// sub-successions, each replaced by its least-squares line. Fig. 5: the
// pairwise-alternating worst case, which yields CR ~ 1 under the strict
// criterion and collapses to a single segment once δ covers the amplitude.
#include "bench_util.hpp"

#include "core/codec.hpp"
#include "core/linefit.hpp"
#include "core/segment.hpp"
#include "util/rng.hpp"

int main(int, char** argv) {
  using namespace nocw;
  const std::string dir = bench::output_dir(argv[0]);

  // --- Fig. 4: 18 parameters -> segments + fitted lines -------------------
  Xoshiro256pp rng(2020);
  std::vector<float> w(18);
  for (auto& x : w) x = static_cast<float>(rng.normal(0.0, 1.0));
  core::SegmenterConfig scfg;
  const auto segments = core::segment_weights(w, scfg);

  Table fig4({"Segment", "First idx", "Length", "m (slope)", "q (intercept)",
              "Fit SSE"});
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const auto& s = segments[i];
    const core::LineFit fit = core::fit_line(
        std::span<const float>(w).subspan(s.first, s.length));
    fig4.add_row({"M" + std::to_string(i + 1), std::to_string(s.first),
                  std::to_string(s.length), fmt_fixed(fit.m, 4),
                  fmt_fixed(fit.q, 4), fmt_sci(fit.sse, 2)});
  }
  bench::emit("Fig. 4: segmentation of an 18-parameter succession (delta=0)",
              fig4, dir, "fig4_segments");

  // --- Fig. 5: worst case, strict vs weak criterion ------------------------
  std::vector<float> alt;
  for (int i = 0; i < 9; ++i) {
    alt.push_back(0.0F);
    alt.push_back(1.0F);
  }
  Table fig5({"Criterion", "delta", "Segments m", "CR (32b coeffs)",
              "Note"});
  std::map<std::string, double> metrics{
      {"fig4.segments", static_cast<double>(segments.size())}};
  for (double delta : {0.0, 1.0}) {
    core::CodecConfig cfg;
    // Express delta as percent of range (range is 1.0 here).
    cfg.delta_percent = delta * 100.0;
    const auto layer = core::compress(alt, cfg);
    metrics[delta == 0.0 ? "fig5.strict_cr" : "fig5.weak_cr"] =
        layer.compression_ratio();
    fig5.add_row({delta == 0.0 ? "strict (Fig. 5a)" : "weak (Fig. 5b)",
                  fmt_fixed(delta, 1), std::to_string(layer.segments.size()),
                  fmt_fixed(layer.compression_ratio(), 2),
                  delta == 0.0 ? "m = n/2, no compression"
                               : "single segment"});
  }
  bench::emit("Fig. 5: pairwise-alternating worst case", fig5, dir,
              "fig5_worst_case");
  bench::write_summary(dir, "fig45_segmentation_demo", metrics);
  return 0;
}
