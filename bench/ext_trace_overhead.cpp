// Extension: cost of the observability subsystem on a LeNet-5 inference.
//
// Two claims are measured on the full accelerator simulation (compressed
// selected layer, real codec):
//   1. tracing disabled (NOCW_TRACE=0, the default) is free — the per-hop
//      gate is one relaxed atomic load, priced here by a microbench and
//      scaled by the run's actual gate-check count;
//   2. tracing never feeds back into simulation state — latency and energy
//      are bit-identical with the tracer on and off.
// The enabled run's event stream is exported to results/trace_lenet5.json
// (Chrome-trace JSON, drag into ui.perfetto.dev) and the measurements to
// BENCH_trace.json for CI trending.
#include "bench_util.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <system_error>
#include <vector>

#include "accel/simulator.hpp"
#include "core/codec.hpp"
#include "core/decompressor_unit.hpp"
#include "eval/layer_selection.hpp"
#include "nn/models.hpp"
#include "obs/log.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double run_ms(const nocw::accel::AcceleratorSim& sim,
              const nocw::accel::ModelSummary& summary,
              const nocw::accel::CompressionPlan& plan,
              nocw::accel::InferenceResult& out) {
  const auto t0 = Clock::now();
  out = sim.simulate(summary, &plan);
  const auto t1 = Clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

}  // namespace

int main(int, char** argv) {
  using namespace nocw;
  const std::string dir = bench::output_dir(argv[0]);

  // Bench defaults (user env wins): sample every 4th hop and widen the ring
  // so one full LeNet-5 inference fits without dropping the early layers.
  ::setenv("NOCW_TRACE_BUF", "262144", /*overwrite=*/0);
  if (std::getenv("NOCW_TRACE_SAMPLE") == nullptr) {
    obs::Tracer::set_sample_every(4);
  }

  nn::Model m = nn::make_lenet5();
  const accel::ModelSummary summary = accel::summarize(m);
  accel::AccelConfig cfg;
  cfg.noc_window_flits = bench::noc_window();
  accel::AcceleratorSim sim(cfg);

  // Compress the selected layer with the real codec so the simulation (and
  // the trace) includes the decompression phase.
  const int node = eval::select_layer(m);
  const auto kernel = m.graph.layer(node).kernel();
  core::CodecConfig codec;
  codec.delta_percent = 2.0;
  const std::vector<float> weights(kernel.begin(), kernel.end());
  const core::CompressedLayer comp = core::compress(weights, codec);
  accel::CompressionPlan plan;
  plan[m.graph.layer(node).name()] =
      accel::LayerCompression{comp.compressed_bits(), comp.original_count};

  const int reps = static_cast<int>(env_int("REPRO_TRACE_REPS", 5, 1));

  // --- tracing runtime-disabled (the NOCW_TRACE=0 default) ---
  obs::Tracer::set_enabled(false);
  accel::InferenceResult r_off;
  std::vector<double> off_ms;
  for (int i = 0; i < reps; ++i) off_ms.push_back(run_ms(sim, summary, plan, r_off));

  // --- tracing enabled, all categories ---
  obs::Tracer::set_enabled(true);
  obs::Tracer::set_categories(obs::kCatAll);
  obs::Tracer::global().clear();
  accel::InferenceResult r_on;
  const double on_ms = run_ms(sim, summary, plan, r_on);
  {
    // Drive the cycle-level decompressor FSM over the real segments so the
    // trace carries its Init/Run phase spans too (the simulator charges
    // decompression analytically).
    core::DecompressorUnit unit;
    const std::size_t n =
        std::min<std::size_t>(comp.segments.size(), 64);
    for (std::size_t i = 0; i < n; ++i) {
      unit.load(comp.segments[i]);
      while (unit.busy()) (void)unit.tick();
    }
  }
  const std::uint64_t events = obs::Tracer::global().recorded();
  const std::uint64_t dropped = obs::Tracer::global().dropped();
  std::error_code ec;
  std::filesystem::create_directories(dir + "/results", ec);
  const std::string trace_path =
      env_string("NOCW_TRACE_OUT", dir + "/results/trace_lenet5.json");
  const bool wrote = obs::write_chrome_trace(trace_path);
  obs::Tracer::set_enabled(false);

  // Tracing must be observation-only: identical latency/energy on and off.
  const bool bit_identical =
      r_off.latency.total() == r_on.latency.total() &&
      r_off.energy.total() == r_on.energy.total();

  // --- price of the disabled gate ---
  // One gate = the exact check every instrumented hot-path site performs.
  const std::uint64_t gate_iters = 1u << 24;
  volatile std::uint64_t sink = 0;
  const auto g0 = Clock::now();
  for (std::uint64_t i = 0; i < gate_iters; ++i) {
    if (NOCW_TRACE_ON(obs::kCatNoc)) sink = sink + 1;
  }
  const auto g1 = Clock::now();
  const double gate_ns =
      std::chrono::duration<double, std::nano>(g1 - g0).count() /
      static_cast<double>(gate_iters);
  // Gate checks per inference: one per link hop + one per ejected flit +
  // one per packet injection (the instrumented NoC sites), from the enabled
  // run's observation.
  std::uint64_t checks = 0;
  for (const std::uint64_t v : r_on.noc_obs.link_flits) checks += v;
  for (const std::uint64_t v : r_on.noc_obs.node_ejections) checks += v;
  const double off_med_ms = median(off_ms);
  const double disabled_overhead_pct =
      static_cast<double>(checks) * gate_ns / (off_med_ms * 1e6) * 100.0;

  Table t({"config", "wall ms", "events", "notes"});
  t.add_row({"trace off (median of " + std::to_string(reps) + ")",
             fmt_fixed(off_med_ms, 2), "0",
             "gate " + fmt_fixed(gate_ns, 2) + " ns; est. overhead " +
                 fmt_fixed(disabled_overhead_pct, 4) + "%"});
  t.add_row({"trace on", fmt_fixed(on_ms, 2), std::to_string(events),
             std::string(bit_identical ? "bit-identical results"
                                       : "RESULTS DIVERGED") +
                 ", " + std::to_string(dropped) + " dropped"});
  bench::emit("Extension: tracer overhead on LeNet-5 inference", t, dir,
              "ext_trace_overhead");
  if (wrote) obs::log("trace written to %s\n", trace_path.c_str());

  const std::string json_path =
      env_string("NOCW_TRACE_JSON", "BENCH_trace.json");
  if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"model\": \"LeNet-5\",\n");
    std::fprintf(f, "  \"reps\": %d,\n", reps);
    std::fprintf(f, "  \"disabled_ms_median\": %.4f,\n", off_med_ms);
    std::fprintf(f, "  \"enabled_ms\": %.4f,\n", on_ms);
    std::fprintf(f, "  \"gate_check_ns\": %.4f,\n", gate_ns);
    std::fprintf(f, "  \"gate_checks_per_inference\": %llu,\n",
                 static_cast<unsigned long long>(checks));
    std::fprintf(f, "  \"disabled_overhead_pct\": %.6f,\n",
                 disabled_overhead_pct);
    std::fprintf(f, "  \"disabled_overhead_under_1pct\": %s,\n",
                 disabled_overhead_pct < 1.0 ? "true" : "false");
    std::fprintf(f, "  \"bit_identical\": %s,\n",
                 bit_identical ? "true" : "false");
    std::fprintf(f, "  \"trace_events\": %llu,\n",
                 static_cast<unsigned long long>(events));
    std::fprintf(f, "  \"trace_events_dropped\": %llu,\n",
                 static_cast<unsigned long long>(dropped));
    std::fprintf(f, "  \"latency_total_cycles\": %.0f,\n",
                 r_on.latency.total());
    std::fprintf(f, "  \"energy_total_j\": %.9g\n",
                 r_on.energy.total().value());
    std::fprintf(f, "}\n");
    std::fclose(f);
    obs::log("trace-overhead results written to %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
    return 1;
  }

  bench::write_summary(
      dir, "ext_trace_overhead",
      {{"disabled_ms_median", off_med_ms},
       {"enabled_ms", on_ms},
       {"disabled_overhead_pct", disabled_overhead_pct},
       {"bit_identical", bit_identical ? 1.0 : 0.0},
       {"trace_events", static_cast<double>(events)},
       {"trace_events_dropped", static_cast<double>(dropped)},
       {"latency_cycles", r_on.latency.total().value()},
       {"energy_j", r_on.energy.total().value()}},
      m.name);
  return bit_identical && wrote ? 0 : 1;
}
