// Shared plumbing for the reproduction benches.
//
// Every bench prints its table(s) to stdout and mirrors them to
// <exe-dir>/<name>.csv. Scale knobs come from the environment:
//   REPRO_PROBES  probe inputs per model for accuracy evaluation (default 4)
//   REPRO_TRAIN   LeNet-5 training samples (default 1200)
//   REPRO_EPOCHS  LeNet-5 training epochs (default 5)
//   REPRO_WINDOW  NoC sampling window in flits (default 24000)
// Defaults finish the full bench suite in minutes on one laptop core.
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>

#include "nn/digits.hpp"
#include "nn/models.hpp"
#include "obs/manifest.hpp"
#include "util/env.hpp"
#include "util/table.hpp"

namespace nocw::bench {

inline int probe_count() {
  return static_cast<int>(env_int("REPRO_PROBES", 6, 1));
}

inline std::uint64_t noc_window() {
  return static_cast<std::uint64_t>(env_int("REPRO_WINDOW", 24000, 1));
}

/// Directory of the running executable (argv[0] based), for CSV output.
std::string output_dir(const char* argv0);

/// Print a titled table and write it to `<dir>/<slug>.csv`.
void emit(const std::string& title, const Table& table,
          const std::string& dir, const std::string& slug);

/// LeNet-5 trained on the procedural digit set. Trains once per build tree:
/// the checkpoint is cached at `<dir>/lenet5_trained.weights` and reloaded
/// by every subsequent bench. Returns the model and its held-out test set.
struct TrainedLenet {
  nn::Model model;
  nn::Dataset test;
  double test_accuracy = 0.0;
};
TrainedLenet trained_lenet(const std::string& cache_dir);

/// Run manifest for this bench: provenance, environment and thread count
/// pre-filled (obs::make_manifest), wall_seconds measured since process
/// start. Benches add config strings / metrics (or let an evaluator's
/// annotate_manifest do it) before handing it to write_summary.
obs::RunManifest bench_manifest(const std::string& bench_name,
                                const std::string& model = "");

/// Record a bench's headline results:
///  - writes `<dir>/results/run_<tool>.json`, the bench's provenance
///    manifest (schema nocw.manifest.v1);
///  - upserts one `"<tool>": {...}` line into the aggregated summary
///    (default `<dir>/results/BENCH_summary.json`, path overridable via
///    NOCW_SUMMARY_JSON; schema nocw.bench_summary.v1, one bench per line
///    so independent binaries merge without a JSON parser).
/// Every bench calls this exactly once — tools/lint.py's [manifest] rule
/// enforces registration. This is the single writer of the summary file.
void write_summary(const std::string& dir, const obs::RunManifest& m);

/// Convenience: bench_manifest(name, model) + metrics + write_summary.
void write_summary(const std::string& dir, const std::string& bench_name,
                   const std::map<std::string, double>& metrics,
                   const std::string& model = "");

/// Times this process re-registered a tool that had already written its
/// summary entry. A re-run within one process cannot duplicate the tool's
/// key — the merge is last-writer-wins — but it usually means a bench
/// registered twice by accident, so each repeat warns on stderr and bumps
/// this counter (exposed for tests).
std::uint64_t duplicate_summary_writes();

}  // namespace nocw::bench
