// Ablation: how the compression win depends on the interconnect
// configuration. Not a paper figure — DESIGN.md calls these design choices
// out; this bench quantifies them. Sweeps mesh size, buffer depth, packet
// size and routing order, reporting the LeNet-5 inference latency/energy
// with and without compressing dense_1 at δ=15%.
#include "bench_util.hpp"

#include "accel/simulator.hpp"
#include "core/codec.hpp"
#include "eval/layer_selection.hpp"
#include "nn/models.hpp"

namespace {

using namespace nocw;

struct Variant {
  std::string name;
  accel::AccelConfig cfg;
};

}  // namespace

int main(int, char** argv) {
  const std::string dir = bench::output_dir(argv[0]);

  nn::Model model = nn::make_lenet5();
  const accel::ModelSummary summary = accel::summarize(model);

  // Build the δ=15% plan once.
  const int selected = eval::select_layer(model);
  core::CodecConfig ccfg;
  ccfg.delta_percent = 15.0;
  const core::CompressedLayer compressed =
      core::compress(model.graph.layer(selected).kernel(), ccfg);
  accel::CompressionPlan plan;
  plan[model.graph.layer(selected).name()] = accel::LayerCompression{
      compressed.compressed_bits(), compressed.original_count};

  std::vector<Variant> variants;
  {
    Variant v{"baseline 4x4 / depth 4 / pkt 32 / XY", {}};
    variants.push_back(v);
  }
  for (int depth : {2, 8}) {
    Variant v{"buffer depth " + std::to_string(depth), {}};
    v.cfg.noc.buffer_depth = depth;
    variants.push_back(v);
  }
  for (std::uint32_t pkt : {8u, 128u}) {
    Variant v{"packet " + std::to_string(pkt) + " flits", {}};
    v.cfg.packet_flits = pkt;
    variants.push_back(v);
  }
  {
    Variant v{"YX routing", {}};
    v.cfg.noc.routing = noc::Routing::YX;
    variants.push_back(v);
  }
  {
    Variant v{"6x6 mesh (32 PEs)", {}};
    v.cfg.noc.width = 6;
    v.cfg.noc.height = 6;
    variants.push_back(v);
  }
  {
    Variant v{"128-bit links", {}};
    v.cfg.noc.link_width_bits = 128;
    variants.push_back(v);
  }
  for (int vcs : {2, 4}) {
    Variant v{std::to_string(vcs) + " virtual channels", {}};
    v.cfg.noc.virtual_channels = vcs;
    variants.push_back(v);
  }
  {
    Variant v{"overlapped phases (double buffering)", {}};
    v.cfg.overlap_phases = true;
    variants.push_back(v);
  }

  Table t({"Variant", "Latency (cyc)", "Latency x-15 (cyc)", "Latency gain",
           "Energy (uJ)", "Energy x-15 (uJ)", "Energy gain"});
  std::map<std::string, double> metrics;
  for (auto& v : variants) {
    v.cfg.noc_window_flits = bench::noc_window();
    accel::AcceleratorSim sim(v.cfg);
    const accel::InferenceResult base = sim.simulate(summary);
    const accel::InferenceResult comp = sim.simulate(summary, &plan);
    const double base_lat = (v.cfg.overlap_phases
                                ? base.latency.overlap_cycles
                                : base.latency.total()).value();
    const double comp_lat = (v.cfg.overlap_phases
                                ? comp.latency.overlap_cycles
                                : comp.latency.total()).value();
    if (v.name.rfind("baseline", 0) == 0) {
      metrics["baseline.latency_cycles"] = base_lat;
      metrics["baseline.latency_x15_cycles"] = comp_lat;
      metrics["baseline.energy_j"] = base.energy.total().value();
      metrics["baseline.energy_x15_j"] = comp.energy.total().value();
    }
    t.add_row({v.name, fmt_fixed(base_lat, 0), fmt_fixed(comp_lat, 0),
               fmt_pct(1.0 - comp_lat / base_lat),
               fmt_fixed(base.energy.total().value() * 1e6, 2),
               fmt_fixed(comp.energy.total().value() * 1e6, 2),
               fmt_pct(1.0 - comp.energy.total() / base.energy.total())});
  }
  bench::emit("Ablation: interconnect configuration vs compression win", t,
              dir, "ablation_noc");
  bench::write_summary(dir, "ablation_noc", metrics, model.name);
  return 0;
}
