// Extension: accuracy under transmission faults, and what CRC-protected
// flits + MI→PE retransmission cost to win it back. Not a paper figure — the
// paper transmits the compressed stream over an ideal NoC; this bench
// quantifies the fragility that compression adds (one flipped bit corrupts a
// whole ⟨m, q, len⟩ segment) and prices the recovery hardware on the
// cycle-accurate simulator. Deterministic for a fixed seed: the table, CSV
// and BENCH_fault.json are bit-identical across runs and NOCW_THREADS.
#include "bench_util.hpp"

#include "eval/fault_sweep.hpp"
#include "obs/log.hpp"

int main(int, char** argv) {
  using namespace nocw;
  const std::string dir = bench::output_dir(argv[0]);

  bench::TrainedLenet lenet = bench::trained_lenet(dir);

  eval::FaultSweepConfig cfg;
  cfg.bit_error_rates = {1e-6, 1e-5, 1e-4, 1e-3};
  cfg.delta_percents = {0.0, 10.0};
  cfg.trials = static_cast<int>(env_int("REPRO_FAULT_TRIALS", 3, 1));
  cfg.fault_seed =
      static_cast<std::uint64_t>(env_int("REPRO_FAULT_SEED", 90210, 0));
  cfg.topk = 1;
  cfg.noc_flits = bench::noc_window() / 6;  // weight stream only
  cfg.noc.fault.router_stall_probability = 1e-4;  // background control noise

  const eval::FaultSweepResult sweep =
      eval::run_fault_sweep(lenet.model, lenet.test, cfg);

  Table t({"BER", "delta", "acc clean", "acc uncompressed", "acc compressed",
           "acc protected", "seg corrupted", "cycles +CRC", "energy +CRC",
           "retx", "drops"});
  for (const auto& p : sweep.points) {
    const double cyc_over = p.unprotected_cycles > units::FracCycles{0.0}
                                ? p.protected_cycles / p.unprotected_cycles
                                : 1.0;
    const double e_over = p.unprotected_energy_j > units::Joules{0.0}
                              ? p.protected_energy_j / p.unprotected_energy_j
                              : 1.0;
    t.add_row({fmt_sci(p.bit_error_rate, 0),
               fmt_pct(p.delta_percent / 100.0), fmt_fixed(p.accuracy_clean, 4),
               fmt_fixed(p.accuracy_uncompressed, 4),
               fmt_fixed(p.accuracy_compressed, 4),
               fmt_fixed(p.accuracy_protected, 4),
               fmt_pct(p.corrupted_segment_fraction, 1),
               "x" + fmt_fixed(cyc_over, 3), "x" + fmt_fixed(e_over, 3),
               std::to_string(p.retransmissions),
               std::to_string(p.packets_dropped)});
  }
  obs::log("selected layer: %s; fault-free baseline accuracy %.4f\n",
           sweep.selected_layer.c_str(), sweep.baseline_accuracy);
  bench::emit("Extension: accuracy under faults, CRC+retransmission cost", t,
              dir, "ext_fault_sweep");

  // Machine-readable mirror for CI artifacts. Deterministic fields only.
  const std::string json_path =
      env_string("NOCW_FAULT_JSON", "BENCH_fault.json");
  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"selected_layer\": \"%s\",\n",
               sweep.selected_layer.c_str());
  std::fprintf(f, "  \"baseline_accuracy\": %.6f,\n",
               sweep.baseline_accuracy);
  std::fprintf(f, "  \"fault_seed\": %llu,\n",
               static_cast<unsigned long long>(cfg.fault_seed));
  std::fprintf(f, "  \"trials\": %d,\n", cfg.trials);
  std::fprintf(f, "  \"points\": [\n");
  for (std::size_t i = 0; i < sweep.points.size(); ++i) {
    const auto& p = sweep.points[i];
    std::fprintf(
        f,
        "    {\"ber\": %.1e, \"delta_percent\": %.1f,"
        " \"accuracy_clean\": %.6f, \"accuracy_uncompressed\": %.6f,"
        " \"accuracy_compressed\": %.6f, \"accuracy_protected\": %.6f,"
        " \"corrupted_segment_fraction\": %.6f,"
        " \"unprotected_cycles\": %.0f, \"protected_cycles\": %.0f,"
        " \"unprotected_energy_j\": %.8e, \"protected_energy_j\": %.8e,"
        " \"crc_failures\": %llu, \"retransmissions\": %llu,"
        " \"packets_dropped\": %llu}%s\n",
        p.bit_error_rate, p.delta_percent, p.accuracy_clean,
        p.accuracy_uncompressed, p.accuracy_compressed, p.accuracy_protected,
        p.corrupted_segment_fraction, p.unprotected_cycles.value(),
        p.protected_cycles.value(), p.unprotected_energy_j.value(),
        p.protected_energy_j.value(),
        static_cast<unsigned long long>(p.crc_failures),
        static_cast<unsigned long long>(p.retransmissions),
        static_cast<unsigned long long>(p.packets_dropped),
        i + 1 < sweep.points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  obs::log("fault-sweep results written to %s\n", json_path.c_str());

  std::map<std::string, double> metrics{
      {"baseline_accuracy", sweep.baseline_accuracy}};
  for (const auto& p : sweep.points) {
    // Headline rows: the worst BER at each δ.
    if (p.bit_error_rate == cfg.bit_error_rates.back()) {
      const std::string key = "d" + fmt_fixed(p.delta_percent, 0) + ".";
      metrics[key + "accuracy_protected"] = p.accuracy_protected;
      metrics[key + "accuracy_compressed"] = p.accuracy_compressed;
      metrics[key + "protected_cycles"] = p.protected_cycles.value();
      metrics[key + "retransmissions"] =
          static_cast<double>(p.retransmissions);
    }
  }
  bench::write_summary(dir, "ext_fault_sweep", metrics, lenet.model.name);
  return 0;
}
