// Fault-aware routing equivalence gate + graceful-degradation survival
// curves (DESIGN.md §13).
//
// Two claims are checked on the fig10-style LeNet-5 δ-sweep:
//   (1) Zero faults: the west-first adaptive route table is bit-identical
//       to the XY DOR baseline — every latency and energy number of the
//       adaptive arm must equal the DOR arm exactly, or the bench fails.
//       Fault-aware routing must be a free insurance policy when nothing
//       is broken.
//   (2) k permanent router faults: with west-first routing and endpoint
//       failover the inference still completes (no drain timeout), at a
//       latency/energy penalty the survival curves record per (faults, δ)
//       point into BENCH_summary.json. Every f=1 point must complete.
#include "bench_util.hpp"

#include <cstdio>
#include <string>
#include <vector>

#include "accel/simulator.hpp"
#include "eval/degradation.hpp"
#include "eval/flow.hpp"
#include "nn/models.hpp"
#include "obs/log.hpp"

namespace {

using namespace nocw;

struct ArmResult {
  /// Baseline first, then one entry per δ point, in grid order.
  std::vector<double> latency_cycles;
  std::vector<double> energy_j;
};

ArmResult run_arm(noc::RouteMode mode, const accel::ModelSummary& summary,
                  const eval::DeltaEvaluator& ev,
                  const std::vector<eval::DeltaPoint>& points) {
  accel::AccelConfig cfg;
  cfg.noc_window_flits = bench::noc_window();
  cfg.noc.resilience.route_mode = mode;
  accel::AcceleratorSim sim(cfg);

  ArmResult out;
  const accel::InferenceResult base = sim.simulate(summary);
  out.latency_cycles.push_back(base.latency.total().value());
  out.energy_j.push_back(base.energy.total().value());
  for (const eval::DeltaPoint& p : points) {
    accel::CompressionPlan plan;
    plan[ev.selected_layer()] = p.compression;
    const accel::InferenceResult comp = sim.simulate(summary, &plan);
    out.latency_cycles.push_back(comp.latency.total().value());
    out.energy_j.push_back(comp.energy.total().value());
  }
  return out;
}

}  // namespace

int main(int, char** argv) {
  const std::string dir = bench::output_dir(argv[0]);
  obs::RunManifest man = bench::bench_manifest("ext_degradation", "LeNet-5");

  bench::TrainedLenet lenet = bench::trained_lenet(dir);
  eval::EvalConfig ecfg;
  ecfg.topk = 1;
  eval::DeltaEvaluator ev(lenet.model, lenet.test, ecfg);
  const std::vector<double> grid{0, 4, 8, 12};
  const std::vector<eval::DeltaPoint> points = ev.evaluate_many(grid);
  const accel::ModelSummary summary = accel::summarize(lenet.model);

  // --- (1) zero-fault equivalence gate ----------------------------------
  const ArmResult dor = run_arm(noc::RouteMode::Dor, summary, ev, points);
  const ArmResult wf = run_arm(noc::RouteMode::WestFirst, summary, ev,
                               points);
  bool identical = dor.latency_cycles.size() == wf.latency_cycles.size();
  for (std::size_t i = 0; identical && i < dor.latency_cycles.size(); ++i) {
    identical = dor.latency_cycles[i] == wf.latency_cycles[i] &&
                dor.energy_j[i] == wf.energy_j[i];
  }

  // --- (2) survival curves under permanent router faults ----------------
  eval::DegradationConfig dcfg;
  dcfg.max_router_faults = 3;
  dcfg.delta_percents = {0.0, 8.0};
  dcfg.noc_window_flits = bench::noc_window();
  const eval::DegradationResult deg =
      eval::run_degradation_sweep(lenet.model, lenet.test, dcfg);

  Table t({"Faults", "delta %", "Live MI", "Live PE", "Done", "Accuracy",
           "Latency cyc", "Energy J", "Lat x", "Energy x"});
  std::uint64_t completed = 0;
  bool f1_survives = true;
  for (const eval::DegradationPoint& p : deg.points) {
    if (p.completed) ++completed;
    if (p.router_faults == 1 && !p.completed) f1_survives = false;
    t.add_row({std::to_string(p.router_faults), fmt_fixed(p.delta_percent, 0),
               std::to_string(p.live_mis), std::to_string(p.live_pes),
               p.completed ? "yes" : "NO", fmt_fixed(p.accuracy, 4),
               fmt_fixed(p.latency_cycles.value(), 0),
               fmt_sci(p.energy_j.value(), 3),
               fmt_fixed(p.latency_vs_healthy, 3),
               fmt_fixed(p.energy_vs_healthy, 3)});
  }
  bench::emit("Graceful degradation: permanent router faults x delta", t,
              dir, "ext_degradation");

  man.metrics["routes_identical"] = identical ? 1.0 : 0.0;
  man.metrics["max_router_faults"] =
      static_cast<double>(dcfg.max_router_faults);
  man.metrics["points"] = static_cast<double>(deg.points.size());
  man.metrics["completed_points"] = static_cast<double>(completed);
  man.metrics["baseline_accuracy"] = deg.baseline_accuracy;
  for (const eval::DegradationPoint& p : deg.points) {
    const std::string key = "f" + std::to_string(p.router_faults) + "_d" +
                            std::to_string(static_cast<int>(p.delta_percent));
    man.metrics[key + "_completed"] = p.completed ? 1.0 : 0.0;
    man.metrics[key + "_latency_cycles"] = p.latency_cycles.value();
    man.metrics[key + "_energy_j"] = p.energy_j.value();
    man.metrics[key + "_latency_ratio"] = p.latency_vs_healthy;
  }
  ev.annotate_manifest(man);
  bench::write_summary(dir, man);

  if (!identical) {
    std::fprintf(stderr,
                 "ERROR: zero-fault west-first routing diverged from DOR\n");
    return 1;
  }
  if (!f1_survives) {
    std::fprintf(stderr,
                 "ERROR: inference did not survive a single router fault\n");
    return 1;
  }
  obs::log("[degradation] %llu/%llu points completed, f1 latency x%.3f\n",
           static_cast<unsigned long long>(completed),
           static_cast<unsigned long long>(deg.points.size()),
           deg.points.size() > dcfg.delta_percents.size()
               ? deg.points[dcfg.delta_percents.size()].latency_vs_healthy
               : 0.0);
  return 0;
}
