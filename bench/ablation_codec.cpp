// Ablation: codec storage-format choices the paper leaves implicit.
//
// (a) coefficient width: storing ⟨m, q⟩ as full float32 vs truncated
//     (bfloat-style) 24/16 bits trades reconstruction error for segment
//     size; (b) length-field width caps |M_i| and bounds the worst case;
//     (c) strict vs weak criterion is the δ=0 column. Measured on the
//     LeNet-5 dense_1 stream.
#include "bench_util.hpp"

#include "core/codec.hpp"
#include "eval/layer_selection.hpp"
#include "nn/models.hpp"

int main(int, char** argv) {
  using namespace nocw;
  const std::string dir = bench::output_dir(argv[0]);

  nn::Model model = nn::make_lenet5();
  const int selected = eval::select_layer(model);
  const auto kernel = model.graph.layer(selected).kernel();

  std::map<std::string, double> metrics;
  Table coef({"delta", "coef bits", "CR", "MSE", "mean |M_i|"});
  for (double delta : {5.0, 15.0}) {
    for (unsigned bits : {32u, 24u, 16u}) {
      core::CodecConfig cfg;
      cfg.delta_percent = delta;
      cfg.coef_bits = bits;
      const auto layer = core::compress(kernel, cfg);
      metrics["d" + fmt_fixed(delta, 0) + ".coef" + std::to_string(bits) +
              ".cr"] = layer.compression_ratio();
      coef.add_row({fmt_pct(delta / 100.0), std::to_string(bits),
                    fmt_fixed(layer.compression_ratio(), 2),
                    fmt_sci(layer.mse(), 2),
                    fmt_fixed(layer.mean_segment_length(), 2)});
    }
  }
  bench::emit("Ablation: coefficient width (LeNet-5 dense_1)", coef, dir,
              "ablation_codec_coef");

  Table len({"delta", "length bits", "max |M_i|", "CR", "MSE"});
  for (double delta : {15.0}) {
    for (unsigned bits : {4u, 6u, 8u, 10u}) {
      core::CodecConfig cfg;
      cfg.delta_percent = delta;
      cfg.length_bits = bits;
      const auto layer = core::compress(kernel, cfg);
      std::uint32_t max_len = 0;
      for (const auto& s : layer.segments) {
        max_len = std::max(max_len, s.length);
      }
      len.add_row({fmt_pct(delta / 100.0), std::to_string(bits),
                   std::to_string(max_len),
                   fmt_fixed(layer.compression_ratio(), 2),
                   fmt_sci(layer.mse(), 2)});
    }
  }
  bench::emit("Ablation: length-field width (LeNet-5 dense_1, delta=15%)",
              len, dir, "ablation_codec_len");
  bench::write_summary(dir, "ablation_codec", metrics, model.name);
  return 0;
}
