// Fig. 9: normalized per-layer sensitivity for LeNet-5 (trained, top-1 on
// the digit test set) and AlexNet (top-5 agreement). Justifies the Layer
// Selection policy: layers near the input are more sensitive than the deep,
// parameter-heavy classifier layers the policy compresses.
#include "bench_util.hpp"

#include "eval/sensitivity.hpp"
#include "nn/models.hpp"

int main(int, char** argv) {
  using namespace nocw;
  const std::string dir = bench::output_dir(argv[0]);

  std::map<std::string, double> metrics;
  {
    bench::TrainedLenet lenet = bench::trained_lenet(dir);
    eval::SensitivityConfig cfg;
    cfg.topk = 1;
    cfg.trials = 3;
    cfg.noise_fraction = 0.25;
    const auto rows =
        eval::sensitivity_analysis(lenet.model, &lenet.test, cfg);
    Table t({"Layer", "Accuracy drop", "Normalized sensitivity"});
    for (const auto& s : rows) {
      metrics["lenet5." + s.layer + ".sensitivity"] = s.normalized;
      t.add_row({s.layer, fmt_fixed(s.accuracy_drop, 4),
                 fmt_fixed(s.normalized, 3)});
    }
    metrics["lenet5.test_accuracy"] = lenet.test_accuracy;
    bench::emit("Fig. 9 (top): LeNet-5 layer sensitivity", t, dir,
                "fig9_lenet");
  }
  {
    nn::Model alex = nn::make_alexnet();
    eval::SensitivityConfig cfg;
    cfg.topk = 5;
    cfg.trials = 2;
    cfg.probes = bench::probe_count();
    cfg.noise_fraction = 0.25;
    const auto rows = eval::sensitivity_analysis(alex, nullptr, cfg);
    Table t({"Layer", "Agreement drop", "Normalized sensitivity"});
    for (const auto& s : rows) {
      metrics["alexnet." + s.layer + ".sensitivity"] = s.normalized;
      t.add_row({s.layer, fmt_fixed(s.accuracy_drop, 4),
                 fmt_fixed(s.normalized, 3)});
    }
    bench::emit("Fig. 9 (bottom): AlexNet layer sensitivity", t, dir,
                "fig9_alexnet");
  }
  bench::write_summary(dir, "fig9_sensitivity", metrics);
  return 0;
}
