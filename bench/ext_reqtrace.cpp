// Request tracing + SLO gate: causal span trees, tail sampling and the
// streaming SLO monitor over the serving sweep (DESIGN.md §15).
//
// Workload: the ext_serving class mix (lenet_d0 / lenet_d8 / alexnet_d0)
// on a smaller load x scheduler grid, run twice per arm — plain
// (run_serving_sweep, the PR 9 path) and observed
// (run_observed_serving_sweep: SLO monitor + trace sink hooked into every
// point).
//
// Gates (non-zero exit on failure):
//   (1) Purity: the observed sweep's ServeResult numbers are bit-identical
//       to the plain sweep's, across NOCW_THREADS {1,2,8} and repeats —
//       hooks observe, they never feed back.
//   (2) Overhead: tail-sampled tracing (hooks on) costs < 1% wall-clock
//       over the plain sweep, min-over-reps on the 1-thread arm.
//   (3) Exemplars: every breached SLO window names an exemplar trace the
//       sink retained, and its span tree's root latency equals the
//       window's recorded max (shed exemplar for shed-only windows); at
//       least one window must breach, and exemplar storage must not drop.
//   Determinism: slo + reqtrace JSON exports byte-identical across arms.
//
// Outputs: summary metrics (per-point windows_breached / max_burn_1w +
// overhead for obs_diff), BENCH_reqtrace.json (nocw.reqtrace.v1, override
// NOCW_REQTRACE_JSON) and results/slo_windows.json (nocw.slo.v1) for the
// overloaded FIFO point, results/reqtrace_tail.json (Perfetto tree of the
// worst tail request).
#include "bench_util.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "accel/summary.hpp"
#include "eval/flow.hpp"
#include "eval/serving.hpp"
#include "nn/models.hpp"
#include "obs/jsonfmt.hpp"
#include "obs/log.hpp"
#include "obs/trace_export.hpp"
#include "serve/reqtrace.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace nocw;

double finite_or_zero(double v) { return std::isfinite(v) ? v : 0.0; }

std::string load_key(double load) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "l%03d",
                static_cast<int>(std::lround(load * 100.0)));
  return buf;
}

/// Exhaustive flattening of a sweep result (ext_serving's shape): the
/// bit-identity comparison between the plain and observed paths.
std::map<std::string, double> flatten(const eval::ServingSweepResult& r) {
  std::map<std::string, double> out;
  out["capacity_rps"] = r.capacity_rps;
  for (std::size_t c = 0; c < r.profiles.size(); ++c) {
    const std::string base = "profile." + r.class_names[c];
    out[base + ".full_cycles"] =
        static_cast<double>(r.profiles[c].full_cycles.value());
    out[base + ".marginal_cycles"] =
        static_cast<double>(r.profiles[c].marginal_cycles.value());
  }
  for (const eval::ServingPoint& pt : r.points) {
    const std::string base = pt.scheduler + "." + load_key(pt.offered_load);
    const auto add_class = [&](const std::string& key,
                               const serve::ClassServeStats& s) {
      out[key + ".offered"] = static_cast<double>(s.offered);
      out[key + ".completed"] = static_cast<double>(s.completed);
      out[key + ".shed"] = static_cast<double>(s.shed);
      out[key + ".shed_rate"] = s.shed_rate;
      out[key + ".p50_cycles"] = finite_or_zero(s.latency.p50);
      out[key + ".p99_cycles"] = finite_or_zero(s.latency.p99);
      out[key + ".p999_cycles"] = finite_or_zero(s.latency.p999);
      out[key + ".mean_cycles"] = finite_or_zero(s.latency.mean);
    };
    add_class(base, pt.result.aggregate);
    for (const serve::ClassServeStats& s : pt.result.per_class) {
      add_class(base + "." + s.name, s);
    }
    out[base + ".goodput_rps"] = pt.result.goodput_rps;
    out[base + ".batches"] = static_cast<double>(pt.result.batches);
    out[base + ".mean_batch_size"] = pt.result.mean_batch_size;
    out[base + ".makespan_cycles"] =
        static_cast<double>(pt.result.makespan.value());
  }
  return out;
}

/// Byte-stable digest of every point's slo + reqtrace export, for the
/// cross-arm determinism comparison.
std::string observability_digest(const eval::ObservedSweepResult& obs) {
  std::string out;
  for (std::size_t i = 0; i < obs.sweep.points.size(); ++i) {
    out += obs.sweep.points[i].scheduler + "." +
           load_key(obs.sweep.points[i].offered_load) + "\n";
    out += obs.slo[i].to_json();
    out += obs.sinks[i].to_json();
  }
  return out;
}

double elapsed_s(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

void write_file(const std::string& path, const std::string& body,
                const char* what) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return;
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  obs::log("[reqtrace] wrote %s (%s)\n", path.c_str(), what);
}

}  // namespace

int main(int, char** argv) {
  const std::string dir = bench::output_dir(argv[0]);
  obs::RunManifest man = bench::bench_manifest("ext_reqtrace", "LeNet-5");

  // --- workload classes (ext_serving's mix) -----------------------------
  bench::TrainedLenet lenet = bench::trained_lenet(dir);
  eval::EvalConfig ecfg;
  ecfg.topk = 1;
  eval::DeltaEvaluator ev(lenet.model, lenet.test, ecfg);
  const eval::DeltaPoint d8 = ev.evaluate(8.0);
  const accel::ModelSummary lenet_summary = accel::summarize(lenet.model);
  nn::Model alexnet = nn::make_alexnet();
  const accel::ModelSummary alexnet_summary = accel::summarize(alexnet);

  std::vector<serve::RequestClass> classes(3);
  classes[0].name = "lenet_d0";
  classes[0].tenant = 0;
  classes[0].tenant_weight = 4.0;
  classes[0].mix_fraction = 0.45;
  classes[0].summary = lenet_summary;
  classes[1].name = "lenet_d8";
  classes[1].tenant = 0;
  classes[1].tenant_weight = 4.0;
  classes[1].mix_fraction = 0.35;
  classes[1].summary = lenet_summary;
  classes[1].plan[ev.selected_layer()] = d8.compression;
  classes[2].name = "alexnet_d0";
  classes[2].tenant = 1;
  classes[2].tenant_weight = 1.0;
  classes[2].mix_fraction = 0.20;
  classes[2].summary = alexnet_summary;

  eval::ServingSweepConfig cfg;
  cfg.offered_loads = {0.6, 0.9, 1.3};
  cfg.schedulers = {"fifo", "sjf"};
  cfg.requests_per_point =
      static_cast<int>(env_int("REPRO_REQTRACE_REQUESTS", 800, 10));
  cfg.serve.accel.noc_window_flits = bench::noc_window();
  cfg.serve.queue.capacity = 64;
  cfg.serve.batch.max_batch = 4;
  cfg.serve.batch.max_wait = units::Cycles{200'000};

  // --- reference run + SLO policy derived from the profiled classes -----
  set_global_threads(1);
  auto t0 = std::chrono::steady_clock::now();
  const eval::ServingSweepResult plain = eval::run_serving_sweep(classes, cfg);
  std::vector<double> plain_s{elapsed_s(t0)};
  const std::map<std::string, double> reference = flatten(plain);

  std::uint64_t max_full = 0;
  for (const serve::ServiceProfile& p : plain.profiles) {
    max_full = std::max(max_full, p.full_cycles.value());
  }
  const double amortized_cycles =
      1.0 / eval::capacity_requests_per_cycle(
                classes, plain.profiles, cfg.serve.batch.max_batch);

  eval::ObservedSweepConfig ocfg;
  ocfg.base = cfg;
  // ~100 capacity-requests per window: enough samples for a window p99,
  // >= a dozen windows per point.
  ocfg.slo.window_cycles =
      static_cast<std::uint64_t>(std::llround(100.0 * amortized_cycles));
  ocfg.slo.p99_budget_cycles = 4.0 * static_cast<double>(max_full);
  ocfg.slo.p999_budget_cycles = 6.0 * static_cast<double>(max_full);
  ocfg.slo.min_goodput_fraction = 0.99;
  ocfg.slo.error_budget = 0.01;
  ocfg.traces.tail_keep = 32;
  ocfg.traces.exemplar_capacity = 512;

  // --- gate (1): purity on the 1-thread arm -----------------------------
  const int reps = static_cast<int>(env_int("REPRO_REQTRACE_REPS", 3, 1));
  bool sweep_identical = true;
  bool deterministic = true;
  std::vector<double> observed_s;
  std::string digest0;
  eval::ObservedSweepResult obs0;  // rep 0, the gated result
  for (int rep = 0; rep < reps; ++rep) {
    t0 = std::chrono::steady_clock::now();
    eval::ObservedSweepResult o =
        eval::run_observed_serving_sweep(classes, ocfg);
    observed_s.push_back(elapsed_s(t0));
    if (flatten(o.sweep) != reference) sweep_identical = false;
    const std::string digest = observability_digest(o);
    if (rep == 0) {
      digest0 = digest;
      obs0 = std::move(o);
    } else if (digest != digest0) {
      deterministic = false;
    }
    if (rep + 1 < reps) {
      t0 = std::chrono::steady_clock::now();
      const eval::ServingSweepResult again =
          eval::run_serving_sweep(classes, cfg);
      plain_s.push_back(elapsed_s(t0));
      if (flatten(again) != reference) sweep_identical = false;
    }
  }

  // --- gate (2): tracing's extra wall-clock, amortized ------------------
  // The sweep's wall-clock is dominated by class profiling (identical in
  // both arms, it cancels exactly), and run-to-run noise on ~100 ms swamps
  // a ~1 ms hook cost — a naive on/off sweep comparison cannot resolve a
  // 1% bound. Following ext_trace_overhead's estimator idiom, the gated
  // number measures the *difference* directly: the per-point serving loops
  // run paired (hooks off / hooks on) on one shared profiled sim many
  // times; the aggregate extra, scaled to one sweep, is compared against
  // the plain sweep's median wall-clock.
  const serve::ServeSim shared_sim(cfg.serve, classes);
  const double cap_rpc = eval::capacity_requests_per_cycle(
      shared_sim.classes(), shared_sim.profiles(), cfg.serve.batch.max_batch);
  std::vector<std::vector<serve::Arrival>> grid_arrivals;
  for (const double load : cfg.offered_loads) {
    const double rate_per_cycle = load * cap_rpc;
    serve::ArrivalConfig acfg;
    acfg.process = cfg.process;
    acfg.rate_per_mcycle = rate_per_cycle * 1e6;
    acfg.horizon_cycles = static_cast<std::uint64_t>(std::ceil(
        static_cast<double>(cfg.requests_per_point) / rate_per_cycle));
    acfg.seed = cfg.arrival_seed;
    grid_arrivals.push_back(
        serve::generate_arrivals(shared_sim.classes(), acfg));
  }
  const int loop_reps =
      static_cast<int>(env_int("REPRO_REQTRACE_LOOPS", 24, 1));
  double plain_loop_s = 0.0;
  double hooked_loop_s = 0.0;
  for (int rep = 0; rep < loop_reps; ++rep) {
    t0 = std::chrono::steady_clock::now();
    for (const std::vector<serve::Arrival>& arr : grid_arrivals) {
      for (const std::string& sched : cfg.schedulers) {
        (void)shared_sim.run(arr, *serve::make_scheduler(sched), nullptr);
      }
    }
    plain_loop_s += elapsed_s(t0);
    t0 = std::chrono::steady_clock::now();
    for (std::size_t li = 0; li < grid_arrivals.size(); ++li) {
      for (const std::string& sched : cfg.schedulers) {
        obs::SloMonitor slo(shared_sim.classes().size(), ocfg.slo);
        serve::RequestTraceSink sink(shared_sim.classes().size(),
                                     ocfg.traces);
        serve::RunHooks hooks;
        hooks.slo = &slo;
        hooks.traces = &sink;
        hooks.trace_seed =
            ocfg.trace_seed ^
            (0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(li + 1));
        (void)shared_sim.run(grid_arrivals[li], *serve::make_scheduler(sched),
                             hooks);
      }
    }
    hooked_loop_s += elapsed_s(t0);
  }
  const double plain_med = median(plain_s);
  const double extra_per_sweep_s =
      (hooked_loop_s - plain_loop_s) / static_cast<double>(loop_reps);
  const double overhead =
      plain_med > 0.0 ? extra_per_sweep_s / plain_med : 0.0;

  // --- determinism across thread counts ---------------------------------
  for (const unsigned threads : {2u, 8u}) {
    set_global_threads(threads);
    eval::ObservedSweepResult o =
        eval::run_observed_serving_sweep(classes, ocfg);
    if (flatten(o.sweep) != reference) sweep_identical = false;
    if (observability_digest(o) != digest0) deterministic = false;
  }
  set_global_threads(1);

  // --- gate (3): every breached window resolves to a retained exemplar --
  std::uint64_t windows_total = 0;
  std::uint64_t windows_breached = 0;
  std::uint64_t exemplar_drops = 0;
  bool exemplar_ok = true;
  for (std::size_t i = 0; i < obs0.sweep.points.size(); ++i) {
    const obs::SloMonitor& m = obs0.slo[i];
    const serve::RequestTraceSink& sink = obs0.sinks[i];
    exemplar_drops += sink.exemplar_drops();
    windows_total += static_cast<std::uint64_t>(m.windows().size());
    for (const obs::SloWindow& w : m.windows()) {
      if (w.breach_mask == 0) continue;
      ++windows_breached;
      if (w.completions > 0) {
        const serve::RequestTrace* t = sink.exemplar(w.exemplar_trace_id);
        if (t == nullptr || t->shed || t->spans.empty() ||
            t->spans.front().dur_cycles != w.max_latency_cycles ||
            t->latency_cycles != w.max_latency_cycles) {
          exemplar_ok = false;
        }
      } else {
        const serve::RequestTrace* t =
            sink.exemplar(w.shed_exemplar_trace_id);
        if (t == nullptr || !t->shed) exemplar_ok = false;
      }
    }
  }
  if (windows_breached == 0) exemplar_ok = false;  // the gate must bite
  if (exemplar_drops != 0) exemplar_ok = false;

  // --- artifacts: overloaded FIFO point + worst tail request ------------
  std::size_t artifact_point = 0;
  for (std::size_t i = 0; i < obs0.sweep.points.size(); ++i) {
    if (obs0.sweep.points[i].scheduler == "fifo" &&
        obs0.sweep.points[i].offered_load >
            obs0.sweep.points[artifact_point].offered_load) {
      artifact_point = i;
    }
  }
  write_file(env_string("NOCW_REQTRACE_JSON", "BENCH_reqtrace.json"),
             obs0.sinks[artifact_point].to_json(), "nocw.reqtrace.v1");
  write_file(dir + "/results/slo_windows.json",
             obs0.slo[artifact_point].to_json(), "nocw.slo.v1");
  if (!obs0.sinks[artifact_point].tail().empty()) {
    const std::vector<obs::TraceEvent> events =
        serve::to_trace_events(obs0.sinks[artifact_point].tail().front());
    write_file(dir + "/results/reqtrace_tail.json",
               obs::to_chrome_json(events), "perfetto tail request");
  }

  // --- table + metrics ---------------------------------------------------
  Table t({"Sched", "Load", "Windows", "Breached", "Burn 1w", "Sampled",
           "Dropped", "Exemplars"});
  for (std::size_t i = 0; i < obs0.sweep.points.size(); ++i) {
    const eval::ServingPoint& pt = obs0.sweep.points[i];
    const obs::SloMonitor& m = obs0.slo[i];
    const serve::RequestTraceSink& sink = obs0.sinks[i];
    t.add_row({pt.scheduler, fmt_fixed(pt.offered_load, 2),
               std::to_string(m.windows().size()),
               std::to_string(m.windows_breached()),
               fmt_fixed(m.max_burn(0), 2),
               std::to_string(sink.tail().size()),
               std::to_string(sink.dropped_trees()),
               std::to_string(sink.exemplar_count())});
    const std::string base = pt.scheduler + "." + load_key(pt.offered_load);
    man.metrics[base + ".windows_breached"] =
        static_cast<double>(m.windows_breached());
    man.metrics[base + ".max_burn_1w"] = m.max_burn(0);
    man.metrics[base + ".sampled_trees"] =
        static_cast<double>(sink.tail().size());
    man.metrics[base + ".dropped_trees"] =
        static_cast<double>(sink.dropped_trees());
  }
  bench::emit("Request tracing + SLO windows (observed serving sweep)", t,
              dir, "ext_reqtrace");

  man.metrics["deterministic"] = deterministic ? 1.0 : 0.0;
  man.metrics["sweep_identical"] = sweep_identical ? 1.0 : 0.0;
  man.metrics["trace_overhead_fraction"] = overhead;
  man.metrics["trace_extra_ms_per_sweep"] = extra_per_sweep_s * 1e3;
  man.metrics["plain_sweep_seconds"] = plain_med;
  man.metrics["observed_sweep_seconds"] = median(observed_s);
  man.metrics["exemplar_ok"] = exemplar_ok ? 1.0 : 0.0;
  man.metrics["windows_total"] = static_cast<double>(windows_total);
  man.metrics["windows_breached"] = static_cast<double>(windows_breached);
  man.metrics["exemplar_drops"] = static_cast<double>(exemplar_drops);
  man.metrics["slo_window_cycles"] =
      static_cast<double>(ocfg.slo.window_cycles);
  bench::write_summary(dir, man);

  if (!sweep_identical) {
    std::fprintf(stderr,
                 "ERROR: observed sweep numbers differ from the plain "
                 "(tracing-off) sweep\n");
    return 1;
  }
  if (!deterministic) {
    std::fprintf(stderr,
                 "ERROR: slo/reqtrace exports are not byte-identical "
                 "across NOCW_THREADS {1,2,8} / repeats\n");
    return 1;
  }
  if (!(overhead < 0.01)) {
    std::fprintf(stderr,
                 "ERROR: tracing overhead %.2f%% exceeds the 1%% gate "
                 "(extra %.3f ms per sweep, plain sweep median %.3f s)\n",
                 overhead * 100.0, extra_per_sweep_s * 1e3, plain_med);
    return 1;
  }
  if (!exemplar_ok) {
    std::fprintf(stderr,
                 "ERROR: exemplar gate failed (%llu breached windows, "
                 "%llu exemplar drops)\n",
                 static_cast<unsigned long long>(windows_breached),
                 static_cast<unsigned long long>(exemplar_drops));
    return 1;
  }
  obs::log("[reqtrace] %llu windows (%llu breached), overhead %.2f%%, "
           "exemplars resolve, deterministic\n",
           static_cast<unsigned long long>(windows_total),
           static_cast<unsigned long long>(windows_breached),
           overhead * 100.0);
  return 0;
}
