// Extension: multi-layer compression (the paper's Sec. V future work).
//
// Greedy per-layer δ selection under an accuracy constraint, compared with
// the paper's single-layer policy at matched accuracy, on the trained
// LeNet-5 (real top-1) and on MobileNet (top-5 retention) — the model the
// paper singles out as benefitting most from compressing more than one
// layer, since its selected layer holds only ~24% of the weights.
#include "bench_util.hpp"

#include "accel/simulator.hpp"
#include "eval/flow.hpp"
#include "eval/multi_layer.hpp"
#include "nn/models.hpp"
#include "obs/log.hpp"

namespace {

using namespace nocw;

void report(Table& t, const std::string& model_name, nn::Model& model,
            const eval::MultiLayerResult& r,
            std::map<std::string, double>& metrics) {
  const accel::ModelSummary summary = accel::summarize(model);
  accel::AccelConfig acfg;
  acfg.noc_window_flits = bench::noc_window();
  accel::AcceleratorSim sim(acfg);
  const accel::InferenceResult base = sim.simulate(summary);
  const accel::CompressionPlan plan = r.to_accel_plan();
  const accel::InferenceResult comp = sim.simulate(summary, &plan);
  metrics[model.name + ".weighted_cr"] = r.weighted_cr;
  metrics[model.name + ".accuracy"] = r.accuracy;
  metrics[model.name + ".latency_cycles"] = comp.latency.total().value();
  metrics[model.name + ".energy_j"] = comp.energy.total().value();
  t.add_row({model_name, std::to_string(r.plan.size()),
             fmt_fixed(r.weighted_cr, 2), fmt_fixed(r.accuracy, 4),
             fmt_pct(1.0 - comp.latency.total() / base.latency.total()),
             fmt_pct(1.0 - comp.energy.total() / base.energy.total())});
}

}  // namespace

int main(int, char** argv) {
  const std::string dir = bench::output_dir(argv[0]);

  Table t({"Model", "Layers compressed", "Weighted CR", "Accuracy",
           "Latency reduction", "Energy reduction"});
  std::map<std::string, double> metrics;

  {
    bench::TrainedLenet lenet = bench::trained_lenet(dir);
    eval::MultiLayerConfig cfg;
    cfg.topk = 1;
    cfg.min_accuracy = lenet.test_accuracy - 0.05;  // <=5 points drop
    const nn::Dataset test = nn::make_digits(200, 90003);
    const eval::MultiLayerResult r =
        eval::optimize_multi_layer(lenet.model, &test, cfg);
    report(t, "LeNet-5 (multi)", lenet.model, r, metrics);
    obs::log("  LeNet-5 plan:");
    for (const auto& e : r.plan) {
      obs::log(" %s@%.0f%%(CR %.1f)", e.layer.c_str(), e.delta_percent,
               e.cr);
    }
    obs::log("\n");
  }
  {
    nn::Model m = nn::make_mobilenet();
    eval::MultiLayerConfig cfg;
    cfg.topk = 5;
    cfg.probes = bench::probe_count();
    cfg.min_accuracy = 0.95;
    cfg.delta_steps = {2, 4, 8};
    const eval::MultiLayerResult r =
        eval::optimize_multi_layer(m, nullptr, cfg);
    report(t, "MobileNet (multi)", m, r, metrics);
    obs::log("  MobileNet plan: %zu layers compressed\n", r.plan.size());
  }

  bench::emit("Extension: multi-layer compression under accuracy constraint",
              t, dir, "ext_multilayer");
  bench::write_summary(dir, "ext_multilayer", metrics);
  return 0;
}
