// Serving-layer load sweep: offered load x scheduler grid with
// determinism and scheduling gates (DESIGN.md §14).
//
// Workload: three request classes on one 4x4-mesh accelerator —
//   lenet_d0   LeNet-5, uncompressed            (tenant 0, weight 4)
//   lenet_d8   LeNet-5, delta=8% compressed     (tenant 0, weight 4)
//   alexnet_d0 AlexNet, uncompressed            (tenant 1, weight 1)
// Tenant 0 is the interactive majority; AlexNet is the heavy batch tenant
// whose head-of-line blocking is what SJF/priority exist to cut.
//
// Gates (non-zero exit on failure):
//   (1) Determinism: the whole sweep re-runs under NOCW_THREADS in
//       {1, 2, 8} plus a fixed-seed repeat; every reported number must be
//       bit-identical across all arms.
//   (2) Scheduling: at >= 1 overloaded point (load > 1.0), SJF or
//       priority must beat FIFO on the interactive tenant's p99.
//
// Outputs: the summary metrics (nocw.bench_summary.v1 keys for the
// dashboard serving panel + obs_diff gate), BENCH_serving.json (full
// per-class detail, schema nocw.serving.v1, path override
// NOCW_SERVE_JSON), and a queue-depth time series for one overloaded
// point (results/serving_queue_depth.json).
#include "bench_util.hpp"

#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "accel/summary.hpp"
#include "eval/flow.hpp"
#include "eval/serving.hpp"
#include "nn/models.hpp"
#include "obs/jsonfmt.hpp"
#include "obs/log.hpp"
#include "obs/timeseries.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace nocw;

double finite_or_zero(double v) { return std::isfinite(v) ? v : 0.0; }

std::string load_key(double load) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "l%03d",
                static_cast<int>(std::lround(load * 100.0)));
  return buf;
}

/// Exhaustive flattening of a sweep result, used both for the bit-identity
/// comparison across thread counts and (a subset) for the summary metrics.
std::map<std::string, double> flatten(const eval::ServingSweepResult& r) {
  std::map<std::string, double> out;
  out["capacity_rps"] = r.capacity_rps;
  for (std::size_t c = 0; c < r.profiles.size(); ++c) {
    const std::string base = "profile." + r.class_names[c];
    out[base + ".full_cycles"] =
        static_cast<double>(r.profiles[c].full_cycles.value());
    out[base + ".marginal_cycles"] =
        static_cast<double>(r.profiles[c].marginal_cycles.value());
  }
  for (const eval::ServingPoint& pt : r.points) {
    const std::string base = pt.scheduler + "." + load_key(pt.offered_load);
    const auto add_class = [&](const std::string& key,
                               const serve::ClassServeStats& s) {
      out[key + ".offered"] = static_cast<double>(s.offered);
      out[key + ".completed"] = static_cast<double>(s.completed);
      out[key + ".shed"] = static_cast<double>(s.shed);
      out[key + ".shed_rate"] = s.shed_rate;
      out[key + ".p50_cycles"] = finite_or_zero(s.latency.p50);
      out[key + ".p99_cycles"] = finite_or_zero(s.latency.p99);
      out[key + ".p999_cycles"] = finite_or_zero(s.latency.p999);
      out[key + ".mean_cycles"] = finite_or_zero(s.latency.mean);
    };
    add_class(base, pt.result.aggregate);
    for (const serve::ClassServeStats& s : pt.result.per_class) {
      add_class(base + "." + s.name, s);
    }
    out[base + ".goodput_rps"] = pt.result.goodput_rps;
    out[base + ".batches"] = static_cast<double>(pt.result.batches);
    out[base + ".mean_batch_size"] = pt.result.mean_batch_size;
    out[base + ".makespan_cycles"] =
        static_cast<double>(pt.result.makespan.value());
  }
  return out;
}

void write_serving_json(const std::string& path,
                        const eval::ServingSweepResult& r) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return;
  std::fprintf(f, "{\"schema\":\"nocw.serving.v1\",\"capacity_rps\":%s,\n",
               obs::json_number(r.capacity_rps).c_str());
  std::fprintf(f, "\"points\":[\n");
  const auto class_json = [](const serve::ClassServeStats& s) {
    std::string j = "{\"name\":\"" + obs::json_escape(s.name) +
                    "\",\"tenant\":" + std::to_string(s.tenant) +
                    ",\"offered\":" + std::to_string(s.offered) +
                    ",\"completed\":" + std::to_string(s.completed) +
                    ",\"shed\":" + std::to_string(s.shed) + ",\"shed_rate\":" +
                    obs::json_number(s.shed_rate) + ",\"p50_cycles\":" +
                    obs::json_number(finite_or_zero(s.latency.p50)) +
                    ",\"p99_cycles\":" +
                    obs::json_number(finite_or_zero(s.latency.p99)) +
                    ",\"p999_cycles\":" +
                    obs::json_number(finite_or_zero(s.latency.p999)) + "}";
    return j;
  };
  for (std::size_t i = 0; i < r.points.size(); ++i) {
    const eval::ServingPoint& pt = r.points[i];
    std::fprintf(
        f,
        "{\"scheduler\":\"%s\",\"offered_load\":%s,\"offered_rps\":%s,"
        "\"goodput_rps\":%s,\"batches\":%llu,\"mean_batch_size\":%s,"
        "\"aggregate\":%s,\"classes\":[",
        obs::json_escape(pt.scheduler).c_str(),
        obs::json_number(pt.offered_load).c_str(),
        obs::json_number(pt.offered_rps).c_str(),
        obs::json_number(pt.result.goodput_rps).c_str(),
        static_cast<unsigned long long>(pt.result.batches),
        obs::json_number(pt.result.mean_batch_size).c_str(),
        class_json(pt.result.aggregate).c_str());
    for (std::size_t c = 0; c < pt.result.per_class.size(); ++c) {
      std::fprintf(f, "%s%s", c > 0 ? "," : "",
                   class_json(pt.result.per_class[c]).c_str());
    }
    std::fprintf(f, "]}%s\n", i + 1 < r.points.size() ? "," : "");
  }
  std::fprintf(f, "]}\n");
  std::fclose(f);
  obs::log("[serving] wrote %s\n", path.c_str());
}

}  // namespace

int main(int, char** argv) {
  const std::string dir = bench::output_dir(argv[0]);
  obs::RunManifest man = bench::bench_manifest("ext_serving", "LeNet-5");

  // --- workload classes -------------------------------------------------
  bench::TrainedLenet lenet = bench::trained_lenet(dir);
  eval::EvalConfig ecfg;
  ecfg.topk = 1;
  eval::DeltaEvaluator ev(lenet.model, lenet.test, ecfg);
  const eval::DeltaPoint d8 = ev.evaluate(8.0);
  const accel::ModelSummary lenet_summary = accel::summarize(lenet.model);
  nn::Model alexnet = nn::make_alexnet();
  const accel::ModelSummary alexnet_summary = accel::summarize(alexnet);

  std::vector<serve::RequestClass> classes(3);
  classes[0].name = "lenet_d0";
  classes[0].tenant = 0;
  classes[0].tenant_weight = 4.0;
  classes[0].mix_fraction = 0.45;
  classes[0].summary = lenet_summary;
  classes[1].name = "lenet_d8";
  classes[1].tenant = 0;
  classes[1].tenant_weight = 4.0;
  classes[1].mix_fraction = 0.35;
  classes[1].summary = lenet_summary;
  classes[1].plan[ev.selected_layer()] = d8.compression;
  classes[2].name = "alexnet_d0";
  classes[2].tenant = 1;
  classes[2].tenant_weight = 1.0;
  classes[2].mix_fraction = 0.20;
  classes[2].summary = alexnet_summary;

  eval::ServingSweepConfig cfg;
  cfg.requests_per_point =
      static_cast<int>(env_int("REPRO_SERVE_REQUESTS", 1200, 10));
  cfg.serve.accel.noc_window_flits = bench::noc_window();
  cfg.serve.queue.capacity = 64;
  cfg.serve.batch.max_batch = 4;
  cfg.serve.batch.max_wait = units::Cycles{200'000};

  // --- (1) determinism gate: threads x repeats --------------------------
  const std::vector<unsigned> thread_arms{1, 1, 2, 8};
  std::vector<std::map<std::string, double>> arms;
  for (const unsigned threads : thread_arms) {
    set_global_threads(threads);
    arms.push_back(flatten(eval::run_serving_sweep(classes, cfg)));
  }
  set_global_threads(1);
  bool deterministic = true;
  for (std::size_t a = 1; a < arms.size(); ++a) {
    if (arms[a] != arms[0]) deterministic = false;
  }

  // The gated result: re-run once more at 1 thread, keeping the full
  // structure (flatten drops none of it, so the arms above already proved
  // this run equals every other arm bit-for-bit).
  const eval::ServingSweepResult sweep = eval::run_serving_sweep(classes, cfg);

  // --- bursty arm: MMPP at nominal load through FIFO --------------------
  eval::ServingSweepConfig mcfg = cfg;
  mcfg.process = serve::ArrivalProcess::kMmpp;
  mcfg.offered_loads = {0.9};
  mcfg.schedulers = {"fifo"};
  const eval::ServingSweepResult mmpp = eval::run_serving_sweep(classes, mcfg);

  // --- queue-depth time series for one overloaded FIFO point ------------
  {
    obs::TimeSeriesSet ts;
    const serve::ServeSim sim(cfg.serve, classes);
    const double cap_rpc = eval::capacity_requests_per_cycle(
        sim.classes(), sim.profiles(), cfg.serve.batch.max_batch);
    serve::ArrivalConfig acfg;
    acfg.rate_per_mcycle = 1.5 * cap_rpc * 1e6;
    acfg.horizon_cycles = static_cast<std::uint64_t>(std::ceil(
        static_cast<double>(cfg.requests_per_point) / (1.5 * cap_rpc)));
    acfg.seed = cfg.arrival_seed;
    (void)sim.run(serve::generate_arrivals(sim.classes(), acfg), "fifo", &ts);
    std::FILE* f =
        std::fopen((dir + "/results/serving_queue_depth.json").c_str(), "w");
    if (f != nullptr) {
      const std::string json = ts.to_json();
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
    }
  }

  // --- (2) scheduling gate + table + metrics ----------------------------
  Table t({"Sched", "Load", "Offered", "Done", "Shed %", "p50 cyc",
           "p99 cyc", "p99.9 cyc", "Goodput r/s", "Batch"});
  std::map<std::string, std::map<std::string, double>> t0_p99;  // load->sched
  for (const eval::ServingPoint& pt : sweep.points) {
    const serve::ClassServeStats& agg = pt.result.aggregate;
    t.add_row({pt.scheduler, fmt_fixed(pt.offered_load, 2),
               std::to_string(agg.offered), std::to_string(agg.completed),
               fmt_fixed(agg.shed_rate * 100.0, 1),
               fmt_fixed(finite_or_zero(agg.latency.p50), 0),
               fmt_fixed(finite_or_zero(agg.latency.p99), 0),
               fmt_fixed(finite_or_zero(agg.latency.p999), 0),
               fmt_fixed(pt.result.goodput_rps, 0),
               fmt_fixed(pt.result.mean_batch_size, 2)});
    if (pt.offered_load > 1.0) {
      t0_p99[load_key(pt.offered_load)][pt.scheduler] =
          finite_or_zero(pt.result.per_class[0].latency.p99);
    }
  }
  bench::emit("Serving sweep: offered load x scheduler (aggregate)", t, dir,
              "ext_serving");

  bool smart_beats_fifo = false;
  for (const auto& [load, by_sched] : t0_p99) {
    const auto fifo = by_sched.find("fifo");
    if (fifo == by_sched.end()) continue;
    for (const auto& [sched, p99] : by_sched) {
      if (sched != "fifo" && p99 < fifo->second) smart_beats_fifo = true;
    }
    (void)load;
  }

  const std::map<std::string, double> flat = flatten(sweep);
  man.metrics["capacity_rps"] = sweep.capacity_rps;
  man.metrics["deterministic"] = deterministic ? 1.0 : 0.0;
  man.metrics["sjf_or_priority_beats_fifo"] = smart_beats_fifo ? 1.0 : 0.0;
  man.metrics["lenet_d8_accuracy"] = d8.accuracy;
  for (const eval::ServingPoint& pt : sweep.points) {
    const std::string base = pt.scheduler + "." + load_key(pt.offered_load);
    for (const char* key :
         {".p50_cycles", ".p99_cycles", ".p999_cycles", ".shed_rate",
          ".goodput_rps"}) {
      man.metrics[base + key] = flat.at(base + key);
    }
    man.metrics[base + ".t0_p99_cycles"] =
        flat.at(base + ".lenet_d0.p99_cycles");
  }
  man.metrics["mmpp.l090.p99_cycles"] =
      finite_or_zero(mmpp.points.front().result.aggregate.latency.p99);
  man.metrics["mmpp.l090.shed_rate"] =
      mmpp.points.front().result.aggregate.shed_rate;
  ev.annotate_manifest(man);
  bench::write_summary(dir, man);

  write_serving_json(env_string("NOCW_SERVE_JSON", "BENCH_serving.json"),
                     sweep);

  if (!deterministic) {
    std::fprintf(stderr,
                 "ERROR: serving sweep is not bit-identical across "
                 "NOCW_THREADS {1,2,8} / repeated runs\n");
    return 1;
  }
  if (!smart_beats_fifo) {
    std::fprintf(stderr,
                 "ERROR: neither SJF nor priority beat FIFO on tenant-0 "
                 "p99 at any overloaded point\n");
    return 1;
  }
  obs::log("[serving] capacity %.0f r/s, %zu grid points, deterministic, "
           "smart scheduling beats FIFO under overload\n",
           sweep.capacity_rps, sweep.points.size());
  return 0;
}
