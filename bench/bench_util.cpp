#include "bench_util.hpp"

#include <cstdio>
#include <filesystem>

#include "nn/serialize.hpp"
#include "obs/log.hpp"
#include "nn/train.hpp"

namespace nocw::bench {

std::string output_dir(const char* argv0) {
  std::string path(argv0 ? argv0 : ".");
  const auto slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  return path.substr(0, slash);
}

void emit(const std::string& title, const Table& table,
          const std::string& dir, const std::string& slug) {
  std::printf("\n== %s ==\n%s", title.c_str(), table.to_string().c_str());
  std::error_code ec;
  std::filesystem::create_directories(dir + "/results", ec);
  const std::string csv_path = dir + "/results/" + slug + ".csv";
  if (table.write_csv(csv_path)) {
    std::printf("(csv: %s)\n", csv_path.c_str());
  }
  std::fflush(stdout);
}

TrainedLenet trained_lenet(const std::string& cache_dir) {
  TrainedLenet out{nn::make_lenet5(), nn::Dataset{}, 0.0};
  const int test_n = 400;
  out.test = nn::make_digits(test_n, /*seed=*/90001);

  std::error_code ec;
  std::filesystem::create_directories(cache_dir + "/results", ec);
  const std::string cache = cache_dir + "/results/lenet5_trained.weights";
  bool loaded = false;
  try {
    loaded = nn::load_weights(out.model.graph, cache);
  } catch (const nn::SerializeError& e) {
    // Stale or corrupt cache (e.g. written by an older format version):
    // report it and retrain rather than aborting the bench.
    obs::log("[bench] discarding cached checkpoint %s: %s\n", cache.c_str(),
             e.what());
  }
  if (!loaded) {
    const int train_n = static_cast<int>(env_int("REPRO_TRAIN", 1200, 1));
    const int epochs = static_cast<int>(env_int("REPRO_EPOCHS", 5, 1));
    obs::log("[bench] training LeNet-5 (%d samples, %d epochs)...\n",
             train_n, epochs);
    const nn::Dataset train = nn::make_digits(train_n, /*seed=*/90002);
    nn::TrainConfig cfg;
    cfg.epochs = epochs;
    cfg.batch_size = 32;
    cfg.learning_rate = 0.08F;
    const nn::TrainStats stats =
        nn::train_classifier(out.model.graph, train, cfg);
    obs::log("[bench] final train accuracy %.3f, loss %.4f\n",
             stats.epoch_accuracy.back(), stats.epoch_loss.back());
    (void)nn::save_weights(out.model.graph, cache);
  }
  out.test_accuracy = nn::evaluate_top1(out.model.graph, out.test);
  obs::log("[bench] LeNet-5 test top-1 accuracy: %.4f\n",
           out.test_accuracy);
  return out;
}

}  // namespace nocw::bench
