#include "bench_util.hpp"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <set>
#include <sstream>
#include <system_error>

#include "nn/serialize.hpp"
#include "nn/train.hpp"
#include "obs/jsonfmt.hpp"
#include "obs/log.hpp"
#include "util/check.hpp"

namespace nocw::bench {

namespace {

// Captured at static initialization, i.e. (close enough to) process start;
// bench_manifest reports wall time relative to this.
const std::chrono::steady_clock::time_point kProcessStart =
    std::chrono::steady_clock::now();

std::string summary_path(const std::string& dir) {
  return env_string("NOCW_SUMMARY_JSON",
                    dir + "/results/BENCH_summary.json");
}

// Tools this process has already registered with write_summary, so a
// double registration (two write_summary calls for one tool in one run)
// is warned about instead of silently keeping whichever ran last without
// anyone noticing. The summary itself stays last-writer-wins either way:
// entries are keyed by tool, so duplicates cannot appear in the file.
std::mutex g_registered_mu;
std::set<std::string> g_registered_tools;
std::uint64_t g_duplicate_writes = 0;

// One bench's entry in the aggregated summary, rendered on a single line
// (the merge below is line-based).
std::string summary_entry(const obs::RunManifest& m) {
  std::ostringstream os;
  os << "{\"model\":\"" << obs::json_escape(m.model) << "\",\"git_sha\":\""
     << obs::json_escape(m.build.count("git_sha") ? m.build.at("git_sha")
                                                  : "unknown")
     << "\",\"threads\":" << m.threads
     << ",\"wall_seconds\":" << obs::json_number(m.wall_seconds)
     << ",\"metrics\":{";
  std::size_t i = 0;
  for (const auto& [k, v] : m.metrics) {
    if (i++ > 0) os << ',';
    os << "\"" << obs::json_escape(k) << "\":" << obs::json_number(v);
  }
  os << "}}";
  return os.str();
}

// Read an existing summary back into name -> raw entry line. Tolerates a
// missing or foreign file (returns empty: the writer below regenerates the
// envelope from scratch).
std::map<std::string, std::string> read_summary(const std::string& path) {
  std::map<std::string, std::string> out;
  std::ifstream in(path);
  std::string line;
  if (!in || !std::getline(in, line)) return out;
  if (line.find("nocw.bench_summary.v1") == std::string::npos) return out;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] != '"') continue;
    const auto name_end = line.find('"', 1);
    if (name_end == std::string::npos) continue;
    const auto colon = line.find(':', name_end);
    if (colon == std::string::npos) continue;
    std::string entry = line.substr(colon + 1);
    while (!entry.empty() && (entry.back() == ',' || entry.back() == '\r')) {
      entry.pop_back();
    }
    out[line.substr(1, name_end - 1)] = entry;
  }
  return out;
}

}  // namespace

std::string output_dir(const char* argv0) {
  std::string path(argv0 ? argv0 : ".");
  const auto slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  return path.substr(0, slash);
}

void emit(const std::string& title, const Table& table,
          const std::string& dir, const std::string& slug) {
  std::printf("\n== %s ==\n%s", title.c_str(), table.to_string().c_str());
  std::error_code ec;
  std::filesystem::create_directories(dir + "/results", ec);
  const std::string csv_path = dir + "/results/" + slug + ".csv";
  if (table.write_csv(csv_path)) {
    std::printf("(csv: %s)\n", csv_path.c_str());
  }
  std::fflush(stdout);
}

TrainedLenet trained_lenet(const std::string& cache_dir) {
  TrainedLenet out{nn::make_lenet5(), nn::Dataset{}, 0.0};
  const int test_n = 400;
  out.test = nn::make_digits(test_n, /*seed=*/90001);

  std::error_code ec;
  std::filesystem::create_directories(cache_dir + "/results", ec);
  const std::string cache = cache_dir + "/results/lenet5_trained.weights";
  bool loaded = false;
  try {
    loaded = nn::load_weights(out.model.graph, cache);
  } catch (const nn::SerializeError& e) {
    // Stale or corrupt cache (e.g. written by an older format version):
    // report it and retrain rather than aborting the bench.
    obs::log("[bench] discarding cached checkpoint %s: %s\n", cache.c_str(),
             e.what());
  }
  if (!loaded) {
    const int train_n = static_cast<int>(env_int("REPRO_TRAIN", 1200, 1));
    const int epochs = static_cast<int>(env_int("REPRO_EPOCHS", 5, 1));
    obs::log("[bench] training LeNet-5 (%d samples, %d epochs)...\n",
             train_n, epochs);
    const nn::Dataset train = nn::make_digits(train_n, /*seed=*/90002);
    nn::TrainConfig cfg;
    cfg.epochs = epochs;
    cfg.batch_size = 32;
    cfg.learning_rate = 0.08F;
    const nn::TrainStats stats =
        nn::train_classifier(out.model.graph, train, cfg);
    obs::log("[bench] final train accuracy %.3f, loss %.4f\n",
             stats.epoch_accuracy.back(), stats.epoch_loss.back());
    (void)nn::save_weights(out.model.graph, cache);
  }
  out.test_accuracy = nn::evaluate_top1(out.model.graph, out.test);
  obs::log("[bench] LeNet-5 test top-1 accuracy: %.4f\n",
           out.test_accuracy);
  return out;
}

obs::RunManifest bench_manifest(const std::string& bench_name,
                                const std::string& model) {
  obs::RunManifest m = obs::make_manifest(bench_name, model);
  m.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    kProcessStart)
          .count();
  return m;
}

void write_summary(const std::string& dir, const obs::RunManifest& m) {
  {
    const std::lock_guard<std::mutex> lock(g_registered_mu);
    if (!g_registered_tools.insert(m.tool).second) {
      ++g_duplicate_writes;
      // Under the strict regression gate a double registration is a bench
      // bug (two mains claiming one summary key), not a warning: the same
      // switch that turns tolerance drift into failures turns this hard.
      if (env_int("NOCW_REGRESS_STRICT", 0) == 1) {
        throw CheckError("write_summary: duplicate registration for tool '" +
                         m.tool + "' with NOCW_REGRESS_STRICT=1");
      }
      std::fprintf(stderr,
                   "[bench] warning: write_summary called again for tool "
                   "'%s' in this process; keeping the latest entry "
                   "(last-writer-wins)\n",
                   m.tool.c_str());
    }
  }
  std::error_code ec;
  std::filesystem::create_directories(dir + "/results", ec);
  const std::string run_path = dir + "/results/run_" + m.tool + ".json";
  if (obs::write_manifest(m, run_path)) {
    std::printf("(manifest: %s)\n", run_path.c_str());
  }

  // Stamp the bench's wall-clock cost as an informational metric (the
  // regression gate treats *_ms keys as never-gating). Computed here, not
  // from m.wall_seconds: manifests are often created at bench start, and
  // write_summary runs at the end — the process-relative clock is the
  // honest "how long did this bench take" number.
  obs::RunManifest stamped = m;
  stamped.metrics["wall_ms"] =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - kProcessStart)
          .count();

  const std::string path = summary_path(dir);
  std::map<std::string, std::string> entries = read_summary(path);
  entries[m.tool] = summary_entry(stamped);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return;
    out << "{\"schema\":\"nocw.bench_summary.v1\",\"benches\":{\n";
    std::size_t i = 0;
    for (const auto& [name, entry] : entries) {
      out << "\"" << obs::json_escape(name) << "\":" << entry
          << (++i < entries.size() ? "," : "") << "\n";
    }
    out << "}}\n";
    if (!out.good()) return;
  }
  std::filesystem::rename(tmp, path, ec);
  if (!ec) std::printf("(summary: %s)\n", path.c_str());
  std::fflush(stdout);
}

void write_summary(const std::string& dir, const std::string& bench_name,
                   const std::map<std::string, double>& metrics,
                   const std::string& model) {
  obs::RunManifest m = bench_manifest(bench_name, model);
  m.metrics = metrics;
  write_summary(dir, m);
}

std::uint64_t duplicate_summary_writes() {
  const std::lock_guard<std::mutex> lock(g_registered_mu);
  return g_duplicate_writes;
}

}  // namespace nocw::bench
