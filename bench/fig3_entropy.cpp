// Fig. 3: byte entropy of random data, a text file, and the weight streams
// of the six CNN models — the motivation for a custom lossy codec (CNN
// weights are statistically indistinguishable from random bytes).
#include "bench_util.hpp"

#include "core/entropy.hpp"
#include "nn/models.hpp"
#include "util/stats.hpp"

int main(int, char** argv) {
  using namespace nocw;
  const std::string dir = bench::output_dir(argv[0]);

  Table t({"Data set", "Entropy (bits/byte)"});
  t.add_row({"Random data", fmt_fixed(core::random_data_entropy(1 << 20, 7), 3)});
  t.add_row({"Text file", fmt_fixed(core::text_entropy(1 << 17), 3)});

  for (const auto& name : nn::model_names()) {
    nn::Model m = nn::make_model(name, /*seed=*/1);
    // Byte histogram over the whole serialized weight stream.
    std::vector<std::uint64_t> hist(256, 0);
    for (int idx : m.graph.parameterized_nodes()) {
      const auto h = byte_histogram(m.graph.layer(idx).kernel());
      for (std::size_t b = 0; b < hist.size(); ++b) hist[b] += h[b];
    }
    t.add_row({name + " weights", fmt_fixed(shannon_entropy_hist(hist), 3)});
  }
  bench::emit("Fig. 3: entropy of random data, text, and CNN weights", t,
              dir, "fig3_entropy");
  return 0;
}
