// Fig. 3: byte entropy of random data, a text file, and the weight streams
// of the six CNN models — the motivation for a custom lossy codec (CNN
// weights are statistically indistinguishable from random bytes).
#include "bench_util.hpp"

#include "core/entropy.hpp"
#include "nn/models.hpp"
#include "util/stats.hpp"

int main(int, char** argv) {
  using namespace nocw;
  const std::string dir = bench::output_dir(argv[0]);

  Table t({"Data set", "Entropy (bits/byte)"});
  const double random_entropy = core::random_data_entropy(1 << 20, 7);
  const double text_entropy = core::text_entropy(1 << 17);
  t.add_row({"Random data", fmt_fixed(random_entropy, 3)});
  t.add_row({"Text file", fmt_fixed(text_entropy, 3)});

  std::map<std::string, double> metrics{
      {"random_entropy_bits", random_entropy},
      {"text_entropy_bits", text_entropy}};
  for (const auto& name : nn::model_names()) {
    nn::Model m = nn::make_model(name, /*seed=*/1);
    // Byte histogram over the whole serialized weight stream.
    std::vector<std::uint64_t> hist(256, 0);
    for (int idx : m.graph.parameterized_nodes()) {
      const auto h = byte_histogram(m.graph.layer(idx).kernel());
      for (std::size_t b = 0; b < hist.size(); ++b) hist[b] += h[b];
    }
    const double entropy = shannon_entropy_hist(hist);
    metrics[name + ".weight_entropy_bits"] = entropy;
    t.add_row({name + " weights", fmt_fixed(entropy, 3)});
  }
  bench::emit("Fig. 3: entropy of random data, text, and CNN weights", t,
              dir, "fig3_entropy");
  bench::write_summary(dir, "fig3_entropy", metrics);
  return 0;
}
