// Engineering micro-benchmarks (google-benchmark): codec throughput,
// decompressor-unit rate, router/network cycle rate, GEMM, quantization.
// Not a paper figure — these guard the simulator's own performance.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/codec.hpp"
#include "core/decompressor_unit.hpp"
#include "nn/gemm.hpp"
#include "noc/network.hpp"
#include "noc/traffic.hpp"
#include "quant/affine.hpp"
#include "util/rng.hpp"

namespace {

using namespace nocw;

std::vector<float> weights(std::size_t n, double stddev = 0.05) {
  Xoshiro256pp rng(42);
  std::vector<float> w(n);
  for (auto& x : w) x = static_cast<float>(rng.normal(0.0, stddev));
  return w;
}

void BM_Compress(benchmark::State& state) {
  const auto w = weights(static_cast<std::size_t>(state.range(0)));
  core::CodecConfig cfg;
  cfg.delta_percent = 10.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::compress(w, cfg));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Compress)->Arg(1 << 14)->Arg(1 << 18);

void BM_Decompress(benchmark::State& state) {
  const auto w = weights(static_cast<std::size_t>(state.range(0)));
  core::CodecConfig cfg;
  cfg.delta_percent = 10.0;
  const auto layer = core::compress(w, cfg);
  std::vector<float> out(w.size());
  for (auto _ : state) {
    core::decompress(layer, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Decompress)->Arg(1 << 18);

void BM_DecompressorUnit(benchmark::State& state) {
  const auto w = weights(1 << 14);
  core::CodecConfig cfg;
  cfg.delta_percent = 15.0;
  const auto layer = core::compress(w, cfg);
  for (auto _ : state) {
    core::DecompressorUnit du;
    float sink = 0.0F;
    for (const auto& seg : layer.segments) {
      du.load(seg);
      while (du.busy()) {
        if (auto v = du.tick()) sink += *v;
      }
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * (1 << 14));
}
BENCHMARK(BM_DecompressorUnit);

void BM_Serialize(benchmark::State& state) {
  const auto w = weights(1 << 16);
  core::CodecConfig cfg;
  cfg.delta_percent = 10.0;
  const auto layer = core::compress(w, cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::serialize(layer));
  }
  state.SetItemsProcessed(state.iterations() * (1 << 16));
}
BENCHMARK(BM_Serialize);

void BM_Quantize(benchmark::State& state) {
  const auto w = weights(1 << 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(quant::quantize_tensor(w));
  }
  state.SetItemsProcessed(state.iterations() * (1 << 16));
}
BENCHMARK(BM_Quantize);

void BM_Gemm(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto a = weights(n * n, 1.0);
  const auto b = weights(n * n, 1.0);
  std::vector<float> c(n * n);
  for (auto _ : state) {
    nn::gemm(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);  // FLOPs
}
BENCHMARK(BM_Gemm)->Arg(128)->Arg(256);

void BM_NocUniformTraffic(benchmark::State& state) {
  for (auto _ : state) {
    noc::Network net{noc::NocConfig{}};
    net.add_packets(
        noc::uniform_random_traffic(net.config(), 500, 4, 11));
    net.run_until_drained(1000000);
    benchmark::DoNotOptimize(net.stats().cycles);
  }
}
BENCHMARK(BM_NocUniformTraffic);

void BM_NocScatterStream(benchmark::State& state) {
  noc::NocConfig cfg;
  const auto pes = cfg.pe_nodes();
  for (auto _ : state) {
    noc::Network net{cfg};
    for (int mi : cfg.memory_interface_nodes()) {
      net.add_packets(noc::scatter_flow(mi, pes, 3000, 32));
    }
    net.run_until_drained(1000000);
    benchmark::DoNotOptimize(net.stats().throughput());
  }
}
BENCHMARK(BM_NocScatterStream);

}  // namespace

BENCHMARK_MAIN();
