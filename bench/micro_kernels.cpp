// Engineering micro-benchmarks (google-benchmark): codec throughput,
// decompressor-unit rate, router/network cycle rate, GEMM, quantization.
// Not a paper figure — these guard the simulator's own performance.
//
// After the google-benchmark suite, main() runs a GEMM/conv thread-scaling
// sweep (1, 2, 4, N threads) and writes machine-readable results to
// BENCH_parallel.json (path override: NOCW_BENCH_JSON) so later PRs can
// track the perf trajectory of the parallel kernels.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"

#include "core/codec.hpp"
#include "core/decompressor_unit.hpp"
#include "nn/gemm.hpp"
#include "nn/layers.hpp"
#include "nn/tensor.hpp"
#include "noc/network.hpp"
#include "noc/traffic.hpp"
#include "obs/log.hpp"
#include "quant/affine.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace nocw;

std::vector<float> weights(std::size_t n, double stddev = 0.05) {
  Xoshiro256pp rng(42);
  std::vector<float> w(n);
  for (auto& x : w) x = static_cast<float>(rng.normal(0.0, stddev));
  return w;
}

void BM_Compress(benchmark::State& state) {
  const auto w = weights(static_cast<std::size_t>(state.range(0)));
  core::CodecConfig cfg;
  cfg.delta_percent = 10.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::compress(w, cfg));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Compress)->Arg(1 << 14)->Arg(1 << 18);

void BM_Decompress(benchmark::State& state) {
  const auto w = weights(static_cast<std::size_t>(state.range(0)));
  core::CodecConfig cfg;
  cfg.delta_percent = 10.0;
  const auto layer = core::compress(w, cfg);
  std::vector<float> out(w.size());
  for (auto _ : state) {
    core::decompress(layer, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Decompress)->Arg(1 << 18);

void BM_DecompressorUnit(benchmark::State& state) {
  const auto w = weights(1 << 14);
  core::CodecConfig cfg;
  cfg.delta_percent = 15.0;
  const auto layer = core::compress(w, cfg);
  for (auto _ : state) {
    core::DecompressorUnit du;
    float sink = 0.0F;
    for (const auto& seg : layer.segments) {
      du.load(seg);
      while (du.busy()) {
        if (auto v = du.tick()) sink += *v;
      }
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * (1 << 14));
}
BENCHMARK(BM_DecompressorUnit);

void BM_Serialize(benchmark::State& state) {
  const auto w = weights(1 << 16);
  core::CodecConfig cfg;
  cfg.delta_percent = 10.0;
  const auto layer = core::compress(w, cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::serialize(layer));
  }
  state.SetItemsProcessed(state.iterations() * (1 << 16));
}
BENCHMARK(BM_Serialize);

void BM_Quantize(benchmark::State& state) {
  const auto w = weights(1 << 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(quant::quantize_tensor(w));
  }
  state.SetItemsProcessed(state.iterations() * (1 << 16));
}
BENCHMARK(BM_Quantize);

void BM_Gemm(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto a = weights(n * n, 1.0);
  const auto b = weights(n * n, 1.0);
  std::vector<float> c(n * n);
  for (auto _ : state) {
    nn::gemm(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);  // FLOPs
}
BENCHMARK(BM_Gemm)->Arg(128)->Arg(256);

void BM_GemmParallel(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  set_global_threads(static_cast<unsigned>(state.range(1)));
  const auto a = weights(n * n, 1.0);
  const auto b = weights(n * n, 1.0);
  std::vector<float> c(n * n);
  for (auto _ : state) {
    nn::gemm(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);  // FLOPs
  set_global_threads(1);
}
BENCHMARK(BM_GemmParallel)->Args({512, 1})->Args({512, 2})->Args({512, 4});

void BM_NocUniformTraffic(benchmark::State& state) {
  for (auto _ : state) {
    noc::Network net{noc::NocConfig{}};
    net.add_packets(
        noc::uniform_random_traffic(net.config(), 500, 4, 11));
    net.run_until_drained(1000000);
    benchmark::DoNotOptimize(net.stats().cycles);
  }
}
BENCHMARK(BM_NocUniformTraffic);

void BM_NocScatterStream(benchmark::State& state) {
  noc::NocConfig cfg;
  const auto pes = cfg.pe_nodes();
  for (auto _ : state) {
    noc::Network net{cfg};
    for (int mi : cfg.memory_interface_nodes()) {
      net.add_packets(noc::scatter_flow(mi, pes, 3000, 32));
    }
    net.run_until_drained(1000000);
    benchmark::DoNotOptimize(net.stats().throughput());
  }
}
BENCHMARK(BM_NocScatterStream);

// --- thread-scaling sweep → BENCH_parallel.json ----------------------------

struct ScalePoint {
  unsigned threads = 1;
  double seconds = 0.0;
};

template <typename Fn>
double best_seconds(int reps, const Fn& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

std::vector<unsigned> scaling_thread_counts() {
  const unsigned hw = std::max(1U, std::thread::hardware_concurrency());
  std::vector<unsigned> counts{1, 2, 4};
  counts.push_back(hw);
  std::sort(counts.begin(), counts.end());
  counts.erase(std::unique(counts.begin(), counts.end()), counts.end());
  return counts;
}

void emit_results(std::FILE* f, const std::vector<ScalePoint>& pts,
                  double flops) {
  const double t1 = pts.front().seconds;
  std::fprintf(f, "    \"results\": [\n");
  for (std::size_t i = 0; i < pts.size(); ++i) {
    std::fprintf(f,
                 "      {\"threads\": %u, \"seconds\": %.6f, "
                 "\"gflops\": %.3f, \"speedup\": %.3f}%s\n",
                 pts[i].threads, pts[i].seconds,
                 flops / pts[i].seconds * 1e-9, t1 / pts[i].seconds,
                 i + 1 < pts.size() ? "," : "");
  }
  std::fprintf(f, "    ]\n");
}

void write_parallel_scaling_report(const std::string& dir) {
  const std::string path =
      env_string("NOCW_BENCH_JSON", "BENCH_parallel.json");
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return;
  }
  const std::vector<unsigned> counts = scaling_thread_counts();

  // GEMM: the acceptance-size 512x512x512 product.
  constexpr std::size_t kN = 512;
  const auto a = weights(kN * kN, 1.0);
  const auto b = weights(kN * kN, 1.0);
  std::vector<float> c(kN * kN);
  const double gemm_flops = 2.0 * kN * kN * kN;
  std::vector<ScalePoint> gemm_pts;
  for (unsigned t : counts) {
    set_global_threads(t);
    nn::gemm(a.data(), b.data(), c.data(), kN, kN, kN);  // warm up pool
    gemm_pts.push_back(ScalePoint{
        t, best_seconds(3, [&] {
          nn::gemm(a.data(), b.data(), c.data(), kN, kN, kN);
        })});
  }

  // Conv: a mid-network Same-padded 3x3 layer (im2col + GEMM path).
  constexpr int kBatch = 4, kHW = 56, kCin = 32, kCout = 64;
  nn::Conv2D conv("scaling_conv", kCin, kCout, 3, 3, 1, nn::Padding::Same);
  {
    Xoshiro256pp rng(7);
    for (auto& v : conv.kernel()) v = static_cast<float>(rng.normal(0, 0.05));
  }
  nn::Tensor input({kBatch, kHW, kHW, kCin});
  {
    Xoshiro256pp rng(8);
    for (auto& v : input.data()) v = static_cast<float>(rng.normal());
  }
  const nn::Tensor* conv_in[] = {&input};
  const double conv_flops = 2.0 * kBatch * kHW * kHW * 9.0 * kCin * kCout;
  std::vector<ScalePoint> conv_pts;
  for (unsigned t : counts) {
    set_global_threads(t);
    (void)conv.forward(conv_in);  // warm up pool
    conv_pts.push_back(ScalePoint{
        t, best_seconds(3, [&] { (void)conv.forward(conv_in); })});
  }
  set_global_threads(1);

  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"gemm\": {\n");
  std::fprintf(f,
               "    \"m\": %zu, \"k\": %zu, \"n\": %zu, \"flops\": %.0f,\n",
               kN, kN, kN, gemm_flops);
  emit_results(f, gemm_pts, gemm_flops);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"conv\": {\n");
  std::fprintf(f,
               "    \"batch\": %d, \"height\": %d, \"width\": %d, "
               "\"in_channels\": %d, \"out_channels\": %d, \"flops\": %.0f,\n",
               kBatch, kHW, kHW, kCin, kCout, conv_flops);
  emit_results(f, conv_pts, conv_flops);
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  obs::log("thread-scaling results written to %s\n", path.c_str());

  std::map<std::string, double> metrics{
      {"gemm.flops", gemm_flops},
      {"conv.flops", conv_flops}};
  for (const auto& p : gemm_pts) {
    metrics["gemm.t" + std::to_string(p.threads) + ".seconds"] = p.seconds;
  }
  for (const auto& p : conv_pts) {
    metrics["conv.t" + std::to_string(p.threads) + ".seconds"] = p.seconds;
  }
  bench::write_summary(dir, "micro_kernels", metrics);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  write_parallel_scaling_report(nocw::bench::output_dir(argv[0]));
  return 0;
}
