// Compress a real model from the zoo and inspect the accuracy trade-off.
//
//   $ ./compress_model [model] [probes]
//   model: LeNet-5 | AlexNet | VGG-16 | MobileNet | Inception-v3 | ResNet50
//          (default MobileNet — fast at full resolution)
//
// Demonstrates the Fig. 8 evaluation flow as a library: build the model,
// let the Layer Selection policy pick the compression target, then sweep δ
// and report compression ratio vs top-5 agreement with the uncompressed
// network. The expensive prefix of the network runs once thanks to
// penultimate-activation caching.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "eval/flow.hpp"
#include "eval/layer_selection.hpp"
#include "nn/models.hpp"

int main(int argc, char** argv) {
  using namespace nocw;
  const std::string name = argc > 1 ? argv[1] : "MobileNet";
  const int probes = argc > 2 ? std::atoi(argv[2]) : 4;

  nn::Model model = nn::make_model(name, /*seed=*/1);
  std::printf("%s: %zu parameters, %zu graph nodes\n", model.name.c_str(),
              model.graph.total_params(), model.graph.node_count());

  const int selected = eval::select_layer(model);
  const nn::Layer& layer = model.graph.layer(selected);
  std::printf("layer selection policy picked '%s' (%zu weights, %.1f%% of "
              "the model)\n\n",
              layer.name().c_str(), layer.kernel().size(),
              100.0 * static_cast<double>(layer.param_count()) /
                  static_cast<double>(model.graph.total_params()));

  eval::EvalConfig cfg;
  cfg.probes = probes;
  cfg.topk = 5;
  std::printf("caching penultimate activations for %d probes...\n", probes);
  eval::DeltaEvaluator ev(model, cfg);

  std::printf("\n%6s %8s %12s %10s %16s\n", "delta", "CR", "weighted CR",
              "MSE", "top-5 agreement");
  for (double delta : {0.0, 2.0, 4.0, 6.0, 8.0, 12.0, 16.0, 20.0}) {
    const eval::DeltaPoint p = ev.evaluate(delta);
    std::printf("%5.0f%% %8.2f %12.2f %10.2e %16.3f\n", delta, p.report.cr,
                p.report.weighted_cr, p.report.mse, p.accuracy);
  }
  std::printf("\nNote: agreement = overlap of top-5 predictions with the\n"
              "uncompressed model on the same probe inputs (1.0 = identical"
              " behaviour).\n");
  return 0;
}
