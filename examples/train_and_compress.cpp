// End-to-end LeNet-5 story: train on procedural digits, then trade accuracy
// for latency/energy via weights compression.
//
//   $ ./train_and_compress [train_samples] [epochs]
//
// This is the complete loop the paper evaluates for LeNet-5, entirely
// in-repo: dataset generation, SGD training, compression sweep with real
// top-1 accuracy, and the accelerator simulation of both variants.
#include <cstdio>
#include <cstdlib>

#include "accel/simulator.hpp"
#include "eval/flow.hpp"
#include "nn/models.hpp"
#include "nn/train.hpp"

int main(int argc, char** argv) {
  using namespace nocw;
  const int train_n = argc > 1 ? std::atoi(argv[1]) : 1000;
  const int epochs = argc > 2 ? std::atoi(argv[2]) : 4;

  nn::Model model = nn::make_lenet5();
  const nn::Dataset train = nn::make_digits(train_n, 123);
  const nn::Dataset test = nn::make_digits(300, 321);

  std::printf("training LeNet-5 on %d synthetic digits, %d epochs...\n",
              train_n, epochs);
  nn::TrainConfig tcfg;
  tcfg.epochs = epochs;
  tcfg.learning_rate = 0.08F;
  const nn::TrainStats stats = nn::train_classifier(model.graph, train, tcfg);
  for (std::size_t e = 0; e < stats.epoch_loss.size(); ++e) {
    std::printf("  epoch %zu: loss %.4f, train top-1 %.3f\n", e + 1,
                stats.epoch_loss[e], stats.epoch_accuracy[e]);
  }
  std::printf("test top-1: %.4f\n\n", nn::evaluate_top1(model.graph, test));

  // Accuracy vs compression sweep with genuine labels.
  eval::EvalConfig cfg;
  cfg.topk = 1;
  eval::DeltaEvaluator ev(model, test, cfg);
  const accel::ModelSummary summary = accel::summarize(model);
  accel::AcceleratorSim sim;
  const accel::InferenceResult base = sim.simulate(summary);

  std::printf("%6s %8s %10s %12s %12s\n", "delta", "CR", "top-1",
              "latency(x)", "energy(x)");
  std::printf("%6s %8s %10.4f %12.3f %12.3f\n", "orig", "-",
              ev.baseline_accuracy(), 1.0, 1.0);
  for (double delta : {0.0, 5.0, 10.0, 15.0, 20.0}) {
    const eval::DeltaPoint p = ev.evaluate(delta);
    accel::CompressionPlan plan;
    plan[ev.selected_layer()] = p.compression;
    const accel::InferenceResult comp = sim.simulate(summary, &plan);
    std::printf("%5.0f%% %8.2f %10.4f %12.3f %12.3f\n", delta, p.report.cr,
                p.accuracy, comp.latency.total() / base.latency.total(),
                comp.energy.total() / base.energy.total());
  }
  std::printf("\n(latency/energy normalized to the uncompressed model)\n");
  return 0;
}
