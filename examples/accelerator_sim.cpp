// Simulate a CNN inference on the NoC accelerator, with and without
// weights compression.
//
//   $ ./accelerator_sim [model] [delta]
//   model: zoo name (default LeNet-5); delta: tolerance %, default 15
//
// Shows the full pipeline: model -> analytic layer summary -> cycle-accurate
// NoC simulation of the weight/feature-map traffic -> latency & energy
// breakdowns, then the same inference with the selected layer compressed at
// the requested δ.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "accel/simulator.hpp"
#include "core/codec.hpp"
#include "eval/layer_selection.hpp"
#include "nn/models.hpp"

namespace {

void print_result(const char* tag, const nocw::accel::InferenceResult& r) {
  std::printf("%s\n", tag);
  std::printf("  latency: %.0f cycles (memory %.0f | noc %.0f | compute "
              "%.0f)\n",
              r.latency.total(), r.latency.memory_cycles,
              r.latency.comm_cycles, r.latency.compute_cycles);
  const auto& e = r.energy;
  std::printf("  energy:  %.2f uJ (comm %.2f | compute %.2f | local mem "
              "%.2f | main mem %.2f)\n",
              e.total() * 1e6, e.communication.total() * 1e6,
              e.computation.total() * 1e6, e.local_memory.total() * 1e6,
              e.main_memory.total() * 1e6);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nocw;
  const std::string name = argc > 1 ? argv[1] : "LeNet-5";
  const double delta = argc > 2 ? std::atof(argv[2]) : 15.0;

  nn::Model model = nn::make_model(name, /*seed=*/1);
  const accel::ModelSummary summary = accel::summarize(model);
  std::printf("%s on a 4x4 mesh (12 PEs, 4 memory interfaces):\n",
              name.c_str());
  std::printf("  %zu params, %.2f GMACs, %zu traffic-bearing layers\n\n",
              static_cast<std::size_t>(summary.total_params),
              static_cast<double>(summary.total_macs) / 1e9,
              summary.macro_layers().size());

  accel::AcceleratorSim sim;
  const accel::InferenceResult base = sim.simulate(summary);
  print_result("original model:", base);

  // Compress the selected layer and re-simulate.
  const int selected = eval::select_layer(model);
  nn::Layer& layer = model.graph.layer(selected);
  core::CodecConfig ccfg;
  ccfg.delta_percent = delta;
  const core::CompressedLayer compressed =
      core::compress(layer.kernel(), ccfg);
  accel::CompressionPlan plan;
  plan[layer.name()] = accel::LayerCompression{
      compressed.compressed_bits(), compressed.original_count};
  std::printf("\ncompressing '%s' at delta=%.0f%%: CR %.2f, MSE %.2e\n\n",
              layer.name().c_str(), delta, compressed.compression_ratio(),
              compressed.mse());
  const accel::InferenceResult comp = sim.simulate(summary, &plan);
  print_result("compressed model:", comp);

  std::printf("\n=> inference latency -%.1f%%, inference energy -%.1f%%\n",
              100.0 * (1.0 - comp.latency.total() / base.latency.total()),
              100.0 * (1.0 - comp.energy.total() / base.energy.total()));
  return 0;
}
