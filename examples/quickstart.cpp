// Quickstart: compress a weight stream, inspect the trade-off, decompress.
//
//   $ ./quickstart
//
// Walks through the core API in five steps: generate a realistic weight
// succession, sweep the tolerance threshold δ, inspect the storage format,
// verify the hardware decompressor agrees with the software path, and show
// the serialized bitstream round-trip.
#include <cstdio>
#include <vector>

#include "core/codec.hpp"
#include "core/decompressor_unit.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

int main() {
  using namespace nocw;

  // 1. A synthetic layer: 100k Laplacian-distributed weights, the shape
  //    trained CNN layers exhibit (peaked at zero, heavy tails).
  Xoshiro256pp rng(7);
  std::vector<float> weights(100000);
  for (auto& w : weights) {
    const double u = rng.uniform() - 0.5;
    w = static_cast<float>((u < 0 ? 1 : -1) * 0.05 *
                           std::log(1.0 - 2.0 * std::abs(u)));
  }
  std::printf("layer: %zu weights, range %.4f\n", weights.size(),
              value_range(weights));

  // 2. Sweep the tolerance threshold δ (percent of the weight range).
  std::printf("\n%6s %8s %10s %12s\n", "delta", "CR", "MSE", "mean |M_i|");
  for (double delta : {0.0, 5.0, 10.0, 15.0, 20.0}) {
    core::CodecConfig cfg;
    cfg.delta_percent = delta;
    const core::CompressedLayer layer = core::compress(weights, cfg);
    std::printf("%5.0f%% %8.2f %10.2e %12.2f\n", delta,
                layer.compression_ratio(), layer.mse(),
                layer.mean_segment_length());
  }

  // 3. Pick δ = 10% and look at what is actually stored.
  core::CodecConfig cfg;
  cfg.delta_percent = 10.0;
  const core::CompressedLayer layer = core::compress(weights, cfg);
  std::printf("\nat delta=10%%: %zu segments, first three:\n",
              layer.segments.size());
  for (std::size_t i = 0; i < 3 && i < layer.segments.size(); ++i) {
    const auto& s = layer.segments[i];
    std::printf("  <m=%+.5f, q=%+.5f, len=%u>\n", s.m, s.q, s.length);
  }

  // 4. The per-PE hardware decompressor (Fig. 6 of the paper) reconstructs
  //    the same stream, one weight per clock, multiplier-free.
  core::DecompressorUnit du;
  std::vector<float> hw;
  hw.reserve(weights.size());
  for (const auto& seg : layer.segments) {
    du.load(seg);
    while (du.busy()) {
      if (auto w = du.tick()) hw.push_back(*w);
    }
  }
  const std::vector<float> sw = core::decompress(layer);
  std::printf("\nhardware decompressor: %llu weights in %llu cycles, "
              "bit-identical to software: %s\n",
              static_cast<unsigned long long>(du.emitted()),
              static_cast<unsigned long long>(du.cycles()),
              hw == sw ? "yes" : "NO");

  // 5. Serialize to the bit-packed main-memory format and back.
  const auto bytes = core::serialize(layer);
  const auto back = core::deserialize(bytes);
  std::printf("serialized: %zu bytes (%.2fx smaller than %zu raw bytes), "
              "round-trip ok: %s\n",
              bytes.size(),
              static_cast<double>(weights.size() * 4) / bytes.size(),
              weights.size() * 4,
              core::decompress(back) == sw ? "yes" : "NO");
  return 0;
}
