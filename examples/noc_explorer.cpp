// Explore the NoC substrate directly: traffic patterns, buffer depths, and
// the latency/throughput behaviour of the 4x4 accelerator mesh.
//
//   $ ./noc_explorer [packets] [flits_per_packet]
//
// Useful when tuning the interconnect independently of any CNN: runs
// uniform-random, hotspot (all-to-one-MI) and the accelerator's
// scatter/gather patterns across buffer depths.
#include <cstdio>
#include <cstdlib>

#include "noc/network.hpp"
#include "noc/traffic.hpp"

namespace {

void run(const char* tag, nocw::noc::Network& net) {
  const auto cycles = net.run_until_drained(10000000);
  const auto& st = net.stats();
  std::printf("  %-22s %8llu cycles  %6.3f flits/cycle  mean pkt latency "
              "%7.1f\n",
              tag, static_cast<unsigned long long>(cycles), st.throughput(),
              st.packet_latency.mean());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nocw::noc;
  const int packets = argc > 1 ? std::atoi(argv[1]) : 2000;
  const std::uint32_t flits = argc > 2
                                  ? static_cast<std::uint32_t>(
                                        std::atoi(argv[2]))
                                  : 8;

  for (int depth : {2, 4, 8}) {
    NocConfig cfg;
    cfg.buffer_depth = depth;
    std::printf("4x4 mesh, buffer depth %d:\n", depth);
    {
      Network net(cfg);
      net.add_packets(uniform_random_traffic(cfg, packets, flits, 99));
      run("uniform random", net);
    }
    {
      Network net(cfg);
      std::uint64_t volume =
          static_cast<std::uint64_t>(packets) * flits / 15;
      for (int src = 0; src < cfg.node_count(); ++src) {
        if (src == 0) continue;
        net.add_packets(stream_flow(src, 0, volume, flits));
      }
      run("hotspot (to MI 0)", net);
    }
    {
      Network net(cfg);
      const auto pes = cfg.pe_nodes();
      const std::uint64_t volume =
          static_cast<std::uint64_t>(packets) * flits / 4;
      for (int mi : cfg.memory_interface_nodes()) {
        net.add_packets(scatter_flow(mi, pes, volume, 32));
      }
      run("accelerator scatter", net);
    }
    std::printf("\n");
  }
  return 0;
}
