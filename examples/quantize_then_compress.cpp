// Stacking the codec on top of int8 quantization (the paper's Sec. IV-D).
//
//   $ ./quantize_then_compress [model] [probes]
//
// Quantizes every kernel to TFLite-style int8, then sweeps δ on the selected
// layer's code stream, reporting the whole-model weighted compression ratio
// (relative to float32) and the top-5 agreement with the float32 model.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "eval/quantized_flow.hpp"
#include "nn/models.hpp"

int main(int argc, char** argv) {
  using namespace nocw;
  const std::string name = argc > 1 ? argv[1] : "LeNet-5";
  const int probes = argc > 2 ? std::atoi(argv[2]) : 4;

  nn::Model model = nn::make_model(name, /*seed=*/1);
  eval::QuantizedEvalConfig cfg;
  cfg.probes = probes;
  std::printf("%s: quantizing all kernels to int8 and probing...\n",
              name.c_str());
  eval::QuantizedDeltaEvaluator ev(model, cfg);
  std::printf("selected layer: %s\n", ev.selected_layer().c_str());
  std::printf("\n%-12s %12s %16s\n", "config", "weighted CR",
              "top-5 agreement");
  std::printf("%-12s %12.2f %16.3f\n", "QT alone", ev.baseline().weighted_cr,
              ev.baseline().accuracy);
  for (double delta : {0.0, 5.0, 10.0, 15.0, 20.0, 30.0}) {
    const eval::QuantizedDeltaPoint p = ev.evaluate(delta);
    char label[32];
    std::snprintf(label, sizeof(label), "QT + x-%.0f%%", delta);
    std::printf("%-12s %12.2f %16.3f\n", label, p.weighted_cr, p.accuracy);
  }
  std::printf("\nweighted CR is whole-model bits: float32 baseline vs int8 "
              "with the selected\nlayer's stream replaced by the compressed "
              "segments.\n");
  return 0;
}
