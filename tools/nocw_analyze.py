#!/usr/bin/env python3
"""AST-grounded units-and-determinism analyzer for the nocw tree.

Where tools/lint.py is a line-oriented style gate, this tool checks the
*semantic* rules the strong quantity types (src/util/units.hpp) and the
seed-reproducibility contract rest on. It runs three passes:

  units        the dimensional-safety rules around the quantity types:
    .vocab         registry/time-series registration sites whose unit
                   argument is a string literal must draw it from the closed
                   vocabulary in src/util/units_vocab.inc (the same X-macro
                   list units.hpp and registry.cpp compile in);
    .raw-field     a float field whose name carries an energy/power unit
                   suffix (_j, _pj, _mw, _w, _joules, _watts) must be a
                   units:: quantity, not a bare double — a bare field is
                   exactly the pJ/J mix-up surface the types closed;
    .value-launder arithmetic whose *both* operands are .value() escapes —
                   `a.value() + b.value()` launders two typed magnitudes
                   through raw arithmetic, skipping the dimension check the
                   typed operators would have done.

  determinism  every result in this repo must be bit-identical across runs
               and thread counts from a single seed:
    .rng           rand()/srand()/std::random_device outside util/rng.hpp;
    .clock         wall-clock reads (std::chrono clocks, time(), clock())
                   in library code (src/) — wall time may only be measured
                   in bench drivers, and never feeds simulation state;
    .unordered     unordered containers in the export/aggregation layers
                   (src/obs, src/eval), where iteration order reaches
                   serialized artifacts; use std::map / sorted vectors;
    .fault-hash    fault_hash() outside src/noc/fault.{cpp,hpp} — ad-hoc
                   counter-hash sampling breaks single-seed reproduction.

  contracts    run-time invariant discipline:
    .assert        naked assert() outside util/check.hpp; invariants go
                   through the always-on NOCW_CHECK* macros;
    .scale-factor  constructing Joules/Watts/Seconds/Picojoules with an
                   inline power-of-ten factor (`Joules{x * 1e-12}`) outside
                   units.hpp — scale changes must be the named, checked
                   conversions (to_joules, to_watts, seconds_at) so the
                   factor exists in exactly one audited place.

Frontends (--frontend):
  auto      (default) libclang when the Python bindings and a loadable
            libclang are present, else the built-in fallback;
  libclang  require clang.cindex; exit 77 ("skip") when unavailable so the
            ctest wrapper can mark the strict variant skipped rather than
            failed — CI installs the bindings and runs it for real;
  fallback  the dependency-free frontend: comment/string-aware lexing over
            the same rule set. Rules are written so both frontends agree on
            this tree; libclang additionally type-checks the match sites
            (e.g. .value() callee really is a units::Quantity member).

Suppression: a finding is dropped when its line, or the line above, carries
`// nocw-analyze: allow(<pass>)` or `allow(<pass>.<rule>)`. Suppressions are
for sites where the raw form is the *correct* one (e.g. summing a flit count
and a word count into a dimensionless event counter); each should carry a
justification in the surrounding comment.

Usage:
  tools/nocw_analyze.py [--root DIR] [--paths P ...] [--frontend F]
                        [--json OUT] [--self-test]

Exit status: 0 clean, 1 findings, 77 requested frontend unavailable,
2 internal error.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import pathlib
import re
import sys
import tempfile

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_INTERNAL = 2
EXIT_SKIP = 77  # conventional "test skipped"; ctest SKIP_RETURN_CODE

DEFAULT_PATHS = ("src", "bench", "tests", "examples")
CXX_SUFFIXES = (".cpp", ".hpp", ".h", ".cc")

RNG_ALLOWED = "src/util/rng.hpp"
ASSERT_ALLOWED = "src/util/check.hpp"
UNITS_HPP = "src/util/units.hpp"
FAULT_ALLOWED = ("src/noc/fault.cpp", "src/noc/fault.hpp",
                 # the primitive's unit test exercises it directly
                 "tests/noc/fault_test.cpp")
UNORDERED_SCOPE = ("src/obs/", "src/eval/")

ENERGY_SUFFIXES = ("_j", "_pj", "_mw", "_w", "_joules", "_watts")

SUPPRESS_RE = re.compile(r"//.*?nocw-analyze:\s*allow\(([\w.,\s-]+)\)")
NOCW_UNIT_RE = re.compile(r"^\s*NOCW_UNIT\((\w+)\)", re.M)

# Registration sites whose second argument is the unit. Matches both the
# Registry calls (name, unit, value) and TimeSeriesSet::append
# (name, unit, cycle, value); the typed overloads take no string unit and
# are therefore invisible to this rule — that is the point of them.
METRIC_CALL_RE = re.compile(
    r"\b(?:set_counter|add_counter|set_gauge|observe|append)\s*"
    r"\(\s*[^,;()]*?,\s*\"([^\"]*)\"", re.S)

RAND_RE = re.compile(r"\b(?:rand|srand)\s*\(|std::random_device")
CLOCK_RE = re.compile(
    r"std::chrono::(?:steady_clock|system_clock|high_resolution_clock)"
    r"|\btime\s*\(\s*(?:nullptr|NULL|0)\s*\)|\bclock\s*\(\s*\)")
UNORDERED_RE = re.compile(r"std::unordered_(?:map|set|multimap|multiset)")
FAULT_RE = re.compile(r"\bfault_hash\s*\(")
ASSERT_RE = re.compile(r"(?<!_)\bassert\s*\(")
FIELD_RE = re.compile(r"^\s*(?:double|float)\s+(\w+)\s*(?:=[^;]*)?;")
VALUE_LAUNDER_RE = re.compile(
    r"\.value\(\)\s*[-+]\s*[\w.:>\[\]()-]*?\.value\(\)")
# `Joules{x * 1e-12}`: a power-of-ten *factor* inside the constructor. A
# plain literal magnitude (`Seconds{1e-6}`) is fine — only multiplication or
# division by the factor marks an inline unit conversion.
SCALE_FACTOR_RE = re.compile(
    r"\b(?:Joules|Watts|Seconds|Picojoules|Milliwatts)\s*\{"
    r"[^{}]*(?:[*/]\s*1e-?\d+|\b1e-?\d+\s*[*/])")


@dataclasses.dataclass
class Finding:
    file: str
    line: int
    pass_name: str  # units | determinism | contracts
    rule: str       # e.g. "vocab"
    message: str

    def render(self) -> str:
        return (f"{self.file}:{self.line}: [{self.pass_name}.{self.rule}] "
                f"{self.message}")

    def as_json(self) -> dict:
        return {"file": self.file, "line": self.line,
                "pass": self.pass_name, "rule": self.rule,
                "message": self.message}


def load_unit_vocab(root: pathlib.Path) -> frozenset[str]:
    """The closed unit vocabulary from src/util/units_vocab.inc — the single
    source units.hpp, registry.cpp and tools/lint.py all consume."""
    inc = root / "src/util/units_vocab.inc"
    try:
        return frozenset(NOCW_UNIT_RE.findall(inc.read_text("utf-8")))
    except OSError:
        return frozenset()


def strip_comments(text: str) -> str:
    """Blank comments and the *contents* of string literals, preserving line
    numbers and the quote characters (so METRIC_CALL_RE still sees the unit
    literal — unit strings are re-read from the original text)."""
    out: list[str] = []
    i, n = 0, len(text)
    in_line = in_block = in_string = False
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if in_line:
            out.append(c if c == "\n" else " ")
            if c == "\n":
                in_line = False
        elif in_block:
            if c == "*" and nxt == "/":
                in_block = False
                out.append("  ")
                i += 1
            else:
                out.append(c if c == "\n" else " ")
        elif in_string:
            if c == "\\":
                out.append("  ")
                i += 1
            else:
                if c == '"':
                    in_string = False
                    out.append(c)
                else:
                    out.append(c if c == "\n" else " ")
        elif c == '"':
            in_string = True
            out.append(c)
        elif c == "/" and nxt == "/":
            in_line = True
            out.append("  ")
            i += 1
        elif c == "/" and nxt == "*":
            in_block = True
            out.append("  ")
            i += 1
        else:
            out.append(c)
        i += 1
    return "".join(out)


def suppressed_lines(original_text: str) -> dict[int, set[str]]:
    """line number -> set of allowed pass names / pass.rule keys."""
    allows: dict[int, set[str]] = {}
    for lineno, line in enumerate(original_text.splitlines(), start=1):
        m = SUPPRESS_RE.search(line)
        if m:
            keys = {k.strip() for k in m.group(1).split(",") if k.strip()}
            allows.setdefault(lineno, set()).update(keys)
    return allows


def is_suppressed(f: Finding, allows: dict[int, set[str]]) -> bool:
    for lineno in (f.line, f.line - 1):
        keys = allows.get(lineno, ())
        if f.pass_name in keys or f"{f.pass_name}.{f.rule}" in keys:
            return True
    return False


def line_of(text: str, pos: int) -> int:
    return text.count("\n", 0, pos) + 1


# ---------------------------------------------------------------------------
# Fallback frontend: comment/string-aware lexical analysis.
# ---------------------------------------------------------------------------

def analyze_file_fallback(rel: str, original: str,
                          vocab: frozenset[str]) -> list[Finding]:
    text = strip_comments(original)
    findings: list[Finding] = []
    in_src = rel.startswith("src/")
    is_header = rel.endswith((".hpp", ".h"))

    # --- units.vocab (unit literals survive in `original`) ---
    for m in METRIC_CALL_RE.finditer(original):
        unit = m.group(1)
        if vocab and unit not in vocab:
            findings.append(Finding(
                rel, line_of(original, m.start()), "units", "vocab",
                f"unit '{unit}' is not in src/util/units_vocab.inc; the "
                f"vocabulary is closed so exported metrics stay comparable "
                f"(or use the typed overloads and no string at all)"))

    for lineno, line in enumerate(text.splitlines(), start=1):
        # --- units.raw-field ---
        if in_src and is_header and "(" not in line:
            m = FIELD_RE.match(line)
            if m and m.group(1).rstrip("_").endswith(ENERGY_SUFFIXES):
                findings.append(Finding(
                    rel, lineno, "units", "raw-field",
                    f"float field '{m.group(1)}' carries an energy/power "
                    f"suffix but is not a units:: quantity; a bare double "
                    f"here is the pJ/J mix-up surface units.hpp closed"))
        # --- units.value-launder ---
        if rel != UNITS_HPP and VALUE_LAUNDER_RE.search(line):
            findings.append(Finding(
                rel, lineno, "units", "value-launder",
                "arithmetic between two .value() escapes skips the typed "
                "operators' dimension check; add/subtract the quantities "
                "themselves (or suppress where mixing is the intent)"))
        # --- determinism ---
        if rel != RNG_ALLOWED and RAND_RE.search(line):
            findings.append(Finding(
                rel, lineno, "determinism", "rng",
                "rand()/srand()/std::random_device outside util/rng.hpp "
                "breaks single-seed reproducibility"))
        if in_src and CLOCK_RE.search(line):
            findings.append(Finding(
                rel, lineno, "determinism", "clock",
                "wall-clock read in library code; wall time belongs in "
                "bench drivers and must never feed simulation state"))
        if (any(rel.startswith(p) for p in UNORDERED_SCOPE)
                and UNORDERED_RE.search(line)):
            findings.append(Finding(
                rel, lineno, "determinism", "unordered",
                "unordered container in an export/aggregation layer; "
                "iteration order reaches serialized artifacts — use "
                "std::map or a sorted vector"))
        if rel not in FAULT_ALLOWED and FAULT_RE.search(line):
            findings.append(Finding(
                rel, lineno, "determinism", "fault-hash",
                "fault_hash() outside noc/fault.{cpp,hpp}; sample through "
                "FaultModel so fault experiments replay from one seed"))
        # --- contracts ---
        if (rel != ASSERT_ALLOWED and "static_assert" not in line
                and ASSERT_RE.search(line)):
            findings.append(Finding(
                rel, lineno, "contracts", "assert",
                "naked assert(); use NOCW_CHECK* (always-on) or "
                "NOCW_DCHECK* (hot paths) from util/check.hpp"))
        if rel != UNITS_HPP and SCALE_FACTOR_RE.search(line):
            findings.append(Finding(
                rel, lineno, "contracts", "scale-factor",
                "quantity constructed with an inline power-of-ten factor; "
                "scale changes go through the named conversions in "
                "units.hpp (to_joules, to_watts, seconds_at) so each "
                "factor exists in exactly one audited place"))
    return findings


# ---------------------------------------------------------------------------
# libclang frontend: the same rules, grounded in the clang AST. Match sites
# are discovered through cursors/tokens instead of regexes, so e.g. a
# ".value()" inside a string or a macro-disabled branch cannot fire, and the
# unit argument is read from the actual StringLiteral node.
# ---------------------------------------------------------------------------

def load_libclang():
    """Return the clang.cindex module with a working Index, or None."""
    try:
        import clang.cindex as cindex  # type: ignore
    except ImportError:
        return None
    try:
        cindex.Index.create()
        return cindex
    except Exception:  # library file missing / ABI mismatch
        for name in ("libclang.so", "libclang-14.so", "libclang-14.so.1",
                     "libclang.so.1", "libclang.so.14"):
            try:
                cindex.Config.loaded = False
                cindex.Config.set_library_file(name)
                cindex.Index.create()
                return cindex
            except Exception:
                continue
        return None


METRIC_CALLEES = {"set_counter", "add_counter", "set_gauge", "observe",
                  "append"}
CLOCK_SPELLINGS = {"steady_clock", "system_clock", "high_resolution_clock"}
UNORDERED_SPELLINGS = {"unordered_map", "unordered_set", "unordered_multimap",
                       "unordered_multiset"}
SCALED_QUANTITIES = {"Joules", "Watts", "Seconds", "Picojoules", "Milliwatts"}


def analyze_file_libclang(cindex, index, root: pathlib.Path, rel: str,
                          original: str,
                          vocab: frozenset[str]) -> list[Finding]:
    path = root / rel
    args = ["-x", "c++", "-std=c++20", f"-I{root / 'src'}",
            f"-I{root / 'bench'}", "-fsyntax-only"]
    try:
        tu = index.parse(
            str(path), args=args,
            options=cindex.TranslationUnit.PARSE_DETAILED_PROCESSING_RECORD)
    except Exception:
        # Unparseable with these flags (e.g. a fixture): degrade per-file.
        return analyze_file_fallback(rel, original, vocab)

    findings: list[Finding] = []
    k = cindex.CursorKind

    def here(cursor) -> tuple[bool, int]:
        loc = cursor.location
        if loc.file is None or pathlib.Path(loc.file.name) != path:
            return False, 0
        return True, loc.line

    def first_string_arg_after_name(call) -> tuple[str, int] | None:
        args_ = list(call.get_arguments())
        if len(args_) < 2:
            return None
        for tok in args_[1].get_tokens():
            if tok.kind == cindex.TokenKind.LITERAL and \
                    tok.spelling.startswith('"'):
                return tok.spelling.strip('"'), tok.location.line
        return None

    def walk(cursor):
        in_file, line = here(cursor)
        if cursor.kind == k.CALL_EXPR and in_file:
            name = cursor.spelling
            if name in METRIC_CALLEES and vocab:
                got = first_string_arg_after_name(cursor)
                if got and got[0] not in vocab:
                    findings.append(Finding(
                        rel, got[1], "units", "vocab",
                        f"unit '{got[0]}' is not in "
                        f"src/util/units_vocab.inc; the vocabulary is "
                        f"closed so exported metrics stay comparable"))
            elif name in ("rand", "srand") and rel != RNG_ALLOWED:
                findings.append(Finding(
                    rel, line, "determinism", "rng",
                    "rand()/srand() breaks single-seed reproducibility; "
                    "use util/rng.hpp"))
            elif name == "fault_hash" and rel not in FAULT_ALLOWED:
                findings.append(Finding(
                    rel, line, "determinism", "fault-hash",
                    "fault_hash() outside noc/fault.{cpp,hpp}; sample "
                    "through FaultModel"))
        elif cursor.kind == k.TYPE_REF and in_file:
            sp = cursor.spelling.rsplit("::", 1)[-1]
            if sp == "random_device" and rel != RNG_ALLOWED:
                findings.append(Finding(
                    rel, line, "determinism", "rng",
                    "std::random_device breaks single-seed "
                    "reproducibility; use util/rng.hpp"))
            elif sp in CLOCK_SPELLINGS and rel.startswith("src/"):
                findings.append(Finding(
                    rel, line, "determinism", "clock",
                    "wall-clock read in library code; wall time belongs "
                    "in bench drivers"))
            elif (sp in UNORDERED_SPELLINGS
                  and any(rel.startswith(p) for p in UNORDERED_SCOPE)):
                findings.append(Finding(
                    rel, line, "determinism", "unordered",
                    "unordered container in an export/aggregation layer; "
                    "use std::map or a sorted vector"))
        elif (cursor.kind == k.MACRO_INSTANTIATION and in_file
              and cursor.spelling == "assert" and rel != ASSERT_ALLOWED):
            findings.append(Finding(
                rel, line, "contracts", "assert",
                "naked assert(); use NOCW_CHECK* from util/check.hpp"))
        for child in cursor.get_children():
            walk(child)

    walk(tu.cursor)

    # Token-level rules (value-launder, raw-field, scale-factor) reuse the
    # lexical matcher on the comment-stripped text; clang's tokens agree with
    # it on this tree, and keeping one implementation avoids rule drift.
    lexical = analyze_file_fallback(rel, original, vocab)
    covered = {("units", "vocab"), ("determinism", "rng"),
               ("determinism", "fault-hash"), ("contracts", "assert"),
               ("determinism", "clock"), ("determinism", "unordered")}
    findings.extend(f for f in lexical
                    if (f.pass_name, f.rule) not in covered)
    return findings


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def iter_files(root: pathlib.Path, paths: list[str]):
    for sub in paths:
        d = root / sub
        if not d.is_dir():
            continue
        for path in sorted(d.rglob("*")):
            if path.suffix in CXX_SUFFIXES:
                yield path


def analyze_tree(root: pathlib.Path, paths: list[str],
                 frontend: str) -> tuple[list[Finding], str]:
    vocab = load_unit_vocab(root)
    cindex = None
    if frontend in ("auto", "libclang"):
        cindex = load_libclang()
        if cindex is None and frontend == "libclang":
            raise LibclangUnavailable()
    used = "libclang" if cindex else "fallback"
    index = cindex.Index.create() if cindex else None

    findings: list[Finding] = []
    for path in iter_files(root, paths):
        rel = path.relative_to(root).as_posix()
        original = path.read_text(encoding="utf-8")
        if cindex:
            fs = analyze_file_libclang(cindex, index, root, rel, original,
                                       vocab)
        else:
            fs = analyze_file_fallback(rel, original, vocab)
        allows = suppressed_lines(original)
        findings.extend(f for f in fs if not is_suppressed(f, allows))
    return findings, used


class LibclangUnavailable(Exception):
    pass


# ---------------------------------------------------------------------------
# Self-test: every rule must fire on a seeded violation, stay quiet on the
# clean twin, and honor suppressions.
# ---------------------------------------------------------------------------

SELF_TEST_VOCAB = ("// fixture vocabulary\n"
                   "NOCW_UNIT(cycles)\nNOCW_UNIT(joules)\nNOCW_UNIT(flits)\n"
                   "NOCW_UNIT(count)\n")

SEEDED = {
    "src/obs/bad_vocab.cpp":
        '#include "obs/registry.hpp"\n'
        "void f(nocw::obs::Registry& r) {\n"
        '  r.set_gauge("x.energy", "femtojoules", 1.0);\n'
        "}\n",
    "src/power/bad_field.hpp":
        "struct T {\n  double dynamic_j = 0.0;\n  double leak_mw;\n};\n",
    "src/accel/bad_launder.cpp":
        '#include "util/units.hpp"\n'
        "double f(nocw::units::Cycles a, nocw::units::Joules b) {\n"
        "  return a.value() + b.value();\n"
        "}\n",
    "src/nn/bad_rng.cpp":
        "int f() { return rand(); }\n",
    "src/core/bad_clock.cpp":
        "#include <chrono>\n"
        "long f() { return std::chrono::steady_clock::now()"
        ".time_since_epoch().count(); }\n",
    "src/obs/bad_unordered.hpp":
        "#include <unordered_map>\n"
        "struct E { std::unordered_map<int, double> by_id; };\n",
    "src/eval/bad_fault.cpp":
        '#include "noc/fault.hpp"\n'
        "unsigned long h() { return nocw::noc::fault_hash(1, 2, 3, 4); }\n",
    "src/noc/bad_assert.cpp":
        "#include <cassert>\nvoid g(int x) { assert(x > 0); }\n",
    "src/power/bad_scale.cpp":
        '#include "util/units.hpp"\n'
        "nocw::units::Joules f(double pj) {\n"
        "  return nocw::units::Joules{pj * 1e-12};\n"
        "}\n",
}

CLEAN = {
    "src/obs/good_vocab.cpp":
        '#include "obs/registry.hpp"\n'
        "void f(nocw::obs::Registry& r) {\n"
        '  r.set_gauge("x.energy", "joules", 1.0);\n'
        '  r.set_counter("x.layers", "count", 3);\n'
        "}\n",
    "src/power/good_field.hpp":
        '#include "util/units.hpp"\n'
        "struct U {\n"
        "  nocw::units::Joules dynamic_j;\n"
        "  double clock_ghz = 1.0;\n"
        "  double dram_efficiency = 0.7;\n"
        "};\n",
    "src/accel/good_typed.cpp":
        '#include "util/units.hpp"\n'
        "nocw::units::Cycles f(nocw::units::Cycles a, "
        "nocw::units::Cycles b) {\n"
        "  return a + b;  // typed add; .value() + literal is also fine\n"
        "}\n"
        "double g(nocw::units::Flits x) { return x.value() + 1.0; }\n",
    "src/accel/suppressed_launder.cpp":
        '#include "util/units.hpp"\n'
        "double f(nocw::units::Flits a, nocw::units::Words b) {\n"
        "  // flit+word sum is a dimensionless event count here\n"
        "  // nocw-analyze: allow(units.value-launder)\n"
        "  return a.value() + b.value();\n"
        "}\n",
    "src/util/good_comment.cpp":
        "// rand() and assert( and std::chrono::steady_clock in a comment\n"
        'const char* s = "std::random_device in a string";\n',
    "bench/good_clock.cpp":
        "#include <chrono>\n"
        "long wall_ms() { return std::chrono::steady_clock::now()"
        ".time_since_epoch().count(); }\n",
}

EXPECTED = {
    "src/obs/bad_vocab.cpp": ("units", "vocab"),
    "src/power/bad_field.hpp": ("units", "raw-field"),
    "src/accel/bad_launder.cpp": ("units", "value-launder"),
    "src/nn/bad_rng.cpp": ("determinism", "rng"),
    "src/core/bad_clock.cpp": ("determinism", "clock"),
    "src/obs/bad_unordered.hpp": ("determinism", "unordered"),
    "src/eval/bad_fault.cpp": ("determinism", "fault-hash"),
    "src/noc/bad_assert.cpp": ("contracts", "assert"),
    "src/power/bad_scale.cpp": ("contracts", "scale-factor"),
}


def self_test(frontend: str) -> int:
    with tempfile.TemporaryDirectory() as tmp:
        root = pathlib.Path(tmp)
        (root / "src/util").mkdir(parents=True)
        (root / "src/util/units_vocab.inc").write_text(SELF_TEST_VOCAB,
                                                       encoding="utf-8")
        for rel, content in {**SEEDED, **CLEAN}.items():
            p = root / rel
            p.parent.mkdir(parents=True, exist_ok=True)
            p.write_text(content, encoding="utf-8")

        # Fixtures are fragments, not translation units; the self-test
        # exercises the fallback frontend's rule set, which the libclang
        # frontend shares for token-level rules and mirrors for AST ones.
        try:
            findings, used = analyze_tree(root, list(DEFAULT_PATHS),
                                          "fallback")
        except LibclangUnavailable:
            return EXIT_SKIP

        failures = []
        # bad_field.hpp seeds two raw fields.
        field_hits = [f for f in findings
                      if f.file == "src/power/bad_field.hpp"]
        if len(field_hits) != 2:
            failures.append(f"expected 2 raw-field findings, got "
                            f"{len(field_hits)}")
        for rel, (pass_name, rule) in EXPECTED.items():
            if not any(f.file == rel and f.pass_name == pass_name
                       and f.rule == rule for f in findings):
                failures.append(f"[{pass_name}.{rule}] did not fire on {rel}")
        for rel in CLEAN:
            hits = [f.render() for f in findings if f.file == rel]
            if hits:
                failures.append(f"false positive on clean {rel}: {hits}")

        if failures:
            print("nocw_analyze self-test FAILED:")
            for f in failures:
                print(f"  {f}")
            return EXIT_FINDINGS
        print(f"nocw_analyze self-test passed ({frontend} requested, "
              f"rules checked on {used}): {len(findings)} seeded "
              f"violations flagged, suppressions honored, 0 false "
              f"positives")
        return EXIT_CLEAN


def main() -> int:
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--root", type=pathlib.Path,
                    default=pathlib.Path(__file__).resolve().parent.parent)
    ap.add_argument("--paths", nargs="*", default=list(DEFAULT_PATHS),
                    help="subdirectories of --root to analyze")
    ap.add_argument("--frontend", choices=("auto", "libclang", "fallback"),
                    default="auto")
    ap.add_argument("--json", type=pathlib.Path,
                    help="write machine-readable findings here")
    ap.add_argument("--self-test", action="store_true")
    args = ap.parse_args()

    if args.self_test:
        return self_test(args.frontend)

    try:
        findings, used = analyze_tree(args.root.resolve(), args.paths,
                                      args.frontend)
    except LibclangUnavailable:
        print("nocw_analyze: libclang frontend requested but clang.cindex "
              "or a loadable libclang is unavailable; skipping (exit 77)")
        return EXIT_SKIP

    for f in findings:
        print(f.render())
    if args.json:
        payload = {
            "schema": "nocw.analyze.v1",
            "frontend": used,
            "paths": args.paths,
            "findings": [f.as_json() for f in findings],
        }
        args.json.write_text(json.dumps(payload, indent=2) + "\n",
                             encoding="utf-8")
    if findings:
        print(f"nocw_analyze ({used}): {len(findings)} finding(s)")
        return EXIT_FINDINGS
    print(f"nocw_analyze ({used}): clean")
    return EXIT_CLEAN


if __name__ == "__main__":
    sys.exit(main())
