#!/usr/bin/env python3
"""Render a self-contained HTML dashboard from the observability artifacts.

Inputs (both optional — the dashboard renders whatever is available):

  --timeseries timeseries_lenet5.json   schema nocw.timeseries.v1, written
                                        by bench/ext_timeseries (sampled
                                        DRAM/MAC/decompress activity and
                                        NoC flit/queue series over cycles)
  --summary BENCH_summary.json          schema nocw.bench_summary.v1, the
                                        merged per-bench metric map written
                                        by every bench through bench_util
  --slo results/slo_windows.json        schema nocw.slo.v1, the per-window
                                        SLO verdicts + burn rates written
                                        by bench/ext_reqtrace

Output is ONE html file with inline SVG — no JavaScript, no external
assets, so it survives as a CI artifact and opens anywhere:

  1. Phase timeline: horizontal extent bars for each accel.* series
     (DRAM streaming, MAC activity, weight decompression) over the cycle
     axis, showing how the phases of each layer overlap.
  2. Utilization over cycles: every series as a polyline, each normalized
     to its own peak (units differ), with the peak printed in the legend.
  3. δ-trade-off curves: δ (%) vs latency, energy and accuracy per model,
     built from fig10_tradeoff's "<model>.d<delta>.*" summary metrics.
  4. Serving load sweep: p50/p99/p99.9 latency percentiles and goodput per
     scheduler, plus (with --slo) the SLO burn-rate panel and a
     breached-window table whose exemplar trace ids link into the
     nocw.reqtrace.v1 export.
  5. A bench summary table (model, git short-sha, wall seconds, #metrics,
     trace-sampling drop counters).

Usage:
  tools/obs_dashboard.py --timeseries TS.json --summary SUMMARY.json \\
                         -o dashboard.html
  tools/obs_dashboard.py --self-test

Exit status: 0 on success (including nothing-to-render), 1 on self-test
failure, 2 on unreadable/invalid input.
"""

from __future__ import annotations

import argparse
import html
import json
import pathlib
import re
import sys

PALETTE = ["#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e",
           "#8c564b", "#17becf", "#7f7f7f"]

DELTA_KEY_RE = re.compile(r"^(?P<model>.+)\.d(?P<delta>\d+)\."
                          r"(?P<metric>latency_cycles|energy_j|accuracy)$")

# ext_serving's grid keys: "<scheduler>.l<load%>.<metric>", e.g.
# "sjf.l120.p99_cycles" is SJF at 1.2x capacity.
SERVING_KEY_RE = re.compile(
    r"^(?P<sched>[a-z_]+)\.l(?P<load>\d+)\."
    r"(?P<metric>p50_cycles|p99_cycles|p999_cycles|goodput_rps)$")

# Trace-sampling drop accounting published by ext_reqtrace: per-point
# "<sched>.l<load%>.dropped_trees" plus the global exemplar_drops.
TRACE_DROP_KEY_RE = re.compile(r"(^|\.)(dropped_trees|exemplar_drops)$")


def fmt(v: float) -> str:
    return f"{v:g}"


# --- tiny SVG builder -------------------------------------------------------

class Chart:
    """A fixed-size line chart with linear axes and 5-tick labels."""

    W, H = 640, 280
    ML, MR, MT, MB = 70, 20, 24, 40  # margins

    def __init__(self, title: str, xlabel: str, ylabel: str):
        self.title = title
        self.xlabel = xlabel
        self.ylabel = ylabel
        self.lines: list[tuple[str, str, list[tuple[float, float]]]] = []

    def add_line(self, name: str, color: str,
                 pts: list[tuple[float, float]]) -> None:
        if pts:
            self.lines.append((name, color, pts))

    def _ranges(self):
        xs = [x for _, _, pts in self.lines for x, _ in pts]
        ys = [y for _, _, pts in self.lines for _, y in pts]
        x0, x1 = min(xs), max(xs)
        y0, y1 = min(ys), max(ys)
        if x1 == x0:
            x1 = x0 + 1.0
        if y1 == y0:
            y1 = y0 + (abs(y0) or 1.0)
        return x0, x1, y0, y1

    def render(self) -> str:
        if not self.lines:
            return ""
        x0, x1, y0, y1 = self._ranges()
        pw = self.W - self.ML - self.MR
        ph = self.H - self.MT - self.MB

        def sx(x: float) -> float:
            return self.ML + (x - x0) / (x1 - x0) * pw

        def sy(y: float) -> float:
            return self.MT + ph - (y - y0) / (y1 - y0) * ph

        out = [f'<svg viewBox="0 0 {self.W} {self.H}" width="{self.W}" '
               f'height="{self.H}" role="img">',
               f'<text x="{self.W / 2}" y="14" text-anchor="middle" '
               f'class="title">{html.escape(self.title)}</text>']
        # Axes + ticks.
        out.append(f'<rect x="{self.ML}" y="{self.MT}" width="{pw}" '
                   f'height="{ph}" class="frame"/>')
        for i in range(5):
            xt = x0 + (x1 - x0) * i / 4
            yt = y0 + (y1 - y0) * i / 4
            out.append(f'<line x1="{sx(xt):.1f}" y1="{self.MT + ph}" '
                       f'x2="{sx(xt):.1f}" y2="{self.MT + ph + 4}" '
                       f'class="tick"/>')
            out.append(f'<text x="{sx(xt):.1f}" y="{self.MT + ph + 16}" '
                       f'text-anchor="middle" class="lbl">{fmt(xt)}</text>')
            out.append(f'<text x="{self.ML - 6}" y="{sy(yt) + 3:.1f}" '
                       f'text-anchor="end" class="lbl">{fmt(yt)}</text>')
        out.append(f'<text x="{self.ML + pw / 2}" y="{self.H - 6}" '
                   f'text-anchor="middle" class="lbl">'
                   f'{html.escape(self.xlabel)}</text>')
        out.append(f'<text x="12" y="{self.MT + ph / 2}" class="lbl" '
                   f'text-anchor="middle" transform="rotate(-90 12 '
                   f'{self.MT + ph / 2})">{html.escape(self.ylabel)}</text>')
        # Data.
        for name, color, pts in self.lines:
            coords = " ".join(f"{sx(x):.1f},{sy(y):.1f}" for x, y in pts)
            out.append(f'<polyline points="{coords}" fill="none" '
                       f'stroke="{color}" stroke-width="1.5">'
                       f'<title>{html.escape(name)}</title></polyline>')
            for x, y in pts:
                out.append(f'<circle cx="{sx(x):.1f}" cy="{sy(y):.1f}" '
                           f'r="2" fill="{color}"/>')
        out.append("</svg>")
        # Legend under the chart.
        legend = "".join(
            f'<span class="key"><span class="swatch" '
            f'style="background:{color}"></span>{html.escape(name)}</span>'
            for name, color, _ in self.lines)
        return "".join(out) + f'<div class="legend">{legend}</div>'


def phase_timeline(series: list[dict]) -> str:
    """Horizontal extent bars for the accel.* phase series."""
    phases = [s for s in series if s["name"].startswith("accel.")
              and s["points"]]
    if not phases:
        return ""
    cyc_max = max(p[0] for s in phases for p in s["points"])
    W, ML, MR, ROW = 640, 170, 20, 26
    pw = W - ML - MR
    H = 30 + ROW * len(phases) + 22
    out = [f'<svg viewBox="0 0 {W} {H}" width="{W}" height="{H}" '
           f'role="img">',
           f'<text x="{W / 2}" y="14" text-anchor="middle" class="title">'
           f'Phase timeline (cycle extents)</text>']
    for i, s in enumerate(phases):
        c0 = min(p[0] for p in s["points"])
        c1 = max(p[0] for p in s["points"])
        y = 30 + ROW * i
        x0 = ML + c0 / cyc_max * pw
        x1 = ML + c1 / cyc_max * pw
        color = PALETTE[i % len(PALETTE)]
        out.append(f'<text x="{ML - 6}" y="{y + 13}" text-anchor="end" '
                   f'class="lbl">{html.escape(s["name"])}</text>')
        out.append(f'<rect x="{x0:.1f}" y="{y}" '
                   f'width="{max(x1 - x0, 2):.1f}" height="18" '
                   f'fill="{color}" opacity="0.75">'
                   f'<title>{html.escape(s["name"])}: cycles '
                   f'{fmt(c0)}–{fmt(c1)}</title></rect>')
    y_axis = 30 + ROW * len(phases)
    out.append(f'<line x1="{ML}" y1="{y_axis}" x2="{ML + pw}" '
               f'y2="{y_axis}" class="tick"/>')
    for i in range(5):
        c = cyc_max * i / 4
        x = ML + c / cyc_max * pw
        out.append(f'<text x="{x:.1f}" y="{y_axis + 14}" '
                   f'text-anchor="middle" class="lbl">{fmt(c)}</text>')
    out.append("</svg>")
    return "".join(out)


def utilization_chart(series: list[dict]) -> str:
    chart = Chart("Activity over cycles (each series normalized to its "
                  "own peak)", "cycle", "fraction of series peak")
    for i, s in enumerate(sorted(series, key=lambda s: s["name"])):
        pts = s["points"]
        if not pts:
            continue
        peak = max(abs(v) for _, v in pts) or 1.0
        label = (f'{s["name"]} (peak {fmt(peak)} {s["unit"]}'
                 + (f', stride {s["stride"]}' if s.get("stride", 1) > 1
                    else "") + ")")
        chart.add_line(label, PALETTE[i % len(PALETTE)],
                       [(c, v / peak) for c, v in pts])
    return chart.render()


def delta_curves(benches: dict) -> list[str]:
    """One chart per metric, one line per model, from fig10-style keys."""
    curves: dict[str, dict[str, list[tuple[float, float]]]] = {}
    for entry in benches.values():
        for key, value in entry.get("metrics", {}).items():
            m = DELTA_KEY_RE.match(key)
            if m:
                curves.setdefault(m["metric"], {}).setdefault(
                    m["model"], []).append((float(m["delta"]), value))
    charts = []
    titles = {"latency_cycles": ("Inference latency vs δ", "cycles"),
              "energy_j": ("Inference energy vs δ", "joules"),
              "accuracy": ("Accuracy vs δ", "accuracy")}
    for metric in ("latency_cycles", "energy_j", "accuracy"):
        if metric not in curves:
            continue
        title, ylabel = titles[metric]
        chart = Chart(title, "δ (% of weight range)", ylabel)
        for i, (model, pts) in enumerate(sorted(curves[metric].items())):
            chart.add_line(model, PALETTE[i % len(PALETTE)], sorted(pts))
        charts.append(chart.render())
    return charts


def serving_curves(benches: dict) -> list[str]:
    """Latency percentiles (p50/p99/p99.9) and goodput per scheduler, from
    ext_serving's load-sweep keys."""
    curves: dict[str, dict[str, list[tuple[float, float]]]] = {}
    for entry in benches.values():
        for key, value in entry.get("metrics", {}).items():
            m = SERVING_KEY_RE.match(key)
            if m:
                curves.setdefault(m["metric"], {}).setdefault(
                    m["sched"], []).append((float(m["load"]) / 100.0, value))
    charts = []
    latency = [("p50_cycles", "p50"), ("p99_cycles", "p99"),
               ("p999_cycles", "p99.9")]
    if any(metric in curves for metric, _ in latency):
        chart = Chart("Request latency percentiles vs offered load",
                      "offered load (fraction of capacity)", "cycles")
        i = 0
        for metric, pct in latency:
            for sched, pts in sorted(curves.get(metric, {}).items()):
                chart.add_line(f"{sched} {pct}", PALETTE[i % len(PALETTE)],
                               sorted(pts))
                i += 1
        charts.append(chart.render())
    if "goodput_rps" in curves:
        chart = Chart("Goodput vs offered load",
                      "offered load (fraction of capacity)", "requests/s")
        for i, (sched, pts) in enumerate(
                sorted(curves["goodput_rps"].items())):
            chart.add_line(sched, PALETTE[i % len(PALETTE)], sorted(pts))
        charts.append(chart.render())
    return charts


def slo_panel(slo: dict) -> list[str]:
    """Burn-rate chart over closed windows plus a breached-window table
    with exemplar trace links, from a nocw.slo.v1 export."""
    windows = slo.get("windows", [])
    if not windows:
        return []
    out = []
    chart = Chart("SLO burn rate at each window close",
                  "closed window (event order)", "burn (x error budget)")
    for i, horizon in enumerate(("burn_1w", "burn_4w", "burn_16w")):
        pts = [(float(w_index), w.get(horizon, 0.0))
               for w_index, w in enumerate(windows)]
        chart.add_line(horizon.replace("burn_", "") + " horizon",
                       PALETTE[i % len(PALETTE)], pts)
    out.append(chart.render())

    breached = [w for w in windows if w.get("breach_mask", 0)]
    if breached:
        rows = []
        for w in breached:
            mask = int(w.get("breach_mask", 0))
            reasons = [name for bit, name in
                       ((1, "p99"), (2, "p99.9"), (4, "goodput"))
                       if mask & bit]
            completions = int(w.get("completions", 0))
            exemplar = (w.get("exemplar", "") if completions > 0
                        else w.get("shed_exemplar", ""))
            rows.append(
                f"<tr><td>{int(w.get('class_id', 0))}</td>"
                f"<td>{int(w.get('window_start', 0))}</td>"
                f"<td>{html.escape('+'.join(reasons) or '—')}</td>"
                f"<td>{fmt(w.get('burn_1w', 0.0))}</td>"
                f"<td><code>{html.escape(exemplar)}</code></td></tr>")
        out.append(
            f"<p>{len(breached)} of {len(windows)} windows breached. "
            "Exemplar trace ids resolve in the nocw.reqtrace.v1 export "
            "(BENCH_reqtrace.json).</p>"
            "<table><tr><th>class</th><th>window start</th><th>breach</th>"
            "<th>burn 1w</th><th>exemplar trace</th></tr>"
            + "".join(rows) + "</table>")
    return out


def trace_drops(entry: dict) -> str:
    """Total sampled-tree / exemplar drops a bench reported, or an em-dash
    when it published no drop counters."""
    keys = [k for k in entry.get("metrics", {})
            if TRACE_DROP_KEY_RE.search(k)]
    if not keys:
        return "—"
    return fmt(sum(entry["metrics"][k] for k in keys))


def summary_table(benches: dict) -> str:
    if not benches:
        return ""
    rows = []
    for name in sorted(benches):
        e = benches[name]
        sha = (e.get("git_sha", "") or "")[:12]
        rows.append(
            f"<tr><td>{html.escape(name)}</td>"
            f"<td>{html.escape(e.get('model', '') or '—')}</td>"
            f"<td><code>{html.escape(sha) or '—'}</code></td>"
            f"<td>{e.get('wall_seconds', 0.0):.3f}</td>"
            f"<td>{len(e.get('metrics', {}))}</td>"
            f"<td>{trace_drops(e)}</td></tr>")
    return ("<table><tr><th>bench</th><th>model</th><th>git sha</th>"
            "<th>wall s</th><th>metrics</th><th>trace drops</th></tr>"
            + "".join(rows) + "</table>")


CSS = """
body { font: 14px/1.4 system-ui, sans-serif; margin: 24px auto;
       max-width: 720px; color: #222; }
h1 { font-size: 20px; } h2 { font-size: 16px; margin-top: 28px; }
svg { display: block; margin: 8px 0; }
.title { font-size: 13px; font-weight: 600; }
.lbl { font-size: 10px; fill: #555; }
.frame { fill: none; stroke: #999; } .tick { stroke: #999; }
.legend { font-size: 11px; margin: 2px 0 10px; }
.key { margin-right: 14px; white-space: nowrap; }
.swatch { display: inline-block; width: 10px; height: 10px;
          margin-right: 4px; border-radius: 2px; }
table { border-collapse: collapse; font-size: 12px; }
td, th { border: 1px solid #ccc; padding: 3px 8px; text-align: left; }
"""


def render(timeseries: dict | None, summary: dict | None,
           slo: dict | None = None) -> str:
    sections = []
    if timeseries is not None:
        series = timeseries.get("series", [])
        sections.append("<h2>Time series</h2>")
        sections.append(phase_timeline(series))
        sections.append(utilization_chart(series))
    if summary is not None:
        benches = summary.get("benches", {})
        charts = delta_curves(benches)
        if charts:
            sections.append("<h2>δ trade-off (fig10_tradeoff)</h2>")
            sections.extend(charts)
        charts = serving_curves(benches)
        if charts:
            sections.append("<h2>Serving load sweep (ext_serving)</h2>")
            sections.extend(charts)
    if slo is not None:
        panels = slo_panel(slo)
        if panels:
            sections.append("<h2>SLO windows (ext_reqtrace)</h2>")
            sections.extend(panels)
    if summary is not None:
        benches = summary.get("benches", {})
        sections.append("<h2>Bench runs</h2>")
        sections.append(summary_table(benches))
    if not sections:
        sections.append("<p>No inputs provided — nothing to render.</p>")
    return ("<!DOCTYPE html><html><head><meta charset='utf-8'>"
            "<title>nocw observability dashboard</title>"
            f"<style>{CSS}</style></head><body>"
            "<h1>nocw observability dashboard</h1>"
            + "".join(sections) + "</body></html>")


def load(path: pathlib.Path | None, schema: str) -> dict | None:
    if path is None:
        return None
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != schema:
        raise ValueError(f"{path}: expected schema {schema!r}, "
                         f"got {doc.get('schema')!r}")
    return doc


def self_test() -> int:
    ts = {"schema": "nocw.timeseries.v1", "series": [
        {"name": "accel.dram_words", "unit": "count", "stride": 1,
         "points": [[256, 700.0], [512, 700.0], [768, 650.0]]},
        {"name": "accel.macs", "unit": "count", "stride": 2,
         "points": [[900, 5000.0], [1200, 5000.0]]},
        {"name": "noc.link_flits", "unit": "flits", "stride": 1,
         "points": [[256, 80.0], [512, 90.0], [768, 0.0]]},
    ]}
    summary = {"schema": "nocw.bench_summary.v1", "benches": {
        "fig10_tradeoff": {"model": "", "git_sha": "abc123", "threads": 1,
                           "wall_seconds": 1.5, "metrics": {
                               "lenet-5.d0.latency_cycles": 26530.0,
                               "lenet-5.d0.energy_j": 2.2e-05,
                               "lenet-5.d0.accuracy": 0.93,
                               "lenet-5.d10.latency_cycles": 20015.0,
                               "lenet-5.d10.energy_j": 1.7e-05,
                               "lenet-5.d10.accuracy": 0.92,
                               "mini-vgg.d10.latency_cycles": 91000.0}},
        "ext_timeseries": {"model": "LeNet-5", "git_sha": "abc123",
                           "threads": 1, "wall_seconds": 0.04,
                           "metrics": {"bit_identical": 1.0}},
        "ext_serving": {"model": "LeNet-5", "git_sha": "abc123",
                        "threads": 1, "wall_seconds": 1.5, "metrics": {
                            "fifo.l090.p50_cycles": 21011002.0,
                            "fifo.l090.p99_cycles": 39021290.0,
                            "fifo.l090.p999_cycles": 41007113.0,
                            "fifo.l090.goodput_rps": 1087.0,
                            "fifo.l150.p50_cycles": 35400911.0,
                            "fifo.l150.p99_cycles": 69729940.0,
                            "fifo.l150.p999_cycles": 72013551.0,
                            "fifo.l150.goodput_rps": 1277.0,
                            "sjf.l090.p99_cycles": 37030121.0,
                            "sjf.l090.goodput_rps": 1086.0,
                            "sjf.l150.p99_cycles": 209531368.0,
                            "sjf.l150.goodput_rps": 1226.0,
                            "capacity_rps": 1260.0}},
        "ext_reqtrace": {"model": "LeNet-5", "git_sha": "abc123",
                         "threads": 1, "wall_seconds": 2.0, "metrics": {
                             "fifo.l130.dropped_trees": 731.0,
                             "sjf.l130.dropped_trees": 729.0,
                             "exemplar_drops": 0.0,
                             "windows_breached": 29.0}},
    }}
    slo = {"schema": "nocw.slo.v1", "window_cycles": 1000000,
           "error_budget": 0.01, "windows": [
               {"class_id": 0, "window_start": 0, "completions": 12,
                "sheds": 0, "max_latency_cycles": 900, "breach_mask": 0,
                "burn_1w": 0.0, "burn_4w": 0.0, "burn_16w": 0.0,
                "exemplar": "00000000000000aa",
                "shed_exemplar": "0000000000000000"},
               {"class_id": 0, "window_start": 1000000, "completions": 9,
                "sheds": 3, "max_latency_cycles": 4100, "breach_mask": 5,
                "burn_1w": 25.0, "burn_4w": 12.5, "burn_16w": 12.5,
                "exemplar": "00000000000000bb",
                "shed_exemplar": "00000000000000cc"},
               {"class_id": 1, "window_start": 1000000, "completions": 0,
                "sheds": 4, "max_latency_cycles": 0, "breach_mask": 4,
                "burn_1w": 100.0, "burn_4w": 50.0, "burn_16w": 50.0,
                "exemplar": "0000000000000000",
                "shed_exemplar": "00000000000000dd"},
           ]}
    page = render(ts, summary, slo)

    failures = []
    # timeline + utilization + 3 δ charts + 2 serving charts + burn rates
    if page.count("<svg") != 8:
        failures.append(f"expected 8 svg blocks, got {page.count('<svg')}")
    if page.count("<polyline") < 3 + 3 + 6 + 3:  # series/δ/serving/burn
        failures.append(f"too few polylines: {page.count('<polyline')}")
    for needle in ("accel.dram_words", "noc.link_flits", "stride 2",
                   "Inference latency vs δ", "Accuracy vs δ", "lenet-5",
                   "mini-vgg", "ext_timeseries", "abc123",
                   "Request latency percentiles vs offered load",
                   "fifo p50", "fifo p99.9",
                   "Goodput vs offered load", "sjf",
                   "SLO burn rate at each window close", "16w horizon",
                   "2 of 3 windows breached",
                   "00000000000000bb",  # breached window, completions > 0
                   "00000000000000dd",  # all-shed window: shed exemplar
                   "trace drops", "1460",  # 731 + 729 + 0 summed
                   "p99+goodput"):
        if needle not in page:
            failures.append(f"missing from rendered page: {needle!r}")
    if "javascript" in page.lower() or "<script" in page.lower():
        failures.append("page must be script-free")
    # Empty inputs must still render a valid page.
    empty = render(None, None)
    if "nothing to render" not in empty:
        failures.append("empty-input page missing placeholder")
    # An slo doc with no windows adds no section.
    no_windows = render(None, None, {"schema": "nocw.slo.v1",
                                     "windows": []})
    if "SLO" in no_windows:
        failures.append("empty slo doc should render no SLO section")
    # A series with no points must not crash or emit a line.
    degenerate = render({"schema": "nocw.timeseries.v1", "series": [
        {"name": "noc.queue_depth", "unit": "flits", "stride": 1,
         "points": []}]}, None)
    if "<polyline" in degenerate:
        failures.append("empty series produced a polyline")

    if failures:
        print("obs_dashboard self-test FAILED:")
        for f in failures:
            print(f"  {f}")
        return 1
    print("obs_dashboard self-test passed")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--timeseries", type=pathlib.Path,
                    help="nocw.timeseries.v1 JSON (from ext_timeseries)")
    ap.add_argument("--summary", type=pathlib.Path,
                    help="nocw.bench_summary.v1 JSON (BENCH_summary.json)")
    ap.add_argument("--slo", type=pathlib.Path,
                    help="nocw.slo.v1 JSON (results/slo_windows.json from "
                         "ext_reqtrace)")
    ap.add_argument("-o", "--output", type=pathlib.Path,
                    default=pathlib.Path("dashboard.html"))
    ap.add_argument("--self-test", action="store_true")
    args = ap.parse_args()

    if args.self_test:
        return self_test()
    try:
        ts = load(args.timeseries, "nocw.timeseries.v1")
        summary = load(args.summary, "nocw.bench_summary.v1")
        slo = load(args.slo, "nocw.slo.v1")
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"obs_dashboard: {e}", file=sys.stderr)
        return 2
    args.output.write_text(render(ts, summary, slo), encoding="utf-8")
    print(f"obs_dashboard: wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
