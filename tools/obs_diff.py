#!/usr/bin/env python3
"""Cross-run regression gate: compare two bench summaries or run manifests.

Inputs are the JSON artifacts every bench writes through bench_util:

  BENCH_summary.json   schema nocw.bench_summary.v1 — one entry per bench,
                       each carrying a flat {metric_name: value} map.
  run_<tool>.json      schema nocw.manifest.v1 — a single run's provenance
                       manifest; its "metrics" map is compared as one bench
                       named by its "tool" field.

Metrics are classified by name, because the repo's metric names are a
closed, suffix-disciplined vocabulary (see tools/lint.py [metric] and
DESIGN.md §10):

  informational   wall-clock and throughput numbers that vary with the host
                  machine (substrings: _ms, seconds, gflops, speedup,
                  wall_seconds, flops). Reported, never gated.
  lower-better    latency, energy, cycles, _j, overhead, dropped, drops,
                  shed, burn, breach — an increase beyond tolerance is a
                  regression (SLO burn rates, breached-window counts and
                  trace-sampling drop counters all gate downward).
  higher-better   accuracy, cr, bit_identical, goodput — a decrease beyond
                  tolerance is a regression (speedup is informational).
  neutral         everything else (counts, point totals, ratios without a
                  direction) — any drift beyond tolerance is flagged as a
                  change, which also fails the gate: simulator outputs are
                  deterministic, so unexplained drift means behaviour moved.

Tolerance is relative (default 5%, --tol); values within --abs-tol of each
other (default 1e-12) always match, so exact-zero metrics don't divide by
zero.

The gate is warn-only by default: regressions are printed and the exit
status stays 0 so CI surfaces them without blocking. Set
NOCW_REGRESS_STRICT=1 (or pass --strict) to turn regressions into exit 1.
Missing benches/metrics on either side are warnings in both modes.

Usage:
  tools/obs_diff.py BASELINE CANDIDATE [--tol 0.05] [--strict]
  tools/obs_diff.py --self-test

Exit status: 0 clean (or warn-only), 1 regressions under --strict, 2 bad
input.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys

INFORMATIONAL = ("_ms", "seconds", "gflops", "speedup", "flops")
LOWER_BETTER = ("latency", "energy", "cycles", "_j", "overhead", "dropped",
                "drops", "shed", "burn", "breach")
HIGHER_BETTER = ("accuracy", "bit_identical", ".cr", "_cr", "goodput")


def classify(name: str) -> str:
    low = name.lower()
    if any(s in low for s in INFORMATIONAL):
        return "info"
    if any(s in low for s in LOWER_BETTER):
        return "lower"
    if any(s in low for s in HIGHER_BETTER) or low == "cr":
        return "higher"
    return "neutral"


def load_benches(path: pathlib.Path) -> dict[str, dict[str, float]]:
    """Return {bench_name: {metric: value}} from either supported schema."""
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    schema = doc.get("schema", "")
    if schema == "nocw.bench_summary.v1":
        return {name: entry.get("metrics", {})
                for name, entry in doc.get("benches", {}).items()}
    if schema == "nocw.manifest.v1":
        return {doc.get("tool", path.stem): doc.get("metrics", {})}
    raise ValueError(f"{path}: unknown schema {schema!r} "
                     f"(expected nocw.bench_summary.v1 or nocw.manifest.v1)")


class Diff:
    def __init__(self, tol: float, abs_tol: float):
        self.tol = tol
        self.abs_tol = abs_tol
        self.regressions: list[str] = []
        self.improvements: list[str] = []
        self.info: list[str] = []
        self.warnings: list[str] = []
        self.compared = 0

    def compare(self, base: dict[str, dict[str, float]],
                cand: dict[str, dict[str, float]]) -> None:
        for bench in sorted(set(base) | set(cand)):
            if bench not in cand:
                self.warnings.append(f"{bench}: missing from candidate")
                continue
            if bench not in base:
                self.warnings.append(f"{bench}: not in baseline (new bench)")
                continue
            self._compare_bench(bench, base[bench], cand[bench])

    def _compare_bench(self, bench: str, base: dict[str, float],
                       cand: dict[str, float]) -> None:
        for metric in sorted(set(base) | set(cand)):
            if metric not in cand:
                self.warnings.append(
                    f"{bench}.{metric}: missing from candidate")
                continue
            if metric not in base:
                self.warnings.append(
                    f"{bench}.{metric}: not in baseline (new metric)")
                continue
            self._compare_metric(bench, metric, base[metric], cand[metric])

    def _compare_metric(self, bench: str, metric: str, b: float,
                        c: float) -> None:
        self.compared += 1
        if abs(c - b) <= self.abs_tol:
            return
        denom = max(abs(b), self.abs_tol)
        rel = (c - b) / denom
        kind = classify(metric)
        line = (f"{bench}.{metric}: {b:g} -> {c:g} "
                f"({rel * 100.0:+.2f}%, class={kind})")
        if kind == "info":
            if abs(rel) > self.tol:
                self.info.append(line)
        elif abs(rel) <= self.tol:
            return
        elif kind == "lower":
            (self.regressions if rel > 0 else self.improvements).append(line)
        elif kind == "higher":
            (self.regressions if rel < 0 else self.improvements).append(line)
        else:  # neutral: deterministic outputs — unexplained drift fails
            self.regressions.append(line)

    def report(self) -> None:
        for label, lines in (("REGRESSION", self.regressions),
                             ("improvement", self.improvements),
                             ("info", self.info),
                             ("warning", self.warnings)):
            for line in lines:
                print(f"[{label}] {line}")
        print(f"obs_diff: {self.compared} metrics compared, "
              f"{len(self.regressions)} regression(s), "
              f"{len(self.improvements)} improvement(s), "
              f"{len(self.warnings)} warning(s)")


def run_diff(baseline: pathlib.Path, candidate: pathlib.Path, tol: float,
             abs_tol: float, strict: bool) -> int:
    try:
        base = load_benches(baseline)
        cand = load_benches(candidate)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"obs_diff: {e}", file=sys.stderr)
        return 2
    d = Diff(tol, abs_tol)
    d.compare(base, cand)
    d.report()
    if d.regressions:
        if strict:
            print("obs_diff: FAIL (strict mode)")
            return 1
        print("obs_diff: regressions found, but warn-only "
              "(set NOCW_REGRESS_STRICT=1 to gate)")
    return 0


def self_test() -> int:
    """Identical summaries diff clean; seeded perturbations are caught with
    the right class and direction."""
    import copy
    import tempfile

    base_doc = {
        "schema": "nocw.bench_summary.v1",
        "benches": {
            "fig2_lenet_breakdown": {
                "model": "LeNet-5",
                "metrics": {"latency_cycles": 26530.4, "energy_j": 2.2e-05,
                            "comm_cycles": 11225.8},
            },
            "fig10_tradeoff": {
                "model": "",
                "metrics": {"lenet-5.d10.accuracy": 0.92,
                            "lenet-5.d10.latency_cycles": 20015.0},
            },
            "micro_kernels": {
                "model": "",
                "metrics": {"gemm.t1.seconds": 0.5, "gemm.flops": 2.68e8},
            },
        },
    }

    failures = []

    def run(doc_b, doc_c, strict):
        with tempfile.TemporaryDirectory() as tmp:
            pb = pathlib.Path(tmp) / "base.json"
            pc = pathlib.Path(tmp) / "cand.json"
            pb.write_text(json.dumps(doc_b), encoding="utf-8")
            pc.write_text(json.dumps(doc_c), encoding="utf-8")
            d = Diff(0.05, 1e-12)
            d.compare(load_benches(pb), load_benches(pc))
            rc = run_diff(pb, pc, 0.05, 1e-12, strict)
            return d, rc

    # 1. Identical inputs: zero regressions, exit 0 even under --strict.
    d, rc = run(base_doc, copy.deepcopy(base_doc), strict=True)
    if d.regressions or d.warnings or rc != 0:
        failures.append(f"identical inputs not clean: "
                        f"{d.regressions + d.warnings}, rc={rc}")

    # 2. +10% latency: flagged as a regression; strict exits 1, lax exits 0.
    pert = copy.deepcopy(base_doc)
    m = pert["benches"]["fig2_lenet_breakdown"]["metrics"]
    m["latency_cycles"] *= 1.10
    d, rc_strict = run(base_doc, pert, strict=True)
    _, rc_lax = run(base_doc, pert, strict=False)
    if not any("latency_cycles" in r for r in d.regressions):
        failures.append(f"+10% latency not flagged: {d.regressions}")
    if rc_strict != 1 or rc_lax != 0:
        failures.append(f"exit codes wrong: strict={rc_strict} lax={rc_lax}")

    # 3. -10% accuracy (higher-better): regression.
    pert = copy.deepcopy(base_doc)
    pert["benches"]["fig10_tradeoff"]["metrics"][
        "lenet-5.d10.accuracy"] *= 0.90
    d, _ = run(base_doc, pert, strict=False)
    if not any("accuracy" in r for r in d.regressions):
        failures.append(f"-10% accuracy not flagged: {d.regressions}")

    # 4. -10% latency (improvement): reported, not a regression.
    pert = copy.deepcopy(base_doc)
    pert["benches"]["fig2_lenet_breakdown"]["metrics"][
        "latency_cycles"] *= 0.90
    d, rc = run(base_doc, pert, strict=True)
    if d.regressions or rc != 0:
        failures.append(f"-10% latency misflagged: {d.regressions}")
    if not any("latency_cycles" in s for s in d.improvements):
        failures.append(f"-10% latency not an improvement: {d.improvements}")

    # 5. 2x wall-clock seconds: informational only, never gates.
    pert = copy.deepcopy(base_doc)
    pert["benches"]["micro_kernels"]["metrics"]["gemm.t1.seconds"] *= 2.0
    d, rc = run(base_doc, pert, strict=True)
    if d.regressions or rc != 0:
        failures.append(f"wall-clock drift gated: {d.regressions}")
    if not any("seconds" in s for s in d.info):
        failures.append(f"wall-clock drift not reported: {d.info}")

    # 6. Drift within tolerance (+1%): silent.
    pert = copy.deepcopy(base_doc)
    pert["benches"]["fig2_lenet_breakdown"]["metrics"][
        "latency_cycles"] *= 1.01
    d, _ = run(base_doc, pert, strict=True)
    if d.regressions or d.improvements:
        failures.append(f"+1% drift not absorbed by tolerance: "
                        f"{d.regressions + d.improvements}")

    # 7. Missing bench: warning, not a regression.
    pert = copy.deepcopy(base_doc)
    del pert["benches"]["micro_kernels"]
    d, rc = run(base_doc, pert, strict=True)
    if d.regressions or rc != 0:
        failures.append(f"missing bench gated: {d.regressions}")
    if not any("micro_kernels" in w for w in d.warnings):
        failures.append(f"missing bench not warned: {d.warnings}")

    # 8. Manifest schema loads as a single-bench map.
    manifest = {"schema": "nocw.manifest.v1", "tool": "ext_timeseries",
                "metrics": {"latency_cycles": 20015.0}}
    with tempfile.TemporaryDirectory() as tmp:
        p = pathlib.Path(tmp) / "run.json"
        p.write_text(json.dumps(manifest), encoding="utf-8")
        loaded = load_benches(p)
    if loaded != {"ext_timeseries": {"latency_cycles": 20015.0}}:
        failures.append(f"manifest load wrong: {loaded}")

    # 9. Serving directions: goodput down and shed up are both regressions.
    serving_doc = copy.deepcopy(base_doc)
    serving_doc["benches"]["ext_serving"] = {
        "model": "LeNet-5",
        "metrics": {"sjf.l150.goodput_rps": 1226.0,
                    "sjf.l150.shed_rate": 0.13},
    }
    pert = copy.deepcopy(serving_doc)
    pert["benches"]["ext_serving"]["metrics"]["sjf.l150.goodput_rps"] *= 0.90
    pert["benches"]["ext_serving"]["metrics"]["sjf.l150.shed_rate"] *= 1.50
    d, _ = run(serving_doc, pert, strict=False)
    if not any("goodput" in r for r in d.regressions):
        failures.append(f"-10% goodput not flagged: {d.regressions}")
    if not any("shed_rate" in r for r in d.regressions):
        failures.append(f"+50% shed rate not flagged: {d.regressions}")

    # 10. Tracing/SLO directions: more breached windows, a hotter burn rate
    # and more sampler drops are all regressions; fewer dropped trees is an
    # improvement (the tail sampler kept more of the tail).
    trace_doc = copy.deepcopy(base_doc)
    trace_doc["benches"]["ext_reqtrace"] = {
        "model": "LeNet-5",
        "metrics": {"slo.windows_breached": 20.0,
                    "slo.max_burn_4w": 0.5,
                    "traces.exemplar_drops": 4.0,
                    "traces.dropped_trees": 700.0},
    }
    pert = copy.deepcopy(trace_doc)
    m = pert["benches"]["ext_reqtrace"]["metrics"]
    m["slo.windows_breached"] = 24.0
    m["slo.max_burn_4w"] = 0.8
    m["traces.exemplar_drops"] = 6.0
    m["traces.dropped_trees"] = 500.0
    d, _ = run(trace_doc, pert, strict=False)
    for key in ("windows_breached", "max_burn_4w", "exemplar_drops"):
        if not any(key in r for r in d.regressions):
            failures.append(f"worse {key} not flagged: {d.regressions}")
    if any("dropped_trees" in r for r in d.regressions) or not any(
            "dropped_trees" in s for s in d.improvements):
        failures.append(f"fewer dropped_trees misclassified: "
                        f"{d.regressions} / {d.improvements}")

    if failures:
        print("obs_diff self-test FAILED:")
        for f in failures:
            print(f"  {f}")
        return 1
    print("obs_diff self-test passed: 10 scenarios")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline", nargs="?", type=pathlib.Path)
    ap.add_argument("candidate", nargs="?", type=pathlib.Path)
    ap.add_argument("--tol", type=float, default=0.05,
                    help="relative tolerance (default 0.05 = 5%%)")
    ap.add_argument("--abs-tol", type=float, default=1e-12,
                    help="absolute tolerance floor (default 1e-12)")
    ap.add_argument("--strict", action="store_true",
                    help="exit 1 on regressions (also NOCW_REGRESS_STRICT=1)")
    ap.add_argument("--self-test", action="store_true")
    args = ap.parse_args()

    if args.self_test:
        return self_test()
    if args.baseline is None or args.candidate is None:
        ap.error("baseline and candidate paths are required")
    strict = args.strict or os.environ.get("NOCW_REGRESS_STRICT") == "1"
    return run_diff(args.baseline, args.candidate, args.tol, args.abs_tol,
                    strict)


if __name__ == "__main__":
    sys.exit(main())
