#!/usr/bin/env python3
"""Repo-specific lint rules that a generic tool cannot express.

Rules (all scoped to src/, the library code):

  units       double/float *fields* declared in src/power, src/noc and
              src/accel headers must carry a physical-unit suffix (_pj, _j,
              _mw, _w, _ghz, _hz, _cycles, _seconds, _s, _bits, _bytes,
              _flits) or an explicitly dimensionless one (_efficiency,
              _ratio, _scale, _factor, _fraction, _share, _utilization).
              A bare `cycles` or `seconds` is also accepted. The energy
              model multiplies these fields straight into the Fig. 10
              joules; an unlabelled unit is how a pJ/J mix-up ships.

  rng         rand(), srand() and std::random_device are forbidden outside
              util/rng.hpp. All stochastic behaviour flows through the
              seeded, implementation-stable generators in util/rng.hpp so
              every experiment is reproducible from a single 64-bit seed.

  iostream    std::cout in library code is forbidden (library output goes
              through return values; printing belongs to bench/, examples/
              and tools).

  assert      naked assert() is forbidden outside util/check.hpp; use
              NOCW_CHECK* (always-on invariants) or NOCW_DCHECK* (hot
              paths). static_assert is fine.

  fault       the counter-based fault-sampling primitive fault_hash() may
              only be called in src/noc/fault.cpp (declaration in
              src/noc/fault.hpp). All stochastic fault behaviour must flow
              through the FaultModel / corrupt_bits wrappers so a fault
              experiment is reproducible from a single seed at any thread
              count; ad-hoc sampling scattered through the tree is how
              determinism quietly breaks.

  metric      obs::Registry registration sites (set_counter, add_counter,
              set_gauge, observe) whose unit argument is a string literal
              must draw it from the closed vocabulary — parsed at startup
              from src/util/units_vocab.inc, the same X-macro list that
              units.hpp and unit_allowed() in src/obs/registry.cpp compile
              in, so an unknown unit is caught before the run-time
              NOCW_CHECK is and the three consumers cannot drift.

  print       (scoped to bench/) std::printf / std::cout are forbidden in
              bench drivers outside bench_util.cpp, the sanctioned table
              emission point. Progress lines go through obs::log(), which
              NOCW_QUIET can silence at once; fprintf to a *file* (JSON
              mirrors) is fine.

  manifest    (scoped to bench/) every bench driver (a bench/*.cpp that
              defines main) must register its run with the summary writer
              by calling bench::write_summary, so BENCH_summary.json and
              the per-run manifest cover every binary and the cross-run
              regression gate (tools/obs_diff.py) sees the whole suite.
              A bench that skips registration silently falls out of the
              gate's coverage.

  route       next-hop computation (dor_next_hop()) is forbidden outside
              src/noc/routing.{cpp,hpp} and src/noc/router.cpp. Fault-aware
              routing (DESIGN.md §13) works because the RouteTable is the
              single source of next hops — an ad-hoc DOR call elsewhere
              would silently ignore quarantined links/routers and ship
              packets into a hole the recovery machinery cannot see.

  engine      direct Network::step() calls (`x.step()` / `p->step()`) are
              forbidden outside src/noc/network.{cpp,hpp}. Callers drive
              the network through run_until_drained() / advance_idle(),
              which route through the engine (event or dense) selected by
              NocConfig::engine. A hand-rolled step loop bypasses the
              engine's drain accounting and idle jumps, so it would not
              be covered by the dense/event equivalence tests and could
              diverge from both without any gate noticing. Unlike the
              other source rules this one also scans tests/ and examples/
              (engine-only pass) — those are exactly where ad-hoc step
              loops tend to appear.

  serve       (scoped to src/serve/) direct AcceleratorSim simulate() /
              simulate_layer() calls are forbidden outside
              src/serve/serve_sim.cpp, the audited ServeSim driver path.
              Schedulers, arrival generators and queues consult the
              ServiceProfiles the driver precomputes; an ad-hoc simulate
              call in policy code would fork request timing off the one
              path the determinism gates (ext_serving) actually check.

  trace-ctx   constructing an obs::TraceContext by aggregate init or
              writing a raw `.trace_id =` is forbidden outside the trace
              plumbing (src/obs/trace_context.{hpp,cpp}, src/obs/trace.cpp)
              and the one sanctioned root mint
              (src/serve/trace_ids.cpp). Request span ids are pure
              functions of (trace seed, request id) via request_trace_
              context() + derive_child(); a second mint would fork the id
              space and break the Perfetto-export ↔ reqtrace-JSON join
              that ext_reqtrace gates on.

  slo         the window-alignment primitive slo_window_start() may only
              be called in src/obs/slo.{hpp,cpp}. SLO windows, burn rates
              and exemplar pins all assume one tumbling alignment; a
              second, subtly different alignment computed elsewhere is how
              a breached window and its exemplar trace silently disagree.

Usage:
  tools/lint.py [--root DIR]   lint the tree rooted at DIR (default: the
                               repository containing this script)
  tools/lint.py --self-test    verify every rule fires on a seeded
                               violation and stays quiet on clean code

Exit status: 0 clean, 1 violations found (or self-test failure).
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys
import tempfile

UNIT_SUFFIXES = (
    "_pj", "_j", "_mw", "_w", "_ghz", "_hz", "_cycles", "_seconds", "_s",
    "_bits", "_bytes", "_flits",
)
DIMENSIONLESS_SUFFIXES = (
    "_efficiency", "_ratio", "_scale", "_factor", "_fraction", "_share",
    "_utilization", "_probability",
)
EXACT_UNIT_NAMES = {"cycles", "seconds"}

UNITS_DIRS = ("src/power", "src/noc", "src/accel")
RNG_ALLOWED = "src/util/rng.hpp"
ASSERT_ALLOWED = "src/util/check.hpp"
FAULT_ALLOWED = ("src/noc/fault.cpp", "src/noc/fault.hpp")
PRINT_ALLOWED = "bench/bench_util.cpp"
ENGINE_ALLOWED = ("src/noc/network.cpp", "src/noc/network.hpp")
ROUTE_ALLOWED = ("src/noc/routing.cpp", "src/noc/routing.hpp",
                 "src/noc/router.cpp")
SERVE_ALLOWED = ("src/serve/serve_sim.cpp",)
TRACE_CTX_ALLOWED = ("src/obs/trace_context.hpp", "src/obs/trace_context.cpp",
                     "src/obs/trace.cpp", "src/serve/trace_ids.cpp")
SLO_ALLOWED = ("src/obs/slo.hpp", "src/obs/slo.cpp")

NOCW_UNIT_RE = re.compile(r"^\s*NOCW_UNIT\((\w+)\)", re.M)


def load_metric_units() -> frozenset[str]:
    """The closed unit vocabulary, parsed from src/util/units_vocab.inc —
    the same X-macro list units.hpp and registry.cpp (unit_allowed) compile
    in, so the linter can never drift from the library. The baked-in
    fallback only covers a checkout where the .inc has been deleted."""
    inc = pathlib.Path(__file__).resolve().parent.parent / (
        "src/util/units_vocab.inc")
    try:
        units = NOCW_UNIT_RE.findall(inc.read_text(encoding="utf-8"))
    except OSError:
        units = []
    return frozenset(units) or frozenset({
        "count", "cycles", "seconds", "flits", "packets", "events", "bits",
        "bytes", "joules", "watts", "ratio", "fraction", "percent",
        "samples",
    })


METRIC_UNITS = load_metric_units()

# `double name;` or `double name = ...;` at the start of a line — a field or
# namespace-scope declaration. Function parameters and return types never
# start a line with the bare type in this codebase's style.
FIELD_RE = re.compile(r"^\s*(?:double|float)\s+(\w+)\s*(?:=[^;]*)?;")
RAND_RE = re.compile(r"\b(?:rand|srand)\s*\(|std::random_device")
COUT_RE = re.compile(r"std::cout")
ASSERT_RE = re.compile(r"\bassert\s*\(")
FAULT_RE = re.compile(r"\bfault_hash\s*\(")
ROUTE_RE = re.compile(r"\bdor_next_hop\s*\(")
# A member call to a zero-argument step(): `net.step()` or `net->step()`.
# Network::step() is the only zero-arg step() in the tree; the member-access
# prefix keeps the rule from matching definitions or unrelated free functions.
STEP_RE = re.compile(r"(?:\.|->)\s*step\s*\(\s*\)")
# A member call to AcceleratorSim's simulate()/simulate_layer(). Within
# src/serve/ only the audited ServeSim driver may invoke the accelerator;
# schedulers and generators must consult the precomputed ServiceProfiles.
SIMULATE_RE = re.compile(r"(?:\.|->)\s*simulate(?:_layer)?\s*\(")
# A TraceContext built by aggregate init (`TraceContext{...}` /
# `TraceContext ctx{...}`, which also matches the struct definition — the
# definition lives in an allowed file) or a raw trace-id field write.
TRACE_CTX_RE = re.compile(r"\bTraceContext\s*\w*\s*\{|\.trace_id\s*=(?!=)")
SLO_WINDOW_RE = re.compile(r"\bslo_window_start\s*\(")
PRINT_RE = re.compile(r"std::printf|std::cout")
MAIN_RE = re.compile(r"^\s*int\s+main\s*\(", re.M)
WRITE_SUMMARY_RE = re.compile(r"\bwrite_summary\s*\(")
# A registry call whose unit argument is a string literal. The name argument
# (anything up to the first top-level comma; registry metric names never
# contain commas) may span lines, hence DOTALL matching over the whole file.
METRIC_RE = re.compile(
    r"\b(?:set_counter|add_counter|set_gauge|observe)\s*"
    r"\(\s*[^,;]*?,\s*\"([^\"]*)\"", re.S)


def strip_comments(text: str) -> str:
    """Blank out comments, preserving line numbers."""
    out = []
    i = 0
    n = len(text)
    in_line = in_block = in_string = False
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if in_line:
            if c == "\n":
                in_line = False
                out.append(c)
            else:
                out.append(" ")
        elif in_block:
            if c == "*" and nxt == "/":
                in_block = False
                out.append("  ")
                i += 1
            else:
                out.append(c if c == "\n" else " ")
        elif in_string:
            if c == "\\":
                out.append(c + nxt)
                i += 1
            else:
                if c == '"':
                    in_string = False
                out.append(c)
        elif c == '"':
            in_string = True
            out.append(c)
        elif c == "/" and nxt == "/":
            in_line = True
            out.append("  ")
            i += 1
        elif c == "/" and nxt == "*":
            in_block = True
            out.append("  ")
            i += 1
        else:
            out.append(c)
        i += 1
    return "".join(out)


def unit_name_ok(name: str) -> bool:
    # Private members carry a trailing underscore (`flip_probability_`);
    # units are judged on the semantic name.
    name = name.rstrip("_")
    if name in EXACT_UNIT_NAMES:
        return True
    return name.endswith(UNIT_SUFFIXES) or name.endswith(
        DIMENSIONLESS_SUFFIXES)


def lint_metric_units(rel: str, text: str) -> list[str]:
    """The [metric] rule: registry registration sites whose unit argument is
    a string literal must draw it from the closed vocabulary. Calls may span
    lines, so the rule matches the whole comment-stripped text; shared by the
    src/ and bench/ passes."""
    findings = []
    for m in METRIC_RE.finditer(text):
        unit = m.group(1)
        if unit not in METRIC_UNITS:
            lineno = text.count("\n", 0, m.start()) + 1
            findings.append(
                f"{rel}:{lineno}: [metric] unit '{unit}' is not in the "
                f"registry vocabulary ({', '.join(sorted(METRIC_UNITS))}); "
                f"keep units closed so exports stay comparable")
    return findings


def lint_engine_line(rel: str, lineno: int, line: str) -> list[str]:
    """The [engine] rule for one comment-stripped line; shared by the src/,
    bench/ and tests//examples/ passes."""
    if rel in ENGINE_ALLOWED or not STEP_RE.search(line):
        return []
    return [
        f"{rel}:{lineno}: [engine] direct step() call outside the NoC "
        f"engine; drive the network with run_until_drained() / "
        f"advance_idle() so the selected engine (event or dense) stays "
        f"on the audited drain path"]


def lint_engine_file(root: pathlib.Path, path: pathlib.Path) -> list[str]:
    """Engine-only pass for tests/ and examples/: the other source rules
    deliberately do not apply there (tests print, seed ad-hoc RNGs, etc.),
    but a hand-rolled step loop is exactly as engine-bypassing in a test as
    in library code."""
    rel = path.relative_to(root).as_posix()
    text = strip_comments(path.read_text(encoding="utf-8"))
    findings = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        findings.extend(lint_engine_line(rel, lineno, line))
    return findings


def lint_file(root: pathlib.Path, path: pathlib.Path) -> list[str]:
    rel = path.relative_to(root).as_posix()
    text = strip_comments(path.read_text(encoding="utf-8"))
    findings = []

    in_units_scope = rel.endswith((".hpp", ".h")) and rel.startswith(
        UNITS_DIRS)
    for lineno, line in enumerate(text.splitlines(), start=1):
        if in_units_scope and "(" not in line:
            m = FIELD_RE.match(line)
            if m and not unit_name_ok(m.group(1)):
                findings.append(
                    f"{rel}:{lineno}: [units] float field '{m.group(1)}' "
                    f"lacks a unit suffix ({', '.join(UNIT_SUFFIXES)}; "
                    f"dimensionless: {', '.join(DIMENSIONLESS_SUFFIXES)})")
        if rel != RNG_ALLOWED and RAND_RE.search(line):
            findings.append(
                f"{rel}:{lineno}: [rng] rand()/srand()/std::random_device "
                f"outside util/rng.hpp breaks seeded reproducibility")
        if COUT_RE.search(line):
            findings.append(
                f"{rel}:{lineno}: [iostream] std::cout in library code; "
                f"printing belongs in bench/, examples/ or tools")
        if rel != ASSERT_ALLOWED and ASSERT_RE.search(line):
            findings.append(
                f"{rel}:{lineno}: [assert] naked assert(); use NOCW_CHECK* "
                f"or NOCW_DCHECK* from util/check.hpp")
        if rel not in FAULT_ALLOWED and FAULT_RE.search(line):
            findings.append(
                f"{rel}:{lineno}: [fault] fault_hash() outside noc/fault.cpp; "
                f"sample faults through FaultModel / corrupt_bits so fault "
                f"experiments stay seed-reproducible")
        if rel not in ROUTE_ALLOWED and ROUTE_RE.search(line):
            findings.append(
                f"{rel}:{lineno}: [route] dor_next_hop() outside noc/routing "
                f"(+ router.cpp); next hops come from the RouteTable so "
                f"quarantined links/routers are honored everywhere")
        if (rel.startswith("src/serve/") and rel not in SERVE_ALLOWED
                and SIMULATE_RE.search(line)):
            findings.append(
                f"{rel}:{lineno}: [serve] direct AcceleratorSim simulate "
                f"call outside the ServeSim driver; serving code consults "
                f"the precomputed ServiceProfiles so request timing stays "
                f"on the one audited accelerator path")
        if rel not in TRACE_CTX_ALLOWED and TRACE_CTX_RE.search(line):
            findings.append(
                f"{rel}:{lineno}: [trace-ctx] TraceContext construction / "
                f"raw trace_id write outside the trace plumbing; mint roots "
                f"with serve::request_trace_context and derive children "
                f"with obs::derive_child so span ids stay a pure function "
                f"of the trace seed")
        if rel not in SLO_ALLOWED and SLO_WINDOW_RE.search(line):
            findings.append(
                f"{rel}:{lineno}: [slo] slo_window_start() outside obs/slo; "
                f"one tumbling alignment keeps windows, burn rates and "
                f"exemplar pins mutually consistent")
        findings.extend(lint_engine_line(rel, lineno, line))
    findings.extend(lint_metric_units(rel, text))
    return findings


def lint_bench_file(root: pathlib.Path, path: pathlib.Path) -> list[str]:
    rel = path.relative_to(root).as_posix()
    text = strip_comments(path.read_text(encoding="utf-8"))
    findings = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if rel != PRINT_ALLOWED and PRINT_RE.search(line):
            findings.append(
                f"{rel}:{lineno}: [print] std::printf/std::cout in a "
                f"bench driver; progress lines go through obs::log() "
                f"(NOCW_QUIET-aware), tables through bench::emit")
        if TRACE_CTX_RE.search(line):
            findings.append(
                f"{rel}:{lineno}: [trace-ctx] TraceContext construction / "
                f"raw trace_id write outside the trace plumbing; mint roots "
                f"with serve::request_trace_context and derive children "
                f"with obs::derive_child so span ids stay a pure function "
                f"of the trace seed")
        if SLO_WINDOW_RE.search(line):
            findings.append(
                f"{rel}:{lineno}: [slo] slo_window_start() outside obs/slo; "
                f"one tumbling alignment keeps windows, burn rates and "
                f"exemplar pins mutually consistent")
        findings.extend(lint_engine_line(rel, lineno, line))
    findings.extend(lint_metric_units(rel, text))
    if (MAIN_RE.search(text) and rel != PRINT_ALLOWED
            and not WRITE_SUMMARY_RE.search(text)):
        lineno = text.count("\n", 0, MAIN_RE.search(text).start()) + 1
        findings.append(
            f"{rel}:{lineno}: [manifest] bench driver never calls "
            f"bench::write_summary; every bench must register with "
            f"BENCH_summary.json so the regression gate "
            f"(tools/obs_diff.py) covers it")
    return findings


def lint_tree(root: pathlib.Path) -> list[str]:
    findings = []
    src = root / "src"
    for path in sorted(src.rglob("*")):
        if path.suffix in (".cpp", ".hpp", ".h", ".cc"):
            findings.extend(lint_file(root, path))
    bench = root / "bench"
    if bench.is_dir():
        for path in sorted(bench.rglob("*")):
            if path.suffix in (".cpp", ".hpp", ".h", ".cc"):
                findings.extend(lint_bench_file(root, path))
    for sub in ("tests", "examples"):
        d = root / sub
        if not d.is_dir():
            continue
        for path in sorted(d.rglob("*")):
            if path.suffix in (".cpp", ".hpp", ".h", ".cc"):
                findings.extend(lint_engine_file(root, path))
    return findings


def self_test() -> int:
    """Seed one violation per rule plus a clean file; every violation must
    be flagged and the clean file must not be."""
    seeded = {
        "src/power/bad_units.hpp":
            "struct T {\n  double latency;\n  double energy = 0.0;\n};\n",
        "src/nn/bad_rng.cpp":
            "int f() { return rand(); }\n",
        "src/core/bad_rng2.cpp":
            "#include <random>\nstd::random_device rd;\n",
        "src/eval/bad_print.cpp":
            "#include <iostream>\nvoid p() { std::cout << 1; }\n",
        "src/noc/bad_assert.cpp":
            "#include <cassert>\nvoid g(int x) { assert(x > 0); }\n",
        "src/eval/bad_fault.cpp":
            "#include \"noc/fault.hpp\"\n"
            "unsigned long h() { return nocw::noc::fault_hash(1, 2, 3, 4); }\n",
        "src/eval/bad_metric.cpp":
            "#include \"obs/registry.hpp\"\n"
            "void f(nocw::obs::Registry& r) {\n"
            "  r.set_gauge(\"x.energy\", \"femtojoules\", 1.0);\n"
            "}\n",
        "bench/bad_progress.cpp":
            "#include <cstdio>\n"
            "void p() { std::printf(\"working...\\n\"); }\n",
        "bench/bad_manifest.cpp":
            "#include \"bench_util.hpp\"\n"
            "int main(int, char** argv) {\n"
            "  (void)nocw::bench::output_dir(argv[0]);\n"
            "  return 0;\n"
            "}\n",
        "src/accel/bad_route.cpp":
            "#include \"noc/routing.hpp\"\n"
            "int hop(const nocw::noc::NocConfig& c) {\n"
            "  return nocw::noc::dor_next_hop(c, 0, 15);\n"
            "}\n",
        "src/eval/bad_step.cpp":
            "#include \"noc/network.hpp\"\n"
            "void drain(nocw::noc::Network& net) {\n"
            "  while (!net.drained()) net.step();\n"
            "}\n",
        "tests/noc/bad_step_test.cpp":
            "#include \"noc/network.hpp\"\n"
            "void tick(nocw::noc::Network* net) { net->step(); }\n",
        "src/serve/bad_sim.cpp":
            "#include \"accel/simulator.hpp\"\n"
            "double cost(const nocw::accel::AcceleratorSim& sim,\n"
            "            const nocw::accel::ModelSummary& s) {\n"
            "  return sim.simulate(s).latency.total().value();\n"
            "}\n",
        "src/noc/bad_traceid.cpp":
            "#include \"obs/trace.hpp\"\n"
            "void forge(nocw::obs::TraceEvent& ev) { ev.trace_id = 7; }\n",
        "src/eval/bad_mint.cpp":
            "#include \"obs/trace_context.hpp\"\n"
            "nocw::obs::TraceContext mint() {\n"
            "  return nocw::obs::TraceContext{1, 2, 3};\n"
            "}\n",
        "src/eval/bad_slo.cpp":
            "#include \"obs/slo.hpp\"\n"
            "unsigned long align(unsigned long cycle) {\n"
            "  return nocw::obs::slo_window_start(cycle, 4096);\n"
            "}\n",
        "bench/bad_slo_bench.cpp":
            "#include \"obs/slo.hpp\"\n"
            "unsigned long w(unsigned long c) {\n"
            "  return nocw::obs::slo_window_start(c, 1000);\n"
            "}\n",
    }
    clean = {
        "src/power/good.hpp":
            "struct U {\n"
            "  double read_energy_pj = 1.0;\n"
            "  double leakage_mw = 0.5;\n"
            "  double memory_cycles = 0.0;\n"
            "  double dram_efficiency = 0.7;\n"
            "  double bit_flip_probability = 0.0;\n"
            "  double flip_probability_ = 0.0;\n"
            "  double seconds = 0.0;\n"
            "};\n",
        "src/noc/fault.cpp":
            "// the one place sampling may live\n"
            "unsigned long fault_hash(unsigned long s, unsigned long a,\n"
            "                         unsigned long b, unsigned long c);\n"
            "unsigned long use() { return fault_hash(1, 2, 3, 4); }\n",
        "src/util/good.cpp":
            "// rand() in a comment is fine; \"std::cout\" only here\n"
            "static_assert(sizeof(int) == 4);\n",
        "src/obs/good_metric.cpp":
            "#include \"obs/registry.hpp\"\n"
            "void g(nocw::obs::Registry& r, double v) {\n"
            "  r.observe(base + \"packet_latency\",\n"
            "            \"cycles\", v);\n"
            "  r.set_counter(\"noc.flits_injected\", \"flits\", 1);\n"
            "}\n",
        "bench/bench_util.cpp":
            "#include <cstdio>\n"
            "void emit() { std::printf(\"== table ==\\n\"); }\n",
        "bench/good_progress.cpp":
            "#include \"obs/log.hpp\"\n"
            "#include <cstdio>\n"
            "void p(std::FILE* f) {\n"
            "  nocw::obs::log(\"working...\\n\");\n"
            "  std::fprintf(f, \"{}\\n\");\n"
            "}\n",
        "bench/good_manifest.cpp":
            "#include \"bench_util.hpp\"\n"
            "int main(int, char** argv) {\n"
            "  const std::string dir = nocw::bench::output_dir(argv[0]);\n"
            "  nocw::bench::write_summary(dir, \"good\", {{\"x\", 1.0}});\n"
            "  return 0;\n"
            "}\n",
        "src/noc/router.cpp":
            "#include \"noc/routing.hpp\"\n"
            "// the DOR fallback path may compute next hops directly\n"
            "int fallback(const nocw::noc::NocConfig& c, int id, int dst) {\n"
            "  return nocw::noc::dor_next_hop(c, id, dst);\n"
            "}\n",
        "src/noc/network.cpp":
            "// the engine itself may step, and stepper() members elsewhere\n"
            "void Network::run() { while (!drained()) step(); this->step(); }\n",
        "tests/noc/good_step_test.cpp":
            "#include \"noc/network.hpp\"\n"
            "// step() in a comment is fine; run_until_drained is the API\n"
            "void drain(nocw::noc::Network& net) {\n"
            "  net.run_until_drained(1000);\n"
            "  (void)net.stats().step_cycles;\n"
            "}\n",
        "src/serve/serve_sim.cpp":
            "#include \"accel/simulator.hpp\"\n"
            "// the audited driver path may run the accelerator\n"
            "double profile(const nocw::accel::AcceleratorSim& sim,\n"
            "               const nocw::accel::ModelSummary& s) {\n"
            "  return sim.simulate(s).latency.total().value();\n"
            "}\n",
        "src/serve/good_sched.cpp":
            "// simulate() in a comment is fine; profiles are the API\n"
            "unsigned long cost(unsigned long full_cycles) {\n"
            "  return full_cycles;\n"
            "}\n",
        "src/serve/trace_ids.cpp":
            "#include \"obs/trace_context.hpp\"\n"
            "// the one sanctioned root mint may assemble a context\n"
            "nocw::obs::TraceContext request_trace_context(\n"
            "    unsigned long seed, unsigned long request_id) {\n"
            "  nocw::obs::TraceContext ctx;\n"
            "  ctx.trace_id = seed ^ request_id;\n"
            "  return ctx;\n"
            "}\n",
        "src/obs/trace.cpp":
            "#include \"obs/trace.hpp\"\n"
            "// stamping attribution onto emitted events is plumbing\n"
            "void stamp(nocw::obs::TraceEvent& ev, unsigned long id) {\n"
            "  ev.trace_id = id;\n"
            "}\n",
        "src/obs/slo.cpp":
            "#include \"obs/slo.hpp\"\n"
            "// the alignment primitive lives (and is used) here\n"
            "unsigned long open_window(unsigned long cycle) {\n"
            "  return nocw::obs::slo_window_start(cycle, 4096);\n"
            "}\n",
        "src/eval/good_span.cpp":
            "#include \"obs/trace_context.hpp\"\n"
            "// ScopedTraceContext and derive_child are the sanctioned API\n"
            "nocw::obs::TraceContext child(\n"
            "    const nocw::obs::TraceContext& parent) {\n"
            "  return nocw::obs::derive_child(parent, 2);\n"
            "}\n",
    }
    expected_rules = {
        "src/power/bad_units.hpp": "[units]",
        "src/nn/bad_rng.cpp": "[rng]",
        "src/core/bad_rng2.cpp": "[rng]",
        "src/eval/bad_print.cpp": "[iostream]",
        "src/noc/bad_assert.cpp": "[assert]",
        "src/eval/bad_fault.cpp": "[fault]",
        "src/eval/bad_metric.cpp": "[metric]",
        "bench/bad_progress.cpp": "[print]",
        "bench/bad_manifest.cpp": "[manifest]",
        "src/accel/bad_route.cpp": "[route]",
        "src/eval/bad_step.cpp": "[engine]",
        "tests/noc/bad_step_test.cpp": "[engine]",
        "src/serve/bad_sim.cpp": "[serve]",
        "src/noc/bad_traceid.cpp": "[trace-ctx]",
        "src/eval/bad_mint.cpp": "[trace-ctx]",
        "src/eval/bad_slo.cpp": "[slo]",
        "bench/bad_slo_bench.cpp": "[slo]",
    }

    with tempfile.TemporaryDirectory() as tmp:
        root = pathlib.Path(tmp)
        for rel, content in {**seeded, **clean}.items():
            p = root / rel
            p.parent.mkdir(parents=True, exist_ok=True)
            p.write_text(content, encoding="utf-8")
        findings = lint_tree(root)

        failures = []
        # bad_units.hpp seeds two violations on one rule.
        units_hits = [f for f in findings if f.startswith(
            "src/power/bad_units.hpp")]
        if len(units_hits) != 2:
            failures.append(
                f"expected 2 [units] findings in bad_units.hpp, got "
                f"{len(units_hits)}")
        for rel, rule in expected_rules.items():
            if not any(f.startswith(rel) and rule in f for f in findings):
                failures.append(f"rule {rule} did not fire on {rel}")
        for rel in clean:
            hits = [f for f in findings if f.startswith(rel)]
            if hits:
                failures.append(f"false positive on clean file {rel}: {hits}")

        if failures:
            print("lint self-test FAILED:")
            for f in failures:
                print(f"  {f}")
            return 1
        print(f"lint self-test passed: {len(findings)} seeded violations "
              f"flagged, 0 false positives")
        return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", type=pathlib.Path,
                    default=pathlib.Path(__file__).resolve().parent.parent)
    ap.add_argument("--self-test", action="store_true")
    args = ap.parse_args()

    if args.self_test:
        return self_test()

    findings = lint_tree(args.root.resolve())
    for f in findings:
        print(f)
    if findings:
        print(f"lint: {len(findings)} violation(s)")
        return 1
    print("lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
