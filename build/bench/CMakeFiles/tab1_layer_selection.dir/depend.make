# Empty dependencies file for tab1_layer_selection.
# This may be replaced when dependencies are built.
