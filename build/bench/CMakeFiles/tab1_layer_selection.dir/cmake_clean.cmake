file(REMOVE_RECURSE
  "CMakeFiles/tab1_layer_selection.dir/tab1_layer_selection.cpp.o"
  "CMakeFiles/tab1_layer_selection.dir/tab1_layer_selection.cpp.o.d"
  "tab1_layer_selection"
  "tab1_layer_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab1_layer_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
