# Empty compiler generated dependencies file for tab3_quantized.
# This may be replaced when dependencies are built.
