file(REMOVE_RECURSE
  "CMakeFiles/tab3_quantized.dir/tab3_quantized.cpp.o"
  "CMakeFiles/tab3_quantized.dir/tab3_quantized.cpp.o.d"
  "tab3_quantized"
  "tab3_quantized.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab3_quantized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
