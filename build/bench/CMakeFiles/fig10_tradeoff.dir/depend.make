# Empty dependencies file for fig10_tradeoff.
# This may be replaced when dependencies are built.
