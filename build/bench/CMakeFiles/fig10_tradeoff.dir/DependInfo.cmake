
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig10_tradeoff.cpp" "bench/CMakeFiles/fig10_tradeoff.dir/fig10_tradeoff.cpp.o" "gcc" "bench/CMakeFiles/fig10_tradeoff.dir/fig10_tradeoff.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/nocw_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/accel/CMakeFiles/nocw_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/nocw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/nocw_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/nocw_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/nocw_power.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/nocw_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nocw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
