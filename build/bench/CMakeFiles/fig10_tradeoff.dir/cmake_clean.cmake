file(REMOVE_RECURSE
  "CMakeFiles/fig10_tradeoff.dir/fig10_tradeoff.cpp.o"
  "CMakeFiles/fig10_tradeoff.dir/fig10_tradeoff.cpp.o.d"
  "fig10_tradeoff"
  "fig10_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
