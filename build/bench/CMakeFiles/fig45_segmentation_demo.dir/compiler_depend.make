# Empty compiler generated dependencies file for fig45_segmentation_demo.
# This may be replaced when dependencies are built.
