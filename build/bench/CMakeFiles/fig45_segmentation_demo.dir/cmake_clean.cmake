file(REMOVE_RECURSE
  "CMakeFiles/fig45_segmentation_demo.dir/fig45_segmentation_demo.cpp.o"
  "CMakeFiles/fig45_segmentation_demo.dir/fig45_segmentation_demo.cpp.o.d"
  "fig45_segmentation_demo"
  "fig45_segmentation_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig45_segmentation_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
