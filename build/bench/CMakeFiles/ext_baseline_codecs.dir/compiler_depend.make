# Empty compiler generated dependencies file for ext_baseline_codecs.
# This may be replaced when dependencies are built.
