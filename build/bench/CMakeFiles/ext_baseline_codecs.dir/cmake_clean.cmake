file(REMOVE_RECURSE
  "CMakeFiles/ext_baseline_codecs.dir/ext_baseline_codecs.cpp.o"
  "CMakeFiles/ext_baseline_codecs.dir/ext_baseline_codecs.cpp.o.d"
  "ext_baseline_codecs"
  "ext_baseline_codecs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_baseline_codecs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
