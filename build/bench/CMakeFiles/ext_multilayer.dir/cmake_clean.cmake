file(REMOVE_RECURSE
  "CMakeFiles/ext_multilayer.dir/ext_multilayer.cpp.o"
  "CMakeFiles/ext_multilayer.dir/ext_multilayer.cpp.o.d"
  "ext_multilayer"
  "ext_multilayer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_multilayer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
