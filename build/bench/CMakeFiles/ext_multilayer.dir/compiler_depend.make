# Empty compiler generated dependencies file for ext_multilayer.
# This may be replaced when dependencies are built.
