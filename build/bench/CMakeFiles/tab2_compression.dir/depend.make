# Empty dependencies file for tab2_compression.
# This may be replaced when dependencies are built.
