file(REMOVE_RECURSE
  "CMakeFiles/tab2_compression.dir/tab2_compression.cpp.o"
  "CMakeFiles/tab2_compression.dir/tab2_compression.cpp.o.d"
  "tab2_compression"
  "tab2_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab2_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
