file(REMOVE_RECURSE
  "CMakeFiles/fig3_entropy.dir/fig3_entropy.cpp.o"
  "CMakeFiles/fig3_entropy.dir/fig3_entropy.cpp.o.d"
  "fig3_entropy"
  "fig3_entropy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_entropy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
