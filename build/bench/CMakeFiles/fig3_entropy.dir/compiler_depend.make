# Empty compiler generated dependencies file for fig3_entropy.
# This may be replaced when dependencies are built.
