
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/fuzz_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/fuzz_test.cpp.o.d"
  "/root/repo/tests/integration/pipeline_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/pipeline_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/nocw_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/accel/CMakeFiles/nocw_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/nocw_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/nocw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/nocw_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/nocw_power.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/nocw_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nocw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
