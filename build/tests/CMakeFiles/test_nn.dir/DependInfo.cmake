
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/nn/backward_test.cpp" "tests/CMakeFiles/test_nn.dir/nn/backward_test.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/backward_test.cpp.o.d"
  "/root/repo/tests/nn/digits_test.cpp" "tests/CMakeFiles/test_nn.dir/nn/digits_test.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/digits_test.cpp.o.d"
  "/root/repo/tests/nn/gemm_test.cpp" "tests/CMakeFiles/test_nn.dir/nn/gemm_test.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/gemm_test.cpp.o.d"
  "/root/repo/tests/nn/graph_test.cpp" "tests/CMakeFiles/test_nn.dir/nn/graph_test.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/graph_test.cpp.o.d"
  "/root/repo/tests/nn/layers_test.cpp" "tests/CMakeFiles/test_nn.dir/nn/layers_test.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/layers_test.cpp.o.d"
  "/root/repo/tests/nn/metrics_test.cpp" "tests/CMakeFiles/test_nn.dir/nn/metrics_test.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/metrics_test.cpp.o.d"
  "/root/repo/tests/nn/models_test.cpp" "tests/CMakeFiles/test_nn.dir/nn/models_test.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/models_test.cpp.o.d"
  "/root/repo/tests/nn/serialize_test.cpp" "tests/CMakeFiles/test_nn.dir/nn/serialize_test.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/serialize_test.cpp.o.d"
  "/root/repo/tests/nn/tensor_test.cpp" "tests/CMakeFiles/test_nn.dir/nn/tensor_test.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/tensor_test.cpp.o.d"
  "/root/repo/tests/nn/train_test.cpp" "tests/CMakeFiles/test_nn.dir/nn/train_test.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/train_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/nocw_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nocw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
