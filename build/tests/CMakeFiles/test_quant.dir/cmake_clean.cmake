file(REMOVE_RECURSE
  "CMakeFiles/test_quant.dir/quant/affine_test.cpp.o"
  "CMakeFiles/test_quant.dir/quant/affine_test.cpp.o.d"
  "CMakeFiles/test_quant.dir/quant/fp16_test.cpp.o"
  "CMakeFiles/test_quant.dir/quant/fp16_test.cpp.o.d"
  "CMakeFiles/test_quant.dir/quant/quantized_codec_test.cpp.o"
  "CMakeFiles/test_quant.dir/quant/quantized_codec_test.cpp.o.d"
  "test_quant"
  "test_quant.pdb"
  "test_quant[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_quant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
