
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/baseline_codecs_test.cpp" "tests/CMakeFiles/test_core.dir/core/baseline_codecs_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/baseline_codecs_test.cpp.o.d"
  "/root/repo/tests/core/codec_test.cpp" "tests/CMakeFiles/test_core.dir/core/codec_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/codec_test.cpp.o.d"
  "/root/repo/tests/core/decompressor_unit_test.cpp" "tests/CMakeFiles/test_core.dir/core/decompressor_unit_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/decompressor_unit_test.cpp.o.d"
  "/root/repo/tests/core/entropy_test.cpp" "tests/CMakeFiles/test_core.dir/core/entropy_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/entropy_test.cpp.o.d"
  "/root/repo/tests/core/linefit_test.cpp" "tests/CMakeFiles/test_core.dir/core/linefit_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/linefit_test.cpp.o.d"
  "/root/repo/tests/core/metrics_test.cpp" "tests/CMakeFiles/test_core.dir/core/metrics_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/metrics_test.cpp.o.d"
  "/root/repo/tests/core/segment_test.cpp" "tests/CMakeFiles/test_core.dir/core/segment_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/segment_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/nocw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nocw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
