
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/noc/config_test.cpp" "tests/CMakeFiles/test_noc.dir/noc/config_test.cpp.o" "gcc" "tests/CMakeFiles/test_noc.dir/noc/config_test.cpp.o.d"
  "/root/repo/tests/noc/network_test.cpp" "tests/CMakeFiles/test_noc.dir/noc/network_test.cpp.o" "gcc" "tests/CMakeFiles/test_noc.dir/noc/network_test.cpp.o.d"
  "/root/repo/tests/noc/router_test.cpp" "tests/CMakeFiles/test_noc.dir/noc/router_test.cpp.o" "gcc" "tests/CMakeFiles/test_noc.dir/noc/router_test.cpp.o.d"
  "/root/repo/tests/noc/routing_test.cpp" "tests/CMakeFiles/test_noc.dir/noc/routing_test.cpp.o" "gcc" "tests/CMakeFiles/test_noc.dir/noc/routing_test.cpp.o.d"
  "/root/repo/tests/noc/traffic_test.cpp" "tests/CMakeFiles/test_noc.dir/noc/traffic_test.cpp.o" "gcc" "tests/CMakeFiles/test_noc.dir/noc/traffic_test.cpp.o.d"
  "/root/repo/tests/noc/vc_test.cpp" "tests/CMakeFiles/test_noc.dir/noc/vc_test.cpp.o" "gcc" "tests/CMakeFiles/test_noc.dir/noc/vc_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/noc/CMakeFiles/nocw_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nocw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
