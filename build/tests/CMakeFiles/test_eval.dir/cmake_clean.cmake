file(REMOVE_RECURSE
  "CMakeFiles/test_eval.dir/eval/flow_test.cpp.o"
  "CMakeFiles/test_eval.dir/eval/flow_test.cpp.o.d"
  "CMakeFiles/test_eval.dir/eval/layer_selection_test.cpp.o"
  "CMakeFiles/test_eval.dir/eval/layer_selection_test.cpp.o.d"
  "CMakeFiles/test_eval.dir/eval/multi_layer_test.cpp.o"
  "CMakeFiles/test_eval.dir/eval/multi_layer_test.cpp.o.d"
  "CMakeFiles/test_eval.dir/eval/probes_test.cpp.o"
  "CMakeFiles/test_eval.dir/eval/probes_test.cpp.o.d"
  "CMakeFiles/test_eval.dir/eval/quantized_flow_test.cpp.o"
  "CMakeFiles/test_eval.dir/eval/quantized_flow_test.cpp.o.d"
  "CMakeFiles/test_eval.dir/eval/sensitivity_test.cpp.o"
  "CMakeFiles/test_eval.dir/eval/sensitivity_test.cpp.o.d"
  "test_eval"
  "test_eval.pdb"
  "test_eval[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
