# Empty compiler generated dependencies file for quantize_then_compress.
# This may be replaced when dependencies are built.
