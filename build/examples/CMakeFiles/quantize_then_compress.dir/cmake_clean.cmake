file(REMOVE_RECURSE
  "CMakeFiles/quantize_then_compress.dir/quantize_then_compress.cpp.o"
  "CMakeFiles/quantize_then_compress.dir/quantize_then_compress.cpp.o.d"
  "quantize_then_compress"
  "quantize_then_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quantize_then_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
