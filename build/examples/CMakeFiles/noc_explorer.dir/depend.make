# Empty dependencies file for noc_explorer.
# This may be replaced when dependencies are built.
