# Empty dependencies file for train_and_compress.
# This may be replaced when dependencies are built.
