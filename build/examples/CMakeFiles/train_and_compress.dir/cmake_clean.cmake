file(REMOVE_RECURSE
  "CMakeFiles/train_and_compress.dir/train_and_compress.cpp.o"
  "CMakeFiles/train_and_compress.dir/train_and_compress.cpp.o.d"
  "train_and_compress"
  "train_and_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_and_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
