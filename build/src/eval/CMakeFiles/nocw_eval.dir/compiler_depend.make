# Empty compiler generated dependencies file for nocw_eval.
# This may be replaced when dependencies are built.
