file(REMOVE_RECURSE
  "CMakeFiles/nocw_eval.dir/flow.cpp.o"
  "CMakeFiles/nocw_eval.dir/flow.cpp.o.d"
  "CMakeFiles/nocw_eval.dir/layer_selection.cpp.o"
  "CMakeFiles/nocw_eval.dir/layer_selection.cpp.o.d"
  "CMakeFiles/nocw_eval.dir/multi_layer.cpp.o"
  "CMakeFiles/nocw_eval.dir/multi_layer.cpp.o.d"
  "CMakeFiles/nocw_eval.dir/probes.cpp.o"
  "CMakeFiles/nocw_eval.dir/probes.cpp.o.d"
  "CMakeFiles/nocw_eval.dir/quantized_flow.cpp.o"
  "CMakeFiles/nocw_eval.dir/quantized_flow.cpp.o.d"
  "CMakeFiles/nocw_eval.dir/sensitivity.cpp.o"
  "CMakeFiles/nocw_eval.dir/sensitivity.cpp.o.d"
  "libnocw_eval.a"
  "libnocw_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nocw_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
