file(REMOVE_RECURSE
  "libnocw_eval.a"
)
