
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/flow.cpp" "src/eval/CMakeFiles/nocw_eval.dir/flow.cpp.o" "gcc" "src/eval/CMakeFiles/nocw_eval.dir/flow.cpp.o.d"
  "/root/repo/src/eval/layer_selection.cpp" "src/eval/CMakeFiles/nocw_eval.dir/layer_selection.cpp.o" "gcc" "src/eval/CMakeFiles/nocw_eval.dir/layer_selection.cpp.o.d"
  "/root/repo/src/eval/multi_layer.cpp" "src/eval/CMakeFiles/nocw_eval.dir/multi_layer.cpp.o" "gcc" "src/eval/CMakeFiles/nocw_eval.dir/multi_layer.cpp.o.d"
  "/root/repo/src/eval/probes.cpp" "src/eval/CMakeFiles/nocw_eval.dir/probes.cpp.o" "gcc" "src/eval/CMakeFiles/nocw_eval.dir/probes.cpp.o.d"
  "/root/repo/src/eval/quantized_flow.cpp" "src/eval/CMakeFiles/nocw_eval.dir/quantized_flow.cpp.o" "gcc" "src/eval/CMakeFiles/nocw_eval.dir/quantized_flow.cpp.o.d"
  "/root/repo/src/eval/sensitivity.cpp" "src/eval/CMakeFiles/nocw_eval.dir/sensitivity.cpp.o" "gcc" "src/eval/CMakeFiles/nocw_eval.dir/sensitivity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/nocw_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/nocw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/nocw_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/accel/CMakeFiles/nocw_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/nocw_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/nocw_power.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nocw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
