# Empty dependencies file for nocw_eval.
# This may be replaced when dependencies are built.
