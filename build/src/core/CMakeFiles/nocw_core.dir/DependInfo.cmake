
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/baseline_codecs.cpp" "src/core/CMakeFiles/nocw_core.dir/baseline_codecs.cpp.o" "gcc" "src/core/CMakeFiles/nocw_core.dir/baseline_codecs.cpp.o.d"
  "/root/repo/src/core/codec.cpp" "src/core/CMakeFiles/nocw_core.dir/codec.cpp.o" "gcc" "src/core/CMakeFiles/nocw_core.dir/codec.cpp.o.d"
  "/root/repo/src/core/decompressor_unit.cpp" "src/core/CMakeFiles/nocw_core.dir/decompressor_unit.cpp.o" "gcc" "src/core/CMakeFiles/nocw_core.dir/decompressor_unit.cpp.o.d"
  "/root/repo/src/core/entropy.cpp" "src/core/CMakeFiles/nocw_core.dir/entropy.cpp.o" "gcc" "src/core/CMakeFiles/nocw_core.dir/entropy.cpp.o.d"
  "/root/repo/src/core/linefit.cpp" "src/core/CMakeFiles/nocw_core.dir/linefit.cpp.o" "gcc" "src/core/CMakeFiles/nocw_core.dir/linefit.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/core/CMakeFiles/nocw_core.dir/metrics.cpp.o" "gcc" "src/core/CMakeFiles/nocw_core.dir/metrics.cpp.o.d"
  "/root/repo/src/core/segment.cpp" "src/core/CMakeFiles/nocw_core.dir/segment.cpp.o" "gcc" "src/core/CMakeFiles/nocw_core.dir/segment.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/nocw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
