file(REMOVE_RECURSE
  "CMakeFiles/nocw_core.dir/baseline_codecs.cpp.o"
  "CMakeFiles/nocw_core.dir/baseline_codecs.cpp.o.d"
  "CMakeFiles/nocw_core.dir/codec.cpp.o"
  "CMakeFiles/nocw_core.dir/codec.cpp.o.d"
  "CMakeFiles/nocw_core.dir/decompressor_unit.cpp.o"
  "CMakeFiles/nocw_core.dir/decompressor_unit.cpp.o.d"
  "CMakeFiles/nocw_core.dir/entropy.cpp.o"
  "CMakeFiles/nocw_core.dir/entropy.cpp.o.d"
  "CMakeFiles/nocw_core.dir/linefit.cpp.o"
  "CMakeFiles/nocw_core.dir/linefit.cpp.o.d"
  "CMakeFiles/nocw_core.dir/metrics.cpp.o"
  "CMakeFiles/nocw_core.dir/metrics.cpp.o.d"
  "CMakeFiles/nocw_core.dir/segment.cpp.o"
  "CMakeFiles/nocw_core.dir/segment.cpp.o.d"
  "libnocw_core.a"
  "libnocw_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nocw_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
