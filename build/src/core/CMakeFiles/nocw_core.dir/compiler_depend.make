# Empty compiler generated dependencies file for nocw_core.
# This may be replaced when dependencies are built.
