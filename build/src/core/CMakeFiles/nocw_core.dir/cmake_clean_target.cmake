file(REMOVE_RECURSE
  "libnocw_core.a"
)
