file(REMOVE_RECURSE
  "libnocw_accel.a"
)
