# Empty dependencies file for nocw_accel.
# This may be replaced when dependencies are built.
