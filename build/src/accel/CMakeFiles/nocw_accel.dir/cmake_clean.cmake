file(REMOVE_RECURSE
  "CMakeFiles/nocw_accel.dir/simulator.cpp.o"
  "CMakeFiles/nocw_accel.dir/simulator.cpp.o.d"
  "CMakeFiles/nocw_accel.dir/summary.cpp.o"
  "CMakeFiles/nocw_accel.dir/summary.cpp.o.d"
  "libnocw_accel.a"
  "libnocw_accel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nocw_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
