file(REMOVE_RECURSE
  "libnocw_power.a"
)
