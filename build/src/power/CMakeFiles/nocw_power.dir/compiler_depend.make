# Empty compiler generated dependencies file for nocw_power.
# This may be replaced when dependencies are built.
