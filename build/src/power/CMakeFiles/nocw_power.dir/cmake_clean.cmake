file(REMOVE_RECURSE
  "CMakeFiles/nocw_power.dir/cacti_like.cpp.o"
  "CMakeFiles/nocw_power.dir/cacti_like.cpp.o.d"
  "CMakeFiles/nocw_power.dir/energy_model.cpp.o"
  "CMakeFiles/nocw_power.dir/energy_model.cpp.o.d"
  "libnocw_power.a"
  "libnocw_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nocw_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
