
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/digits.cpp" "src/nn/CMakeFiles/nocw_nn.dir/digits.cpp.o" "gcc" "src/nn/CMakeFiles/nocw_nn.dir/digits.cpp.o.d"
  "/root/repo/src/nn/gemm.cpp" "src/nn/CMakeFiles/nocw_nn.dir/gemm.cpp.o" "gcc" "src/nn/CMakeFiles/nocw_nn.dir/gemm.cpp.o.d"
  "/root/repo/src/nn/graph.cpp" "src/nn/CMakeFiles/nocw_nn.dir/graph.cpp.o" "gcc" "src/nn/CMakeFiles/nocw_nn.dir/graph.cpp.o.d"
  "/root/repo/src/nn/init.cpp" "src/nn/CMakeFiles/nocw_nn.dir/init.cpp.o" "gcc" "src/nn/CMakeFiles/nocw_nn.dir/init.cpp.o.d"
  "/root/repo/src/nn/layers.cpp" "src/nn/CMakeFiles/nocw_nn.dir/layers.cpp.o" "gcc" "src/nn/CMakeFiles/nocw_nn.dir/layers.cpp.o.d"
  "/root/repo/src/nn/metrics.cpp" "src/nn/CMakeFiles/nocw_nn.dir/metrics.cpp.o" "gcc" "src/nn/CMakeFiles/nocw_nn.dir/metrics.cpp.o.d"
  "/root/repo/src/nn/models_big.cpp" "src/nn/CMakeFiles/nocw_nn.dir/models_big.cpp.o" "gcc" "src/nn/CMakeFiles/nocw_nn.dir/models_big.cpp.o.d"
  "/root/repo/src/nn/models_small.cpp" "src/nn/CMakeFiles/nocw_nn.dir/models_small.cpp.o" "gcc" "src/nn/CMakeFiles/nocw_nn.dir/models_small.cpp.o.d"
  "/root/repo/src/nn/serialize.cpp" "src/nn/CMakeFiles/nocw_nn.dir/serialize.cpp.o" "gcc" "src/nn/CMakeFiles/nocw_nn.dir/serialize.cpp.o.d"
  "/root/repo/src/nn/tensor.cpp" "src/nn/CMakeFiles/nocw_nn.dir/tensor.cpp.o" "gcc" "src/nn/CMakeFiles/nocw_nn.dir/tensor.cpp.o.d"
  "/root/repo/src/nn/train.cpp" "src/nn/CMakeFiles/nocw_nn.dir/train.cpp.o" "gcc" "src/nn/CMakeFiles/nocw_nn.dir/train.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/nocw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
