file(REMOVE_RECURSE
  "CMakeFiles/nocw_nn.dir/digits.cpp.o"
  "CMakeFiles/nocw_nn.dir/digits.cpp.o.d"
  "CMakeFiles/nocw_nn.dir/gemm.cpp.o"
  "CMakeFiles/nocw_nn.dir/gemm.cpp.o.d"
  "CMakeFiles/nocw_nn.dir/graph.cpp.o"
  "CMakeFiles/nocw_nn.dir/graph.cpp.o.d"
  "CMakeFiles/nocw_nn.dir/init.cpp.o"
  "CMakeFiles/nocw_nn.dir/init.cpp.o.d"
  "CMakeFiles/nocw_nn.dir/layers.cpp.o"
  "CMakeFiles/nocw_nn.dir/layers.cpp.o.d"
  "CMakeFiles/nocw_nn.dir/metrics.cpp.o"
  "CMakeFiles/nocw_nn.dir/metrics.cpp.o.d"
  "CMakeFiles/nocw_nn.dir/models_big.cpp.o"
  "CMakeFiles/nocw_nn.dir/models_big.cpp.o.d"
  "CMakeFiles/nocw_nn.dir/models_small.cpp.o"
  "CMakeFiles/nocw_nn.dir/models_small.cpp.o.d"
  "CMakeFiles/nocw_nn.dir/serialize.cpp.o"
  "CMakeFiles/nocw_nn.dir/serialize.cpp.o.d"
  "CMakeFiles/nocw_nn.dir/tensor.cpp.o"
  "CMakeFiles/nocw_nn.dir/tensor.cpp.o.d"
  "CMakeFiles/nocw_nn.dir/train.cpp.o"
  "CMakeFiles/nocw_nn.dir/train.cpp.o.d"
  "libnocw_nn.a"
  "libnocw_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nocw_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
