file(REMOVE_RECURSE
  "libnocw_nn.a"
)
