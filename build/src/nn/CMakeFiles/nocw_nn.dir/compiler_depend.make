# Empty compiler generated dependencies file for nocw_nn.
# This may be replaced when dependencies are built.
