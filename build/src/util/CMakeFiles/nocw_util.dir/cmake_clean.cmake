file(REMOVE_RECURSE
  "CMakeFiles/nocw_util.dir/bitio.cpp.o"
  "CMakeFiles/nocw_util.dir/bitio.cpp.o.d"
  "CMakeFiles/nocw_util.dir/env.cpp.o"
  "CMakeFiles/nocw_util.dir/env.cpp.o.d"
  "CMakeFiles/nocw_util.dir/stats.cpp.o"
  "CMakeFiles/nocw_util.dir/stats.cpp.o.d"
  "CMakeFiles/nocw_util.dir/table.cpp.o"
  "CMakeFiles/nocw_util.dir/table.cpp.o.d"
  "libnocw_util.a"
  "libnocw_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nocw_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
