# Empty compiler generated dependencies file for nocw_util.
# This may be replaced when dependencies are built.
