file(REMOVE_RECURSE
  "libnocw_util.a"
)
