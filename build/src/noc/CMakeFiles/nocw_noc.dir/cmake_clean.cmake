file(REMOVE_RECURSE
  "CMakeFiles/nocw_noc.dir/config.cpp.o"
  "CMakeFiles/nocw_noc.dir/config.cpp.o.d"
  "CMakeFiles/nocw_noc.dir/network.cpp.o"
  "CMakeFiles/nocw_noc.dir/network.cpp.o.d"
  "CMakeFiles/nocw_noc.dir/router.cpp.o"
  "CMakeFiles/nocw_noc.dir/router.cpp.o.d"
  "CMakeFiles/nocw_noc.dir/traffic.cpp.o"
  "CMakeFiles/nocw_noc.dir/traffic.cpp.o.d"
  "libnocw_noc.a"
  "libnocw_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nocw_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
