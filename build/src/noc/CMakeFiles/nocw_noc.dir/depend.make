# Empty dependencies file for nocw_noc.
# This may be replaced when dependencies are built.
