file(REMOVE_RECURSE
  "libnocw_noc.a"
)
