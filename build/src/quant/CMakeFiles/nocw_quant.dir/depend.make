# Empty dependencies file for nocw_quant.
# This may be replaced when dependencies are built.
