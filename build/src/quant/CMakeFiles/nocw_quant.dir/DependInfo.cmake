
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/quant/affine.cpp" "src/quant/CMakeFiles/nocw_quant.dir/affine.cpp.o" "gcc" "src/quant/CMakeFiles/nocw_quant.dir/affine.cpp.o.d"
  "/root/repo/src/quant/fp16.cpp" "src/quant/CMakeFiles/nocw_quant.dir/fp16.cpp.o" "gcc" "src/quant/CMakeFiles/nocw_quant.dir/fp16.cpp.o.d"
  "/root/repo/src/quant/quantized_codec.cpp" "src/quant/CMakeFiles/nocw_quant.dir/quantized_codec.cpp.o" "gcc" "src/quant/CMakeFiles/nocw_quant.dir/quantized_codec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/nocw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nocw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
