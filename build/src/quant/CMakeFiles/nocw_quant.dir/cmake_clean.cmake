file(REMOVE_RECURSE
  "CMakeFiles/nocw_quant.dir/affine.cpp.o"
  "CMakeFiles/nocw_quant.dir/affine.cpp.o.d"
  "CMakeFiles/nocw_quant.dir/fp16.cpp.o"
  "CMakeFiles/nocw_quant.dir/fp16.cpp.o.d"
  "CMakeFiles/nocw_quant.dir/quantized_codec.cpp.o"
  "CMakeFiles/nocw_quant.dir/quantized_codec.cpp.o.d"
  "libnocw_quant.a"
  "libnocw_quant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nocw_quant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
