file(REMOVE_RECURSE
  "libnocw_quant.a"
)
