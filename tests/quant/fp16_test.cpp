#include "quant/fp16.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "util/rng.hpp"

namespace nocw::quant {
namespace {

TEST(Fp16, ExactSmallValues) {
  for (float f : {0.0F, 1.0F, -1.0F, 0.5F, 2.0F, -0.25F, 1024.0F}) {
    EXPECT_EQ(half_to_float(float_to_half(f)), f) << f;
  }
}

TEST(Fp16, SignedZeroPreserved) {
  EXPECT_EQ(float_to_half(0.0F), 0x0000u);
  EXPECT_EQ(float_to_half(-0.0F), 0x8000u);
  EXPECT_TRUE(std::signbit(half_to_float(0x8000u)));
}

TEST(Fp16, InfinityAndNan) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(float_to_half(inf), 0x7C00u);
  EXPECT_EQ(float_to_half(-inf), 0xFC00u);
  EXPECT_TRUE(std::isinf(half_to_float(0x7C00u)));
  const float nan = std::numeric_limits<float>::quiet_NaN();
  EXPECT_TRUE(std::isnan(half_to_float(float_to_half(nan))));
}

TEST(Fp16, OverflowSaturatesToInfinity) {
  EXPECT_EQ(float_to_half(1e6F), 0x7C00u);  // > 65504 (half max)
  EXPECT_EQ(float_to_half(-1e6F), 0xFC00u);
}

TEST(Fp16, HalfMaxRepresentable) {
  EXPECT_FLOAT_EQ(half_to_float(float_to_half(65504.0F)), 65504.0F);
}

TEST(Fp16, SubnormalsRoundTrip) {
  // Smallest positive half subnormal is 2^-24.
  const float tiny = std::ldexp(1.0F, -24);
  EXPECT_FLOAT_EQ(half_to_float(float_to_half(tiny)), tiny);
  // Below half of that, rounds to zero.
  EXPECT_EQ(half_to_float(float_to_half(std::ldexp(1.0F, -26))), 0.0F);
}

TEST(Fp16, RelativeErrorBounded) {
  Xoshiro256pp rng(101);
  for (int i = 0; i < 10000; ++i) {
    const float f = static_cast<float>(rng.normal(0.0, 1.0));
    if (f == 0.0F) continue;
    const float back = half_to_float(float_to_half(f));
    // Half has 11 significand bits: relative error <= 2^-11.
    EXPECT_LE(std::abs(back - f) / std::abs(f), 1.0F / 2048.0F + 1e-7F) << f;
  }
}

TEST(Fp16, RoundToNearestEven) {
  // 1 + 2^-11 is exactly halfway between 1.0 and the next half value
  // (1 + 2^-10); ties round to even mantissa, i.e. down to 1.0.
  const float halfway = 1.0F + std::ldexp(1.0F, -11);
  EXPECT_FLOAT_EQ(half_to_float(float_to_half(halfway)), 1.0F);
  // Slightly above the tie rounds up.
  const float above = 1.0F + std::ldexp(1.0F, -11) + std::ldexp(1.0F, -16);
  EXPECT_FLOAT_EQ(half_to_float(float_to_half(above)),
                  1.0F + std::ldexp(1.0F, -10));
}

TEST(Fp16, VectorHelpersMatchScalar) {
  Xoshiro256pp rng(102);
  std::vector<float> w(1000);
  for (auto& x : w) x = static_cast<float>(rng.normal(0.0, 0.1));
  const auto halves = to_half(w);
  const auto back = from_half(halves);
  const auto round = roundtrip_half(w);
  ASSERT_EQ(back.size(), w.size());
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_EQ(back[i], half_to_float(halves[i]));
    EXPECT_EQ(round[i], back[i]);
  }
}

}  // namespace
}  // namespace nocw::quant
