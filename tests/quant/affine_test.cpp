#include "quant/affine.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace nocw::quant {
namespace {

TEST(Affine, ZeroIsRepresentedExactly) {
  Xoshiro256pp rng(91);
  std::vector<float> w(1000);
  for (auto& x : w) x = static_cast<float>(rng.normal(0.3, 0.2));
  const AffineParams p = choose_params(w);
  const std::int8_t zero_code = p.quantize(0.0F);
  EXPECT_NEAR(p.dequantize(zero_code), 0.0F, p.scale * 0.51F);
}

TEST(Affine, EmptyInputGivesIdentityParams) {
  const AffineParams p = choose_params({});
  EXPECT_EQ(p.scale, 1.0F);
  EXPECT_EQ(p.zero_point, 0);
}

TEST(Affine, ConstantTensor) {
  std::vector<float> w(100, 0.0F);
  const AffineParams p = choose_params(w);
  EXPECT_EQ(p.dequantize(p.quantize(0.0F)), 0.0F);
}

TEST(Affine, RoundTripErrorBoundedByHalfScale) {
  Xoshiro256pp rng(92);
  std::vector<float> w(10000);
  for (auto& x : w) x = static_cast<float>(rng.uniform(-0.8, 1.2));
  const QuantizedTensor t = quantize_tensor(w);
  for (std::size_t i = 0; i < w.size(); ++i) {
    const float back = t.params.dequantize(t.data[i]);
    EXPECT_LE(std::abs(back - w[i]), t.params.scale * 0.5001F + 1e-6F) << i;
  }
}

TEST(Affine, CodesSpanFullRange) {
  std::vector<float> w;
  for (int i = 0; i <= 255; ++i) w.push_back(static_cast<float>(i) / 255.0F);
  const QuantizedTensor t = quantize_tensor(w);
  std::int8_t lo = 127;
  std::int8_t hi = -128;
  for (auto c : t.data) {
    lo = std::min(lo, c);
    hi = std::max(hi, c);
  }
  EXPECT_EQ(static_cast<int>(lo), -128);
  EXPECT_EQ(static_cast<int>(hi), 127);
}

TEST(Affine, DequantizeFollowsTfliteFormula) {
  AffineParams p;
  p.scale = 0.02F;
  p.zero_point = 10;
  // real = (int8 - zero_point) * scale
  EXPECT_FLOAT_EQ(p.dequantize(15), 0.1F);
  EXPECT_FLOAT_EQ(p.dequantize(10), 0.0F);
  EXPECT_FLOAT_EQ(p.dequantize(-10), -0.4F);
}

TEST(Affine, QuantizeClampsOutOfRange) {
  AffineParams p;
  p.scale = 0.01F;
  p.zero_point = 0;
  EXPECT_EQ(static_cast<int>(p.quantize(100.0F)), 127);
  EXPECT_EQ(static_cast<int>(p.quantize(-100.0F)), -128);
}

TEST(Affine, MseSmallRelativeToVariance) {
  Xoshiro256pp rng(93);
  std::vector<float> w(20000);
  for (auto& x : w) x = static_cast<float>(rng.normal(0.0, 0.1));
  const double mse = quantization_mse(w);
  // 8-bit quantization noise ≈ scale²/12, orders below the signal variance.
  EXPECT_LT(mse, 0.01 * 0.1 * 0.1);
  EXPECT_GT(mse, 0.0);
}

TEST(Affine, DequantizeVectorMatchesScalar) {
  Xoshiro256pp rng(94);
  std::vector<float> w(500);
  for (auto& x : w) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  const QuantizedTensor t = quantize_tensor(w);
  const std::vector<float> d = t.dequantize();
  ASSERT_EQ(d.size(), w.size());
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_FLOAT_EQ(d[i], t.params.dequantize(t.data[i]));
  }
}

}  // namespace
}  // namespace nocw::quant
