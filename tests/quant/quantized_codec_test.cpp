#include "quant/quantized_codec.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace nocw::quant {
namespace {

QuantizedTensor make_tensor(std::size_t n, std::uint64_t seed) {
  Xoshiro256pp rng(seed);
  std::vector<float> w(n);
  for (auto& x : w) x = static_cast<float>(rng.normal(0.0, 0.05));
  return quantize_tensor(w);
}

TEST(QuantizedCodec, RatioAccountsEightBitBaseline) {
  const auto t = make_tensor(50000, 111);
  QuantizedCodecConfig cfg;
  const auto layer = compress_quantized(t, cfg);
  EXPECT_EQ(layer.config.weight_bits, 8u);
  EXPECT_EQ(layer.original_count, t.data.size());
}

TEST(QuantizedCodec, ZeroDeltaPreservesMostSignalEnergy) {
  // At δ=0 the per-segment line fit leaves residuals proportional to the
  // within-segment deviation; reconstruction error must stay far below the
  // signal's own variance (the paper's δ=0 rows show MSE ≈ 1% of the range²).
  const auto t = make_tensor(20000, 112);
  QuantizedCodecConfig cfg;
  cfg.delta_percent = 0.0;
  const auto layer = compress_quantized(t, cfg);
  const auto back = decompress_quantized(layer, t.params);
  ASSERT_EQ(back.data.size(), t.data.size());
  double mse = 0.0;
  double var = 0.0;
  double mean = 0.0;
  for (auto c : t.data) mean += c;
  mean /= static_cast<double>(t.data.size());
  for (std::size_t i = 0; i < t.data.size(); ++i) {
    const double d = static_cast<double>(t.data[i]) - back.data[i];
    mse += d * d;
    const double dv = static_cast<double>(t.data[i]) - mean;
    var += dv * dv;
  }
  mse /= static_cast<double>(t.data.size());
  var /= static_cast<double>(t.data.size());
  EXPECT_LT(mse, 0.1 * var);
  EXPECT_GT(mse, 0.0);
}

TEST(QuantizedCodec, TieRunsCompressWellAtZeroDelta) {
  // Quantization creates runs of equal codes, so even δ=0 produces longer
  // segments than the float stream would.
  Xoshiro256pp rng(113);
  std::vector<float> w(50000);
  for (auto& x : w) x = static_cast<float>(rng.normal(0.0, 0.02));
  const auto t = quantize_tensor(w);
  QuantizedCodecConfig cfg;
  const auto layer = compress_quantized(t, cfg);
  EXPECT_GT(layer.mean_segment_length(), 2.437);
}

TEST(QuantizedCodec, CrGrowsWithDelta) {
  const auto t = make_tensor(50000, 114);
  double prev = 0.0;
  for (double delta : {0.0, 5.0, 10.0, 15.0, 20.0}) {
    QuantizedCodecConfig cfg;
    cfg.delta_percent = delta;
    const auto layer = compress_quantized(t, cfg);
    const double cr = layer.compression_ratio();
    EXPECT_GT(cr, prev);
    prev = cr;
  }
}

TEST(QuantizedCodec, ReconstructedCodesInValidRange) {
  const auto t = make_tensor(30000, 115);
  QuantizedCodecConfig cfg;
  cfg.delta_percent = 25.0;
  const auto layer = compress_quantized(t, cfg);
  const auto back = decompress_quantized(layer, t.params);
  for (auto c : back.data) {
    EXPECT_GE(static_cast<int>(c), -128);
    EXPECT_LE(static_cast<int>(c), 127);
  }
  EXPECT_EQ(back.params.scale, t.params.scale);
  EXPECT_EQ(back.params.zero_point, t.params.zero_point);
}

TEST(QuantizedCodec, DequantizedErrorTracksDelta) {
  const auto t = make_tensor(30000, 116);
  const std::vector<float> original = t.dequantize();
  double prev_mse = -1.0;
  for (double delta : {0.0, 10.0, 30.0}) {
    QuantizedCodecConfig cfg;
    cfg.delta_percent = delta;
    const auto layer = compress_quantized(t, cfg);
    const auto back = decompress_quantized(layer, t.params);
    const std::vector<float> rec = back.dequantize();
    double mse = 0.0;
    for (std::size_t i = 0; i < rec.size(); ++i) {
      const double d = static_cast<double>(rec[i]) - original[i];
      mse += d * d;
    }
    mse /= static_cast<double>(rec.size());
    EXPECT_GT(mse, prev_mse);
    prev_mse = mse;
  }
}

}  // namespace
}  // namespace nocw::quant
