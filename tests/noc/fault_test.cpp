#include "noc/fault.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "noc/network.hpp"
#include "noc/traffic.hpp"
#include "util/units.hpp"

namespace nocw::noc {
namespace {

// --- primitives ------------------------------------------------------------

TEST(FaultHash, PureFunctionOfArguments) {
  const std::uint64_t a = fault_hash(1, 2, 3, 4);
  EXPECT_EQ(a, fault_hash(1, 2, 3, 4));  // no hidden state
  // Any coordinate change changes the value (probabilistically certain for a
  // fixed set of probes; these are regression anchors, not proofs).
  EXPECT_NE(a, fault_hash(2, 2, 3, 4));
  EXPECT_NE(a, fault_hash(1, 3, 3, 4));
  EXPECT_NE(a, fault_hash(1, 2, 4, 4));
  EXPECT_NE(a, fault_hash(1, 2, 3, 5));
}

TEST(CorruptBits, ZeroRateFlipsNothing) {
  std::vector<std::uint8_t> buf(256, 0xA5);
  const auto orig = buf;
  EXPECT_EQ(corrupt_bits(buf, 0.0, 7), 0u);
  EXPECT_EQ(buf, orig);
}

TEST(CorruptBits, RateOneFlipsEverything) {
  std::vector<std::uint8_t> buf(64, 0x0F);
  EXPECT_EQ(corrupt_bits(buf, 1.0, 7), 64u * 8u);
  for (auto b : buf) EXPECT_EQ(b, 0xF0);
}

TEST(CorruptBits, DeterministicPerSeed) {
  std::vector<std::uint8_t> a(4096, 0);
  std::vector<std::uint8_t> b(4096, 0);
  const auto na = corrupt_bits(a, 1e-3, 42);
  const auto nb = corrupt_bits(b, 1e-3, 42);
  EXPECT_EQ(na, nb);
  EXPECT_EQ(a, b);

  std::vector<std::uint8_t> c(4096, 0);
  (void)corrupt_bits(c, 1e-3, 43);
  EXPECT_NE(a, c);  // different seed, different pattern
}

TEST(CorruptBits, FlipCountMatchesPopcount) {
  std::vector<std::uint8_t> buf(1024, 0);
  const auto flips = corrupt_bits(buf, 0.01, 11);
  std::uint64_t pop = 0;
  for (auto b : buf) pop += static_cast<unsigned>(__builtin_popcount(b));
  EXPECT_EQ(flips, pop);
  EXPECT_GT(flips, 0u);  // 8192 bits at 1% — emptiness would be a bug
}

TEST(Crc32Word, CatchesEverySingleBitFlip) {
  // The CRC a packet carries is folded per 64-bit payload word; flipping any
  // single bit of any word must change the final value (CRC-32 detects all
  // single-bit errors by construction — this guards the implementation).
  const std::vector<std::uint64_t> words{0x0123456789ABCDEFULL, 0, ~0ULL,
                                         0xDEADBEEFCAFEF00DULL};
  std::uint32_t clean = kCrcInit;
  for (const auto w : words) clean = crc32_word(clean, w);
  for (std::size_t wi = 0; wi < words.size(); ++wi) {
    for (int bit = 0; bit < 64; ++bit) {
      auto corrupted = words;
      corrupted[wi] ^= (1ULL << bit);
      std::uint32_t crc = kCrcInit;
      for (const auto w : corrupted) crc = crc32_word(crc, w);
      ASSERT_NE(crc, clean) << "missed flip of bit " << bit << " in word "
                            << wi;
    }
  }
}

// --- FaultModel ------------------------------------------------------------

TEST(FaultModel, DisabledByDefaultConfig) {
  const FaultModel fm(FaultConfig{}, 16);
  EXPECT_FALSE(fm.enabled());
}

TEST(FaultModel, DecisionsAreOrderIndependent) {
  FaultConfig cfg;
  cfg.link_fault_probability = 0.3;
  cfg.router_stall_probability = 0.2;
  cfg.seed = 99;
  const FaultModel fm(cfg, 16);
  // Query in two different orders; answers must agree because every decision
  // is a pure function of (cycle, entity).
  std::vector<bool> forward;
  std::vector<bool> backward;
  for (int r = 0; r < 16; ++r) forward.push_back(fm.router_stalled(5, r));
  for (int r = 15; r >= 0; --r) backward.push_back(fm.router_stalled(5, r));
  for (int r = 0; r < 16; ++r) {
    EXPECT_EQ(forward[static_cast<std::size_t>(r)],
              backward[static_cast<std::size_t>(15 - r)]);
  }
  EXPECT_EQ(fm.link_down(123, 3, 1), fm.link_down(123, 3, 1));
}

TEST(FaultModel, PermanentStuckLinksArePlacedDeterministically) {
  FaultConfig cfg;
  cfg.permanent_stuck_links = 3;
  cfg.seed = 5;
  const FaultModel a(cfg, 16);
  const FaultModel b(cfg, 16);
  int stuck = 0;
  for (int r = 0; r < 16; ++r) {
    for (int p = 0; p < kNumPorts; ++p) {
      EXPECT_EQ(a.stuck_mask(r, p), b.stuck_mask(r, p));
      if (a.stuck_mask(r, p) != 0) ++stuck;
    }
  }
  EXPECT_EQ(stuck, 3);
}

// --- network integration ---------------------------------------------------

NocConfig faulty_cfg(double ber, bool protect, int max_retries = 4) {
  NocConfig cfg;
  cfg.fault.bit_flip_probability = ber;
  cfg.fault.seed = 777;
  cfg.protection.crc = protect;
  cfg.protection.max_retries = max_retries;
  return cfg;
}

std::vector<PacketDescriptor> weight_stream(const NocConfig& cfg,
                                            std::uint64_t flits) {
  std::vector<PacketDescriptor> ps;
  const auto mis = cfg.memory_interface_nodes();
  const auto pes = cfg.pe_nodes();
  const std::uint64_t share = flits / mis.size();
  for (const int mi : mis) {
    const auto flow = scatter_flow(mi, pes, share, 8);
    ps.insert(ps.end(), flow.begin(), flow.end());
  }
  return ps;
}

TEST(NetworkFault, UnprotectedRunStillDeliversCorruptedFlits) {
  const NocConfig cfg = faulty_cfg(1e-4, /*protect=*/false);
  Network net(cfg);
  const auto ps = weight_stream(cfg, 2000);
  net.add_packets(ps);
  net.run_until_drained(200000);
  const NocStats& st = net.stats();
  EXPECT_EQ(st.flits_ejected, total_flits(ps));  // nothing detects the flips
  EXPECT_GT(st.payload_bit_flips, 0u);
  EXPECT_EQ(st.crc_failures, 0u);
  EXPECT_EQ(st.retransmissions, 0u);
  net.check_invariants();
}

TEST(NetworkFault, CrcCatchesFaultsAndRetransmissionRecovers) {
  const NocConfig cfg = faulty_cfg(1e-4, /*protect=*/true);
  Network net(cfg);
  const auto ps = weight_stream(cfg, 2000);
  net.add_packets(ps);
  net.run_until_drained(400000);
  const NocStats& st = net.stats();
  // Faults happened, CRC caught them, retransmission recovered every packet
  // within the default retry budget.
  EXPECT_GT(st.payload_bit_flips, 0u);
  EXPECT_GT(st.crc_failures, 0u);
  EXPECT_GT(st.retransmissions, 0u);
  EXPECT_EQ(st.packets_dropped, 0u);
  EXPECT_EQ(st.packets_delivered, ps.size());
  EXPECT_EQ(st.crc_failures, st.retransmissions + st.packets_dropped);
  net.check_invariants();
}

TEST(NetworkFault, StuckLinkExhaustsRetryBudget) {
  NocConfig cfg;
  cfg.fault.permanent_stuck_links = 10;  // half the mesh's useful links
  cfg.fault.seed = 3;
  cfg.protection.crc = true;
  cfg.protection.max_retries = 1;
  cfg.protection.retry_backoff_cycles = 2;
  Network net(cfg);
  const auto ps = weight_stream(cfg, 1000);
  net.add_packets(ps);
  net.run_until_drained(400000);
  const NocStats& st = net.stats();
  // Packets whose path crosses a stuck link fail every attempt: with a
  // 1-retry budget they must drop, and nothing may be double-counted.
  EXPECT_GT(st.packets_dropped, 0u);
  EXPECT_EQ(st.packets_delivered + st.packets_dropped, ps.size());
  EXPECT_EQ(st.crc_failures, st.retransmissions + st.packets_dropped);
  net.check_invariants();
}

NocStats run_stream(const NocConfig& cfg, std::uint64_t flits) {
  Network net(cfg);
  net.add_packets(weight_stream(cfg, flits));
  net.run_until_drained(400000);
  net.check_invariants();
  return net.stats();
}

TEST(NetworkFault, IdenticalSeedGivesBitIdenticalStats) {
  const NocConfig cfg = faulty_cfg(5e-4, /*protect=*/true);
  const NocStats a = run_stream(cfg, 2000);
  const NocStats b = run_stream(cfg, 2000);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.flits_injected, b.flits_injected);
  EXPECT_EQ(a.flits_ejected, b.flits_ejected);
  EXPECT_EQ(a.payload_bit_flips, b.payload_bit_flips);
  EXPECT_EQ(a.crc_failures, b.crc_failures);
  EXPECT_EQ(a.retransmissions, b.retransmissions);
  EXPECT_EQ(a.packets_dropped, b.packets_dropped);
  EXPECT_EQ(a.packet_latency.mean(), b.packet_latency.mean());

  NocConfig other = cfg;
  other.fault.seed = 778;
  const NocStats c = run_stream(other, 2000);
  EXPECT_NE(a.payload_bit_flips, c.payload_bit_flips);
}

TEST(NetworkFault, DisabledFaultsAndProtectionAreZeroOverhead) {
  // The fault/protection machinery must be completely inert by default:
  // identical cycles and event counts to a config that never mentions it,
  // and every new counter pinned at zero.
  const NocStats st = run_stream(NocConfig{}, 2000);
  EXPECT_EQ(st.payload_bit_flips, 0u);
  EXPECT_EQ(st.link_fault_cycles.value(), 0u);
  EXPECT_EQ(st.router_stall_cycles.value(), 0u);
  EXPECT_EQ(st.crc_flits_injected.value(), 0u);
  EXPECT_EQ(st.crc_flit_events, 0u);
  EXPECT_EQ(st.crc_failures, 0u);
  EXPECT_EQ(st.retransmissions, 0u);
  EXPECT_EQ(st.packets_dropped, 0u);
}

TEST(NetworkFault, CrcFlitOverheadIsExactlyOnePerPacket) {
  NocConfig cfg;
  cfg.protection.crc = true;  // protection without faults
  Network net(cfg);
  const auto ps = weight_stream(cfg, 1000);
  net.add_packets(ps);
  net.run_until_drained(200000);
  const NocStats& st = net.stats();
  EXPECT_EQ(st.crc_flits_injected.value(), ps.size());
  EXPECT_EQ(st.flits_injected.value(), total_flits(ps).value() + ps.size());
  // Fault-free: every packet passes its check first try.
  EXPECT_EQ(st.crc_failures, 0u);
  EXPECT_EQ(st.packets_delivered, ps.size());
  // Generator + checker each touch every flit of every protected packet.
  EXPECT_EQ(st.crc_flit_events, 2 * st.flits_injected.value());
  net.check_invariants();
}

TEST(NetworkFault, TransientLinkAndStallFaultsDelayButDeliver) {
  NocConfig cfg;
  cfg.fault.link_fault_probability = 0.05;
  cfg.fault.router_stall_probability = 0.05;
  cfg.fault.seed = 21;
  const NocStats faulty = run_stream(cfg, 1000);
  const NocStats clean = run_stream(NocConfig{}, 1000);
  EXPECT_EQ(faulty.flits_ejected, clean.flits_ejected);  // all delivered
  EXPECT_GT(faulty.link_fault_cycles.value(), 0u);
  EXPECT_GT(faulty.router_stall_cycles.value(), 0u);
  EXPECT_GT(faulty.cycles, clean.cycles);  // outages cost time
}

}  // namespace
}  // namespace nocw::noc
