#include "noc/router.hpp"

#include <gtest/gtest.h>

namespace nocw::noc {
namespace {

NocConfig cfg4x4() { return NocConfig{}; }

Flit head(int src, int dst, std::uint32_t id = 1) {
  Flit f;
  f.packet_id = id;
  f.src = static_cast<std::uint16_t>(src);
  f.dst = static_cast<std::uint16_t>(dst);
  f.type = FlitType::Head;
  return f;
}

TEST(Router, XyRouteComputation) {
  const NocConfig cfg = cfg4x4();
  Router r(5, cfg);  // node (1,1)
  EXPECT_EQ(r.route(5), kLocal);
  EXPECT_EQ(r.route(6), kEast);
  EXPECT_EQ(r.route(4), kWest);
  EXPECT_EQ(r.route(1), kNorth);
  EXPECT_EQ(r.route(9), kSouth);
  // X resolved before Y: dst (3,3)=15 from (1,1) goes East first.
  EXPECT_EQ(r.route(15), kEast);
  // dst (1,3)=13: same column -> South.
  EXPECT_EQ(r.route(13), kSouth);
}

TEST(Router, AllocatePicksRequestingInput) {
  const NocConfig cfg = cfg4x4();
  Router r(5, cfg);
  r.input(kWest).push(head(4, 6));  // wants East
  EXPECT_FALSE(r.allocate(kNorth).has_value());
  const auto in = r.allocate(kEast);
  ASSERT_TRUE(in.has_value());
  EXPECT_EQ(*in, kWest);
}

TEST(Router, WormholeLockHoldsUntilTail) {
  const NocConfig cfg = cfg4x4();
  Router r(5, cfg);
  // Packet A: head+body+tail from West to East.
  Flit h = head(4, 6, 1);
  Flit b = h;
  b.type = FlitType::Body;
  Flit t = h;
  t.type = FlitType::Tail;
  r.input(kWest).push(h);
  // Competing head from North also wants East.
  r.input(kNorth).push(head(1, 6, 2));

  auto in = r.allocate(kEast);
  ASSERT_TRUE(in.has_value());
  const int winner = *in;
  (void)r.grant(winner, kEast);  // head claims the lock

  // Body of the winning packet arrives later; until then no one else may use
  // the locked output.
  const auto blocked = r.allocate(kEast);
  if (winner == kWest) {
    EXPECT_FALSE(blocked.has_value());  // owner's buffer is empty
    r.input(kWest).push(b);
    auto again = r.allocate(kEast);
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(*again, kWest);
    (void)r.grant(kWest, kEast);
    r.input(kWest).push(t);
    (void)r.grant(kWest, kEast);  // tail releases the lock
    const auto after = r.allocate(kEast);
    ASSERT_TRUE(after.has_value());
    EXPECT_EQ(*after, kNorth);  // the competitor finally wins
  }
}

TEST(Router, BodyFlitWithoutLockNotGranted) {
  const NocConfig cfg = cfg4x4();
  Router r(5, cfg);
  Flit b = head(4, 6);
  b.type = FlitType::Body;
  r.input(kWest).push(b);
  EXPECT_FALSE(r.allocate(kEast).has_value());
}

TEST(Router, HeadTailReleasesImmediately) {
  const NocConfig cfg = cfg4x4();
  Router r(5, cfg);
  Flit f = head(4, 6);
  f.type = FlitType::HeadTail;
  r.input(kWest).push(f);
  const auto in = r.allocate(kEast);
  ASSERT_TRUE(in.has_value());
  (void)r.grant(*in, kEast);
  r.input(kNorth).push(head(1, 6, 2));
  const auto next = r.allocate(kEast);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(*next, kNorth);
}

TEST(Router, RoundRobinRotatesPriority) {
  const NocConfig cfg = cfg4x4();
  Router r(5, cfg);
  // Two single-flit packets from different inputs, both to the East.
  Flit a = head(4, 6, 1);
  a.type = FlitType::HeadTail;
  Flit b = head(1, 6, 2);
  b.type = FlitType::HeadTail;
  r.input(kWest).push(a);
  r.input(kNorth).push(b);
  const auto first = r.allocate(kEast);
  ASSERT_TRUE(first.has_value());
  (void)r.grant(*first, kEast);
  const auto second = r.allocate(kEast);
  ASSERT_TRUE(second.has_value());
  EXPECT_NE(*second, *first);
}

TEST(Router, IdleAndBufferedCount) {
  const NocConfig cfg = cfg4x4();
  Router r(5, cfg);
  EXPECT_TRUE(r.idle());
  r.input(kWest).push(head(4, 6));
  EXPECT_FALSE(r.idle());
  EXPECT_EQ(r.buffered_flits(), 1u);
}

TEST(Router, GrantOnEmptyInputThrows) {
  const NocConfig cfg = cfg4x4();
  Router r(5, cfg);
  EXPECT_THROW((void)r.grant(kWest, kEast), std::logic_error);
}

}  // namespace
}  // namespace nocw::noc
