// Virtual-channel behaviour tests.
#include <gtest/gtest.h>

#include <map>

#include "noc/network.hpp"
#include "noc/traffic.hpp"

namespace nocw::noc {
namespace {

NocConfig with_vcs(int vcs) {
  NocConfig cfg;
  cfg.virtual_channels = vcs;
  return cfg;
}

TEST(VirtualChannels, SingleVcMatchesLegacyBehaviour) {
  // vcs = 1 must be cycle-identical to the plain wormhole configuration.
  auto run = [](int vcs) {
    Network net(with_vcs(vcs));
    net.add_packets(uniform_random_traffic(net.config(), 300, 6, 7));
    net.run_until_drained(1000000);
    return net.stats();
  };
  const NocStats once = run(1);
  const NocStats again = run(1);
  EXPECT_EQ(once.cycles, again.cycles);
  EXPECT_EQ(once.link_traversals, again.link_traversals);
}

TEST(VirtualChannels, AllTrafficDeliveredAcrossVcCounts) {
  for (int vcs : {1, 2, 4}) {
    Network net(with_vcs(vcs));
    const auto ps = uniform_random_traffic(net.config(), 400, 5, 99);
    net.add_packets(ps);
    net.run_until_drained(1000000);
    EXPECT_EQ(net.stats().flits_ejected, total_flits(ps)) << vcs << " VCs";
    EXPECT_EQ(net.stats().packets_ejected, ps.size());
  }
}

TEST(VirtualChannels, PerVcStreamsNeverInterleave) {
  // Packets may interleave on a link across VCs, but within one VC the
  // wormhole invariant holds; at the destination, track per-VC open packets.
  Network net(with_vcs(4));
  for (int src : {0, 3, 12, 15, 5, 10, 6, 9}) {
    for (int k = 0; k < 4; ++k) {
      PacketDescriptor p;
      p.src = static_cast<std::uint16_t>(src);
      p.dst = 7;
      p.size_flits = 9;
      net.add_packet(p);
    }
  }
  std::map<int, std::uint32_t> open;  // vc -> packet id
  bool violated = false;
  net.set_eject_hook([&](const Flit& f, std::uint64_t) {
    const int vc = static_cast<int>(f.vc);
    if (f.type == FlitType::Head) {
      if (open.count(vc)) violated = true;
      open[vc] = f.packet_id;
    } else if (f.type == FlitType::Body || f.type == FlitType::Tail) {
      if (!open.count(vc) || open[vc] != f.packet_id) violated = true;
      if (f.type == FlitType::Tail) open.erase(vc);
    }
  });
  net.run_until_drained(1000000);
  EXPECT_FALSE(violated);
  EXPECT_EQ(net.stats().packets_ejected, 32u);
}

TEST(VirtualChannels, PacketsInterleaveAcrossVcsOnSharedLink) {
  // Two long packets from different sources share the column into node 13;
  // with 2 VCs their flits interleave at the destination (impossible with
  // 1 VC, where the wormhole lock serializes them).
  auto interleavings = [](int vcs) {
    Network net(with_vcs(vcs));
    PacketDescriptor a;
    a.src = 1;
    a.dst = 13;
    a.size_flits = 40;
    PacketDescriptor b;
    b.src = 5;
    b.dst = 13;
    b.size_flits = 40;
    net.add_packet(a);
    net.add_packet(b);
    int switches = 0;
    std::uint32_t last = 0;
    net.set_eject_hook([&](const Flit& f, std::uint64_t) {
      if (last != 0 && f.packet_id != last) ++switches;
      last = f.packet_id;
    });
    net.run_until_drained(100000);
    return switches;
  };
  EXPECT_EQ(interleavings(1), 1);  // strictly one packet after the other
  EXPECT_GT(interleavings(2), 1);  // flit-level interleaving
}

TEST(VirtualChannels, RelieveHeadOfLineBlocking) {
  // Head-of-line scenario: a long packet into a congested hotspot shares an
  // input FIFO path with traffic to an idle destination. With more VCs the
  // idle-destination traffic must not finish later, and the total drain
  // time should not degrade.
  auto drain = [](int vcs) {
    Network net(with_vcs(vcs));
    // Hotspot: many streams to node 0.
    for (int src : {5, 6, 9, 10, 3, 15}) {
      net.add_packets(stream_flow(src, 0, 400, 32));
    }
    // Victim flow crossing the same region toward idle node 12.
    net.add_packets(stream_flow(3, 12, 400, 32));
    return net.run_until_drained(2000000);
  };
  const auto one = drain(1);
  const auto four = drain(4);
  EXPECT_LE(four, one);
}

TEST(VirtualChannels, VcAssignmentRoundRobinsPackets) {
  Network net(with_vcs(3));
  for (int k = 0; k < 6; ++k) {
    PacketDescriptor p;
    p.src = 0;
    p.dst = 1;
    p.size_flits = 1;
    net.add_packet(p);
  }
  std::map<int, int> seen;  // vc -> count
  net.set_eject_hook([&](const Flit& f, std::uint64_t) {
    ++seen[static_cast<int>(f.vc)];
  });
  net.run_until_drained(10000);
  EXPECT_EQ(seen.size(), 3u);
  for (const auto& [vc, count] : seen) EXPECT_EQ(count, 2) << "vc " << vc;
}

}  // namespace
}  // namespace nocw::noc
