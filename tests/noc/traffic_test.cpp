#include "noc/traffic.hpp"

#include <gtest/gtest.h>

namespace nocw::noc {
namespace {

TEST(Traffic, StreamChopsIntoMaxSizePackets) {
  const auto ps = stream_flow(0, 5, 100, 32);
  ASSERT_EQ(ps.size(), 4u);
  EXPECT_EQ(ps[0].size_flits, 32u);
  EXPECT_EQ(ps[3].size_flits, 4u);  // remainder
  EXPECT_EQ(total_flits(ps).value(), 100u);
  for (const auto& p : ps) {
    EXPECT_EQ(p.src, 0);
    EXPECT_EQ(p.dst, 5);
  }
}

TEST(Traffic, StreamExactMultiple) {
  const auto ps = stream_flow(1, 2, 64, 32);
  ASSERT_EQ(ps.size(), 2u);
  EXPECT_EQ(ps[1].size_flits, 32u);
}

TEST(Traffic, EmptyStreamYieldsNothing) {
  EXPECT_TRUE(stream_flow(0, 1, 0, 32).empty());
}

TEST(Traffic, ZeroPacketSizeThrows) {
  EXPECT_THROW(stream_flow(0, 1, 10, 0), std::invalid_argument);
}

TEST(Traffic, ScatterRoundRobinsDestinations) {
  const std::vector<int> dsts{1, 2, 5};
  const auto ps = scatter_flow(0, dsts, 96, 16);
  ASSERT_EQ(ps.size(), 6u);
  EXPECT_EQ(ps[0].dst, 1);
  EXPECT_EQ(ps[1].dst, 2);
  EXPECT_EQ(ps[2].dst, 5);
  EXPECT_EQ(ps[3].dst, 1);
  EXPECT_EQ(total_flits(ps).value(), 96u);
}

TEST(Traffic, GatherRoundRobinsSources) {
  const std::vector<int> srcs{4, 7};
  const auto ps = gather_flow(srcs, 0, 48, 16);
  ASSERT_EQ(ps.size(), 3u);
  EXPECT_EQ(ps[0].src, 4);
  EXPECT_EQ(ps[1].src, 7);
  EXPECT_EQ(ps[2].src, 4);
  for (const auto& p : ps) EXPECT_EQ(p.dst, 0);
}

TEST(Traffic, ScatterGatherValidateInputs) {
  EXPECT_THROW(scatter_flow(0, {}, 10, 4), std::invalid_argument);
  EXPECT_THROW(gather_flow({}, 0, 10, 4), std::invalid_argument);
}

TEST(Traffic, ReleaseCyclePropagates) {
  const auto ps = stream_flow(0, 1, 10, 4, 77);
  for (const auto& p : ps) EXPECT_EQ(p.release_cycle, 77u);
}

TEST(Traffic, UniformRandomAvoidsSelfTraffic) {
  NocConfig cfg;
  const auto ps = uniform_random_traffic(cfg, 500, 3, 13);
  EXPECT_EQ(ps.size(), 500u);
  for (const auto& p : ps) {
    EXPECT_NE(p.src, p.dst);
    EXPECT_LT(p.src, 16);
    EXPECT_LT(p.dst, 16);
    EXPECT_EQ(p.size_flits, 3u);
  }
}

TEST(Traffic, UniformRandomDeterministicPerSeed) {
  NocConfig cfg;
  const auto a = uniform_random_traffic(cfg, 50, 3, 21);
  const auto b = uniform_random_traffic(cfg, 50, 3, 21);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].src, b[i].src);
    EXPECT_EQ(a[i].dst, b[i].dst);
  }
}

}  // namespace
}  // namespace nocw::noc
