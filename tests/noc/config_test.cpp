#include "noc/config.hpp"

#include <gtest/gtest.h>

namespace nocw::noc {
namespace {

TEST(NocConfig, DefaultIsPaperMesh) {
  NocConfig cfg;
  EXPECT_EQ(cfg.node_count(), 16);
  EXPECT_EQ(cfg.link_width_bits, 64);
  EXPECT_DOUBLE_EQ(cfg.clock_ghz, 1.0);
}

TEST(NocConfig, CoordinateRoundTrip) {
  NocConfig cfg;
  for (int id = 0; id < cfg.node_count(); ++id) {
    EXPECT_EQ(cfg.node_id(cfg.node_x(id), cfg.node_y(id)), id);
  }
}

TEST(NocConfig, CornersAreMemoryInterfaces) {
  NocConfig cfg;
  const auto mis = cfg.memory_interface_nodes();
  // Paper: corners host memory interfaces, the other 12 nodes are PEs.
  EXPECT_EQ(mis, (std::vector<int>{0, 3, 12, 15}));
  EXPECT_EQ(cfg.pe_nodes().size(), 12u);
  for (int pe : cfg.pe_nodes()) {
    EXPECT_FALSE(cfg.is_memory_interface(pe));
  }
}

TEST(NocConfig, HopsIsManhattan) {
  NocConfig cfg;
  EXPECT_EQ(cfg.hops(0, 0), 0);
  EXPECT_EQ(cfg.hops(0, 15), 6);
  EXPECT_EQ(cfg.hops(0, 3), 3);
  EXPECT_EQ(cfg.hops(5, 6), 1);
  EXPECT_EQ(cfg.hops(5, 9), 1);
  // Symmetry.
  for (int a = 0; a < 16; ++a) {
    for (int b = 0; b < 16; ++b) {
      EXPECT_EQ(cfg.hops(a, b), cfg.hops(b, a));
    }
  }
}

TEST(NocConfig, NonSquareMesh) {
  NocConfig cfg;
  cfg.width = 8;
  cfg.height = 2;
  EXPECT_EQ(cfg.node_count(), 16);
  EXPECT_EQ(cfg.memory_interface_nodes(),
            (std::vector<int>{0, 7, 8, 15}));
}

}  // namespace
}  // namespace nocw::noc
