#include <gtest/gtest.h>

#include "noc/network.hpp"
#include "noc/router.hpp"
#include "noc/traffic.hpp"

namespace nocw::noc {
namespace {

TEST(Routing, YxResolvesYFirst)
{
  NocConfig cfg;
  cfg.routing = Routing::YX;
  Router r(5, cfg);  // node (1,1)
  // dst (3,3)=15: YX goes South first (XY would go East).
  EXPECT_EQ(r.route(15), kSouth);
  EXPECT_EQ(r.route(6), kEast);   // same row: X move
  EXPECT_EQ(r.route(13), kSouth);
  EXPECT_EQ(r.route(5), kLocal);
}

TEST(Routing, XyAndYxDeliverSameTraffic) {
  for (Routing routing : {Routing::XY, Routing::YX}) {
    NocConfig cfg;
    cfg.routing = routing;
    Network net(cfg);
    const auto ps = uniform_random_traffic(cfg, 400, 4, 2024);
    net.add_packets(ps);
    net.run_until_drained(1000000);
    EXPECT_EQ(net.stats().flits_ejected, total_flits(ps));
  }
}

TEST(Routing, HopCountsIdenticalAcrossOrders) {
  // Both orders route minimal paths: total link traversals must match.
  auto links = [](Routing routing) {
    NocConfig cfg;
    cfg.routing = routing;
    Network net(cfg);
    net.add_packets(uniform_random_traffic(cfg, 300, 2, 7));
    net.run_until_drained(1000000);
    return net.stats().link_traversals;
  };
  EXPECT_EQ(links(Routing::XY), links(Routing::YX));
}

TEST(Routing, OrdersDifferOnContendedPaths) {
  // Column-heavy traffic: XY funnels it through different links than YX, so
  // drain times generally differ while delivery is identical.
  auto cycles = [](Routing routing) {
    NocConfig cfg;
    cfg.routing = routing;
    Network net(cfg);
    // Many flows crossing both dimensions.
    for (int s : {0, 1, 4, 5}) {
      net.add_packets(stream_flow(s, 15 - s, 500, 16));
    }
    return net.run_until_drained(1000000);
  };
  const auto xy = cycles(Routing::XY);
  const auto yx = cycles(Routing::YX);
  EXPECT_GT(xy, 0u);
  EXPECT_GT(yx, 0u);
  // No assertion on which wins — only that both complete; the ablation
  // bench reports the actual numbers.
}

}  // namespace
}  // namespace nocw::noc
