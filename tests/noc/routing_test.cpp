#include <gtest/gtest.h>

#include "noc/network.hpp"
#include "noc/router.hpp"
#include "noc/routing.hpp"
#include "noc/traffic.hpp"
#include "util/check.hpp"

namespace nocw::noc {
namespace {

TEST(Routing, YxResolvesYFirst)
{
  NocConfig cfg;
  cfg.routing = Routing::YX;
  Router r(5, cfg);  // node (1,1)
  // dst (3,3)=15: YX goes South first (XY would go East).
  EXPECT_EQ(r.route(15), kSouth);
  EXPECT_EQ(r.route(6), kEast);   // same row: X move
  EXPECT_EQ(r.route(13), kSouth);
  EXPECT_EQ(r.route(5), kLocal);
}

TEST(Routing, XyAndYxDeliverSameTraffic) {
  for (Routing routing : {Routing::XY, Routing::YX}) {
    NocConfig cfg;
    cfg.routing = routing;
    Network net(cfg);
    const auto ps = uniform_random_traffic(cfg, 400, 4, 2024);
    net.add_packets(ps);
    net.run_until_drained(1000000);
    EXPECT_EQ(net.stats().flits_ejected, total_flits(ps));
  }
}

TEST(Routing, HopCountsIdenticalAcrossOrders) {
  // Both orders route minimal paths: total link traversals must match.
  auto links = [](Routing routing) {
    NocConfig cfg;
    cfg.routing = routing;
    Network net(cfg);
    net.add_packets(uniform_random_traffic(cfg, 300, 2, 7));
    net.run_until_drained(1000000);
    return net.stats().link_traversals;
  };
  EXPECT_EQ(links(Routing::XY), links(Routing::YX));
}

TEST(Routing, OrdersDifferOnContendedPaths) {
  // Column-heavy traffic: XY funnels it through different links than YX, so
  // drain times generally differ while delivery is identical.
  auto cycles = [](Routing routing) {
    NocConfig cfg;
    cfg.routing = routing;
    Network net(cfg);
    // Many flows crossing both dimensions.
    for (int s : {0, 1, 4, 5}) {
      net.add_packets(stream_flow(s, 15 - s, 500, 16));
    }
    return net.run_until_drained(1000000);
  };
  const auto xy = cycles(Routing::XY);
  const auto yx = cycles(Routing::YX);
  EXPECT_GT(xy, 0u);
  EXPECT_GT(yx, 0u);
  // No assertion on which wins — only that both complete; the ablation
  // bench reports the actual numbers.
}

// --- RouteTable (fault-aware west-first, DESIGN.md §13) -------------------

/// Neighbor of `node` through output `port`, or -1 off-mesh.
int neighbor_of(const NocConfig& cfg, int node, int port) {
  int x = cfg.node_x(node);
  int y = cfg.node_y(node);
  switch (port) {
    case kNorth: y -= 1; break;
    case kSouth: y += 1; break;
    case kEast: x += 1; break;
    case kWest: x -= 1; break;
    default: return -1;
  }
  if (x < 0 || x >= cfg.width || y < 0 || y >= cfg.height) return -1;
  return cfg.node_id(x, y);
}

TEST(RouteTable, ZeroFaultTableMatchesXyDor) {
  // The adaptive mode's free-insurance property: with nothing broken the
  // west-first table must equal XY DOR entry for entry — that is what makes
  // no-fault adaptive runs bit-identical to the baseline.
  NocConfig cfg;
  const RouteTable t(cfg, RouteMode::WestFirst);
  for (int node = 0; node < cfg.node_count(); ++node) {
    for (int dst = 0; dst < cfg.node_count(); ++dst) {
      ASSERT_EQ(t.next_hop(node, dst), dor_next_hop(cfg, node, dst))
          << "node " << node << " dst " << dst;
    }
  }
}

TEST(RouteTable, WestFirstRequiresXyRouting) {
  NocConfig cfg;
  cfg.routing = Routing::YX;
  EXPECT_THROW(RouteTable(cfg, RouteMode::WestFirst), CheckError);
}

TEST(RouteTable, ReroutesAroundDownRouterWestFirst) {
  // Kill the center router (1,1)=5. Every pair the turn model CAN serve
  // must get a route that never enters the dead router and keeps all
  // westward hops as a path prefix (the deadlock-freedom argument). The
  // pairs it cannot serve are exactly the theory's prediction: a source
  // east of the dead router in its row must start its westward chain
  // through it, so destinations at or west of the dead column are lost
  // (N→W and S→W are forbidden — no way back west after a detour).
  NocConfig cfg;
  RouteTable t(cfg, RouteMode::WestFirst);
  HealthMap h(cfg.node_count());
  EXPECT_TRUE(h.mark_router_down(5));
  EXPECT_FALSE(h.mark_router_down(5));  // idempotent
  t.rebuild(h);
  int detours = 0;
  for (int src = 0; src < cfg.node_count(); ++src) {
    for (int dst = 0; dst < cfg.node_count(); ++dst) {
      if (src == 5 || dst == 5 || src == dst) continue;
      const bool blocked_west_chain = cfg.node_y(src) == cfg.node_y(5) &&
                                      cfg.node_x(src) > cfg.node_x(5) &&
                                      cfg.node_x(dst) <= cfg.node_x(5);
      ASSERT_EQ(t.reachable(src, dst), !blocked_west_chain)
          << src << "->" << dst;
      if (!t.reachable(src, dst)) continue;
      int node = src;
      bool left_west = false;
      int hops = 0;
      while (node != dst) {
        const int port = t.next_hop(node, dst);
        ASSERT_NE(port, RouteTable::kUnreachable) << src << "->" << dst;
        ASSERT_NE(port, kLocal) << src << "->" << dst;
        if (port == kWest) {
          ASSERT_FALSE(left_west)
              << "forbidden turn into West on " << src << "->" << dst;
        } else {
          left_west = true;
        }
        node = neighbor_of(cfg, node, port);
        ASSERT_NE(node, -1);
        ASSERT_NE(node, 5) << "route through dead router " << src << "->"
                           << dst;
        ASSERT_LT(++hops, 2 * cfg.node_count()) << "routing loop";
      }
      if (hops > cfg.hops(src, dst)) ++detours;
    }
  }
  EXPECT_GT(detours, 0);  // some survivors really had to route non-minimally
}

TEST(RouteTable, DeadDestinationIsUnreachable) {
  NocConfig cfg;
  RouteTable t(cfg, RouteMode::WestFirst);
  HealthMap h(cfg.node_count());
  h.mark_router_down(5);
  t.rebuild(h);
  for (int src = 0; src < cfg.node_count(); ++src) {
    if (src == 5) continue;
    EXPECT_EQ(t.next_hop(src, 5), RouteTable::kUnreachable) << src;
    EXPECT_FALSE(t.reachable(src, 5)) << src;
  }
  EXPECT_TRUE(t.reachable(5, 5));  // self-delivery never enters the mesh
}

TEST(RouteTable, DeadLinkForcesDetourOverLiveLinks) {
  // Down one eastbound link on the direct row path; routes must detour and
  // never traverse the dead link.
  NocConfig cfg;
  RouteTable t(cfg, RouteMode::WestFirst);
  HealthMap h(cfg.node_count());
  EXPECT_TRUE(h.mark_link_down(1, kEast));  // (1,0) -> (2,0)
  t.rebuild(h);
  int node = 0;
  int hops = 0;
  while (node != 3) {
    const int port = t.next_hop(node, 3);
    ASSERT_NE(port, RouteTable::kUnreachable);
    ASSERT_FALSE(node == 1 && port == kEast) << "routed over the dead link";
    node = neighbor_of(cfg, node, port);
    ASSERT_NE(node, -1);
    ASSERT_LT(++hops, 3 * cfg.node_count());
  }
  EXPECT_GT(hops, 3);  // the detour is non-minimal
}

TEST(Routing, ZeroFaultAdaptiveBitIdenticalToDor) {
  // Network-level version of the free-insurance property: the same traffic
  // under table-driven west-first routing produces bit-identical stats to
  // the DOR baseline, and every resilience counter stays pinned at zero.
  auto run = [](RouteMode mode) {
    NocConfig cfg;
    cfg.resilience.route_mode = mode;
    Network net(cfg);
    net.add_packets(uniform_random_traffic(cfg, 500, 4, 31337));
    net.run_until_drained(1000000);
    net.check_invariants();
    return net.stats();
  };
  const NocStats dor = run(RouteMode::Dor);
  const NocStats wf = run(RouteMode::WestFirst);
  EXPECT_EQ(dor.cycles, wf.cycles);
  EXPECT_EQ(dor.flits_injected, wf.flits_injected);
  EXPECT_EQ(dor.flits_ejected, wf.flits_ejected);
  EXPECT_EQ(dor.link_traversals, wf.link_traversals);
  EXPECT_EQ(dor.router_traversals, wf.router_traversals);
  EXPECT_EQ(dor.buffer_writes, wf.buffer_writes);
  EXPECT_EQ(dor.buffer_reads, wf.buffer_reads);
  EXPECT_EQ(dor.packet_latency.mean(), wf.packet_latency.mean());
  EXPECT_EQ(wf.route_rebuilds, 0u);
  EXPECT_EQ(wf.links_quarantined, 0u);
  EXPECT_EQ(wf.routers_quarantined, 0u);
  EXPECT_EQ(wf.flits_flushed.value(), 0u);
  EXPECT_EQ(wf.packets_rerouted, 0u);
  EXPECT_EQ(wf.packets_undeliverable, 0u);
}

TEST(Routing, AdaptiveDeliversAroundKnownDeadRouter) {
  // One permanent router outage, pre-marked at construction: traffic among
  // the survivors drains normally, with the outage visible in the counters.
  NocConfig cfg;
  cfg.fault.permanent_router_outages = 1;
  cfg.fault.seed = 42;
  cfg.resilience.route_mode = RouteMode::WestFirst;
  const FaultModel fm(cfg.fault, cfg.node_count(), cfg.width);
  ASSERT_EQ(fm.dead_routers().size(), 1u);
  const int dead = fm.dead_routers()[0];

  // Mirror the network's route table to pick survivor pairs the turn model
  // can actually serve (a dead transit router genuinely disconnects some
  // west-chains — see ReroutesAroundDownRouterWestFirst).
  RouteTable table(cfg, RouteMode::WestFirst);
  HealthMap health(cfg.node_count());
  health.mark_router_down(dead);
  table.rebuild(health);

  Network net(cfg);
  std::vector<PacketDescriptor> ps;
  for (int src = 0; src < cfg.node_count(); ++src) {
    for (int dst = 0; dst < cfg.node_count(); ++dst) {
      if (src == dst || src == dead || dst == dead) continue;
      if (!table.reachable(src, dst)) continue;
      const auto flow = stream_flow(src, dst, 8, 4);
      ps.insert(ps.end(), flow.begin(), flow.end());
    }
  }
  net.add_packets(ps);
  net.run_until_drained(1000000);
  const NocStats& st = net.stats();
  EXPECT_EQ(st.flits_ejected, total_flits(ps));
  EXPECT_EQ(st.routers_quarantined, 1u);
  EXPECT_EQ(st.route_rebuilds, 1u);
  EXPECT_EQ(st.packets_undeliverable, 0u);
  net.check_invariants();
}

TEST(Routing, PacketsToDeadRouterAreCountedUndeliverable) {
  NocConfig cfg;
  cfg.fault.permanent_router_outages = 1;
  cfg.fault.seed = 42;
  cfg.resilience.route_mode = RouteMode::WestFirst;
  const FaultModel fm(cfg.fault, cfg.node_count(), cfg.width);
  const int dead = fm.dead_routers()[0];
  const int live_src = dead == 0 ? 1 : 0;
  const int live_dst = dead == 15 ? 14 : 15;

  Network net(cfg);
  const auto doomed = stream_flow(live_src, dead, 40, 4);  // 10 packets
  const auto fine = stream_flow(live_src, live_dst, 40, 4);
  net.add_packets(doomed);
  net.add_packets(fine);
  net.run_until_drained(1000000);
  const NocStats& st = net.stats();
  EXPECT_EQ(st.packets_undeliverable, doomed.size());
  EXPECT_EQ(st.flits_ejected, total_flits(fine));
  net.check_invariants();
}

}  // namespace
}  // namespace nocw::noc
