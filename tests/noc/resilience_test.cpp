// Online fault escalation and recovery (DESIGN.md §13): stall watchdogs and
// CRC-exhaustion suspicion quarantine broken links/routers mid-run, the
// network flushes and reroutes, and every recovery action is visible in
// typed counters that reconcile with flit conservation. Retransmission under
// permanent outage must terminate — capped backoff, finite retry budget, and
// a typed error instead of a silent hang when the caller opts in.
#include <gtest/gtest.h>

#include <vector>

#include "noc/fault.hpp"
#include "noc/network.hpp"
#include "noc/routing.hpp"
#include "noc/traffic.hpp"
#include "util/check.hpp"

namespace nocw::noc {
namespace {

/// Escalation-ready config: adaptive routing with online discovery only
/// (no outage pre-marking), short watchdog so tests finish fast.
NocConfig escalation_cfg() {
  NocConfig cfg;
  cfg.resilience.route_mode = RouteMode::WestFirst;
  cfg.resilience.assume_known_outages = false;
  cfg.resilience.escalate = true;
  cfg.resilience.stall_threshold_cycles = 64;
  return cfg;
}

TEST(Resilience, EscalationRequiresAdaptiveRouting) {
  NocConfig cfg;
  cfg.resilience.escalate = true;  // Dor + escalate: quarantine verdicts
  EXPECT_THROW(Network{cfg}, CheckError);  // would have nowhere to go
}

TEST(Resilience, WatchdogDiscoversDeadLinkAndRecovers) {
  // A permanent link outage the network was NOT told about: wormholes pile
  // up against it, the stall watchdog quarantines it, the network flushes
  // and reroutes, and the run still drains. Conservation must account for
  // every flushed flit.
  NocConfig cfg = escalation_cfg();
  cfg.fault.permanent_link_outages = 1;
  cfg.fault.seed = 11;
  Network net(cfg);
  const auto ps = uniform_random_traffic(cfg, 300, 4, 99);
  net.add_packets(ps);
  net.run_until_drained(2000000);
  const NocStats& st = net.stats();
  EXPECT_GE(st.links_quarantined + st.routers_quarantined, 1u);
  EXPECT_GE(st.route_rebuilds, 1u);
  EXPECT_GT(st.recovery_cycles.value(), 0u);
  // Flit conservation with recovery: whatever was flushed mid-wormhole is
  // accounted, nothing is double-counted, nothing leaks.
  EXPECT_EQ(st.flits_injected, st.flits_ejected + st.flits_flushed);
  net.check_invariants();
}

TEST(Resilience, WatchdogDiscoversDeadRouterAndRecovers) {
  NocConfig cfg = escalation_cfg();
  cfg.fault.permanent_router_outages = 1;
  cfg.fault.seed = 42;
  const FaultModel fm(cfg.fault, cfg.node_count(), cfg.width);
  const int dead = fm.dead_routers()[0];

  Network net(cfg);
  std::vector<PacketDescriptor> ps;
  for (int src = 0; src < cfg.node_count(); ++src) {
    for (int dst = 0; dst < cfg.node_count(); ++dst) {
      if (src == dst || src == dead || dst == dead) continue;
      const auto flow = stream_flow(src, dst, 12, 4);
      ps.insert(ps.end(), flow.begin(), flow.end());
    }
  }
  net.add_packets(ps);
  net.run_until_drained(2000000);
  const NocStats& st = net.stats();
  // The dead router was discovered online (possibly via its links first);
  // after quarantine the survivors' traffic completes.
  EXPECT_GE(st.links_quarantined + st.routers_quarantined, 1u);
  EXPECT_GE(st.route_rebuilds, 1u);
  EXPECT_EQ(st.flits_injected, st.flits_ejected + st.flits_flushed);
  net.check_invariants();
}

TEST(Resilience, CrcExhaustionEscalatesSuspectPath) {
  // Corruption-only fault (stuck link bits): flits flow but fail CRC at the
  // destination until the retry budget runs out. Each exhausted packet
  // charges a strike to every link on its path; the strikes quarantine the
  // path and the rebuilt table routes later packets around it.
  NocConfig cfg = escalation_cfg();
  cfg.fault.permanent_stuck_links = 2;
  cfg.fault.seed = 3;
  cfg.protection.crc = true;
  cfg.protection.max_retries = 2;
  cfg.protection.retry_backoff_cycles = 2;
  cfg.resilience.retry_suspicion_threshold = 2;
  cfg.resilience.stall_threshold_cycles = 100000;  // isolate the CRC path
  Network net(cfg);
  const auto ps = uniform_random_traffic(cfg, 400, 4, 5);
  net.add_packets(ps);
  net.run_until_drained(2000000);
  const NocStats& st = net.stats();
  EXPECT_GT(st.packets_dropped, 0u);  // exhausted packets fed the suspicion
  EXPECT_GE(st.links_quarantined, 1u);
  EXPECT_GE(st.route_rebuilds, 1u);
  EXPECT_EQ(st.packets_delivered + st.packets_dropped +
                st.packets_undeliverable,
            ps.size());
  net.check_invariants();
}

TEST(Resilience, RetryBackoffIsCappedUnderPermanentOutage) {
  // A packet crossing a stuck link fails CRC on every attempt. With 14
  // retries an uncapped exponential backoff would wait
  // 4 << 14 ≈ 65k cycles before the last attempt alone; the
  // kMaxBackoffShift cap keeps the whole chain under ~25k, so the run must
  // finish inside a budget the uncapped schedule could not meet.
  NocConfig cfg;
  cfg.fault.permanent_stuck_links = 10;
  cfg.fault.seed = 3;
  cfg.protection.crc = true;
  cfg.protection.max_retries = 14;
  cfg.protection.retry_backoff_cycles = 4;
  Network net(cfg);
  const auto ps = uniform_random_traffic(cfg, 100, 4, 77);
  net.add_packets(ps);
  const std::uint64_t cycles = net.run_until_drained(60000);
  EXPECT_LT(cycles, 60000u);
  const NocStats& st = net.stats();
  EXPECT_GT(st.packets_dropped, 0u);  // budget exhausted, not hung
  EXPECT_EQ(st.crc_failures, st.retransmissions + st.packets_dropped);
  net.check_invariants();
}

TEST(Resilience, ExhaustedRetriesThrowTypedErrorWhenOptedIn) {
  NocConfig cfg;
  cfg.fault.permanent_stuck_links = 10;
  cfg.fault.seed = 3;
  cfg.protection.crc = true;
  cfg.protection.max_retries = 1;
  cfg.protection.retry_backoff_cycles = 2;
  cfg.protection.fail_on_drop = true;
  Network net(cfg);
  net.add_packets(uniform_random_traffic(cfg, 100, 4, 77));
  try {
    net.run_until_drained(400000);
    FAIL() << "expected PacketLossError";
  } catch (const PacketLossError& e) {
    EXPECT_GE(e.src, 0);
    EXPECT_LT(e.src, cfg.node_count());
    EXPECT_GE(e.dst, 0);
    EXPECT_LT(e.dst, cfg.node_count());
    EXPECT_NE(std::string(e.what()).find("packet lost"), std::string::npos);
  }
}

TEST(Resilience, CountersStayZeroWithoutAdaptiveRouting) {
  // The resilience machinery must be completely inert when off — the
  // check_invariants pin, asserted here end-to-end.
  NocConfig cfg;
  Network net(cfg);
  net.add_packets(uniform_random_traffic(cfg, 200, 4, 1));
  net.run_until_drained(1000000);
  const NocStats& st = net.stats();
  EXPECT_EQ(st.route_rebuilds, 0u);
  EXPECT_EQ(st.links_quarantined, 0u);
  EXPECT_EQ(st.routers_quarantined, 0u);
  EXPECT_EQ(st.flits_flushed.value(), 0u);
  EXPECT_EQ(st.packets_rerouted, 0u);
  EXPECT_EQ(st.packets_undeliverable, 0u);
  EXPECT_EQ(st.recovery_cycles.value(), 0u);
  net.check_invariants();
}

void expect_stats_equal(const NocStats& a, const NocStats& b,
                        const char* context) {
  EXPECT_EQ(a.cycles, b.cycles) << context;
  EXPECT_EQ(a.flits_injected, b.flits_injected) << context;
  EXPECT_EQ(a.flits_ejected, b.flits_ejected) << context;
  EXPECT_EQ(a.flits_flushed, b.flits_flushed) << context;
  EXPECT_EQ(a.link_traversals, b.link_traversals) << context;
  EXPECT_EQ(a.route_rebuilds, b.route_rebuilds) << context;
  EXPECT_EQ(a.links_quarantined, b.links_quarantined) << context;
  EXPECT_EQ(a.routers_quarantined, b.routers_quarantined) << context;
  EXPECT_EQ(a.packets_rerouted, b.packets_rerouted) << context;
  EXPECT_EQ(a.packets_undeliverable, b.packets_undeliverable) << context;
  EXPECT_EQ(a.recovery_cycles, b.recovery_cycles) << context;
  EXPECT_EQ(a.packets_dropped, b.packets_dropped) << context;
  EXPECT_EQ(a.packet_latency.mean(), b.packet_latency.mean()) << context;
}

NocStats run_escalation(int partition_lanes, EngineMode engine) {
  NocConfig cfg = escalation_cfg();
  cfg.fault.permanent_link_outages = 1;
  cfg.fault.seed = 11;
  cfg.partition_lanes = partition_lanes;
  cfg.engine = engine;
  Network net(cfg);
  net.add_packets(uniform_random_traffic(cfg, 300, 4, 99));
  net.run_until_drained(2000000);
  net.check_invariants();
  return net.stats();
}

TEST(Resilience, EscalationDeterministicAcrossPartitionLanes) {
  // Watchdog verdicts are gathered per partition chunk and committed in one
  // sorted, deduplicated serial pass — the lane count must not be able to
  // change which entities get quarantined or when.
  const NocStats ref = run_escalation(1, EngineMode::Event);
  EXPECT_GE(ref.links_quarantined + ref.routers_quarantined, 1u);
  expect_stats_equal(run_escalation(2, EngineMode::Event), ref, "lanes=2");
  expect_stats_equal(run_escalation(4, EngineMode::Event), ref, "lanes=4");
}

TEST(Resilience, EscalationIdenticalAcrossEngines) {
  expect_stats_equal(run_escalation(1, EngineMode::Dense),
                     run_escalation(1, EngineMode::Event), "dense vs event");
}

TEST(Resilience, DrainTimeoutNamesFaultAndRoutingState) {
  // The triage message must carry the active fault + resilience
  // configuration (which links/routers are down is the first thing a drain
  // timeout investigation needs).
  NocConfig cfg;
  cfg.fault.permanent_router_outages = 1;
  cfg.fault.seed = 42;
  cfg.resilience.route_mode = RouteMode::WestFirst;
  const FaultModel fm(cfg.fault, cfg.node_count(), cfg.width);
  const int dead = fm.dead_routers()[0];
  const int live_src = dead == 0 ? 1 : 0;
  Network net(cfg);
  // An endless-enough stream with a 1-cycle budget forces the timeout.
  net.add_packets(stream_flow(live_src, dead == 15 ? 14 : 15, 4000, 4));
  try {
    net.run_until_drained(1);
    FAIL() << "expected drain timeout";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("did not drain"), std::string::npos) << msg;
    EXPECT_NE(msg.find("dead routers"), std::string::npos) << msg;
    EXPECT_NE(msg.find("routing=west_first"), std::string::npos) << msg;
    EXPECT_NE(msg.find("quarantined_routers=1"), std::string::npos) << msg;
  }
}

}  // namespace
}  // namespace nocw::noc
