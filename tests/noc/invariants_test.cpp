// Flit/packet conservation and structural invariants under random traffic.
//
// These tests exercise the contract layer the energy model depends on: if
// the cycle engine ever leaks or duplicates a flit, every back-annotated
// Fig. 2 / Fig. 10 number downstream is wrong.
#include <gtest/gtest.h>

#include "noc/network.hpp"
#include "noc/stats.hpp"
#include "noc/traffic.hpp"
#include "util/check.hpp"
#include "util/units.hpp"

namespace nocw::noc {
namespace {

TEST(NocInvariants, HoldEveryCycleUnderRandomTraffic) {
  NocConfig cfg;
  cfg.width = 4;
  cfg.height = 4;
  cfg.virtual_channels = 2;
  Network net(cfg);
  net.add_packets(uniform_random_traffic(cfg, 200, 8, /*seed=*/42));

  // Check at every cycle boundary while traffic is in flight, not just
  // after drain: conservation must hold with flits buffered mid-route.
  // run_cycles(1) = one committed cycle plus the engine's own self-check.
  std::uint64_t guard = 0;
  while (!net.drained()) {
    ASSERT_NO_THROW(net.run_cycles(1));
    ASSERT_LT(++guard, 100000u) << "network did not drain";
  }
  EXPECT_EQ(net.stats().flits_injected, net.stats().flits_ejected);
  EXPECT_EQ(net.stats().packets_injected, net.stats().packets_ejected);
}

TEST(NocInvariants, ConservationAfterDrainAcrossConfigs) {
  for (const int vcs : {1, 2, 4}) {
    NocConfig cfg;
    cfg.width = 3;
    cfg.height = 5;
    cfg.buffer_depth = 2;
    cfg.virtual_channels = vcs;
    Network net(cfg);
    net.add_packets(uniform_random_traffic(cfg, 300, 5, /*seed=*/7 + vcs));
    net.run_until_drained(1000000);
    net.check_invariants();
    EXPECT_EQ(net.stats().flits_injected, net.stats().flits_ejected);
    EXPECT_EQ(net.stats().flits_injected.value(), 300u * 5u);
    EXPECT_EQ(net.stats().packet_latency.count(),
              net.stats().packets_ejected);
  }
}

TEST(NocInvariants, RouterChecksPassOnFreshAndDrainedRouters) {
  NocConfig cfg;
  Network net(cfg);
  for (int id = 0; id < cfg.node_count(); ++id) {
    EXPECT_NO_THROW(net.router(id).check_invariants());
  }
  net.add_packets(uniform_random_traffic(cfg, 50, 4, /*seed=*/3));
  net.run_until_drained(100000);
  for (int id = 0; id < cfg.node_count(); ++id) {
    EXPECT_NO_THROW(net.router(id).check_invariants());
  }
}

TEST(NocInvariants, DetectSeededCounterDrift) {
  // The checks must actually fire: corrupt one counter the way a silent
  // stats bug would and confirm the violation is caught.
  NocConfig cfg;
  Network net(cfg);
  net.add_packets(uniform_random_traffic(cfg, 20, 4, /*seed=*/11));
  net.run_until_drained(100000);
  net.stats().flits_ejected -= units::Flits{1};
  EXPECT_THROW(net.check_invariants(), CheckError);
}

TEST(NocStatsTest, ResetClearsAllCountersIncludingLatency) {
  NocConfig cfg;
  Network net(cfg);
  net.add_packets(uniform_random_traffic(cfg, 30, 4, /*seed=*/5));
  net.run_until_drained(100000);
  NocStats& st = net.stats();
  ASSERT_GT(st.flits_injected.value(), 0u);
  ASSERT_GT(st.packet_latency.count(), 0u);

  st.reset();
  EXPECT_EQ(st.cycles.value(), 0u);
  EXPECT_EQ(st.flits_injected.value(), 0u);
  EXPECT_EQ(st.flits_ejected.value(), 0u);
  EXPECT_EQ(st.packets_injected, 0u);
  EXPECT_EQ(st.packets_ejected, 0u);
  EXPECT_EQ(st.router_traversals, 0u);
  EXPECT_EQ(st.link_traversals, 0u);
  EXPECT_EQ(st.buffer_writes, 0u);
  EXPECT_EQ(st.buffer_reads, 0u);
  EXPECT_EQ(st.packet_latency.count(), 0u);
  EXPECT_DOUBLE_EQ(st.packet_latency.sum(), 0.0);
}

}  // namespace
}  // namespace nocw::noc
