#include "noc/network.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "noc/traffic.hpp"

namespace nocw::noc {
namespace {

TEST(Network, SingleFlitMinimalLatency) {
  Network net{NocConfig{}};
  PacketDescriptor p;
  p.src = 0;
  p.dst = 3;  // 3 hops east
  p.size_flits = 1;
  net.add_packet(p);
  net.run_until_drained(100);
  EXPECT_EQ(net.stats().flits_ejected.value(), 1u);
  EXPECT_EQ(net.stats().packets_ejected, 1u);
  // Injection (1) + 3 inter-router hops + ejection: latency is hops-bound.
  EXPECT_GE(net.stats().packet_latency.mean(), 4.0);
  EXPECT_LE(net.stats().packet_latency.mean(), 8.0);
}

TEST(Network, AllFlitsDelivered) {
  Network net{NocConfig{}};
  const auto ps = uniform_random_traffic(net.config(), 200, 4, 99);
  net.add_packets(ps);
  net.run_until_drained(100000);
  EXPECT_EQ(net.stats().flits_injected, total_flits(ps));
  EXPECT_EQ(net.stats().flits_ejected, total_flits(ps));
  EXPECT_EQ(net.stats().packets_ejected, ps.size());
}

TEST(Network, SelfTrafficDelivered) {
  Network net{NocConfig{}};
  PacketDescriptor p;
  p.src = 5;
  p.dst = 5;
  p.size_flits = 3;
  net.add_packet(p);
  net.run_until_drained(100);
  EXPECT_EQ(net.stats().flits_ejected.value(), 3u);
  EXPECT_EQ(net.stats().link_traversals, 0u);  // never leaves the router
}

TEST(Network, PacketArrivesInOrder) {
  Network net{NocConfig{}};
  PacketDescriptor p;
  p.src = 12;
  p.dst = 3;
  p.size_flits = 16;
  net.add_packet(p);
  std::vector<FlitType> seen;
  net.set_eject_hook([&](const Flit& f, std::uint64_t) {
    seen.push_back(f.type);
  });
  net.run_until_drained(1000);
  ASSERT_EQ(seen.size(), 16u);
  EXPECT_EQ(seen.front(), FlitType::Head);
  EXPECT_EQ(seen.back(), FlitType::Tail);
  for (std::size_t i = 1; i + 1 < seen.size(); ++i) {
    EXPECT_EQ(seen[i], FlitType::Body);
  }
}

TEST(Network, WormholeNeverInterleavesPacketsOnEjection) {
  Network net{NocConfig{}};
  // Many multi-flit packets converging on one destination.
  for (int src : {0, 3, 12, 15, 5, 10}) {
    for (int k = 0; k < 5; ++k) {
      PacketDescriptor p;
      p.src = static_cast<std::uint16_t>(src);
      p.dst = 6;
      p.size_flits = 7;
      net.add_packet(p);
    }
  }
  std::uint32_t open_packet = 0;
  bool violated = false;
  net.set_eject_hook([&](const Flit& f, std::uint64_t) {
    if (f.type == FlitType::Head) {
      if (open_packet != 0) violated = true;
      open_packet = f.packet_id;
    } else if (f.type == FlitType::Body || f.type == FlitType::Tail) {
      if (open_packet != f.packet_id) violated = true;
      if (f.type == FlitType::Tail) open_packet = 0;
    }
  });
  net.run_until_drained(100000);
  EXPECT_FALSE(violated);
  EXPECT_EQ(net.stats().packets_ejected, 30u);
}

TEST(Network, LinkTraversalsMatchManhattanHops) {
  Network net{NocConfig{}};
  PacketDescriptor p;
  p.src = 0;
  p.dst = 15;  // 6 hops
  p.size_flits = 4;
  net.add_packet(p);
  net.run_until_drained(1000);
  EXPECT_EQ(net.stats().link_traversals, 4u * 6);
  // Router traversals = (hops + 1 ejection) per flit.
  EXPECT_EQ(net.stats().router_traversals, 4u * 7);
}

TEST(Network, ReleaseCycleDelaysInjection) {
  Network net{NocConfig{}};
  PacketDescriptor p;
  p.src = 0;
  p.dst = 1;
  p.size_flits = 1;
  p.release_cycle = 50;
  net.add_packet(p);
  net.run_cycles(40);
  EXPECT_EQ(net.stats().flits_injected.value(), 0u);
  net.run_until_drained(100);
  EXPECT_EQ(net.stats().flits_ejected.value(), 1u);
}

TEST(Network, ThroughputBoundedByInjectionPort) {
  // One source streaming to one sink: at most 1 flit/cycle end to end.
  Network net{NocConfig{}};
  const auto ps = stream_flow(0, 15, 2000, 32);
  net.add_packets(ps);
  net.run_until_drained(10000);
  EXPECT_GT(net.stats().throughput().value(), 0.8);
  EXPECT_LE(net.stats().throughput().value(), 1.0);
}

TEST(Network, ParallelDisjointFlowsScaleThroughput) {
  // Two row-disjoint streams double the delivered throughput.
  Network net{NocConfig{}};
  net.add_packets(stream_flow(0, 3, 2000, 32));
  net.add_packets(stream_flow(12, 15, 2000, 32));
  net.run_until_drained(10000);
  EXPECT_GT(net.stats().throughput().value(), 1.6);
}

TEST(Network, SharedLinkHalvesPerFlowThroughput) {
  // Two streams contending for the same column links: total stays ~1.
  Network net{NocConfig{}};
  net.add_packets(stream_flow(1, 13, 1500, 32));
  net.add_packets(stream_flow(1, 9, 1500, 32));
  const std::uint64_t cycles = net.run_until_drained(20000);
  // 3000 flits through a single injection port: at least 3000 cycles.
  EXPECT_GE(cycles, 3000u);
  EXPECT_LE(net.stats().throughput().value(), 1.05);
}

TEST(Network, DrainGuardThrows) {
  Network net{NocConfig{}};
  net.add_packets(stream_flow(0, 15, 1000, 32));
  EXPECT_THROW(net.run_until_drained(10), std::runtime_error);
}

TEST(Network, InvalidPacketsRejected) {
  Network net{NocConfig{}};
  PacketDescriptor p;
  p.src = 99;
  p.dst = 0;
  p.size_flits = 1;
  EXPECT_THROW(net.add_packet(p), std::invalid_argument);
  p.src = 0;
  p.size_flits = 0;
  EXPECT_THROW(net.add_packet(p), std::invalid_argument);
}

TEST(Network, DeterministicAcrossRuns) {
  auto run = [] {
    Network net{NocConfig{}};
    net.add_packets(uniform_random_traffic(net.config(), 300, 6, 7));
    net.run_until_drained(1000000);
    return net.stats();
  };
  const NocStats a = run();
  const NocStats b = run();
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.link_traversals, b.link_traversals);
  EXPECT_DOUBLE_EQ(a.packet_latency.mean(), b.packet_latency.mean());
}

TEST(Network, HotspotSlowerThanUniform) {
  // All-to-one traffic must take longer than the same volume spread
  // uniformly (ejection-port serialization).
  NocConfig cfg;
  Network hotspot{cfg};
  std::vector<PacketDescriptor> ps;
  for (int src = 0; src < 16; ++src) {
    if (src == 5) continue;
    for (const auto& p : stream_flow(src, 5, 60, 4)) ps.push_back(p);
  }
  hotspot.add_packets(ps);
  const auto hotspot_cycles = hotspot.run_until_drained(1000000);

  Network uniform{cfg};
  uniform.add_packets(
      uniform_random_traffic(cfg, static_cast<int>(ps.size()), 4, 5));
  const auto uniform_cycles = uniform.run_until_drained(1000000);
  EXPECT_GT(hotspot_cycles, uniform_cycles);
}

}  // namespace
}  // namespace nocw::noc
