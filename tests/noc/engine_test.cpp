// Event engine vs dense reference, and partitioned vs serial stepping.
//
// The event engine (O(1) drain tracking, empty-router skip, idle jumps) and
// the mesh partitioning are pure speed levers: every counter, latency
// moment, and time-series point must be bit-identical to the dense serial
// reference, with and without fault injection. These tests are the gate.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "noc/network.hpp"
#include "noc/stats.hpp"
#include "noc/traffic.hpp"
#include "obs/timeseries.hpp"
#include "util/thread_pool.hpp"
#include "util/units.hpp"

namespace nocw::noc {
namespace {

void expect_identical(const NocStats& a, const NocStats& b) {
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.flits_injected, b.flits_injected);
  EXPECT_EQ(a.flits_ejected, b.flits_ejected);
  EXPECT_EQ(a.packets_injected, b.packets_injected);
  EXPECT_EQ(a.packets_ejected, b.packets_ejected);
  EXPECT_EQ(a.router_traversals, b.router_traversals);
  EXPECT_EQ(a.link_traversals, b.link_traversals);
  EXPECT_EQ(a.buffer_writes, b.buffer_writes);
  EXPECT_EQ(a.buffer_reads, b.buffer_reads);
  EXPECT_EQ(a.packet_latency.count(), b.packet_latency.count());
  // Bit-identical, not approximately equal: the engines must visit packets
  // in the same order for the running moments to match exactly.
  EXPECT_EQ(a.packet_latency.sum(), b.packet_latency.sum());
  EXPECT_EQ(a.packet_latency.mean(), b.packet_latency.mean());
  EXPECT_EQ(a.packet_latency.min(), b.packet_latency.min());
  EXPECT_EQ(a.packet_latency.max(), b.packet_latency.max());
  EXPECT_EQ(a.payload_bit_flips, b.payload_bit_flips);
  EXPECT_EQ(a.link_fault_cycles, b.link_fault_cycles);
  EXPECT_EQ(a.router_stall_cycles, b.router_stall_cycles);
  EXPECT_EQ(a.crc_flits_injected, b.crc_flits_injected);
  EXPECT_EQ(a.crc_flit_events, b.crc_flit_events);
  EXPECT_EQ(a.crc_failures, b.crc_failures);
  EXPECT_EQ(a.packets_delivered, b.packets_delivered);
  EXPECT_EQ(a.retransmissions, b.retransmissions);
  EXPECT_EQ(a.packets_dropped, b.packets_dropped);
}

NocStats run_config(NocConfig cfg, EngineMode engine, int lanes,
                    std::uint64_t seed) {
  cfg.engine = engine;
  cfg.partition_lanes = lanes;
  Network net(cfg);
  net.add_packets(uniform_random_traffic(cfg, 300, 6, seed));
  net.run_until_drained(1000000);
  return net.stats();
}

TEST(NocEngine, EventMatchesDenseOnRandomTraffic) {
  for (const std::uint64_t seed : {11u, 22u, 33u}) {
    NocConfig cfg;
    cfg.virtual_channels = 2;
    const NocStats dense = run_config(cfg, EngineMode::Dense, 1, seed);
    const NocStats event = run_config(cfg, EngineMode::Event, 1, seed);
    expect_identical(dense, event);
  }
}

TEST(NocEngine, EventMatchesDenseUnderFaultsAndCrc) {
  NocConfig cfg;
  cfg.fault.bit_flip_probability = 2e-4;
  cfg.fault.link_fault_probability = 1e-4;
  cfg.fault.router_stall_probability = 1e-4;
  cfg.fault.seed = 99;
  cfg.protection.crc = true;
  const NocStats dense = run_config(cfg, EngineMode::Dense, 1, 5);
  const NocStats event = run_config(cfg, EngineMode::Event, 1, 5);
  // The traffic must actually exercise the recovery machinery for this
  // comparison to mean anything.
  EXPECT_GT(dense.crc_failures, 0u);
  EXPECT_GT(dense.retransmissions, 0u);
  expect_identical(dense, event);
}

TEST(NocEngine, PartitionedMatchesSerialAcrossThreadCounts) {
  NocConfig cfg;
  cfg.virtual_channels = 2;
  const NocStats serial = run_config(cfg, EngineMode::Event, 1, 77);
  const unsigned before = global_thread_count();
  for (const unsigned threads : {1u, 2u, 8u}) {
    set_global_threads(threads);
    // Forced 4-way partition: chunk boundaries are fixed by the lane count,
    // so results must not depend on how many pool threads execute them.
    const NocStats part = run_config(cfg, EngineMode::Event, 4, 77);
    expect_identical(serial, part);
    const NocStats dense_part = run_config(cfg, EngineMode::Dense, 4, 77);
    expect_identical(serial, dense_part);
  }
  set_global_threads(before);
}

TEST(NocEngine, PartitionedMatchesSerialUnderFaults) {
  NocConfig cfg;
  cfg.fault.bit_flip_probability = 2e-4;
  cfg.fault.router_stall_probability = 1e-4;
  cfg.fault.seed = 31;
  cfg.protection.crc = true;
  const NocStats serial = run_config(cfg, EngineMode::Event, 1, 13);
  const unsigned before = global_thread_count();
  set_global_threads(4);
  const NocStats part = run_config(cfg, EngineMode::Event, 4, 13);
  set_global_threads(before);
  EXPECT_GT(serial.crc_failures, 0u);
  expect_identical(serial, part);
}

TEST(NocEngine, TimeSeriesIdenticalAcrossEngines) {
  const auto run_series = [](EngineMode engine) {
    NocConfig cfg;
    cfg.engine = engine;
    Network net(cfg);
    obs::TimeSeriesSet series;
    net.set_series_sink(&series, 32);
    net.add_packets(uniform_random_traffic(cfg, 120, 6, /*seed=*/4));
    // A release gap forces the event engine through its idle-jump path
    // while the sink is attached: boundary samples must still fire.
    net.add_packets(stream_flow(0, 15, 60, 6, /*release_cycle=*/5000));
    net.run_until_drained(1000000);
    return series.to_json();
  };
  EXPECT_EQ(run_series(EngineMode::Dense), run_series(EngineMode::Event));
}

TEST(NocEngine, IdleJumpSkipsReleaseGapsWithIdenticalStats) {
  const auto run_gap = [](EngineMode engine) {
    NocConfig cfg;
    cfg.engine = engine;
    Network net(cfg);
    // Three bursts separated by ~100k idle cycles each.
    net.add_packets(stream_flow(0, 15, 80, 8, /*release_cycle=*/0));
    net.add_packets(stream_flow(5, 10, 80, 8, /*release_cycle=*/100000));
    net.add_packets(stream_flow(12, 3, 80, 8, /*release_cycle=*/200000));
    net.run_until_drained(1000000);
    return net;
  };
  const Network dense = run_gap(EngineMode::Dense);
  const Network event = run_gap(EngineMode::Event);
  expect_identical(dense.stats(), event.stats());
  EXPECT_EQ(dense.idle_cycles_skipped(), 0u);
  // ~200k of the run is idle gap; nearly all of it must be jumped, not
  // stepped (the whole point of the event engine).
  EXPECT_GT(event.idle_cycles_skipped(), 190000u);
}

TEST(NocEngine, EnvOverrideSelectsEngine) {
  EXPECT_EQ(engine_from_env(EngineMode::Event), EngineMode::Event);
  EXPECT_EQ(engine_from_env(EngineMode::Dense), EngineMode::Dense);
}

TEST(NocEngine, DrainTimeoutNamesOffendingPacket) {
  for (const EngineMode engine : {EngineMode::Dense, EngineMode::Event}) {
    NocConfig cfg;
    cfg.engine = engine;
    Network net(cfg);
    net.add_packets(stream_flow(0, 15, 64, 8, /*release_cycle=*/0,
                                /*tag=*/42));
    try {
      net.run_until_drained(3);
      FAIL() << "expected drain-timeout throw";
    } catch (const std::runtime_error& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("cycle budget"), std::string::npos) << msg;
      EXPECT_NE(msg.find("src 0"), std::string::npos) << msg;
      EXPECT_NE(msg.find("dst 15"), std::string::npos) << msg;
      EXPECT_NE(msg.find("tag 42"), std::string::npos) << msg;
    }
  }
}

TEST(NocEngine, PhaseTrafficMatchesPerMiShareCompilation) {
  NocConfig cfg;
  const auto mis = cfg.memory_interface_nodes();
  const auto pes = cfg.pe_nodes();
  const std::uint64_t scatter = 1000;
  const std::uint64_t gather = 300;
  std::vector<PacketDescriptor> manual;
  const auto append = [&](std::vector<PacketDescriptor>&& ps) {
    manual.insert(manual.end(), ps.begin(), ps.end());
  };
  const std::uint64_t s_share = (scatter + mis.size() - 1) / mis.size();
  std::uint64_t left = scatter;
  for (std::size_t m = 0; m < mis.size() && left > 0; ++m) {
    const std::uint64_t vol = std::min(s_share, left);
    append(scatter_flow(mis[m], pes, vol, 32, 0, 7));
    left -= vol;
  }
  const std::uint64_t g_share = (gather + mis.size() - 1) / mis.size();
  left = gather;
  for (std::size_t m = 0; m < mis.size() && left > 0; ++m) {
    const std::uint64_t vol = std::min(g_share, left);
    append(gather_flow(pes, mis[m], vol, 32, 0, 7));
    left -= vol;
  }
  const auto phase = phase_traffic(cfg, units::Flits{scatter},
                                  units::Flits{gather}, 32, /*tag=*/7);
  ASSERT_EQ(phase.size(), manual.size());
  EXPECT_EQ(total_flits(phase).value(), scatter + gather);
  for (std::size_t i = 0; i < phase.size(); ++i) {
    EXPECT_EQ(phase[i].src, manual[i].src);
    EXPECT_EQ(phase[i].dst, manual[i].dst);
    EXPECT_EQ(phase[i].size_flits, manual[i].size_flits);
    EXPECT_EQ(phase[i].release_cycle, manual[i].release_cycle);
    EXPECT_EQ(phase[i].tag, manual[i].tag);
  }
}

}  // namespace
}  // namespace nocw::noc
