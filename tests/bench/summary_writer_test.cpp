// bench::write_summary promises: the aggregated summary is keyed by tool
// (so repeated registration can never duplicate a key — last writer wins),
// a second write_summary for one tool inside one process warns and is
// counted instead of passing silently, and NOCW_REGRESS_STRICT=1 promotes
// that warning to a hard CheckError.
#include "bench_util.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "util/check.hpp"

namespace nocw::bench {
namespace {

class SummaryWriter : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "summary_writer";
    summary_ = dir_ + "/results/BENCH_summary.json";
    // Pin the summary path: the environment outside the test must not
    // redirect where write_summary lands.
    ASSERT_EQ(::setenv("NOCW_SUMMARY_JSON", summary_.c_str(), 1), 0);
  }
  void TearDown() override {
    ::unsetenv("NOCW_SUMMARY_JSON");
    ::unsetenv("NOCW_REGRESS_STRICT");
  }

  std::string read_summary_file() const {
    std::ifstream in(summary_);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
  }

  static std::size_t count_occurrences(const std::string& text,
                                       const std::string& needle) {
    std::size_t n = 0;
    for (std::size_t pos = text.find(needle); pos != std::string::npos;
         pos = text.find(needle, pos + needle.size())) {
      ++n;
    }
    return n;
  }

  std::string dir_;
  std::string summary_;
};

TEST_F(SummaryWriter, RepeatedWriteForOneToolWarnsAndKeepsLatest) {
  const std::uint64_t before = duplicate_summary_writes();
  obs::RunManifest m = bench_manifest("dup_tool");
  m.metrics["x"] = 1.0;
  write_summary(dir_, m);
  EXPECT_EQ(duplicate_summary_writes(), before);  // first write is clean

  m.metrics["x"] = 2.0;
  write_summary(dir_, m);
  EXPECT_EQ(duplicate_summary_writes(), before + 1);

  const std::string text = read_summary_file();
  // Exactly one entry for the tool — map-keyed merge, no duplicate key —
  // holding the value of the *latest* write.
  EXPECT_EQ(count_occurrences(text, "\"dup_tool\":"), 1u);
  EXPECT_NE(text.find("\"x\":2"), std::string::npos) << text;
  EXPECT_EQ(text.find("\"x\":1"), std::string::npos) << text;
  EXPECT_NE(text.find("nocw.bench_summary.v1"), std::string::npos);
}

TEST_F(SummaryWriter, DistinctToolsMergeWithoutWarning) {
  const std::uint64_t before = duplicate_summary_writes();
  write_summary(dir_, "tool_one", {{"a", 1.0}});
  write_summary(dir_, "tool_two", {{"b", 2.0}});
  EXPECT_EQ(duplicate_summary_writes(), before);

  const std::string text = read_summary_file();
  EXPECT_EQ(count_occurrences(text, "\"tool_one\":"), 1u);
  EXPECT_EQ(count_occurrences(text, "\"tool_two\":"), 1u);
}

TEST_F(SummaryWriter, StrictModeTurnsDuplicateRegistrationIntoError) {
  ASSERT_EQ(::setenv("NOCW_REGRESS_STRICT", "1", 1), 0);
  const std::uint64_t before = duplicate_summary_writes();
  write_summary(dir_, "strict_tool", {{"a", 1.0}});
  // Distinct tools stay fine under strict mode.
  write_summary(dir_, "strict_other", {{"b", 1.0}});
  EXPECT_THROW(write_summary(dir_, "strict_tool", {{"a", 2.0}}), CheckError);
  // The duplicate is still counted, and the summary keeps the first entry
  // (the strict throw fires before any file write).
  EXPECT_EQ(duplicate_summary_writes(), before + 1);
  const std::string text = read_summary_file();
  EXPECT_EQ(count_occurrences(text, "\"strict_tool\":"), 1u);
  EXPECT_NE(text.find("\"a\":1"), std::string::npos) << text;
  ::unsetenv("NOCW_REGRESS_STRICT");

  // Back in warn-only mode the same duplicate passes again.
  write_summary(dir_, "strict_tool", {{"a", 3.0}});
  EXPECT_EQ(duplicate_summary_writes(), before + 2);
}

TEST_F(SummaryWriter, RewriteAcrossToolsPreservesOtherEntries) {
  obs::RunManifest m = bench_manifest("survivor");
  m.metrics["keep"] = 7.0;
  write_summary(dir_, m);

  obs::RunManifest other = bench_manifest("overwriter");
  other.metrics["y"] = 1.0;
  write_summary(dir_, other);
  other.metrics["y"] = 3.0;
  write_summary(dir_, other);  // warned, last-writer-wins

  const std::string text = read_summary_file();
  EXPECT_EQ(count_occurrences(text, "\"survivor\":"), 1u);
  EXPECT_NE(text.find("\"keep\":7"), std::string::npos);
  EXPECT_EQ(count_occurrences(text, "\"overwriter\":"), 1u);
  EXPECT_NE(text.find("\"y\":3"), std::string::npos);
}

}  // namespace
}  // namespace nocw::bench
