#include "core/segment.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "util/rng.hpp"

namespace nocw::core {
namespace {

std::vector<Segment> run(const std::vector<float>& w, double delta,
                         std::size_t max_len = 0) {
  SegmenterConfig cfg;
  cfg.delta = delta;
  cfg.max_length = max_len;
  return segment_weights(w, cfg);
}

std::size_t total_length(const std::vector<Segment>& segs) {
  return std::accumulate(segs.begin(), segs.end(), std::size_t{0},
                         [](std::size_t a, const Segment& s) {
                           return a + s.length;
                         });
}

TEST(Segmenter, EmptyInputYieldsNoSegments) {
  EXPECT_TRUE(run({}, 0.0).empty());
}

TEST(Segmenter, SingleElementIsOneSegment) {
  const auto segs = run({1.0F}, 0.0);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].first, 0u);
  EXPECT_EQ(segs[0].length, 1u);
}

TEST(Segmenter, StrictlyIncreasingIsOneSegment) {
  const auto segs = run({1, 2, 3, 4, 5}, 0.0);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].length, 5u);
}

TEST(Segmenter, StrictlyDecreasingIsOneSegment) {
  const auto segs = run({5, 4, 3, 2, 1}, 0.0);
  ASSERT_EQ(segs.size(), 1u);
}

TEST(Segmenter, ConstantSequenceIsOneSegment) {
  const auto segs = run({2, 2, 2, 2}, 0.0);
  ASSERT_EQ(segs.size(), 1u);
}

TEST(Segmenter, DirectionReversalSplits) {
  // 1 2 3 | 2 1 — up-run then down-run
  const auto segs = run({1, 2, 3, 2, 1}, 0.0);
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0].length, 3u);
  EXPECT_EQ(segs[1].first, 3u);
  EXPECT_EQ(segs[1].length, 2u);
}

TEST(Segmenter, PaperWorstCaseAlternatingSplitsAtDeltaZero) {
  // Fig. 5(a): pairwise inversely monotonic data — m = n/2 segments.
  std::vector<float> w;
  for (int i = 0; i < 10; ++i) {
    w.push_back(0.0F);
    w.push_back(1.0F);
  }
  const auto segs = run(w, 0.0);
  // Greedy grouping: [0,1] ascending pairs each capped by the next drop.
  // With ties allowed the first pair (0,1) extends until a strict decrease
  // breaks both directions: 0,1 | 0,1 | ... = n/2 segments.
  EXPECT_EQ(segs.size(), w.size() / 2);
}

TEST(Segmenter, PaperWorstCaseCollapsesWithDelta) {
  // Fig. 5(b): with δ >= amplitude the whole alternation is one segment.
  std::vector<float> w;
  for (int i = 0; i < 10; ++i) {
    w.push_back(0.0F);
    w.push_back(1.0F);
  }
  const auto segs = run(w, 1.0);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].length, w.size());
}

TEST(Segmenter, SegmentsTileInput) {
  Xoshiro256pp rng(21);
  std::vector<float> w(5000);
  for (auto& x : w) x = static_cast<float>(rng.normal());
  for (double delta : {0.0, 0.05, 0.2, 1.0}) {
    const auto segs = run(w, delta);
    EXPECT_EQ(total_length(segs), w.size());
    std::size_t expect_first = 0;
    for (const auto& s : segs) {
      EXPECT_EQ(s.first, expect_first);
      EXPECT_GE(s.length, 1u);
      expect_first += s.length;
    }
  }
}

TEST(Segmenter, EverySegmentIsWeaklyMonotonic) {
  Xoshiro256pp rng(22);
  std::vector<float> w(3000);
  for (auto& x : w) x = static_cast<float>(rng.normal());
  for (double delta : {0.0, 0.1, 0.5}) {
    const auto segs = run(w, delta);
    for (const auto& s : segs) {
      EXPECT_TRUE(is_weakly_monotonic(
          std::span<const float>(w).subspan(s.first, s.length), delta))
          << "segment at " << s.first << " len " << s.length;
    }
  }
}

TEST(Segmenter, SegmentsAreGreedyMaximal) {
  // Extending any segment by the next element must break weak monotonicity
  // (unless the split was forced by the length cap, which is off here).
  Xoshiro256pp rng(23);
  std::vector<float> w(2000);
  for (auto& x : w) x = static_cast<float>(rng.normal());
  const double delta = 0.05;
  const auto segs = run(w, delta);
  for (std::size_t i = 0; i + 1 < segs.size(); ++i) {
    const auto& s = segs[i];
    EXPECT_FALSE(is_weakly_monotonic(
        std::span<const float>(w).subspan(s.first, s.length + 1), delta));
  }
}

TEST(Segmenter, LargerDeltaNeverIncreasesSegmentCount) {
  Xoshiro256pp rng(24);
  std::vector<float> w(4000);
  for (auto& x : w) x = static_cast<float>(rng.normal());
  std::size_t prev = run(w, 0.0).size();
  for (double delta : {0.05, 0.1, 0.2, 0.5, 1.0, 10.0}) {
    const std::size_t count = run(w, delta).size();
    EXPECT_LE(count, prev) << "delta " << delta;
    prev = count;
  }
}

TEST(Segmenter, HugeDeltaIsOneSegment) {
  Xoshiro256pp rng(25);
  std::vector<float> w(1000);
  for (auto& x : w) x = static_cast<float>(rng.normal());
  const auto segs = run(w, 1e9);
  ASSERT_EQ(segs.size(), 1u);
}

TEST(Segmenter, MaxLengthCapEnforced) {
  std::vector<float> w(100);
  std::iota(w.begin(), w.end(), 0.0F);  // one long ascending run
  const auto segs = run(w, 0.0, 16);
  for (const auto& s : segs) EXPECT_LE(s.length, 16u);
  EXPECT_EQ(total_length(segs), w.size());
  EXPECT_EQ(segs.size(), (w.size() + 15) / 16);
}

TEST(Segmenter, DeltaFromPercentUsesRange) {
  const std::vector<float> w{-1.0F, 0.0F, 3.0F};
  EXPECT_DOUBLE_EQ(delta_from_percent(10.0, w), 0.4);
  EXPECT_DOUBLE_EQ(delta_from_percent(0.0, w), 0.0);
}

TEST(StreamSegmenter, MatchesBatchSegmentation) {
  Xoshiro256pp rng(26);
  std::vector<float> w(3000);
  for (auto& x : w) x = static_cast<float>(rng.normal());
  SegmenterConfig cfg;
  cfg.delta = 0.08;
  const auto batch = segment_weights(w, cfg);
  StreamSegmenter ss(cfg);
  std::vector<std::size_t> lengths;
  for (float v : w) {
    const std::size_t closed = ss.push(v);
    if (closed) lengths.push_back(closed);
  }
  const std::size_t tail = ss.finish();
  if (tail) lengths.push_back(tail);
  ASSERT_EQ(lengths.size(), batch.size());
  for (std::size_t i = 0; i < lengths.size(); ++i) {
    EXPECT_EQ(lengths[i], batch[i].length);
  }
}

TEST(WeakMonotonic, EdgeCases) {
  EXPECT_TRUE(is_weakly_monotonic({}, 0.0));
  const std::vector<float> one{3.0F};
  EXPECT_TRUE(is_weakly_monotonic(one, 0.0));
  const std::vector<float> updown{0.0F, 1.0F, 0.0F};
  EXPECT_FALSE(is_weakly_monotonic(updown, 0.0));
  EXPECT_TRUE(is_weakly_monotonic(updown, 1.0));
}

// Property sweep: for random data the mean greedy segment length at δ=0
// should approach 1 + 2(e-2) ≈ 2.437 (segments of i.i.d. data).
TEST(Segmenter, MeanSegmentLengthMatchesTheory) {
  Xoshiro256pp rng(27);
  std::vector<float> w(200000);
  for (auto& x : w) x = static_cast<float>(rng.uniform());
  const auto segs = run(w, 0.0);
  const double mean =
      static_cast<double>(w.size()) / static_cast<double>(segs.size());
  EXPECT_NEAR(mean, 2.437, 0.05);
}

}  // namespace
}  // namespace nocw::core
