#include "core/baseline_codecs.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/entropy.hpp"
#include "util/rng.hpp"

namespace nocw::core {
namespace {

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint64_t seed) {
  Xoshiro256pp rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng() & 0xFF);
  return out;
}

// --- RLE ---------------------------------------------------------------------

TEST(Rle, EmptyRoundTrip) {
  EXPECT_TRUE(rle_decode(rle_encode({})).empty());
}

TEST(Rle, LiteralsRoundTrip) {
  const auto data = bytes_of("abcdefg");
  EXPECT_EQ(rle_decode(rle_encode(data)), data);
}

TEST(Rle, LongRunCompresses) {
  std::vector<std::uint8_t> data(200, 0x42);
  const auto enc = rle_encode(data);
  EXPECT_LT(enc.size(), 10u);
  EXPECT_EQ(rle_decode(enc), data);
}

TEST(Rle, EscapeByteStuffedCorrectly) {
  std::vector<std::uint8_t> data{0xA5, 0x01, 0xA5, 0xA5, 0x02};
  EXPECT_EQ(rle_decode(rle_encode(data)), data);
}

TEST(Rle, RunOfEscapeBytes) {
  std::vector<std::uint8_t> data(50, 0xA5);
  const auto enc = rle_encode(data);
  EXPECT_EQ(rle_decode(enc), data);
  EXPECT_LT(enc.size(), data.size());
}

TEST(Rle, RandomDataRoundTripAndNoGain) {
  const auto data = random_bytes(100000, 5);
  const auto enc = rle_encode(data);
  EXPECT_EQ(rle_decode(enc), data);
  // High-entropy data: RLE finds nothing (CR <= ~1).
  EXPECT_LT(lossless_cr(data.size(), enc.size()), 1.05);
}

TEST(Rle, TruncatedInputThrows) {
  std::vector<std::uint8_t> bad{0xA5};
  EXPECT_THROW(rle_decode(bad), std::runtime_error);
  std::vector<std::uint8_t> bad2{0xA5, 0x05};
  EXPECT_THROW(rle_decode(bad2), std::runtime_error);
}

TEST(Rle, MixedContentRoundTrip) {
  Xoshiro256pp rng(6);
  std::vector<std::uint8_t> data;
  for (int block = 0; block < 100; ++block) {
    if (rng.chance(0.5)) {
      const auto b = static_cast<std::uint8_t>(rng() & 0xFF);
      const auto n = 1 + rng.bounded(300);
      data.insert(data.end(), n, b);
    } else {
      for (int k = 0; k < 20; ++k) {
        data.push_back(static_cast<std::uint8_t>(rng() & 0xFF));
      }
    }
  }
  EXPECT_EQ(rle_decode(rle_encode(data)), data);
}

// --- Huffman -------------------------------------------------------------------

TEST(Huffman, EmptyRoundTrip) {
  EXPECT_TRUE(huffman_decode(huffman_encode({})).empty());
}

TEST(Huffman, SingleSymbolAlphabet) {
  std::vector<std::uint8_t> data(1000, 0x7F);
  const auto enc = huffman_encode(data);
  EXPECT_EQ(huffman_decode(enc), data);
  // 1 bit/symbol + table: far below 1 byte/symbol.
  EXPECT_LT(enc.size(), 500u);
}

TEST(Huffman, TextRoundTripAndCompresses) {
  const std::string text = sample_text(1 << 16);
  const auto data = bytes_of(text);
  const auto enc = huffman_encode(data);
  EXPECT_EQ(huffman_decode(enc), data);
  // Prose has ~4.2 bits/byte entropy: Huffman should approach ~1.8x.
  EXPECT_GT(lossless_cr(data.size(), enc.size()), 1.5);
}

TEST(Huffman, RandomDataRoundTripNoGain) {
  const auto data = random_bytes(100000, 9);
  const auto enc = huffman_encode(data);
  EXPECT_EQ(huffman_decode(enc), data);
  EXPECT_LT(lossless_cr(data.size(), enc.size()), 1.02);
}

TEST(Huffman, SkewedDistributionApproachesEntropy) {
  // 90% zeros, 10% spread: entropy ~ 1.3 bits/byte.
  Xoshiro256pp rng(10);
  std::vector<std::uint8_t> data(100000);
  for (auto& b : data) {
    b = rng.chance(0.9) ? 0 : static_cast<std::uint8_t>(rng.bounded(16) + 1);
  }
  const auto enc = huffman_encode(data);
  EXPECT_EQ(huffman_decode(enc), data);
  EXPECT_GT(lossless_cr(data.size(), enc.size()), 4.0);
}

TEST(Huffman, BinaryAlphabetRoundTrip) {
  Xoshiro256pp rng(11);
  std::vector<std::uint8_t> data(5000);
  for (auto& b : data) b = rng.chance(0.5) ? 0x00 : 0xFF;
  EXPECT_EQ(huffman_decode(huffman_encode(data)), data);
}

// --- The paper's claim -----------------------------------------------------------

TEST(BaselineCodecs, TraditionalCompressionFailsOnWeights) {
  // Sec. III-B: weight streams are near-random bytes, so lossless
  // compressors gain (almost) nothing — the reason a lossy domain-specific
  // codec is needed at all.
  Xoshiro256pp rng(12);
  std::vector<float> weights(100000);
  for (auto& w : weights) w = static_cast<float>(rng.normal(0.0, 0.05));
  const auto data = weights_as_bytes(weights);
  EXPECT_LT(lossless_cr(data.size(), rle_encode(data).size()), 1.05);
  const auto henc = huffman_encode(data);
  EXPECT_EQ(huffman_decode(henc), data);
  EXPECT_LT(lossless_cr(data.size(), henc.size()), 1.25);
}

}  // namespace
}  // namespace nocw::core
