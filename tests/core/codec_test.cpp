#include "core/codec.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <numeric>
#include <vector>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace nocw::core {
namespace {

std::vector<float> gaussian_weights(std::size_t n, std::uint64_t seed,
                                    double stddev = 0.05) {
  Xoshiro256pp rng(seed);
  std::vector<float> w(n);
  for (auto& x : w) x = static_cast<float>(rng.normal(0.0, stddev));
  return w;
}

TEST(Codec, EmptyLayer) {
  const CompressedLayer layer = compress({}, CodecConfig{});
  EXPECT_EQ(layer.original_count, 0u);
  EXPECT_TRUE(layer.segments.empty());
  EXPECT_TRUE(decompress(layer).empty());
}

TEST(Codec, SegmentLengthsTileLayer) {
  const auto w = gaussian_weights(10000, 41);
  for (double delta : {0.0, 5.0, 20.0}) {
    CodecConfig cfg;
    cfg.delta_percent = delta;
    const auto layer = compress(w, cfg);
    std::uint64_t total = 0;
    for (const auto& s : layer.segments) total += s.length;
    EXPECT_EQ(total, w.size());
  }
}

TEST(Codec, PerfectLineReconstructsNearlyExactly) {
  std::vector<float> w;
  for (int j = 0; j < 200; ++j) w.push_back(1.0F + 0.5F * static_cast<float>(j));
  CodecConfig cfg;  // delta 0; ascending line is one segment anyway
  const auto layer = compress(w, cfg);
  ASSERT_EQ(layer.segments.size(), 1u);
  const auto out = decompress(layer);
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_NEAR(out[i], w[i], 1e-3F) << i;
  }
  EXPECT_LT(layer.mse(), 1e-8);
}

TEST(Codec, MseMatchesExplicitReconstruction) {
  const auto w = gaussian_weights(5000, 42);
  CodecConfig cfg;
  cfg.delta_percent = 10.0;
  const auto layer = compress(w, cfg);
  const auto out = decompress(layer);
  EXPECT_NEAR(layer.mse(), mean_squared_error(w, out), 1e-12);
}

TEST(Codec, MseBoundedByDeltaScale) {
  // Larger δ admits rougher segments, but the fit error stays within the
  // same order as δ² (each segment deviates at most ~δ per step pair).
  const auto w = gaussian_weights(20000, 43, 0.1);
  double prev_mse = 0.0;
  for (double delta : {0.0, 5.0, 10.0, 15.0, 20.0}) {
    CodecConfig cfg;
    cfg.delta_percent = delta;
    const auto layer = compress(w, cfg);
    EXPECT_GE(layer.mse(), prev_mse * 0.5) << "MSE should broadly grow";
    prev_mse = layer.mse();
  }
  EXPECT_GT(prev_mse, 0.0);
}

TEST(Codec, CompressionRatioGrowsWithDelta) {
  const auto w = gaussian_weights(50000, 44);
  double prev = 0.0;
  for (double delta : {0.0, 5.0, 10.0, 15.0, 20.0}) {
    CodecConfig cfg;
    cfg.delta_percent = delta;
    const auto layer = compress(w, cfg);
    const double cr = layer.compression_ratio();
    EXPECT_GT(cr, prev) << "delta " << delta;
    prev = cr;
  }
  // At δ=20% of the range of a Gaussian sample, CR should be well above 2x.
  EXPECT_GT(prev, 2.0);
}

TEST(Codec, DeltaZeroRatioNearTheory) {
  // mean segment length ~2.44, storage 72 bits/segment vs 32 bits/weight:
  // CR ≈ 32*2.44/72 ≈ 1.08 for i.i.d. data.
  const auto w = gaussian_weights(200000, 45);
  const auto layer = compress(w, CodecConfig{});
  EXPECT_NEAR(layer.compression_ratio(), 1.08, 0.08);
}

TEST(Codec, ReconstructionErrorWithinSegmentBound) {
  // Every reconstructed value must stay within a few δ of the original:
  // the fit line of a weakly monotonic segment cannot wander arbitrarily.
  const auto w = gaussian_weights(10000, 46, 0.05);
  CodecConfig cfg;
  cfg.delta_percent = 10.0;
  const auto layer = compress(w, cfg);
  const auto out = decompress(layer);
  const double range = value_range(w);
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_LT(std::abs(out[i] - w[i]), range) << i;
  }
}

TEST(Codec, DecompressSizeMismatchThrows) {
  const auto w = gaussian_weights(100, 47);
  const auto layer = compress(w, CodecConfig{});
  std::vector<float> wrong(99);
  EXPECT_THROW(decompress(layer, wrong), std::invalid_argument);
}

TEST(Codec, SerializeDeserializeRoundTrip) {
  const auto w = gaussian_weights(5000, 48);
  CodecConfig cfg;
  cfg.delta_percent = 15.0;
  const auto layer = compress(w, cfg);
  const auto bytes = serialize(layer);
  const auto back = deserialize(bytes);
  ASSERT_EQ(back.segments.size(), layer.segments.size());
  EXPECT_EQ(back.original_count, layer.original_count);
  for (std::size_t i = 0; i < layer.segments.size(); ++i) {
    EXPECT_EQ(back.segments[i].m, layer.segments[i].m);
    EXPECT_EQ(back.segments[i].q, layer.segments[i].q);
    EXPECT_EQ(back.segments[i].length, layer.segments[i].length);
  }
  // Decompressing the deserialized stream yields identical weights.
  const auto a = decompress(layer);
  const auto b = decompress(back);
  EXPECT_EQ(a, b);
}

TEST(Codec, SerializedSizeMatchesAccounting) {
  const auto w = gaussian_weights(3000, 49);
  CodecConfig cfg;
  cfg.delta_percent = 5.0;
  const auto layer = compress(w, cfg);
  const auto bytes = serialize(layer);
  // Header is 16+8+8+6+6+6+48+48+32 = 178 bits (v2 adds the flags byte).
  const std::size_t expected_bits = 178 + layer.compressed_bits();
  EXPECT_EQ(bytes.size(), (expected_bits + 7) / 8);
}

TEST(Codec, DeserializeRejectsGarbage) {
  std::vector<std::uint8_t> junk(64, 0xAB);
  EXPECT_THROW(deserialize(junk), std::runtime_error);
}

TEST(Codec, ReducedCoefficientBitsRoundTrip) {
  const auto w = gaussian_weights(5000, 50);
  CodecConfig cfg;
  cfg.delta_percent = 10.0;
  cfg.coef_bits = 16;  // bfloat16-style coefficients
  const auto layer = compress(w, cfg);
  const auto bytes = serialize(layer);
  const auto back = deserialize(bytes);
  const auto a = decompress(layer);
  const auto b = decompress(back);
  EXPECT_EQ(a, b);
  // 16-bit coefficients halve the per-segment cost: CR roughly doubles
  // relative to 32-bit coefficients at the same δ.
  CodecConfig cfg32 = cfg;
  cfg32.coef_bits = 32;
  const auto layer32 = compress(w, cfg32);
  EXPECT_GT(layer.compression_ratio(), 1.5 * layer32.compression_ratio());
}

TEST(Codec, QuantizeCoefficientExactAt32Bits) {
  EXPECT_EQ(quantize_coefficient(0.123456789, 32),
            static_cast<float>(0.123456789));
}

TEST(Codec, QuantizeCoefficientTruncatesMantissa) {
  const float q = quantize_coefficient(1.0F + 1e-4F, 16);
  // bfloat16 has ~3 decimal digits: 1.0001 rounds to 1.0 at 16 bits.
  EXPECT_NEAR(q, 1.0F, 1e-2F);
  // And the low 16 bits of the encoding must be zero.
  std::uint32_t raw;
  std::memcpy(&raw, &q, sizeof(raw));
  EXPECT_EQ(raw & 0xFFFFu, 0u);
}

TEST(Codec, LengthFieldCapRespected) {
  std::vector<float> w(5000);
  std::iota(w.begin(), w.end(), 0.0F);  // single monotone ramp
  CodecConfig cfg;
  cfg.length_bits = 4;  // segments capped at 16
  const auto layer = compress(w, cfg);
  for (const auto& s : layer.segments) EXPECT_LE(s.length, 16u);
  const auto bytes = serialize(layer);
  const auto back = deserialize(bytes);
  EXPECT_EQ(decompress(back), decompress(layer));
}

TEST(Codec, WeightBitsAffectsRatioAccountingOnly) {
  const auto w = gaussian_weights(2000, 51);
  CodecConfig a;
  a.weight_bits = 32;
  CodecConfig b;
  b.weight_bits = 8;
  const auto la = compress(w, a);
  const auto lb = compress(w, b);
  EXPECT_EQ(la.segments.size(), lb.segments.size());
  EXPECT_NEAR(la.compression_ratio() / lb.compression_ratio(), 4.0, 1e-9);
}

// --- corruption regressions ------------------------------------------------
// A corrupted stream is a runtime input, not a programming error: every
// malformed shape must surface as DecodeError (strict) or a zeroed/padded
// repair (tolerant), never an out-of-bounds write.

TEST(CodecCorruption, DecompressRejectsOverrunningSegment) {
  CompressedLayer layer;
  layer.original_count = 10;
  layer.segments.push_back({0.5F, 1.0F, 20});  // claims twice the weights
  EXPECT_THROW(decompress(layer), DecodeError);
}

TEST(CodecCorruption, DecompressRejectsUnderfilledTiling) {
  CompressedLayer layer;
  layer.original_count = 10;
  layer.segments.push_back({0.5F, 1.0F, 4});  // 6 weights unaccounted for
  EXPECT_THROW(decompress(layer), DecodeError);
}

TEST(CodecCorruption, DecompressRejectsNonFiniteCoefficients) {
  CompressedLayer layer;
  layer.original_count = 4;
  layer.segments.push_back(
      {std::numeric_limits<float>::quiet_NaN(), 0.0F, 4});
  EXPECT_THROW(decompress(layer), DecodeError);
  layer.segments[0] = {0.0F, std::numeric_limits<float>::infinity(), 4};
  EXPECT_THROW(decompress(layer), DecodeError);
}

TEST(CodecCorruption, SegmentChecksumRoundTripAndAccounting) {
  const auto w = gaussian_weights(3000, 53);
  CodecConfig plain;
  plain.delta_percent = 10.0;
  CodecConfig checked = plain;
  checked.segment_checksum = true;
  const auto lp = compress(w, plain);
  const auto lc = compress(w, checked);
  // The checksum costs exactly 8 bits per segment and nothing else.
  ASSERT_EQ(lp.segments.size(), lc.segments.size());
  EXPECT_EQ(lc.compressed_bits(),
            lp.compressed_bits() + 8 * lc.segments.size());
  const auto back = deserialize(serialize(lc));
  EXPECT_EQ(decompress(back), decompress(lc));
}

TEST(CodecCorruption, FlippedPayloadBitIsDetected) {
  const auto w = gaussian_weights(2000, 54);
  CodecConfig cfg;
  cfg.delta_percent = 10.0;
  cfg.segment_checksum = true;
  const auto layer = compress(w, cfg);
  auto bytes = serialize(layer);
  // Byte 25 = bits 200..207, inside the first segment record (the v2 header
  // occupies bits 0..177). The CRC-8 must flag whichever field it lands in.
  bytes[25] ^= 0x10;
  EXPECT_THROW(deserialize(bytes), DecodeError);

  DecodeDiagnostics diag;
  const auto repaired = deserialize_tolerant(bytes, &diag);
  EXPECT_EQ(diag.segments_total, layer.segments.size());
  EXPECT_GE(diag.segments_corrupted, 1u);
  EXPECT_FALSE(diag.truncated);
  // The repair keeps the tiling: decompression yields the full weight count,
  // with the corrupted segment reconstructing zeros.
  const auto out = decompress(repaired);
  EXPECT_EQ(out.size(), layer.original_count);
}

TEST(CodecCorruption, TruncatedStreamStrictThrowsTolerantPads) {
  const auto w = gaussian_weights(2000, 55);
  CodecConfig cfg;
  cfg.delta_percent = 10.0;
  cfg.segment_checksum = true;
  const auto layer = compress(w, cfg);
  auto bytes = serialize(layer);
  bytes.resize(bytes.size() / 2);

  try {
    (void)deserialize(bytes);
    FAIL() << "expected DecodeError for truncated stream";
  } catch (const DecodeError& e) {
    EXPECT_LE(e.byte_offset(), bytes.size());
  }

  DecodeDiagnostics diag;
  const auto repaired = deserialize_tolerant(bytes, &diag);
  EXPECT_TRUE(diag.truncated);
  EXPECT_GT(diag.segments_missing, 0u);
  EXPECT_EQ(decompress(repaired).size(), layer.original_count);
}

TEST(CodecCorruption, TolerantOnCleanStreamMatchesStrict) {
  const auto w = gaussian_weights(2000, 56);
  CodecConfig cfg;
  cfg.delta_percent = 10.0;
  cfg.segment_checksum = true;
  const auto bytes = serialize(compress(w, cfg));
  DecodeDiagnostics diag;
  const auto tolerant = deserialize_tolerant(bytes, &diag);
  EXPECT_EQ(diag.segments_corrupted, 0u);
  EXPECT_EQ(diag.segments_missing, 0u);
  EXPECT_FALSE(diag.truncated);
  EXPECT_EQ(decompress(tolerant), decompress(deserialize(bytes)));
}

TEST(CodecCorruption, HeaderCorruptionIsFatalEvenForTolerant) {
  const auto w = gaussian_weights(500, 57);
  CodecConfig cfg;
  cfg.segment_checksum = true;
  auto bytes = serialize(compress(w, cfg));
  bytes[0] ^= 0xFF;  // magic
  EXPECT_THROW(deserialize(bytes), DecodeError);
  EXPECT_THROW(deserialize_tolerant(bytes), DecodeError);
}

// Property sweep over δ values: reconstruction must always tile and MSE must
// equal the replayed reconstruction error.
class CodecDeltaSweep : public ::testing::TestWithParam<double> {};

TEST_P(CodecDeltaSweep, InvariantsHold) {
  const double delta = GetParam();
  const auto w = gaussian_weights(20000, 52);
  CodecConfig cfg;
  cfg.delta_percent = delta;
  const auto layer = compress(w, cfg);
  const auto out = decompress(layer);
  ASSERT_EQ(out.size(), w.size());
  EXPECT_NEAR(layer.mse(), mean_squared_error(w, out), 1e-12);
  EXPECT_GE(layer.compression_ratio(), 0.4);
  for (const auto& s : layer.segments) {
    EXPECT_GE(s.length, 1u);
    EXPECT_LE(s.length, 256u);
  }
}

INSTANTIATE_TEST_SUITE_P(DeltaGrid, CodecDeltaSweep,
                         ::testing::Values(0.0, 1.0, 2.0, 4.0, 5.0, 6.0, 8.0,
                                           10.0, 15.0, 20.0, 30.0, 50.0));

}  // namespace
}  // namespace nocw::core
