#include "core/decompressor_unit.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "util/rng.hpp"

namespace nocw::core {
namespace {

TEST(DecompressorUnit, IdleTickEmitsNothing) {
  DecompressorUnit du;
  EXPECT_FALSE(du.busy());
  EXPECT_EQ(du.tick(), std::nullopt);
  EXPECT_EQ(du.cycles(), 1u);
  EXPECT_EQ(du.emitted(), 0u);
}

TEST(DecompressorUnit, SingleWeightSegment) {
  DecompressorUnit du;
  du.load(CompressedSegment{0.5F, 2.0F, 1});
  EXPECT_TRUE(du.busy());
  EXPECT_EQ(du.state(), DecompressorUnit::State::Init);
  const auto out = du.tick();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, 2.0F);  // w̃_1 = q
  EXPECT_FALSE(du.busy());
}

TEST(DecompressorUnit, EmitsLinearRamp) {
  DecompressorUnit du;
  du.load(CompressedSegment{0.25F, 1.0F, 5});
  std::vector<float> got;
  while (du.busy()) {
    const auto out = du.tick();
    ASSERT_TRUE(out.has_value());
    got.push_back(*out);
  }
  const std::vector<float> expect{1.0F, 1.25F, 1.5F, 1.75F, 2.0F};
  EXPECT_EQ(got, expect);
}

TEST(DecompressorUnit, OneWeightPerCycle) {
  DecompressorUnit du;
  du.load(CompressedSegment{1.0F, 0.0F, 100});
  const std::uint64_t start = du.cycles();
  std::uint64_t produced = 0;
  while (du.busy()) {
    if (du.tick().has_value()) ++produced;
  }
  EXPECT_EQ(produced, 100u);
  EXPECT_EQ(du.cycles() - start, 100u);  // exactly one weight per clock
}

TEST(DecompressorUnit, LoadWhileBusyThrows) {
  DecompressorUnit du;
  du.load(CompressedSegment{0.0F, 0.0F, 3});
  EXPECT_THROW(du.load(CompressedSegment{0.0F, 0.0F, 1}), std::logic_error);
}

TEST(DecompressorUnit, ZeroLengthSegmentIsNoOp) {
  DecompressorUnit du;
  du.load(CompressedSegment{1.0F, 1.0F, 0});
  EXPECT_FALSE(du.busy());
}

TEST(DecompressorUnit, StateSequenceInitThenRun) {
  DecompressorUnit du;
  du.load(CompressedSegment{1.0F, 0.0F, 3});
  EXPECT_EQ(du.state(), DecompressorUnit::State::Init);
  du.tick();
  EXPECT_EQ(du.state(), DecompressorUnit::State::Run);
  du.tick();
  EXPECT_EQ(du.state(), DecompressorUnit::State::Run);
  du.tick();
  EXPECT_EQ(du.state(), DecompressorUnit::State::Idle);
}

TEST(DecompressorUnit, BitEquivalentToSoftwareDecompress) {
  // The FSM must produce exactly the same float stream as core::decompress,
  // including float accumulation order (Eq. 2).
  Xoshiro256pp rng(61);
  std::vector<float> w(20000);
  for (auto& x : w) x = static_cast<float>(rng.normal(0.0, 0.2));
  CodecConfig cfg;
  cfg.delta_percent = 12.0;
  const auto layer = compress(w, cfg);
  const auto sw = decompress(layer);

  DecompressorUnit du;
  std::vector<float> hw;
  hw.reserve(sw.size());
  for (const auto& seg : layer.segments) {
    du.load(seg);
    while (du.busy()) {
      const auto out = du.tick();
      ASSERT_TRUE(out.has_value());
      hw.push_back(*out);
    }
  }
  ASSERT_EQ(hw.size(), sw.size());
  for (std::size_t i = 0; i < sw.size(); ++i) {
    // Bit-exact: both paths perform the identical float additions.
    EXPECT_EQ(hw[i], sw[i]) << i;
  }
}

TEST(DecompressorUnit, NonFiniteCoefficientsRejectedAtLoad) {
  // A corrupted segment must be refused at the load port, not propagated
  // through the accumulator where it would poison every later weight.
  DecompressorUnit du;
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_THROW(du.load(CompressedSegment{nan, 0.0F, 3}), DecodeError);
  EXPECT_THROW(du.load(CompressedSegment{0.0F, inf, 3}), DecodeError);
  EXPECT_FALSE(du.busy());  // the unit stays usable
  du.load(CompressedSegment{1.0F, 0.0F, 1});
  EXPECT_TRUE(du.busy());
}

TEST(DecompressorUnit, ResetReturnsToIdle) {
  DecompressorUnit du;
  du.load(CompressedSegment{1.0F, 0.0F, 10});
  du.tick();
  du.reset();
  EXPECT_FALSE(du.busy());
  EXPECT_EQ(du.cycles(), 0u);
  EXPECT_EQ(du.emitted(), 0u);
}

}  // namespace
}  // namespace nocw::core
