#include "core/metrics.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace nocw::core {
namespace {

TEST(Metrics, WeightedCrLinearFormula) {
  // Weighted CR = f*CR + (1-f), the formula the paper's Table II follows
  // (e.g. AlexNet δ=20%: 0.7*11.44 + 0.3 ≈ 8.3).
  EXPECT_NEAR(weighted_cr(11.44, 0.70), 8.31, 0.02);
  EXPECT_NEAR(weighted_cr(4.02, 0.80), 3.42, 0.02);
  EXPECT_NEAR(weighted_cr(12.79, 0.08), 1.94, 0.02);
}

TEST(Metrics, WeightedCrIdentityCases) {
  EXPECT_DOUBLE_EQ(weighted_cr(5.0, 0.0), 1.0);   // nothing compressed
  EXPECT_DOUBLE_EQ(weighted_cr(5.0, 1.0), 5.0);   // whole model compressed
  EXPECT_DOUBLE_EQ(weighted_cr(1.0, 0.5), 1.0);   // CR 1 changes nothing
}

TEST(Metrics, MemFootprintReductionFormula) {
  // Mem fp reduction = f*(1 - 1/CR): AlexNet δ=20% → 0.7*(1-1/11.44) ≈ 64%.
  EXPECT_NEAR(mem_footprint_reduction(11.44, 0.70), 0.639, 0.005);
  EXPECT_NEAR(mem_footprint_reduction(12.79, 0.08), 0.074, 0.005);
  EXPECT_DOUBLE_EQ(mem_footprint_reduction(1.0, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(mem_footprint_reduction(2.0, 0.0), 0.0);
}

TEST(Metrics, ReductionBoundedByFraction) {
  // No matter how well the layer compresses, the model cannot shrink by more
  // than the layer's own share of the parameters.
  for (double cr : {1.5, 4.0, 100.0}) {
    for (double f : {0.1, 0.5, 0.9}) {
      EXPECT_LT(mem_footprint_reduction(cr, f), f);
      EXPECT_GE(mem_footprint_reduction(cr, f), 0.0);
    }
  }
}

TEST(Metrics, AssessProducesConsistentReport) {
  Xoshiro256pp rng(71);
  std::vector<float> w(30000);
  for (auto& x : w) x = static_cast<float>(rng.normal(0.0, 0.05));
  CodecConfig cfg;
  cfg.delta_percent = 15.0;
  const CompressionReport r = assess_compression(w, 0.8, cfg);
  EXPECT_DOUBLE_EQ(r.delta_percent, 15.0);
  EXPECT_GT(r.cr, 1.0);
  EXPECT_NEAR(r.weighted_cr, 0.8 * r.cr + 0.2, 1e-12);
  EXPECT_NEAR(r.mem_fp_reduction, 0.8 * (1.0 - 1.0 / r.cr), 1e-12);
  EXPECT_GT(r.mse, 0.0);
  EXPECT_GT(r.segment_count, 0u);
  EXPECT_NEAR(r.mean_segment_length,
              static_cast<double>(w.size()) / r.segment_count, 1e-9);
}

TEST(Metrics, ZeroDeltaStillReportsSaneRow) {
  Xoshiro256pp rng(72);
  std::vector<float> w(10000);
  for (auto& x : w) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  const CompressionReport r = assess_compression(w, 0.5, CodecConfig{});
  EXPECT_GT(r.cr, 0.9);
  EXPECT_LT(r.cr, 1.5);
  EXPECT_GE(r.mse, 0.0);
}

}  // namespace
}  // namespace nocw::core
