#include "core/linefit.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace nocw::core {
namespace {

TEST(LineFit, EmptyIsZero) {
  const LineFit f = fit_line({});
  EXPECT_DOUBLE_EQ(f.m, 0.0);
  EXPECT_DOUBLE_EQ(f.q, 0.0);
  EXPECT_DOUBLE_EQ(f.sse, 0.0);
}

TEST(LineFit, SinglePointIsThePoint) {
  const std::vector<float> v{4.5F};
  const LineFit f = fit_line(v);
  EXPECT_DOUBLE_EQ(f.m, 0.0);
  EXPECT_DOUBLE_EQ(f.q, 4.5);
  EXPECT_DOUBLE_EQ(f.sse, 0.0);
}

TEST(LineFit, TwoPointsExact) {
  const std::vector<float> v{1.0F, 3.0F};
  const LineFit f = fit_line(v);
  EXPECT_NEAR(f.m, 2.0, 1e-12);
  EXPECT_NEAR(f.q, 1.0, 1e-12);
  EXPECT_NEAR(f.sse, 0.0, 1e-12);
}

TEST(LineFit, PerfectLineHasZeroResidual) {
  std::vector<float> v;
  for (int j = 0; j < 50; ++j) v.push_back(-2.0F + 0.25F * static_cast<float>(j));
  const LineFit f = fit_line(v);
  EXPECT_NEAR(f.m, 0.25, 1e-9);
  EXPECT_NEAR(f.q, -2.0, 1e-9);
  EXPECT_NEAR(f.sse, 0.0, 1e-9);
}

TEST(LineFit, ConstantSequence) {
  const std::vector<float> v{7.0F, 7.0F, 7.0F, 7.0F};
  const LineFit f = fit_line(v);
  EXPECT_NEAR(f.m, 0.0, 1e-12);
  EXPECT_NEAR(f.q, 7.0, 1e-12);
  EXPECT_NEAR(f.sse, 0.0, 1e-9);
}

TEST(LineFit, KnownThreePointCase) {
  // Points (0,0), (1,1), (2,0): OLS gives m = 0, q = 1/3, SSE = 2/3.
  const std::vector<float> v{0.0F, 1.0F, 0.0F};
  const LineFit f = fit_line(v);
  EXPECT_NEAR(f.m, 0.0, 1e-12);
  EXPECT_NEAR(f.q, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(f.sse, 2.0 / 3.0, 1e-12);
}

TEST(LineFit, MatchesBruteForceNormalEquations) {
  Xoshiro256pp rng(31);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 2 + rng.bounded(64);
    std::vector<float> v(n);
    for (auto& x : v) x = static_cast<float>(rng.normal(0.0, 2.0));
    const LineFit f = fit_line(v);
    // Brute-force OLS in long double.
    long double sx = 0, sy = 0, sxx = 0, sxy = 0;
    for (std::size_t j = 0; j < n; ++j) {
      sx += j;
      sy += v[j];
      sxx += static_cast<long double>(j) * j;
      sxy += static_cast<long double>(j) * v[j];
    }
    const long double denom = n * sxx - sx * sx;
    const long double m = (n * sxy - sx * sy) / denom;
    const long double q = (sy - m * sx) / n;
    EXPECT_NEAR(f.m, static_cast<double>(m), 1e-8);
    EXPECT_NEAR(f.q, static_cast<double>(q), 1e-8);
    // Residual from the fitted line.
    long double sse = 0;
    for (std::size_t j = 0; j < n; ++j) {
      const long double e = v[j] - (m * j + q);
      sse += e * e;
    }
    EXPECT_NEAR(f.sse, static_cast<double>(sse), 1e-6);
  }
}

TEST(LineFit, FitMinimizesSse) {
  // Perturbing (m, q) away from the OLS solution must not reduce the SSE.
  Xoshiro256pp rng(32);
  std::vector<float> v(20);
  for (auto& x : v) x = static_cast<float>(rng.normal());
  const LineFit f = fit_line(v);
  auto sse_of = [&](double m, double q) {
    double s = 0;
    for (std::size_t j = 0; j < v.size(); ++j) {
      const double e = v[j] - (m * static_cast<double>(j) + q);
      s += e * e;
    }
    return s;
  };
  const double base = sse_of(f.m, f.q);
  for (double dm : {-0.01, 0.01}) {
    for (double dq : {-0.01, 0.01}) {
      EXPECT_GE(sse_of(f.m + dm, f.q + dq), base - 1e-9);
    }
  }
}

TEST(LineFitAccumulator, ResetClears) {
  LineFitAccumulator acc;
  acc.add(1.0);
  acc.add(5.0);
  acc.reset();
  EXPECT_EQ(acc.count(), 0u);
  acc.add(2.0);
  const LineFit f = acc.fit();
  EXPECT_DOUBLE_EQ(f.q, 2.0);
}

}  // namespace
}  // namespace nocw::core
