#include "core/entropy.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace nocw::core {
namespace {

TEST(Entropy, RandomDataNearEightBits) {
  EXPECT_GT(random_data_entropy(1 << 20, 7), 7.99);
}

TEST(Entropy, RandomDataDeterministicPerSeed) {
  EXPECT_DOUBLE_EQ(random_data_entropy(100000, 3),
                   random_data_entropy(100000, 3));
}

TEST(Entropy, TextWellBelowRandom) {
  const double h = text_entropy(1 << 16);
  EXPECT_GT(h, 3.0);   // prose is not trivially redundant...
  EXPECT_LT(h, 5.5);   // ...but far from random bytes
}

TEST(Entropy, SampleTextLongEnoughAndPrintable) {
  const std::string t = sample_text(5000);
  EXPECT_GE(t.size(), 5000u);
  for (char c : t) {
    EXPECT_TRUE((c >= 'a' && c <= 'z') || c == ' ' || c == '.') << int(c);
  }
}

TEST(Entropy, GaussianWeightStreamNearRandom) {
  // The paper's Fig. 3 point: serialized CNN weights look like random bytes.
  Xoshiro256pp rng(81);
  std::vector<float> w(1 << 18);
  for (auto& x : w) x = static_cast<float>(rng.normal(0.0, 0.05));
  const double h = weight_stream_entropy(w);
  EXPECT_GT(h, 7.0);
  EXPECT_LE(h, 8.0);
}

TEST(Entropy, ConstantWeightStreamIsLow) {
  std::vector<float> w(10000, 0.125F);
  EXPECT_LT(weight_stream_entropy(w), 2.1);
}

TEST(Entropy, OrderingRandomGreaterThanWeightsGreaterThanText) {
  Xoshiro256pp rng(82);
  std::vector<float> w(1 << 18);
  for (auto& x : w) x = static_cast<float>(rng.normal(0.0, 0.05));
  const double h_random = random_data_entropy(1 << 20, 7);
  const double h_weights = weight_stream_entropy(w);
  const double h_text = text_entropy(1 << 16);
  EXPECT_GT(h_random, h_weights);
  EXPECT_GT(h_weights, h_text);
}

}  // namespace
}  // namespace nocw::core
