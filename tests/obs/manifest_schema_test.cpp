// Schema validation for the run-provenance manifest (nocw.manifest.v1) and
// the time-series export (nocw.timeseries.v1) — the line-wise contracts that
// tools/obs_diff.py and tools/obs_dashboard.py consume.
//
// Both formats promise "one logical record per line" so downstream tooling
// (and the BENCH_summary.json merge in bench_util) can operate line-based
// without a C++ JSON parser. These tests pin that shape: a reformat that a
// generic JSON library would accept still breaks the contract.
#include "obs/manifest.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/timeseries.hpp"

namespace nocw::obs {
namespace {

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) out.push_back(line);
  return out;
}

RunManifest sample_manifest() {
  RunManifest m = make_manifest("schema_test", "LeNet-5");
  m.config["delta_grid"] = "2,5,10,15";
  m.config["selected_layer"] = "fc1";
  m.metrics["latency_cycles"] = 26530.5;
  m.metrics["energy_j"] = 2.2e-05;
  m.wall_seconds = 1.25;
  return m;
}

TEST(ManifestSchema, OneTopLevelKeyPerLineInFixedOrder) {
  const std::string json = sample_manifest().to_json();
  const std::vector<std::string> lines = lines_of(json);
  // {schema, tool, model, threads, wall_seconds, build, env, config,
  //  metrics, closing brace} — exactly ten lines, order pinned.
  ASSERT_EQ(lines.size(), 10u) << json;
  EXPECT_EQ(lines[0], "{\"schema\":\"nocw.manifest.v1\",");
  EXPECT_EQ(lines[1], "\"tool\":\"schema_test\",");
  EXPECT_EQ(lines[2], "\"model\":\"LeNet-5\",");
  EXPECT_EQ(lines[3].rfind("\"threads\":", 0), 0u);
  EXPECT_EQ(lines[4].rfind("\"wall_seconds\":1.25,", 0), 0u);
  EXPECT_EQ(lines[5].rfind("\"build\":{", 0), 0u);
  EXPECT_EQ(lines[6].rfind("\"env\":{", 0), 0u);
  EXPECT_EQ(lines[7].rfind("\"config\":{", 0), 0u);
  EXPECT_EQ(lines[8].rfind("\"metrics\":{", 0), 0u);
  EXPECT_EQ(lines[9], "}");
  // All but the final key line are comma-terminated (valid JSON when
  // joined); the metrics line closes its object without a comma.
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(lines[i].back(), ',') << "line " << i << ": " << lines[i];
  }
  EXPECT_EQ(lines[8].back(), '}');
}

TEST(ManifestSchema, ProvenanceKeysAlwaysPresent) {
  const RunManifest m = make_manifest("t");
  for (const char* key : {"git_sha", "build_type", "compiler", "tracing"}) {
    EXPECT_TRUE(m.build.count(key)) << key;
    EXPECT_FALSE(m.build.at(key).empty()) << key;
  }
  EXPECT_GE(m.threads, 1);
  // The tracing fact must agree with how this test binary was compiled.
#if defined(NOCW_TRACE_DISABLED)
  EXPECT_EQ(m.build.at("tracing"), "compiled-out");
#else
  EXPECT_EQ(m.build.at("tracing"), "compiled-in");
#endif
}

TEST(ManifestSchema, GitShaEnvOverrideWinsAndCapturesNocwEnv) {
  ::setenv("NOCW_GIT_SHA", "feedc0de", 1);
  ::setenv("NOCW_SCHEMA_TEST_PROBE", "42", 1);
  const RunManifest m = make_manifest("t");
  EXPECT_EQ(m.build.at("git_sha"), "feedc0de");
  ASSERT_TRUE(m.env.count("NOCW_SCHEMA_TEST_PROBE"));
  EXPECT_EQ(m.env.at("NOCW_SCHEMA_TEST_PROBE"), "42");
  ::unsetenv("NOCW_GIT_SHA");
  ::unsetenv("NOCW_SCHEMA_TEST_PROBE");
  // PATH & co. never leak into the manifest.
  EXPECT_FALSE(make_manifest("t").env.count("PATH"));
}

TEST(ManifestSchema, EscapesQuotesAndControlCharacters) {
  RunManifest m;
  m.tool = "quote\"tool";
  m.config["note"] = "line\nbreak\\slash";
  const std::string json = m.to_json();
  EXPECT_NE(json.find("\"tool\":\"quote\\\"tool\""), std::string::npos);
  // Control characters are dropped, backslashes escaped: still one line.
  EXPECT_NE(json.find("\"note\":\"linebreak\\\\slash\""), std::string::npos);
}

TEST(ManifestSchema, WriteManifestIsAtomicAndReadsBack) {
  const std::string path = ::testing::TempDir() + "manifest_schema_test.json";
  ASSERT_TRUE(write_manifest(sample_manifest(), path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), sample_manifest().to_json());
  EXPECT_FALSE(std::ifstream(path + ".tmp").good()) << "temp file left over";
  std::remove(path.c_str());
  // An unwritable destination reports failure instead of throwing.
  EXPECT_FALSE(write_manifest(sample_manifest(), "/nonexistent/dir/x.json"));
}

TEST(TimeSeriesSchema, HeaderSeriesLinesAndFooter) {
  TimeSeriesSet set(8);
  set.append("accel.macs", "count", 256, 4000.0);
  set.append("noc.link_flits", "flits", 256, 80.0);
  set.append("noc.link_flits", "flits", 512, 96.0);
  const std::vector<std::string> lines = lines_of(set.to_json());
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[0], "{\"schema\":\"nocw.timeseries.v1\",\"series\":[");
  EXPECT_EQ(lines[3], "]}");
  // Every series line is a complete {...} object, comma-terminated except
  // the last — the line-based contract the dashboard relies on.
  EXPECT_EQ(lines[1],
            "{\"name\":\"accel.macs\",\"unit\":\"count\",\"stride\":1,"
            "\"points\":[[256,4000]]},");
  EXPECT_EQ(lines[2],
            "{\"name\":\"noc.link_flits\",\"unit\":\"flits\",\"stride\":1,"
            "\"points\":[[256,80],[512,96]]}");
}

TEST(TimeSeriesSchema, EmptySetStillValid) {
  const TimeSeriesSet set(8);
  const std::vector<std::string> lines = lines_of(set.to_json());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "{\"schema\":\"nocw.timeseries.v1\",\"series\":[");
  EXPECT_EQ(lines[1], "]}");
  EXPECT_EQ(set.to_csv(), "series,unit,cycle,value\n");
}

TEST(TimeSeriesSchema, NumbersAreShortestRoundTrip) {
  TimeSeriesSet set(8);
  set.append("a", "count", 0, 40.0);             // integral: no exponent form
  set.append("a", "count", 1, 0.1);              // shortest decimal
  set.append("a", "count", 2, 726.1052631578947);  // full precision kept
  const std::string json = set.to_json();
  EXPECT_NE(json.find("[0,40]"), std::string::npos) << json;
  EXPECT_NE(json.find("[1,0.1]"), std::string::npos) << json;
  EXPECT_NE(json.find("[2,726.1052631578947]"), std::string::npos) << json;
}

}  // namespace
}  // namespace nocw::obs
