#include "obs/report.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "noc/flit.hpp"
#include "util/units.hpp"

namespace nocw::obs {
namespace {

NocObservation make_observation(const noc::NocConfig& cfg) {
  NocObservation obs;
  obs.link_flits.assign(
      static_cast<std::size_t>(cfg.node_count()) * noc::kNumPorts, 0);
  obs.node_ejections.assign(static_cast<std::size_t>(cfg.node_count()), 0);
  obs.window_cycles = 100;
  obs.collected = true;
  return obs;
}

TEST(Report, PeHeatmapHasOneRowPerMeshRow) {
  const noc::NocConfig cfg;  // 4x4
  NocObservation obs = make_observation(cfg);
  obs.node_ejections[5] = 50;  // node (1,1): 50 flits / 100 cycles
  const Table t = pe_utilization_heatmap(cfg, obs);
  EXPECT_EQ(t.row_count(), static_cast<std::size_t>(cfg.height));
  const std::string s = t.to_string();
  EXPECT_NE(s.find("PE 50.0%"), std::string::npos);
  EXPECT_NE(s.find("MI "), std::string::npos);  // corners are annotated MI
}

TEST(Report, PeHeatmapEmptyObservationYieldsNoRows) {
  const noc::NocConfig cfg;
  const Table t = pe_utilization_heatmap(cfg, NocObservation{});
  EXPECT_EQ(t.row_count(), 0u);
}

TEST(Report, ZeroWindowCyclesReportsZeroUtilization) {
  // A run that collected an observation but simulated zero window cycles
  // (e.g. a model whose selected layer carries no traffic) must report 0%
  // utilization everywhere, not divide by zero.
  const noc::NocConfig cfg;
  NocObservation obs = make_observation(cfg);
  obs.window_cycles = 0;
  obs.node_ejections[5] = 50;
  obs.link_flits[0 * noc::kNumPorts + noc::kEast] = 10;
  const Table heat = pe_utilization_heatmap(cfg, obs);
  EXPECT_EQ(heat.row_count(), static_cast<std::size_t>(cfg.height));
  EXPECT_NE(heat.to_string().find("PE 0.0%"), std::string::npos);
  const Table links = link_utilization_table(cfg, obs);
  ASSERT_EQ(links.row_count(), 1u);
  EXPECT_NE(links.to_string().find("0.0%"), std::string::npos);
}

TEST(Report, EmptyObservationYieldsHeaderOnlyTables) {
  const noc::NocConfig cfg;
  const NocObservation obs;  // collected == false, vectors empty
  EXPECT_EQ(pe_utilization_heatmap(cfg, obs).row_count(), 0u);
  EXPECT_EQ(link_utilization_table(cfg, obs).row_count(), 0u);
}

TEST(Report, SinglePeMeshIsAllMemoryInterfaces) {
  // A degenerate 1x1 mesh: the only node is a corner, hence an MI; the
  // heatmap must still render one row without touching out-of-range ids.
  noc::NocConfig cfg;
  cfg.width = 1;
  cfg.height = 1;
  NocObservation obs = make_observation(cfg);
  obs.node_ejections[0] = 25;  // 25 flits / 100 cycles
  const Table t = pe_utilization_heatmap(cfg, obs);
  ASSERT_EQ(t.row_count(), 1u);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("MI 25.0%"), std::string::npos);
  EXPECT_EQ(s.find("PE "), std::string::npos);
}

TEST(Report, LayerPhaseTableZeroCycleLayerPrintsDashShares) {
  accel::InferenceResult r;
  accel::LayerResult a;
  a.name = "relu";  // zero-latency layer: shares are '-' rather than NaN%
  r.layers = {a};
  const Table t = layer_phase_table(r);
  ASSERT_EQ(t.row_count(), 2u);  // layer + (total)
  const std::string s = t.to_string();
  EXPECT_NE(s.find("relu"), std::string::npos);
  EXPECT_NE(s.find("-"), std::string::npos);
  EXPECT_EQ(s.find("nan"), std::string::npos);
}

TEST(Report, LinkTableSortsBusiestFirstAndSkipsIdleLinks) {
  const noc::NocConfig cfg;
  NocObservation obs = make_observation(cfg);
  obs.link_flits[0 * noc::kNumPorts + noc::kEast] = 10;
  obs.link_flits[1 * noc::kNumPorts + noc::kWest] = 40;
  obs.link_flits[2 * noc::kNumPorts + noc::kLocal] = 99;  // local: not a link
  const Table t = link_utilization_table(cfg, obs);
  EXPECT_EQ(t.row_count(), 2u);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("(1,0)->W"), std::string::npos);
  EXPECT_NE(s.find("(0,0)->E"), std::string::npos);
  EXPECT_LT(s.find("(1,0)->W"), s.find("(0,0)->E"));  // 40 flits before 10
}

TEST(Report, PercentileTableEmptySamplesIsDashRow) {
  const Table t = percentile_table("latency", {}, "cycles");
  ASSERT_EQ(t.row_count(), 1u);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("latency"), std::string::npos);
  EXPECT_NE(s.find("0"), std::string::npos);
  EXPECT_NE(s.find("-"), std::string::npos);
}

TEST(Report, PercentileTableMatchesStats) {
  std::vector<double> samples;
  for (int i = 1; i <= 100; ++i) samples.push_back(static_cast<double>(i));
  const Table t = percentile_table("latency", samples, "cycles");
  ASSERT_EQ(t.row_count(), 1u);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("100"), std::string::npos);    // count
  EXPECT_NE(s.find("50.50"), std::string::npos);  // mean and p50
  EXPECT_NE(s.find("95.05"), std::string::npos);  // p95
  EXPECT_NE(s.find("99.01"), std::string::npos);  // p99
  EXPECT_NE(s.find("100.00"), std::string::npos);  // max
}

TEST(Report, LayerPhaseTableHasTotalsRow) {
  accel::InferenceResult r;
  accel::LayerResult a;
  a.name = "conv1";
  a.latency.memory_cycles = units::FracCycles{100.0};
  a.latency.comm_cycles = units::FracCycles{50.0};
  a.latency.compute_cycles = units::FracCycles{50.0};
  accel::LayerResult b;
  b.name = "fc1";
  b.latency.memory_cycles = units::FracCycles{20.0};
  b.latency.comm_cycles = units::FracCycles{40.0};
  b.latency.compute_cycles = units::FracCycles{140.0};
  r.layers = {a, b};
  r.latency = a.latency;
  r.latency += b.latency;
  const Table t = layer_phase_table(r);
  EXPECT_EQ(t.row_count(), 3u);  // two layers + (total)
  const std::string s = t.to_string();
  EXPECT_NE(s.find("conv1"), std::string::npos);
  EXPECT_NE(s.find("fc1"), std::string::npos);
  EXPECT_NE(s.find("(total)"), std::string::npos);
  EXPECT_NE(s.find("50.0%"), std::string::npos);  // conv1 memory share
}

TEST(Report, SnapshotInferenceRegistersHeadlinesAndSamples) {
  accel::InferenceResult r;
  r.latency.memory_cycles = units::FracCycles{10.0};
  r.latency.comm_cycles = units::FracCycles{20.0};
  r.latency.compute_cycles = units::FracCycles{30.0};
  r.noc_obs.packet_latency_cycles = {5.0, 15.0};
  r.noc_obs.queue_depth_flits = {1.0};
  Registry reg;
  snapshot_inference(reg, r, "accel");
  EXPECT_DOUBLE_EQ(reg.value("accel.latency_total"), 60.0);
  EXPECT_DOUBLE_EQ(reg.value("accel.latency_noc"), 20.0);
  EXPECT_DOUBLE_EQ(reg.value("accel.packet_latency"), 2.0);  // histogram count
  EXPECT_DOUBLE_EQ(reg.value("accel.queue_depth"), 1.0);
  EXPECT_TRUE(reg.contains("accel.energy_total"));
}

TEST(Report, SnapshotModelSummaryCountsVolumes) {
  accel::ModelSummary summary;
  summary.model_name = "toy";
  accel::LayerSummary l;
  l.name = "conv";
  l.traffic_bearing = true;
  summary.layers = {l};
  summary.total_params = 42;
  summary.total_macs = 1000;
  Registry reg;
  snapshot_model_summary(reg, summary, "model");
  EXPECT_DOUBLE_EQ(reg.value("model.layers"), 1.0);
  EXPECT_DOUBLE_EQ(reg.value("model.macro_layers"), 1.0);
  EXPECT_DOUBLE_EQ(reg.value("model.total_params"), 42.0);
  EXPECT_DOUBLE_EQ(reg.value("model.total_macs"), 1000.0);
}

TEST(Observation, MergeAddsCountsAndConcatenatesSamples) {
  NocObservation a;
  a.link_flits = {1, 2};
  a.node_ejections = {3};
  a.packet_latency_cycles = {10.0};
  a.queue_depth_flits = {2.0};
  a.window_cycles = 100;
  a.collected = true;

  NocObservation b;
  b.link_flits = {10, 20};
  b.node_ejections = {30};
  b.packet_latency_cycles = {20.0, 30.0};
  b.window_cycles = 50;
  b.collected = true;

  a.merge(b);
  EXPECT_EQ(a.link_flits, (std::vector<std::uint64_t>{11, 22}));
  EXPECT_EQ(a.node_ejections, (std::vector<std::uint64_t>{33}));
  EXPECT_EQ(a.packet_latency_cycles,
            (std::vector<double>{10.0, 20.0, 30.0}));
  EXPECT_EQ(a.queue_depth_flits, (std::vector<double>{2.0}));
  EXPECT_EQ(a.window_cycles, 150u);
  EXPECT_TRUE(a.collected);

  NocObservation empty;
  empty.merge(a);  // merging into an empty observation adopts the sizes
  EXPECT_EQ(empty.link_flits, a.link_flits);
  EXPECT_TRUE(empty.collected);
}

}  // namespace
}  // namespace nocw::obs
