#include "obs/registry.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "obs/noc_stats_bridge.hpp"
#include "util/check.hpp"
#include "util/units.hpp"

namespace nocw::obs {
namespace {

TEST(Registry, CounterSetAndAdd) {
  Registry reg;
  reg.set_counter("noc.flits", "flits", 10);
  EXPECT_DOUBLE_EQ(reg.value("noc.flits"), 10.0);
  reg.add_counter("noc.flits", "flits", 5);
  EXPECT_DOUBLE_EQ(reg.value("noc.flits"), 15.0);
  reg.add_counter("noc.fresh", "events", 3);  // created at zero first
  EXPECT_DOUBLE_EQ(reg.value("noc.fresh"), 3.0);
}

TEST(Registry, GaugeOverwrites) {
  Registry reg;
  reg.set_gauge("accel.utilization", "fraction", 0.25);
  reg.set_gauge("accel.utilization", "fraction", 0.75);
  EXPECT_DOUBLE_EQ(reg.value("accel.utilization"), 0.75);
}

TEST(Registry, HistogramSummarizesPercentiles) {
  Registry reg;
  for (int i = 1; i <= 100; ++i) {
    reg.observe("noc.latency", "cycles", static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(reg.value("noc.latency"), 100.0);  // histogram -> count
  const auto snaps = reg.snapshot();
  ASSERT_EQ(snaps.size(), 1u);
  const MetricSnapshot& s = snaps[0];
  EXPECT_EQ(s.kind, MetricKind::Histogram);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_NEAR(s.p50, 50.5, 1e-9);
  EXPECT_NEAR(s.p95, 95.05, 1e-9);
  EXPECT_NEAR(s.p99, 99.01, 1e-9);
}

TEST(Registry, RejectsUnknownUnit) {
  Registry reg;
  // The unknown unit is the point of this test: it proves the run-time
  // vocabulary gate fires.  nocw-analyze: allow(units.vocab)
  EXPECT_THROW(reg.set_counter("x", "femtojoules", 1), CheckError);
  EXPECT_FALSE(unit_allowed("femtojoules"));
  EXPECT_TRUE(unit_allowed("joules"));
}

TEST(Registry, RejectsKindOrUnitChange) {
  Registry reg;
  reg.set_counter("n", "count", 1);
  EXPECT_THROW(reg.set_gauge("n", "count", 1.0), CheckError);
  EXPECT_THROW(reg.set_counter("n", "events", 1), CheckError);
  reg.set_counter("n", "count", 2);  // same kind + unit is fine
  EXPECT_DOUBLE_EQ(reg.value("n"), 2.0);
}

TEST(Registry, ValueOfMissingMetricThrows) {
  Registry reg;
  EXPECT_FALSE(reg.contains("ghost"));
  EXPECT_THROW((void)reg.value("ghost"), CheckError);
}

TEST(Registry, JsonAndCsvCarryEveryMetric) {
  Registry reg;
  reg.set_counter("a.count", "count", 7);
  reg.set_gauge("b.ratio", "ratio", 0.5);
  reg.observe("c.hist", "cycles", 2.0);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"a.count\""), std::string::npos);
  EXPECT_NE(json.find("\"b.ratio\""), std::string::npos);
  EXPECT_NE(json.find("\"c.hist\""), std::string::npos);
  const std::string csv = reg.to_csv();
  EXPECT_NE(csv.find("name,kind,unit"), std::string::npos);
  EXPECT_NE(csv.find("a.count"), std::string::npos);
  reg.clear();
  EXPECT_EQ(reg.size(), 0u);
}

TEST(Registry, CsvEscapesCommasAndQuotesInNames) {
  Registry reg;
  reg.set_counter("weird,name", "count", 1);
  reg.set_counter("has\"quote", "count", 2);
  reg.set_counter("plain", "count", 3);
  const std::string csv = reg.to_csv();
  // RFC 4180: fields containing commas are quoted, quotes are doubled, and
  // untouched names stay unquoted — a spreadsheet import keeps one metric
  // per row.
  EXPECT_NE(csv.find("\"weird,name\",counter,count"), std::string::npos)
      << csv;
  EXPECT_NE(csv.find("\"has\"\"quote\",counter,count"), std::string::npos)
      << csv;
  EXPECT_NE(csv.find("\nplain,counter,count"), std::string::npos) << csv;
}

TEST(Registry, AllEqualHistogramPercentilesAreExact) {
  // Interpolating between equal samples must not introduce floating-point
  // noise: every percentile of {7.3, 7.3, ...} is exactly 7.3, so exports
  // of a constant series diff clean across runs.
  Registry reg;
  for (int i = 0; i < 37; ++i) reg.observe("flat", "cycles", 7.3);
  const auto snaps = reg.snapshot();
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_EQ(snaps[0].p50, 7.3);
  EXPECT_EQ(snaps[0].p95, 7.3);
  EXPECT_EQ(snaps[0].p99, 7.3);
  EXPECT_EQ(snaps[0].min, 7.3);
  EXPECT_EQ(snaps[0].max, 7.3);
}

// --- NocStats bridge round-trip (the audit promised in the bridge header) -

/// Write `start`, `start+1`, ... into every bridged counter, in the bridge
/// table's declaration order (the accessor table no longer exposes member
/// pointers, so the writer side is spelled out here; the count assert keeps
/// it in lock-step with the table).
void fill_bridged_fields(noc::NocStats& stats, std::uint64_t v) {
  stats.cycles = units::Cycles{v++};
  stats.flits_injected = units::Flits{v++};
  stats.flits_ejected = units::Flits{v++};
  stats.packets_injected = v++;
  stats.packets_ejected = v++;
  stats.router_traversals = v++;
  stats.link_traversals = v++;
  stats.buffer_writes = v++;
  stats.buffer_reads = v++;
  stats.payload_bit_flips = v++;
  stats.link_fault_cycles = units::Cycles{v++};
  stats.router_stall_cycles = units::Cycles{v++};
  stats.crc_flits_injected = units::Flits{v++};
  stats.crc_flit_events = v++;
  stats.crc_failures = v++;
  stats.packets_delivered = v++;
  stats.retransmissions = v++;
  stats.packets_dropped = v++;
  stats.route_rebuilds = v++;
  stats.links_quarantined = v++;
  stats.routers_quarantined = v++;
  stats.flits_flushed = units::Flits{v++};
  stats.packets_rerouted = v++;
  stats.packets_undeliverable = v++;
  stats.recovery_cycles = units::Cycles{v++};
  ASSERT_EQ(noc_stats_fields().size(), 25u)
      << "bridge table grew: extend fill_bridged_fields";
}

TEST(NocStatsBridge, EveryFieldRoundTripsDistinctValues) {
  const auto fields = noc_stats_fields();
  ASSERT_FALSE(fields.empty());

  noc::NocStats stats;
  std::uint64_t v = 1000;
  fill_bridged_fields(stats, v);
  stats.packet_latency.add(10.0);
  stats.packet_latency.add(30.0);

  Registry reg;
  snapshot_noc_stats(reg, stats, "noc");

  v = 1000;
  for (const NocStatsField& f : fields) {
    const std::string name = std::string("noc.") + f.name;
    ASSERT_TRUE(reg.contains(name)) << name;
    EXPECT_DOUBLE_EQ(reg.value(name), static_cast<double>(v++)) << name;
  }
  EXPECT_DOUBLE_EQ(reg.value("noc.packet_latency_mean"), 20.0);
  EXPECT_DOUBLE_EQ(reg.value("noc.packet_latency_min"), 10.0);
  EXPECT_DOUBLE_EQ(reg.value("noc.packet_latency_max"), 30.0);
  EXPECT_DOUBLE_EQ(reg.value("noc.packet_latency_count"), 2.0);
}

TEST(NocStatsBridge, NamesUniqueAndUnitsInVocabulary) {
  std::set<std::string> names;
  for (const NocStatsField& f : noc_stats_fields()) {
    EXPECT_TRUE(names.insert(f.name).second) << "duplicate: " << f.name;
    EXPECT_TRUE(unit_allowed(f.unit)) << f.name << " unit " << f.unit;
  }
}

TEST(NocStatsBridge, ResetZeroesEveryBridgedCounter) {
  noc::NocStats stats;
  fill_bridged_fields(stats, 77);
  stats.reset();
  Registry reg;
  snapshot_noc_stats(reg, stats, "noc");
  for (const NocStatsField& f : noc_stats_fields()) {
    EXPECT_DOUBLE_EQ(reg.value(std::string("noc.") + f.name), 0.0) << f.name;
  }
}

}  // namespace
}  // namespace nocw::obs
