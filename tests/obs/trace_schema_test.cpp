// Schema validation for exported Chrome-trace JSON (the CI contract).
//
// Generates a real trace in-process — a compressed LeNet-5 inference plus a
// decompressor-unit FSM run — then validates the exported JSON line-wise:
// every event carries the ph/ts/pid/tid/name keys, timestamps are
// monotonically non-decreasing per (pid, tid) track, and the event classes
// the ISSUE promises (router hops, MAC spans, decompressor phases, layer
// markers) are all present.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "accel/simulator.hpp"
#include "core/decompressor_unit.hpp"
#include "nn/models.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"

namespace nocw::obs {
namespace {

#if defined(NOCW_TRACE_DISABLED)

TEST(TraceSchema, SkippedWhenCompiledOut) {
  GTEST_SKIP() << "NOCW_TRACING=OFF: no trace to validate";
}

#else

// Extracts the numeric value following `"key":` on an event line.
std::uint64_t num_field(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = line.find(needle);
  EXPECT_NE(pos, std::string::npos) << "missing " << key << " in: " << line;
  if (pos == std::string::npos) return 0;
  return std::strtoull(line.c_str() + pos + needle.size(), nullptr, 10);
}

char ph_field(const std::string& line) {
  const auto pos = line.find("\"ph\":\"");
  EXPECT_NE(pos, std::string::npos) << line;
  return pos == std::string::npos ? '?' : line[pos + 6];
}

std::string generate_trace_json() {
  Tracer::set_enabled(true);
  Tracer::set_categories(kCatAll);
  Tracer::set_sample_every(1);
  Tracer::global().clear();

  // Small NoC windows keep the cycle engine fast while still producing
  // thousands of hop/inject/eject events.
  accel::AccelConfig cfg;
  cfg.noc_window_flits = 1500;
  const accel::ModelSummary summary = accel::summarize(nn::make_lenet5());

  // Synthetic 4:1 plan over every weight layer: exercises the decompress
  // span without running the codec.
  accel::CompressionPlan plan;
  for (const accel::LayerSummary& l : summary.layers) {
    if (l.weight_count > 0) {
      plan[l.name] = {l.weight_count * 8, l.weight_count};
    }
  }
  const accel::AcceleratorSim sim(cfg);
  (void)sim.simulate(summary, &plan);

  // Drive the FSM model for decomp.load/init/run events. Constructed after
  // set_enabled so its cached gate is open.
  core::DecompressorUnit unit;
  unit.load({0.25F, 1.0F, 16});
  while (unit.busy()) (void)unit.tick();

  const std::string json = to_chrome_json(Tracer::global().collect());
  Tracer::global().clear();
  Tracer::set_enabled(false);
  return json;
}

TEST(TraceSchema, ChromeTraceValidatesLineWise) {
  const std::string json = generate_trace_json();
  ASSERT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);

  std::istringstream in(json);
  std::string line;
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t> last_ts;
  std::size_t events = 0;
  bool saw_hop = false;
  bool saw_mac = false;
  bool saw_decomp = false;
  bool saw_layer = false;
  bool saw_process_meta = false;

  while (std::getline(in, line)) {
    if (line.rfind("{\"name\":", 0) != 0) continue;  // header/footer lines
    ++events;

    // Required keys on every event line.
    for (const char* key : {"\"name\":", "\"ph\":", "\"pid\":", "\"tid\":",
                            "\"ts\":"}) {
      EXPECT_NE(line.find(key), std::string::npos)
          << "missing " << key << " in: " << line;
    }
    const char ph = ph_field(line);
    EXPECT_TRUE(ph == 'M' || ph == 'i' || ph == 'X')
        << "unexpected ph '" << ph << "' in: " << line;

    if (ph == 'M') {
      if (line.find("\"process_name\"") != std::string::npos) {
        saw_process_meta = true;
      }
      continue;  // metadata records carry ts 0 and sit outside the timeline
    }

    // Monotonic timestamps within each (pid, tid) track.
    const std::uint64_t pid = num_field(line, "pid");
    const std::uint64_t tid = num_field(line, "tid");
    const std::uint64_t ts = num_field(line, "ts");
    const auto track = std::make_pair(pid, tid);
    const auto it = last_ts.find(track);
    if (it != last_ts.end()) {
      EXPECT_GE(ts, it->second)
          << "ts regressed on track pid=" << pid << " tid=" << tid;
      it->second = ts;
    } else {
      last_ts.emplace(track, ts);
    }

    if (line.find("\"name\":\"hop\"") != std::string::npos) saw_hop = true;
    if (line.find("\"name\":\"mac\"") != std::string::npos) saw_mac = true;
    if (line.find("\"name\":\"decomp.run\"") != std::string::npos ||
        line.find("\"name\":\"decompress\"") != std::string::npos) {
      saw_decomp = true;
    }
    if (line.find("\"name\":\"layer:") != std::string::npos) saw_layer = true;
  }

  EXPECT_GT(events, 100u) << "suspiciously small trace";
  EXPECT_TRUE(saw_process_meta) << "no process_name metadata";
  EXPECT_TRUE(saw_hop) << "no router-hop events";
  EXPECT_TRUE(saw_mac) << "no MAC spans";
  EXPECT_TRUE(saw_decomp) << "no decompressor events";
  EXPECT_TRUE(saw_layer) << "no layer markers";
}

TEST(TraceSchema, EveryLayerMarkerMatchesAMacroLayer) {
  const std::string json = generate_trace_json();
  const accel::ModelSummary summary = accel::summarize(nn::make_lenet5());
  std::size_t markers = 0;
  for (const std::size_t i : summary.macro_layers()) {
    const std::string needle =
        "\"name\":\"layer:" + summary.layers[i].name + "\"";
    if (json.find(needle) != std::string::npos) ++markers;
  }
  // The ring may drop the oldest events under very small NOCW_TRACE_BUF
  // overrides, but with defaults every macro layer must be marked.
  EXPECT_EQ(markers, summary.macro_layers().size());
}

#endif  // NOCW_TRACE_DISABLED

}  // namespace
}  // namespace nocw::obs
