// TimeSeries / TimeSeriesSet: ring-compaction boundaries, the monotone-cycle
// and closed-unit contracts, line-wise exports, and the end-to-end promise
// that attaching a sink to the accelerator simulator is observation-only.
#include "obs/timeseries.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "accel/simulator.hpp"
#include "nn/models.hpp"
#include "util/check.hpp"

namespace nocw::obs {
namespace {

TEST(TimeSeries, AppendsWithinCapacityKeepEveryPoint) {
  TimeSeries s("noc.link_flits", "flits", 8);
  for (std::uint64_t c = 0; c < 8; ++c) {
    s.append(c * 10, static_cast<double>(c));
  }
  EXPECT_EQ(s.size(), 8u);
  EXPECT_EQ(s.compaction_stride(), 1u);
  EXPECT_EQ(s.points().front().cycle, 0u);
  EXPECT_EQ(s.points().back().cycle, 70u);
}

TEST(TimeSeries, CompactionDropsOddIndicesAndDoublesStride) {
  TimeSeries s("noc.link_flits", "flits", 8);
  for (std::uint64_t c = 0; c < 8; ++c) {
    s.append(c, static_cast<double>(c));
  }
  // The 9th append first decimates to the 4 even-index points, then lands.
  s.append(8, 8.0);
  EXPECT_EQ(s.size(), 5u);
  EXPECT_EQ(s.compaction_stride(), 2u);
  const std::vector<std::uint64_t> cycles_want{0, 2, 4, 6, 8};
  for (std::size_t i = 0; i < cycles_want.size(); ++i) {
    EXPECT_EQ(s.points()[i].cycle, cycles_want[i]) << i;
    EXPECT_DOUBLE_EQ(s.points()[i].value,
                     static_cast<double>(cycles_want[i]))
        << i;
  }
}

TEST(TimeSeries, RepeatedCompactionKeepsFirstPointAndMostRecent) {
  TimeSeries s("accel.dram_words", "count", 4);
  for (std::uint64_t c = 0; c < 64; ++c) {
    s.append(c, 1.0);
  }
  EXPECT_LE(s.size(), 4u);
  EXPECT_GE(s.compaction_stride(), 16u);  // 64 points through capacity 4
  EXPECT_EQ(s.points().front().cycle, 0u);   // first sample never dropped
  EXPECT_EQ(s.points().back().cycle, 63u);   // latest sample always present
  // Stride is always a power of two (2^k after k compactions).
  const std::uint64_t st = s.compaction_stride();
  EXPECT_EQ(st & (st - 1), 0u);
}

TEST(TimeSeries, SizeNeverExceedsCapacity) {
  TimeSeries s("accel.macs", "count", 7);  // odd capacity exercises resize
  for (std::uint64_t c = 0; c < 1000; ++c) {
    s.append(c, 0.5);
    EXPECT_LE(s.size(), 7u);
  }
}

TEST(TimeSeries, EqualCyclesAllowedRegressionThrows) {
  TimeSeries s("noc.queue_depth", "flits", 8);
  s.append(10, 1.0);
  s.append(10, 2.0);  // non-decreasing: two samples in one window are fine
  EXPECT_EQ(s.size(), 2u);
  EXPECT_THROW(s.append(9, 3.0), CheckError);
}

TEST(TimeSeries, RejectsUnknownUnitEmptyNameAndTinyCapacity) {
  EXPECT_THROW(TimeSeries("x", "femtojoules", 8), CheckError);
  EXPECT_THROW(TimeSeries("", "count", 8), CheckError);
  EXPECT_THROW(TimeSeries("x", "count", 3), CheckError);
  EXPECT_NO_THROW(TimeSeries("x", "count", 4));
}

TEST(TimeSeriesSet, CreatesOnFirstUseAndLocksUnit) {
  TimeSeriesSet set(8);
  set.append("noc.link_flits", "flits", 0, 1.0);
  set.append("noc.link_flits", "flits", 5, 2.0);
  EXPECT_TRUE(set.contains("noc.link_flits"));
  EXPECT_EQ(set.size(), 1u);
  EXPECT_EQ(set.series("noc.link_flits").size(), 2u);
  // One name, one meaning: re-use with another unit throws.
  EXPECT_THROW(set.append("noc.link_flits", "count", 6, 3.0), CheckError);
  EXPECT_THROW((void)set.series("ghost"), CheckError);
  set.clear();
  EXPECT_EQ(set.size(), 0u);
  EXPECT_FALSE(set.contains("noc.link_flits"));
}

TEST(TimeSeriesSet, NamesAreSorted) {
  TimeSeriesSet set(8);
  set.append("b", "count", 0, 1.0);
  set.append("a", "count", 0, 1.0);
  set.append("c", "flits", 0, 1.0);
  EXPECT_EQ(set.names(), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(TimeSeriesSet, JsonIsLineWiseSchemaV1) {
  TimeSeriesSet set(8);
  set.append("accel.macs", "count", 256, 4000.0);
  set.append("accel.macs", "count", 512, 4000.0);
  set.append("noc.link_flits", "flits", 256, 80.0);
  const std::string json = set.to_json();
  // Header, one line per series, footer.
  ASSERT_EQ(json.rfind("{\"schema\":\"nocw.timeseries.v1\",\"series\":[", 0),
            0u);
  std::istringstream in(json);
  std::string line;
  std::size_t series_lines = 0;
  while (std::getline(in, line)) {
    if (line.rfind("{\"name\":", 0) != 0) continue;
    ++series_lines;
    for (const char* key :
         {"\"unit\":", "\"stride\":", "\"points\":["}) {
      EXPECT_NE(line.find(key), std::string::npos) << key << " in " << line;
    }
  }
  EXPECT_EQ(series_lines, 2u);
  EXPECT_NE(json.find("[[256,4000],[512,4000]]"), std::string::npos);
}

TEST(TimeSeriesSet, CsvHasHeaderAndOneRowPerPoint) {
  TimeSeriesSet set(8);
  set.append("accel.macs", "count", 256, 4000.0);
  set.append("noc.link_flits", "flits", 256, 80.0);
  set.append("noc.link_flits", "flits", 512, 96.5);
  const std::string csv = set.to_csv();
  EXPECT_EQ(csv.rfind("series,unit,cycle,value\n", 0), 0u);
  EXPECT_NE(csv.find("accel.macs,count,256,4000\n"), std::string::npos);
  EXPECT_NE(csv.find("noc.link_flits,flits,512,96.5\n"), std::string::npos);
}

TEST(TimeSeriesEnv, KnobsHaveDefaultsAndFloors) {
  ::unsetenv("NOCW_TS_INTERVAL");
  ::unsetenv("NOCW_TS_CAP");
  EXPECT_EQ(series_interval_cycles(), 256u);
  EXPECT_EQ(series_capacity(), TimeSeriesSet::kDefaultCapacity);
  // Below-minimum values are ignored (with a warning), not clamped: the
  // run proceeds on the documented default.
  ::setenv("NOCW_TS_INTERVAL", "0", 1);  // minimum is 1
  ::setenv("NOCW_TS_CAP", "2", 1);       // minimum is 4
  EXPECT_EQ(series_interval_cycles(), 256u);
  EXPECT_EQ(series_capacity(), TimeSeriesSet::kDefaultCapacity);
  ::setenv("NOCW_TS_INTERVAL", "64", 1);
  ::setenv("NOCW_TS_CAP", "128", 1);
  EXPECT_EQ(series_interval_cycles(), 64u);
  EXPECT_EQ(series_capacity(), 128u);
  ::unsetenv("NOCW_TS_INTERVAL");
  ::unsetenv("NOCW_TS_CAP");
}

// The end-to-end contract the benches rely on: a sink attached to the full
// accelerator simulation collects the promised series, every series is
// cycle-monotone on the inference-global timeline, and the simulated
// results are bit-identical to an unsampled run.
TEST(TimeSeriesIntegration, AcceleratorSamplingIsObservationOnly) {
  nn::Model m = nn::make_lenet5();
  const accel::ModelSummary summary = accel::summarize(m);
  accel::AccelConfig cfg;
  cfg.noc_window_flits = 1500;  // small windows keep the test fast

  const accel::InferenceResult off = accel::AcceleratorSim(cfg).simulate(summary);

  TimeSeriesSet series(64);
  cfg.series = &series;
  cfg.series_interval_cycles = 128;
  const accel::InferenceResult on = accel::AcceleratorSim(cfg).simulate(summary);

  EXPECT_EQ(off.latency.total(), on.latency.total());
  EXPECT_EQ(off.energy.total(), on.energy.total());

  for (const char* name : {"accel.dram_words", "accel.macs",
                           "noc.link_flits", "noc.flits_injected",
                           "noc.flits_ejected", "noc.queue_depth"}) {
    ASSERT_TRUE(series.contains(name)) << name;
    const TimeSeries s = series.series(name);
    EXPECT_GT(s.size(), 0u) << name;
    for (std::size_t i = 1; i < s.points().size(); ++i) {
      EXPECT_GE(s.points()[i].cycle, s.points()[i - 1].cycle)
          << name << " point " << i;
    }
  }
  // No compression plan was passed, so no decompress activity exists.
  EXPECT_FALSE(series.contains("accel.decompress_weights"));
}

}  // namespace
}  // namespace nocw::obs
