#include "obs/log.hpp"

#include <gtest/gtest.h>

namespace nocw::obs {
namespace {

// The tests drive the quiet switch directly (set_quiet) rather than via
// NOCW_QUIET, which is read once per process; log() returns whether the
// line was actually emitted, so no stdout capture is needed.

TEST(ObsLog, EmitsWhenNotQuiet) {
  set_quiet(false);
  EXPECT_FALSE(quiet());
  EXPECT_TRUE(log("[test] obs::log smoke line %d\n", 1));
}

TEST(ObsLog, QuietSuppresses) {
  set_quiet(true);
  EXPECT_TRUE(quiet());
  EXPECT_FALSE(log("[test] this line must not appear\n"));
  set_quiet(false);
  EXPECT_TRUE(log("[test] and this one must\n"));
}

}  // namespace
}  // namespace nocw::obs
