// SloMonitor promises: tumbling event-time windows aligned to
// slo_window_start, budget evaluation at close (p99 / p99.9 / goodput),
// multi-horizon burn rates, exemplar trace links, and the SloIngest
// protocol the trace sink keys its pinning off.
#include "obs/slo.hpp"

#include <gtest/gtest.h>

#include "obs/registry.hpp"

namespace nocw::obs {
namespace {

TEST(SloWindowStartTest, AlignsToTumblingWindows) {
  EXPECT_EQ(slo_window_start(0, 1000), 0u);
  EXPECT_EQ(slo_window_start(999, 1000), 0u);
  EXPECT_EQ(slo_window_start(1000, 1000), 1000u);
  EXPECT_EQ(slo_window_start(2500, 1000), 2000u);
}

SloPolicy tight_policy() {
  SloPolicy p;
  p.window_cycles = 1000;
  p.p99_budget_cycles = 100.0;
  p.p999_budget_cycles = 150.0;
  p.min_goodput_fraction = 0.9;
  p.error_budget = 0.01;
  return p;
}

TEST(SloMonitorTest, ClosesWindowWhenEventLeavesIt) {
  SloMonitor m(1, tight_policy());
  EXPECT_FALSE(m.on_complete(0, 100, 50, 0xA1).closed_window);
  EXPECT_FALSE(m.on_complete(0, 900, 60, 0xA2).closed_window);
  // Crossing into [1000, 2000) closes [0, 1000).
  const SloIngest crossing = m.on_complete(0, 1100, 70, 0xA3);
  EXPECT_TRUE(crossing.closed_window);
  ASSERT_EQ(m.windows().size(), 1u);
  const SloWindow& w = m.windows()[0];
  EXPECT_EQ(w.window_start, 0u);
  EXPECT_EQ(w.completions, 2u);
  EXPECT_EQ(w.sheds, 0u);
  EXPECT_EQ(w.max_latency_cycles, 60u);
  EXPECT_EQ(w.breach_mask, 0u);
}

TEST(SloMonitorTest, FinishClosesOpenWindowsAndIsIdempotent) {
  SloMonitor m(2, tight_policy());
  (void)m.on_complete(0, 10, 5, 1);
  (void)m.on_complete(1, 20, 5, 2);
  m.finish();
  EXPECT_EQ(m.windows().size(), 2u);
  m.finish();
  EXPECT_EQ(m.windows().size(), 2u);
}

TEST(SloMonitorTest, LatencyBudgetsBreachAndCarryExemplar) {
  SloMonitor m(1, tight_policy());
  (void)m.on_complete(0, 10, 50, 0xB1);
  (void)m.on_complete(0, 20, 500, 0xB2);  // window max, over both budgets
  (void)m.on_complete(0, 30, 60, 0xB3);
  m.finish();
  ASSERT_EQ(m.windows().size(), 1u);
  const SloWindow& w = m.windows()[0];
  EXPECT_NE(w.breach_mask & kBreachP99, 0u);
  EXPECT_NE(w.breach_mask & kBreachP999, 0u);
  EXPECT_EQ(w.breach_mask & kBreachGoodput, 0u);
  EXPECT_EQ(w.max_latency_cycles, 500u);
  EXPECT_EQ(w.exemplar_trace_id, 0xB2u);
  EXPECT_EQ(m.windows_breached(), 1u);
}

TEST(SloMonitorTest, EmptyLatencyWindowNeverBreachesLatencyBudgets) {
  SloMonitor m(1, tight_policy());
  (void)m.on_shed(0, 10, 0xC1);
  (void)m.on_shed(0, 20, 0xC2);
  m.finish();
  ASSERT_EQ(m.windows().size(), 1u);
  const SloWindow& w = m.windows()[0];
  EXPECT_EQ(w.completions, 0u);
  EXPECT_EQ(w.sheds, 2u);
  EXPECT_EQ(w.breach_mask, kBreachGoodput);  // goodput 0 < 0.9
  EXPECT_EQ(w.p99_cycles, 0.0);
  // The first shed of the window is its shed exemplar.
  EXPECT_EQ(w.shed_exemplar_trace_id, 0xC1u);
}

TEST(SloMonitorTest, GoodputFractionCountsShedsAgainstOffered) {
  SloMonitor m(1, tight_policy());
  for (int i = 0; i < 8; ++i) {
    (void)m.on_complete(0, 10 + i, 10, 0xD0 + static_cast<std::uint64_t>(i));
  }
  (void)m.on_shed(0, 50, 0xDF);
  (void)m.on_shed(0, 60, 0xE0);
  m.finish();
  ASSERT_EQ(m.windows().size(), 1u);
  const SloWindow& w = m.windows()[0];
  EXPECT_DOUBLE_EQ(w.goodput_fraction, 0.8);
  EXPECT_NE(w.breach_mask & kBreachGoodput, 0u);
}

TEST(SloMonitorTest, BurnRateAveragesOverHorizons) {
  SloPolicy p = tight_policy();
  p.min_goodput_fraction = 0.0;
  SloMonitor m(1, p);
  // Window [0,1000): 1 completion + 1 shed -> shed fraction 0.5.
  (void)m.on_complete(0, 100, 10, 1);
  (void)m.on_shed(0, 200, 2);
  // Window [1000,2000): 2 completions -> shed fraction 0.
  (void)m.on_complete(0, 1100, 10, 3);
  (void)m.on_complete(0, 1200, 10, 4);
  m.finish();
  ASSERT_EQ(m.windows().size(), 2u);
  // First close: fraction 0.5 / budget 0.01 = 50 at every horizon.
  EXPECT_DOUBLE_EQ(m.windows()[0].burn[0], 50.0);
  EXPECT_DOUBLE_EQ(m.windows()[0].burn[2], 50.0);
  // Second close: 1-window horizon is clean, 4-window horizon still sees
  // the earlier shed (1 bad of 4 offered = 0.25 / 0.01 = 25).
  EXPECT_DOUBLE_EQ(m.windows()[1].burn[0], 0.0);
  EXPECT_DOUBLE_EQ(m.windows()[1].burn[1], 25.0);
  EXPECT_DOUBLE_EQ(m.max_burn(0), 50.0);
}

TEST(SloMonitorTest, IngestProtocolFlagsWindowMaxAndBreachedClose) {
  SloMonitor m(1, tight_policy());
  // First completion of a window is always its max so far.
  EXPECT_TRUE(m.on_complete(0, 10, 500, 0xF1).window_max);
  // A lower latency is not.
  EXPECT_FALSE(m.on_complete(0, 20, 50, 0xF2).window_max);
  // A higher one is.
  EXPECT_TRUE(m.on_complete(0, 30, 600, 0xF3).window_max);
  // The close carried into the next window reports the breach verdict.
  const SloIngest crossing = m.on_complete(0, 1500, 10, 0xF4);
  EXPECT_TRUE(crossing.closed_window);
  EXPECT_TRUE(crossing.closed_breached);
  EXPECT_TRUE(crossing.window_max);  // first completion of the new window
  ASSERT_EQ(m.windows().size(), 1u);
  EXPECT_EQ(m.windows()[0].exemplar_trace_id, 0xF3u);
}

TEST(SloMonitorTest, ClassesRollIndependently) {
  SloMonitor m(2, tight_policy());
  (void)m.on_complete(0, 100, 10, 1);
  // Class 1's event far in the future must not close class 0's window.
  (void)m.on_complete(1, 5000, 10, 2);
  EXPECT_TRUE(m.windows().empty());
  m.finish();
  EXPECT_EQ(m.windows().size(), 2u);
}

TEST(SloMonitorTest, PublishesCountersAndBurnGauges) {
  SloMonitor m(1, tight_policy());
  (void)m.on_complete(0, 10, 500, 1);
  m.finish();
  Registry reg;
  m.publish("slo", reg);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("slo.windows_total"), std::string::npos);
  EXPECT_NE(json.find("slo.windows_breached"), std::string::npos);
  EXPECT_NE(json.find("slo.breach_p99_windows"), std::string::npos);
  EXPECT_NE(json.find("slo.max_burn_16w"), std::string::npos);
}

TEST(SloMonitorTest, JsonExportCarriesSchemaAndHexExemplars) {
  SloMonitor m(1, tight_policy());
  (void)m.on_complete(0, 10, 500, 0xABC);
  m.finish();
  const std::string json = m.to_json();
  EXPECT_NE(json.find("\"schema\":\"nocw.slo.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"exemplar\":\"0000000000000abc\""),
            std::string::npos);
  EXPECT_NE(json.find("\"burn_1w\""), std::string::npos);
  EXPECT_NE(json.find("\"burn_16w\""), std::string::npos);
}

TEST(SloMonitorTest, DeterministicAcrossIdenticalStreams) {
  const auto feed = [](SloMonitor& m) {
    for (int i = 0; i < 200; ++i) {
      const auto cycle = static_cast<std::uint64_t>(37 * i);
      if (i % 7 == 0) {
        (void)m.on_shed(0, cycle, 1000 + static_cast<std::uint64_t>(i));
      } else {
        (void)m.on_complete(0, cycle, static_cast<std::uint64_t>(i % 90),
                            2000 + static_cast<std::uint64_t>(i));
      }
    }
    m.finish();
  };
  SloMonitor a(1, tight_policy());
  SloMonitor b(1, tight_policy());
  feed(a);
  feed(b);
  EXPECT_EQ(a.to_json(), b.to_json());
}

}  // namespace
}  // namespace nocw::obs
