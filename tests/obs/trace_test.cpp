#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/trace_export.hpp"
#include "util/thread_pool.hpp"

namespace nocw::obs {
namespace {

#if defined(NOCW_TRACE_DISABLED)

TEST(Trace, DisabledBuildFoldsMacrosAway) {
  // NOCW_TRACING=OFF: the gate is the constant false and emission macros
  // are ((void)0) — this test only has to compile.
  EXPECT_FALSE(NOCW_TRACE_ON(kCatNoc));
  NOCW_TRACE_INSTANT(kCatNoc, "never", kPidNoc, 0, 0);
}

#else  // tracing compiled in

// The tracer is process-global; every test restores the disabled default so
// suites can run in any order.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::set_enabled(true);
    Tracer::set_categories(kCatAll);
    Tracer::set_sample_every(1);
    Tracer::global().clear();
  }
  void TearDown() override {
    Tracer::global().clear();
    Tracer::set_categories(kCatAll);
    Tracer::set_sample_every(1);
    Tracer::set_enabled(false);
  }
};

TEST_F(TraceTest, DisabledRecordsNothingThroughMacros) {
  Tracer::set_enabled(false);
  const std::uint64_t before = Tracer::global().recorded();
  NOCW_TRACE_INSTANT(kCatNoc, "gated", kPidNoc, 1, 2);
  NOCW_TRACE_SPAN(kCatMac, "gated", kPidAccel, 1, 2, 3);
  EXPECT_EQ(Tracer::global().recorded(), before);
  EXPECT_FALSE(NOCW_TRACE_ON(kCatNoc));
}

TEST_F(TraceTest, CategoryMaskGates) {
  Tracer::set_categories(kCatMac);
  EXPECT_TRUE(NOCW_TRACE_ON(kCatMac));
  EXPECT_FALSE(NOCW_TRACE_ON(kCatNoc));
  NOCW_TRACE_INSTANT(kCatNoc, "masked-out", kPidNoc, 0, 0);
  NOCW_TRACE_INSTANT(kCatMac, "kept", kPidAccel, 0, 0);
  const auto events = Tracer::global().collect();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "kept");
}

TEST(TraceStatic, ParseCategories) {
  EXPECT_EQ(parse_categories("all"), kCatAll);
  EXPECT_EQ(parse_categories(""), kCatAll);
  EXPECT_EQ(parse_categories("noc"), kCatNoc);
  EXPECT_EQ(parse_categories("noc,mac"), kCatNoc | kCatMac);
  EXPECT_EQ(parse_categories("decomp,layer,mem,eval"),
            kCatDecomp | kCatLayer | kCatMem | kCatEval);
  EXPECT_EQ(parse_categories("noc,bogus"), kCatNoc);  // unknown ignored
}

TEST_F(TraceTest, CollectSortsByPidTidTs) {
  Tracer& t = Tracer::global();
  t.record_instant(kCatNoc, "c", kPidNoc, 1, 50);
  t.record_instant(kCatNoc, "a", kPidAccel, 0, 99);
  t.record_instant(kCatNoc, "d", kPidNoc, 1, 10);
  t.record_instant(kCatNoc, "b", kPidNoc, 0, 5);
  const auto events = t.collect();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].name, "a");  // pid 1 before pid 2
  EXPECT_EQ(events[1].name, "b");  // pid 2 tid 0
  EXPECT_EQ(events[2].name, "d");  // pid 2 tid 1 ts 10
  EXPECT_EQ(events[3].name, "c");  // pid 2 tid 1 ts 50
}

TEST_F(TraceTest, ScopedTimeBaseShiftsAndRestores) {
  Tracer& t = Tracer::global();
  EXPECT_EQ(time_base(), 0u);
  {
    ScopedTimeBase outer(100);
    EXPECT_EQ(time_base(), 100u);
    t.record_instant(kCatNoc, "outer", kPidNoc, 0, 5);
    {
      ScopedTimeBase inner(time_base() + 40);
      t.record_instant(kCatNoc, "inner", kPidNoc, 0, 5);
    }
    EXPECT_EQ(time_base(), 100u);
  }
  EXPECT_EQ(time_base(), 0u);
  const auto events = t.collect();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[0].ts, 105u);
  EXPECT_EQ(events[1].name, "inner");
  EXPECT_EQ(events[1].ts, 145u);
}

TEST_F(TraceTest, RingDropsOldestAndCountsDrops) {
  Tracer& t = Tracer::global();
  const std::size_t cap = Tracer::buffer_capacity();
  const std::size_t extra = 10;
  for (std::size_t i = 0; i < cap + extra; ++i) {
    t.record_instant(kCatNoc, "e", kPidNoc, 0, i);
  }
  EXPECT_EQ(t.recorded(), cap);
  EXPECT_EQ(t.dropped(), extra);
  const auto events = t.collect();
  ASSERT_EQ(events.size(), cap);
  // Oldest `extra` events were overwritten: the window starts at ts = extra.
  EXPECT_EQ(events.front().ts, extra);
  EXPECT_EQ(events.back().ts, cap + extra - 1);
}

TEST_F(TraceTest, SpanCarriesDurationAndArg) {
  Tracer& t = Tracer::global();
  t.record_span(kCatMac, "busy", kPidAccel, 3, 7, 21, "macs", 64.0);
  const auto events = t.collect();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].ph, 'X');
  EXPECT_EQ(events[0].dur, 21u);
  ASSERT_NE(events[0].arg_name, nullptr);
  EXPECT_STREQ(events[0].arg_name, "macs");
  EXPECT_DOUBLE_EQ(events[0].arg, 64.0);
}

// Forced-tiny ring capacity (Tracer::set_buffer_capacity): drop-oldest
// stays deterministic, counted, and exportable. Restores the configured
// capacity so suite order never leaks the override.
class TinyRingTest : public TraceTest {
 protected:
  void SetUp() override {
    TraceTest::SetUp();
    old_capacity_ = Tracer::buffer_capacity();
  }
  void TearDown() override {
    Tracer::set_buffer_capacity(old_capacity_);
    set_global_threads(1);
    TraceTest::TearDown();
  }

  static std::size_t event_lines(const std::string& json) {
    std::istringstream in(json);
    std::string line;
    std::size_t events = 0;
    while (std::getline(in, line)) {
      if (line.rfind("{\"name\":", 0) != 0) continue;
      if (line.find("\"ph\":\"M\"") != std::string::npos) continue;  // metadata
      ++events;
      for (const char* key :
           {"\"ph\":", "\"pid\":", "\"tid\":", "\"ts\":"}) {
        EXPECT_NE(line.find(key), std::string::npos)
            << "missing " << key << " in: " << line;
      }
    }
    return events;
  }

  std::size_t old_capacity_ = 0;
};

TEST_F(TinyRingTest, ForcedTinyCapacityDropsOldestDeterministically) {
  Tracer::set_buffer_capacity(8);
  Tracer& t = Tracer::global();
  for (std::size_t i = 0; i < 30; ++i) {
    t.record_instant(kCatNoc, "e", kPidNoc, 0, i);
  }
  EXPECT_EQ(t.recorded(), 8u);
  EXPECT_EQ(t.dropped(), 22u);
  const auto events = t.collect();
  ASSERT_EQ(events.size(), 8u);
  // Drop-oldest: the surviving window is exactly the last 8 events.
  EXPECT_EQ(events.front().ts, 22u);
  EXPECT_EQ(events.back().ts, 29u);
  // The truncated buffer still exports schema-valid Chrome JSON.
  const std::string json = to_chrome_json(events);
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(event_lines(json), 8u);
}

TEST_F(TinyRingTest, MultiThreadDropsConserveCountsAtAnyLaneCount) {
  Tracer::set_buffer_capacity(16);
  constexpr std::size_t kTids = 24;
  constexpr std::size_t kPerTid = 8;
  for (const unsigned threads : {1U, 2U, 8U}) {
    set_global_threads(threads);
    Tracer& t = Tracer::global();
    t.clear();
    // Per-thread rings: which lane hosts which tid varies with the lane
    // count, but every recorded-or-dropped event is accounted somewhere.
    global_pool().parallel_for(
        0, kTids, 1, [&t](std::size_t begin, std::size_t end, unsigned) {
          for (std::size_t tid = begin; tid < end; ++tid) {
            for (std::size_t i = 0; i < kPerTid; ++i) {
              t.record_instant(kCatNoc, "mt", kPidNoc,
                               static_cast<std::uint32_t>(tid), i);
            }
          }
        });
    EXPECT_EQ(t.recorded() + t.dropped(), kTids * kPerTid)
        << "lanes " << threads;
    const auto events = t.collect();
    EXPECT_EQ(events.size(), t.recorded()) << "lanes " << threads;
    // collect() orders (pid, tid, ts) regardless of which ring held what,
    // and the export stays schema-valid under drops.
    for (std::size_t i = 1; i < events.size(); ++i) {
      const bool ordered =
          events[i - 1].tid < events[i].tid ||
          (events[i - 1].tid == events[i].tid &&
           events[i - 1].ts <= events[i].ts);
      ASSERT_TRUE(ordered) << "lanes " << threads << " index " << i;
    }
    EXPECT_EQ(event_lines(to_chrome_json(events)), events.size())
        << "lanes " << threads;
  }
}

TEST_F(TraceTest, ChromeJsonShapeAndMetadata) {
  Tracer& t = Tracer::global();
  t.record_instant(kCatNoc, "hop", kPidNoc, 2, 11);
  t.record_span(kCatLayer, "layer:conv1", kPidAccel, 0, 0, 100);
  const std::string json = to_chrome_json(t.collect());
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"hop\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":100"), std::string::npos);
}

#endif  // NOCW_TRACE_DISABLED

}  // namespace
}  // namespace nocw::obs
