// env_int/env_double must never propagate a typo'd knob into the run: unset
// is silent fallback, malformed or out-of-range is fallback with a (one-time)
// warning — and crucially never garbage like the parsed prefix of "12abc".
#include "util/env.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

namespace nocw {
namespace {

// Each test uses its own variable name: the warn-once registry is global, and
// distinct names keep tests independent of execution order.
class ScopedEnv {
 public:
  ScopedEnv(std::string name, const char* value) : name_(std::move(name)) {
    if (value == nullptr) {
      ::unsetenv(name_.c_str());
    } else {
      ::setenv(name_.c_str(), value, 1);
    }
  }
  ~ScopedEnv() { ::unsetenv(name_.c_str()); }

 private:
  std::string name_;
};

TEST(EnvInt, UnsetReturnsFallback) {
  ScopedEnv e("NOCW_TEST_UNSET_INT", nullptr);
  EXPECT_EQ(env_int("NOCW_TEST_UNSET_INT", 17), 17);
  EXPECT_EQ(env_int("NOCW_TEST_UNSET_INT", 17, 0), 17);
}

TEST(EnvInt, ValidValueParses) {
  ScopedEnv e("NOCW_TEST_VALID_INT", "123");
  EXPECT_EQ(env_int("NOCW_TEST_VALID_INT", 17), 123);
  EXPECT_EQ(env_int("NOCW_TEST_VALID_INT", 17, 0), 123);
}

TEST(EnvInt, MalformedFallsBack) {
  ScopedEnv e("NOCW_TEST_BAD_INT", "abc");
  EXPECT_EQ(env_int("NOCW_TEST_BAD_INT", 17), 17);
}

TEST(EnvInt, TrailingGarbageFallsBack) {
  // "12abc" must not parse as 12 — a mangled knob is a typo, not a value.
  ScopedEnv e("NOCW_TEST_TRAIL_INT", "12abc");
  EXPECT_EQ(env_int("NOCW_TEST_TRAIL_INT", 17), 17);
}

TEST(EnvInt, EmptyStringFallsBack) {
  ScopedEnv e("NOCW_TEST_EMPTY_INT", "");
  EXPECT_EQ(env_int("NOCW_TEST_EMPTY_INT", 17), 17);
}

TEST(EnvInt, BelowMinimumFallsBack) {
  ScopedEnv e("NOCW_TEST_NEG_INT", "-4");
  // Without a floor, negative values pass through untouched...
  EXPECT_EQ(env_int("NOCW_TEST_NEG_INT", 17), -4);
  // ...with a floor (e.g. a thread count), they fall back.
  EXPECT_EQ(env_int("NOCW_TEST_NEG_INT", 17, 0), 17);
}

TEST(EnvInt, AtMinimumIsAccepted) {
  ScopedEnv e("NOCW_TEST_MIN_INT", "0");
  EXPECT_EQ(env_int("NOCW_TEST_MIN_INT", 17, 0), 0);
}

TEST(EnvDouble, UnsetReturnsFallback) {
  ScopedEnv e("NOCW_TEST_UNSET_DBL", nullptr);
  EXPECT_EQ(env_double("NOCW_TEST_UNSET_DBL", 2.5), 2.5);
}

TEST(EnvDouble, ValidValueParses) {
  ScopedEnv e("NOCW_TEST_VALID_DBL", "0.75");
  EXPECT_EQ(env_double("NOCW_TEST_VALID_DBL", 2.5), 0.75);
  EXPECT_EQ(env_double("NOCW_TEST_VALID_DBL", 2.5, 0.0), 0.75);
}

TEST(EnvDouble, MalformedFallsBack) {
  ScopedEnv e("NOCW_TEST_BAD_DBL", "fast");
  EXPECT_EQ(env_double("NOCW_TEST_BAD_DBL", 2.5), 2.5);
}

TEST(EnvDouble, NanFallsBack) {
  ScopedEnv e("NOCW_TEST_NAN_DBL", "nan");
  EXPECT_EQ(env_double("NOCW_TEST_NAN_DBL", 2.5), 2.5);
}

TEST(EnvDouble, BelowMinimumFallsBack) {
  ScopedEnv e("NOCW_TEST_NEG_DBL", "-1.0");
  EXPECT_EQ(env_double("NOCW_TEST_NEG_DBL", 2.5, 0.0), 2.5);
}

TEST(EnvString, UnsetReturnsFallbackSetReturnsValue) {
  {
    ScopedEnv e("NOCW_TEST_STR", nullptr);
    EXPECT_EQ(env_string("NOCW_TEST_STR", "dflt"), "dflt");
  }
  {
    ScopedEnv e("NOCW_TEST_STR", "custom");
    EXPECT_EQ(env_string("NOCW_TEST_STR", "dflt"), "custom");
  }
}

}  // namespace
}  // namespace nocw
