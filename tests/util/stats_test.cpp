#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "util/rng.hpp"

namespace nocw {
namespace {

TEST(RunningStats, EmptyIsZeroCount) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_TRUE(std::isnan(s.min()));
  EXPECT_TRUE(std::isnan(s.max()));
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
  EXPECT_DOUBLE_EQ(s.sum(), 3.5);
}

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic sequence is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeEqualsSinglePass) {
  Xoshiro256pp rng(1);
  RunningStats whole;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(2.0, 3.0);
    whole.add(x);
    (i < 400 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  RunningStats c;
  c.merge(a);
  EXPECT_EQ(c.count(), 2u);
  EXPECT_DOUBLE_EQ(c.mean(), 1.5);
}

TEST(Percentile, EmptyIsNaN) {
  EXPECT_TRUE(std::isnan(percentile_sorted({}, 50.0)));
  EXPECT_TRUE(std::isnan(percentile({}, 99.0)));
}

TEST(Percentile, SingleSampleForEveryP) {
  const std::vector<double> one{42.0};
  for (const double p : {0.0, 1.0, 50.0, 95.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(percentile_sorted(one, p), 42.0) << "p=" << p;
  }
}

TEST(Percentile, AllEqualSamples) {
  const std::vector<double> same(17, 3.5);
  for (const double p : {0.0, 50.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(percentile_sorted(same, p), 3.5) << "p=" << p;
  }
}

TEST(Percentile, LinearInterpolationMatchesNumpy) {
  // numpy.percentile([1,2,3,4], [25,50,75]) -> 1.75, 2.5, 3.25
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 25.0), 1.75);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 50.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 75.0), 3.25);
}

TEST(Percentile, ClampsPToValidRange) {
  const std::vector<double> v{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile_sorted(v, -10.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 100.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 250.0), 3.0);
}

TEST(Percentile, UnsortedConvenienceFormSorts) {
  const std::vector<double> v{9.0, 1.0, 5.0, 3.0, 7.0};
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 9.0);
}

TEST(Mse, IdenticalIsZero) {
  const std::vector<float> a{1.0F, -2.0F, 3.0F};
  EXPECT_DOUBLE_EQ(mean_squared_error(a, a), 0.0);
}

TEST(Mse, KnownDifference) {
  const std::vector<float> a{0.0F, 0.0F};
  const std::vector<float> b{1.0F, -3.0F};
  EXPECT_DOUBLE_EQ(mean_squared_error(a, b), (1.0 + 9.0) / 2.0);
}

TEST(Mse, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(mean_squared_error({}, {}), 0.0);
}

TEST(ValueRange, Basics) {
  const std::vector<float> v{-1.5F, 0.0F, 2.5F};
  EXPECT_DOUBLE_EQ(value_range(v), 4.0);
  EXPECT_DOUBLE_EQ(value_range({}), 0.0);
  const std::vector<float> one{7.0F};
  EXPECT_DOUBLE_EQ(value_range(one), 0.0);
}

TEST(Entropy, UniformBytesIsEight) {
  std::vector<std::uint64_t> hist(256, 5);
  EXPECT_NEAR(shannon_entropy_hist(hist), 8.0, 1e-12);
}

TEST(Entropy, SingleSymbolIsZero) {
  std::vector<std::uint64_t> hist(256, 0);
  hist[42] = 1000;
  EXPECT_DOUBLE_EQ(shannon_entropy_hist(hist), 0.0);
}

TEST(Entropy, TwoEqualSymbolsIsOneBit) {
  std::vector<std::uint64_t> hist(256, 0);
  hist[0] = 10;
  hist[255] = 10;
  EXPECT_NEAR(shannon_entropy_hist(hist), 1.0, 1e-12);
}

TEST(Entropy, EmptyHistogramIsZero) {
  std::vector<std::uint64_t> hist(256, 0);
  EXPECT_DOUBLE_EQ(shannon_entropy_hist(hist), 0.0);
}

TEST(ByteHistogram, CountsAllBytesOfFloats) {
  const std::vector<float> v{0.0F, 0.0F};
  const auto hist = byte_histogram(v);
  std::uint64_t total = 0;
  for (auto c : hist) total += c;
  EXPECT_EQ(total, v.size() * sizeof(float));
  EXPECT_EQ(hist[0], total);  // 0.0f is all-zero bytes
}

TEST(Entropy, RandomFloatsNearlyMaximal) {
  Xoshiro256pp rng(9);
  std::vector<float> v(200000);
  for (auto& x : v) {
    // Random bit patterns (not random reals - exponent bytes of uniform
    // reals are highly skewed).
    const auto bits = static_cast<std::uint32_t>(rng());
    std::memcpy(&x, &bits, sizeof(x));
  }
  const auto hist = byte_histogram(v);
  EXPECT_GT(shannon_entropy_hist(hist), 7.99);
}

}  // namespace
}  // namespace nocw
