#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "util/rng.hpp"

namespace nocw {
namespace {

TEST(RunningStats, EmptyIsZeroCount) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_TRUE(std::isnan(s.min()));
  EXPECT_TRUE(std::isnan(s.max()));
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
  EXPECT_DOUBLE_EQ(s.sum(), 3.5);
}

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic sequence is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeEqualsSinglePass) {
  Xoshiro256pp rng(1);
  RunningStats whole;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(2.0, 3.0);
    whole.add(x);
    (i < 400 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  RunningStats c;
  c.merge(a);
  EXPECT_EQ(c.count(), 2u);
  EXPECT_DOUBLE_EQ(c.mean(), 1.5);
}

TEST(Percentile, EmptyIsNaN) {
  EXPECT_TRUE(std::isnan(percentile_sorted({}, 50.0)));
  EXPECT_TRUE(std::isnan(percentile({}, 99.0)));
}

TEST(Percentile, SingleSampleForEveryP) {
  const std::vector<double> one{42.0};
  for (const double p : {0.0, 1.0, 50.0, 95.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(percentile_sorted(one, p), 42.0) << "p=" << p;
  }
}

TEST(Percentile, AllEqualSamples) {
  const std::vector<double> same(17, 3.5);
  for (const double p : {0.0, 50.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(percentile_sorted(same, p), 3.5) << "p=" << p;
  }
}

TEST(Percentile, LinearInterpolationMatchesNumpy) {
  // numpy.percentile([1,2,3,4], [25,50,75]) -> 1.75, 2.5, 3.25
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 25.0), 1.75);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 50.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 75.0), 3.25);
}

TEST(Percentile, ClampsPToValidRange) {
  const std::vector<double> v{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile_sorted(v, -10.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 100.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 250.0), 3.0);
}

TEST(Percentile, UnsortedConvenienceFormSorts) {
  const std::vector<double> v{9.0, 1.0, 5.0, 3.0, 7.0};
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 9.0);
}

TEST(TailPercentiles, EmptyIsNaNWithZeroCount) {
  const TailPercentiles t = tail_percentiles_sorted({});
  EXPECT_EQ(t.count, 0u);
  EXPECT_TRUE(std::isnan(t.mean));
  EXPECT_TRUE(std::isnan(t.p50));
  EXPECT_TRUE(std::isnan(t.p90));
  EXPECT_TRUE(std::isnan(t.p99));
  EXPECT_TRUE(std::isnan(t.p999));
  EXPECT_TRUE(std::isnan(t.max));
}

TEST(TailPercentiles, SingleSampleIsThatSampleEverywhere) {
  const std::vector<double> one{42.0};
  const TailPercentiles t = tail_percentiles_sorted(one);
  EXPECT_EQ(t.count, 1u);
  EXPECT_DOUBLE_EQ(t.mean, 42.0);
  EXPECT_DOUBLE_EQ(t.p50, 42.0);
  EXPECT_DOUBLE_EQ(t.p90, 42.0);
  EXPECT_DOUBLE_EQ(t.p99, 42.0);
  EXPECT_DOUBLE_EQ(t.p999, 42.0);
  EXPECT_DOUBLE_EQ(t.max, 42.0);
}

TEST(TailPercentiles, AllEqualSamples) {
  const std::vector<double> same(7, 3.5);
  const TailPercentiles t = tail_percentiles_sorted(same);
  EXPECT_DOUBLE_EQ(t.p50, 3.5);
  EXPECT_DOUBLE_EQ(t.p999, 3.5);
  EXPECT_DOUBLE_EQ(t.max, 3.5);
}

TEST(TailPercentiles, SmallSampleP999DegeneratesTowardMax) {
  // n = 100: the p99.9 rank lands between the last two order statistics,
  // so the value interpolates into the max — documented degeneration.
  std::vector<double> v(100);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<double>(i + 1);
  }
  const TailPercentiles t = tail_percentiles_sorted(v);
  EXPECT_DOUBLE_EQ(t.max, 100.0);
  EXPECT_GT(t.p999, t.p99);
  EXPECT_GE(t.p999, 99.0);
  EXPECT_LE(t.p999, 100.0);
  // numpy.percentile(1..100, [50, 90, 99]) -> 50.5, 90.1, 99.01
  EXPECT_DOUBLE_EQ(t.p50, 50.5);
  EXPECT_DOUBLE_EQ(t.p90, 90.1);
  EXPECT_DOUBLE_EQ(t.p99, 99.01);
}

TEST(TailPercentiles, ExactRanksAt1001Samples) {
  // n = 1001: ranks for 50/90/99/99.9 are all integers, so every field is
  // an exact order statistic with no interpolation.
  std::vector<double> v(1001);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<double>(i);
  }
  const TailPercentiles t = tail_percentiles_sorted(v);
  EXPECT_DOUBLE_EQ(t.p50, 500.0);
  EXPECT_DOUBLE_EQ(t.p90, 900.0);
  EXPECT_DOUBLE_EQ(t.p99, 990.0);
  EXPECT_DOUBLE_EQ(t.p999, 999.0);
  EXPECT_DOUBLE_EQ(t.max, 1000.0);
  EXPECT_DOUBLE_EQ(t.mean, 500.0);
}

TEST(TailPercentiles, UnsortedConvenienceFormMatchesSorted) {
  const std::vector<double> unsorted{9.0, 1.0, 5.0, 3.0, 7.0};
  std::vector<double> sorted = unsorted;
  std::sort(sorted.begin(), sorted.end());
  const TailPercentiles a = tail_percentiles(unsorted);
  const TailPercentiles b = tail_percentiles_sorted(sorted);
  EXPECT_EQ(a.count, b.count);
  EXPECT_DOUBLE_EQ(a.mean, b.mean);
  EXPECT_DOUBLE_EQ(a.p50, b.p50);
  EXPECT_DOUBLE_EQ(a.p99, b.p99);
  EXPECT_DOUBLE_EQ(a.p999, b.p999);
  EXPECT_DOUBLE_EQ(a.max, b.max);
}

TEST(Mse, IdenticalIsZero) {
  const std::vector<float> a{1.0F, -2.0F, 3.0F};
  EXPECT_DOUBLE_EQ(mean_squared_error(a, a), 0.0);
}

TEST(Mse, KnownDifference) {
  const std::vector<float> a{0.0F, 0.0F};
  const std::vector<float> b{1.0F, -3.0F};
  EXPECT_DOUBLE_EQ(mean_squared_error(a, b), (1.0 + 9.0) / 2.0);
}

TEST(Mse, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(mean_squared_error({}, {}), 0.0);
}

TEST(ValueRange, Basics) {
  const std::vector<float> v{-1.5F, 0.0F, 2.5F};
  EXPECT_DOUBLE_EQ(value_range(v), 4.0);
  EXPECT_DOUBLE_EQ(value_range({}), 0.0);
  const std::vector<float> one{7.0F};
  EXPECT_DOUBLE_EQ(value_range(one), 0.0);
}

TEST(Entropy, UniformBytesIsEight) {
  std::vector<std::uint64_t> hist(256, 5);
  EXPECT_NEAR(shannon_entropy_hist(hist), 8.0, 1e-12);
}

TEST(Entropy, SingleSymbolIsZero) {
  std::vector<std::uint64_t> hist(256, 0);
  hist[42] = 1000;
  EXPECT_DOUBLE_EQ(shannon_entropy_hist(hist), 0.0);
}

TEST(Entropy, TwoEqualSymbolsIsOneBit) {
  std::vector<std::uint64_t> hist(256, 0);
  hist[0] = 10;
  hist[255] = 10;
  EXPECT_NEAR(shannon_entropy_hist(hist), 1.0, 1e-12);
}

TEST(Entropy, EmptyHistogramIsZero) {
  std::vector<std::uint64_t> hist(256, 0);
  EXPECT_DOUBLE_EQ(shannon_entropy_hist(hist), 0.0);
}

TEST(ByteHistogram, CountsAllBytesOfFloats) {
  const std::vector<float> v{0.0F, 0.0F};
  const auto hist = byte_histogram(v);
  std::uint64_t total = 0;
  for (auto c : hist) total += c;
  EXPECT_EQ(total, v.size() * sizeof(float));
  EXPECT_EQ(hist[0], total);  // 0.0f is all-zero bytes
}

TEST(Entropy, RandomFloatsNearlyMaximal) {
  Xoshiro256pp rng(9);
  std::vector<float> v(200000);
  for (auto& x : v) {
    // Random bit patterns (not random reals - exponent bytes of uniform
    // reals are highly skewed).
    const auto bits = static_cast<std::uint32_t>(rng());
    std::memcpy(&x, &bits, sizeof(x));
  }
  const auto hist = byte_histogram(v);
  EXPECT_GT(shannon_entropy_hist(hist), 7.99);
}

}  // namespace
}  // namespace nocw
