#include "util/check.hpp"

#include <gtest/gtest.h>

#include <string>

namespace nocw {
namespace {

TEST(Check, PassingCheckIsSilent) {
  EXPECT_NO_THROW(NOCW_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(NOCW_CHECK_EQ(4, 4));
  EXPECT_NO_THROW(NOCW_CHECK_GE(5, 5));
  EXPECT_NO_THROW(NOCW_CHECK_LT(-1, 0));
}

TEST(Check, FailingCheckThrowsCheckError) {
  EXPECT_THROW(NOCW_CHECK(false), CheckError);
  EXPECT_THROW(NOCW_CHECK_EQ(1, 2), CheckError);
  EXPECT_THROW(NOCW_CHECK_NE(3, 3), CheckError);
  EXPECT_THROW(NOCW_CHECK_GT(1, 1), CheckError);
}

TEST(Check, CheckErrorIsALogicError) {
  // Pre-existing callers catch std::logic_error; the contract layer must
  // stay substitutable for them.
  EXPECT_THROW(NOCW_CHECK(false), std::logic_error);
}

TEST(Check, MessageCapturesExpressionText) {
  try {
    const int credits = -1;
    NOCW_CHECK_GE(credits, 0);
    FAIL() << "check did not throw";
  } catch (const CheckError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("credits >= 0"), std::string::npos) << msg;
  }
}

TEST(Check, MessageCapturesOperandValues) {
  try {
    const int have = 3;
    const int want = 5;
    NOCW_CHECK_EQ(have, want);
    FAIL() << "check did not throw";
  } catch (const CheckError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("3 vs 5"), std::string::npos) << msg;
  }
}

TEST(Check, MessageCapturesFileAndLine) {
  try {
    NOCW_CHECK(false);
    FAIL() << "check did not throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("check_test.cpp"),
              std::string::npos);
  }
}

TEST(Check, OperandsEvaluatedExactlyOnce) {
  int evals = 0;
  const auto bump = [&evals] { return ++evals; };
  NOCW_CHECK_GE(bump(), 1);
  EXPECT_EQ(evals, 1);
}

#ifndef NDEBUG
TEST(Check, DcheckActiveWithoutNdebug) {
  EXPECT_THROW(NOCW_DCHECK(false), CheckError);
  EXPECT_THROW(NOCW_DCHECK_EQ(1, 2), CheckError);
}
#else
TEST(Check, DcheckCompiledOutUnderNdebug) {
  int evals = 0;
  NOCW_DCHECK(++evals != 0);  // unevaluated: must not run
  NOCW_DCHECK_EQ(++evals, 99);
  EXPECT_EQ(evals, 0);
}
#endif

}  // namespace
}  // namespace nocw
