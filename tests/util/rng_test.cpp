#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace nocw {
namespace {

TEST(SplitMix64, DeterministicForSeed) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro, ReproducibleStream) {
  Xoshiro256pp a(7);
  Xoshiro256pp b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, UniformInUnitInterval) {
  Xoshiro256pp rng(123);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro, UniformRangeRespectsBounds) {
  Xoshiro256pp rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 2.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 2.0);
  }
}

TEST(Xoshiro, UniformMeanApproximatelyHalf) {
  Xoshiro256pp rng(99);
  double acc = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) acc += rng.uniform();
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Xoshiro, BoundedStaysBelowBound) {
  Xoshiro256pp rng(11);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.bounded(17), 17u);
  }
}

TEST(Xoshiro, BoundedZeroReturnsZero) {
  Xoshiro256pp rng(11);
  EXPECT_EQ(rng.bounded(0), 0u);
}

TEST(Xoshiro, BoundedCoversAllResidues) {
  Xoshiro256pp rng(3);
  std::vector<int> seen(8, 0);
  for (int i = 0; i < 4000; ++i) ++seen[rng.bounded(8)];
  for (int r = 0; r < 8; ++r) EXPECT_GT(seen[r], 0) << "residue " << r;
}

TEST(Xoshiro, NormalMomentsMatchStandardNormal) {
  Xoshiro256pp rng(2024);
  const int n = 200000;
  double sum = 0.0;
  double sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.02);
}

TEST(Xoshiro, NormalWithParamsShiftsAndScales) {
  Xoshiro256pp rng(77);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 0.5);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Xoshiro, ChanceExtremes) {
  Xoshiro256pp rng(8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

}  // namespace
}  // namespace nocw
