#include "util/table.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace nocw {
namespace {

TEST(Table, RowArityMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, AlignedOutputContainsAllCells) {
  Table t({"Model", "CR"});
  t.add_row({"LeNet-5", "1.21"});
  t.add_row({"AlexNet", "11.44"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("Model"), std::string::npos);
  EXPECT_NE(s.find("LeNet-5"), std::string::npos);
  EXPECT_NE(s.find("11.44"), std::string::npos);
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table t({"name"});
  t.add_row({"a,b"});
  t.add_row({"say \"hi\""});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, CsvPlainCellsUnquoted) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "x,y\n1,2\n");
}

TEST(Table, WriteCsvCreatesReadableFile) {
  Table t({"k", "v"});
  t.add_row({"alpha", "1"});
  const std::string path = ::testing::TempDir() + "/nocw_table_test.csv";
  ASSERT_TRUE(t.write_csv(path));
  std::ifstream f(path);
  std::stringstream buf;
  buf << f.rdbuf();
  EXPECT_EQ(buf.str(), "k,v\nalpha,1\n");
  std::remove(path.c_str());
}

TEST(Table, WriteCsvFailsOnBadPath) {
  Table t({"k"});
  EXPECT_FALSE(t.write_csv("/nonexistent-dir-xyz/file.csv"));
}

TEST(Formatting, FixedSciPct) {
  EXPECT_EQ(fmt_fixed(1.23456, 2), "1.23");
  EXPECT_EQ(fmt_fixed(-0.5, 1), "-0.5");
  EXPECT_EQ(fmt_sci(12345.0, 2), "1.23e+04");
  EXPECT_EQ(fmt_pct(0.57), "57%");
  EXPECT_EQ(fmt_pct(0.125, 1), "12.5%");
}

}  // namespace
}  // namespace nocw
