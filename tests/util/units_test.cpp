#include "util/units.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <limits>
#include <string>
#include <type_traits>

#include "util/check.hpp"

namespace nocw::units {
namespace {

// --- layout: the retrofit overlays these on bare uint64/double fields ------

static_assert(sizeof(Flits) == 8 && sizeof(FracCycles) == 8 &&
              sizeof(Picojoules) == 8 && sizeof(Words) == 8);
static_assert(std::is_trivially_copyable_v<FracCycles> &&
              std::is_trivially_copyable_v<Flits>);
// Construction must stay explicit: a bare double is not an energy.
static_assert(!std::is_convertible_v<double, Joules>);
static_assert(!std::is_convertible_v<std::uint64_t, Cycles>);

TEST(Units, VocabularyMembership) {
  EXPECT_TRUE(vocab_has("cycles"));
  EXPECT_TRUE(vocab_has("joules"));
  EXPECT_TRUE(vocab_has("flits"));
  EXPECT_FALSE(vocab_has("picojoules"));  // export-scale units only
  EXPECT_FALSE(vocab_has("furlongs"));
  EXPECT_FALSE(vocab_has(""));
  EXPECT_GE(kUnitVocabSize, 10u);
}

TEST(Units, RegistryUnitsComeFromVocabulary) {
  // Every publishable dimension tag must name a vocabulary unit; the empty
  // tags (pJ, mW, words, rates) are the ones the typed registry overloads
  // reject at compile time.
  EXPECT_TRUE(vocab_has(CycleDim::registry_unit));
  EXPECT_TRUE(vocab_has(JouleDim::registry_unit));
  EXPECT_TRUE(vocab_has(FlitDim::registry_unit));
  EXPECT_TRUE(vocab_has(BitDim::registry_unit));
  EXPECT_TRUE(PicojouleDim::registry_unit.empty());
  EXPECT_TRUE(MilliwattDim::registry_unit.empty());
  EXPECT_TRUE(WordDim::registry_unit.empty());
  EXPECT_TRUE((RateDim<JouleDim, FlitDim>::registry_unit.empty()));
}

// --- arithmetic -------------------------------------------------------------

TEST(Units, SameDimensionArithmetic) {
  Cycles c{10};
  c += Cycles{5};
  EXPECT_EQ(c.value(), 15u);
  c = c - Cycles{3};
  EXPECT_EQ(c.value(), 12u);
  ++c;
  EXPECT_EQ(c.value(), 13u);
  EXPECT_EQ((Joules{1.5} + Joules{0.5}).value(), 2.0);
}

TEST(Units, UnsignedOverflowThrowsInsteadOfWrapping) {
  Cycles c{std::numeric_limits<std::uint64_t>::max()};
  EXPECT_THROW(c += Cycles{1}, CheckError);
  EXPECT_THROW(++c, CheckError);
  Flits f{3};
  EXPECT_THROW(f -= Flits{4}, CheckError);
  // The failed operation must not have corrupted the counter.
  EXPECT_EQ(f.value(), 3u);
}

TEST(Units, ScalarScalingAndDivision) {
  EXPECT_EQ((Flits{7} * 3u).value(), 21u);
  EXPECT_EQ((2.0 * Joules{1.5}).value(), 3.0);
  EXPECT_EQ((Cycles{9} / 2u).value(), 4u);  // integer semantics preserved
  EXPECT_THROW(static_cast<void>(Cycles{9} / 0u), CheckError);
}

TEST(Units, SameDimensionDivisionIsAPlainRatio) {
  const double r = FracCycles{150.0} / FracCycles{100.0};
  EXPECT_DOUBLE_EQ(r, 1.5);
  // Bit-identity contract: the typed ratio is exactly double(a)/double(b),
  // the expression every pre-typed call site used.
  EXPECT_EQ(Cycles{7} / Cycles{3}, 7.0 / 3.0);
}

TEST(Units, CrossDimensionDivisionYieldsTypedRate) {
  const FlitsPerCycle th = Flits{80} / Cycles{100};
  EXPECT_DOUBLE_EQ(th.value(), 0.8);
  const JoulesPerFlit epf = Joules{2e-9} / Flits{1000};
  EXPECT_DOUBLE_EQ(epf.value(), 2e-12);
  // rate * denominator recovers the numerator dimension, both operand orders.
  const Joules back = epf * Flits{500};
  EXPECT_DOUBLE_EQ(back.value(), 1e-9);
  const Joules back2 = Flits{500} * epf;
  EXPECT_DOUBLE_EQ(back2.value(), back.value());
}

TEST(Units, ComparisonsAreValueComparisons) {
  EXPECT_TRUE(Cycles{3} < Cycles{4});
  EXPECT_TRUE(Joules{1.0} >= Joules{1.0});
  EXPECT_TRUE(Flits{5} != Flits{6});
}

// --- conversions ------------------------------------------------------------

TEST(Units, PicojouleRoundTripIsExactForTableValues) {
  // Back-annotation tables hold small decimal pJ values; the pJ -> J -> pJ
  // round trip must not drift (the export path multiplies by 1e-12 exactly
  // once, like the pre-typed code).
  for (const double pj : {0.5, 1.0, 2.25, 37.8, 1234.0}) {
    const Joules j = to_joules(Picojoules{pj});
    EXPECT_DOUBLE_EQ(j.value(), pj * 1e-12);
    EXPECT_NEAR(to_picojoules(j).value(), pj, pj * 1e-12);
  }
}

TEST(Units, PowerTimesTimeIsEnergy) {
  const Watts w = to_watts(Milliwatts{250.0});
  EXPECT_DOUBLE_EQ(w.value(), 0.25);
  const Joules j = w * Seconds{2.0};
  EXPECT_DOUBLE_EQ(j.value(), 0.5);
  EXPECT_DOUBLE_EQ((Seconds{2.0} * w).value(), 0.5);
}

TEST(Units, BitsWordsRoundUpAndCheckOverflow) {
  EXPECT_EQ(to_words(Bits{64}, 32).value(), 2u);
  EXPECT_EQ(to_words(Bits{65}, 32).value(), 3u);  // ceil
  EXPECT_EQ(to_words(Bits{0}, 32).value(), 0u);
  EXPECT_THROW(static_cast<void>(to_words(Bits{1}, 0)), CheckError);
  EXPECT_EQ(to_bits(Words{3}, 32).value(), 96u);
  EXPECT_THROW(
      static_cast<void>(
          to_bits(Words{std::numeric_limits<std::uint64_t>::max()}, 2)),
      CheckError);
  EXPECT_EQ(flits_of(Words{17}).value(), 17u);
}

TEST(Units, RoundCyclesRejectsUnrepresentableEstimates) {
  EXPECT_EQ(round_cycles(FracCycles{1234.4}).value(), 1234u);
  EXPECT_EQ(round_cycles(FracCycles{1234.6}).value(), 1235u);
  EXPECT_THROW(static_cast<void>(round_cycles(FracCycles{-1.0})), CheckError);
  EXPECT_THROW(static_cast<void>(round_cycles(FracCycles{std::nan("")})), CheckError);
  EXPECT_THROW(
      static_cast<void>(
          round_cycles(FracCycles{std::numeric_limits<double>::infinity()})),
      CheckError);
  EXPECT_THROW(static_cast<void>(round_cycles(FracCycles{1e19})), CheckError);  // > 2^63
}

TEST(Units, SecondsAtMatchesPreTypedExpression) {
  // The retrofit contract: seconds_at(c, ghz) == c / (ghz * 1e9) with the
  // factors applied in exactly that order, so energy exports stay
  // bit-identical to the pre-typed tree.
  const double cycles = 123456.789;
  const double ghz = 1.3;
  EXPECT_EQ(seconds_at(FracCycles{cycles}, ghz).value(),
            cycles / (ghz * 1e9));
  EXPECT_THROW(static_cast<void>(seconds_at(FracCycles{1.0}, 0.0)), CheckError);
}

TEST(Units, SerializationStability) {
  // Exports print .value() through printf-family formatting; a quantity must
  // serialize exactly like the bare double it wraps.
  const Joules j{1.23456789e-7};
  char typed[64];
  char bare[64];
  std::snprintf(typed, sizeof(typed), "%.8e", j.value());
  std::snprintf(bare, sizeof(bare), "%.8e", 1.23456789e-7);
  EXPECT_STREQ(typed, bare);
  const Cycles c{18446744073709551614ull};
  EXPECT_EQ(std::to_string(c.value()), "18446744073709551614");
}

TEST(Units, DefaultConstructionIsZero) {
  EXPECT_EQ(Cycles{}.value(), 0u);
  EXPECT_EQ(Joules{}.value(), 0.0);
  EXPECT_EQ(FracCycles{}.dvalue(), 0.0);
}

}  // namespace
}  // namespace nocw::units
