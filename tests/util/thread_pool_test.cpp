#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

namespace nocw {
namespace {

TEST(ThreadPool, SizeCountsLanesIncludingCaller) {
  ThreadPool p1(1);
  EXPECT_EQ(p1.size(), 1U);
  ThreadPool p4(4);
  EXPECT_EQ(p4.size(), 4U);
  ThreadPool p0(0);  // clamped
  EXPECT_EQ(p0.size(), 1U);
}

TEST(ThreadPool, EmptyRangeNeverInvokesBody) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.parallel_for(5, 5, 1, [&](std::size_t, std::size_t, unsigned) {
    calls.fetch_add(1);
  });
  pool.parallel_for(7, 3, 1, [&](std::size_t, std::size_t, unsigned) {
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, SerialFastPathIsOneCallOverTheFullRange) {
  ThreadPool pool(1);
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  pool.parallel_for(3, 103, 10,
                    [&](std::size_t b, std::size_t e, unsigned lane) {
                      chunks.emplace_back(b, e);
                      EXPECT_EQ(lane, 0U);
                    });
  ASSERT_EQ(chunks.size(), 1U);
  EXPECT_EQ(chunks[0].first, 3U);
  EXPECT_EQ(chunks[0].second, 103U);
}

TEST(ThreadPool, EveryIndexCoveredExactlyOnce) {
  for (unsigned threads : {2U, 3U, 8U}) {
    for (std::size_t grain : {1UL, 7UL, 64UL}) {
      ThreadPool pool(threads);
      constexpr std::size_t kRange = 1000;
      std::vector<std::atomic<int>> hits(kRange);
      for (auto& h : hits) h.store(0);
      pool.parallel_for(0, kRange, grain,
                        [&](std::size_t b, std::size_t e, unsigned) {
                          for (std::size_t i = b; i < e; ++i) {
                            hits[i].fetch_add(1);
                          }
                        });
      for (std::size_t i = 0; i < kRange; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads "
                                     << threads << " grain " << grain;
      }
    }
  }
}

TEST(ThreadPool, ChunkBoundariesDependOnlyOnGrain) {
  // Chunks must be exactly grain-sized (short tail allowed) regardless of
  // thread count: that is the static partitioning the determinism contract
  // rests on.
  for (unsigned threads : {2U, 5U}) {
    ThreadPool pool(threads);
    std::mutex mu;
    std::set<std::pair<std::size_t, std::size_t>> chunks;
    pool.parallel_for(10, 95, 20,
                      [&](std::size_t b, std::size_t e, unsigned) {
                        std::lock_guard<std::mutex> lk(mu);
                        chunks.emplace(b, e);
                      });
    const std::set<std::pair<std::size_t, std::size_t>> expected{
        {10, 30}, {30, 50}, {50, 70}, {70, 90}, {90, 95}};
    EXPECT_EQ(chunks, expected);
  }
}

TEST(ThreadPool, LanesAreWithinBoundsAndScratchIsPerLane) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> lane_hits(4);
  for (auto& h : lane_hits) h.store(0);
  pool.parallel_for(0, 256, 1, [&](std::size_t, std::size_t, unsigned lane) {
    ASSERT_LT(lane, 4U);
    lane_hits[lane].fetch_add(1);
  });
  int total = 0;
  for (auto& h : lane_hits) total += h.load();
  EXPECT_EQ(total, 256);
}

TEST(ThreadPool, ExceptionPropagatesAndPoolStaysUsable) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 100, 1,
                        [&](std::size_t b, std::size_t, unsigned) {
                          if (b == 42) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool must survive a throwing region and run the next one normally.
  std::atomic<int> sum{0};
  pool.parallel_for(0, 10, 1, [&](std::size_t b, std::size_t e, unsigned) {
    for (std::size_t i = b; i < e; ++i) {
      sum.fetch_add(static_cast<int>(i));
    }
  });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  for (auto& h : hits) h.store(0);
  pool.parallel_for(0, 8, 1, [&](std::size_t ob, std::size_t oe, unsigned) {
    EXPECT_TRUE(ThreadPool::in_parallel_region());
    for (std::size_t o = ob; o < oe; ++o) {
      // A nested region must run inline on the calling lane.
      pool.parallel_for(0, 8, 2,
                        [&](std::size_t ib, std::size_t ie, unsigned) {
                          for (std::size_t i = ib; i < ie; ++i) {
                            hits[o * 8 + i].fetch_add(1);
                          }
                        });
    }
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
  EXPECT_FALSE(ThreadPool::in_parallel_region());
}

TEST(ThreadPool, GrainZeroIsTreatedAsOne) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.parallel_for(0, 5, 0, [&](std::size_t b, std::size_t e, unsigned) {
    count.fetch_add(static_cast<int>(e - b));
  });
  EXPECT_EQ(count.load(), 5);
}

TEST(GlobalPool, SetGlobalThreadsResizes) {
  set_global_threads(3);
  EXPECT_EQ(global_thread_count(), 3U);
  set_global_threads(1);
  EXPECT_EQ(global_thread_count(), 1U);
}

TEST(TaskSeed, PureAndSpread) {
  EXPECT_EQ(task_seed(7, 0), task_seed(7, 0));
  EXPECT_NE(task_seed(7, 0), task_seed(7, 1));
  EXPECT_NE(task_seed(7, 0), task_seed(8, 0));
  // Adjacent indices must land far apart (SplitMix64 finalizer).
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i) seen.insert(task_seed(42, i));
  EXPECT_EQ(seen.size(), 1000U);
}

}  // namespace
}  // namespace nocw
