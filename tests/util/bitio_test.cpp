#include "util/bitio.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "util/rng.hpp"

namespace nocw {
namespace {

TEST(BitIo, SingleBitRoundTrip) {
  BitWriter w;
  w.write(1, 1);
  w.write(0, 1);
  w.write(1, 1);
  EXPECT_EQ(w.bit_count(), 3u);
  BitReader r(w.bytes());
  EXPECT_EQ(r.read(1), 1u);
  EXPECT_EQ(r.read(1), 0u);
  EXPECT_EQ(r.read(1), 1u);
}

TEST(BitIo, FullWidthRoundTrip) {
  BitWriter w;
  const std::uint64_t v = 0xDEADBEEFCAFEBABEULL;
  w.write(v, 64);
  BitReader r(w.bytes());
  EXPECT_EQ(r.read(64), v);
}

TEST(BitIo, ValueMaskedToWidth) {
  BitWriter w;
  w.write(0xFFFF, 4);  // only low 4 bits kept
  BitReader r(w.bytes());
  EXPECT_EQ(r.read(4), 0xFu);
}

TEST(BitIo, MixedWidthsRoundTrip) {
  BitWriter w;
  w.write(0x5, 3);
  w.write(0x1234, 13);
  w.write(1, 1);
  w.write(0x7F, 7);
  BitReader r(w.bytes());
  EXPECT_EQ(r.read(3), 0x5u);
  EXPECT_EQ(r.read(13), 0x1234u & 0x1FFFu);
  EXPECT_EQ(r.read(1), 1u);
  EXPECT_EQ(r.read(7), 0x7Fu);
}

TEST(BitIo, FloatRoundTripExact) {
  BitWriter w;
  for (float f : {0.0F, -0.0F, 1.5F, -3.25e-7F, 1e30F}) w.write_float(f);
  BitReader r(w.bytes());
  for (float f : {0.0F, -0.0F, 1.5F, -3.25e-7F, 1e30F}) {
    const float got = r.read_float();
    EXPECT_EQ(std::memcmp(&got, &f, sizeof(f)), 0);
  }
}

TEST(BitIo, ReadPastEndThrows) {
  BitWriter w;
  w.write(3, 2);
  BitReader r(w.bytes());
  r.read(2);
  // The writer zero-pads to a whole byte, so 6 padding bits remain.
  EXPECT_EQ(r.bits_left(), 6u);
  r.read(6);
  EXPECT_THROW(r.read(1), std::out_of_range);
}

TEST(BitIo, ZeroOrOversizedWidthThrows) {
  BitWriter w;
  EXPECT_THROW(w.write(0, 0), std::invalid_argument);
  EXPECT_THROW(w.write(0, 65), std::invalid_argument);
  w.write(1, 8);
  BitReader r(w.bytes());
  EXPECT_THROW(r.read(0), std::invalid_argument);
  EXPECT_THROW(r.read(65), std::invalid_argument);
}

TEST(BitIo, RandomizedRoundTrip) {
  Xoshiro256pp rng(314);
  for (int trial = 0; trial < 20; ++trial) {
    BitWriter w;
    std::vector<std::pair<std::uint64_t, unsigned>> entries;
    for (int i = 0; i < 200; ++i) {
      const unsigned bits = 1 + static_cast<unsigned>(rng.bounded(64));
      std::uint64_t value = rng();
      if (bits < 64) value &= (std::uint64_t{1} << bits) - 1;
      entries.emplace_back(value, bits);
      w.write(value, bits);
    }
    BitReader r(w.bytes());
    for (const auto& [value, bits] : entries) {
      EXPECT_EQ(r.read(bits), value);
    }
  }
}

}  // namespace
}  // namespace nocw
