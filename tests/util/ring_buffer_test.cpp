#include "util/ring_buffer.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace nocw {
namespace {

TEST(RingBuffer, StartsEmpty) {
  RingBuffer<int> rb(4);
  EXPECT_TRUE(rb.empty());
  EXPECT_FALSE(rb.full());
  EXPECT_EQ(rb.size(), 0u);
  EXPECT_EQ(rb.capacity(), 4u);
  EXPECT_EQ(rb.free_slots(), 4u);
}

TEST(RingBuffer, FifoOrder) {
  RingBuffer<int> rb(3);
  rb.push(1);
  rb.push(2);
  rb.push(3);
  EXPECT_TRUE(rb.full());
  EXPECT_EQ(rb.pop(), 1);
  EXPECT_EQ(rb.pop(), 2);
  EXPECT_EQ(rb.pop(), 3);
  EXPECT_TRUE(rb.empty());
}

TEST(RingBuffer, WrapsAroundCapacity) {
  RingBuffer<int> rb(2);
  for (int i = 0; i < 100; ++i) {
    rb.push(i);
    EXPECT_EQ(rb.pop(), i);
  }
  EXPECT_TRUE(rb.empty());
}

TEST(RingBuffer, InterleavedPushPopKeepsOrder) {
  RingBuffer<int> rb(4);
  rb.push(0);
  rb.push(1);
  EXPECT_EQ(rb.pop(), 0);
  rb.push(2);
  rb.push(3);
  rb.push(4);
  EXPECT_TRUE(rb.full());
  EXPECT_EQ(rb.pop(), 1);
  EXPECT_EQ(rb.pop(), 2);
  EXPECT_EQ(rb.pop(), 3);
  EXPECT_EQ(rb.pop(), 4);
}

TEST(RingBuffer, FrontDoesNotConsume) {
  RingBuffer<std::string> rb(2);
  rb.push("a");
  EXPECT_EQ(rb.front(), "a");
  EXPECT_EQ(rb.size(), 1u);
  EXPECT_EQ(rb.pop(), "a");
}

TEST(RingBuffer, MoveOnlyTypes) {
  RingBuffer<std::unique_ptr<int>> rb(2);
  rb.push(std::make_unique<int>(5));
  auto p = rb.pop();
  ASSERT_TRUE(p);
  EXPECT_EQ(*p, 5);
}

TEST(RingBuffer, ClearResets) {
  RingBuffer<int> rb(3);
  rb.push(1);
  rb.push(2);
  rb.clear();
  EXPECT_TRUE(rb.empty());
  rb.push(9);
  EXPECT_EQ(rb.front(), 9);
}

}  // namespace
}  // namespace nocw
