#include "accel/summary.hpp"

#include <gtest/gtest.h>

#include "nn/models.hpp"

namespace nocw::accel {
namespace {

TEST(Summary, LenetShapesAndMacs) {
  const nn::Model m = nn::make_lenet5();
  const ModelSummary s = summarize(m);
  EXPECT_EQ(s.total_params, m.graph.total_params());

  const LayerSummary* conv1 = s.find("conv_1");
  ASSERT_NE(conv1, nullptr);
  EXPECT_EQ(conv1->output_shape, (std::vector<int>{1, 28, 28, 6}));
  // 28*28*5*5*1*6
  EXPECT_EQ(conv1->macs, 28u * 28 * 25 * 6);
  EXPECT_TRUE(conv1->traffic_bearing);

  const LayerSummary* fc = s.find("dense_1");
  ASSERT_NE(fc, nullptr);
  EXPECT_EQ(fc->macs, 400u * 120);
  EXPECT_EQ(fc->ifmap_elems, 400u);
  EXPECT_EQ(fc->ofmap_elems, 120u);
}

TEST(Summary, PoolAndActivationHandling) {
  const nn::Model m = nn::make_lenet5();
  const ModelSummary s = summarize(m);
  const LayerSummary* pool = s.find("pool_1");
  ASSERT_NE(pool, nullptr);
  EXPECT_EQ(pool->output_shape, (std::vector<int>{1, 14, 14, 6}));
  EXPECT_TRUE(pool->traffic_bearing);
  EXPECT_EQ(pool->macs, 0u);
  EXPECT_GT(pool->ops, 0u);

  const LayerSummary* relu = s.find("conv_1_relu");
  ASSERT_NE(relu, nullptr);
  EXPECT_FALSE(relu->traffic_bearing);  // fused
}

TEST(Summary, TotalMacsMatchKnownModelScale) {
  // VGG-16 at 224x224 is famously ~15.5 GMACs; ResNet50 ~3.9 GMACs.
  const ModelSummary vgg = summarize(nn::make_vgg16());
  EXPECT_NEAR(static_cast<double>(vgg.total_macs), 15.5e9, 0.5e9);
  const ModelSummary rn = summarize(nn::make_resnet50());
  EXPECT_NEAR(static_cast<double>(rn.total_macs), 3.9e9, 0.4e9);
}

TEST(Summary, MobilenetMacsNearPublished) {
  // MobileNet v1: ~569 MMACs.
  const ModelSummary s = summarize(nn::make_mobilenet());
  EXPECT_NEAR(static_cast<double>(s.total_macs), 569e6, 60e6);
}

TEST(Summary, InceptionConcatChannels) {
  const nn::Model m = nn::make_inception_v3();
  const ModelSummary s = summarize(m);
  const LayerSummary* mixed0 = s.find("mixed0");
  ASSERT_NE(mixed0, nullptr);
  EXPECT_EQ(mixed0->output_shape, (std::vector<int>{1, 35, 35, 256}));
  const LayerSummary* mixed10 = s.find("mixed10");
  ASSERT_NE(mixed10, nullptr);
  EXPECT_EQ(mixed10->output_shape.back(), 2048);
}

TEST(Summary, ResnetAddPreservesShape) {
  const nn::Model m = nn::make_resnet50();
  const ModelSummary s = summarize(m);
  const LayerSummary* add = s.find("res2a_add");
  ASSERT_NE(add, nullptr);
  EXPECT_EQ(add->output_shape, (std::vector<int>{1, 56, 56, 256}));
}

TEST(Summary, MacroLayersAreOrderedSubset) {
  const ModelSummary s = summarize(nn::make_lenet5());
  const auto macro = s.macro_layers();
  // conv1, pool1, conv2, pool2, dense1, dense2, dense3 = 7 macro layers
  EXPECT_EQ(macro.size(), 7u);
  for (std::size_t i = 1; i < macro.size(); ++i) {
    EXPECT_LT(macro[i - 1], macro[i]);
  }
}

TEST(Summary, FindUnknownReturnsNull) {
  const ModelSummary s = summarize(nn::make_lenet5());
  EXPECT_EQ(s.find("not_a_layer"), nullptr);
}

}  // namespace
}  // namespace nocw::accel
