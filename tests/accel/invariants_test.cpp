// Accelerator-level contract checks: configuration validation, guarded
// event-count accumulation, and non-negative latency/energy results.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "accel/simulator.hpp"
#include "accel/summary.hpp"
#include "util/check.hpp"
#include "util/units.hpp"

namespace nocw::accel {
namespace {

TEST(AccelInvariants, DefaultConfigPassesChecks) {
  const AcceleratorSim sim;
  EXPECT_NO_THROW(sim.check_invariants());
}

TEST(AccelInvariants, ConstructorRejectsBadConfig) {
  AccelConfig zero_packet;
  zero_packet.packet_flits = 0;
  EXPECT_THROW(AcceleratorSim{zero_packet}, CheckError);

  AccelConfig bad_efficiency;
  bad_efficiency.dram_efficiency = 0.0;
  EXPECT_THROW(AcceleratorSim{bad_efficiency}, CheckError);

  AccelConfig bad_clock;
  bad_clock.noc.clock_ghz = -1.0;
  EXPECT_THROW(AcceleratorSim{bad_clock}, CheckError);

  AccelConfig no_window;
  no_window.noc_window_flits = 0;
  EXPECT_THROW(AcceleratorSim{no_window}, CheckError);
}

TEST(AccelInvariants, EventCountsAccumulateWithoutWrap) {
  power::EventCounts a;
  a.macs = 10;
  power::EventCounts b;
  b.macs = 32;
  a += b;
  EXPECT_EQ(a.macs, 42u);
}

TEST(AccelInvariants, EventCountsAdditionNeverWraps) {
  // A uint64 wrap in the event counters would silently deflate the energy
  // annotation; the guarded += must throw instead.
  power::EventCounts a;
  a.dram_accesses = std::numeric_limits<std::uint64_t>::max() - 1;
  power::EventCounts b;
  b.dram_accesses = 2;
  EXPECT_THROW(a += b, CheckError);
  // The saturating field is untouched after the failed add.
  EXPECT_EQ(a.dram_accesses, std::numeric_limits<std::uint64_t>::max() - 1);

  // Exactly reaching the maximum is still a valid (non-wrapping) sum.
  power::EventCounts c;
  c.macs = std::numeric_limits<std::uint64_t>::max() - 5;
  power::EventCounts d;
  d.macs = 5;
  EXPECT_NO_THROW(c += d);
  EXPECT_EQ(c.macs, std::numeric_limits<std::uint64_t>::max());
}

TEST(AccelInvariants, SimulatedLayerResultsSatisfyContracts) {
  const AcceleratorSim sim;
  LayerSummary layer;
  layer.name = "conv1";
  layer.type = nn::LayerType::Conv2D;
  layer.traffic_bearing = true;
  layer.weight_count = 4000;
  layer.ifmap_elems = 1024;
  layer.ofmap_elems = 1024;
  layer.macs = 500000;
  const LayerResult r = sim.simulate_layer(layer);
  EXPECT_NO_THROW(r.latency.check_invariants());
  EXPECT_NO_THROW(r.energy.check_invariants());
  EXPECT_GT(r.latency.total().value(), 0.0);
  EXPECT_GT(r.energy.total().value(), 0.0);
}

TEST(AccelInvariants, LatencyBreakdownRejectsNegativeComponent) {
  LatencyBreakdown l;
  l.comm_cycles = units::FracCycles{-1.0};
  EXPECT_THROW(l.check_invariants(), CheckError);
}

}  // namespace
}  // namespace nocw::accel
