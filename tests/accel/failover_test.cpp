// PE/MI failover under permanent router outages (DESIGN.md §13): when
// fault-aware routing quarantines an endpoint's router, the simulator drops
// it from the live MI/PE sets at construction and redistributes its traffic
// share and compute throughput across the survivors — the inference
// completes degraded instead of deadlocking.
#include "accel/simulator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "nn/models.hpp"
#include "noc/fault.hpp"
#include "util/check.hpp"

namespace nocw::accel {
namespace {

AccelConfig degraded_cfg(int outages, std::uint64_t seed = 42) {
  AccelConfig cfg;
  cfg.noc.fault.permanent_router_outages = outages;
  cfg.noc.fault.seed = seed;
  cfg.noc.resilience.route_mode = noc::RouteMode::WestFirst;
  cfg.noc_window_flits = 4000;  // keep unit tests quick
  return cfg;
}

TEST(Failover, LiveListsEqualFullSetsWithoutFaults) {
  AccelConfig cfg;
  AcceleratorSim sim(cfg);
  const auto mis = cfg.noc.memory_interface_nodes();
  const auto pes = cfg.noc.pe_nodes();
  ASSERT_EQ(sim.live_memory_interfaces().size(), mis.size());
  ASSERT_EQ(sim.live_processing_elements().size(), pes.size());
  for (std::size_t i = 0; i < mis.size(); ++i) {
    EXPECT_EQ(sim.live_memory_interfaces()[i], mis[i]);
  }
  for (std::size_t i = 0; i < pes.size(); ++i) {
    EXPECT_EQ(sim.live_processing_elements()[i], pes[i]);
  }
}

TEST(Failover, DeadRoutersAreDroppedFromLiveLists) {
  const AccelConfig cfg = degraded_cfg(2);
  const noc::FaultModel fm(cfg.noc.fault, cfg.noc.node_count(),
                           cfg.noc.width);
  ASSERT_EQ(fm.dead_routers().size(), 2u);
  AcceleratorSim sim(cfg);
  // Dead endpoints are always dropped; the connectivity filter may drop a
  // few more (west-first cannot serve every pair around a dead transit
  // router), but never everything.
  EXPECT_LE(sim.live_memory_interfaces().size() +
                sim.live_processing_elements().size(),
            static_cast<std::size_t>(cfg.noc.node_count()) -
                fm.dead_routers().size());
  EXPECT_FALSE(sim.live_memory_interfaces().empty());
  EXPECT_FALSE(sim.live_processing_elements().empty());
  for (const int dead : fm.dead_routers()) {
    const auto mis = sim.live_memory_interfaces();
    const auto pes = sim.live_processing_elements();
    EXPECT_EQ(std::find(mis.begin(), mis.end(), dead), mis.end());
    EXPECT_EQ(std::find(pes.begin(), pes.end(), dead), pes.end());
  }
}

TEST(Failover, DegradedInferenceCompletesAtHigherCost) {
  const ModelSummary s = summarize(nn::make_lenet5());
  AccelConfig healthy;
  healthy.noc_window_flits = 4000;
  AcceleratorSim healthy_sim(healthy);
  const InferenceResult base = healthy_sim.simulate(s);

  AcceleratorSim degraded_sim(degraded_cfg(2));
  const InferenceResult deg = degraded_sim.simulate(s);

  // Fewer PEs and detoured routes: the inference still finishes (no drain
  // timeout — simulate() would have thrown) but pays for the failover.
  EXPECT_GT(deg.latency.total(), base.latency.total());
  EXPECT_GT(deg.energy.total(), base.energy.total());
}

TEST(Failover, AllButOneRouterDeadIsRejected) {
  // 15 of 16 routers dead leaves at most one endpoint class alive — the
  // simulator must refuse to pretend such a mesh can run an inference.
  EXPECT_THROW(AcceleratorSim{degraded_cfg(15)}, CheckError);
}

TEST(Failover, EscalationWithoutAdaptiveRoutingIsRejected) {
  AccelConfig cfg;
  cfg.noc.resilience.escalate = true;  // quarantine without rerouting
  EXPECT_THROW(AcceleratorSim{cfg}, CheckError);
}

TEST(Failover, PhaseCacheStillHitsUnderFailover) {
  // The phase-cache key folds in the fault/routing environment signature;
  // within one degraded simulator, repeated inferences must still reuse the
  // cycle-accurate phase runs and reproduce identical results.
  const ModelSummary s = summarize(nn::make_lenet5());
  AcceleratorSim sim(degraded_cfg(1));
  const InferenceResult a = sim.simulate(s);
  const std::uint64_t misses_after_first = sim.noc_phase_cache_misses();
  const InferenceResult b = sim.simulate(s);
  EXPECT_EQ(sim.noc_phase_cache_misses(), misses_after_first);
  EXPECT_GT(sim.noc_phase_cache_hits(), 0u);
  EXPECT_EQ(a.latency.total(), b.latency.total());
  EXPECT_EQ(a.energy.total(), b.energy.total());
}

}  // namespace
}  // namespace nocw::accel
