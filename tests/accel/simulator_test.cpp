#include "accel/simulator.hpp"

#include <gtest/gtest.h>

#include "nn/models.hpp"

namespace nocw::accel {
namespace {

AccelConfig fast_cfg() {
  AccelConfig cfg;
  cfg.noc_window_flits = 4000;  // keep unit tests quick
  return cfg;
}

TEST(Simulator, LenetInferenceProducesBreakdowns) {
  const nn::Model m = nn::make_lenet5();
  const ModelSummary s = summarize(m);
  AcceleratorSim sim(fast_cfg());
  const InferenceResult r = sim.simulate(s);
  EXPECT_EQ(r.layers.size(), 7u);  // macro layers only
  EXPECT_GT(r.latency.memory_cycles.value(), 0.0);
  EXPECT_GT(r.latency.comm_cycles.value(), 0.0);
  EXPECT_GT(r.latency.compute_cycles.value(), 0.0);
  EXPECT_GT(r.energy.total().value(), 0.0);
}

TEST(Simulator, MainMemoryDominatesLatencyForLenet) {
  // The paper's Fig. 2 observation.
  const ModelSummary s = summarize(nn::make_lenet5());
  AcceleratorSim sim(fast_cfg());
  const InferenceResult r = sim.simulate(s);
  EXPECT_GT(r.latency.memory_cycles, r.latency.compute_cycles);
}

TEST(Simulator, FcLayerDominatedByWeightTraffic) {
  const ModelSummary s = summarize(nn::make_lenet5());
  AcceleratorSim sim(fast_cfg());
  const InferenceResult r = sim.simulate(s);
  const LayerResult* fc = nullptr;
  for (const auto& l : r.layers) {
    if (l.name == "dense_1") fc = &l;
  }
  ASSERT_NE(fc, nullptr);
  // dense_1 has 48k weights vs a 400-element ifmap: data movement (memory +
  // NoC) dwarfs compute, which is the premise of the whole paper.
  EXPECT_GT(fc->latency.memory_cycles + fc->latency.comm_cycles,
            0.9 * fc->latency.total());
  EXPECT_LT(fc->latency.compute_cycles, 0.05 * fc->latency.total());
}

TEST(Simulator, CompressionPlanReducesLatencyAndEnergy) {
  const ModelSummary s = summarize(nn::make_lenet5());
  AcceleratorSim sim(fast_cfg());
  const InferenceResult base = sim.simulate(s);

  CompressionPlan plan;
  const LayerSummary* fc = s.find("dense_1");
  ASSERT_NE(fc, nullptr);
  LayerCompression lc;
  lc.compressed_bits = fc->weight_count * 32 / 4;  // pretend CR = 4
  lc.weight_count = fc->weight_count;
  plan["dense_1"] = lc;
  const InferenceResult comp = sim.simulate(s, &plan);

  EXPECT_LT(comp.latency.total().value(), base.latency.total().value());
  EXPECT_LT(comp.energy.total().value(), base.energy.total().value());
  // Compute time is untouched by compression.
  EXPECT_DOUBLE_EQ(comp.latency.compute_cycles.value(),
                   base.latency.compute_cycles.value());
}

TEST(Simulator, CompressionChargesDecompressorEnergy) {
  const ModelSummary s = summarize(nn::make_lenet5());
  AcceleratorSim sim(fast_cfg());
  const LayerSummary* fc = s.find("dense_1");
  LayerCompression lc;
  lc.compressed_bits = fc->weight_count * 32;  // CR = 1: same traffic
  lc.weight_count = fc->weight_count;
  const LayerResult base = sim.simulate_layer(*fc, nullptr);
  const LayerResult comp = sim.simulate_layer(*fc, &lc);
  // Identical traffic but extra decompressor accumulate energy.
  EXPECT_GT(comp.energy.computation.dynamic_j.value(),
            base.energy.computation.dynamic_j.value());
}

TEST(Simulator, NonTrafficLayersContributeNothing) {
  const ModelSummary s = summarize(nn::make_lenet5());
  AcceleratorSim sim(fast_cfg());
  const LayerSummary* relu = s.find("conv_1_relu");
  ASSERT_NE(relu, nullptr);
  const LayerResult r = sim.simulate_layer(*relu, nullptr);
  EXPECT_DOUBLE_EQ(r.latency.total().value(), 0.0);
  EXPECT_DOUBLE_EQ(r.energy.total().value(), 0.0);
}

TEST(Simulator, WindowSamplingConsistentWithFullRun) {
  // A mid-size layer run with a big window (full simulation) vs a small
  // window (sampled + scaled): communication estimates agree within 15%.
  const ModelSummary s = summarize(nn::make_lenet5());
  const LayerSummary* fc = s.find("dense_1");  // ~24k flits
  AccelConfig full_cfg;
  full_cfg.noc_window_flits = 1 << 30;
  AccelConfig win_cfg;
  win_cfg.noc_window_flits = 3000;
  const LayerResult full = AcceleratorSim(full_cfg).simulate_layer(*fc);
  const LayerResult win = AcceleratorSim(win_cfg).simulate_layer(*fc);
  EXPECT_NEAR(win.latency.comm_cycles / full.latency.comm_cycles, 1.0, 0.15);
}

TEST(Simulator, DeterministicAcrossRuns) {
  const ModelSummary s = summarize(nn::make_lenet5());
  AcceleratorSim sim(fast_cfg());
  const InferenceResult a = sim.simulate(s);
  const InferenceResult b = sim.simulate(s);
  EXPECT_DOUBLE_EQ(a.latency.total().value(), b.latency.total().value());
  EXPECT_DOUBLE_EQ(a.energy.total().value(), b.energy.total().value());
}

TEST(Simulator, MobilenetSimulatesInReasonableTime) {
  const ModelSummary s = summarize(nn::make_mobilenet());
  AcceleratorSim sim(fast_cfg());
  const InferenceResult r = sim.simulate(s);
  EXPECT_GT(r.layers.size(), 20u);
  EXPECT_GT(r.latency.total().value(), 0.0);
}

}  // namespace
}  // namespace nocw::accel
