// Cross-module integration tests: the full paper pipeline wired together.
#include <gtest/gtest.h>

#include "accel/simulator.hpp"
#include "core/codec.hpp"
#include "core/decompressor_unit.hpp"
#include "eval/flow.hpp"
#include "eval/layer_selection.hpp"
#include "nn/models.hpp"
#include "nn/serialize.hpp"
#include "nn/train.hpp"

namespace nocw {
namespace {

TEST(Pipeline, CompressSimulateEndToEnd) {
  // Model -> layer selection -> compress -> accel plan -> both sims.
  nn::Model model = nn::make_lenet5();
  const int selected = eval::select_layer(model);
  core::CodecConfig ccfg;
  ccfg.delta_percent = 15.0;
  const core::CompressedLayer compressed =
      core::compress(model.graph.layer(selected).kernel(), ccfg);

  const accel::ModelSummary summary = accel::summarize(model);
  accel::AccelConfig acfg;
  acfg.noc_window_flits = 4000;
  accel::AcceleratorSim sim(acfg);
  const accel::InferenceResult base = sim.simulate(summary);
  accel::CompressionPlan plan;
  plan[model.graph.layer(selected).name()] = accel::LayerCompression{
      compressed.compressed_bits(), compressed.original_count};
  const accel::InferenceResult comp = sim.simulate(summary, &plan);

  // The headline claim, end to end: compression reduces both metrics, by a
  // factor consistent with the weight-traffic share and the CR.
  EXPECT_LT(comp.latency.total(), base.latency.total());
  EXPECT_LT(comp.energy.total(), base.energy.total());
  const double reduction = 1.0 - comp.latency.total() / base.latency.total();
  EXPECT_GT(reduction, 0.15);
  EXPECT_LT(reduction, 0.80);
}

TEST(Pipeline, DeltaEvaluatorAgreesWithManualTailReplay) {
  nn::Model model = nn::make_lenet5();
  eval::EvalConfig cfg;
  cfg.probes = 3;
  cfg.topk = 3;
  eval::DeltaEvaluator ev(model, cfg);
  const eval::DeltaPoint p = ev.evaluate(10.0);

  // Manual path: compress, install, full forward, compare retention.
  nn::Model fresh = nn::make_lenet5();  // same seed -> same weights
  const int selected = eval::select_layer(fresh);
  core::CodecConfig ccfg;
  ccfg.delta_percent = 10.0;
  const auto compressed =
      core::compress(fresh.graph.layer(selected).kernel(), ccfg);
  EXPECT_EQ(compressed.compressed_bits(), p.compression.compressed_bits);
  EXPECT_NEAR(compressed.compression_ratio(), p.report.cr, 1e-12);
}

TEST(Pipeline, TrainedModelSurvivesCheckpointAndCompression) {
  nn::Model model = nn::make_lenet5();
  const nn::Dataset train = nn::make_digits(200, 95);
  const nn::Dataset test = nn::make_digits(60, 96);
  nn::TrainConfig tcfg;
  tcfg.epochs = 2;
  tcfg.learning_rate = 0.1F;
  (void)nn::train_classifier(model.graph, train, tcfg);
  const double acc = nn::evaluate_top1(model.graph, test);

  const std::string path = ::testing::TempDir() + "/pipeline_lenet.weights";
  ASSERT_TRUE(nn::save_weights(model.graph, path));
  nn::Model reloaded = nn::make_lenet5(/*seed=*/999);  // different init
  ASSERT_TRUE(nn::load_weights(reloaded.graph, path));
  EXPECT_DOUBLE_EQ(nn::evaluate_top1(reloaded.graph, test), acc);
  std::remove(path.c_str());

  // Compress-decompress the checkpointed model's selected layer at δ=0 and
  // verify accuracy is essentially unchanged.
  eval::EvalConfig cfg;
  cfg.topk = 1;
  eval::DeltaEvaluator ev(reloaded, test, cfg);
  const eval::DeltaPoint p = ev.evaluate(0.0);
  EXPECT_NEAR(p.accuracy, acc, 0.1);
}

TEST(Pipeline, CheckpointRejectsWrongArchitecture) {
  nn::Model lenet = nn::make_lenet5();
  const std::string path = ::testing::TempDir() + "/pipeline_arch.weights";
  ASSERT_TRUE(nn::save_weights(lenet.graph, path));
  nn::Model mobilenet = nn::make_mobilenet();
  // Wrong architecture is a descriptive error, not a silent false: the
  // checkpoint exists and parses, it just belongs to another model.
  EXPECT_THROW(nn::load_weights(mobilenet.graph, path), nn::SerializeError);
  std::remove(path.c_str());
  // A missing file stays recoverable (callers retrain).
  EXPECT_FALSE(nn::load_weights(lenet.graph, "/nonexistent.weights"));
}

TEST(Pipeline, DecompressorUnitFeedsSameWeightsAsEvaluator) {
  // The weights the accuracy evaluator installs are exactly what the PE
  // hardware would reconstruct flit by flit.
  nn::Model model = nn::make_lenet5();
  const int selected = eval::select_layer(model);
  const auto kernel = model.graph.layer(selected).kernel();
  core::CodecConfig ccfg;
  ccfg.delta_percent = 12.0;
  const auto layer = core::compress(kernel, ccfg);
  const auto sw = core::decompress(layer);

  core::DecompressorUnit du;
  std::size_t i = 0;
  for (const auto& seg : layer.segments) {
    du.load(seg);
    while (du.busy()) {
      const auto w = du.tick();
      ASSERT_TRUE(w.has_value());
      ASSERT_LT(i, sw.size());
      EXPECT_EQ(*w, sw[i]) << i;
      ++i;
    }
  }
  EXPECT_EQ(i, sw.size());
}

TEST(Pipeline, SerializedStreamFitsMemoryFootprintClaim) {
  // serialize() output size must match the CR the metrics report (within
  // the fixed header).
  nn::Model model = nn::make_lenet5();
  const int selected = eval::select_layer(model);
  const auto kernel = model.graph.layer(selected).kernel();
  core::CodecConfig ccfg;
  ccfg.delta_percent = 15.0;
  const auto layer = core::compress(kernel, ccfg);
  const auto bytes = core::serialize(layer);
  const double actual_cr =
      static_cast<double>(kernel.size() * 4) / static_cast<double>(bytes.size());
  EXPECT_NEAR(actual_cr, layer.compression_ratio(), 0.05);
}

}  // namespace
}  // namespace nocw
