// Randomized property tests (fuzz-style) across module boundaries.
#include <gtest/gtest.h>

#include <vector>

#include "core/baseline_codecs.hpp"
#include "core/codec.hpp"
#include "noc/network.hpp"
#include "noc/traffic.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace nocw {
namespace {

// --- Codec fuzz -------------------------------------------------------------

class CodecFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecFuzz, RandomConfigRoundTrips) {
  Xoshiro256pp rng(GetParam());
  // Random weight distribution shape.
  const std::size_t n = 100 + rng.bounded(20000);
  std::vector<float> w(n);
  const int shape = static_cast<int>(rng.bounded(4));
  for (auto& x : w) {
    switch (shape) {
      case 0: x = static_cast<float>(rng.normal(0.0, 0.1)); break;
      case 1: x = static_cast<float>(rng.uniform(-1.0, 1.0)); break;
      case 2: {  // heavy tail
        const double u = rng.uniform() - 0.5;
        x = static_cast<float>((u < 0 ? -1 : 1) * 0.02 *
                               std::log(1.0 - 2.0 * std::abs(u)));
        break;
      }
      default:  // quantized-ish plateaus
        x = static_cast<float>(rng.bounded(16)) * 0.1F;
        break;
    }
  }
  core::CodecConfig cfg;
  cfg.delta_percent = rng.uniform(0.0, 60.0);
  cfg.coef_bits = 16 + static_cast<unsigned>(rng.bounded(17));
  cfg.length_bits = 4 + static_cast<unsigned>(rng.bounded(7));

  const auto layer = core::compress(w, cfg);
  // Invariants: segments tile, decompress sizes match, MSE equals the
  // replayed reconstruction error, serialization round-trips bit-exactly.
  std::uint64_t total = 0;
  for (const auto& s : layer.segments) {
    ASSERT_GE(s.length, 1u);
    total += s.length;
  }
  ASSERT_EQ(total, w.size());
  const auto out = core::decompress(layer);
  ASSERT_EQ(out.size(), w.size());
  EXPECT_NEAR(layer.mse(), mean_squared_error(w, out), 1e-10);
  const auto bytes = core::serialize(layer);
  const auto back = core::deserialize(bytes);
  EXPECT_EQ(core::decompress(back), out);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzz,
                         ::testing::Range<std::uint64_t>(1, 25));

// --- Lossless codec fuzz ------------------------------------------------------

class LosslessFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LosslessFuzz, RleAndHuffmanRoundTripArbitraryBytes) {
  Xoshiro256pp rng(GetParam() * 7919);
  std::vector<std::uint8_t> data(rng.bounded(50000));
  const int mode = static_cast<int>(rng.bounded(3));
  for (auto& b : data) {
    switch (mode) {
      case 0: b = static_cast<std::uint8_t>(rng() & 0xFF); break;
      case 1: b = static_cast<std::uint8_t>(rng.bounded(4)); break;
      default: b = rng.chance(0.3) ? 0xA5 : 0x00; break;  // escape-heavy
    }
  }
  EXPECT_EQ(core::rle_decode(core::rle_encode(data)), data);
  EXPECT_EQ(core::huffman_decode(core::huffman_encode(data)), data);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LosslessFuzz,
                         ::testing::Range<std::uint64_t>(1, 16));

// --- NoC conservation fuzz ------------------------------------------------------

class NocFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NocFuzz, FlitConservationUnderRandomTraffic) {
  Xoshiro256pp rng(GetParam() * 104729);
  noc::NocConfig cfg;
  cfg.width = 2 + static_cast<int>(rng.bounded(4));
  cfg.height = 2 + static_cast<int>(rng.bounded(4));
  cfg.buffer_depth = 1 + static_cast<int>(rng.bounded(8));
  cfg.routing = rng.chance(0.5) ? noc::Routing::XY : noc::Routing::YX;
  noc::Network net(cfg);
  const int packets = 50 + static_cast<int>(rng.bounded(400));
  const auto ps = noc::uniform_random_traffic(
      cfg, packets, 1 + static_cast<std::uint32_t>(rng.bounded(12)),
      GetParam());
  net.add_packets(ps);
  // Must drain (deadlock-free routing) and conserve every flit.
  net.run_until_drained(5000000);
  EXPECT_EQ(net.stats().flits_injected, noc::total_flits(ps));
  EXPECT_EQ(net.stats().flits_ejected, noc::total_flits(ps));
  EXPECT_EQ(net.stats().packets_ejected, ps.size());
  EXPECT_EQ(net.undelivered_flits(), 0u);
  // Latency of every packet is at least its hop count.
  EXPECT_GE(net.stats().packet_latency.min(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NocFuzz,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace nocw
