#include "power/energy_model.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace nocw::power {
namespace {

TEST(EnergyModel, ZeroEventsZeroTimeIsZero) {
  const EnergyBreakdown e =
      annotate(EventCounts{}, units::Seconds{0.0}, EnergyTable{}, PlatformShape{});
  EXPECT_DOUBLE_EQ(e.total().value(), 0.0);
}

TEST(EnergyModel, DynamicScalesLinearlyWithEvents) {
  EnergyTable t;
  EventCounts a;
  a.macs = 1000;
  EventCounts b;
  b.macs = 2000;
  const auto ea = annotate(a, units::Seconds{0.0}, t, PlatformShape{});
  const auto eb = annotate(b, units::Seconds{0.0}, t, PlatformShape{});
  EXPECT_NEAR(eb.computation.dynamic_j.value(),
              2.0 * ea.computation.dynamic_j.value(), 1e-18);
}

TEST(EnergyModel, LeakageScalesWithTime) {
  EnergyTable t;
  const auto e1 = annotate(EventCounts{}, units::Seconds{1e-6}, t, PlatformShape{});
  const auto e2 = annotate(EventCounts{}, units::Seconds{2e-6}, t, PlatformShape{});
  EXPECT_NEAR(e2.communication.leakage_j.value(),
              2.0 * e1.communication.leakage_j.value(), 1e-15);
  EXPECT_GT(e1.main_memory.leakage_j.value(), 0.0);
}

TEST(EnergyModel, ComponentsRouteToCorrectBuckets) {
  EnergyTable t;
  EventCounts ev;
  ev.dram_accesses = 100;
  const auto e = annotate(ev, units::Seconds{0.0}, t, PlatformShape{});
  EXPECT_GT(e.main_memory.dynamic_j.value(), 0.0);
  EXPECT_DOUBLE_EQ(e.communication.dynamic_j.value(), 0.0);
  EXPECT_DOUBLE_EQ(e.computation.dynamic_j.value(), 0.0);
  EXPECT_DOUBLE_EQ(e.local_memory.dynamic_j.value(), 0.0);
}

TEST(EnergyModel, KnownHandComputedCase) {
  EnergyTable t;
  EventCounts ev;
  ev.router_traversals = 10;  // 10 * 8 pJ
  ev.link_traversals = 10;    // 10 * 4 pJ
  const auto e = annotate(ev, units::Seconds{0.0}, t, PlatformShape{});
  EXPECT_NEAR(e.communication.dynamic_j.value(), 120e-12, 1e-15);
}

TEST(EnergyModel, DramWordDominatesNocFlit) {
  // The architectural premise of the paper: off-chip access costs far more
  // than moving the same word across the NoC.
  EnergyTable t;
  const units::Picojoules noc_per_flit =
      t.router_traversal_pj + t.link_traversal_pj + t.buffer_read_pj +
      t.buffer_write_pj;
  EXPECT_GT(t.dram_access_pj.value(), 10.0 * noc_per_flit.value());
}

TEST(EnergyModel, EventCountsAccumulate) {
  EventCounts a;
  a.macs = 5;
  a.dram_accesses = 7;
  EventCounts b;
  b.macs = 3;
  b.sram_reads = 2;
  a += b;
  EXPECT_EQ(a.macs, 8u);
  EXPECT_EQ(a.dram_accesses, 7u);
  EXPECT_EQ(a.sram_reads, 2u);
}

TEST(EnergyModel, AnnotateRejectsNegativeSeconds) {
  EXPECT_THROW(annotate(EventCounts{}, units::Seconds{-1e-9}, EnergyTable{}, PlatformShape{}),
               CheckError);
}

TEST(EnergyModel, AnnotateRejectsNonPositivePlatformShape) {
  EXPECT_THROW(
      annotate(EventCounts{}, units::Seconds{0.0}, EnergyTable{}, PlatformShape{0, 12}),
      CheckError);
  EXPECT_THROW(
      annotate(EventCounts{}, units::Seconds{0.0}, EnergyTable{}, PlatformShape{16, -1}),
      CheckError);
}

TEST(EnergyModel, AnnotatedBreakdownIsNonNegative) {
  EventCounts ev;
  ev.macs = 123;
  ev.dram_accesses = 45;
  ev.router_traversals = 67;
  const auto e = annotate(ev, units::Seconds{1e-6}, EnergyTable{}, PlatformShape{});
  EXPECT_NO_THROW(e.check_invariants());
}

TEST(EnergyModel, ComponentCheckRejectsNegativeJoules) {
  EnergyComponent c;
  c.dynamic_j = units::Joules{-1e-12};
  EXPECT_THROW(c.check_invariants(), CheckError);
}

TEST(EnergyModel, BreakdownAccumulates) {
  EnergyTable t;
  EventCounts ev;
  ev.macs = 100;
  EnergyBreakdown total;
  const auto one = annotate(ev, units::Seconds{1e-6}, t, PlatformShape{});
  total += one;
  total += one;
  EXPECT_NEAR(total.total().value(), 2.0 * one.total().value(), 1e-15);
}

}  // namespace
}  // namespace nocw::power
