#include "power/cacti_like.hpp"

#include <gtest/gtest.h>

namespace nocw::power {
namespace {

TEST(CactiLike, AnchoredAtPeSram) {
  const MemoryEstimate e = sram_estimate(8192, 64);
  EXPECT_NEAR(e.read_energy_pj.value(), 1.6, 1e-9);
  EXPECT_NEAR(e.write_energy_pj.value(), 1.8, 1e-9);
  EXPECT_NEAR(e.leakage_mw.value(), 0.25, 1e-9);
  EXPECT_EQ(e.access_cycles.value(), 1u);
}

TEST(CactiLike, EnergyGrowsSublinearlyWithCapacity) {
  const auto small = sram_estimate(8192, 64);
  const auto big = sram_estimate(8192 * 16, 64);
  EXPECT_GT(big.read_energy_pj.value(), small.read_energy_pj.value());
  // sqrt scaling: 16x capacity -> 4x energy, far below 16x.
  EXPECT_NEAR(big.read_energy_pj / small.read_energy_pj, 4.0, 0.01);
}

TEST(CactiLike, LeakageGrowsLinearlyWithCapacity) {
  const auto small = sram_estimate(8192, 64);
  const auto big = sram_estimate(8192 * 4, 64);
  EXPECT_NEAR(big.leakage_mw / small.leakage_mw, 4.0, 0.01);
}

TEST(CactiLike, WidthScalesEnergy) {
  const auto narrow = sram_estimate(8192, 32);
  const auto wide = sram_estimate(8192, 128);
  EXPECT_NEAR(wide.read_energy_pj / narrow.read_energy_pj, 4.0, 0.01);
}

TEST(CactiLike, LargeArraysTakeMoreCycles) {
  EXPECT_GE(sram_estimate(1 << 20, 64).access_cycles.value(), 2u);
}

TEST(CactiLike, DramFarCostlierThanSram) {
  const auto sram = sram_estimate(8192, 64);
  const auto dram = dram_estimate(1ULL << 30, 64);
  EXPECT_GT(dram.read_energy_pj, 100.0 * sram.read_energy_pj);
  EXPECT_GT(dram.access_cycles.value(), 10u);
}

TEST(CactiLike, DramBackgroundGrowsWithCapacity) {
  const auto one_gb = dram_estimate(1ULL << 30, 64);
  const auto four_gb = dram_estimate(4ULL << 30, 64);
  EXPECT_GT(four_gb.leakage_mw, one_gb.leakage_mw);
}

}  // namespace
}  // namespace nocw::power
