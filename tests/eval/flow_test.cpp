#include "eval/flow.hpp"

#include <gtest/gtest.h>

#include "nn/train.hpp"

namespace nocw::eval {
namespace {

EvalConfig lenet_cfg() {
  EvalConfig cfg;
  cfg.topk = 1;
  return cfg;
}

TEST(Flow, AgreementModeBaselineIsPerfect) {
  nn::Model m = nn::make_lenet5();
  EvalConfig cfg;
  cfg.probes = 4;
  cfg.topk = 3;
  DeltaEvaluator ev(m, cfg);
  EXPECT_DOUBLE_EQ(ev.baseline_accuracy(), 1.0);
  EXPECT_EQ(ev.selected_layer(), "dense_1");
  EXPECT_NEAR(ev.selected_fraction(), 0.78, 0.03);
}

TEST(Flow, ZeroDeltaBarelyPerturbs) {
  nn::Model m = nn::make_lenet5();
  EvalConfig cfg;
  cfg.probes = 6;
  cfg.topk = 3;
  DeltaEvaluator ev(m, cfg);
  const DeltaPoint p = ev.evaluate(0.0);
  EXPECT_GT(p.accuracy, 0.5);
  EXPECT_GT(p.report.cr, 1.0);
  EXPECT_GT(p.compression.compressed_bits, 0u);
}

TEST(Flow, AccuracyDegradesWithDelta) {
  nn::Model m = nn::make_lenet5();
  EvalConfig cfg;
  cfg.probes = 8;
  cfg.topk = 3;
  DeltaEvaluator ev(m, cfg);
  const double acc_small = ev.evaluate(0.0).accuracy;
  const double acc_huge = ev.evaluate(500.0).accuracy;
  EXPECT_GE(acc_small, acc_huge);
}

TEST(Flow, CrGrowsWithDelta) {
  nn::Model m = nn::make_lenet5();
  EvalConfig cfg;
  cfg.probes = 2;
  DeltaEvaluator ev(m, cfg);
  double prev = 0.0;
  for (double d : {0.0, 5.0, 10.0, 15.0, 20.0}) {
    const DeltaPoint p = ev.evaluate(d);
    EXPECT_GT(p.report.cr, prev);
    prev = p.report.cr;
  }
  EXPECT_GT(prev, 2.0);
}

TEST(Flow, WeightsRestoredAfterEvaluate) {
  nn::Model m = nn::make_lenet5();
  const int idx = m.graph.find("dense_1");
  const auto before = std::vector<float>(
      m.graph.layer(idx).kernel().begin(), m.graph.layer(idx).kernel().end());
  EvalConfig cfg;
  cfg.probes = 2;
  DeltaEvaluator ev(m, cfg);
  (void)ev.evaluate(20.0);
  const auto kernel = m.graph.layer(idx).kernel();
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(kernel[i], before[i]);
  }
}

TEST(Flow, RepeatedEvaluationIsIdempotent) {
  // Compressing always from the original weights: evaluating the same δ
  // twice gives bit-identical results.
  nn::Model m = nn::make_lenet5();
  EvalConfig cfg;
  cfg.probes = 3;
  DeltaEvaluator ev(m, cfg);
  const DeltaPoint a = ev.evaluate(10.0);
  (void)ev.evaluate(20.0);
  const DeltaPoint b = ev.evaluate(10.0);
  EXPECT_DOUBLE_EQ(a.accuracy, b.accuracy);
  EXPECT_DOUBLE_EQ(a.report.cr, b.report.cr);
}

TEST(Flow, LabeledModeUsesRealAccuracy) {
  nn::Model m = nn::make_lenet5();
  const nn::Dataset train = nn::make_digits(300, 61);
  const nn::Dataset test = nn::make_digits(100, 62);
  nn::TrainConfig tcfg;
  tcfg.epochs = 3;
  tcfg.learning_rate = 0.1F;
  (void)nn::train_classifier(m.graph, train, tcfg);

  EvalConfig cfg = lenet_cfg();
  DeltaEvaluator ev(m, test, cfg);
  EXPECT_GT(ev.baseline_accuracy(), 0.3);  // trained above chance
  const DeltaPoint p0 = ev.evaluate(0.0);
  // δ=0 reconstruction is accurate: accuracy within a few points of baseline.
  EXPECT_NEAR(p0.accuracy, ev.baseline_accuracy(), 0.15);
  // An absurd δ destroys the layer.
  const DeltaPoint huge = ev.evaluate(1000.0);
  EXPECT_LE(huge.accuracy, p0.accuracy + 1e-9);
}

}  // namespace
}  // namespace nocw::eval
