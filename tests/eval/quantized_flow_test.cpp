#include "eval/quantized_flow.hpp"

#include <gtest/gtest.h>

namespace nocw::eval {
namespace {

QuantizedEvalConfig small_cfg() {
  QuantizedEvalConfig cfg;
  cfg.probes = 4;
  cfg.topk = 3;
  return cfg;
}

TEST(QuantizedFlow, BaselineCrNearFour) {
  // Almost all LeNet params are weights -> int8 quantization approaches 4x.
  nn::Model m = nn::make_lenet5();
  QuantizedDeltaEvaluator ev(m, small_cfg());
  EXPECT_GT(ev.baseline().weighted_cr, 3.0);
  EXPECT_LE(ev.baseline().weighted_cr, 4.0);
}

TEST(QuantizedFlow, BaselineAccuracyHigh) {
  // int8 quantization alone barely moves the outputs.
  nn::Model m = nn::make_lenet5();
  QuantizedDeltaEvaluator ev(m, small_cfg());
  EXPECT_GT(ev.baseline().accuracy, 0.6);
}

TEST(QuantizedFlow, StackedCrExceedsQuantizationAloneAtModerateDelta) {
  // At δ=0 the segment overhead can slightly lose to raw int8 (the paper's
  // own VGG row in Table III shows the same dip: QT 2.26 -> 1.21 at δ=0);
  // from moderate δ the stacking wins.
  nn::Model m = nn::make_lenet5();
  QuantizedDeltaEvaluator ev(m, small_cfg());
  const QuantizedDeltaPoint zero = ev.evaluate(0.0);
  EXPECT_GT(zero.weighted_cr, 0.5 * ev.baseline().weighted_cr);
  const QuantizedDeltaPoint mid = ev.evaluate(40.0);
  EXPECT_GT(mid.weighted_cr, ev.baseline().weighted_cr);
}

TEST(QuantizedFlow, CrGrowsAndAccuracyFallsWithDelta) {
  nn::Model m = nn::make_lenet5();
  QuantizedDeltaEvaluator ev(m, small_cfg());
  const QuantizedDeltaPoint lo = ev.evaluate(0.0);
  const QuantizedDeltaPoint hi = ev.evaluate(40.0);
  EXPECT_GT(hi.weighted_cr, lo.weighted_cr);
  EXPECT_LE(hi.accuracy, lo.accuracy + 1e-9);
}

TEST(QuantizedFlow, SelectedLayerMatchesPolicy) {
  nn::Model m = nn::make_lenet5();
  QuantizedDeltaEvaluator ev(m, small_cfg());
  EXPECT_EQ(ev.selected_layer(), "dense_1");
}

TEST(QuantizedFlow, RepeatedEvaluationIdempotent) {
  nn::Model m = nn::make_lenet5();
  QuantizedDeltaEvaluator ev(m, small_cfg());
  const QuantizedDeltaPoint a = ev.evaluate(15.0);
  (void)ev.evaluate(30.0);
  const QuantizedDeltaPoint b = ev.evaluate(15.0);
  EXPECT_DOUBLE_EQ(a.accuracy, b.accuracy);
  EXPECT_DOUBLE_EQ(a.weighted_cr, b.weighted_cr);
}

}  // namespace
}  // namespace nocw::eval
