#include "eval/multi_layer.hpp"

#include <gtest/gtest.h>

#include "nn/train.hpp"

namespace nocw::eval {
namespace {

MultiLayerConfig fast_cfg(double min_accuracy) {
  MultiLayerConfig cfg;
  cfg.min_accuracy = min_accuracy;
  cfg.probes = 4;
  cfg.topk = 3;
  cfg.delta_steps = {5, 10, 20};
  cfg.max_rounds = 20;
  return cfg;
}

TEST(MultiLayer, RespectsAccuracyConstraint) {
  nn::Model m = nn::make_lenet5();
  const MultiLayerResult r = optimize_multi_layer(m, nullptr, fast_cfg(0.75));
  EXPECT_GE(r.accuracy, 0.75);
  EXPECT_GE(r.weighted_cr, 1.0);
}

TEST(MultiLayer, LooseConstraintCompressesMoreThanTight) {
  nn::Model loose_model = nn::make_lenet5();
  nn::Model tight_model = nn::make_lenet5();
  const MultiLayerResult loose =
      optimize_multi_layer(loose_model, nullptr, fast_cfg(0.25));
  const MultiLayerResult tight =
      optimize_multi_layer(tight_model, nullptr, fast_cfg(0.99));
  EXPECT_GE(loose.weighted_cr, tight.weighted_cr);
}

TEST(MultiLayer, ImpossibleConstraintYieldsEmptyPlan) {
  nn::Model m = nn::make_lenet5();
  MultiLayerConfig cfg = fast_cfg(1.1);  // unattainable
  const MultiLayerResult r = optimize_multi_layer(m, nullptr, cfg);
  EXPECT_TRUE(r.plan.empty());
  EXPECT_DOUBLE_EQ(r.weighted_cr, 1.0);
}

TEST(MultiLayer, WeightsRestoredAfterOptimization) {
  nn::Model m = nn::make_lenet5();
  const int idx = m.graph.find("dense_1");
  const std::vector<float> before(m.graph.layer(idx).kernel().begin(),
                                  m.graph.layer(idx).kernel().end());
  (void)optimize_multi_layer(m, nullptr, fast_cfg(0.5));
  const auto kernel = m.graph.layer(idx).kernel();
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(kernel[i], before[i]);
  }
}

TEST(MultiLayer, PlanEntriesAreConsistent) {
  nn::Model m = nn::make_lenet5();
  const MultiLayerResult r = optimize_multi_layer(m, nullptr, fast_cfg(0.5));
  for (const auto& e : r.plan) {
    EXPECT_GE(m.graph.find(e.layer), 0);
    EXPECT_GT(e.cr, 0.0);
    EXPECT_GT(e.compressed_bits, 0u);
    EXPECT_GT(e.weight_count, 0u);
    EXPECT_GT(e.delta_percent, 0.0);
  }
  const accel::CompressionPlan plan = r.to_accel_plan();
  EXPECT_EQ(plan.size(), r.plan.size());
}

TEST(MultiLayer, BeatsSingleLayerAtSameConstraintOrMatches) {
  // Compressing several layers can only save at least as many bits as the
  // single selected layer at the δ the plan assigns it.
  nn::Model m = nn::make_lenet5();
  const MultiLayerResult r = optimize_multi_layer(m, nullptr, fast_cfg(0.5));
  if (r.plan.size() >= 2) {
    EXPECT_GT(r.weighted_cr, 1.0);
  }
}

TEST(MultiLayer, LabeledModeUsesRealAccuracy) {
  nn::Model m = nn::make_lenet5();
  const nn::Dataset train = nn::make_digits(300, 81);
  const nn::Dataset test = nn::make_digits(80, 82);
  nn::TrainConfig tcfg;
  tcfg.epochs = 3;
  tcfg.learning_rate = 0.1F;
  (void)nn::train_classifier(m.graph, train, tcfg);

  MultiLayerConfig cfg = fast_cfg(0.0);
  cfg.topk = 1;
  const MultiLayerResult r = optimize_multi_layer(m, &test, cfg);
  EXPECT_GT(r.baseline_accuracy, 0.2);
  EXPECT_GE(r.weighted_cr, 1.0);
}

}  // namespace
}  // namespace nocw::eval
