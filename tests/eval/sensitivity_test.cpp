#include "eval/sensitivity.hpp"

#include <gtest/gtest.h>

#include "nn/train.hpp"

namespace nocw::eval {
namespace {

TEST(Sensitivity, CoversAllParameterizedLayers) {
  nn::Model m = nn::make_lenet5();
  SensitivityConfig cfg;
  cfg.probes = 3;
  cfg.trials = 1;
  cfg.topk = 3;
  const auto result = sensitivity_analysis(m, nullptr, cfg);
  ASSERT_EQ(result.size(), 5u);  // conv1, conv2, dense1, dense2, dense3
  EXPECT_EQ(result[0].layer, "conv_1");
  EXPECT_EQ(result.back().layer, "dense_3");
}

TEST(Sensitivity, NormalizedMaxIsOne) {
  nn::Model m = nn::make_lenet5();
  SensitivityConfig cfg;
  cfg.probes = 4;
  cfg.trials = 1;
  cfg.topk = 3;
  cfg.noise_fraction = 0.4;
  const auto result = sensitivity_analysis(m, nullptr, cfg);
  double max_norm = 0.0;
  for (const auto& s : result) {
    EXPECT_GE(s.normalized, 0.0);
    EXPECT_LE(s.normalized, 1.0);
    max_norm = std::max(max_norm, s.normalized);
  }
  EXPECT_DOUBLE_EQ(max_norm, 1.0);
}

TEST(Sensitivity, TrainedLenetDropsAreBoundedAndSomeLayerHurts) {
  // On a trained network, large perturbations must hurt some layer; all
  // drops stay within [0, baseline]. (The Fig. 9 *shape* — input layers
  // more fragile — needs a fully trained net on a hard task; the fig9
  // bench measures it and EXPERIMENTS.md compares against the paper.)
  nn::Model m = nn::make_lenet5();
  const nn::Dataset train = nn::make_digits(400, 71);
  const nn::Dataset test = nn::make_digits(120, 72);
  nn::TrainConfig tcfg;
  tcfg.epochs = 4;
  tcfg.learning_rate = 0.1F;
  (void)nn::train_classifier(m.graph, train, tcfg);

  SensitivityConfig cfg;
  cfg.topk = 1;
  cfg.trials = 2;
  cfg.noise_fraction = 0.5;
  const auto result = sensitivity_analysis(m, &test, cfg);
  ASSERT_EQ(result.size(), 5u);
  double max_drop = 0.0;
  for (const auto& s : result) {
    EXPECT_GE(s.accuracy_drop, 0.0);
    EXPECT_LE(s.accuracy_drop, 1.0);
    max_drop = std::max(max_drop, s.accuracy_drop);
  }
  EXPECT_GT(max_drop, 0.01);
}

TEST(Sensitivity, WeightsRestoredAfterAnalysis) {
  nn::Model m = nn::make_lenet5();
  const int idx = m.graph.find("conv_1");
  const std::vector<float> before(m.graph.layer(idx).kernel().begin(),
                                  m.graph.layer(idx).kernel().end());
  SensitivityConfig cfg;
  cfg.probes = 2;
  cfg.trials = 1;
  (void)sensitivity_analysis(m, nullptr, cfg);
  const auto kernel = m.graph.layer(idx).kernel();
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(kernel[i], before[i]);
  }
}

}  // namespace
}  // namespace nocw::eval
