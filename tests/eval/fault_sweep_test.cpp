// The fault sweep promises seed-reproducible, thread-count-independent
// results: a fixed fault_seed must give bit-identical FaultPoints across
// repeated runs and across NOCW_THREADS — and at least one operating point
// must show CRC + retransmission recovering clean accuracy at a measured
// latency/energy cost.
#include "eval/fault_sweep.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "nn/digits.hpp"
#include "nn/models.hpp"
#include "util/thread_pool.hpp"

namespace nocw::eval {
namespace {

class FaultSweep : public ::testing::Test {
 protected:
  void TearDown() override { set_global_threads(1); }

  static FaultSweepConfig small_config() {
    FaultSweepConfig cfg;
    cfg.bit_error_rates = {1e-5, 1e-4};
    cfg.delta_percents = {0.0, 10.0};
    cfg.trials = 2;
    cfg.fault_seed = 4242;
    cfg.topk = 1;
    cfg.noc_flits = 1200;
    return cfg;
  }
};

void expect_points_equal(const FaultPoint& a, const FaultPoint& b,
                         const char* context) {
  EXPECT_EQ(a.bit_error_rate, b.bit_error_rate) << context;
  EXPECT_EQ(a.delta_percent, b.delta_percent) << context;
  EXPECT_EQ(a.accuracy_clean, b.accuracy_clean) << context;
  EXPECT_EQ(a.accuracy_uncompressed, b.accuracy_uncompressed) << context;
  EXPECT_EQ(a.accuracy_compressed, b.accuracy_compressed) << context;
  EXPECT_EQ(a.accuracy_protected, b.accuracy_protected) << context;
  EXPECT_EQ(a.corrupted_segment_fraction, b.corrupted_segment_fraction)
      << context;
  EXPECT_EQ(a.unprotected_cycles, b.unprotected_cycles) << context;
  EXPECT_EQ(a.protected_cycles, b.protected_cycles) << context;
  EXPECT_EQ(a.unprotected_energy_j, b.unprotected_energy_j) << context;
  EXPECT_EQ(a.protected_energy_j, b.protected_energy_j) << context;
  EXPECT_EQ(a.crc_failures, b.crc_failures) << context;
  EXPECT_EQ(a.retransmissions, b.retransmissions) << context;
  EXPECT_EQ(a.packets_dropped, b.packets_dropped) << context;
}

TEST_F(FaultSweep, RepeatedRunsAreBitIdentical) {
  set_global_threads(1);
  nn::Model m = nn::make_lenet5();
  const nn::Dataset test = nn::make_digits(24, 5150);
  const FaultSweepConfig cfg = small_config();
  const FaultSweepResult a = run_fault_sweep(m, test, cfg);
  const FaultSweepResult b = run_fault_sweep(m, test, cfg);
  ASSERT_EQ(a.points.size(), b.points.size());
  EXPECT_EQ(a.baseline_accuracy, b.baseline_accuracy);
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    expect_points_equal(a.points[i], b.points[i], "repeat run");
  }
}

TEST_F(FaultSweep, IdenticalAcrossThreadCounts) {
  const nn::Dataset test = nn::make_digits(24, 5150);
  const FaultSweepConfig cfg = small_config();

  set_global_threads(1);
  nn::Model ref_model = nn::make_lenet5();
  const FaultSweepResult ref = run_fault_sweep(ref_model, test, cfg);
  ASSERT_EQ(ref.points.size(),
            cfg.bit_error_rates.size() * cfg.delta_percents.size());

  for (unsigned threads : {2U, 8U}) {
    set_global_threads(threads);
    nn::Model m = nn::make_lenet5();
    const FaultSweepResult got = run_fault_sweep(m, test, cfg);
    ASSERT_EQ(got.points.size(), ref.points.size()) << "threads " << threads;
    EXPECT_EQ(got.baseline_accuracy, ref.baseline_accuracy)
        << "threads " << threads;
    for (std::size_t i = 0; i < ref.points.size(); ++i) {
      expect_points_equal(got.points[i], ref.points[i],
                          threads == 2 ? "threads=2" : "threads=8");
    }
  }
}

TEST_F(FaultSweep, SweepLeavesModelWeightsUntouched) {
  set_global_threads(4);
  nn::Model m = nn::make_lenet5();
  const nn::Dataset test = nn::make_digits(16, 71);
  FaultSweepConfig cfg = small_config();
  cfg.trials = 1;

  std::vector<std::vector<float>> before;
  for (int idx : m.graph.parameterized_nodes()) {
    const auto k = m.graph.layer(idx).kernel();
    before.emplace_back(k.begin(), k.end());
  }
  (void)run_fault_sweep(m, test, cfg);
  std::size_t li = 0;
  for (int idx : m.graph.parameterized_nodes()) {
    const auto k = m.graph.layer(idx).kernel();
    for (std::size_t i = 0; i < k.size(); ++i) {
      ASSERT_EQ(k[i], before[li][i]) << "layer " << idx << " index " << i;
    }
    ++li;
  }
}

TEST_F(FaultSweep, ProtectionRecoversCleanAccuracyAtMeasuredCost) {
  set_global_threads(1);
  nn::Model m = nn::make_lenet5();
  const nn::Dataset test = nn::make_digits(24, 5150);
  FaultSweepConfig cfg = small_config();
  cfg.bit_error_rates = {1e-4};  // enough faults for CRC hits
  cfg.delta_percents = {10.0};
  cfg.noc_flits = 4000;
  cfg.noc.protection.max_retries = 8;  // budget generous enough to recover all

  const FaultSweepResult res = run_fault_sweep(m, test, cfg);
  ASSERT_EQ(res.points.size(), 1u);
  const FaultPoint& p = res.points[0];
  // The operating point the PR promises: faults corrupt the unprotected
  // stream, CRC detects them, retransmission recovers every packet, and the
  // recovery has a real, measured latency/energy price.
  EXPECT_GT(p.crc_failures, 0u);
  EXPECT_GT(p.retransmissions, 0u);
  EXPECT_EQ(p.packets_dropped, 0u);
  EXPECT_EQ(p.accuracy_protected, p.accuracy_clean);
  EXPECT_GT(p.protected_cycles, p.unprotected_cycles);
  EXPECT_GT(p.protected_energy_j, p.unprotected_energy_j);
}

TEST_F(FaultSweep, CompressedStreamIsMoreFragileThanUncompressed) {
  set_global_threads(1);
  nn::Model m = nn::make_lenet5();
  const nn::Dataset test = nn::make_digits(24, 5150);
  FaultSweepConfig cfg = small_config();
  cfg.bit_error_rates = {1e-4};
  cfg.delta_percents = {0.0};
  cfg.trials = 3;

  const FaultSweepResult res = run_fault_sweep(m, test, cfg);
  ASSERT_EQ(res.points.size(), 1u);
  // The motivating observation: at equal BER the compressed stream loses
  // whole segments, so it must register segment-level corruption.
  EXPECT_GT(res.points[0].corrupted_segment_fraction, 0.0);
}

}  // namespace
}  // namespace nocw::eval
