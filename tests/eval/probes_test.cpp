#include "eval/probes.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace nocw::eval {
namespace {

TEST(Probes, ShapeAndRange) {
  const nn::Tensor p = make_probes(3, 16, 3, 1);
  EXPECT_EQ(p.shape(), (std::vector<int>{3, 16, 16, 3}));
  for (float v : p.data()) {
    EXPECT_GE(v, 0.0F);
    EXPECT_LE(v, 1.0F);
  }
}

TEST(Probes, DeterministicPerSeed) {
  const nn::Tensor a = make_probes(2, 8, 1, 9);
  const nn::Tensor b = make_probes(2, 8, 1, 9);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(Probes, SeedsDiffer) {
  const nn::Tensor a = make_probes(1, 8, 1, 1);
  const nn::Tensor b = make_probes(1, 8, 1, 2);
  bool differ = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) differ = true;
  }
  EXPECT_TRUE(differ);
}

TEST(Probes, SpatiallyCorrelated) {
  // Natural-image statistics: neighbouring pixels must correlate far more
  // than distant ones (white noise would give ~0 for both).
  const nn::Tensor p = make_probes(4, 32, 1, 33);
  double neigh = 0.0;
  double far = 0.0;
  int count = 0;
  for (int n = 0; n < 4; ++n) {
    for (int y = 0; y < 32; ++y) {
      for (int x = 0; x + 16 < 32; ++x) {
        const float v = p.at(n, y, x, 0);
        neigh += std::abs(v - p.at(n, y, x + 1, 0));
        far += std::abs(v - p.at(n, y, x + 16, 0));
        ++count;
      }
    }
  }
  EXPECT_LT(neigh / count, 0.5 * far / count);
}

}  // namespace
}  // namespace nocw::eval
