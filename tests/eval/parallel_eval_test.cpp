// The δ-sweep harness promises thread-count-independent results: every
// sweep run at 2 or 8 threads must match the 1-thread run bit for bit
// (per-task RNG streams, cloned per-lane replicas, ordered reductions).
#include <gtest/gtest.h>

#include <vector>

#include "eval/flow.hpp"
#include "eval/multi_layer.hpp"
#include "eval/sensitivity.hpp"
#include "util/thread_pool.hpp"

namespace nocw::eval {
namespace {

class ParallelEval : public ::testing::Test {
 protected:
  void TearDown() override { set_global_threads(1); }
};

TEST_F(ParallelEval, SensitivityIdenticalAcrossThreadCounts) {
  SensitivityConfig cfg;
  cfg.probes = 3;
  cfg.trials = 2;
  cfg.topk = 3;
  cfg.noise_fraction = 0.4;

  set_global_threads(1);
  nn::Model ref_model = nn::make_lenet5();
  const auto ref = sensitivity_analysis(ref_model, nullptr, cfg);
  ASSERT_EQ(ref.size(), 5u);

  for (unsigned threads : {2U, 8U}) {
    set_global_threads(threads);
    nn::Model m = nn::make_lenet5();
    const auto got = sensitivity_analysis(m, nullptr, cfg);
    ASSERT_EQ(got.size(), ref.size()) << "threads " << threads;
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(got[i].layer, ref[i].layer);
      EXPECT_EQ(got[i].accuracy_drop, ref[i].accuracy_drop)
          << "threads " << threads << " layer " << ref[i].layer;
      EXPECT_EQ(got[i].normalized, ref[i].normalized)
          << "threads " << threads << " layer " << ref[i].layer;
    }
  }
}

TEST_F(ParallelEval, SensitivityLeavesModelUntouchedWhenParallel) {
  set_global_threads(4);
  nn::Model m = nn::make_lenet5();
  const int idx = m.graph.find("conv_1");
  const std::vector<float> before(m.graph.layer(idx).kernel().begin(),
                                  m.graph.layer(idx).kernel().end());
  SensitivityConfig cfg;
  cfg.probes = 2;
  cfg.trials = 1;
  (void)sensitivity_analysis(m, nullptr, cfg);
  const auto kernel = m.graph.layer(idx).kernel();
  for (std::size_t i = 0; i < before.size(); ++i) {
    ASSERT_EQ(kernel[i], before[i]) << "index " << i;
  }
}

TEST_F(ParallelEval, EvaluateManyMatchesSerialEvaluate) {
  const std::vector<double> deltas{0.0, 5.0, 10.0, 20.0};

  set_global_threads(1);
  nn::Model m = nn::make_lenet5();
  EvalConfig cfg;
  cfg.probes = 4;
  cfg.topk = 3;
  DeltaEvaluator ev(m, cfg);
  std::vector<DeltaPoint> ref;
  for (double d : deltas) ref.push_back(ev.evaluate(d));

  for (unsigned threads : {2U, 8U}) {
    set_global_threads(threads);
    const std::vector<DeltaPoint> got = ev.evaluate_many(deltas);
    ASSERT_EQ(got.size(), ref.size()) << "threads " << threads;
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(got[i].delta_percent, ref[i].delta_percent);
      EXPECT_EQ(got[i].accuracy, ref[i].accuracy)
          << "threads " << threads << " delta " << deltas[i];
      EXPECT_EQ(got[i].report.cr, ref[i].report.cr);
      EXPECT_EQ(got[i].report.mse, ref[i].report.mse);
      EXPECT_EQ(got[i].compression.compressed_bits,
                ref[i].compression.compressed_bits);
    }
  }
}

TEST_F(ParallelEval, EvaluateManyLeavesModelWeightsUntouched) {
  set_global_threads(4);
  nn::Model m = nn::make_lenet5();
  EvalConfig cfg;
  cfg.probes = 2;
  DeltaEvaluator ev(m, cfg);
  const int idx = m.graph.find(ev.selected_layer());
  const std::vector<float> before(m.graph.layer(idx).kernel().begin(),
                                  m.graph.layer(idx).kernel().end());
  (void)ev.evaluate_many({0.0, 10.0, 20.0});
  const auto kernel = m.graph.layer(idx).kernel();
  for (std::size_t i = 0; i < before.size(); ++i) {
    ASSERT_EQ(kernel[i], before[i]) << "index " << i;
  }
}

TEST_F(ParallelEval, MultiLayerPlanIdenticalAcrossThreadCounts) {
  MultiLayerConfig cfg;
  cfg.probes = 3;
  cfg.topk = 3;
  cfg.min_accuracy = 0.5;
  cfg.max_rounds = 6;

  set_global_threads(1);
  nn::Model ref_model = nn::make_lenet5();
  const MultiLayerResult ref = optimize_multi_layer(ref_model, nullptr, cfg);

  for (unsigned threads : {2U, 8U}) {
    set_global_threads(threads);
    nn::Model m = nn::make_lenet5();
    const MultiLayerResult got = optimize_multi_layer(m, nullptr, cfg);
    EXPECT_EQ(got.accuracy, ref.accuracy) << "threads " << threads;
    EXPECT_EQ(got.weighted_cr, ref.weighted_cr) << "threads " << threads;
    ASSERT_EQ(got.plan.size(), ref.plan.size()) << "threads " << threads;
    for (std::size_t i = 0; i < ref.plan.size(); ++i) {
      EXPECT_EQ(got.plan[i].layer, ref.plan[i].layer);
      EXPECT_EQ(got.plan[i].delta_percent, ref.plan[i].delta_percent);
      EXPECT_EQ(got.plan[i].compressed_bits, ref.plan[i].compressed_bits);
    }
  }
}

}  // namespace
}  // namespace nocw::eval
