// The serving sweep promises: a grid in load-outer/scheduler-inner order
// where every scheduler at one load replays the same arrival timeline, a
// capacity estimate that scales offered rates, and registry annotation in
// the closed unit vocabulary.
#include "eval/serving.hpp"

#include <gtest/gtest.h>

#include "accel/summary.hpp"
#include "nn/models.hpp"
#include "obs/registry.hpp"
#include "util/thread_pool.hpp"

namespace nocw::eval {
namespace {

class ServingSweep : public ::testing::Test {
 protected:
  void TearDown() override { set_global_threads(1); }

  static std::vector<serve::RequestClass> small_classes() {
    nn::Model model = nn::make_lenet5();
    const accel::ModelSummary summary = accel::summarize(model);
    std::vector<serve::RequestClass> classes(2);
    classes[0].name = "cold";
    classes[0].mix_fraction = 0.6;
    classes[0].summary = summary;
    classes[1].name = "resident";
    classes[1].tenant = 1;
    classes[1].tenant_weight = 3.0;
    classes[1].mix_fraction = 0.4;
    classes[1].summary = summary;
    classes[1].plan = accel::resident_weights_plan(summary);
    return classes;
  }

  static ServingSweepConfig small_config() {
    ServingSweepConfig cfg;
    cfg.offered_loads = {0.5, 1.4};
    cfg.schedulers = {"fifo", "sjf"};
    cfg.requests_per_point = 60;
    cfg.serve.accel.noc_window_flits = 4000;
    cfg.serve.queue.capacity = 16;
    return cfg;
  }
};

TEST_F(ServingSweep, GridOrderAndSharedTimelines) {
  set_global_threads(1);
  const ServingSweepResult res =
      run_serving_sweep(small_classes(), small_config());
  ASSERT_EQ(res.points.size(), 4u);  // 2 loads x 2 schedulers
  EXPECT_GT(res.capacity_rps, 0.0);
  ASSERT_EQ(res.profiles.size(), 2u);
  ASSERT_EQ(res.class_names.size(), 2u);
  EXPECT_EQ(res.class_names[0], "cold");

  // Load-outer, scheduler-inner, offered_rps proportional to load.
  EXPECT_EQ(res.points[0].scheduler, "fifo");
  EXPECT_EQ(res.points[1].scheduler, "sjf");
  EXPECT_DOUBLE_EQ(res.points[0].offered_load, 0.5);
  EXPECT_DOUBLE_EQ(res.points[2].offered_load, 1.4);
  EXPECT_NEAR(res.points[0].offered_rps, 0.5 * res.capacity_rps,
              1e-6 * res.capacity_rps);

  // Same load => same arrival timeline => identical per-class offered
  // counts for every scheduler.
  for (std::size_t base : {0u, 2u}) {
    const serve::ServeResult& a = res.points[base].result;
    const serve::ServeResult& b = res.points[base + 1].result;
    EXPECT_EQ(a.aggregate.offered, b.aggregate.offered);
    for (std::size_t c = 0; c < a.per_class.size(); ++c) {
      EXPECT_EQ(a.per_class[c].offered, b.per_class[c].offered);
    }
  }
}

TEST_F(ServingSweep, CapacityHelperMatchesAmortizedMix) {
  set_global_threads(1);
  std::vector<serve::RequestClass> classes(1);
  classes[0].mix_fraction = 1.0;
  std::vector<serve::ServiceProfile> profiles(1);
  profiles[0].full_cycles = units::Cycles{1000};
  profiles[0].marginal_cycles = units::Cycles{200};
  // Batch of 4: (1000 + 3*200) / 4 = 400 cycles per request.
  EXPECT_DOUBLE_EQ(capacity_requests_per_cycle(classes, profiles, 4),
                   1.0 / 400.0);
  // Batch of 1: no amortization.
  EXPECT_DOUBLE_EQ(capacity_requests_per_cycle(classes, profiles, 1),
                   1.0 / 1000.0);
}

TEST_F(ServingSweep, DeterministicAcrossThreadCounts) {
  set_global_threads(1);
  const ServingSweepResult ref =
      run_serving_sweep(small_classes(), small_config());
  for (const unsigned threads : {2U, 8U}) {
    set_global_threads(threads);
    const ServingSweepResult got =
        run_serving_sweep(small_classes(), small_config());
    ASSERT_EQ(got.points.size(), ref.points.size());
    EXPECT_EQ(got.capacity_rps, ref.capacity_rps);
    for (std::size_t i = 0; i < ref.points.size(); ++i) {
      const serve::ClassServeStats& a = ref.points[i].result.aggregate;
      const serve::ClassServeStats& b = got.points[i].result.aggregate;
      EXPECT_EQ(a.completed, b.completed) << "point " << i;
      EXPECT_EQ(a.shed, b.shed) << "point " << i;
      EXPECT_EQ(a.latency.p50, b.latency.p50) << "point " << i;
      EXPECT_EQ(a.latency.p99, b.latency.p99) << "point " << i;
      EXPECT_EQ(ref.points[i].result.goodput_rps,
                got.points[i].result.goodput_rps)
          << "point " << i;
    }
  }
}

TEST_F(ServingSweep, ObservedSweepIsPureAndResolvesExemplars) {
  set_global_threads(1);
  const ServingSweepResult plain =
      run_serving_sweep(small_classes(), small_config());

  ObservedSweepConfig ocfg;
  ocfg.base = small_config();
  ocfg.slo.window_cycles = 500'000;
  ocfg.slo.p99_budget_cycles = 1.0;  // everything breaches: exercises pins
  ocfg.traces.tail_keep = 8;
  const ObservedSweepResult obs_res =
      run_observed_serving_sweep(small_classes(), ocfg);

  // Hooks observe only: the sweep results are bit-identical to the plain
  // run, point by point.
  ASSERT_EQ(obs_res.sweep.points.size(), plain.points.size());
  ASSERT_EQ(obs_res.slo.size(), plain.points.size());
  ASSERT_EQ(obs_res.sinks.size(), plain.points.size());
  for (std::size_t i = 0; i < plain.points.size(); ++i) {
    const serve::ClassServeStats& a = plain.points[i].result.aggregate;
    const serve::ClassServeStats& b = obs_res.sweep.points[i].result.aggregate;
    EXPECT_EQ(a.completed, b.completed) << "point " << i;
    EXPECT_EQ(a.shed, b.shed) << "point " << i;
    EXPECT_EQ(a.latency.p99, b.latency.p99) << "point " << i;
  }

  // Every breached window's exemplar resolves to a sampled span tree whose
  // root latency is the window's recorded max.
  std::uint64_t breached = 0;
  for (std::size_t i = 0; i < obs_res.slo.size(); ++i) {
    for (const obs::SloWindow& w : obs_res.slo[i].windows()) {
      if (w.breach_mask == 0) continue;
      ++breached;
      if (w.completions > 0) {
        const serve::RequestTrace* ex =
            obs_res.sinks[i].exemplar(w.exemplar_trace_id);
        ASSERT_NE(ex, nullptr);
        EXPECT_FALSE(ex->shed);
        EXPECT_EQ(ex->latency_cycles, w.max_latency_cycles);
        ASSERT_FALSE(ex->spans.empty());
        EXPECT_EQ(ex->spans.front().dur_cycles, w.max_latency_cycles);
      } else {
        const serve::RequestTrace* ex =
            obs_res.sinks[i].exemplar(w.shed_exemplar_trace_id);
        ASSERT_NE(ex, nullptr);
        EXPECT_TRUE(ex->shed);
      }
    }
    EXPECT_EQ(obs_res.sinks[i].exemplar_drops(), 0u);
  }
  EXPECT_GT(breached, 0u);
}

TEST_F(ServingSweep, RegistryAnnotationPublishesTotals) {
  set_global_threads(1);
  const ServingSweepResult res =
      run_serving_sweep(small_classes(), small_config());
  obs::Registry reg;
  annotate_registry(reg, res);

  std::uint64_t offered = 0;
  for (const ServingPoint& pt : res.points) {
    offered += pt.result.aggregate.offered;
  }
  EXPECT_DOUBLE_EQ(reg.value("serve.offered_requests"),
                   static_cast<double>(offered));
  EXPECT_DOUBLE_EQ(reg.value("serve.grid_points"), 4.0);
  EXPECT_TRUE(reg.contains("serve.completed_requests"));
  EXPECT_TRUE(reg.contains("serve.shed_requests"));
  EXPECT_TRUE(reg.contains("serve.batches_dispatched"));
  EXPECT_TRUE(reg.contains("serve.mean_batch_size"));
  EXPECT_TRUE(reg.contains("serve.fifo.goodput_fraction"));
  EXPECT_TRUE(reg.contains("serve.sjf.goodput_fraction"));
  EXPECT_TRUE(reg.contains("serve.point_p99_latency"));
}

}  // namespace
}  // namespace nocw::eval
