// The degradation sweep promises deterministic survival curves: fixed fault
// seed → bit-identical points across repeated runs and NOCW_THREADS, with
// accuracy preserved wherever the inference completes (failover preserves
// the computation; only latency/energy degrade).
#include "eval/degradation.hpp"

#include <gtest/gtest.h>

#include "nn/digits.hpp"
#include "nn/models.hpp"
#include "obs/registry.hpp"
#include "util/thread_pool.hpp"

namespace nocw::eval {
namespace {

class Degradation : public ::testing::Test {
 protected:
  void TearDown() override { set_global_threads(1); }

  static DegradationConfig small_config() {
    DegradationConfig cfg;
    cfg.max_router_faults = 2;
    cfg.delta_percents = {0.0, 10.0};
    cfg.fault_seed = 4242;
    cfg.noc_window_flits = 4000;  // keep unit tests quick
    return cfg;
  }
};

void expect_points_equal(const DegradationPoint& a, const DegradationPoint& b,
                         const char* context) {
  EXPECT_EQ(a.router_faults, b.router_faults) << context;
  EXPECT_EQ(a.delta_percent, b.delta_percent) << context;
  EXPECT_EQ(a.live_mis, b.live_mis) << context;
  EXPECT_EQ(a.live_pes, b.live_pes) << context;
  EXPECT_EQ(a.completed, b.completed) << context;
  EXPECT_EQ(a.accuracy, b.accuracy) << context;
  EXPECT_EQ(a.latency_cycles, b.latency_cycles) << context;
  EXPECT_EQ(a.energy_j, b.energy_j) << context;
  EXPECT_EQ(a.latency_vs_healthy, b.latency_vs_healthy) << context;
  EXPECT_EQ(a.energy_vs_healthy, b.energy_vs_healthy) << context;
}

TEST_F(Degradation, SurvivalCurveShapesAreSane) {
  set_global_threads(1);
  nn::Model m = nn::make_lenet5();
  const nn::Dataset test = nn::make_digits(16, 71);
  const DegradationConfig cfg = small_config();
  const DegradationResult res = run_degradation_sweep(m, test, cfg);
  ASSERT_EQ(res.points.size(), 6u);  // 3 fault counts x 2 deltas

  const std::size_t nd = cfg.delta_percents.size();
  for (std::size_t i = 0; i < res.points.size(); ++i) {
    const DegradationPoint& p = res.points[i];
    ASSERT_TRUE(p.completed) << "point " << i;  // k=2 is survivable on 4x4
    EXPECT_GT(p.live_mis, 0) << "point " << i;
    EXPECT_GT(p.live_pes, 0) << "point " << i;
    // Dead endpoints drop out; the connectivity filter may cost a few more.
    EXPECT_LE(p.live_mis + p.live_pes, 16 - p.router_faults) << "point " << i;
    // Accuracy survives failover: every fault count reports the healthy
    // mesh's δ accuracy.
    EXPECT_EQ(p.accuracy, res.points[i % nd].accuracy) << "point " << i;
    if (p.router_faults == 0) {
      EXPECT_EQ(p.latency_vs_healthy, 1.0) << "point " << i;
      EXPECT_EQ(p.energy_vs_healthy, 1.0) << "point " << i;
    } else {
      // Degradation is graceful, not free: fewer endpoints cost cycles.
      EXPECT_GT(p.latency_vs_healthy, 1.0) << "point " << i;
      EXPECT_GE(p.energy_vs_healthy, 1.0) << "point " << i;
    }
  }
}

TEST_F(Degradation, IdenticalAcrossThreadCounts) {
  const nn::Dataset test = nn::make_digits(16, 71);
  const DegradationConfig cfg = small_config();

  set_global_threads(1);
  nn::Model ref_model = nn::make_lenet5();
  const DegradationResult ref = run_degradation_sweep(ref_model, test, cfg);

  for (unsigned threads : {2U, 8U}) {
    set_global_threads(threads);
    nn::Model m = nn::make_lenet5();
    const DegradationResult got = run_degradation_sweep(m, test, cfg);
    ASSERT_EQ(got.points.size(), ref.points.size()) << "threads " << threads;
    EXPECT_EQ(got.baseline_accuracy, ref.baseline_accuracy);
    for (std::size_t i = 0; i < ref.points.size(); ++i) {
      expect_points_equal(got.points[i], ref.points[i],
                          threads == 2 ? "threads=2" : "threads=8");
    }
  }
}

TEST_F(Degradation, RegistryAnnotationPublishesCurve) {
  set_global_threads(1);
  nn::Model m = nn::make_lenet5();
  const nn::Dataset test = nn::make_digits(16, 71);
  DegradationConfig cfg = small_config();
  cfg.max_router_faults = 1;
  cfg.delta_percents = {0.0};
  const DegradationResult res = run_degradation_sweep(m, test, cfg);

  obs::Registry reg;
  annotate_registry(reg, res);
  EXPECT_DOUBLE_EQ(reg.value("degradation.points"), 2.0);
  EXPECT_DOUBLE_EQ(reg.value("degradation.completed"), 2.0);
  EXPECT_DOUBLE_EQ(reg.value("degradation.max_faults_survived"), 1.0);
  EXPECT_TRUE(reg.contains("degradation.latency_vs_healthy"));
  EXPECT_TRUE(reg.contains("degradation.baseline_accuracy"));
}

}  // namespace
}  // namespace nocw::eval
