#include "eval/layer_selection.hpp"

#include <gtest/gtest.h>

#include "nn/models.hpp"

namespace nocw::eval {
namespace {

TEST(LayerSelection, MatchesPaperTableOneForEveryModel) {
  // The policy (largest layer, deepest on ties) must reproduce the paper's
  // Table I choices, which the zoo records in Model::selected_layer.
  for (const auto& name : nn::model_names()) {
    const nn::Model m = nn::make_model(name, 3);
    EXPECT_EQ(select_layer_name(m), m.selected_layer) << name;
  }
}

TEST(LayerSelection, PrefersDeepestOnTies) {
  nn::Graph g;
  int n = g.add(std::make_unique<nn::InputLayer>(
      "input", std::vector<int>{0, 4}));
  n = g.add(std::make_unique<nn::Dense>("shallow", 4, 4), {n});
  n = g.add(std::make_unique<nn::Dense>("deep", 4, 4), {n});
  g.add(std::make_unique<nn::Softmax>("softmax"), {n});
  nn::Model m;
  m.graph = std::move(g);
  EXPECT_EQ(select_layer_name(m), "deep");
}

TEST(LayerSelection, ThrowsWithoutParameters) {
  nn::Graph g;
  int n = g.add(std::make_unique<nn::InputLayer>(
      "input", std::vector<int>{0, 4}));
  g.add(std::make_unique<nn::Softmax>("softmax"), {n});
  nn::Model m;
  m.graph = std::move(g);
  EXPECT_THROW(select_layer(m), std::invalid_argument);
}

}  // namespace
}  // namespace nocw::eval
