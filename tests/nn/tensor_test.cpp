#include "nn/tensor.hpp"

#include <gtest/gtest.h>

namespace nocw::nn {
namespace {

TEST(Tensor, DefaultIsEmpty) {
  Tensor t;
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.rank(), 0);
}

TEST(Tensor, ShapeAndSize) {
  Tensor t({2, 3, 4, 5});
  EXPECT_EQ(t.rank(), 4);
  EXPECT_EQ(t.size(), 120u);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(3), 5);
}

TEST(Tensor, ZeroInitialized) {
  Tensor t({4, 4});
  for (float v : t.data()) EXPECT_EQ(v, 0.0F);
}

TEST(Tensor, NhwcIndexingIsRowMajorChannelLast) {
  Tensor t({1, 2, 2, 3});
  t.at(0, 0, 0, 0) = 1.0F;
  t.at(0, 0, 0, 2) = 2.0F;
  t.at(0, 0, 1, 0) = 3.0F;
  t.at(0, 1, 0, 0) = 4.0F;
  EXPECT_EQ(t[0], 1.0F);
  EXPECT_EQ(t[2], 2.0F);
  EXPECT_EQ(t[3], 3.0F);
  EXPECT_EQ(t[6], 4.0F);
}

TEST(Tensor, Rank2Indexing) {
  Tensor t({2, 3});
  t.at(1, 2) = 7.0F;
  EXPECT_EQ(t[5], 7.0F);
  const Tensor& ct = t;
  EXPECT_EQ(ct.at(1, 2), 7.0F);
}

TEST(Tensor, FillSetsEverything) {
  Tensor t({3, 3});
  t.fill(2.5F);
  for (float v : t.data()) EXPECT_EQ(v, 2.5F);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 6});
  for (std::size_t i = 0; i < t.size(); ++i) t[i] = static_cast<float>(i);
  t.reshape({2, 2, 3, 1});
  EXPECT_EQ(t.rank(), 4);
  EXPECT_EQ(t[7], 7.0F);
}

TEST(Tensor, ReshapeWrongCountThrows) {
  Tensor t({2, 6});
  EXPECT_THROW(t.reshape({5}), std::invalid_argument);
}

TEST(Tensor, NegativeExtentThrows) {
  EXPECT_THROW(Tensor({2, -1}), std::invalid_argument);
}

TEST(Tensor, ShapeString) {
  Tensor t({1, 32, 32, 3});
  EXPECT_EQ(t.shape_string(), "[1, 32, 32, 3]");
}

TEST(Tensor, CopySemantics) {
  Tensor a({2, 2});
  a.fill(1.0F);
  Tensor b = a;
  b.fill(2.0F);
  EXPECT_EQ(a[0], 1.0F);
  EXPECT_EQ(b[0], 2.0F);
}

}  // namespace
}  // namespace nocw::nn
