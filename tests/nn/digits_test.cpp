#include "nn/digits.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace nocw::nn {
namespace {

TEST(Digits, ShapeAndBalance) {
  const Dataset ds = make_digits(100, 1);
  EXPECT_EQ(ds.size(), 100);
  EXPECT_EQ(ds.images.shape(), (std::vector<int>{100, 32, 32, 1}));
  int counts[10] = {};
  for (int l : ds.labels) {
    ASSERT_GE(l, 0);
    ASSERT_LT(l, 10);
    ++counts[l];
  }
  for (int c : counts) EXPECT_EQ(c, 10);
}

TEST(Digits, PixelsInUnitRange) {
  const Dataset ds = make_digits(50, 2);
  for (float v : ds.images.data()) {
    EXPECT_GE(v, 0.0F);
    EXPECT_LE(v, 1.0F);
  }
}

TEST(Digits, DeterministicPerSeed) {
  const Dataset a = make_digits(20, 3);
  const Dataset b = make_digits(20, 3);
  for (std::size_t i = 0; i < a.images.size(); ++i) {
    EXPECT_EQ(a.images[i], b.images[i]);
  }
}

TEST(Digits, DifferentSeedsDiffer) {
  const Dataset a = make_digits(20, 3);
  const Dataset b = make_digits(20, 4);
  bool differ = false;
  for (std::size_t i = 0; i < a.images.size(); ++i) {
    if (a.images[i] != b.images[i]) differ = true;
  }
  EXPECT_TRUE(differ);
}

TEST(Digits, GlyphsHaveInk) {
  Xoshiro256pp rng(5);
  for (int d = 0; d < 10; ++d) {
    const Tensor img = render_digit(d, rng);
    double sum = 0.0;
    for (float v : img.data()) sum += v;
    EXPECT_GT(sum, 20.0) << "digit " << d << " nearly blank";
    EXPECT_LT(sum, 32.0 * 32.0 * 0.6) << "digit " << d << " nearly solid";
  }
}

TEST(Digits, DistinctDigitsDistinctImages) {
  // Same RNG state cloned per digit: the glyphs themselves must differ.
  for (int a = 0; a < 10; ++a) {
    for (int b = a + 1; b < 10; ++b) {
      Xoshiro256pp ra(7);
      Xoshiro256pp rb(7);
      const Tensor ia = render_digit(a, ra);
      const Tensor ib = render_digit(b, rb);
      double diff = 0.0;
      for (std::size_t i = 0; i < ia.size(); ++i) {
        diff += std::abs(ia[i] - ib[i]);
      }
      EXPECT_GT(diff, 5.0) << a << " vs " << b;
    }
  }
}

TEST(Digits, JitterVariesSameDigit) {
  Xoshiro256pp rng(8);
  const Tensor a = render_digit(3, rng);
  const Tensor b = render_digit(3, rng);
  double diff = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) diff += std::abs(a[i] - b[i]);
  EXPECT_GT(diff, 1.0);
}

}  // namespace
}  // namespace nocw::nn
