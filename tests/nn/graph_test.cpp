#include "nn/graph.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "nn/init.hpp"
#include "util/rng.hpp"

namespace nocw::nn {
namespace {

/// Tiny DAG: input -> dense_a -> relu -> {dense_b, dense_c} -> add -> softmax
Graph make_diamond() {
  Graph g;
  const int in = g.add(std::make_unique<InputLayer>(
      "input", std::vector<int>{0, 4}));
  const int a = g.add(std::make_unique<Dense>("dense_a", 4, 8), {in});
  const int r = g.add(std::make_unique<ReLU>("relu"), {a});
  const int b = g.add(std::make_unique<Dense>("dense_b", 8, 3), {r});
  const int c = g.add(std::make_unique<Dense>("dense_c", 8, 3), {r});
  const int s = g.add(std::make_unique<Add>("add"), {b, c});
  g.add(std::make_unique<Softmax>("softmax"), {s});
  return g;
}

TEST(Graph, TopologicalInsertEnforced) {
  Graph g;
  g.add(std::make_unique<InputLayer>("input", std::vector<int>{0, 4}));
  EXPECT_THROW(g.add(std::make_unique<Dense>("d", 4, 4), {5}),
               std::invalid_argument);
  EXPECT_THROW(g.add(std::make_unique<Dense>("d", 4, 4), {-1}),
               std::invalid_argument);
}

TEST(Graph, NonInputNodeNeedsProducers) {
  Graph g;
  g.add(std::make_unique<InputLayer>("input", std::vector<int>{0, 4}));
  EXPECT_THROW(g.add(std::make_unique<Dense>("d", 4, 4), {}),
               std::invalid_argument);
}

TEST(Graph, FindByName) {
  Graph g = make_diamond();
  EXPECT_GE(g.find("dense_b"), 0);
  EXPECT_EQ(g.find("nope"), -1);
  EXPECT_EQ(g.layer(g.find("dense_b")).name(), "dense_b");
}

TEST(Graph, ForwardDiamondMatchesManual) {
  Graph g = make_diamond();
  init_graph(g, 11);
  Tensor in({1, 4});
  Xoshiro256pp rng(231);
  for (auto& v : in.data()) v = static_cast<float>(rng.normal());
  const Tensor out = g.forward(in);
  ASSERT_EQ(out.shape(), (std::vector<int>{1, 3}));
  float sum = 0.0F;
  for (int c = 0; c < 3; ++c) sum += out.at(0, c);
  EXPECT_NEAR(sum, 1.0F, 1e-5F);
}

TEST(Graph, ForwardDeterministic) {
  Graph g = make_diamond();
  init_graph(g, 11);
  Tensor in({1, 4});
  in.fill(0.5F);
  const Tensor a = g.forward(in);
  const Tensor b = g.forward(in);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(Graph, InputShapeValidated) {
  Graph g = make_diamond();
  Tensor bad({1, 5});
  EXPECT_THROW((void)g.forward(bad), std::invalid_argument);
}

TEST(Graph, TotalParamsSumsLayers) {
  Graph g = make_diamond();
  // dense_a 4*8+8, dense_b/c 8*3+3 each
  EXPECT_EQ(g.total_params(), (4u * 8 + 8) + 2 * (8u * 3 + 3));
}

TEST(Graph, ParameterizedNodesInOrder) {
  Graph g = make_diamond();
  const auto nodes = g.parameterized_nodes();
  ASSERT_EQ(nodes.size(), 3u);
  EXPECT_EQ(g.layer(nodes[0]).name(), "dense_a");
  EXPECT_EQ(g.layer(nodes[1]).name(), "dense_b");
  EXPECT_EQ(g.layer(nodes[2]).name(), "dense_c");
}

TEST(Graph, CaptureAndTailReplayMatchFullForward) {
  Graph g = make_diamond();
  init_graph(g, 12);
  Tensor in({2, 4});
  Xoshiro256pp rng(232);
  for (auto& v : in.data()) v = static_cast<float>(rng.normal());

  // Capture at dense_b: its producer is the shared ReLU. dense_c also reads
  // the ReLU, so the tail (dense_b, dense_c, add, softmax) replays fully.
  const int capture = g.find("dense_b");
  const auto [full, captured] = g.forward_capturing(in, capture);
  const Tensor replay = g.forward_tail(captured, capture);
  ASSERT_EQ(replay.shape(), full.shape());
  for (std::size_t i = 0; i < full.size(); ++i) {
    EXPECT_FLOAT_EQ(replay[i], full[i]);
  }
}

TEST(Graph, TailReplaySeesWeightChanges) {
  // Logit-level graph (no softmax, which could saturate and mask changes).
  Graph g;
  const int in_node = g.add(std::make_unique<InputLayer>(
      "input", std::vector<int>{0, 4}));
  const int a = g.add(std::make_unique<Dense>("dense_a", 4, 8), {in_node});
  const int b = g.add(std::make_unique<Dense>("dense_b", 8, 3), {a});
  g.add(std::make_unique<Flatten>("flatten"), {b});
  init_graph(g, 13);
  Tensor in({1, 4});
  in.fill(1.0F);
  const auto [full, captured] = g.forward_capturing(in, b);
  // Perturb dense_b and replay: output must change without recomputing the
  // prefix.
  auto w = g.layer(b).kernel();
  w[0] += 10.0F;
  const Tensor replay = g.forward_tail(captured, b);
  bool changed = false;
  for (std::size_t i = 0; i < full.size(); ++i) {
    if (replay[i] != full[i]) changed = true;
  }
  EXPECT_TRUE(changed);
}

TEST(Graph, TailFromPrefixDependentNodeThrows) {
  // Capturing at dense_a and replaying would be fine (linear), but capturing
  // at `add` (two producers) is rejected.
  Graph g = make_diamond();
  init_graph(g, 14);
  Tensor in({1, 4});
  const int add = g.find("add");
  EXPECT_THROW((void)g.forward_capturing(in, add), std::invalid_argument);
}

TEST(Graph, EmptyGraphThrows) {
  Graph g;
  Tensor in({1, 4});
  EXPECT_THROW((void)g.forward(in), std::logic_error);
}

}  // namespace
}  // namespace nocw::nn
