// Zoo structural checks: parameter totals and Table I selected-layer
// fractions (DESIGN.md §5 records where our counts differ from the paper's
// rounded figures and why).
#include "nn/models.hpp"

#include <gtest/gtest.h>

#include "nn/init.hpp"
#include "util/rng.hpp"

namespace nocw::nn {
namespace {

std::size_t layer_params(const Model& m, const std::string& name) {
  const int idx = m.graph.find(name);
  EXPECT_GE(idx, 0) << name;
  return m.graph.layer(idx).param_count();
}

TEST(Models, LeNetParamCountExact) {
  const Model m = make_lenet5();
  EXPECT_EQ(m.graph.total_params(), 61706u);  // the paper's "62k"
  EXPECT_EQ(layer_params(m, "dense_1"), 48120u);
}

TEST(Models, LeNetSelectedLayerFraction) {
  const Model m = make_lenet5();
  const double f = static_cast<double>(layer_params(m, "dense_1")) /
                   static_cast<double>(m.graph.total_params());
  EXPECT_NEAR(f, 0.78, 0.03);  // paper rounds to 80%
}

TEST(Models, AlexNetDenseTwoDominates) {
  const Model m = make_alexnet();
  const std::size_t total = m.graph.total_params();
  EXPECT_NEAR(static_cast<double>(total), 25.7e6, 0.3e6);  // paper: "24,000k"
  EXPECT_EQ(layer_params(m, "dense_2"), 4096u * 4096 + 4096);
  const double f =
      static_cast<double>(layer_params(m, "dense_2")) / total;
  EXPECT_GT(f, 0.6);  // paper: 70%
  EXPECT_LT(f, 0.75);
}

TEST(Models, Vgg16ParamCountExact) {
  const Model m = make_vgg16();
  EXPECT_EQ(m.graph.total_params(), 138357544u);  // canonical VGG-16
  EXPECT_EQ(layer_params(m, "dense_1"), 25088u * 4096 + 4096);
  const double f = static_cast<double>(layer_params(m, "dense_1")) /
                   static_cast<double>(m.graph.total_params());
  EXPECT_NEAR(f, 0.743, 0.01);  // paper rounds to 77%
}

TEST(Models, MobileNetParamCount) {
  const Model m = make_mobilenet();
  // Keras MobileNet v1 alpha=1: 4,253,864 params incl. BN statistics.
  EXPECT_EQ(m.graph.total_params(), 4253864u);
  EXPECT_EQ(layer_params(m, "conv_preds"), 1024u * 1000 + 1000);
}

TEST(Models, ResNet50ParamCount) {
  const Model m = make_resnet50();
  // Keras ResNet50: 25,636,712 params incl. BN statistics.
  EXPECT_EQ(m.graph.total_params(), 25636712u);
  EXPECT_EQ(layer_params(m, "fc1000"), 2048u * 1000 + 1000);
  const double f = static_cast<double>(layer_params(m, "fc1000")) /
                   static_cast<double>(m.graph.total_params());
  EXPECT_NEAR(f, 0.08, 0.01);  // paper: 8%
}

TEST(Models, InceptionV3ParamCountNearKeras) {
  const Model m = make_inception_v3();
  // Keras InceptionV3: 23,851,784 (its BN layers omit gamma; ours keep it,
  // so allow a small excess).
  const double total = static_cast<double>(m.graph.total_params());
  EXPECT_NEAR(total, 23.85e6, 0.8e6);
  EXPECT_EQ(layer_params(m, "pred"), 2048u * 1000 + 1000);
  EXPECT_NEAR(static_cast<double>(layer_params(m, "pred")) / total, 0.09,
              0.015);  // paper: 9%
}

TEST(Models, RegistryCoversAllSixModels) {
  EXPECT_EQ(model_names().size(), 6u);
  for (const auto& name : model_names()) {
    const Model m = make_model(name, 9);
    EXPECT_EQ(m.name, name);
    EXPECT_GE(m.graph.find(m.selected_layer), 0)
        << name << " selected layer " << m.selected_layer;
    EXPECT_GT(m.graph.total_params(), 0u);
  }
  EXPECT_THROW(make_model("GoogLeNet", 1), std::invalid_argument);
}

TEST(Models, SeedsChangeWeightsNotStructure) {
  Model a = make_lenet5(1);
  Model b = make_lenet5(2);
  EXPECT_EQ(a.graph.total_params(), b.graph.total_params());
  const auto wa = a.graph.layer(a.graph.find("dense_1")).kernel();
  const auto wb = b.graph.layer(b.graph.find("dense_1")).kernel();
  bool differ = false;
  for (std::size_t i = 0; i < wa.size(); ++i) {
    if (wa[i] != wb[i]) differ = true;
  }
  EXPECT_TRUE(differ);
}

TEST(Models, SameSeedReproducesWeights) {
  Model a = make_lenet5(42);
  Model b = make_lenet5(42);
  const auto wa = a.graph.layer(a.graph.find("dense_1")).kernel();
  const auto wb = b.graph.layer(b.graph.find("dense_1")).kernel();
  for (std::size_t i = 0; i < wa.size(); ++i) EXPECT_EQ(wa[i], wb[i]);
}

TEST(Models, LeNetForwardShape) {
  Model m = make_lenet5();
  Tensor in({2, 32, 32, 1});
  Xoshiro256pp rng(241);
  for (auto& v : in.data()) v = static_cast<float>(rng.uniform());
  const Tensor out = m.graph.forward(in);
  EXPECT_EQ(out.shape(), (std::vector<int>{2, 10}));
}

TEST(Models, MobileNetForwardShapeAndProbabilities) {
  Model m = make_mobilenet();
  Tensor in({1, 224, 224, 3});
  Xoshiro256pp rng(242);
  for (auto& v : in.data()) v = static_cast<float>(rng.uniform());
  const Tensor out = m.graph.forward(in);
  ASSERT_EQ(out.shape(), (std::vector<int>{1, 1000}));
  float sum = 0.0F;
  for (float v : out.data()) {
    EXPECT_GE(v, 0.0F);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0F, 1e-3F);
}

TEST(Models, FanInScalingShrinksWeightRangeWithLayerSize) {
  // The property that drives the paper's MSE ordering: VGG's dense_1
  // (fan-in 25088) must have a much tighter weight range than LeNet's
  // dense_1 (fan-in 400).
  Model lenet = make_lenet5();
  Model vgg = make_vgg16();
  auto range = [](std::span<const float> w) {
    float lo = w[0], hi = w[0];
    for (float v : w) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    return hi - lo;
  };
  const auto wl =
      lenet.graph.layer(lenet.graph.find("dense_1")).kernel();
  const auto wv = vgg.graph.layer(vgg.graph.find("dense_1")).kernel();
  EXPECT_GT(range(wl), 2.0F * range(wv));
}

}  // namespace
}  // namespace nocw::nn
