// The parallel kernels promise bit-identical results for any thread count.
// These tests pin that contract: reference outputs computed at 1 thread must
// match exactly (EXPECT_EQ on floats, not EXPECT_NEAR) at 2 and 8 threads.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "nn/gemm.hpp"
#include "nn/models.hpp"
#include "nn/tensor.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace nocw::nn {
namespace {

std::vector<float> random_vec(std::size_t n, std::uint64_t seed,
                              double zero_fraction = 0.0) {
  Xoshiro256pp rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) {
    x = rng.uniform() < zero_fraction ? 0.0F
                                      : static_cast<float>(rng.normal());
  }
  return v;
}

class ParallelDeterminism : public ::testing::Test {
 protected:
  void TearDown() override { set_global_threads(1); }
};

TEST_F(ParallelDeterminism, GemmMatchesSerialAcrossThreadCounts) {
  // m spans several row-blocks so the parallel path really splits the work;
  // 30% zeros exercises the sparse (zero-skipping) kernel.
  const std::size_t m = 150, k = 64, n = 48;
  const auto a = random_vec(m * k, 1, 0.3);
  const auto b = random_vec(k * n, 2);

  set_global_threads(1);
  std::vector<float> ref(m * n);
  gemm(a.data(), b.data(), ref.data(), m, k, n);

  for (unsigned threads : {2U, 8U}) {
    set_global_threads(threads);
    std::vector<float> out(m * n, -1.0F);
    gemm(a.data(), b.data(), out.data(), m, k, n);
    for (std::size_t i = 0; i < ref.size(); ++i) {
      ASSERT_EQ(out[i], ref[i]) << "threads " << threads << " index " << i;
    }
  }
}

TEST_F(ParallelDeterminism, GemmAccumulateMatchesSerial) {
  const std::size_t m = 70, k = 33, n = 17;
  const auto a = random_vec(m * k, 3);
  const auto b = random_vec(k * n, 4);
  const auto base = random_vec(m * n, 5);

  set_global_threads(1);
  std::vector<float> ref = base;
  gemm(a.data(), b.data(), ref.data(), m, k, n, /*accumulate=*/true);

  set_global_threads(8);
  std::vector<float> out = base;
  gemm(a.data(), b.data(), out.data(), m, k, n, /*accumulate=*/true);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ASSERT_EQ(out[i], ref[i]) << "index " << i;
  }
}

TEST_F(ParallelDeterminism, GemmDenseAndSparseModesAgreeOnNonzeroData) {
  // With no exact zeros in A the zero-skip test never fires, so the dense
  // and sparse kernels must produce identical bits.
  const std::size_t m = 40, k = 31, n = 23;
  const auto a = random_vec(m * k, 6);
  const auto b = random_vec(k * n, 7);
  std::vector<float> dense(m * n);
  std::vector<float> sparse(m * n);
  gemm(a.data(), b.data(), dense.data(), m, k, n, false, GemmMode::Dense);
  gemm(a.data(), b.data(), sparse.data(), m, k, n, false, GemmMode::Sparse);
  for (std::size_t i = 0; i < dense.size(); ++i) {
    ASSERT_EQ(dense[i], sparse[i]) << "index " << i;
  }
}

TEST_F(ParallelDeterminism, GemvMatchesSerialAcrossThreadCounts) {
  const std::size_t m = 600, n = 37;
  const auto a = random_vec(m * n, 8, 0.2);
  const auto x = random_vec(n, 9);

  set_global_threads(1);
  std::vector<float> ref(m);
  gemv(a.data(), x.data(), ref.data(), m, n);

  for (unsigned threads : {2U, 8U}) {
    set_global_threads(threads);
    std::vector<float> out(m, -1.0F);
    gemv(a.data(), x.data(), out.data(), m, n);
    for (std::size_t i = 0; i < m; ++i) {
      ASSERT_EQ(out[i], ref[i]) << "threads " << threads << " row " << i;
    }
  }
}

TEST_F(ParallelDeterminism, GraphForwardBitIdenticalAcrossThreadCounts) {
  // Batch >= 8 so the batched path splits across lanes at 8 threads; LeNet-5
  // covers conv (im2col), pooling, dense (gemm) and softmax layers.
  Model m = make_lenet5();
  Tensor input({8, m.input_size, m.input_size, m.input_channels});
  {
    Xoshiro256pp rng(10);
    for (auto& v : input.data()) v = static_cast<float>(rng.normal());
  }

  set_global_threads(1);
  const Tensor ref = m.graph.forward(input);

  for (unsigned threads : {2U, 8U}) {
    set_global_threads(threads);
    const Tensor out = m.graph.forward(input);
    ASSERT_EQ(out.shape(), ref.shape()) << "threads " << threads;
    for (std::size_t i = 0; i < ref.data().size(); ++i) {
      ASSERT_EQ(out.data()[i], ref.data()[i])
          << "threads " << threads << " index " << i;
    }
  }
}

TEST_F(ParallelDeterminism, CloneIsDeepAndForwardEquivalent) {
  Model m = make_lenet5();
  Graph copy = m.graph.clone();

  Tensor input({2, m.input_size, m.input_size, m.input_channels});
  {
    Xoshiro256pp rng(11);
    for (auto& v : input.data()) v = static_cast<float>(rng.normal());
  }
  const Tensor a = m.graph.forward(input);
  const Tensor b = copy.forward(input);
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    ASSERT_EQ(a.data()[i], b.data()[i]) << "index " << i;
  }

  // Mutating the clone must not leak into the original (deep copy).
  const int idx = copy.find("dense_1");
  auto kernel = copy.layer(idx).kernel();
  const float before = m.graph.layer(idx).kernel()[0];
  kernel[0] += 1.0F;
  EXPECT_EQ(m.graph.layer(idx).kernel()[0], before);
}

}  // namespace
}  // namespace nocw::nn
