#include "nn/metrics.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace nocw::nn {
namespace {

TEST(Metrics, ArgmaxBasics) {
  const std::vector<float> v{0.1F, 0.9F, 0.3F};
  EXPECT_EQ(argmax(v), 1);
  EXPECT_THROW(argmax({}), std::invalid_argument);
}

TEST(Metrics, TopkOrderedDescending) {
  const std::vector<float> v{0.1F, 0.9F, 0.3F, 0.7F};
  const auto t = topk(v, 3);
  EXPECT_EQ(t, (std::vector<int>{1, 3, 2}));
}

TEST(Metrics, TopkTieBreaksByIndex) {
  const std::vector<float> v{0.5F, 0.5F, 0.5F};
  EXPECT_EQ(topk(v, 2), (std::vector<int>{0, 1}));
}

TEST(Metrics, TopkClampsK) {
  const std::vector<float> v{1.0F, 2.0F};
  EXPECT_EQ(topk(v, 10).size(), 2u);
}

TEST(Metrics, InTopk) {
  const std::vector<float> v{0.1F, 0.9F, 0.3F, 0.7F};
  EXPECT_TRUE(in_topk(v, 1, 1));
  EXPECT_FALSE(in_topk(v, 0, 2));
  EXPECT_TRUE(in_topk(v, 0, 4));
}

TEST(Metrics, OverlapIdenticalIsOne) {
  const std::vector<float> v{0.4F, 0.3F, 0.2F, 0.1F};
  EXPECT_DOUBLE_EQ(topk_overlap(v, v, 3), 1.0);
}

TEST(Metrics, OverlapDisjointIsZero) {
  const std::vector<float> a{1.0F, 0.9F, 0.0F, 0.0F};
  const std::vector<float> b{0.0F, 0.0F, 1.0F, 0.9F};
  EXPECT_DOUBLE_EQ(topk_overlap(a, b, 2), 0.0);
}

TEST(Metrics, OverlapPartial) {
  const std::vector<float> a{3.0F, 2.0F, 1.0F, 0.0F};
  const std::vector<float> b{3.0F, 0.0F, 1.0F, 2.0F};
  // top2(a) = {0,1}, top2(b) = {0,3} -> overlap 1/2
  EXPECT_DOUBLE_EQ(topk_overlap(a, b, 2), 0.5);
}

TEST(Metrics, Top1AccuracyCounts) {
  Tensor scores({3, 4});
  scores.at(0, 2) = 1.0F;  // predicts 2
  scores.at(1, 0) = 1.0F;  // predicts 0
  scores.at(2, 3) = 1.0F;  // predicts 3
  const std::vector<int> labels{2, 1, 3};
  EXPECT_NEAR(top1_accuracy(scores, labels), 2.0 / 3.0, 1e-12);
}

TEST(Metrics, TopkAccuracyMoreForgiving) {
  Tensor scores({1, 5});
  scores.at(0, 0) = 5.0F;
  scores.at(0, 1) = 4.0F;
  scores.at(0, 2) = 3.0F;
  const std::vector<int> labels{2};
  EXPECT_DOUBLE_EQ(top1_accuracy(scores, labels), 0.0);
  EXPECT_DOUBLE_EQ(topk_accuracy(scores, labels, 3), 1.0);
}

TEST(Metrics, MeanAgreementAveragesRows) {
  Tensor a({2, 4});
  Tensor b({2, 4});
  // Row 0 identical; row 1 disjoint top-2.
  a.at(0, 0) = 2.0F;
  a.at(0, 1) = 1.0F;
  b.at(0, 0) = 2.0F;
  b.at(0, 1) = 1.0F;
  a.at(1, 0) = 2.0F;
  a.at(1, 1) = 1.0F;
  b.at(1, 2) = 2.0F;
  b.at(1, 3) = 1.0F;
  EXPECT_DOUBLE_EQ(mean_topk_agreement(a, b, 2), 0.5);
}

TEST(Metrics, RetentionPerfectWhenUnchanged) {
  Tensor a({2, 5});
  a.at(0, 3) = 1.0F;
  a.at(1, 0) = 1.0F;
  EXPECT_DOUBLE_EQ(topk_retention(a, a, 1), 1.0);
  EXPECT_DOUBLE_EQ(topk_retention(a, a, 5), 1.0);
}

TEST(Metrics, RetentionForgivesRankShuffleWithinK) {
  // Baseline argmax drops to rank 3 in the outputs: retained for k=5, lost
  // for k=1.
  Tensor base({1, 6});
  base.at(0, 2) = 1.0F;
  Tensor out({1, 6});
  out.at(0, 0) = 3.0F;
  out.at(0, 1) = 2.0F;
  out.at(0, 2) = 1.0F;
  EXPECT_DOUBLE_EQ(topk_retention(base, out, 5), 1.0);
  EXPECT_DOUBLE_EQ(topk_retention(base, out, 1), 0.0);
}

TEST(Metrics, RetentionCountsPerRow) {
  Tensor base({2, 4});
  base.at(0, 0) = 1.0F;
  base.at(1, 1) = 1.0F;
  Tensor out({2, 4});
  out.at(0, 0) = 1.0F;  // row 0 retained
  out.at(1, 3) = 1.0F;  // row 1: baseline top-1 (idx 1) ties at 0 ->
  out.at(1, 1) = -1.0F; // pushed below, lost for k=1
  EXPECT_DOUBLE_EQ(topk_retention(base, out, 1), 0.5);
}

TEST(Metrics, RetentionShapeMismatchThrows) {
  Tensor a({1, 4});
  Tensor b({1, 5});
  EXPECT_THROW(topk_retention(a, b, 2), std::invalid_argument);
}

TEST(Metrics, ShapeMismatchThrows) {
  Tensor a({1, 4});
  Tensor b({1, 5});
  EXPECT_THROW(mean_topk_agreement(a, b, 2), std::invalid_argument);
  const std::vector<int> labels{0, 1};
  EXPECT_THROW(topk_accuracy(a, labels, 1), std::invalid_argument);
}

}  // namespace
}  // namespace nocw::nn
