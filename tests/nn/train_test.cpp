#include "nn/train.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "nn/init.hpp"
#include "nn/metrics.hpp"
#include "nn/models.hpp"

namespace nocw::nn {
namespace {

/// Small trainable chain for fast tests: 32x32 digits -> conv -> pool ->
/// flatten -> dense -> softmax.
Graph make_tiny_classifier() {
  Graph g;
  int n = g.add(std::make_unique<InputLayer>(
      "input", std::vector<int>{0, 32, 32, 1}));
  n = g.add(std::make_unique<Conv2D>("conv", 1, 4, 5, 5, 1, Padding::Valid),
            {n});
  n = g.add(std::make_unique<ReLU>("relu"), {n});
  n = g.add(std::make_unique<MaxPool>("pool", 4, 4), {n});
  n = g.add(std::make_unique<Flatten>("flatten"), {n});
  n = g.add(std::make_unique<Dense>("dense", 7 * 7 * 4, 10), {n});
  g.add(std::make_unique<Softmax>("softmax"), {n});
  init_graph(g, 77);
  return g;
}

TEST(Train, LossDecreasesOverEpochs) {
  Graph g = make_tiny_classifier();
  const Dataset ds = make_digits(200, 51);
  TrainConfig cfg;
  cfg.epochs = 3;
  cfg.batch_size = 20;
  cfg.learning_rate = 0.1F;
  const TrainStats stats = train_classifier(g, ds, cfg);
  ASSERT_EQ(stats.epoch_loss.size(), 3u);
  EXPECT_LT(stats.epoch_loss.back(), stats.epoch_loss.front());
}

TEST(Train, LearnsDigitsAboveChance) {
  Graph g = make_tiny_classifier();
  const Dataset train = make_digits(400, 52);
  const Dataset test = make_digits(100, 999);
  TrainConfig cfg;
  cfg.epochs = 4;
  cfg.batch_size = 20;
  cfg.learning_rate = 0.1F;
  (void)train_classifier(g, train, cfg);
  const double acc = evaluate_top1(g, test);
  EXPECT_GT(acc, 0.5) << "tiny classifier should beat 10% chance easily";
}

TEST(Train, PredictShapeMatchesDataset) {
  Graph g = make_tiny_classifier();
  const Dataset ds = make_digits(37, 53);  // not a multiple of batch size
  const Tensor probs = predict(g, ds);
  EXPECT_EQ(probs.shape(), (std::vector<int>{37, 10}));
  for (int i = 0; i < 37; ++i) {
    float sum = 0.0F;
    for (int c = 0; c < 10; ++c) sum += probs.at(i, c);
    EXPECT_NEAR(sum, 1.0F, 1e-4F);
  }
}

TEST(Train, RejectsNonChainGraphs) {
  Graph g;
  const int in = g.add(std::make_unique<InputLayer>(
      "input", std::vector<int>{0, 4}));
  const int a = g.add(std::make_unique<Dense>("a", 4, 4), {in});
  const int b = g.add(std::make_unique<Dense>("b", 4, 4), {in});  // branch
  g.add(std::make_unique<Add>("add"), {a, b});
  const Dataset ds = make_digits(10, 54);
  EXPECT_THROW(train_classifier(g, ds, TrainConfig{}), std::logic_error);
}

TEST(Train, RejectsGraphNotEndingInSoftmax) {
  Graph g;
  int n = g.add(std::make_unique<InputLayer>(
      "input", std::vector<int>{0, 32, 32, 1}));
  n = g.add(std::make_unique<Flatten>("flatten"), {n});
  g.add(std::make_unique<Dense>("dense", 1024, 10), {n});
  const Dataset ds = make_digits(10, 55);
  EXPECT_THROW(train_classifier(g, ds, TrainConfig{}), std::logic_error);
}

TEST(Train, LeNetEndToEndSmoke) {
  // One cheap epoch on a small set: loss must be finite and accuracy above
  // chance on the training data itself. (The full-accuracy training run
  // lives in the benches, not unit tests.)
  Model m = make_lenet5();
  const Dataset train = make_digits(150, 56);
  TrainConfig cfg;
  cfg.epochs = 2;
  cfg.batch_size = 25;
  cfg.learning_rate = 0.08F;
  const TrainStats stats = train_classifier(m.graph, train, cfg);
  EXPECT_TRUE(std::isfinite(stats.epoch_loss.back()));
  EXPECT_GT(stats.epoch_accuracy.back(), 0.2);
}

}  // namespace
}  // namespace nocw::nn
