#include "nn/gemm.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace nocw::nn {
namespace {

void naive(const float* a, const float* b, float* c, std::size_t m,
           std::size_t k, std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p) {
        acc += static_cast<double>(a[i * k + p]) * b[p * n + j];
      }
      c[i * n + j] = static_cast<float>(acc);
    }
  }
}

TEST(Gemm, Identity) {
  const std::vector<float> eye{1, 0, 0, 1};
  const std::vector<float> x{3, 4, 5, 6};
  std::vector<float> y(4);
  gemm(eye.data(), x.data(), y.data(), 2, 2, 2);
  EXPECT_EQ(y, x);
}

TEST(Gemm, KnownSmallProduct) {
  // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
  const std::vector<float> a{1, 2, 3, 4};
  const std::vector<float> b{5, 6, 7, 8};
  std::vector<float> c(4);
  gemm(a.data(), b.data(), c.data(), 2, 2, 2);
  EXPECT_EQ(c, (std::vector<float>{19, 22, 43, 50}));
}

TEST(Gemm, AccumulateAddsToExisting) {
  const std::vector<float> a{1, 0, 0, 1};
  const std::vector<float> b{1, 1, 1, 1};
  std::vector<float> c{10, 10, 10, 10};
  gemm(a.data(), b.data(), c.data(), 2, 2, 2, /*accumulate=*/true);
  EXPECT_EQ(c, (std::vector<float>{11, 11, 11, 11}));
}

TEST(Gemm, NonAccumulateOverwrites) {
  const std::vector<float> a{1, 0, 0, 1};
  const std::vector<float> b{1, 1, 1, 1};
  std::vector<float> c{99, 99, 99, 99};
  gemm(a.data(), b.data(), c.data(), 2, 2, 2);
  EXPECT_EQ(c, (std::vector<float>{1, 1, 1, 1}));
}

TEST(Gemm, MatchesNaiveAcrossShapes) {
  Xoshiro256pp rng(201);
  const std::size_t shapes[][3] = {
      {1, 1, 1},   {1, 7, 5},    {5, 1, 3},   {3, 3, 3},
      {17, 33, 9}, {64, 256, 8}, {65, 257, 31}, {128, 300, 70}};
  for (const auto& s : shapes) {
    const std::size_t m = s[0], k = s[1], n = s[2];
    std::vector<float> a(m * k), b(k * n), c(m * n), ref(m * n);
    for (auto& v : a) v = static_cast<float>(rng.normal());
    for (auto& v : b) v = static_cast<float>(rng.normal());
    gemm(a.data(), b.data(), c.data(), m, k, n);
    naive(a.data(), b.data(), ref.data(), m, k, n);
    for (std::size_t i = 0; i < c.size(); ++i) {
      EXPECT_NEAR(c[i], ref[i], 1e-3F) << "shape " << m << "x" << k << "x"
                                       << n << " at " << i;
    }
  }
}

TEST(Gemm, ZeroRowsInAAreSkippedCorrectly) {
  // The kernel short-circuits zero A entries (im2col padding); the result
  // must still be exact.
  Xoshiro256pp rng(202);
  const std::size_t m = 9, k = 40, n = 13;
  std::vector<float> a(m * k, 0.0F), b(k * n), c(m * n), ref(m * n);
  for (std::size_t i = 0; i < a.size(); i += 3) {
    a[i] = static_cast<float>(rng.normal());
  }
  for (auto& v : b) v = static_cast<float>(rng.normal());
  gemm(a.data(), b.data(), c.data(), m, k, n);
  naive(a.data(), b.data(), ref.data(), m, k, n);
  for (std::size_t i = 0; i < c.size(); ++i) EXPECT_NEAR(c[i], ref[i], 1e-4F);
}

TEST(Gemv, MatchesGemmSingleColumn) {
  Xoshiro256pp rng(203);
  const std::size_t m = 37, k = 101;
  std::vector<float> a(m * k), x(k), y(m), ref(m);
  for (auto& v : a) v = static_cast<float>(rng.normal());
  for (auto& v : x) v = static_cast<float>(rng.normal());
  gemv(a.data(), x.data(), y.data(), m, k);
  gemm(a.data(), x.data(), ref.data(), m, k, 1);
  for (std::size_t i = 0; i < m; ++i) EXPECT_NEAR(y[i], ref[i], 1e-3F);
}

TEST(Gemv, Accumulate) {
  const std::vector<float> a{1, 2};
  const std::vector<float> x{3, 4};
  std::vector<float> y{100};
  gemv(a.data(), x.data(), y.data(), 1, 2, /*accumulate=*/true);
  EXPECT_FLOAT_EQ(y[0], 111.0F);
}

}  // namespace
}  // namespace nocw::nn
