// Gradient checks for the trainable layer subset (finite differences).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "nn/layers.hpp"
#include "util/rng.hpp"

namespace nocw::nn {
namespace {

Tensor run1(Layer& layer, const Tensor& in) {
  const Tensor* ins[1] = {&in};
  return layer.forward(std::span<const Tensor* const>(ins, 1));
}

std::vector<Tensor> back1(Layer& layer, const Tensor& in,
                          const Tensor& grad_out) {
  const Tensor* ins[1] = {&in};
  return layer.backward(std::span<const Tensor* const>(ins, 1), grad_out);
}

/// Scalar loss = sum(out * weights) so dLoss/dOut = weights; compare the
/// analytic input gradient with central finite differences.
void check_input_gradient(Layer& layer, Tensor in, double tol = 2e-2) {
  Xoshiro256pp rng(7);
  Tensor out = run1(layer, in);
  Tensor loss_w(out.shape());
  for (auto& v : loss_w.data()) v = static_cast<float>(rng.normal());

  layer.zero_grads();
  const auto grads = back1(layer, in, loss_w);
  ASSERT_EQ(grads.size(), 1u);
  const Tensor& gin = grads[0];
  ASSERT_EQ(gin.shape(), in.shape());

  const float eps = 1e-2F;
  for (std::size_t i = 0; i < in.size(); i += std::max<std::size_t>(
                                             1, in.size() / 24)) {
    const float orig = in[i];
    in[i] = orig + eps;
    const Tensor up = run1(layer, in);
    in[i] = orig - eps;
    const Tensor dn = run1(layer, in);
    in[i] = orig;
    double fd = 0.0;
    for (std::size_t j = 0; j < up.size(); ++j) {
      fd += static_cast<double>(loss_w[j]) * (up[j] - dn[j]);
    }
    fd /= 2.0 * eps;
    EXPECT_NEAR(gin[i], fd, tol * std::max(1.0, std::abs(fd))) << "index " << i;
  }
}

TEST(Backward, DenseInputGradient) {
  Xoshiro256pp rng(221);
  Dense d("d", 6, 4);
  for (auto& w : d.kernel()) w = static_cast<float>(rng.normal());
  Tensor in({2, 6});
  for (auto& v : in.data()) v = static_cast<float>(rng.normal());
  check_input_gradient(d, in);
}

TEST(Backward, DenseWeightGradient) {
  Xoshiro256pp rng(222);
  Dense d("d", 3, 2);
  for (auto& w : d.kernel()) w = static_cast<float>(rng.normal());
  Tensor in({1, 3});
  for (auto& v : in.data()) v = static_cast<float>(rng.normal());
  Tensor grad_out({1, 2});
  grad_out[0] = 1.0F;
  grad_out[1] = -0.5F;
  d.zero_grads();
  (void)back1(d, in, grad_out);
  // dL/dW[i][j] = x[i] * g[j]; verify by stepping a weight and re-running.
  const float eps = 1e-2F;
  const Tensor base = run1(d, in);
  const double base_loss = base[0] * 1.0 + base[1] * -0.5;
  d.kernel()[2] += eps;  // weight (in=1, out=0)
  const Tensor stepped = run1(d, in);
  const double new_loss = stepped[0] * 1.0 + stepped[1] * -0.5;
  const double fd = (new_loss - base_loss) / eps;
  EXPECT_NEAR(fd, in[1] * grad_out[0], 1e-3);
}

TEST(Backward, DenseSgdStepMovesAgainstGradient) {
  Dense d("d", 1, 1);
  d.kernel()[0] = 1.0F;
  Tensor in({1, 1});
  in[0] = 2.0F;
  Tensor grad_out({1, 1});
  grad_out[0] = 1.0F;  // dL/dy = 1 -> dL/dw = x = 2
  d.zero_grads();
  (void)back1(d, in, grad_out);
  d.sgd_step(0.1F);
  EXPECT_FLOAT_EQ(d.kernel()[0], 1.0F - 0.1F * 2.0F);
}

TEST(Backward, Conv2DInputGradient) {
  Xoshiro256pp rng(223);
  Conv2D c("c", 2, 3, 3, 3, 1, Padding::Valid);
  for (auto& w : c.kernel()) w = static_cast<float>(rng.normal());
  Tensor in({1, 5, 5, 2});
  for (auto& v : in.data()) v = static_cast<float>(rng.normal());
  check_input_gradient(c, in);
}

TEST(Backward, Conv2DStridedInputGradient) {
  Xoshiro256pp rng(224);
  Conv2D c("c", 1, 2, 2, 2, 2, Padding::Valid);
  for (auto& w : c.kernel()) w = static_cast<float>(rng.normal());
  Tensor in({1, 4, 4, 1});
  for (auto& v : in.data()) v = static_cast<float>(rng.normal());
  check_input_gradient(c, in);
}

TEST(Backward, Conv2DSamePaddingThrows) {
  Conv2D c("c", 1, 1, 3, 3, 1, Padding::Same);
  Tensor in({1, 4, 4, 1});
  Tensor g({1, 4, 4, 1});
  EXPECT_THROW(back1(c, in, g), std::logic_error);
}

TEST(Backward, ReluMasksGradient) {
  ReLU r("r");
  Tensor in({1, 3});
  in[0] = -1.0F;
  in[1] = 2.0F;
  in[2] = 0.0F;
  Tensor g({1, 3});
  g.fill(1.0F);
  const auto grads = back1(r, in, g);
  EXPECT_FLOAT_EQ(grads[0][0], 0.0F);
  EXPECT_FLOAT_EQ(grads[0][1], 1.0F);
  EXPECT_FLOAT_EQ(grads[0][2], 0.0F);  // non-positive blocked
}

TEST(Backward, MaxPoolRoutesToArgmax) {
  MaxPool mp("p", 2, 2);
  Tensor in({1, 2, 2, 1});
  in.at(0, 0, 0, 0) = 1.0F;
  in.at(0, 0, 1, 0) = 5.0F;
  in.at(0, 1, 0, 0) = 2.0F;
  in.at(0, 1, 1, 0) = 3.0F;
  Tensor g({1, 1, 1, 1});
  g[0] = 7.0F;
  const auto grads = back1(mp, in, g);
  EXPECT_FLOAT_EQ(grads[0].at(0, 0, 1, 0), 7.0F);
  EXPECT_FLOAT_EQ(grads[0].at(0, 0, 0, 0), 0.0F);
  EXPECT_FLOAT_EQ(grads[0].at(0, 1, 1, 0), 0.0F);
}

TEST(Backward, FlattenReshapesGradient) {
  Flatten f("f");
  Tensor in({1, 2, 2, 1});
  Tensor g({1, 4});
  for (int i = 0; i < 4; ++i) g[static_cast<std::size_t>(i)] = i;
  const auto grads = back1(f, in, g);
  EXPECT_EQ(grads[0].shape(), in.shape());
  EXPECT_FLOAT_EQ(grads[0].at(0, 1, 1, 0), 3.0F);
}

TEST(Backward, UnsupportedLayerThrows) {
  BatchNorm bn("bn", 2);
  Tensor in({1, 2});
  Tensor g({1, 2});
  EXPECT_THROW(back1(bn, in, g), std::logic_error);
}

}  // namespace
}  // namespace nocw::nn
