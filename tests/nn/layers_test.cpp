#include "nn/layers.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numeric>
#include <vector>

#include "util/rng.hpp"

namespace nocw::nn {
namespace {

Tensor run1(const Layer& layer, const Tensor& in) {
  const Tensor* ins[1] = {&in};
  return layer.forward(std::span<const Tensor* const>(ins, 1));
}

// --- shape helpers ----------------------------------------------------------

TEST(ConvShape, ValidAndSameExtents) {
  EXPECT_EQ(conv_out_extent(32, 5, 1, Padding::Valid), 28);
  EXPECT_EQ(conv_out_extent(28, 2, 2, Padding::Valid), 14);
  EXPECT_EQ(conv_out_extent(224, 3, 1, Padding::Same), 224);
  EXPECT_EQ(conv_out_extent(224, 3, 2, Padding::Same), 112);
  EXPECT_EQ(conv_out_extent(227, 11, 4, Padding::Valid), 55);
}

TEST(ConvShape, SamePadTotals) {
  EXPECT_EQ(same_pad_total(224, 3, 1), 2);
  EXPECT_EQ(same_pad_total(224, 3, 2), 1);
  EXPECT_EQ(same_pad_total(5, 1, 1), 0);
}

// --- Conv2D -------------------------------------------------------------------

TEST(Conv2D, IdentityKernelPassesThrough) {
  Conv2D conv("c", 1, 1, 1, 1, 1, Padding::Valid);
  conv.kernel()[0] = 1.0F;
  Tensor in({1, 3, 3, 1});
  std::iota(in.data().begin(), in.data().end(), 0.0F);
  const Tensor out = run1(conv, in);
  EXPECT_EQ(out.shape(), in.shape());
  for (std::size_t i = 0; i < in.size(); ++i) EXPECT_EQ(out[i], in[i]);
}

TEST(Conv2D, SumKernelComputesWindowSums) {
  Conv2D conv("c", 1, 1, 3, 3, 1, Padding::Valid);
  for (auto& w : conv.kernel()) w = 1.0F;
  Tensor in({1, 3, 3, 1});
  in.fill(1.0F);
  const Tensor out = run1(conv, in);
  ASSERT_EQ(out.shape(), (std::vector<int>{1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(out[0], 9.0F);
}

TEST(Conv2D, BiasIsAdded) {
  Conv2D conv("c", 1, 2, 1, 1, 1, Padding::Valid);
  conv.kernel()[0] = 0.0F;
  conv.kernel()[1] = 0.0F;
  conv.bias()[0] = 1.5F;
  conv.bias()[1] = -2.0F;
  Tensor in({1, 2, 2, 1});
  const Tensor out = run1(conv, in);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0, 0), 1.5F);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0, 1), -2.0F);
}

TEST(Conv2D, SamePaddingZerosOutside) {
  // 3x3 all-ones kernel over an all-ones 3x3 input with SAME padding:
  // corners see 4 valid pixels, edges 6, center 9.
  Conv2D conv("c", 1, 1, 3, 3, 1, Padding::Same);
  for (auto& w : conv.kernel()) w = 1.0F;
  Tensor in({1, 3, 3, 1});
  in.fill(1.0F);
  const Tensor out = run1(conv, in);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0, 0), 4.0F);
  EXPECT_FLOAT_EQ(out.at(0, 0, 1, 0), 6.0F);
  EXPECT_FLOAT_EQ(out.at(0, 1, 1, 0), 9.0F);
}

TEST(Conv2D, StrideSkipsPositions) {
  Conv2D conv("c", 1, 1, 1, 1, 2, Padding::Valid);
  conv.kernel()[0] = 1.0F;
  Tensor in({1, 4, 4, 1});
  std::iota(in.data().begin(), in.data().end(), 0.0F);
  const Tensor out = run1(conv, in);
  ASSERT_EQ(out.shape(), (std::vector<int>{1, 2, 2, 1}));
  EXPECT_FLOAT_EQ(out.at(0, 0, 0, 0), 0.0F);
  EXPECT_FLOAT_EQ(out.at(0, 0, 1, 0), 2.0F);
  EXPECT_FLOAT_EQ(out.at(0, 1, 0, 0), 8.0F);
}

TEST(Conv2D, MultiChannelAgreesWithNaive) {
  Xoshiro256pp rng(211);
  Conv2D conv("c", 3, 5, 3, 3, 1, Padding::Valid);
  for (auto& w : conv.kernel()) w = static_cast<float>(rng.normal());
  for (auto& b : conv.bias()) b = static_cast<float>(rng.normal());
  Tensor in({2, 6, 7, 3});
  for (auto& v : in.data()) v = static_cast<float>(rng.normal());
  const Tensor out = run1(conv, in);
  ASSERT_EQ(out.shape(), (std::vector<int>{2, 4, 5, 5}));
  // Naive direct convolution.
  auto kernel = conv.kernel();
  for (int n = 0; n < 2; ++n) {
    for (int y = 0; y < 4; ++y) {
      for (int x = 0; x < 5; ++x) {
        for (int co = 0; co < 5; ++co) {
          double acc = conv.bias()[co];
          for (int ky = 0; ky < 3; ++ky) {
            for (int kx = 0; kx < 3; ++kx) {
              for (int ci = 0; ci < 3; ++ci) {
                acc += static_cast<double>(in.at(n, y + ky, x + kx, ci)) *
                       kernel[((static_cast<std::size_t>(ky) * 3 + kx) * 3 +
                               ci) * 5 + co];
              }
            }
          }
          EXPECT_NEAR(out.at(n, y, x, co), acc, 1e-4);
        }
      }
    }
  }
}

TEST(Conv2D, ParamCountMatchesKeras) {
  Conv2D conv("c", 3, 96, 11, 11, 4, Padding::Valid);
  EXPECT_EQ(conv.param_count(), 11u * 11 * 3 * 96 + 96);
}

TEST(Conv2D, ChannelMismatchThrows) {
  Conv2D conv("c", 3, 4, 3, 3, 1, Padding::Valid);
  Tensor in({1, 5, 5, 2});
  EXPECT_THROW(run1(conv, in), std::invalid_argument);
}

// --- DepthwiseConv2D ----------------------------------------------------------

TEST(DepthwiseConv2D, PerChannelIndependent) {
  DepthwiseConv2D dw("dw", 2, 1, 1, 1, Padding::Valid);
  dw.kernel()[0] = 2.0F;  // channel 0 doubled
  dw.kernel()[1] = 3.0F;  // channel 1 tripled
  Tensor in({1, 2, 2, 2});
  in.fill(1.0F);
  const Tensor out = run1(dw, in);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0, 0), 2.0F);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0, 1), 3.0F);
}

TEST(DepthwiseConv2D, WindowSumsPerChannel) {
  DepthwiseConv2D dw("dw", 1, 3, 3, 1, Padding::Same);
  for (auto& w : dw.kernel()) w = 1.0F;
  Tensor in({1, 3, 3, 1});
  in.fill(1.0F);
  const Tensor out = run1(dw, in);
  EXPECT_FLOAT_EQ(out.at(0, 1, 1, 0), 9.0F);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0, 0), 4.0F);
}

TEST(DepthwiseConv2D, ParamCount) {
  DepthwiseConv2D dw("dw", 32, 3, 3, 1, Padding::Same);
  EXPECT_EQ(dw.param_count(), 3u * 3 * 32 + 32);
}

// --- Dense ---------------------------------------------------------------------

TEST(Dense, LinearMap) {
  Dense d("d", 2, 2);
  // kernel layout [in][out]
  d.kernel()[0] = 1.0F;  // in0->out0
  d.kernel()[1] = 2.0F;  // in0->out1
  d.kernel()[2] = 3.0F;  // in1->out0
  d.kernel()[3] = 4.0F;  // in1->out1
  d.bias()[0] = 0.5F;
  Tensor in({1, 2});
  in[0] = 1.0F;
  in[1] = 1.0F;
  const Tensor out = run1(d, in);
  EXPECT_FLOAT_EQ(out[0], 4.5F);
  EXPECT_FLOAT_EQ(out[1], 6.0F);
}

TEST(Dense, BatchRowsIndependent) {
  Dense d("d", 1, 1);
  d.kernel()[0] = 2.0F;
  Tensor in({3, 1});
  in[0] = 1.0F;
  in[1] = 2.0F;
  in[2] = 3.0F;
  const Tensor out = run1(d, in);
  EXPECT_FLOAT_EQ(out[0], 2.0F);
  EXPECT_FLOAT_EQ(out[1], 4.0F);
  EXPECT_FLOAT_EQ(out[2], 6.0F);
}

TEST(Dense, ParamCount) {
  Dense d("d", 400, 120);
  EXPECT_EQ(d.param_count(), 400u * 120 + 120);
}

// --- Pooling ---------------------------------------------------------------------

TEST(MaxPool, PicksWindowMax) {
  MaxPool mp("p", 2, 2);
  Tensor in({1, 2, 2, 1});
  in.at(0, 0, 0, 0) = 1.0F;
  in.at(0, 0, 1, 0) = 5.0F;
  in.at(0, 1, 0, 0) = -2.0F;
  in.at(0, 1, 1, 0) = 3.0F;
  const Tensor out = run1(mp, in);
  ASSERT_EQ(out.shape(), (std::vector<int>{1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(out[0], 5.0F);
}

TEST(MaxPool, SamePaddingIgnoresOutside) {
  MaxPool mp("p", 3, 2, Padding::Same);
  Tensor in({1, 4, 4, 1});
  in.fill(-1.0F);
  in.at(0, 3, 3, 0) = 9.0F;
  const Tensor out = run1(mp, in);
  ASSERT_EQ(out.shape(), (std::vector<int>{1, 2, 2, 1}));
  EXPECT_FLOAT_EQ(out.at(0, 1, 1, 0), 9.0F);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0, 0), -1.0F);  // padding never wins
}

TEST(AvgPool, AveragesWindow) {
  AvgPool ap("p", 2, 2);
  Tensor in({1, 2, 2, 1});
  in.at(0, 0, 0, 0) = 1.0F;
  in.at(0, 0, 1, 0) = 2.0F;
  in.at(0, 1, 0, 0) = 3.0F;
  in.at(0, 1, 1, 0) = 4.0F;
  const Tensor out = run1(ap, in);
  EXPECT_FLOAT_EQ(out[0], 2.5F);
}

TEST(AvgPool, SamePaddingCountsOnlyValid) {
  // TF semantics: padded positions are excluded from the divisor.
  AvgPool ap("p", 3, 1, Padding::Same);
  Tensor in({1, 3, 3, 1});
  in.fill(1.0F);
  const Tensor out = run1(ap, in);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0, 0), 1.0F);  // 4 valid ones / 4
  EXPECT_FLOAT_EQ(out.at(0, 1, 1, 0), 1.0F);  // 9 / 9
}

TEST(GlobalAvgPool, ReducesSpatial) {
  GlobalAvgPool gap("gap");
  Tensor in({2, 2, 2, 3});
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = static_cast<float>(i % 3);  // each channel constant per position
  }
  const Tensor out = run1(gap, in);
  ASSERT_EQ(out.shape(), (std::vector<int>{2, 3}));
  EXPECT_FLOAT_EQ(out.at(0, 0), 0.0F);
  EXPECT_FLOAT_EQ(out.at(0, 1), 1.0F);
  EXPECT_FLOAT_EQ(out.at(0, 2), 2.0F);
}

// --- Activations -------------------------------------------------------------------

TEST(Activations, ReluClampsNegative) {
  ReLU r("r");
  Tensor in({1, 4});
  in[0] = -1.0F;
  in[1] = 0.0F;
  in[2] = 2.0F;
  in[3] = -0.5F;
  const Tensor out = run1(r, in);
  EXPECT_FLOAT_EQ(out[0], 0.0F);
  EXPECT_FLOAT_EQ(out[2], 2.0F);
}

TEST(Activations, Relu6ClampsBothEnds) {
  ReLU6 r("r6");
  Tensor in({1, 3});
  in[0] = -1.0F;
  in[1] = 3.0F;
  in[2] = 10.0F;
  const Tensor out = run1(r, in);
  EXPECT_FLOAT_EQ(out[0], 0.0F);
  EXPECT_FLOAT_EQ(out[1], 3.0F);
  EXPECT_FLOAT_EQ(out[2], 6.0F);
}

TEST(Activations, SoftmaxRowsSumToOne) {
  Softmax s("s");
  Tensor in({2, 5});
  Xoshiro256pp rng(212);
  for (auto& v : in.data()) v = static_cast<float>(rng.normal(0.0, 3.0));
  const Tensor out = run1(s, in);
  for (int r = 0; r < 2; ++r) {
    float sum = 0.0F;
    for (int c = 0; c < 5; ++c) sum += out.at(r, c);
    EXPECT_NEAR(sum, 1.0F, 1e-5F);
  }
}

TEST(Activations, SoftmaxStableForLargeLogits) {
  Softmax s("s");
  Tensor in({1, 3});
  in[0] = 1000.0F;
  in[1] = 1001.0F;
  in[2] = 999.0F;
  const Tensor out = run1(s, in);
  EXPECT_FALSE(std::isnan(out[0]));
  EXPECT_GT(out[1], out[0]);
  EXPECT_GT(out[0], out[2]);
}

TEST(Activations, SoftmaxPreservesOrdering) {
  Softmax s("s");
  Tensor in({1, 4});
  in[0] = 0.1F;
  in[1] = 2.0F;
  in[2] = -1.0F;
  in[3] = 0.5F;
  const Tensor out = run1(s, in);
  EXPECT_GT(out[1], out[3]);
  EXPECT_GT(out[3], out[0]);
  EXPECT_GT(out[0], out[2]);
}

// --- Shape ops & norm -----------------------------------------------------------

TEST(Flatten, CollapsesToRank2) {
  Flatten f("f");
  Tensor in({2, 3, 4, 5});
  const Tensor out = run1(f, in);
  EXPECT_EQ(out.shape(), (std::vector<int>{2, 60}));
}

TEST(Reshape, ViewsAsGivenShape) {
  Reshape r("r", {1, 1, 6});
  Tensor in({2, 6});
  const Tensor out = run1(r, in);
  EXPECT_EQ(out.shape(), (std::vector<int>{2, 1, 1, 6}));
}

TEST(BatchNorm, IdentityWithDefaultStats) {
  // gamma=1, beta=0, mean=0, var=1 -> output ~= input (up to epsilon).
  BatchNorm bn("bn", 3, 1e-5F);
  Tensor in({1, 2, 2, 3});
  Xoshiro256pp rng(213);
  for (auto& v : in.data()) v = static_cast<float>(rng.normal());
  const Tensor out = run1(bn, in);
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_NEAR(out[i], in[i], 1e-4F);
  }
}

TEST(BatchNorm, AppliesFoldedScaleShift) {
  BatchNorm bn("bn", 1, 0.0F);
  bn.kernel()[0] = 2.0F;       // gamma
  bn.bias()[0] = 1.0F;         // beta
  bn.moving_mean()[0] = 3.0F;
  bn.moving_var()[0] = 4.0F;   // sqrt = 2
  Tensor in({1, 1});
  in[0] = 5.0F;
  const Tensor out = run1(bn, in);
  // y = gamma*(x-mean)/sqrt(var) + beta = 2*(5-3)/2 + 1 = 3
  EXPECT_FLOAT_EQ(out[0], 3.0F);
}

TEST(BatchNorm, ParamCountIsFourPerChannel) {
  BatchNorm bn("bn", 64);
  EXPECT_EQ(bn.param_count(), 256u);
}

// --- Merging ---------------------------------------------------------------------

TEST(Add, SumsInputs) {
  Add add("a");
  Tensor x({1, 3});
  Tensor y({1, 3});
  x[0] = 1.0F;
  y[0] = 2.0F;
  x[2] = -1.0F;
  y[2] = 1.0F;
  const Tensor* ins[2] = {&x, &y};
  const Tensor out = add.forward(std::span<const Tensor* const>(ins, 2));
  EXPECT_FLOAT_EQ(out[0], 3.0F);
  EXPECT_FLOAT_EQ(out[2], 0.0F);
}

TEST(Add, ShapeMismatchThrows) {
  Add add("a");
  Tensor x({1, 3});
  Tensor y({1, 4});
  const Tensor* ins[2] = {&x, &y};
  EXPECT_THROW(add.forward(std::span<const Tensor* const>(ins, 2)),
               std::invalid_argument);
}

TEST(Concat, JoinsChannels) {
  Concat cat("c");
  Tensor x({1, 1, 1, 2});
  Tensor y({1, 1, 1, 3});
  x[0] = 1.0F;
  x[1] = 2.0F;
  y[0] = 3.0F;
  y[1] = 4.0F;
  y[2] = 5.0F;
  const Tensor* ins[2] = {&x, &y};
  const Tensor out = cat.forward(std::span<const Tensor* const>(ins, 2));
  ASSERT_EQ(out.shape(), (std::vector<int>{1, 1, 1, 5}));
  for (int c = 0; c < 5; ++c) {
    EXPECT_FLOAT_EQ(out.at(0, 0, 0, c), static_cast<float>(c + 1));
  }
}

TEST(Concat, SpatialMismatchThrows) {
  Concat cat("c");
  Tensor x({1, 2, 2, 1});
  Tensor y({1, 3, 3, 1});
  const Tensor* ins[2] = {&x, &y};
  EXPECT_THROW(cat.forward(std::span<const Tensor* const>(ins, 2)),
               std::invalid_argument);
}

}  // namespace
}  // namespace nocw::nn
