#include "nn/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "nn/models.hpp"

namespace nocw::nn {
namespace {

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(Serialize, RoundTripRestoresEveryParameter) {
  Model a = make_lenet5(1);
  const std::string path = temp_path("lenet_rt.weights");
  ASSERT_TRUE(save_weights(a.graph, path));

  Model b = make_lenet5(2);  // different weights
  ASSERT_TRUE(load_weights(b.graph, path));
  for (int idx : a.graph.parameterized_nodes()) {
    const auto wa = a.graph.layer(idx).kernel();
    const auto wb = b.graph.layer(idx).kernel();
    ASSERT_EQ(wa.size(), wb.size());
    for (std::size_t i = 0; i < wa.size(); ++i) EXPECT_EQ(wa[i], wb[i]);
    const auto ba = a.graph.layer(idx).bias();
    const auto bb = b.graph.layer(idx).bias();
    for (std::size_t i = 0; i < ba.size(); ++i) EXPECT_EQ(ba[i], bb[i]);
  }
  std::remove(path.c_str());
}

TEST(Serialize, BatchNormStatisticsIncluded) {
  Model a = make_mobilenet(1);
  const std::string path = temp_path("mobilenet_bn.weights");
  ASSERT_TRUE(save_weights(a.graph, path));
  Model b = make_mobilenet(7);
  ASSERT_TRUE(load_weights(b.graph, path));
  const int bn = b.graph.find("conv1_bn");
  ASSERT_GE(bn, 0);
  auto& bn_a = static_cast<BatchNorm&>(a.graph.layer(a.graph.find("conv1_bn")));
  auto& bn_b = static_cast<BatchNorm&>(b.graph.layer(bn));
  for (std::size_t i = 0; i < bn_a.moving_mean().size(); ++i) {
    EXPECT_EQ(bn_a.moving_mean()[i], bn_b.moving_mean()[i]);
    EXPECT_EQ(bn_a.moving_var()[i], bn_b.moving_var()[i]);
  }
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileFailsGracefully) {
  Model m = make_lenet5();
  EXPECT_FALSE(load_weights(m.graph, temp_path("does_not_exist.weights")));
}

TEST(Serialize, CorruptMagicThrowsDescriptiveError) {
  const std::string path = temp_path("corrupt.weights");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char junk[] = "not a checkpoint";
    std::fwrite(junk, 1, sizeof(junk), f);
    std::fclose(f);
  }
  Model m = make_lenet5();
  try {
    load_weights(m.graph, path);
    FAIL() << "corrupt magic must throw";
  } catch (const SerializeError& e) {
    EXPECT_EQ(e.byte_offset(), 0U);
    EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(Serialize, UnsupportedVersionThrows) {
  Model a = make_lenet5();
  const std::string path = temp_path("badver.weights");
  ASSERT_TRUE(save_weights(a.graph, path));
  {
    // Overwrite the version field (bytes 4..7) with a bogus value.
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 4, SEEK_SET), 0);
    const std::uint32_t bogus = 0xDEAD;
    std::fwrite(&bogus, sizeof(bogus), 1, f);
    std::fclose(f);
  }
  Model b = make_lenet5();
  try {
    load_weights(b.graph, path);
    FAIL() << "version mismatch must throw";
  } catch (const SerializeError& e) {
    EXPECT_EQ(e.byte_offset(), 4U);
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(Serialize, TruncatedFileThrowsWithByteOffset) {
  Model a = make_lenet5();
  const std::string path = temp_path("trunc.weights");
  ASSERT_TRUE(save_weights(a.graph, path));
  // Truncate to half.
  long size = 0;
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    std::fseek(f, 0, SEEK_END);
    size = std::ftell(f);
    std::fclose(f);
    ASSERT_EQ(truncate(path.c_str(), size / 2), 0);
  }
  Model b = make_lenet5();
  try {
    load_weights(b.graph, path);
    FAIL() << "truncated checkpoint must throw";
  } catch (const SerializeError& e) {
    // The parse must stop inside the file that remains.
    EXPECT_LE(e.byte_offset(), static_cast<std::size_t>(size / 2));
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace nocw::nn
