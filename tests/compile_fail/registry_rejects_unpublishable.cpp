// MUST NOT COMPILE: Picojoules has no registry unit (exporting it raw would
// be off by 1e12), so the typed publish path rejects it via static_assert.
#include "obs/registry.hpp"
#include "util/units.hpp"

int main() {
  nocw::obs::Registry reg;
  reg.set_gauge("energy.per_event", nocw::units::Picojoules{37.8});
  return 0;
}
