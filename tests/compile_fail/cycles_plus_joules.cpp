// MUST NOT COMPILE: adding a latency to an energy is dimensionally absurd;
// the whole point of the quantity types is that this line is a type error.
#include "util/units.hpp"

int main() {
  const auto broken = nocw::units::Cycles{10} + nocw::units::Joules{1.0};
  (void)broken;
  return 0;
}
