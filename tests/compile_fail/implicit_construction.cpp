// MUST NOT COMPILE: construction is explicit — a bare double is not an
// energy, and a function expecting Joules must not accept one silently.
#include "util/units.hpp"

namespace {
double account(nocw::units::Joules j) { return j.value(); }
}  // namespace

int main() {
  return account(3.5) > 0.0 ? 0 : 1;  // double -> Joules must not convert
}
