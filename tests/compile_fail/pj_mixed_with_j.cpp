// MUST NOT COMPILE: a picojoule table entry added to an exported joule total
// is the exact 1e12-scale bug the types exist to stop; the only path is the
// named conversion to_joules().
#include "util/units.hpp"

int main() {
  nocw::units::Joules total{0.0};
  total += nocw::units::Picojoules{37.8};  // forgot to_joules()
  return total.value() > 0.0 ? 0 : 1;
}
