// CONTROL — MUST COMPILE. Exercises the same headers and legal forms of the
// operations the sibling files misuse; if this file fails, the negative
// tests' compiler invocation is broken and their failures are meaningless.
#include "obs/registry.hpp"
#include "util/units.hpp"

int main() {
  using namespace nocw::units;
  const Cycles c = Cycles{10} + Cycles{5};
  const Joules j = to_joules(Picojoules{37.8});
  const Words w = to_words(Bits{65}, 32);
  const double ratio = FracCycles{3.0} / FracCycles{2.0};
  nocw::obs::Registry reg;
  reg.set_gauge("energy.total", j);
  reg.set_counter("noc.flits", flits_of(w));
  return (c.value() == 15 && ratio > 0.0) ? 0 : 1;
}
