// MUST NOT COMPILE: flit counts and bit counts differ by the link width;
// comparing or adding them skips the checked to_words()/to_bits() conversion.
#include "util/units.hpp"

int main() {
  const nocw::units::Flits f{64};
  const nocw::units::Bits b{64};
  return f == b ? 0 : 1;  // cross-dimension comparison must not compile
}
