// The admission queue promises bounded occupancy with typed, counted
// rejection and arrival-order iteration for the schedulers.
#include "serve/queue.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace nocw::serve {
namespace {

Request make_request(std::uint64_t id, std::size_t class_id,
                     std::uint64_t arrival) {
  Request r;
  r.id = id;
  r.class_id = class_id;
  r.arrival_cycle = arrival;
  return r;
}

TEST(AdmissionQueue, AdmitsUpToCapacityThenSheds) {
  AdmissionQueue q(QueueConfig{2}, /*num_classes=*/1);
  EXPECT_EQ(q.capacity(), 2u);
  EXPECT_FALSE(q.offer(make_request(0, 0, 10)).has_value());
  EXPECT_FALSE(q.offer(make_request(1, 0, 11)).has_value());
  const auto rejected = q.offer(make_request(2, 0, 12));
  ASSERT_TRUE(rejected.has_value());
  EXPECT_EQ(*rejected, RejectReason::kQueueFull);
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.shed_total(), 1u);
  EXPECT_EQ(q.shed_for_class(0), 1u);
}

TEST(AdmissionQueue, PendingKeepsArrivalOrder) {
  AdmissionQueue q(QueueConfig{4}, /*num_classes=*/2);
  (void)q.offer(make_request(0, 1, 10));
  (void)q.offer(make_request(1, 0, 20));
  (void)q.offer(make_request(2, 1, 30));
  ASSERT_EQ(q.pending().size(), 3u);
  EXPECT_EQ(q.pending()[0].id, 0u);
  EXPECT_EQ(q.pending()[1].id, 1u);
  EXPECT_EQ(q.pending()[2].id, 2u);
}

TEST(AdmissionQueue, TakeRemovesByIndexPreservingOrder) {
  AdmissionQueue q(QueueConfig{4}, /*num_classes=*/1);
  for (std::uint64_t i = 0; i < 4; ++i) {
    (void)q.offer(make_request(i, 0, i));
  }
  const Request picked = q.take(1);
  EXPECT_EQ(picked.id, 1u);
  ASSERT_EQ(q.size(), 3u);
  EXPECT_EQ(q.pending()[0].id, 0u);
  EXPECT_EQ(q.pending()[1].id, 2u);
  EXPECT_EQ(q.pending()[2].id, 3u);
  // Freed capacity is reusable.
  EXPECT_FALSE(q.offer(make_request(9, 0, 9)).has_value());
  EXPECT_TRUE(q.offer(make_request(10, 0, 10)).has_value());
}

TEST(AdmissionQueue, ShedIsCountedPerClass) {
  AdmissionQueue q(QueueConfig{1}, /*num_classes=*/3);
  (void)q.offer(make_request(0, 0, 1));
  (void)q.offer(make_request(1, 1, 2));  // shed
  (void)q.offer(make_request(2, 2, 3));  // shed
  (void)q.offer(make_request(3, 1, 4));  // shed
  EXPECT_EQ(q.shed_total(), 3u);
  EXPECT_EQ(q.shed_for_class(0), 0u);
  EXPECT_EQ(q.shed_for_class(1), 2u);
  EXPECT_EQ(q.shed_for_class(2), 1u);
}

TEST(AdmissionQueue, RejectReasonIsNamed) {
  EXPECT_STREQ(to_string(RejectReason::kQueueFull), "queue_full");
}

TEST(AdmissionQueue, OutOfRangeClassIsRejectedByCheck) {
  AdmissionQueue q(QueueConfig{2}, /*num_classes=*/1);
  EXPECT_THROW((void)q.offer(make_request(0, 5, 1)), CheckError);
}

}  // namespace
}  // namespace nocw::serve
