// serve/reqtrace promises: template layouts that mirror the simulator's
// phase geometry, span trees rebuilt deterministically from TraceSeeds,
// tail-based top-K retention, SLO-pinned exemplar promotion, and a
// line-wise nocw.reqtrace.v1 export with stamped Perfetto events.
#include "serve/reqtrace.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "obs/trace.hpp"
#include "serve/trace_ids.hpp"
#include "util/check.hpp"

namespace nocw::serve {
namespace {

accel::LayerResult make_layer(const std::string& name, double mem,
                              double comm, double comp) {
  accel::LayerResult lr;
  lr.name = name;
  lr.latency.memory_cycles = units::FracCycles{mem};
  lr.latency.comm_cycles = units::FracCycles{comm};
  lr.latency.compute_cycles = units::FracCycles{comp};
  return lr;
}

accel::InferenceResult synthetic_result() {
  accel::InferenceResult r;
  r.model_name = "synthetic";
  r.layers.push_back(make_layer("conv1", 100.0, 20.0, 30.0));  // total 150
  r.layers.push_back(make_layer("fc1", 40.0, 10.0, 50.0));     // total 100
  return r;
}

ClassTraceTemplate synthetic_template() {
  ClassTraceTemplate tpl;
  tpl.class_name = "synthetic";
  accel::CompressionPlan plan;
  plan["fc1"] = accel::LayerCompression{};
  tpl.full = layout_spans(synthetic_result(), &plan);
  tpl.marginal = layout_spans(synthetic_result(), nullptr);
  return tpl;
}

/// A completed-request seed with the given latency, arriving at cycle 100
/// and spending 10 cycles queued.
TraceSeed make_seed(std::uint64_t request_id, std::uint64_t latency) {
  TraceSeed s;
  s.request_id = request_id;
  s.class_id = 0;
  s.root = request_trace_context(0x5EED, request_id);
  s.arrival_cycle = 100;
  s.batch_start = 110;
  s.svc_start = 110;
  s.svc_dur = latency - 10;
  s.finish_cycle = 100 + latency;
  s.latency_cycles = latency;
  return s;
}

TraceSeed make_shed_seed(std::uint64_t request_id) {
  TraceSeed s;
  s.request_id = request_id;
  s.class_id = 0;
  s.shed = true;
  s.root = request_trace_context(0x5EED, request_id);
  s.arrival_cycle = 100;
  return s;
}

std::vector<ClassTraceTemplate> one_template() {
  std::vector<ClassTraceTemplate> t;
  t.push_back(synthetic_template());
  return t;
}

TEST(LayoutSpansTest, MirrorsSimulatorPhaseGeometry) {
  accel::CompressionPlan plan;
  plan["fc1"] = accel::LayerCompression{};
  const std::vector<ReqSpanTemplate> spans =
      layout_spans(synthetic_result(), &plan);
  // conv1: layer + dram/noc/mac. fc1 adds a decompress phase.
  ASSERT_EQ(spans.size(), 9u);
  EXPECT_EQ(spans[0].name, "layer:conv1");
  EXPECT_EQ(spans[0].start, 0u);
  EXPECT_EQ(spans[0].dur, 150u);
  EXPECT_EQ(spans[0].phase_slot, 0u);
  EXPECT_EQ(spans[1].name, "dram");
  EXPECT_EQ(spans[1].dur, 100u);
  EXPECT_EQ(spans[2].name, "noc");
  EXPECT_EQ(spans[2].start, 100u);  // after the DRAM phase
  EXPECT_EQ(spans[3].name, "mac");
  EXPECT_EQ(spans[3].start, 120u);  // after the NoC phase
  EXPECT_EQ(spans[3].dur, 30u);
  // fc1 stacks after conv1's rounded total.
  EXPECT_EQ(spans[4].name, "layer:fc1");
  EXPECT_EQ(spans[4].start, 150u);
  EXPECT_EQ(spans[4].layer_index, 1u);
  EXPECT_EQ(spans[8].name, "decompress");
  EXPECT_EQ(spans[8].start, 150u + 50u);  // alongside fc1's mac phase
  EXPECT_EQ(spans[8].phase_slot, 4u);
  // Without a plan there is no decompress span.
  EXPECT_EQ(layout_spans(synthetic_result(), nullptr).size(), 8u);
}

TEST(BuildRequestTraceTest, SpanTreeStructureAndDerivedIds) {
  const ClassTraceTemplate tpl = synthetic_template();
  const TraceSeed seed = make_seed(7, 560);
  const RequestTrace t = build_request_trace(tpl, seed);

  EXPECT_EQ(t.request_id, 7u);
  EXPECT_EQ(t.root_trace_id, seed.root.trace_id);
  EXPECT_EQ(t.latency_cycles, 560u);
  EXPECT_FALSE(t.shed);
  // Root + queue_wait + service + 9 template spans.
  ASSERT_EQ(t.spans.size(), 12u);

  const ReqSpan& root = t.spans[0];
  EXPECT_EQ(root.name, "request:synthetic");
  EXPECT_EQ(root.span_id, seed.root.span_id);
  EXPECT_EQ(root.parent_span_id, 0u);
  EXPECT_EQ(root.start_cycle, 100u);
  EXPECT_EQ(root.dur_cycles, 560u);

  const ReqSpan& wait = t.spans[1];
  EXPECT_EQ(wait.name, "queue_wait");
  EXPECT_EQ(wait.span_id, obs::derive_child(seed.root, 1).span_id);
  EXPECT_EQ(wait.parent_span_id, root.span_id);
  EXPECT_EQ(wait.dur_cycles, 10u);  // batch_start - arrival

  const obs::TraceContext service_ctx = obs::derive_child(seed.root, 2);
  const ReqSpan& service = t.spans[2];
  EXPECT_EQ(service.span_id, service_ctx.span_id);
  EXPECT_EQ(service.start_cycle, 110u);
  EXPECT_EQ(service.dur_cycles, 550u);

  // Layer spans parent on the service span; phase spans on their layer.
  const obs::TraceContext layer0 = obs::derive_child(service_ctx, 3);
  EXPECT_EQ(t.spans[3].span_id, layer0.span_id);
  EXPECT_EQ(t.spans[3].parent_span_id, service_ctx.span_id);
  EXPECT_EQ(t.spans[4].span_id, obs::derive_child(layer0, 1).span_id);
  EXPECT_EQ(t.spans[4].parent_span_id, layer0.span_id);
  // Template starts are relative to the service span.
  EXPECT_EQ(t.spans[5].start_cycle, 110u + 100u);  // noc after dram

  // Every id is nonzero and unique within the tree.
  std::vector<std::uint64_t> ids;
  for (const ReqSpan& s : t.spans) {
    EXPECT_NE(s.span_id, 0u);
    ids.push_back(s.span_id);
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());
}

TEST(BuildRequestTraceTest, MarginalLayoutSelectsResidentTemplate) {
  const ClassTraceTemplate tpl = synthetic_template();
  TraceSeed seed = make_seed(3, 200);
  seed.marginal_layout = true;
  // marginal = no compression plan = no decompress span.
  EXPECT_EQ(build_request_trace(tpl, seed).spans.size(), 11u);
}

TEST(BuildShedTraceTest, ZeroLengthRootWithShedMarker) {
  const ClassTraceTemplate tpl = synthetic_template();
  const TraceSeed seed = make_shed_seed(9);
  const RequestTrace t = build_shed_trace(tpl, seed);
  EXPECT_TRUE(t.shed);
  EXPECT_EQ(t.latency_cycles, 0u);
  ASSERT_EQ(t.spans.size(), 2u);
  EXPECT_EQ(t.spans[0].dur_cycles, 0u);
  EXPECT_EQ(t.spans[1].name, "shed");
  EXPECT_EQ(t.spans[1].parent_span_id, t.spans[0].span_id);
}

TEST(RequestTraceSinkTest, KeepsTopKByLatencyAndCountsDrops) {
  ReqTraceConfig cfg;
  cfg.tail_keep = 4;
  RequestTraceSink sink(1, cfg);
  for (std::uint64_t i = 0; i < 10; ++i) {
    sink.ingest_complete({}, make_seed(i, 100 + 10 * i));
  }
  sink.finish(one_template());
  ASSERT_EQ(sink.tail().size(), 4u);
  // Sorted latency-descending: requests 9, 8, 7, 6.
  EXPECT_EQ(sink.tail()[0].request_id, 9u);
  EXPECT_EQ(sink.tail()[0].latency_cycles, 190u);
  EXPECT_EQ(sink.tail()[3].request_id, 6u);
  EXPECT_EQ(sink.completions_seen(), 10u);
  EXPECT_EQ(sink.dropped_trees(), 6u);
}

TEST(RequestTraceSinkTest, TailTieBreaksOnEarlierRequestId) {
  ReqTraceConfig cfg;
  cfg.tail_keep = 2;
  RequestTraceSink sink(1, cfg);
  for (std::uint64_t i = 0; i < 6; ++i) {
    sink.ingest_complete({}, make_seed(i, 500));
  }
  sink.finish(one_template());
  ASSERT_EQ(sink.tail().size(), 2u);
  EXPECT_EQ(sink.tail()[0].request_id, 0u);
  EXPECT_EQ(sink.tail()[1].request_id, 1u);
}

TEST(RequestTraceSinkTest, RetentionIsIndependentOfIngestOrder) {
  ReqTraceConfig cfg;
  cfg.tail_keep = 3;
  const std::vector<std::uint64_t> latencies = {300, 100, 500, 200,
                                                400, 150, 250};
  RequestTraceSink ascending(1, cfg);
  RequestTraceSink descending(1, cfg);
  for (std::size_t i = 0; i < latencies.size(); ++i) {
    ascending.ingest_complete({}, make_seed(i, latencies[i]));
  }
  for (std::size_t i = latencies.size(); i-- > 0;) {
    descending.ingest_complete({}, make_seed(i, latencies[i]));
  }
  ascending.finish(one_template());
  descending.finish(one_template());
  EXPECT_EQ(ascending.to_json(), descending.to_json());
}

TEST(RequestTraceSinkTest, BreachedClosePromotesPinnedExemplar) {
  RequestTraceSink sink(1);
  const TraceSeed pinned = make_seed(1, 900);
  obs::SloIngest window_max;
  window_max.window_max = true;
  sink.ingest_complete(window_max, pinned);

  obs::SloIngest breached_close;
  breached_close.closed_window = true;
  breached_close.closed_breached = true;
  sink.ingest_complete(breached_close, make_seed(2, 50));
  sink.finish(one_template());

  const RequestTrace* ex = sink.exemplar(pinned.root.trace_id);
  ASSERT_NE(ex, nullptr);
  EXPECT_EQ(ex->request_id, 1u);
  EXPECT_EQ(ex->latency_cycles, 900u);
}

TEST(RequestTraceSinkTest, CleanCloseClearsPendingPin) {
  RequestTraceSink sink(1);
  obs::SloIngest window_max;
  window_max.window_max = true;
  sink.ingest_complete(window_max, make_seed(1, 900));

  obs::SloIngest clean_close;
  clean_close.closed_window = true;
  sink.ingest_complete(clean_close, make_seed(2, 50));
  sink.finish(one_template());
  EXPECT_EQ(sink.exemplar_count(), 0u);
}

TEST(RequestTraceSinkTest, FinishPromotesPendingForFinalWindow) {
  // The monitor's final window closes inside SloMonitor::finish() with no
  // follow-up event, so the sink must keep its last pins.
  RequestTraceSink sink(1);
  obs::SloIngest window_max;
  window_max.window_max = true;
  const TraceSeed pinned = make_seed(5, 700);
  sink.ingest_complete(window_max, pinned);
  sink.finish(one_template());
  EXPECT_NE(sink.exemplar(pinned.root.trace_id), nullptr);
}

TEST(RequestTraceSinkTest, ShedExemplarPromotesAsShedTree) {
  RequestTraceSink sink(1);
  const TraceSeed shed = make_shed_seed(4);
  sink.ingest_shed({}, shed);  // first shed of the window is pinned

  obs::SloIngest breached_close;
  breached_close.closed_window = true;
  breached_close.closed_breached = true;
  sink.ingest_shed(breached_close, make_shed_seed(5));
  sink.finish(one_template());

  const RequestTrace* ex = sink.exemplar(shed.root.trace_id);
  ASSERT_NE(ex, nullptr);
  EXPECT_TRUE(ex->shed);
  EXPECT_EQ(sink.sheds_seen(), 2u);
}

TEST(RequestTraceSinkTest, ExemplarOverflowIsCountedNotStored) {
  ReqTraceConfig cfg;
  cfg.exemplar_capacity = 1;
  RequestTraceSink sink(1, cfg);
  obs::SloIngest window_max;
  window_max.window_max = true;
  obs::SloIngest breached_close;
  breached_close.closed_window = true;
  breached_close.closed_breached = true;

  sink.ingest_complete(window_max, make_seed(1, 900));
  sink.ingest_complete(breached_close, make_seed(2, 50));  // promotes #1
  sink.ingest_complete(window_max, make_seed(3, 800));
  sink.finish(one_template());  // tries to promote #3, capacity is full

  EXPECT_EQ(sink.exemplar_count(), 1u);
  EXPECT_EQ(sink.exemplar_drops(), 1u);
}

TEST(RequestTraceSinkTest, JsonExportCarriesSchemaAndAccounting) {
  ReqTraceConfig cfg;
  cfg.tail_keep = 2;
  RequestTraceSink sink(1, cfg);
  for (std::uint64_t i = 0; i < 5; ++i) {
    sink.ingest_complete({}, make_seed(i, 100 + i));
  }
  sink.finish(one_template());
  const std::string json = sink.to_json();
  EXPECT_NE(json.find("\"schema\":\"nocw.reqtrace.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"completions\":5"), std::string::npos);
  EXPECT_NE(json.find("\"sampled\":2"), std::string::npos);
  EXPECT_NE(json.find("\"dropped_trees\":3"), std::string::npos);
  EXPECT_NE(json.find("\"queue_wait\""), std::string::npos);
}

TEST(RequestTraceSinkTest, ExportBeforeFinishIsRejected) {
  RequestTraceSink sink(1);
  sink.ingest_complete({}, make_seed(1, 100));
  EXPECT_TRUE(sink.tail().empty());  // trees materialize in finish()
  EXPECT_THROW(static_cast<void>(sink.to_json()), CheckError);
}

TEST(ToTraceEventsTest, StampsAttributionForPerfetto) {
  const RequestTrace t =
      build_request_trace(synthetic_template(), make_seed(11, 300));
  const std::vector<obs::TraceEvent> events = to_trace_events(t);
  ASSERT_EQ(events.size(), t.spans.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].ph, 'X');
    EXPECT_EQ(events[i].cat, obs::kCatServe);
    EXPECT_EQ(events[i].pid, obs::kPidServe);
    EXPECT_EQ(events[i].tid, 11u);
    EXPECT_EQ(events[i].trace_id, t.root_trace_id);
    EXPECT_EQ(events[i].span_id, t.spans[i].span_id);
    EXPECT_EQ(events[i].parent_span_id, t.spans[i].parent_span_id);
    EXPECT_EQ(events[i].ts, t.spans[i].start_cycle);
    EXPECT_EQ(events[i].dur, t.spans[i].dur_cycles);
  }
}

TEST(TraceIdsTest, RootMintIsDeterministicAndSeedKeyed) {
  const obs::TraceContext a = request_trace_context(0x5EED, 42);
  const obs::TraceContext b = request_trace_context(0x5EED, 42);
  EXPECT_EQ(a.trace_id, b.trace_id);
  EXPECT_EQ(a.span_id, b.span_id);
  EXPECT_EQ(a.parent_span_id, 0u);
  EXPECT_TRUE(a.valid());
  EXPECT_NE(a.trace_id, a.span_id);
  // Different seed or request => different tree.
  EXPECT_NE(request_trace_context(0x5EED, 43).trace_id, a.trace_id);
  EXPECT_NE(request_trace_context(0x0BAD, 42).trace_id, a.trace_id);
}

}  // namespace
}  // namespace nocw::serve
