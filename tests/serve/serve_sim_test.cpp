// ServeSim end-to-end promises: conservation (offered = admitted + shed,
// everything admitted completes), deterministic results across repeats and
// NOCW_THREADS, policy-sensitive tails on a shared arrival timeline, and a
// queue-depth time series in the closed unit vocabulary.
#include "serve/serve_sim.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "accel/summary.hpp"
#include "nn/models.hpp"
#include "obs/timeseries.hpp"
#include "util/thread_pool.hpp"

namespace nocw::serve {
namespace {

class ServeSimTest : public ::testing::Test {
 protected:
  void TearDown() override { set_global_threads(1); }

  static ServeConfig small_config() {
    ServeConfig cfg;
    cfg.accel.noc_window_flits = 4000;  // keep unit tests quick
    cfg.queue.capacity = 16;
    cfg.batch.max_batch = 4;
    cfg.batch.max_wait = units::Cycles{50'000};
    return cfg;
  }

  /// Two classes over one LeNet-5: "cold" streams weights every inference,
  /// "resident" reuses them (the resident-weights plan), so SJF has a real
  /// cost difference to exploit.
  static std::vector<RequestClass> small_classes() {
    nn::Model model = nn::make_lenet5();
    const accel::ModelSummary summary = accel::summarize(model);
    std::vector<RequestClass> classes(2);
    classes[0].name = "cold";
    classes[0].tenant = 0;
    classes[0].tenant_weight = 1.0;
    classes[0].mix_fraction = 0.5;
    classes[0].summary = summary;
    classes[1].name = "resident";
    classes[1].tenant = 1;
    classes[1].tenant_weight = 4.0;
    classes[1].mix_fraction = 0.5;
    classes[1].summary = summary;
    classes[1].plan = accel::resident_weights_plan(summary);
    return classes;
  }

  /// Arrival timeline at `load` x the sim's batch-amortized capacity.
  static std::vector<Arrival> arrivals_at(const ServeSim& sim, double load,
                                          int requests) {
    double cycles_per_request = 0.0;
    double mix_total = 0.0;
    for (const RequestClass& c : sim.classes()) mix_total += c.mix_fraction;
    const std::uint64_t b = sim.config().batch.max_batch;
    for (std::size_t i = 0; i < sim.profiles().size(); ++i) {
      cycles_per_request +=
          sim.classes()[i].mix_fraction / mix_total *
          static_cast<double>(sim.profiles()[i].batch_cycles(b).value()) /
          static_cast<double>(b);
    }
    ArrivalConfig acfg;
    acfg.rate_per_mcycle = load / cycles_per_request * 1e6;
    acfg.horizon_cycles = static_cast<std::uint64_t>(
        std::ceil(requests * cycles_per_request / load));
    acfg.seed = 99;
    return generate_arrivals(sim.classes(), acfg);
  }
};

void expect_stats_equal(const ClassServeStats& a, const ClassServeStats& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.shed, b.shed);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.shed_rate, b.shed_rate);
  EXPECT_EQ(a.latency.count, b.latency.count);
  EXPECT_EQ(a.latency.mean, b.latency.mean);
  EXPECT_EQ(a.latency.p50, b.latency.p50);
  EXPECT_EQ(a.latency.p99, b.latency.p99);
  EXPECT_EQ(a.latency.p999, b.latency.p999);
  EXPECT_EQ(a.latency.max, b.latency.max);
}

TEST_F(ServeSimTest, ProfilesResidentClassIsCheaper) {
  set_global_threads(1);
  const ServeSim sim(small_config(), small_classes());
  ASSERT_EQ(sim.profiles().size(), 2u);
  const ServiceProfile& cold = sim.profiles()[0];
  const ServiceProfile& resident = sim.profiles()[1];
  EXPECT_GT(cold.full_cycles.value(), 0u);
  EXPECT_LE(cold.marginal_cycles.value(), cold.full_cycles.value());
  EXPECT_LE(resident.marginal_cycles.value(), resident.full_cycles.value());
  // The resident plan strips the weight stream, so its cold cost is below
  // the cold class's and batching it amortizes less.
  EXPECT_LT(resident.full_cycles.value(), cold.full_cycles.value());
  // A batch of n costs full + (n-1)*marginal.
  EXPECT_EQ(cold.batch_cycles(1), cold.full_cycles);
  EXPECT_EQ(cold.batch_cycles(3).value(),
            cold.full_cycles.value() + 2 * cold.marginal_cycles.value());
  EXPECT_EQ(cold.batch_cycles(0).value(), 0u);
}

TEST_F(ServeSimTest, ConservationUnderOverload) {
  set_global_threads(1);
  const ServeSim sim(small_config(), small_classes());
  const std::vector<Arrival> arrivals = arrivals_at(sim, 1.6, 120);
  const ServeResult res = sim.run(arrivals, "fifo");

  EXPECT_EQ(res.aggregate.offered, arrivals.size());
  EXPECT_EQ(res.aggregate.offered, res.aggregate.admitted + res.aggregate.shed);
  EXPECT_EQ(res.aggregate.completed, res.aggregate.admitted);
  EXPECT_GT(res.aggregate.shed, 0u) << "60% overload should shed";
  EXPECT_GT(res.aggregate.completed, 0u);
  EXPECT_GT(res.aggregate.shed_rate, 0.0);
  EXPECT_LT(res.aggregate.shed_rate, 1.0);

  std::uint64_t offered = 0;
  std::uint64_t completed = 0;
  for (const ClassServeStats& c : res.per_class) {
    offered += c.offered;
    completed += c.completed;
    EXPECT_EQ(c.completed, c.admitted) << c.name;
  }
  EXPECT_EQ(offered, res.aggregate.offered);
  EXPECT_EQ(completed, res.aggregate.completed);
  EXPECT_EQ(res.aggregate.latency.count, res.aggregate.completed);

  EXPECT_GT(res.batches, 0u);
  EXPECT_GE(res.mean_batch_size, 1.0);
  EXPECT_LE(res.mean_batch_size,
            static_cast<double>(sim.config().batch.max_batch));
  EXPECT_GT(res.makespan.value(), 0u);
  EXPECT_GT(res.goodput_rps, 0.0);
  // Latency is at least one batch's service time away from zero.
  EXPECT_GT(res.aggregate.latency.p50, 0.0);
  EXPECT_GE(res.aggregate.latency.max, res.aggregate.latency.p50);
}

TEST_F(ServeSimTest, UnderloadedRunShedsNothing) {
  set_global_threads(1);
  const ServeSim sim(small_config(), small_classes());
  const ServeResult res = sim.run(arrivals_at(sim, 0.4, 60), "fifo");
  EXPECT_EQ(res.aggregate.shed, 0u);
  EXPECT_EQ(res.aggregate.completed, res.aggregate.offered);
}

TEST_F(ServeSimTest, EmptyArrivalsGiveEmptyResult) {
  set_global_threads(1);
  const ServeSim sim(small_config(), small_classes());
  const ServeResult res = sim.run({}, "fifo");
  EXPECT_EQ(res.aggregate.offered, 0u);
  EXPECT_EQ(res.aggregate.completed, 0u);
  EXPECT_EQ(res.batches, 0u);
  EXPECT_EQ(res.makespan.value(), 0u);
  EXPECT_EQ(res.goodput_rps, 0.0);
}

TEST_F(ServeSimTest, SjfCutsMedianLatencyUnderOverloadVsFifo) {
  set_global_threads(1);
  const ServeSim sim(small_config(), small_classes());
  const std::vector<Arrival> arrivals = arrivals_at(sim, 1.6, 120);
  const ServeResult fifo = sim.run(arrivals, "fifo");
  const ServeResult sjf = sim.run(arrivals, "sjf");
  EXPECT_EQ(fifo.aggregate.offered, sjf.aggregate.offered);
  EXPECT_LT(sjf.aggregate.latency.p50, fifo.aggregate.latency.p50);
  // The cheap (resident) class's tail improves when it stops waiting
  // behind cold-weight batches.
  EXPECT_LE(sjf.per_class[1].latency.p99, fifo.per_class[1].latency.p99);
}

TEST_F(ServeSimTest, IdenticalAcrossThreadCountsAndRepeats) {
  set_global_threads(1);
  const ServeSim ref_sim(small_config(), small_classes());
  const std::vector<Arrival> arrivals = arrivals_at(ref_sim, 1.2, 80);
  const ServeResult ref = ref_sim.run(arrivals, "priority");

  for (const unsigned threads : {1U, 2U, 8U}) {
    set_global_threads(threads);
    // Rebuild the sim so the profiling inferences themselves run at this
    // thread count — that is where parallelism actually lives.
    const ServeSim sim(small_config(), small_classes());
    const ServeResult got = sim.run(arrivals, "priority");
    ASSERT_EQ(got.per_class.size(), ref.per_class.size());
    for (std::size_t i = 0; i < ref.per_class.size(); ++i) {
      expect_stats_equal(got.per_class[i], ref.per_class[i]);
    }
    expect_stats_equal(got.aggregate, ref.aggregate);
    EXPECT_EQ(got.batches, ref.batches);
    EXPECT_EQ(got.mean_batch_size, ref.mean_batch_size);
    EXPECT_EQ(got.makespan.value(), ref.makespan.value());
    EXPECT_EQ(got.goodput_rps, ref.goodput_rps);
  }
}

TEST_F(ServeSimTest, QueueDepthSeriesIsRecorded) {
  set_global_threads(1);
  const ServeSim sim(small_config(), small_classes());
  obs::TimeSeriesSet ts;
  (void)sim.run(arrivals_at(sim, 1.2, 60), "fifo", &ts);
  ASSERT_TRUE(ts.contains("serve.queue_depth"));
  const obs::TimeSeries depth = ts.series("serve.queue_depth");
  EXPECT_EQ(depth.unit(), "requests");
}

}  // namespace
}  // namespace nocw::serve
