// Scheduler policies are pure and deterministic over the visible queue
// state: FIFO takes the oldest, SJF the cheapest class, priority the
// heaviest tenant weight — all ties breaking toward the oldest request.
#include "serve/scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/check.hpp"
#include "util/units.hpp"

namespace nocw::serve {
namespace {

class SchedulerPolicy : public ::testing::Test {
 protected:
  SchedulerPolicy() : queue_(QueueConfig{16}, /*num_classes=*/3) {
    classes_.resize(3);
    classes_[0].name = "slow_light";
    classes_[0].tenant_weight = 1.0;
    classes_[1].name = "fast_heavy";
    classes_[1].tenant_weight = 4.0;
    classes_[2].name = "mid_mid";
    classes_[2].tenant_weight = 2.0;
    profiles_.resize(3);
    profiles_[0].full_cycles = units::Cycles{300};
    profiles_[1].full_cycles = units::Cycles{100};
    profiles_[2].full_cycles = units::Cycles{200};
    for (ServiceProfile& p : profiles_) {
      p.marginal_cycles = units::Cycles{p.full_cycles.value() / 2};
    }
  }

  void enqueue(std::size_t class_id) {
    Request r;
    r.id = next_id_;
    r.class_id = class_id;
    r.arrival_cycle = next_id_;
    ++next_id_;
    ASSERT_FALSE(queue_.offer(r).has_value());
  }

  std::size_t pick(const char* name) const {
    return make_scheduler(name)->pick(queue_, classes_, profiles_);
  }

  AdmissionQueue queue_;
  std::vector<RequestClass> classes_;
  std::vector<ServiceProfile> profiles_;
  std::uint64_t next_id_ = 0;
};

TEST_F(SchedulerPolicy, FifoPicksTheOldest) {
  enqueue(1);
  enqueue(0);
  enqueue(2);
  EXPECT_EQ(pick("fifo"), 0u);
}

TEST_F(SchedulerPolicy, SjfPicksTheCheapestClass) {
  enqueue(0);  // 300 cycles
  enqueue(2);  // 200 cycles
  enqueue(1);  // 100 cycles  <- cheapest
  EXPECT_EQ(pick("sjf"), 2u);
}

TEST_F(SchedulerPolicy, SjfTieBreaksTowardTheOldest) {
  enqueue(0);
  enqueue(1);  // first of the cheapest class
  enqueue(1);
  EXPECT_EQ(pick("sjf"), 1u);
}

TEST_F(SchedulerPolicy, PriorityPicksTheHighestTenantWeight) {
  enqueue(0);  // weight 1
  enqueue(2);  // weight 2
  enqueue(1);  // weight 4  <- heaviest
  EXPECT_EQ(pick("priority"), 2u);
}

TEST_F(SchedulerPolicy, PriorityTieBreaksTowardTheOldest) {
  enqueue(2);
  enqueue(1);  // first of the heaviest tenant
  enqueue(1);
  EXPECT_EQ(pick("priority"), 1u);
}

TEST_F(SchedulerPolicy, SingleRequestIsEveryPolicysPick) {
  enqueue(2);
  EXPECT_EQ(pick("fifo"), 0u);
  EXPECT_EQ(pick("sjf"), 0u);
  EXPECT_EQ(pick("priority"), 0u);
}

TEST_F(SchedulerPolicy, FactoryNamesRoundTrip) {
  for (const std::string& name : scheduler_names()) {
    EXPECT_EQ(make_scheduler(name)->name(), name);
  }
  EXPECT_EQ(scheduler_names().size(), 3u);
}

TEST_F(SchedulerPolicy, UnknownPolicyNameThrows) {
  EXPECT_THROW((void)make_scheduler("lifo"), CheckError);
}

}  // namespace
}  // namespace nocw::serve
