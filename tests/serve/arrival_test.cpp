// The arrival generator promises: counter-based determinism (same config →
// bit-identical timeline), open-loop rate control split by mix fractions,
// and an MMPP mode that adds burstiness without changing the mean rate.
#include "serve/arrival.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace nocw::serve {
namespace {

std::vector<RequestClass> two_classes(double mix0 = 0.75,
                                      double mix1 = 0.25) {
  std::vector<RequestClass> classes(2);
  classes[0].name = "a";
  classes[0].mix_fraction = mix0;
  classes[1].name = "b";
  classes[1].mix_fraction = mix1;
  return classes;
}

ArrivalConfig base_config() {
  ArrivalConfig cfg;
  cfg.rate_per_mcycle = 50.0;
  cfg.horizon_cycles = 2'000'000;
  cfg.seed = 7;
  return cfg;
}

bool same_timeline(const std::vector<Arrival>& x,
                   const std::vector<Arrival>& y) {
  if (x.size() != y.size()) return false;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i].cycle != y[i].cycle || x[i].class_id != y[i].class_id ||
        x[i].seq != y[i].seq) {
      return false;
    }
  }
  return true;
}

TEST(ArrivalHash, PureAndArgumentSensitive) {
  const std::uint64_t h = arrival_hash(1, 2, 3, 4);
  EXPECT_EQ(h, arrival_hash(1, 2, 3, 4));
  EXPECT_NE(h, arrival_hash(2, 2, 3, 4));
  EXPECT_NE(h, arrival_hash(1, 3, 3, 4));
  EXPECT_NE(h, arrival_hash(1, 2, 4, 4));
  EXPECT_NE(h, arrival_hash(1, 2, 3, 5));
}

TEST(ArrivalHash, U01IsInHalfOpenUnitInterval) {
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const double u = arrival_u01(arrival_hash(42, i, 0, 0));
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Arrival, DeterministicAcrossRepeats) {
  const auto classes = two_classes();
  const ArrivalConfig cfg = base_config();
  const std::vector<Arrival> a = generate_arrivals(classes, cfg);
  const std::vector<Arrival> b = generate_arrivals(classes, cfg);
  ASSERT_FALSE(a.empty());
  EXPECT_TRUE(same_timeline(a, b));
}

TEST(Arrival, SeedChangesTimeline) {
  const auto classes = two_classes();
  ArrivalConfig cfg = base_config();
  const std::vector<Arrival> a = generate_arrivals(classes, cfg);
  cfg.seed = 8;
  const std::vector<Arrival> b = generate_arrivals(classes, cfg);
  EXPECT_FALSE(same_timeline(a, b));
}

TEST(Arrival, SortedAndWithinHorizon) {
  const auto classes = two_classes();
  const ArrivalConfig cfg = base_config();
  const std::vector<Arrival> a = generate_arrivals(classes, cfg);
  ASSERT_FALSE(a.empty());
  for (std::size_t i = 1; i < a.size(); ++i) {
    EXPECT_LE(a[i - 1].cycle, a[i].cycle) << "index " << i;
  }
  EXPECT_LE(a.back().cycle, cfg.horizon_cycles);
}

TEST(Arrival, RateControlsExpectedCount) {
  const auto classes = two_classes();
  const ArrivalConfig cfg = base_config();  // expect ~100 arrivals
  const double expected =
      cfg.rate_per_mcycle * static_cast<double>(cfg.horizon_cycles) / 1e6;
  const std::vector<Arrival> a = generate_arrivals(classes, cfg);
  EXPECT_GT(static_cast<double>(a.size()), 0.7 * expected);
  EXPECT_LT(static_cast<double>(a.size()), 1.3 * expected);
}

TEST(Arrival, MixFractionsSplitTheLoad) {
  const auto classes = two_classes(0.75, 0.25);
  ArrivalConfig cfg = base_config();
  cfg.rate_per_mcycle = 200.0;  // ~400 arrivals: enough to see the 3:1 split
  const std::vector<Arrival> a = generate_arrivals(classes, cfg);
  const auto count0 = static_cast<double>(std::count_if(
      a.begin(), a.end(), [](const Arrival& x) { return x.class_id == 0; }));
  const double frac0 = count0 / static_cast<double>(a.size());
  EXPECT_GT(frac0, 0.6);
  EXPECT_LT(frac0, 0.9);
}

TEST(Arrival, ZeroMixClassContributesNothing) {
  auto classes = two_classes(1.0, 0.0);
  const std::vector<Arrival> a =
      generate_arrivals(classes, base_config());
  ASSERT_FALSE(a.empty());
  for (const Arrival& x : a) EXPECT_EQ(x.class_id, 0u);
}

TEST(Arrival, MmppPreservesMeanRate) {
  const auto classes = two_classes();
  ArrivalConfig cfg = base_config();
  cfg.rate_per_mcycle = 100.0;
  cfg.horizon_cycles = 10'000'000;  // ~1000 arrivals; law of large numbers
  const double poisson = static_cast<double>(
      generate_arrivals(classes, cfg).size());
  cfg.process = ArrivalProcess::kMmpp;
  const double mmpp = static_cast<double>(
      generate_arrivals(classes, cfg).size());
  EXPECT_GT(mmpp, 0.85 * poisson);
  EXPECT_LT(mmpp, 1.15 * poisson);
}

TEST(Arrival, MmppIsBurstierThanPoisson) {
  // Index of dispersion of per-segment counts: Poisson ≈ 1, MMPP with
  // burst_factor 4 substantially above it.
  const auto classes = two_classes();
  ArrivalConfig cfg = base_config();
  cfg.rate_per_mcycle = 100.0;
  cfg.horizon_cycles = 20'000'000;
  cfg.segment_cycles = 100'000;

  const auto dispersion = [&](const std::vector<Arrival>& a) {
    const std::size_t bins = cfg.horizon_cycles / cfg.segment_cycles;
    std::vector<double> counts(bins, 0.0);
    for (const Arrival& x : a) {
      const std::size_t b = std::min(bins - 1, x.cycle / cfg.segment_cycles);
      counts[b] += 1.0;
    }
    double mean = 0.0;
    for (const double c : counts) mean += c;
    mean /= static_cast<double>(bins);
    double var = 0.0;
    for (const double c : counts) var += (c - mean) * (c - mean);
    var /= static_cast<double>(bins);
    return mean > 0.0 ? var / mean : 0.0;
  };

  const double poisson = dispersion(generate_arrivals(classes, cfg));
  cfg.process = ArrivalProcess::kMmpp;
  cfg.burst_factor = 4.0;
  const double mmpp = dispersion(generate_arrivals(classes, cfg));
  EXPECT_GT(mmpp, poisson * 1.5)
      << "poisson dispersion " << poisson << ", mmpp " << mmpp;
}

TEST(Arrival, ProcessNamesRoundTrip) {
  EXPECT_STREQ(to_string(ArrivalProcess::kPoisson), "poisson");
  EXPECT_STREQ(to_string(ArrivalProcess::kMmpp), "mmpp");
}

}  // namespace
}  // namespace nocw::serve
