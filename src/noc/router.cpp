#include "noc/router.hpp"

#include <algorithm>

#include "noc/routing.hpp"
#include "util/check.hpp"

namespace nocw::noc {

Router::Router(int id, const NocConfig& cfg)
    : id_(id),
      vcs_(cfg.virtual_channels > 0 ? cfg.virtual_channels : 1), cfg_(&cfg) {
  buffers_.reserve(static_cast<std::size_t>(kNumPorts) * vcs_);
  for (int i = 0; i < kNumPorts * vcs_; ++i) {
    buffers_.emplace_back(static_cast<std::size_t>(cfg.buffer_depth));
  }
  lock_.assign(static_cast<std::size_t>(kNumPorts) * vcs_, -1);
  rr_.assign(kNumPorts, 0);
}

int Router::route(int dst) const noexcept {
  if (table_ != nullptr) {
    const int port = table_->next_hop(id_, dst);
    // Unreachable pairs never carry traffic (undeliverable packets are
    // dropped at the source and every rebuild is preceded by a flush);
    // ejecting locally keeps the fallback conservation-safe regardless.
    return port != RouteTable::kUnreachable ? port : kLocal;
  }
  return dor_next_hop(*cfg_, id_, dst);
}

std::size_t Router::flush_buffers() {
  std::size_t flushed = 0;
  for (auto& b : buffers_) {
    flushed += b.size();
    while (!b.empty()) b.pop();
  }
  std::fill(lock_.begin(), lock_.end(), -1);
  return flushed;
}

std::optional<int> Router::allocate(
    int out_port, const std::function<bool(const Flit&)>& can_accept) const {
  // Round-robin admissibility lives in allocate_with (header template); this
  // overload only erases the predicate type for callers off the hot path.
  if (!can_accept) {
    return allocate_with(out_port, [](const Flit&) { return true; });
  }
  return allocate_with(out_port,
                       [&](const Flit& f) { return can_accept(f); });
}

bool Router::idle() const noexcept {
  for (const auto& b : buffers_) {
    if (!b.empty()) return false;
  }
  return true;
}

std::size_t Router::buffered_flits() const noexcept {
  std::size_t n = 0;
  for (const auto& b : buffers_) n += b.size();
  return n;
}

void Router::check_invariants() const {
  const int total = kNumPorts * vcs_;
  NOCW_CHECK_EQ(buffers_.size(), static_cast<std::size_t>(total));
  NOCW_CHECK_EQ(lock_.size(), static_cast<std::size_t>(total));
  NOCW_CHECK_EQ(rr_.size(), static_cast<std::size_t>(kNumPorts));
  const auto depth = static_cast<std::size_t>(cfg_->buffer_depth);
  for (const auto& b : buffers_) {
    // VC occupancy never exceeds the configured buffer depth, and the
    // credit count (free slots) stays within [0, depth].
    NOCW_CHECK_EQ(b.capacity(), depth);
    NOCW_CHECK_LE(b.size(), depth);
    NOCW_CHECK_EQ(b.free_slots(), depth - b.size());
  }
  for (const int owner : lock_) {
    NOCW_CHECK_GE(owner, -1);
    NOCW_CHECK_LT(owner, total);
  }
  for (const int p : rr_) {
    NOCW_CHECK_GE(p, 0);
    NOCW_CHECK_LT(p, total);
  }
}

}  // namespace nocw::noc
