#include "noc/router.hpp"

#include "util/check.hpp"

namespace nocw::noc {

Router::Router(int id, const NocConfig& cfg)
    : id_(id), x_(cfg.node_x(id)), y_(cfg.node_y(id)),
      vcs_(cfg.virtual_channels > 0 ? cfg.virtual_channels : 1), cfg_(&cfg) {
  buffers_.reserve(static_cast<std::size_t>(kNumPorts) * vcs_);
  for (int i = 0; i < kNumPorts * vcs_; ++i) {
    buffers_.emplace_back(static_cast<std::size_t>(cfg.buffer_depth));
  }
  lock_.assign(static_cast<std::size_t>(kNumPorts) * vcs_, -1);
  rr_.assign(kNumPorts, 0);
}

int Router::route(int dst) const noexcept {
  // Dimension-order routing; both orders are deadlock-free on meshes.
  const int dx = cfg_->node_x(dst);
  const int dy = cfg_->node_y(dst);
  if (cfg_->routing == Routing::YX) {
    if (dy > y_) return kSouth;
    if (dy < y_) return kNorth;
    if (dx > x_) return kEast;
    if (dx < x_) return kWest;
    return kLocal;
  }
  if (dx > x_) return kEast;
  if (dx < x_) return kWest;
  if (dy > y_) return kSouth;
  if (dy < y_) return kNorth;
  return kLocal;
}

std::optional<int> Router::allocate(
    int out_port, const std::function<bool(const Flit&)>& can_accept) const {
  // Round-robin over flattened (input port, VC) indices. A request is
  // admissible when its head flit routes to out_port, the (out, VC)
  // wormhole lock is either free (for Head/HeadTail) or owned by exactly
  // this input (for Body/Tail continuation), and the caller's capacity
  // predicate accepts the flit.
  const int total = kNumPorts * vcs_;
  const int start = rr_[static_cast<std::size_t>(out_port)];
  for (int k = 0; k < total; ++k) {
    const int in_flat = (start + k) % total;
    const auto& buf = buffers_[static_cast<std::size_t>(in_flat)];
    if (buf.empty()) continue;
    const Flit& f = buf.front();
    if (route(f.dst) != out_port) continue;
    const int owner =
        lock_[flat(out_port, static_cast<int>(f.vc))];
    const bool is_head =
        f.type == FlitType::Head || f.type == FlitType::HeadTail;
    if (!(is_head ? (owner == -1) : (owner == in_flat))) continue;
    if (can_accept && !can_accept(f)) continue;
    return in_flat;
  }
  return std::nullopt;
}

Flit Router::grant(int in_flat, int out_port) {
  auto& buf = buffers_[static_cast<std::size_t>(in_flat)];
  NOCW_CHECK(!buf.empty());
  const Flit f = buf.pop();
  int& lock = lock_[flat(out_port, static_cast<int>(f.vc))];
  switch (f.type) {
    case FlitType::Head:
      lock = in_flat;
      break;
    case FlitType::Tail:
    case FlitType::HeadTail:
      lock = -1;
      break;
    case FlitType::Body:
      break;
  }
  // Rotate priority past the winner on every grant so concurrent packets on
  // different VCs share the physical link fairly (flit-level interleaving).
  rr_[static_cast<std::size_t>(out_port)] =
      (in_flat + 1) % (kNumPorts * vcs_);
  return f;
}

bool Router::idle() const noexcept {
  for (const auto& b : buffers_) {
    if (!b.empty()) return false;
  }
  return true;
}

std::size_t Router::buffered_flits() const noexcept {
  std::size_t n = 0;
  for (const auto& b : buffers_) n += b.size();
  return n;
}

void Router::check_invariants() const {
  const int total = kNumPorts * vcs_;
  NOCW_CHECK_EQ(buffers_.size(), static_cast<std::size_t>(total));
  NOCW_CHECK_EQ(lock_.size(), static_cast<std::size_t>(total));
  NOCW_CHECK_EQ(rr_.size(), static_cast<std::size_t>(kNumPorts));
  const auto depth = static_cast<std::size_t>(cfg_->buffer_depth);
  for (const auto& b : buffers_) {
    // VC occupancy never exceeds the configured buffer depth, and the
    // credit count (free slots) stays within [0, depth].
    NOCW_CHECK_EQ(b.capacity(), depth);
    NOCW_CHECK_LE(b.size(), depth);
    NOCW_CHECK_EQ(b.free_slots(), depth - b.size());
  }
  for (const int owner : lock_) {
    NOCW_CHECK_GE(owner, -1);
    NOCW_CHECK_LT(owner, total);
  }
  for (const int p : rr_) {
    NOCW_CHECK_GE(p, 0);
    NOCW_CHECK_LT(p, total);
  }
}

}  // namespace nocw::noc
