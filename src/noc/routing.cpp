#include "noc/routing.hpp"

#include <algorithm>
#include <limits>

#include "util/check.hpp"

namespace nocw::noc {

int dor_next_hop(const NocConfig& cfg, int node, int dst) noexcept {
  // Dimension-order routing; both orders are deadlock-free on meshes.
  const int x = cfg.node_x(node);
  const int y = cfg.node_y(node);
  const int dx = cfg.node_x(dst);
  const int dy = cfg.node_y(dst);
  if (cfg.routing == Routing::YX) {
    if (dy > y) return kSouth;
    if (dy < y) return kNorth;
    if (dx > x) return kEast;
    if (dx < x) return kWest;
    return kLocal;
  }
  if (dx > x) return kEast;
  if (dx < x) return kWest;
  if (dy > y) return kSouth;
  if (dy < y) return kNorth;
  return kLocal;
}

bool HealthMap::mark_link_down(int router, int port) {
  auto& flag = link_down_[static_cast<std::size_t>(router) * kNumPorts +
                          static_cast<std::size_t>(port)];
  if (flag != 0) return false;
  flag = 1;
  ++links_down_;
  return true;
}

bool HealthMap::mark_router_down(int router) {
  auto& flag = router_down_[static_cast<std::size_t>(router)];
  if (flag != 0) return false;
  flag = 1;
  ++routers_down_;
  return true;
}

RouteTable::RouteTable(const NocConfig& cfg, RouteMode mode)
    : cfg_(cfg), mode_(mode), n_(cfg.node_count()) {
  // The west-first forbidden turns (N→W, S→W) are defined relative to
  // X-first paths; under YX the zero-fault table would *not* equal DOR.
  NOCW_CHECK(mode_ == RouteMode::Dor || cfg_.routing == Routing::XY);
  table_.assign(static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_),
                static_cast<std::int8_t>(kUnreachable));
  dist_.assign(static_cast<std::size_t>(n_), 0);
  queue_.reserve(static_cast<std::size_t>(n_));
  rebuild(HealthMap(n_));
}

void RouteTable::rebuild(const HealthMap& health) {
  for (int dst = 0; dst < n_; ++dst) build_destination(dst, health);
}

void RouteTable::build_destination(int dst, const HealthMap& health) {
  std::int8_t* row0 = table_.data();
  const auto at = [&](int node) -> std::int8_t& {
    return row0[static_cast<std::size_t>(node) * static_cast<std::size_t>(n_) +
                static_cast<std::size_t>(dst)];
  };
  for (int u = 0; u < n_; ++u) at(u) = static_cast<std::int8_t>(kUnreachable);
  if (!health.router_up(dst)) return;  // dead destination: nothing routes
  if (mode_ == RouteMode::Dor) {
    for (int u = 0; u < n_; ++u) {
      if (health.router_up(u)) {
        at(u) = static_cast<std::int8_t>(dor_next_hop(cfg_, u, dst));
      }
    }
    return;
  }

  constexpr int kInf = std::numeric_limits<int>::max();
  // Phase A: reverse BFS from dst over live links, travel dirs {E, N, S}
  // only (reverse edge for travel dir d runs from v to its d-opposite
  // neighbour u, i.e. u --d--> v).
  std::fill(dist_.begin(), dist_.end(), kInf);
  dist_[static_cast<std::size_t>(dst)] = 0;
  queue_.clear();
  queue_.push_back(dst);
  constexpr int kForward[] = {kEast, kNorth, kSouth};
  for (std::size_t head = 0; head < queue_.size(); ++head) {
    const int v = queue_[head];
    const int vx = cfg_.node_x(v);
    const int vy = cfg_.node_y(v);
    for (const int d : kForward) {
      int ux = vx, uy = vy;
      switch (d) {
        case kEast: ux = vx - 1; break;   // u east-hops into v
        case kNorth: uy = vy + 1; break;  // u north-hops into v
        case kSouth: uy = vy - 1; break;  // u south-hops into v
        default: break;
      }
      if (ux < 0 || ux >= cfg_.width || uy < 0 || uy >= cfg_.height) continue;
      const int u = cfg_.node_id(ux, uy);
      if (dist_[static_cast<std::size_t>(u)] != kInf) continue;
      if (!health.router_up(u) || !health.link_up(u, d)) continue;
      dist_[static_cast<std::size_t>(u)] =
          dist_[static_cast<std::size_t>(v)] + 1;
      queue_.push_back(u);
    }
  }
  // Port assignment: shortest-path direction, preferring the XY DOR port on
  // ties (the zero-fault bit-identity guarantee), then fixed E/N/S order.
  for (int u = 0; u < n_; ++u) {
    if (u == dst) {
      at(u) = static_cast<std::int8_t>(kLocal);
      continue;
    }
    const int du = dist_[static_cast<std::size_t>(u)];
    if (du == kInf) continue;  // phase B below
    const int ux = cfg_.node_x(u);
    const int uy = cfg_.node_y(u);
    const int dor = dor_next_hop(cfg_, u, dst);
    int pick = kUnreachable;
    for (const int d : kForward) {
      int vx = ux, vy = uy;
      switch (d) {
        case kEast: vx = ux + 1; break;
        case kNorth: vy = uy - 1; break;
        case kSouth: vy = uy + 1; break;
        default: break;
      }
      if (vx < 0 || vx >= cfg_.width || vy < 0 || vy >= cfg_.height) continue;
      const int v = cfg_.node_id(vx, vy);
      if (dist_[static_cast<std::size_t>(v)] != du - 1) continue;
      if (!health.link_up(u, d)) continue;
      if (d == dor) {
        pick = d;
        break;
      }
      if (pick == kUnreachable) pick = d;
    }
    NOCW_DCHECK(pick != kUnreachable);  // BFS reached u through one of these
    at(u) = static_cast<std::int8_t>(pick);
  }
  // Phase B: nodes outside region A route West along a live west chain into
  // it. Columns resolve left to right, so each node's west neighbour is
  // already final when it is examined. Westward travel happens only here —
  // as a path prefix — so the forbidden turns N→W / S→W never occur.
  for (int x = 1; x < cfg_.width; ++x) {
    for (int y = 0; y < cfg_.height; ++y) {
      const int u = cfg_.node_id(x, y);
      if (u == dst || dist_[static_cast<std::size_t>(u)] != kInf) continue;
      if (!health.router_up(u) || !health.link_up(u, kWest)) continue;
      const int w = cfg_.node_id(x - 1, y);
      if (!health.router_up(w)) continue;
      if (at(w) == static_cast<std::int8_t>(kUnreachable)) continue;
      at(u) = static_cast<std::int8_t>(kWest);
    }
  }
}

}  // namespace nocw::noc
