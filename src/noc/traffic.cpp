#include "noc/traffic.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/rng.hpp"

namespace nocw::noc {

std::vector<PacketDescriptor> stream_flow(int src, int dst,
                                          std::uint64_t total_flits,
                                          std::uint32_t flits_per_packet,
                                          std::uint64_t release_cycle,
                                          std::uint32_t tag) {
  if (flits_per_packet == 0) throw std::invalid_argument("zero packet size");
  std::vector<PacketDescriptor> out;
  out.reserve(static_cast<std::size_t>(
      (total_flits + flits_per_packet - 1) / flits_per_packet));
  std::uint64_t left = total_flits;
  while (left > 0) {
    PacketDescriptor p;
    p.src = static_cast<std::uint16_t>(src);
    p.dst = static_cast<std::uint16_t>(dst);
    p.size_flits = static_cast<std::uint32_t>(
        left < flits_per_packet ? left : flits_per_packet);
    p.release_cycle = release_cycle;
    p.tag = tag;
    out.push_back(p);
    left -= p.size_flits;
  }
  return out;
}

std::vector<PacketDescriptor> scatter_flow(int src, std::span<const int> dsts,
                                           std::uint64_t total_flits,
                                           std::uint32_t flits_per_packet,
                                           std::uint64_t release_cycle,
                                           std::uint32_t tag) {
  if (dsts.empty()) throw std::invalid_argument("scatter with no targets");
  if (flits_per_packet == 0) throw std::invalid_argument("zero packet size");
  std::vector<PacketDescriptor> out;
  out.reserve(static_cast<std::size_t>(
      (total_flits + flits_per_packet - 1) / flits_per_packet));
  std::uint64_t left = total_flits;
  std::size_t turn = 0;
  while (left > 0) {
    PacketDescriptor p;
    p.src = static_cast<std::uint16_t>(src);
    p.dst = static_cast<std::uint16_t>(dsts[turn % dsts.size()]);
    p.size_flits = static_cast<std::uint32_t>(
        left < flits_per_packet ? left : flits_per_packet);
    p.release_cycle = release_cycle;
    p.tag = tag;
    out.push_back(p);
    left -= p.size_flits;
    ++turn;
  }
  return out;
}

std::vector<PacketDescriptor> gather_flow(std::span<const int> srcs, int dst,
                                          std::uint64_t total_flits,
                                          std::uint32_t flits_per_packet,
                                          std::uint64_t release_cycle,
                                          std::uint32_t tag) {
  if (srcs.empty()) throw std::invalid_argument("gather with no sources");
  if (flits_per_packet == 0) throw std::invalid_argument("zero packet size");
  std::vector<PacketDescriptor> out;
  out.reserve(static_cast<std::size_t>(
      (total_flits + flits_per_packet - 1) / flits_per_packet));
  std::uint64_t left = total_flits;
  std::size_t turn = 0;
  while (left > 0) {
    PacketDescriptor p;
    p.src = static_cast<std::uint16_t>(srcs[turn % srcs.size()]);
    p.dst = static_cast<std::uint16_t>(dst);
    p.size_flits = static_cast<std::uint32_t>(
        left < flits_per_packet ? left : flits_per_packet);
    p.release_cycle = release_cycle;
    p.tag = tag;
    out.push_back(p);
    left -= p.size_flits;
    ++turn;
  }
  return out;
}

std::vector<PacketDescriptor> phase_traffic(const NocConfig& cfg,
                                            units::Flits scatter_flits,
                                            units::Flits gather_flits,
                                            std::uint32_t flits_per_packet,
                                            std::uint32_t tag) {
  const auto mis = cfg.memory_interface_nodes();
  const auto pes = cfg.pe_nodes();
  return phase_traffic(cfg, mis, pes, scatter_flits, gather_flits,
                       flits_per_packet, tag);
}

std::vector<PacketDescriptor> phase_traffic(const NocConfig& cfg,
                                            std::span<const int> mis,
                                            std::span<const int> pes,
                                            units::Flits scatter_flits,
                                            units::Flits gather_flits,
                                            std::uint32_t flits_per_packet,
                                            std::uint32_t tag) {
  if (flits_per_packet == 0) throw std::invalid_argument("zero packet size");
  if ((scatter_flits + gather_flits).value() > 0 &&
      (mis.empty() || pes.empty())) {
    throw std::invalid_argument("phase traffic needs MIs and PEs");
  }
  for (const int node : mis) {
    if (node < 0 || node >= cfg.node_count()) {
      throw std::invalid_argument("phase traffic MI out of range");
    }
  }
  for (const int node : pes) {
    if (node < 0 || node >= cfg.node_count()) {
      throw std::invalid_argument("phase traffic PE out of range");
    }
  }
  std::vector<PacketDescriptor> out;
  const auto append = [&](std::vector<PacketDescriptor>&& ps) {
    out.insert(out.end(), ps.begin(), ps.end());
  };
  // Each MI carries an equal (ceil) share of the phase volume; the last
  // shares shrink to whatever volume is left.
  if (scatter_flits.value() > 0) {
    const std::uint64_t share =
        (scatter_flits.value() + mis.size() - 1) / mis.size();
    std::uint64_t left = scatter_flits.value();
    for (std::size_t m = 0; m < mis.size() && left > 0; ++m) {
      const std::uint64_t vol = std::min(share, left);
      append(scatter_flow(mis[m], pes, vol, flits_per_packet, 0, tag));
      left -= vol;
    }
  }
  if (gather_flits.value() > 0) {
    const std::uint64_t share =
        (gather_flits.value() + mis.size() - 1) / mis.size();
    std::uint64_t left = gather_flits.value();
    for (std::size_t m = 0; m < mis.size() && left > 0; ++m) {
      const std::uint64_t vol = std::min(share, left);
      append(gather_flow(pes, mis[m], vol, flits_per_packet, 0, tag));
      left -= vol;
    }
  }
  return out;
}

std::vector<PacketDescriptor> uniform_random_traffic(
    const NocConfig& cfg, int packets, std::uint32_t flits_per_packet,
    std::uint64_t seed) {
  Xoshiro256pp rng(seed);
  std::vector<PacketDescriptor> out;
  out.reserve(static_cast<std::size_t>(packets));
  const auto nodes = static_cast<std::uint64_t>(cfg.node_count());
  for (int i = 0; i < packets; ++i) {
    PacketDescriptor p;
    p.src = static_cast<std::uint16_t>(rng.bounded(nodes));
    do {
      p.dst = static_cast<std::uint16_t>(rng.bounded(nodes));
    } while (p.dst == p.src);
    p.size_flits = flits_per_packet;
    p.release_cycle = 0;
    out.push_back(p);
  }
  return out;
}

units::Flits total_flits(std::span<const PacketDescriptor> ps) {
  units::Flits n;
  for (const auto& p : ps) n += units::Flits{p.size_flits};
  return n;
}

}  // namespace nocw::noc
