#include "noc/traffic.hpp"

#include <stdexcept>

#include "util/rng.hpp"

namespace nocw::noc {

std::vector<PacketDescriptor> stream_flow(int src, int dst,
                                          std::uint64_t total_flits,
                                          std::uint32_t flits_per_packet,
                                          std::uint64_t release_cycle) {
  if (flits_per_packet == 0) throw std::invalid_argument("zero packet size");
  std::vector<PacketDescriptor> out;
  out.reserve(static_cast<std::size_t>(
      (total_flits + flits_per_packet - 1) / flits_per_packet));
  std::uint64_t left = total_flits;
  while (left > 0) {
    PacketDescriptor p;
    p.src = static_cast<std::uint16_t>(src);
    p.dst = static_cast<std::uint16_t>(dst);
    p.size_flits = static_cast<std::uint32_t>(
        left < flits_per_packet ? left : flits_per_packet);
    p.release_cycle = release_cycle;
    out.push_back(p);
    left -= p.size_flits;
  }
  return out;
}

std::vector<PacketDescriptor> scatter_flow(int src, std::span<const int> dsts,
                                           std::uint64_t total_flits,
                                           std::uint32_t flits_per_packet,
                                           std::uint64_t release_cycle) {
  if (dsts.empty()) throw std::invalid_argument("scatter with no targets");
  if (flits_per_packet == 0) throw std::invalid_argument("zero packet size");
  std::vector<PacketDescriptor> out;
  out.reserve(static_cast<std::size_t>(
      (total_flits + flits_per_packet - 1) / flits_per_packet));
  std::uint64_t left = total_flits;
  std::size_t turn = 0;
  while (left > 0) {
    PacketDescriptor p;
    p.src = static_cast<std::uint16_t>(src);
    p.dst = static_cast<std::uint16_t>(dsts[turn % dsts.size()]);
    p.size_flits = static_cast<std::uint32_t>(
        left < flits_per_packet ? left : flits_per_packet);
    p.release_cycle = release_cycle;
    out.push_back(p);
    left -= p.size_flits;
    ++turn;
  }
  return out;
}

std::vector<PacketDescriptor> gather_flow(std::span<const int> srcs, int dst,
                                          std::uint64_t total_flits,
                                          std::uint32_t flits_per_packet,
                                          std::uint64_t release_cycle) {
  if (srcs.empty()) throw std::invalid_argument("gather with no sources");
  if (flits_per_packet == 0) throw std::invalid_argument("zero packet size");
  std::vector<PacketDescriptor> out;
  out.reserve(static_cast<std::size_t>(
      (total_flits + flits_per_packet - 1) / flits_per_packet));
  std::uint64_t left = total_flits;
  std::size_t turn = 0;
  while (left > 0) {
    PacketDescriptor p;
    p.src = static_cast<std::uint16_t>(srcs[turn % srcs.size()]);
    p.dst = static_cast<std::uint16_t>(dst);
    p.size_flits = static_cast<std::uint32_t>(
        left < flits_per_packet ? left : flits_per_packet);
    p.release_cycle = release_cycle;
    out.push_back(p);
    left -= p.size_flits;
    ++turn;
  }
  return out;
}

std::vector<PacketDescriptor> uniform_random_traffic(
    const NocConfig& cfg, int packets, std::uint32_t flits_per_packet,
    std::uint64_t seed) {
  Xoshiro256pp rng(seed);
  std::vector<PacketDescriptor> out;
  out.reserve(static_cast<std::size_t>(packets));
  const auto nodes = static_cast<std::uint64_t>(cfg.node_count());
  for (int i = 0; i < packets; ++i) {
    PacketDescriptor p;
    p.src = static_cast<std::uint16_t>(rng.bounded(nodes));
    do {
      p.dst = static_cast<std::uint16_t>(rng.bounded(nodes));
    } while (p.dst == p.src);
    p.size_flits = flits_per_packet;
    p.release_cycle = 0;
    out.push_back(p);
  }
  return out;
}

std::uint64_t total_flits(std::span<const PacketDescriptor> ps) {
  std::uint64_t n = 0;
  for (const auto& p : ps) n += p.size_flits;
  return n;
}

}  // namespace nocw::noc
