// Deterministic fault injection and flit protection primitives.
//
// The compressed ⟨m, q, len⟩ weight stream is maximally fragile to
// transmission faults: one flipped bit in a coefficient or length field
// corrupts an entire reconstructed sub-succession, an error mode the
// uncompressed stream does not have. This module provides (a) a seeded
// FaultModel that injects payload bit flips, transient/permanent link faults
// and router stalls into the cycle engine, and (b) the CRC-32 primitive the
// network uses to protect packets when `ProtectionConfig::crc` is on.
//
// Every fault decision is a *pure hash* of (seed, cycle, entity) — a
// counter-based generator rather than a sequential stream — so outcomes do
// not depend on iteration order, thread count, or how many other fault
// sites were evaluated first. Identical seeds reproduce identical fault
// patterns at any NOCW_THREADS.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace nocw::noc {

/// Fault-injection knobs. All probabilities are per-event Bernoulli rates;
/// zero everywhere (the default) means the model is completely inert and the
/// cycle engine behaves bit-identically to a build without it.
struct FaultConfig {
  /// Probability that any given payload bit flips during one link traversal
  /// (the BER of a 1 mm inter-router wire).
  double bit_flip_probability = 0.0;
  /// Probability that a given link is unavailable for a given cycle
  /// (transient outage: flits stay buffered and retry next cycle).
  double link_fault_probability = 0.0;
  /// Probability that a given router performs no switch allocation for a
  /// given cycle (control-path glitch; all five ports stall together).
  double router_stall_probability = 0.0;
  /// Number of links with a permanent stuck-at fault: every flit crossing
  /// one has a fixed seed-derived bit mask XOR-ed into its payload.
  int permanent_stuck_links = 0;
  /// Number of links permanently down for the whole run (seed-placed on
  /// distinct non-local links). Flits queued toward one stay buffered
  /// forever unless fault-aware routing detours around it.
  int permanent_link_outages = 0;
  /// Number of routers permanently down for the whole run (seed-placed,
  /// distinct). A dead router never allocates its switch; with resilience
  /// active its PE/MI role is failed over (DESIGN.md §13).
  int permanent_router_outages = 0;
  /// Seed for all fault decisions.
  std::uint64_t seed = 1;

  /// True when any fault mechanism is active.
  [[nodiscard]] bool any() const noexcept {
    return bit_flip_probability > 0.0 || link_fault_probability > 0.0 ||
           router_stall_probability > 0.0 || permanent_stuck_links > 0 ||
           permanent_link_outages > 0 || permanent_router_outages > 0;
  }
};

/// Packet protection + recovery knobs for the MI→PE weight stream.
struct ProtectionConfig {
  /// Append a CRC-32 flit to every packet at injection and verify it at
  /// ejection. Failed packets are NACK-ed back to their source.
  bool crc = false;
  /// Retransmission budget per packet; beyond it the packet is dropped.
  int max_retries = 4;
  /// Backoff before the k-th retry is `retry_backoff_cycles << k` cycles,
  /// with the shift capped at kMaxBackoffShift so a deep retry chain
  /// saturates instead of scheduling the packet billions of cycles out.
  std::uint64_t retry_backoff_cycles = 8;
  static constexpr unsigned kMaxBackoffShift = 10;  ///< backoff cap: << 10
  /// Throw PacketLossError when a packet exhausts its retry budget instead
  /// of counting a silent drop (callers that must not lose weight-stream
  /// data opt in).
  bool fail_on_drop = false;
};

/// Typed error for an unrecoverable packet loss: the retry budget of a
/// CRC-protected packet ran out and ProtectionConfig::fail_on_drop is set.
class PacketLossError : public std::runtime_error {
 public:
  PacketLossError(const std::string& what, int src_node, int dst_node,
                  std::uint32_t packet_tag)
      : std::runtime_error(what), src(src_node), dst(dst_node),
        tag(packet_tag) {}
  int src;
  int dst;
  std::uint32_t tag;
};

/// Counter-based hash: a uniform 64-bit value determined purely by
/// (seed, a, b, c). This is the only fault-sampling primitive; tools/lint.py
/// bans calls outside src/noc/fault.cpp so all stochastic fault behaviour
/// stays reproducible from a single seed.
[[nodiscard]] std::uint64_t fault_hash(std::uint64_t seed, std::uint64_t a,
                                       std::uint64_t b,
                                       std::uint64_t c) noexcept;

/// Deterministic synthetic link word for data flit `seq` of packet
/// `packet_id`. The cycle engine does not carry real tensor data; this gives
/// every flit a reproducible payload for the CRC/fault machinery to protect
/// and corrupt.
[[nodiscard]] std::uint64_t synth_payload(std::uint32_t packet_id,
                                          std::uint32_t seq) noexcept;

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320) folded over one 64-bit payload
/// word. Start from kCrcInit and feed each data flit's payload in order; the
/// final value rides in the packet's CRC flit.
inline constexpr std::uint32_t kCrcInit = 0xFFFFFFFFu;
[[nodiscard]] std::uint32_t crc32_word(std::uint32_t crc,
                                       std::uint64_t word) noexcept;

/// Flip each bit of `bytes` independently with probability
/// `bit_flip_probability` (exact Bernoulli sampling via geometric skips).
/// Deterministic from `seed`. Returns the number of bits flipped. This is
/// the storage/stream-level counterpart of the in-network flip model, used
/// by the fault sweep to corrupt serialized weight streams.
std::uint64_t corrupt_bits(std::span<std::uint8_t> bytes,
                           double bit_flip_probability, std::uint64_t seed);

/// Per-network fault oracle. Constructed from a FaultConfig plus the mesh
/// node count (to enumerate links for permanent faults). All queries are
/// pure in (cycle, entity), so two networks with equal configs agree on
/// every decision regardless of call order.
class FaultModel {
 public:
  FaultModel() = default;
  /// `width` (mesh columns) lets permanent-outage placement skip ports that
  /// point off-mesh; 0 means unknown (only local ports are skipped then).
  FaultModel(const FaultConfig& cfg, int node_count, int width = 0);

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }
  [[nodiscard]] const FaultConfig& config() const noexcept { return cfg_; }

  /// Apply transient bit flips and permanent stuck-at masks to a payload
  /// crossing link (router, out_port) at `cycle`. Returns bits flipped.
  int corrupt_payload(std::uint64_t& payload, std::uint64_t cycle, int router,
                      int out_port) const noexcept;

  /// True when link (router, out_port) is down this cycle (transient
  /// outage, or one of the permanent link outages / a dead router's link).
  [[nodiscard]] bool link_down(std::uint64_t cycle, int router,
                               int out_port) const noexcept;

  /// True when `router` performs no switch allocation this cycle
  /// (transient stall, or a permanent router outage).
  [[nodiscard]] bool router_stalled(std::uint64_t cycle,
                                    int router) const noexcept;

  /// Stuck-at mask for link (router, out_port); 0 when healthy.
  [[nodiscard]] std::uint64_t stuck_mask(int router,
                                         int out_port) const noexcept;

  /// Seed-placed permanent outages (sorted flattened link ids
  /// router * kNumPorts + port, and sorted router ids). The resilience
  /// layer pre-marks these in its HealthMap; the accelerator fails the
  /// affected PE/MI roles over to survivors.
  [[nodiscard]] std::span<const int> dead_links() const noexcept {
    return dead_links_;
  }
  [[nodiscard]] std::span<const int> dead_routers() const noexcept {
    return dead_routers_;
  }

 private:
  FaultConfig cfg_;
  bool enabled_ = false;
  double flit_flip_probability_ = 0.0;  ///< 1 - (1 - p_bit)^64
  /// Flattened link id (router * kNumPorts + port) → stuck-at XOR mask.
  std::vector<std::uint64_t> stuck_masks_;
  std::vector<int> dead_links_;        ///< sorted flattened link ids
  std::vector<int> dead_routers_;      ///< sorted router ids
  std::vector<std::uint8_t> link_dead_;    ///< [link id] permanent outage
  std::vector<std::uint8_t> router_dead_;  ///< [router id] permanent outage
};

}  // namespace nocw::noc
