#include "noc/fault.hpp"

#include <algorithm>
#include <cmath>

#include "noc/flit.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace nocw::noc {

namespace {

// Domain-separation salts so the same (cycle, entity) coordinates never
// collide across fault mechanisms.
constexpr std::uint64_t kSaltBitFlip = 0xB17F11B5ULL;
constexpr std::uint64_t kSaltBitPick = 0xB17C0DE5ULL;
constexpr std::uint64_t kSaltLinkDown = 0x11D0D011ULL;
constexpr std::uint64_t kSaltStall = 0x57A11EDULL;
constexpr std::uint64_t kSaltStuck = 0x57C0CA7ULL;
constexpr std::uint64_t kSaltLinkOut = 0xDEADF117ULL;
constexpr std::uint64_t kSaltRouterOut = 0xDEAD0C7AULL;

/// Uniform double in [0, 1) from a hash value, mirroring
/// Xoshiro256pp::uniform()'s bit discipline.
double to_uniform(std::uint64_t h) noexcept {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

std::uint64_t fault_hash(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
                         std::uint64_t c) noexcept {
  // Three chained SplitMix64 steps: each coordinate perturbs the state of
  // the previous stage, giving a well-mixed counter-based generator.
  SplitMix64 s1(seed ^ a);
  SplitMix64 s2(s1.next() ^ b);
  SplitMix64 s3(s2.next() ^ c);
  return s3.next();
}

std::uint64_t synth_payload(std::uint32_t packet_id,
                            std::uint32_t seq) noexcept {
  return fault_hash(0xDA7AF117ULL, packet_id, seq, 0);
}

std::uint32_t crc32_word(std::uint32_t crc, std::uint64_t word) noexcept {
  for (int byte = 0; byte < 8; ++byte) {
    crc ^= static_cast<std::uint32_t>((word >> (8 * byte)) & 0xFFu);
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ (0xEDB88320u & (0u - (crc & 1u)));
    }
  }
  return crc;
}

std::uint64_t corrupt_bits(std::span<std::uint8_t> bytes,
                           double bit_flip_probability, std::uint64_t seed) {
  NOCW_CHECK_GE(bit_flip_probability, 0.0);
  NOCW_CHECK_LE(bit_flip_probability, 1.0);
  if (bytes.empty() || bit_flip_probability <= 0.0) return 0;
  const std::uint64_t nbits = static_cast<std::uint64_t>(bytes.size()) * 8;
  Xoshiro256pp rng(seed);
  std::uint64_t flips = 0;
  if (bit_flip_probability >= 1.0) {
    for (auto& b : bytes) b = static_cast<std::uint8_t>(~b);
    return nbits;
  }
  // Exact per-bit Bernoulli via geometric gap sampling: the gap to the next
  // flipped bit is floor(log(u) / log(1 - p)), u ~ U(0, 1].
  const double denom = std::log1p(-bit_flip_probability);
  std::uint64_t pos = 0;
  while (true) {
    const double u = 1.0 - rng.uniform();  // (0, 1]
    const double gap = std::floor(std::log(u) / denom);
    if (gap >= static_cast<double>(nbits - pos)) break;
    pos += static_cast<std::uint64_t>(gap);
    bytes[pos >> 3] ^= static_cast<std::uint8_t>(1u << (pos & 7));
    ++flips;
    if (++pos >= nbits) break;
  }
  return flips;
}

FaultModel::FaultModel(const FaultConfig& cfg, int node_count, int width)
    : cfg_(cfg) {
  NOCW_CHECK_GE(cfg_.bit_flip_probability, 0.0);
  NOCW_CHECK_LE(cfg_.bit_flip_probability, 1.0);
  NOCW_CHECK_GE(cfg_.link_fault_probability, 0.0);
  NOCW_CHECK_LE(cfg_.link_fault_probability, 1.0);
  NOCW_CHECK_GE(cfg_.router_stall_probability, 0.0);
  NOCW_CHECK_LE(cfg_.router_stall_probability, 1.0);
  NOCW_CHECK_GE(cfg_.permanent_stuck_links, 0);
  NOCW_CHECK_GE(cfg_.permanent_link_outages, 0);
  NOCW_CHECK_GE(cfg_.permanent_router_outages, 0);
  NOCW_CHECK_LT(cfg_.permanent_router_outages, node_count);
  NOCW_CHECK_GT(node_count, 0);
  enabled_ = cfg_.any();
  if (!enabled_) return;
  // Probability at least one of the 64 payload bits flips in one traversal.
  flit_flip_probability_ =
      1.0 - std::pow(1.0 - cfg_.bit_flip_probability, 64.0);
  if (cfg_.permanent_stuck_links > 0) {
    const std::size_t link_count =
        static_cast<std::size_t>(node_count) * kNumPorts;
    stuck_masks_.assign(link_count, 0);
    int placed = 0;
    // Deterministic placement: walk salted hashes until `permanent_stuck_links`
    // distinct non-local links carry a non-zero stuck-at mask.
    for (std::uint64_t salt = 0;
         placed < cfg_.permanent_stuck_links && salt < link_count * 64;
         ++salt) {
      const std::uint64_t h = fault_hash(cfg_.seed, kSaltStuck, salt, 0);
      const std::size_t link = static_cast<std::size_t>(h % link_count);
      if (link % kNumPorts == static_cast<std::size_t>(kLocal)) continue;
      if (stuck_masks_[link] != 0) continue;
      std::uint64_t mask =
          fault_hash(cfg_.seed, kSaltStuck, salt, 1) & 0xFFULL;
      if (mask == 0) mask = 1;  // a stuck link always corrupts something
      stuck_masks_[link] = mask;
      ++placed;
    }
  }
  const std::size_t link_count =
      static_cast<std::size_t>(node_count) * kNumPorts;
  // A candidate link must be a real mesh link: never the local (NI) port,
  // and — when the mesh width is known — never a port that points off-mesh
  // (an off-mesh "outage" would silently change nothing).
  const int height = width > 0 ? node_count / width : 0;
  const auto is_real_link = [&](std::size_t link) {
    const auto port = static_cast<int>(link % kNumPorts);
    if (port == kLocal) return false;
    if (width <= 0) return true;
    const auto node = static_cast<int>(link / kNumPorts);
    const int x = node % width;
    const int y = node / width;
    switch (port) {
      case kNorth: return y > 0;
      case kSouth: return y < height - 1;
      case kEast: return x < width - 1;
      case kWest: return x > 0;
      default: return false;
    }
  };
  if (cfg_.permanent_link_outages > 0) {
    link_dead_.assign(link_count, 0);
    int placed = 0;
    for (std::uint64_t salt = 0;
         placed < cfg_.permanent_link_outages && salt < link_count * 64;
         ++salt) {
      const std::uint64_t h = fault_hash(cfg_.seed, kSaltLinkOut, salt, 0);
      const std::size_t link = static_cast<std::size_t>(h % link_count);
      if (!is_real_link(link) || link_dead_[link] != 0) continue;
      link_dead_[link] = 1;
      dead_links_.push_back(static_cast<int>(link));
      ++placed;
    }
    std::sort(dead_links_.begin(), dead_links_.end());
  }
  if (cfg_.permanent_router_outages > 0) {
    router_dead_.assign(static_cast<std::size_t>(node_count), 0);
    int placed = 0;
    for (std::uint64_t salt = 0;
         placed < cfg_.permanent_router_outages &&
         salt < static_cast<std::uint64_t>(node_count) * 64;
         ++salt) {
      const std::uint64_t h = fault_hash(cfg_.seed, kSaltRouterOut, salt, 0);
      const auto router = static_cast<std::size_t>(
          h % static_cast<std::uint64_t>(node_count));
      if (router_dead_[router] != 0) continue;
      router_dead_[router] = 1;
      dead_routers_.push_back(static_cast<int>(router));
      ++placed;
    }
    std::sort(dead_routers_.begin(), dead_routers_.end());
  }
}

int FaultModel::corrupt_payload(std::uint64_t& payload, std::uint64_t cycle,
                                int router, int out_port) const noexcept {
  if (!enabled_) return 0;
  int flips = 0;
  const std::uint64_t link =
      static_cast<std::uint64_t>(router) * kNumPorts +
      static_cast<std::uint64_t>(out_port);
  if (flit_flip_probability_ > 0.0) {
    const std::uint64_t h = fault_hash(cfg_.seed, kSaltBitFlip, cycle, link);
    if (to_uniform(h) < flit_flip_probability_) {
      const std::uint64_t bit =
          fault_hash(cfg_.seed, kSaltBitPick, cycle, link) & 63;
      payload ^= (1ULL << bit);
      ++flips;
    }
  }
  const std::uint64_t mask = stuck_mask(router, out_port);
  if (mask != 0) {
    payload ^= mask;
    flips += __builtin_popcountll(mask);
  }
  return flips;
}

bool FaultModel::link_down(std::uint64_t cycle, int router,
                           int out_port) const noexcept {
  if (!enabled_) return false;
  const std::uint64_t link =
      static_cast<std::uint64_t>(router) * kNumPorts +
      static_cast<std::uint64_t>(out_port);
  if (!link_dead_.empty() && link_dead_[static_cast<std::size_t>(link)] != 0) {
    return true;  // permanent outage: down every cycle
  }
  if (cfg_.link_fault_probability <= 0.0) return false;
  const std::uint64_t h = fault_hash(cfg_.seed, kSaltLinkDown, cycle, link);
  return to_uniform(h) < cfg_.link_fault_probability;
}

bool FaultModel::router_stalled(std::uint64_t cycle,
                                int router) const noexcept {
  if (!enabled_) return false;
  if (!router_dead_.empty() &&
      router_dead_[static_cast<std::size_t>(router)] != 0) {
    return true;  // permanent outage: stalled every cycle
  }
  if (cfg_.router_stall_probability <= 0.0) return false;
  const std::uint64_t h = fault_hash(cfg_.seed, kSaltStall, cycle,
                                     static_cast<std::uint64_t>(router));
  return to_uniform(h) < cfg_.router_stall_probability;
}

std::uint64_t FaultModel::stuck_mask(int router, int out_port) const noexcept {
  if (stuck_masks_.empty()) return 0;
  const std::size_t link = static_cast<std::size_t>(router) * kNumPorts +
                           static_cast<std::size_t>(out_port);
  return link < stuck_masks_.size() ? stuck_masks_[link] : 0;
}

}  // namespace nocw::noc
