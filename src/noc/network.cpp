#include "noc/network.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/check.hpp"

namespace nocw::noc {

Network::Network(const NocConfig& cfg)
    : cfg_(cfg), fault_(cfg.fault, cfg.node_count()) {
  vcs_ = cfg_.virtual_channels > 0 ? cfg_.virtual_channels : 1;
  protect_ = cfg_.protection.crc;
  carry_payload_ = protect_ || fault_.enabled();
  NOCW_CHECK_GE(cfg_.protection.max_retries, 0);
  routers_.reserve(static_cast<std::size_t>(cfg_.node_count()));
  for (int id = 0; id < cfg_.node_count(); ++id) {
    routers_.emplace_back(id, cfg_);
  }
  sources_.resize(static_cast<std::size_t>(cfg_.node_count()));
  staged_count_.resize(static_cast<std::size_t>(cfg_.node_count()) *
                           kNumPorts * static_cast<std::size_t>(vcs_),
                       0);
  link_flits_.resize(
      static_cast<std::size_t>(cfg_.node_count()) * kNumPorts, 0);
  node_ejects_.resize(static_cast<std::size_t>(cfg_.node_count()), 0);
  trace_noc_ = NOCW_TRACE_ON(obs::kCatNoc);
  observe_ = trace_noc_;
  trace_sample_ = obs::Tracer::sample_every();
  if (trace_sample_ == 0) trace_sample_ = 1;
}

void Network::add_packet(const PacketDescriptor& p) {
  if (p.src >= cfg_.node_count() || p.dst >= cfg_.node_count()) {
    throw std::invalid_argument("packet endpoint out of range");
  }
  if (p.size_flits == 0) throw std::invalid_argument("empty packet");
  queue_packet(p);
}

void Network::queue_packet(const PacketDescriptor& p) {
  auto& s = sources_[p.src];
  s.pending.push(p);
  s.queued_flits += flits_of(p);
}

void Network::add_packets(std::span<const PacketDescriptor> ps) {
  for (const auto& p : ps) add_packet(p);
}

void Network::inject_phase() {
  for (int node = 0; node < cfg_.node_count(); ++node) {
    auto& s = sources_[static_cast<std::size_t>(node)];
    if (!s.active) {
      if (s.pending.empty() ||
          s.pending.top().release_cycle > stats_.cycles) {
        continue;
      }
      s.current = s.pending.top();
      s.pending.pop();
      s.active = true;
      s.sent = 0;
      s.packet_id = next_packet_id_++;
      s.crc_accum = kCrcInit;
      if (protect_) inflight_.emplace(s.packet_id, s.current);
    }
    const int vc = static_cast<int>(s.packet_id % static_cast<std::uint32_t>(vcs_));
    auto& local =
        routers_[static_cast<std::size_t>(node)].input_vc(kLocal, vc);
    const std::size_t idx = stage_index(node, kLocal, vc);
    if (local.free_slots() <= staged_count_[idx]) continue;

    const auto size = static_cast<std::uint32_t>(flits_of(s.current));
    Flit f;
    f.packet_id = s.packet_id;
    f.src = s.current.src;
    f.dst = s.current.dst;
    f.vc = static_cast<std::uint8_t>(vc);
    f.inject_cycle = static_cast<std::uint32_t>(s.current.release_cycle);
    const bool first = (s.sent == 0);
    const bool last = (s.sent + 1 == size);
    f.type = first && last ? FlitType::HeadTail
             : first       ? FlitType::Head
             : last        ? FlitType::Tail
                           : FlitType::Body;
    if (carry_payload_) {
      const bool crc_flit = protect_ && last;
      if (crc_flit) {
        f.payload = s.crc_accum;
        ++stats_.crc_flits_injected;
      } else {
        f.payload = synth_payload(s.packet_id, s.sent);
        if (protect_) s.crc_accum = crc32_word(s.crc_accum, f.payload);
      }
      if (protect_) ++stats_.crc_flit_events;  // CRC generator work
    }
    staged_.push_back(StagedMove{node, kLocal, f});
    ++staged_count_[idx];
    ++s.sent;
    --s.queued_flits;
    ++stats_.flits_injected;
    if (first) {
      ++stats_.packets_injected;
      if (trace_noc_) {
        obs::Tracer::global().record_instant(
            obs::kCatNoc, "inject", obs::kPidNoc,
            static_cast<std::uint32_t>(node), stats_.cycles, "dst",
            static_cast<double>(s.current.dst));
      }
    }
    if (last) s.active = false;
  }
}

void Network::eject_flit(const Flit& f, int node) {
  ++stats_.buffer_reads;
  ++stats_.router_traversals;
  ++stats_.flits_ejected;
  ++node_ejects_[static_cast<std::size_t>(node)];
  if (protect_) ++stats_.crc_flit_events;  // CRC checker work
  const bool tail =
      f.type == FlitType::Tail || f.type == FlitType::HeadTail;
  if (!tail) {
    if (protect_) {
      const auto it = eject_crc_.find(f.packet_id);
      const std::uint32_t crc = it == eject_crc_.end() ? kCrcInit : it->second;
      eject_crc_[f.packet_id] = crc32_word(crc, f.payload);
    }
    if (eject_hook_) eject_hook_(f, stats_.cycles);
    return;
  }
  ++stats_.packets_ejected;
  const double latency = static_cast<double>(stats_.cycles - f.inject_cycle);
  stats_.packet_latency.add(latency);
  if (observe_ && latency_samples_.size() < kMaxObservationSamples) {
    latency_samples_.push_back(latency);
  }
  if (trace_noc_) {
    obs::Tracer::global().record_instant(
        obs::kCatNoc, "eject", obs::kPidNoc, static_cast<std::uint32_t>(node),
        stats_.cycles, "latency_cycles", latency);
  }
  if (!protect_) {
    ++stats_.packets_delivered;
    if (eject_hook_) eject_hook_(f, stats_.cycles);
    return;
  }
  // The tail is the CRC flit: compare against the CRC accumulated over the
  // packet's data payloads (wormhole delivery preserves flit order).
  std::uint32_t crc = kCrcInit;
  if (const auto it = eject_crc_.find(f.packet_id); it != eject_crc_.end()) {
    crc = it->second;
    eject_crc_.erase(it);
  }
  const auto pit = inflight_.find(f.packet_id);
  NOCW_CHECK(pit != inflight_.end());
  if (crc == static_cast<std::uint32_t>(f.payload)) {
    ++stats_.packets_delivered;
    inflight_.erase(pit);
  } else {
    // NACK path: requeue the original descriptor with exponential backoff,
    // or drop once the retry budget is exhausted.
    ++stats_.crc_failures;
    PacketDescriptor d = pit->second;
    inflight_.erase(pit);
    if (d.attempt < cfg_.protection.max_retries) {
      const unsigned shift = std::min<unsigned>(d.attempt, 32);
      d.release_cycle =
          stats_.cycles + (cfg_.protection.retry_backoff_cycles << shift);
      ++d.attempt;
      ++stats_.retransmissions;
      if (trace_noc_) {
        obs::Tracer::global().record_instant(
            obs::kCatNoc, "retransmit", obs::kPidNoc,
            static_cast<std::uint32_t>(node), stats_.cycles, "attempt",
            static_cast<double>(d.attempt));
      }
      queue_packet(d);
    } else {
      ++stats_.packets_dropped;
      if (trace_noc_) {
        obs::Tracer::global().record_instant(
            obs::kCatNoc, "drop", obs::kPidNoc,
            static_cast<std::uint32_t>(node), stats_.cycles, "attempt",
            static_cast<double>(d.attempt));
      }
    }
  }
  if (eject_hook_) eject_hook_(f, stats_.cycles);
}

void Network::switch_phase() {
  const bool faulty = fault_.enabled();
  for (auto& r : routers_) {
    if (faulty && fault_.router_stalled(stats_.cycles, r.id())) {
      ++stats_.router_stall_cycles;
      continue;  // control-path glitch: no allocation on any port this cycle
    }
    for (int out = 0; out < kNumPorts; ++out) {
      if (out == kLocal) {
        // Ejection: the NI always sinks one flit per cycle per port.
        const auto in = r.allocate(out);
        if (!in) continue;
        eject_flit(r.grant(*in, out), r.id());
        continue;
      }
      if (faulty && fault_.link_down(stats_.cycles, r.id(), out)) {
        ++stats_.link_fault_cycles;
        continue;  // transient outage: flits stay buffered and retry
      }
      // Neighbour router and its receiving port.
      const int x = cfg_.node_x(r.id());
      const int y = cfg_.node_y(r.id());
      int nx = x, ny = y;
      switch (out) {
        case kNorth: ny = y - 1; break;
        case kSouth: ny = y + 1; break;
        case kEast: nx = x + 1; break;
        case kWest: nx = x - 1; break;
        default: break;
      }
      if (nx < 0 || nx >= cfg_.width || ny < 0 || ny >= cfg_.height) {
        continue;  // edge router: this output has no link (and DOR never
                   // routes a flit toward it)
      }
      const int nid = cfg_.node_id(nx, ny);
      const int nport = opposite(out);
      // Allocation only considers candidates whose downstream (port, VC)
      // FIFO can take a flit this cycle, so a back-pressured VC never
      // stalls the output for traffic on other VCs.
      const auto in = r.allocate(out, [&](const Flit& f) {
        const int vc = static_cast<int>(f.vc);
        const auto& nbuf =
            routers_[static_cast<std::size_t>(nid)].input_vc(nport, vc);
        return nbuf.free_slots() >
               staged_count_[stage_index(nid, nport, vc)];
      });
      if (!in) continue;
      Flit f = r.grant(*in, out);
      if (faulty) {
        stats_.payload_bit_flips += static_cast<std::uint64_t>(
            fault_.corrupt_payload(f.payload, stats_.cycles, r.id(), out));
      }
      const std::size_t idx =
          stage_index(nid, nport, static_cast<int>(f.vc));
      staged_.push_back(StagedMove{nid, nport, f});
      ++staged_count_[idx];
      ++stats_.buffer_reads;
      ++stats_.router_traversals;
      ++stats_.link_traversals;
      ++link_flits_[static_cast<std::size_t>(r.id()) * kNumPorts +
                    static_cast<std::size_t>(out)];
      if (trace_noc_ && hop_seq_++ % trace_sample_ == 0) {
        obs::Tracer::global().record_instant(
            obs::kCatNoc, "hop", obs::kPidNoc,
            static_cast<std::uint32_t>(r.id()), stats_.cycles, "dst",
            static_cast<double>(f.dst));
      }
    }
  }
}

void Network::step() {
  staged_.clear();
  std::fill(staged_count_.begin(), staged_count_.end(),
            static_cast<std::uint8_t>(0));
  switch_phase();
  inject_phase();
  for (const auto& m : staged_) {
    routers_[static_cast<std::size_t>(m.router)]
        .input_vc(m.port, static_cast<int>(m.flit.vc))
        .push(m.flit);
    ++stats_.buffer_writes;
  }
  ++stats_.cycles;
  if (observe_ && stats_.cycles % kQueueSampleInterval == 0) {
    sample_queue_depths();
  }
  if (series_ != nullptr && stats_.cycles % series_interval_cycles_ == 0) {
    sample_series();
  }
}

void Network::sample_queue_depths() {
  if (queue_samples_.size() + routers_.size() > kMaxObservationSamples) return;
  for (const auto& r : routers_) {
    queue_samples_.push_back(static_cast<double>(r.buffered_flits()));
  }
}

void Network::set_series_sink(obs::TimeSeriesSet* sink,
                              std::uint64_t interval_cycles) {
  NOCW_CHECK_GE(interval_cycles, std::uint64_t{1});
  series_ = sink;
  series_interval_cycles_ = interval_cycles;
  series_prev_injected_ = stats_.flits_injected;
  series_prev_ejected_ = stats_.flits_ejected;
  series_prev_links_ = stats_.link_traversals;
}

void Network::sample_series() {
  // Stamp on the inference-global timeline; the accelerator sets the
  // thread-local base to each NoC phase's start cycle.
  const std::uint64_t t = obs::time_base() + stats_.cycles;
  series_->append("noc.flits_injected", "flits", t,
                  static_cast<double>(stats_.flits_injected -
                                      series_prev_injected_));
  series_->append("noc.flits_ejected", "flits", t,
                  static_cast<double>(stats_.flits_ejected -
                                      series_prev_ejected_));
  series_->append("noc.link_flits", "flits", t,
                  static_cast<double>(stats_.link_traversals -
                                      series_prev_links_));
  std::uint64_t buffered = 0;
  for (const auto& r : routers_) buffered += r.buffered_flits();
  series_->append("noc.queue_depth", "flits", t,
                  static_cast<double>(buffered));
  series_prev_injected_ = stats_.flits_injected;
  series_prev_ejected_ = stats_.flits_ejected;
  series_prev_links_ = stats_.link_traversals;
}

bool Network::drained() const noexcept {
  return undelivered_flits() == 0;
}

std::uint64_t Network::undelivered_flits() const noexcept {
  std::uint64_t n = 0;
  for (const auto& s : sources_) n += s.queued_flits;
  for (const auto& r : routers_) n += r.buffered_flits();
  return n;
}

std::uint64_t Network::run_until_drained(std::uint64_t max_cycles) {
  const std::uint64_t start = stats_.cycles;
  while (!drained()) {
    if (stats_.cycles - start >= max_cycles) {
      throw std::runtime_error("NoC did not drain within cycle budget");
    }
    step();
    if (stats_.cycles % kInvariantCheckInterval == 0) check_invariants();
  }
  check_invariants();
  return stats_.cycles - start;
}

void Network::run_cycles(std::uint64_t n) {
  for (std::uint64_t i = 0; i < n; ++i) {
    step();
    if (stats_.cycles % kInvariantCheckInterval == 0) check_invariants();
  }
  check_invariants();
}

void Network::check_invariants() const {
  std::uint64_t buffered = 0;
  for (const auto& r : routers_) {
    r.check_invariants();
    buffered += r.buffered_flits();
  }
  // Flit conservation: every injected flit is either ejected or still sits
  // in some router FIFO. Queued flits at the sources are not yet injected.
  NOCW_CHECK_EQ(stats_.flits_injected, stats_.flits_ejected + buffered);
  NOCW_CHECK_GE(stats_.packets_injected, stats_.packets_ejected);
  NOCW_CHECK_GE(stats_.flits_injected, stats_.packets_injected);
  // Every buffered flit was written exactly once and is read exactly once.
  NOCW_CHECK_EQ(stats_.buffer_writes, stats_.buffer_reads + buffered);
  // Each crossbar traversal reads one flit out of an input FIFO.
  NOCW_CHECK_EQ(stats_.router_traversals, stats_.buffer_reads);
  // One latency sample per ejected packet (Fig. 2 latency feeds off this).
  NOCW_CHECK_EQ(stats_.packet_latency.count(), stats_.packets_ejected);
  // The observability arrays are decompositions of the canonical counters:
  // per-link flit counts must sum to link_traversals and per-node ejections
  // to flits_ejected, or a heatmap would disagree with the stats facade.
  std::uint64_t link_sum = 0;
  for (const std::uint64_t v : link_flits_) link_sum += v;
  NOCW_CHECK_EQ(link_sum, stats_.link_traversals);
  std::uint64_t eject_sum = 0;
  for (const std::uint64_t v : node_ejects_) eject_sum += v;
  NOCW_CHECK_EQ(eject_sum, stats_.flits_ejected);
  // CRC bookkeeping: every ejected packet is either delivered clean or
  // failed its check, and every failure resolved into a retransmission or a
  // drop at the moment it was detected.
  NOCW_CHECK_EQ(stats_.packets_delivered + stats_.crc_failures,
                stats_.packets_ejected);
  NOCW_CHECK_EQ(stats_.retransmissions + stats_.packets_dropped,
                stats_.crc_failures);
  if (!protect_) {
    NOCW_CHECK_EQ(stats_.crc_failures, std::uint64_t{0});
    NOCW_CHECK_EQ(stats_.crc_flits_injected, std::uint64_t{0});
    NOCW_CHECK_EQ(stats_.crc_flit_events, std::uint64_t{0});
    NOCW_CHECK(inflight_.empty());
    NOCW_CHECK(eject_crc_.empty());
  }
}

}  // namespace nocw::noc
