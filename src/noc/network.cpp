#include "noc/network.hpp"

#include <algorithm>
#include <bit>
#include <sstream>
#include <stdexcept>

#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace nocw::noc {

Network::Network(const NocConfig& cfg)
    : cfg_(cfg), fault_(cfg.fault, cfg.node_count(), cfg.width),
      health_(cfg.node_count()) {
  vcs_ = cfg_.virtual_channels > 0 ? cfg_.virtual_channels : 1;
  engine_ = engine_from_env(cfg_.engine);
  protect_ = cfg_.protection.crc;
  carry_payload_ = protect_ || fault_.enabled();
  adaptive_ = cfg_.resilience.adaptive();
  escalate_ = cfg_.resilience.escalate;
  // Escalation rides on the adaptive machinery (health map, rebuilds);
  // without it a quarantine verdict would have nowhere to go.
  NOCW_CHECK(!escalate_ || adaptive_);
  track_inflight_ = protect_ || escalate_;
  NOCW_CHECK_GE(cfg_.protection.max_retries, 0);
  NOCW_CHECK_GE(cfg_.resilience.stall_threshold_cycles, std::uint64_t{1});
  NOCW_CHECK_GE(cfg_.resilience.retry_suspicion_threshold, 1);
  routers_.reserve(static_cast<std::size_t>(cfg_.node_count()));
  for (int id = 0; id < cfg_.node_count(); ++id) {
    routers_.emplace_back(id, cfg_);
  }
  sources_.resize(static_cast<std::size_t>(cfg_.node_count()));
  const std::size_t lanes_total = static_cast<std::size_t>(cfg_.node_count()) *
                                  kNumPorts * static_cast<std::size_t>(vcs_);
  staged_count_.resize(lanes_total, 0);
  occ_.resize(lanes_total, 0);
  router_occ_.resize(static_cast<std::size_t>(cfg_.node_count()), 0);
  ctxs_.resize(1);
  link_flits_.resize(
      static_cast<std::size_t>(cfg_.node_count()) * kNumPorts, 0);
  neighbor_.assign(static_cast<std::size_t>(cfg_.node_count()) * kNumPorts,
                   -1);
  for (int id = 0; id < cfg_.node_count(); ++id) {
    const int x = cfg_.node_x(id);
    const int y = cfg_.node_y(id);
    for (int out = 0; out < kNumPorts; ++out) {
      if (out == kLocal) continue;
      int nx = x, ny = y;
      switch (out) {
        case kNorth: ny = y - 1; break;
        case kSouth: ny = y + 1; break;
        case kEast: nx = x + 1; break;
        case kWest: nx = x - 1; break;
        default: break;
      }
      if (nx < 0 || nx >= cfg_.width || ny < 0 || ny >= cfg_.height) continue;
      neighbor_[static_cast<std::size_t>(id) * kNumPorts +
                static_cast<std::size_t>(out)] = cfg_.node_id(nx, ny);
    }
  }
  node_ejects_.resize(static_cast<std::size_t>(cfg_.node_count()), 0);
  trace_noc_ = NOCW_TRACE_ON(obs::kCatNoc);
  observe_ = trace_noc_;
  trace_sample_ = obs::Tracer::sample_every();
  if (trace_sample_ == 0) trace_sample_ = 1;
  // The fast path caches DOR head routes; any table-driven rerouting would
  // invalidate those caches mid-run, so adaptive mode pins the reference
  // switch loop (PR 6's bit-identity gate makes both produce equal stats).
  fast_switch_ = engine_ == EngineMode::Event && !fault_.enabled() &&
                 !trace_noc_ && !adaptive_ && kNumPorts * vcs_ <= 64;
  if (fast_switch_) {
    occ_mask_.assign(static_cast<std::size_t>(cfg_.node_count()), 0);
    head_out_.assign(lanes_total, 0);
    live_occ_.assign(lanes_total, 0);
  }
  if (adaptive_) {
    route_table_ =
        std::make_unique<RouteTable>(cfg_, cfg_.resilience.route_mode);
    for (auto& r : routers_) r.set_route_table(route_table_.get());
    if (escalate_) {
      link_streak_.assign(
          static_cast<std::size_t>(cfg_.node_count()) * kNumPorts, 0);
      router_streak_.assign(static_cast<std::size_t>(cfg_.node_count()), 0);
      link_suspicion_.assign(
          static_cast<std::size_t>(cfg_.node_count()) * kNumPorts, 0);
    }
    if (cfg_.resilience.assume_known_outages &&
        (!fault_.dead_links().empty() || !fault_.dead_routers().empty())) {
      // Known permanent outages are quarantined before the first packet:
      // no detection latency, no recovery_cycles charged.
      for (const int link : fault_.dead_links()) {
        if (health_.mark_link_down(link / kNumPorts, link % kNumPorts)) {
          ++stats_.links_quarantined;
        }
      }
      for (const int rid : fault_.dead_routers()) {
        if (health_.mark_router_down(rid)) ++stats_.routers_quarantined;
      }
      route_table_->rebuild(health_);
      ++stats_.route_rebuilds;
    }
  }
}

void Network::add_packet(const PacketDescriptor& p) {
  if (p.src >= cfg_.node_count() || p.dst >= cfg_.node_count()) {
    throw std::invalid_argument("packet endpoint out of range");
  }
  if (p.size_flits == 0) throw std::invalid_argument("empty packet");
  queue_packet(p);
}

void Network::queue_packet(const PacketDescriptor& p) {
  auto& s = sources_[p.src];
  s.pending.push(p);
  s.queued_flits += flits_of(p);
  queued_total_ += flits_of(p);
}

void Network::add_packets(std::span<const PacketDescriptor> ps) {
  for (const auto& p : ps) add_packet(p);
}

void Network::inject_phase() {
  // Nothing queued anywhere (including the un-sent tail of any active
  // packet) means no source can inject this cycle.
  if (queued_total_ == 0) return;
  for (int node = 0; node < cfg_.node_count(); ++node) {
    auto& s = sources_[static_cast<std::size_t>(node)];
    if (!s.active) {
      // Drop packets with no live route at activation time (dead source or
      // destination router, or a partitioned mesh) instead of injecting
      // flits that could never eject — graceful degradation over deadlock.
      while (adaptive_ && !s.pending.empty() &&
             s.pending.top().release_cycle <= stats_.cycles.value() &&
             !deliverable(node, s.pending.top().dst)) {
        const std::uint64_t fl = flits_of(s.pending.top());
        s.pending.pop();
        s.queued_flits -= fl;
        queued_total_ -= fl;
        ++stats_.packets_undeliverable;
      }
      if (s.pending.empty() ||
          s.pending.top().release_cycle > stats_.cycles.value()) {
        continue;
      }
      s.current = s.pending.top();
      s.pending.pop();
      s.active = true;
      ++active_sources_;
      s.sent = 0;
      s.packet_id = next_packet_id_++;
      s.crc_accum = kCrcInit;
      if (track_inflight_) inflight_.emplace(s.packet_id, s.current);
    }
    const int vc = static_cast<int>(s.packet_id % static_cast<std::uint32_t>(vcs_));
    auto& local =
        routers_[static_cast<std::size_t>(node)].input_vc(kLocal, vc);
    const std::size_t idx = stage_index(node, kLocal, vc);
    if (local.free_slots() <= staged_count_[idx]) continue;

    const auto size = static_cast<std::uint32_t>(flits_of(s.current));
    Flit f;
    f.packet_id = s.packet_id;
    f.src = s.current.src;
    f.dst = s.current.dst;
    f.vc = static_cast<std::uint8_t>(vc);
    f.inject_cycle = static_cast<std::uint32_t>(s.current.release_cycle);
    f.tag = s.current.tag;
    const bool first = (s.sent == 0);
    const bool last = (s.sent + 1 == size);
    f.type = first && last ? FlitType::HeadTail
             : first       ? FlitType::Head
             : last        ? FlitType::Tail
                           : FlitType::Body;
    if (carry_payload_) {
      const bool crc_flit = protect_ && last;
      if (crc_flit) {
        f.payload = s.crc_accum;
        ++stats_.crc_flits_injected;
      } else {
        f.payload = synth_payload(s.packet_id, s.sent);
        if (protect_) s.crc_accum = crc32_word(s.crc_accum, f.payload);
      }
      if (protect_) ++stats_.crc_flit_events;  // CRC generator work
    }
    staged_.push_back(StagedMove{node, kLocal, f});
    ++staged_count_[idx];
    ++s.sent;
    --s.queued_flits;
    --queued_total_;
    ++stats_.flits_injected;
    if (first) {
      ++stats_.packets_injected;
      if (trace_noc_) {
        obs::Tracer::global().record_instant(
            obs::kCatNoc, "inject", obs::kPidNoc,
            static_cast<std::uint32_t>(node), stats_.cycles.value(), "dst",
            static_cast<double>(s.current.dst));
      }
    }
    if (last) {
      s.active = false;
      --active_sources_;
    }
  }
}

void Network::eject_flit(const Flit& f, int node) {
  ++stats_.buffer_reads;
  ++stats_.router_traversals;
  ++stats_.flits_ejected;
  ++node_ejects_[static_cast<std::size_t>(node)];
  if (protect_) ++stats_.crc_flit_events;  // CRC checker work
  const bool tail =
      f.type == FlitType::Tail || f.type == FlitType::HeadTail;
  if (!tail) {
    if (protect_) {
      const auto it = eject_crc_.find(f.packet_id);
      const std::uint32_t crc = it == eject_crc_.end() ? kCrcInit : it->second;
      eject_crc_[f.packet_id] = crc32_word(crc, f.payload);
    }
    if (eject_hook_) eject_hook_(f, stats_.cycles.value());
    return;
  }
  ++stats_.packets_ejected;
  const double latency =
      static_cast<double>(stats_.cycles.value() - f.inject_cycle);
  stats_.packet_latency.add(latency);
  if (observe_ && latency_samples_.size() < kMaxObservationSamples) {
    latency_samples_.push_back(latency);
  }
  if (trace_noc_) {
    obs::Tracer::global().record_instant(
        obs::kCatNoc, "eject", obs::kPidNoc, static_cast<std::uint32_t>(node),
        stats_.cycles.value(), "latency_cycles", latency);
  }
  if (!protect_) {
    ++stats_.packets_delivered;
    if (track_inflight_) inflight_.erase(f.packet_id);
    if (eject_hook_) eject_hook_(f, stats_.cycles.value());
    return;
  }
  // The tail is the CRC flit: compare against the CRC accumulated over the
  // packet's data payloads (wormhole delivery preserves flit order).
  std::uint32_t crc = kCrcInit;
  if (const auto it = eject_crc_.find(f.packet_id); it != eject_crc_.end()) {
    crc = it->second;
    eject_crc_.erase(it);
  }
  const auto pit = inflight_.find(f.packet_id);
  NOCW_CHECK(pit != inflight_.end());
  if (crc == static_cast<std::uint32_t>(f.payload)) {
    ++stats_.packets_delivered;
    inflight_.erase(pit);
  } else {
    // NACK path: requeue the original descriptor with exponential backoff,
    // or drop once the retry budget is exhausted.
    ++stats_.crc_failures;
    PacketDescriptor d = pit->second;
    inflight_.erase(pit);
    if (d.attempt < cfg_.protection.max_retries) {
      const unsigned shift = std::min<unsigned>(
          static_cast<unsigned>(d.attempt), ProtectionConfig::kMaxBackoffShift);
      d.release_cycle = stats_.cycles.value() +
                        (cfg_.protection.retry_backoff_cycles << shift);
      ++d.attempt;
      ++stats_.retransmissions;
      if (trace_noc_) {
        obs::Tracer::global().record_instant(
            obs::kCatNoc, "retransmit", obs::kPidNoc,
            static_cast<std::uint32_t>(node), stats_.cycles.value(), "attempt",
            static_cast<double>(d.attempt));
      }
      queue_packet(d);
    } else {
      ++stats_.packets_dropped;
      if (trace_noc_) {
        obs::Tracer::global().record_instant(
            obs::kCatNoc, "drop", obs::kPidNoc,
            static_cast<std::uint32_t>(node), stats_.cycles.value(), "attempt",
            static_cast<double>(d.attempt));
      }
      // A whole retry budget burned on one flow is strong evidence of a
      // hard fault somewhere on its path; let the escalation layer point
      // the finger before (optionally) failing loudly.
      if (escalate_) suspect_path(d);
      if (cfg_.protection.fail_on_drop) {
        std::ostringstream oss;
        oss << "packet lost after " << d.attempt + 1 << " attempts (src "
            << d.src << " -> dst " << d.dst << ", tag " << d.tag << ")";
        throw PacketLossError(oss.str(), d.src, d.dst, d.tag);
      }
    }
  }
  if (eject_hook_) eject_hook_(f, stats_.cycles.value());
}

bool Network::deliverable(int src, int dst) const noexcept {
  if (!adaptive_) return true;
  return health_.router_up(src) && health_.router_up(dst) &&
         route_table_->reachable(src, dst);
}

void Network::suspect_path(const PacketDescriptor& d) {
  // Walk the packet's current route (the one its retries kept failing on)
  // and charge every link one suspicion point. Runs on the serial commit
  // path, so escalation order is deterministic for any lane count.
  int node = d.src;
  for (int hop = 0; hop < cfg_.node_count() && node != d.dst; ++hop) {
    const int port = route_table_->next_hop(node, d.dst);
    if (port == RouteTable::kUnreachable || port == kLocal) break;
    const std::size_t link = static_cast<std::size_t>(node) * kNumPorts +
                             static_cast<std::size_t>(port);
    if (health_.link_up(node, port) &&
        ++link_suspicion_[link] ==
            static_cast<std::uint32_t>(
                cfg_.resilience.retry_suspicion_threshold)) {
      pending_down_links_.push_back(static_cast<int>(link));
    }
    const int next = neighbor_[link];
    if (next < 0) break;
    node = next;
  }
}

void Network::snapshot_occupancy() {
  if (fast_switch_) {
    // Sizes are maintained incrementally on every push/pop; freezing the
    // cycle-boundary view is a single copy. The per-router skip reads the
    // live occupancy mask instead of router_occ_ (equivalent here: pushes
    // land at end-of-cycle, so at switch time both reflect the boundary).
    std::copy(live_occ_.begin(), live_occ_.end(), occ_.begin());
    return;
  }
  for (int rid = 0; rid < cfg_.node_count(); ++rid) {
    const auto& r = routers_[static_cast<std::size_t>(rid)];
    std::uint32_t total = 0;
    for (int port = 0; port < kNumPorts; ++port) {
      for (int vc = 0; vc < vcs_; ++vc) {
        const auto sz =
            static_cast<std::uint16_t>(r.input_vc(port, vc).size());
        occ_[stage_index(rid, port, vc)] = sz;
        total += sz;
      }
    }
    router_occ_[static_cast<std::size_t>(rid)] = total;
  }
}

void Network::switch_router_fast(int rid, SwitchCtx& ctx) {
  auto& r = routers_[static_cast<std::size_t>(rid)];
  const std::size_t base = stage_index(rid, 0, 0);
  // Per output port, a bitmask of flattened input slots whose head flit
  // routes there, assembled from the incrementally-maintained occupancy
  // mask and cached head routes. The per-output round-robin scan then
  // walks set bits instead of re-reading every FIFO — state only changes
  // through grants, and each grant refreshes the one slot it popped, so
  // the masks stay exact for the outputs still to come.
  std::uint64_t cand[kNumPorts] = {};
  for (std::uint64_t occ = occ_mask_[static_cast<std::size_t>(rid)];
       occ != 0; occ &= occ - 1) {
    const int slot = std::countr_zero(occ);
    cand[head_out_[base + static_cast<std::size_t>(slot)]] |=
        std::uint64_t{1} << slot;
  }
  const auto depth = static_cast<std::size_t>(cfg_.buffer_depth);
  for (int out = 0; out < kNumPorts; ++out) {
    std::uint64_t m = cand[out];
    if (m == 0) continue;
    const int nid = neighbor_[static_cast<std::size_t>(rid) * kNumPorts +
                              static_cast<std::size_t>(out)];
    const int nport = out == kLocal ? -1 : opposite(out);
    const int start = r.rr_pointer(out);
    while (m != 0) {
      // Round-robin pick: lowest set bit at/after `start`, wrapping. A
      // veto (wormhole lock, downstream capacity) clears the bit and the
      // scan resumes in the same order — exactly allocate_with's walk.
      const std::uint64_t ahead = m & (~std::uint64_t{0} << start);
      const int slot = std::countr_zero(ahead != 0 ? ahead : m);
      const Flit& f = r.input_flat(slot).front();
      const bool is_head =
          f.type == FlitType::Head || f.type == FlitType::HeadTail;
      const int owner = r.lock_owner(out, static_cast<int>(f.vc));
      bool ok = is_head ? owner == -1 : owner == slot;
      std::size_t idx = 0;
      if (ok && out != kLocal) {
        idx = stage_index(nid, nport, static_cast<int>(f.vc));
        ok = depth >
             static_cast<std::size_t>(occ_[idx]) + staged_count_[idx];
      }
      if (!ok) {
        m &= ~(std::uint64_t{1} << slot);
        continue;
      }
      const Flit g = r.grant(slot, out);
      if (out == kLocal) {
        ctx.ejects.emplace_back(rid, g);
      } else {
        ++staged_count_[idx];
        ctx.staged.push_back(StagedMove{nid, nport, g});
        ++ctx.buffer_reads;
        ++ctx.router_traversals;
        ++ctx.link_traversals;
        ++link_flits_[static_cast<std::size_t>(rid) * kNumPorts +
                      static_cast<std::size_t>(out)];
      }
      // The pop may expose a new head; refresh the slot's cached route and
      // its candidacy for the remaining outputs (at most one grant per
      // output per cycle).
      const std::uint64_t bit = std::uint64_t{1} << slot;
      cand[out] &= ~bit;
      --live_occ_[base + static_cast<std::size_t>(slot)];
      const auto& buf = r.input_flat(slot);
      if (buf.empty()) {
        occ_mask_[static_cast<std::size_t>(rid)] &= ~bit;
      } else {
        const auto nout =
            static_cast<std::uint8_t>(r.route(buf.front().dst));
        head_out_[base + static_cast<std::size_t>(slot)] = nout;
        cand[nout] |= bit;
      }
      break;
    }
  }
}

void Network::switch_range(int rb, int re, SwitchCtx& ctx) {
  const bool faulty = fault_.enabled();
  const auto depth = static_cast<std::size_t>(cfg_.buffer_depth);
  if (fast_switch_) {
    // Occupancy-free routers cannot allocate anything; skipping them is
    // observationally identical (faults are off on this path — their
    // counters would tick per router per cycle regardless of traffic).
    for (int rid = rb; rid < re; ++rid) {
      if (occ_mask_[static_cast<std::size_t>(rid)] != 0) {
        switch_router_fast(rid, ctx);
      }
    }
    return;
  }
  for (int rid = rb; rid < re; ++rid) {
    if (skip_empty_this_cycle_ &&
        router_occ_[static_cast<std::size_t>(rid)] == 0) {
      continue;
    }
    auto& r = routers_[static_cast<std::size_t>(rid)];
    if (faulty && fault_.router_stalled(stats_.cycles.value(), rid)) {
      ++ctx.stall_cycles;
      // Stall watchdog: consecutive stalled-while-occupied cycles. Streak
      // slots belong to this router, so disjoint chunks never race.
      if (escalate_ && health_.router_up(rid) &&
          router_occ_[static_cast<std::size_t>(rid)] > 0 &&
          ++router_streak_[static_cast<std::size_t>(rid)] ==
              static_cast<std::uint32_t>(
                  cfg_.resilience.stall_threshold_cycles)) {
        ctx.down_routers.push_back(rid);
      }
      continue;  // control-path glitch: no allocation on any port this cycle
    }
    if (escalate_) router_streak_[static_cast<std::size_t>(rid)] = 0;
    for (int out = 0; out < kNumPorts; ++out) {
      if (out == kLocal) {
        // Ejection: the NI always sinks one flit per cycle per port. The
        // pop happens here (router-local); the stats/CRC/hook side of the
        // ejection is committed later in router-id order.
        const auto in = r.allocate_with(out, [](const Flit&) { return true; });
        if (!in) continue;
        ctx.ejects.emplace_back(rid, r.grant(*in, out));
        continue;
      }
      if (faulty && fault_.link_down(stats_.cycles.value(), rid, out)) {
        ++ctx.link_fault_cycles;
        if (escalate_ && health_.link_up(rid, out) &&
            neighbor_[static_cast<std::size_t>(rid) * kNumPorts +
                      static_cast<std::size_t>(out)] >= 0 &&
            router_occ_[static_cast<std::size_t>(rid)] > 0 &&
            ++link_streak_[static_cast<std::size_t>(rid) * kNumPorts +
                           static_cast<std::size_t>(out)] ==
                static_cast<std::uint32_t>(
                    cfg_.resilience.stall_threshold_cycles)) {
          ctx.down_links.push_back(rid * kNumPorts + out);
        }
        continue;  // transient outage: flits stay buffered and retry
      }
      if (escalate_) {
        link_streak_[static_cast<std::size_t>(rid) * kNumPorts +
                     static_cast<std::size_t>(out)] = 0;
      }
      // Neighbour router and its receiving port.
      const int x = cfg_.node_x(rid);
      const int y = cfg_.node_y(rid);
      int nx = x, ny = y;
      switch (out) {
        case kNorth: ny = y - 1; break;
        case kSouth: ny = y + 1; break;
        case kEast: nx = x + 1; break;
        case kWest: nx = x - 1; break;
        default: break;
      }
      if (nx < 0 || nx >= cfg_.width || ny < 0 || ny >= cfg_.height) {
        continue;  // edge router: this output has no link (and DOR never
                   // routes a flit toward it)
      }
      const int nid = cfg_.node_id(nx, ny);
      const int nport = opposite(out);
      // Allocation only considers candidates whose downstream (port, VC)
      // FIFO can take a flit this cycle, so a back-pressured VC never
      // stalls the output for traffic on other VCs. Capacity is judged
      // against the cycle-boundary snapshot plus flits staged toward the
      // FIFO this cycle — credits return at cycle edges, so the decision
      // is independent of router visit order (and of lane scheduling).
      const auto in = r.allocate_with(out, [&](const Flit& f) {
        const std::size_t idx =
            stage_index(nid, nport, static_cast<int>(f.vc));
        return depth > static_cast<std::size_t>(occ_[idx]) +
                           staged_count_[idx];
      });
      if (!in) continue;
      Flit f = r.grant(*in, out);
      if (faulty) {
        ctx.bit_flips += static_cast<std::uint64_t>(
            fault_.corrupt_payload(f.payload, stats_.cycles.value(), rid, out));
      }
      const std::size_t idx =
          stage_index(nid, nport, static_cast<int>(f.vc));
      // Single producer per downstream (port, VC): only this router's link
      // feeds it, so the staged count and link counter are race-free even
      // when ranges run on different lanes.
      ++staged_count_[idx];
      ctx.staged.push_back(StagedMove{nid, nport, f});
      ++ctx.buffer_reads;
      ++ctx.router_traversals;
      ++ctx.link_traversals;
      ++link_flits_[static_cast<std::size_t>(rid) * kNumPorts +
                    static_cast<std::size_t>(out)];
      if (trace_noc_ && hop_seq_++ % trace_sample_ == 0) {
        obs::Tracer::global().record_instant(
            obs::kCatNoc, "hop", obs::kPidNoc,
            static_cast<std::uint32_t>(rid), stats_.cycles.value(), "dst",
            static_cast<double>(f.dst));
      }
    }
  }
}

void Network::commit_switch(SwitchCtx& ctx) {
  // Contexts commit in chunk (= ascending router-id) order, so ejection
  // side effects — latency accumulation, CRC verdicts, NACK requeues, the
  // eject hook — fire in exactly the order a serial sweep produces.
  for (const auto& [node, f] : ctx.ejects) eject_flit(f, node);
  stats_.buffer_reads += ctx.buffer_reads;
  stats_.router_traversals += ctx.router_traversals;
  stats_.link_traversals += ctx.link_traversals;
  stats_.router_stall_cycles += units::Cycles{ctx.stall_cycles};
  stats_.link_fault_cycles += units::Cycles{ctx.link_fault_cycles};
  stats_.payload_bit_flips += ctx.bit_flips;
  // ctx.staged is pushed into the downstream FIFOs directly at the end of
  // step_cycle — no copy through staged_, which holds only injections.
}

int Network::partition_chunks() {
  if (trace_noc_ || cfg_.partition_lanes == 1 ||
      ThreadPool::in_parallel_region()) {
    return 1;  // hop-trace sampling shares one sequence counter; nested
               // regions run serial by pool policy
  }
  const int n = cfg_.node_count();
  if (cfg_.partition_lanes > 1) return std::min(cfg_.partition_lanes, n);
  if (n < kAutoPartitionNodes) return 1;
  const int pool = static_cast<int>(global_thread_count());
  return pool <= 1 ? 1 : std::min(pool, n);
}

void Network::step_cycle() {
  staged_.clear();
  std::fill(staged_count_.begin(), staged_count_.end(),
            static_cast<std::uint8_t>(0));
  skip_empty_this_cycle_ =
      engine_ == EngineMode::Event && !fault_.enabled();
  snapshot_occupancy();
  const int n = cfg_.node_count();
  const int chunks = partition_chunks();
  std::size_t chunk_ctxs = 1;
  if (chunks <= 1) {
    ctxs_[0].clear();
    switch_range(0, n, ctxs_[0]);
    commit_switch(ctxs_[0]);
  } else {
    // Chunk boundaries depend only on (n, chunks); the pool hands chunks to
    // lanes dynamically, so contexts are indexed by chunk id, never lane.
    const std::size_t grain =
        (static_cast<std::size_t>(n) + static_cast<std::size_t>(chunks) - 1) /
        static_cast<std::size_t>(chunks);
    const std::size_t actual =
        (static_cast<std::size_t>(n) + grain - 1) / grain;
    if (ctxs_.size() < actual) ctxs_.resize(actual);
    // Clear before dispatch: the pool's serial fast path may run the whole
    // range as one chunk into ctxs_[0], and a stale context must not be
    // committed.
    for (std::size_t c = 0; c < actual; ++c) ctxs_[c].clear();
    global_pool().parallel_for(
        0, static_cast<std::size_t>(n), grain,
        [&](std::size_t b, std::size_t e, unsigned) {
          switch_range(static_cast<int>(b), static_cast<int>(e),
                       ctxs_[b / grain]);
        });
    for (std::size_t c = 0; c < actual; ++c) commit_switch(ctxs_[c]);
    chunk_ctxs = actual;
  }
  inject_phase();
  // Deliver this cycle's moves: switch traversals live in the chunk
  // contexts (already committed in chunk order), injections in staged_.
  // Each (node, port, VC) FIFO receives at most one flit per cycle —
  // single producer per link plus local-only injection — so push order
  // across buffers is immaterial.
  const auto push_move = [&](const StagedMove& m) {
    auto& r = routers_[static_cast<std::size_t>(m.router)];
    auto& buf = r.input_vc(m.port, static_cast<int>(m.flit.vc));
    if (fast_switch_) {
      const std::size_t slot = r.flat(m.port, static_cast<int>(m.flit.vc));
      const std::size_t idx = stage_index(m.router, 0, 0) + slot;
      ++live_occ_[idx];
      if (buf.empty()) {
        // Push-to-empty makes this flit the slot's head: record its
        // occupancy bit and cached route for the switch fast path.
        occ_mask_[static_cast<std::size_t>(m.router)] |= std::uint64_t{1}
                                                         << slot;
        head_out_[idx] = static_cast<std::uint8_t>(r.route(m.flit.dst));
      }
    }
    buf.push(m.flit);
    ++stats_.buffer_writes;
  };
  for (std::size_t c = 0; c < chunk_ctxs; ++c) {
    for (const auto& m : ctxs_[c].staged) push_move(m);
  }
  for (const auto& m : staged_) push_move(m);
  if (escalate_) process_escalations(chunk_ctxs);
  ++stats_.cycles;
  if (observe_ && stats_.cycles.value() % kQueueSampleInterval == 0) {
    sample_queue_depths();
  }
  if (series_ != nullptr &&
      stats_.cycles.value() % series_interval_cycles_ == 0) {
    sample_series();
  }
}

void Network::step() { step_cycle(); }

void Network::process_escalations(std::size_t chunk_ctxs) {
  // Merge the chunks' watchdog verdicts with the retry-suspicion queue.
  // Sorting (and deduplicating) makes the apply order a function of the
  // entity ids alone, never of lane scheduling.
  std::vector<int> links = std::move(pending_down_links_);
  pending_down_links_.clear();
  std::vector<int> routers;
  for (std::size_t c = 0; c < chunk_ctxs; ++c) {
    links.insert(links.end(), ctxs_[c].down_links.begin(),
                 ctxs_[c].down_links.end());
    routers.insert(routers.end(), ctxs_[c].down_routers.begin(),
                   ctxs_[c].down_routers.end());
  }
  if (links.empty() && routers.empty()) return;
  std::sort(links.begin(), links.end());
  links.erase(std::unique(links.begin(), links.end()), links.end());
  std::sort(routers.begin(), routers.end());
  routers.erase(std::unique(routers.begin(), routers.end()), routers.end());
  std::uint64_t newly_marked = 0;
  for (const int link : links) {
    if (health_.mark_link_down(link / kNumPorts, link % kNumPorts)) {
      ++stats_.links_quarantined;
      ++newly_marked;
    }
  }
  for (const int rid : routers) {
    if (health_.mark_router_down(rid)) {
      ++stats_.routers_quarantined;
      ++newly_marked;
    }
  }
  if (newly_marked == 0) return;
  // Each escalation spent one detection window stalled before the verdict.
  stats_.recovery_cycles +=
      units::Cycles{cfg_.resilience.stall_threshold_cycles * newly_marked};
  quarantine_flush();
  route_table_->rebuild(health_);
  ++stats_.route_rebuilds;
}

void Network::quarantine_flush() {
  // Mid-flight wormholes cannot survive a route change (body flits must
  // follow their head's path), so the recovery story is restart-from-
  // source: drop everything buffered, cancel mid-injection sources, and
  // requeue every affected packet from its original descriptor.
  std::uint64_t flushed = 0;
  for (auto& r : routers_) {
    flushed += static_cast<std::uint64_t>(r.flush_buffers());
  }
  stats_.flits_flushed += units::Flits{flushed};
  for (auto& s : sources_) {
    if (!s.active) continue;
    const std::uint64_t remaining =
        static_cast<std::uint64_t>(flits_of(s.current)) - s.sent;
    s.queued_flits -= remaining;
    queued_total_ -= remaining;
    s.active = false;
    --active_sources_;
    // The descriptor is requeued through the inflight_ sweep below
    // (track_inflight_ always holds here: escalation implies it).
  }
  eject_crc_.clear();
  if (!track_inflight_) return;
  std::vector<std::pair<std::uint32_t, PacketDescriptor>> flow(
      inflight_.begin(), inflight_.end());
  inflight_.clear();
  std::sort(flow.begin(), flow.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (auto& [id, d] : flow) requeue_or_drop(d);
}

void Network::requeue_or_drop(PacketDescriptor d) {
  if (!deliverable(d.src, d.dst)) {
    ++stats_.packets_undeliverable;
    return;
  }
  d.release_cycle = stats_.cycles.value() + 1;
  queue_packet(d);
  ++stats_.packets_rerouted;
}

void Network::sample_queue_depths() {
  if (queue_samples_.size() + routers_.size() > kMaxObservationSamples) return;
  for (const auto& r : routers_) {
    queue_samples_.push_back(static_cast<double>(r.buffered_flits()));
  }
}

void Network::set_series_sink(obs::TimeSeriesSet* sink,
                              std::uint64_t interval_cycles) {
  NOCW_CHECK_GE(interval_cycles, std::uint64_t{1});
  series_ = sink;
  series_interval_cycles_ = interval_cycles;
  series_prev_injected_ = stats_.flits_injected.value();
  series_prev_ejected_ = stats_.flits_ejected.value();
  series_prev_links_ = stats_.link_traversals;
  series_prev_rerouted_ = stats_.packets_rerouted;
}

void Network::sample_series() {
  // Stamp on the inference-global timeline; the accelerator sets the
  // thread-local base to each NoC phase's start cycle.
  const std::uint64_t t = obs::time_base() + stats_.cycles.value();
  series_->append("noc.flits_injected", "flits", t,
                  static_cast<double>(stats_.flits_injected.value() -
                                      series_prev_injected_));
  series_->append("noc.flits_ejected", "flits", t,
                  static_cast<double>(stats_.flits_ejected.value() -
                                      series_prev_ejected_));
  series_->append("noc.link_flits", "flits", t,
                  static_cast<double>(stats_.link_traversals -
                                      series_prev_links_));
  std::uint64_t buffered = 0;
  for (const auto& r : routers_) buffered += r.buffered_flits();
  series_->append("noc.queue_depth", "flits", t,
                  static_cast<double>(buffered));
  if (adaptive_) {
    // Recovery visibility: reroute bursts mark the quarantine events on the
    // same timeline as the throughput dip they explain. Gated on adaptive_
    // so baseline runs keep their exact series schema.
    series_->append("noc.packets_rerouted", "packets", t,
                    static_cast<double>(stats_.packets_rerouted -
                                        series_prev_rerouted_));
    series_prev_rerouted_ = stats_.packets_rerouted;
  }
  series_prev_injected_ = stats_.flits_injected.value();
  series_prev_ejected_ = stats_.flits_ejected.value();
  series_prev_links_ = stats_.link_traversals;
}

bool Network::drained() const noexcept {
  // queued_total_ counts every flit not yet injected, including the rest of
  // any packet mid-injection, so it doubles as the active-source check.
  // Flushed flits left the network without ejecting (their packets were
  // requeued or dropped), so conservation is injected == ejected + flushed.
  return queued_total_ == 0 &&
         stats_.flits_injected == stats_.flits_ejected + stats_.flits_flushed;
}

std::uint64_t Network::undelivered_flits() const noexcept {
  std::uint64_t n = 0;
  for (const auto& s : sources_) n += s.queued_flits;
  for (const auto& r : routers_) n += r.buffered_flits();
  return n;
}

bool Network::idle_now() const noexcept {
  // Stepping would be a pure no-op: nothing buffered (conservation), no
  // source mid-packet, and no fault counters that tick on idle cycles.
  // (flits_flushed is always zero here: flushes require faults.)
  return stats_.flits_injected ==
             stats_.flits_ejected + stats_.flits_flushed &&
         active_sources_ == 0 && !fault_.enabled();
}

std::uint64_t Network::next_source_release() const noexcept {
  std::uint64_t next = ~std::uint64_t{0};
  for (const auto& s : sources_) {
    if (!s.pending.empty()) {
      next = std::min(next, s.pending.top().release_cycle);
    }
  }
  return next;
}

void Network::advance_idle(std::uint64_t target) {
  idle_cycles_skipped_ += target - stats_.cycles.value();
  // Jump in hops so every sampling boundary a dense engine would have hit
  // still fires, in increasing cycle order. The network is empty, so queue
  // depths and series window deltas are exactly the zeros dense reports.
  while (stats_.cycles.value() < target) {
    std::uint64_t next = target;
    if (observe_) {
      const std::uint64_t b =
          (stats_.cycles.value() / kQueueSampleInterval + 1) *
          kQueueSampleInterval;
      next = std::min(next, b);
    }
    if (series_ != nullptr) {
      const std::uint64_t b =
          (stats_.cycles.value() / series_interval_cycles_ + 1) *
          series_interval_cycles_;
      next = std::min(next, b);
    }
    stats_.cycles = units::Cycles{next};
    if (observe_ && stats_.cycles.value() % kQueueSampleInterval == 0) {
      sample_queue_depths();
    }
    if (series_ != nullptr &&
        stats_.cycles.value() % series_interval_cycles_ == 0) {
      sample_series();
    }
  }
}

void Network::throw_drain_timeout(std::uint64_t max_cycles) const {
  std::ostringstream msg;
  msg << "NoC did not drain within cycle budget (" << max_cycles
      << " cycles, " << undelivered_flits() << " flits undelivered)";
  // Name the active fault/resilience configuration: a drain timeout under
  // faults is usually a blocked route, and which links/routers are down is
  // the first thing the triage needs.
  if (fault_.enabled()) {
    const FaultConfig& fc = fault_.config();
    msg << "; faults: ber=" << fc.bit_flip_probability
        << " link_p=" << fc.link_fault_probability
        << " stall_p=" << fc.router_stall_probability
        << " stuck_links=" << fc.permanent_stuck_links << " seed=" << fc.seed;
    if (!fault_.dead_links().empty()) {
      msg << "; dead links (router:port):";
      for (const int link : fault_.dead_links()) {
        msg << " " << link / kNumPorts << ":" << link % kNumPorts;
      }
    }
    if (!fault_.dead_routers().empty()) {
      msg << "; dead routers:";
      for (const int rid : fault_.dead_routers()) msg << " " << rid;
    }
  }
  if (adaptive_) {
    msg << "; routing="
        << (cfg_.resilience.route_mode == RouteMode::WestFirst ? "west_first"
                                                               : "dor")
        << " escalate=" << (escalate_ ? 1 : 0)
        << " quarantined_links=" << health_.links_down()
        << " quarantined_routers=" << health_.routers_down()
        << " rebuilds=" << stats_.route_rebuilds;
  }
  // Name one offender: prefer a flit stuck in some router FIFO, else a
  // packet still queued at (or mid-injection into) a source.
  for (const auto& r : routers_) {
    for (int port = 0; port < kNumPorts; ++port) {
      for (int vc = 0; vc < vcs_; ++vc) {
        const auto& buf = r.input_vc(port, vc);
        if (buf.empty()) continue;
        const Flit& f = buf.front();
        msg << "; packet " << f.packet_id << " (src " << f.src << " -> dst "
            << f.dst << ", tag " << f.tag << ") stuck at router " << r.id()
            << " port " << port << " vc " << vc;
        throw std::runtime_error(msg.str());
      }
    }
  }
  for (std::size_t node = 0; node < sources_.size(); ++node) {
    const auto& s = sources_[node];
    if (s.active) {
      msg << "; packet " << s.packet_id << " (src " << s.current.src
          << " -> dst " << s.current.dst << ", tag " << s.current.tag
          << ") mid-injection at node " << node << " after " << s.sent
          << " flits";
      throw std::runtime_error(msg.str());
    }
    if (!s.pending.empty()) {
      const PacketDescriptor& p = s.pending.top();
      msg << "; packet (src " << p.src << " -> dst " << p.dst << ", tag "
          << p.tag << ") queued at node " << node << " with release cycle "
          << p.release_cycle << ", attempt " << p.attempt;
      throw std::runtime_error(msg.str());
    }
  }
  throw std::runtime_error(msg.str());
}

std::uint64_t Network::run_until_drained(std::uint64_t max_cycles) {
  const std::uint64_t start = stats_.cycles.value();
  const std::uint64_t deadline =
      max_cycles > ~std::uint64_t{0} - start ? ~std::uint64_t{0}
                                             : start + max_cycles;
  if (engine_ == EngineMode::Dense) {
    // Reference loop: re-derive the drain condition from a full network
    // walk every cycle, exactly as the pre-event-engine core did.
    while (undelivered_flits() != 0) {
      if (stats_.cycles.value() >= deadline) throw_drain_timeout(max_cycles);
      step_cycle();
      if (stats_.cycles.value() % kInvariantCheckInterval == 0) {
        check_invariants();
      }
    }
    check_invariants();
    return stats_.cycles.value() - start;
  }
  while (!drained()) {
    if (stats_.cycles.value() >= deadline) throw_drain_timeout(max_cycles);
    if (idle_now()) {
      const std::uint64_t next = next_source_release();
      if (next > stats_.cycles.value()) {
        // Nothing in flight and the earliest release is ahead: jump to it,
        // clamped to the deadline so the deadlock guard still fires at the
        // same cycle a dense run would report.
        advance_idle(std::min(next, deadline));
        continue;
      }
    }
    step_cycle();
    if (stats_.cycles.value() % kInvariantCheckInterval == 0) {
      check_invariants();
    }
  }
  check_invariants();
  return stats_.cycles.value() - start;
}

void Network::run_cycles(std::uint64_t n) {
  for (std::uint64_t i = 0; i < n; ++i) {
    step_cycle();
    if (stats_.cycles.value() % kInvariantCheckInterval == 0) {
      check_invariants();
    }
  }
  check_invariants();
}

void Network::check_invariants() const {
  std::uint64_t buffered = 0;
  for (const auto& r : routers_) {
    r.check_invariants();
    buffered += r.buffered_flits();
  }
  // Flit conservation: every injected flit is either ejected, still sitting
  // in some router FIFO, or was flushed by a quarantine. Queued flits at
  // the sources are not yet injected.
  NOCW_CHECK_EQ(stats_.flits_injected.value(),
                stats_.flits_ejected.value() + buffered +
                    stats_.flits_flushed.value());
  NOCW_CHECK_GE(stats_.packets_injected, stats_.packets_ejected);
  NOCW_CHECK_GE(stats_.flits_injected.value(), stats_.packets_injected);
  // Every buffered flit was written exactly once and is read exactly once
  // (a flushed flit was written but never read out).
  NOCW_CHECK_EQ(stats_.buffer_writes,
                stats_.buffer_reads + buffered + stats_.flits_flushed.value());
  // Each crossbar traversal reads one flit out of an input FIFO.
  NOCW_CHECK_EQ(stats_.router_traversals, stats_.buffer_reads);
  // One latency sample per ejected packet (Fig. 2 latency feeds off this).
  NOCW_CHECK_EQ(stats_.packet_latency.count(), stats_.packets_ejected);
  // The O(1) drain-tracking counters must agree with a full walk over the
  // sources, or the event engine could terminate early or spin forever.
  std::uint64_t queued = 0;
  int active = 0;
  for (const auto& s : sources_) {
    queued += s.queued_flits;
    if (s.active) ++active;
  }
  NOCW_CHECK_EQ(queued, queued_total_);
  NOCW_CHECK_EQ(static_cast<std::uint64_t>(active),
                static_cast<std::uint64_t>(active_sources_));
  // The fast path's incremental occupancy masks and cached head routes
  // must mirror the FIFOs exactly, or switch allocation would silently
  // diverge from the reference loop.
  if (fast_switch_) {
    for (std::size_t rid = 0; rid < routers_.size(); ++rid) {
      const auto& r = routers_[rid];
      const int total = kNumPorts * vcs_;
      for (int slot = 0; slot < total; ++slot) {
        const auto& buf = r.input_flat(slot);
        const bool bit =
            (occ_mask_[rid] >> slot & std::uint64_t{1}) != 0;
        NOCW_CHECK_EQ(static_cast<int>(bit),
                      static_cast<int>(!buf.empty()));
        NOCW_CHECK_EQ(
            static_cast<std::size_t>(live_occ_[stage_index(
                static_cast<int>(rid), 0, 0) + static_cast<std::size_t>(
                slot)]),
            buf.size());
        if (!buf.empty()) {
          NOCW_CHECK_EQ(
              static_cast<int>(head_out_[stage_index(
                  static_cast<int>(rid), 0, 0) + static_cast<std::size_t>(
                  slot)]),
              r.route(buf.front().dst));
        }
      }
    }
  }
  // The observability arrays are decompositions of the canonical counters:
  // per-link flit counts must sum to link_traversals and per-node ejections
  // to flits_ejected, or a heatmap would disagree with the stats facade.
  std::uint64_t link_sum = 0;
  for (const std::uint64_t v : link_flits_) link_sum += v;
  NOCW_CHECK_EQ(link_sum, stats_.link_traversals);
  std::uint64_t eject_sum = 0;
  for (const std::uint64_t v : node_ejects_) eject_sum += v;
  NOCW_CHECK_EQ(eject_sum, stats_.flits_ejected.value());
  // CRC bookkeeping: every ejected packet is either delivered clean or
  // failed its check, and every failure resolved into a retransmission or a
  // drop at the moment it was detected.
  NOCW_CHECK_EQ(stats_.packets_delivered + stats_.crc_failures,
                stats_.packets_ejected);
  NOCW_CHECK_EQ(stats_.retransmissions + stats_.packets_dropped,
                stats_.crc_failures);
  if (!protect_) {
    NOCW_CHECK_EQ(stats_.crc_failures, std::uint64_t{0});
    NOCW_CHECK_EQ(stats_.crc_flits_injected.value(), std::uint64_t{0});
    NOCW_CHECK_EQ(stats_.crc_flit_events, std::uint64_t{0});
    NOCW_CHECK(eject_crc_.empty());
  }
  if (!track_inflight_) NOCW_CHECK(inflight_.empty());
  // Resilience counters are pinned to zero when the machinery is off — the
  // zero-overhead guarantee the bit-identity gates rely on — and mirror
  // the health map exactly when it is on.
  if (!adaptive_) {
    NOCW_CHECK_EQ(stats_.route_rebuilds, std::uint64_t{0});
    NOCW_CHECK_EQ(stats_.links_quarantined, std::uint64_t{0});
    NOCW_CHECK_EQ(stats_.routers_quarantined, std::uint64_t{0});
    NOCW_CHECK_EQ(stats_.flits_flushed.value(), std::uint64_t{0});
    NOCW_CHECK_EQ(stats_.packets_rerouted, std::uint64_t{0});
    NOCW_CHECK_EQ(stats_.packets_undeliverable, std::uint64_t{0});
    NOCW_CHECK_EQ(stats_.recovery_cycles.value(), std::uint64_t{0});
  } else {
    NOCW_CHECK_EQ(stats_.links_quarantined,
                  static_cast<std::uint64_t>(health_.links_down()));
    NOCW_CHECK_EQ(stats_.routers_quarantined,
                  static_cast<std::uint64_t>(health_.routers_down()));
  }
}

}  // namespace nocw::noc
