// Architectural parameters of the NoC (paper Sec. IV-A defaults).
#pragma once

#include <cstdint>
#include <vector>

#include "noc/fault.hpp"

namespace nocw::noc {

/// Dimension-order routing variants (both deadlock-free on meshes).
enum class Routing {
  XY,  ///< resolve X first, then Y (the paper's configuration)
  YX,  ///< resolve Y first, then X
};

/// Route computation mode (noc/routing.hpp). Dor keeps the per-hop
/// dimension-order formula; WestFirst installs a table-driven west-first
/// turn-model route that can be rebuilt around quarantined links/routers.
/// With zero faults the west-first table is identical to XY DOR entry for
/// entry, so adaptive runs are bit-identical to the DOR baseline.
enum class RouteMode {
  Dor,
  WestFirst,
};

/// Resilience knobs: fault-aware routing + online fault escalation
/// (DESIGN.md §13). All off by default — the engine then behaves
/// bit-identically to a build without the subsystem.
struct ResilienceConfig {
  /// Routing mode. WestFirst requires Routing::XY (the turn model's
  /// forbidden turns are defined relative to X-first paths).
  RouteMode route_mode = RouteMode::Dor;
  /// Pre-mark the FaultModel's permanent link/router outages as down at
  /// construction (routes avoid them from cycle 0). With this off the
  /// outages must be discovered online by the watchdogs below.
  bool assume_known_outages = true;
  /// Online escalation: stall watchdogs and CRC-exhaustion suspicion may
  /// quarantine links/routers mid-run (flush + route rebuild). Requires an
  /// adaptive route_mode — quarantine without rerouting cannot recover.
  bool escalate = false;
  /// Consecutive blocked cycles before a stall watchdog quarantines a link
  /// or router.
  std::uint64_t stall_threshold_cycles = 256;
  /// Retry-exhausted packets charge one strike to every link on their
  /// path; a link reaching this many strikes is quarantined.
  int retry_suspicion_threshold = 3;

  [[nodiscard]] bool adaptive() const noexcept {
    return route_mode != RouteMode::Dor;
  }
};

/// Cycle-engine selection (DESIGN.md §11). Both engines share one switch
/// core and are bit-identical in every observable output (stats, latency,
/// energy, samples, time series); they differ only in how the run loops
/// advance time.
enum class EngineMode {
  /// Reference engine: tick every cycle, walk every router, re-scan the
  /// whole network for the drain condition. Kept for differential testing.
  Dense,
  /// Event engine: O(1) drain tracking, empty routers skipped inside a
  /// cycle, and fully idle stretches advanced in one jump to the next
  /// source-release event (sampling hooks still fire on every crossed
  /// interval boundary). Falls back to dense-equivalent per-cycle stepping
  /// while fault injection is active, whose per-(entity, cycle) counters
  /// must tick even on idle cycles.
  Event,
};

/// Resolve the engine actually used: NOCW_NOC_ENGINE=dense|event overrides
/// `configured` (for differential runs of unmodified benches); anything
/// else, or unset, keeps the configured mode.
[[nodiscard]] EngineMode engine_from_env(EngineMode configured);

struct NocConfig {
  int width = 4;             ///< mesh columns
  int height = 4;            ///< mesh rows
  int buffer_depth = 4;      ///< flits per input FIFO
  int link_width_bits = 64;  ///< flit width == link width
  double clock_ghz = 1.0;    ///< 1 GHz operating frequency
  Routing routing = Routing::XY;
  /// Virtual channels per physical input port. A packet is assigned one VC
  /// at injection and keeps it along its (deterministic) path; the wormhole
  /// lock is held per (output, VC), so a blocked packet no longer blocks
  /// packets travelling on other VCs of the same link. 1 = plain wormhole.
  int virtual_channels = 1;
  /// Seeded fault injection (bit flips, link faults, router stalls). The
  /// default (all rates zero) is completely inert: cycles, stats and energy
  /// are bit-identical to a fault-free build.
  FaultConfig fault;
  /// Per-packet CRC + MI→PE retransmission. Off by default (zero overhead).
  ProtectionConfig protection;
  /// Fault-aware routing + escalation. Off by default (zero overhead).
  ResilienceConfig resilience;
  /// Cycle engine (see EngineMode). Event is the default; results are
  /// bit-identical to Dense by construction.
  EngineMode engine = EngineMode::Event;
  /// Mesh partitioning across the global thread pool: 0 = automatic
  /// (partition only meshes of >= 64 nodes when the pool has lanes to
  /// spare), 1 = always serial, N > 1 = force N contiguous router ranges
  /// (used by the equivalence tests to exercise the barriers on small
  /// meshes). Partitioning never changes results; see DESIGN.md §11.
  int partition_lanes = 0;

  [[nodiscard]] int node_count() const noexcept { return width * height; }
  [[nodiscard]] int node_x(int id) const noexcept { return id % width; }
  [[nodiscard]] int node_y(int id) const noexcept { return id / width; }
  [[nodiscard]] int node_id(int x, int y) const noexcept {
    return y * width + x;
  }

  /// Corner nodes host the memory interfaces; the rest are PEs.
  [[nodiscard]] bool is_memory_interface(int id) const noexcept {
    const int x = node_x(id);
    const int y = node_y(id);
    return (x == 0 || x == width - 1) && (y == 0 || y == height - 1);
  }

  [[nodiscard]] std::vector<int> memory_interface_nodes() const;
  [[nodiscard]] std::vector<int> pe_nodes() const;

  /// Manhattan hop distance between two nodes (XY routing path length).
  [[nodiscard]] int hops(int a, int b) const noexcept;
};

}  // namespace nocw::noc
