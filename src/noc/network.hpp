// Cycle engine for the mesh: routers + NIs + traffic sources.
//
// One step() is one clock cycle. All switch decisions in a cycle observe the
// state at the cycle boundary and moves are committed together, so a flit
// advances at most one hop per cycle and arbitration is order-independent.
// Downstream capacity is judged against a cycle-boundary occupancy snapshot
// (credits updated at cycle edges, i.e. one cycle of credit-return latency),
// which makes the switch core independent of router iteration order — the
// property the partitioned (multi-threaded) stepping relies on.
// Sources hold packet descriptors (not expanded flits), so streaming a
// multi-million-flit layer costs O(1) memory per flow.
//
// Two run-loop engines share this switch core (EngineMode, DESIGN.md §11):
// the dense reference ticks every cycle and re-scans the network for the
// drain condition; the event engine tracks drain state in O(1), skips empty
// routers inside a cycle, and jumps over fully idle stretches to the next
// source-release event while still firing every sampling hook on the
// interval boundaries it crosses. Both produce bit-identical results.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <span>
#include <unordered_map>
#include <vector>

#include "noc/config.hpp"
#include "noc/fault.hpp"
#include "noc/flit.hpp"
#include "noc/router.hpp"
#include "noc/routing.hpp"
#include "noc/stats.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"

namespace nocw::noc {

class Network {
 public:
  explicit Network(const NocConfig& cfg);

  const NocConfig& config() const noexcept { return cfg_; }

  /// Engine actually in use (cfg.engine after the NOCW_NOC_ENGINE override).
  [[nodiscard]] EngineMode engine() const noexcept { return engine_; }

  /// Queue a packet for injection at its source node. Packets become
  /// eligible at release_cycle and inject one flit per cycle per node.
  void add_packet(const PacketDescriptor& p);
  void add_packets(std::span<const PacketDescriptor> ps);

  /// Advance one clock cycle.
  void step();

  /// True when no pending, queued, or in-flight flits remain. O(1): the
  /// sources maintain their queued-flit total and router occupancy equals
  /// flits_injected - flits_ejected (conservation, cross-checked by
  /// check_invariants()).
  [[nodiscard]] bool drained() const noexcept;

  /// Step until drained; returns cycles executed. Throws std::runtime_error
  /// naming an offending in-flight or queued packet (source/dest/tag) if
  /// max_cycles elapse first (deadlock guard).
  std::uint64_t run_until_drained(std::uint64_t max_cycles);

  void run_cycles(std::uint64_t n);

  [[nodiscard]] const NocStats& stats() const noexcept { return stats_; }
  [[nodiscard]] NocStats& stats() noexcept { return stats_; }
  [[nodiscard]] std::uint64_t cycle() const noexcept {
    return stats_.cycles.value();
  }

  [[nodiscard]] Router& router(int id) {
    return routers_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] const Router& router(int id) const {
    return routers_[static_cast<std::size_t>(id)];
  }

  /// Called for every ejected flit (after stats are updated).
  void set_eject_hook(std::function<void(const Flit&, std::uint64_t)> hook) {
    eject_hook_ = std::move(hook);
  }

  /// Flits not yet delivered (pending + queued + buffered in routers).
  /// Walks the whole network; the run loops use drained() instead.
  [[nodiscard]] std::uint64_t undelivered_flits() const noexcept;

  /// Cycles the event engine advanced over without stepping (idle jumps).
  /// Diagnostics only — deliberately not part of NocStats, whose counters
  /// are gated bit-identical across engines.
  [[nodiscard]] std::uint64_t idle_cycles_skipped() const noexcept {
    return idle_cycles_skipped_;
  }

  // --- observability (src/obs) ---
  // Per-link and per-node flit counts are always collected (one array
  // increment on paths that already bump several counters); latency and
  // queue-depth *samples* grow memory, so they are gated by observation
  // mode, which defaults to "on iff the tracer's noc category is live".

  /// Enable/disable packet-latency and queue-depth sampling.
  void set_observation(bool on) noexcept { observe_ = on; }
  [[nodiscard]] bool observing() const noexcept { return observe_; }

  /// Flits sent over each output link, indexed [node * kNumPorts + port].
  [[nodiscard]] std::span<const std::uint64_t> link_flit_counts()
      const noexcept {
    return link_flits_;
  }
  /// Flits ejected at each node's local port.
  [[nodiscard]] std::span<const std::uint64_t> node_eject_counts()
      const noexcept {
    return node_ejects_;
  }
  /// Per-packet latency samples in cycles (observation mode only; capped at
  /// kMaxObservationSamples, oldest kept).
  [[nodiscard]] const std::vector<double>& packet_latency_samples()
      const noexcept {
    return latency_samples_;
  }
  /// Per-router buffered-flit occupancy, sampled every
  /// kQueueSampleInterval cycles in observation mode.
  [[nodiscard]] const std::vector<double>& queue_depth_samples()
      const noexcept {
    return queue_samples_;
  }

  static constexpr std::size_t kMaxObservationSamples = 1u << 20;
  static constexpr std::uint64_t kQueueSampleInterval = 64;

  /// Attach a time-series sink: every `interval_cycles` cycles, the engine
  /// appends the window's flit-injection/ejection/link-traversal deltas and
  /// the instantaneous buffered-flit occupancy to `sink`, stamped on the
  /// inference-global timeline (obs::time_base() + local cycle). Pass
  /// nullptr to detach. Detached cost is one pointer-null branch per cycle
  /// and sampling never mutates engine state, so simulation results are
  /// bit-identical with the sink on or off. The event engine fires the
  /// same boundary samples when it jumps over idle stretches (the deltas
  /// are zero then, exactly as a dense tick would report).
  void set_series_sink(obs::TimeSeriesSet* sink,
                       std::uint64_t interval_cycles);

  /// Validate the cycle engine's global invariants: flit conservation
  /// (injected == ejected + buffered in routers), monotone packet counters,
  /// buffer-access accounting, the O(1) drain-tracking counters against a
  /// full network walk, one latency sample per ejected packet, and every
  /// router's structural invariants. Throws nocw::CheckError on violation.
  /// Called every kInvariantCheckInterval cycles by the run loops and from
  /// tests; it observes only committed state, so it is valid at any cycle
  /// boundary.
  void check_invariants() const;

  /// Cycle-batch granularity at which the run loops self-check.
  static constexpr std::uint64_t kInvariantCheckInterval = 1024;

  /// Meshes at least this large partition automatically when the global
  /// pool has idle lanes (cfg.partition_lanes = 0). Below it the per-cycle
  /// fork-join barrier costs more than the router work it parallelizes.
  static constexpr int kAutoPartitionNodes = 64;

 private:
  struct Source {
    struct Cmp {
      bool operator()(const PacketDescriptor& a,
                      const PacketDescriptor& b) const noexcept {
        return a.release_cycle > b.release_cycle;  // min-heap
      }
    };
    std::priority_queue<PacketDescriptor, std::vector<PacketDescriptor>, Cmp>
        pending;
    // Progress through the packet currently being injected.
    bool active = false;
    PacketDescriptor current{};
    std::uint32_t sent = 0;
    std::uint32_t packet_id = 0;
    std::uint64_t queued_flits = 0;  ///< flits not yet injected at this node
    std::uint32_t crc_accum = 0;     ///< running CRC of the active packet
  };

  struct StagedMove {
    int router;
    int port;  ///< physical port; the flit's own vc selects the FIFO
    Flit flit;
  };

  /// Per-chunk output of the switch core. A partitioned cycle gives each
  /// contiguous router range its own context; everything it accumulates is
  /// either additive (counters) or committed afterwards in router-id order
  /// (ejects, staged moves), so lane scheduling can never reorder results.
  struct SwitchCtx {
    std::vector<StagedMove> staged;
    std::vector<std::pair<int, Flit>> ejects;  ///< (node, flit), id order
    /// Watchdog escalations raised by this chunk's routers: flattened link
    /// ids / router ids whose stall streak crossed the threshold. Merged,
    /// sorted and applied serially at the end of the cycle.
    std::vector<int> down_links;
    std::vector<int> down_routers;
    std::uint64_t buffer_reads = 0;
    std::uint64_t router_traversals = 0;
    std::uint64_t link_traversals = 0;
    std::uint64_t stall_cycles = 0;
    std::uint64_t link_fault_cycles = 0;
    std::uint64_t bit_flips = 0;
    void clear() noexcept {
      staged.clear();
      ejects.clear();
      down_links.clear();
      down_routers.clear();
      buffer_reads = router_traversals = link_traversals = 0;
      stall_cycles = link_fault_cycles = bit_flips = 0;
    }
  };

  void inject_phase();
  /// Snapshot per-(node, port, VC) occupancy and per-router totals at the
  /// cycle boundary; the switch core's capacity predicate reads only this.
  void snapshot_occupancy();
  /// Switch allocation + grants for routers [rb, re). Thread-safe for
  /// disjoint ranges: mutates only the routers in range, their outgoing
  /// staged counts (single-producer per entry), their own link counters,
  /// and `ctx`.
  void switch_range(int rb, int re, SwitchCtx& ctx);
  /// Candidate-mask allocation for one router — the event engine's fast
  /// path. Bit-identical to the reference loop in switch_range (same
  /// winners, same order); only the scan is restructured around per-output
  /// head bitmasks. Gated off under faults and live NoC tracing, which
  /// hook the reference loop per entity.
  void switch_router_fast(int rid, SwitchCtx& ctx);
  /// Apply one context's deferred effects on shared state (serial, in
  /// chunk order).
  void commit_switch(SwitchCtx& ctx);
  /// One full cycle through the shared core: snapshot, switch (serial or
  /// partitioned), inject, commit, sample.
  void step_cycle();
  /// Router ranges to switch concurrently this cycle (1 = serial).
  [[nodiscard]] int partition_chunks();
  /// True when stepping the current cycle would change nothing but the
  /// cycle counter: nothing buffered, no source mid-packet, faults off.
  [[nodiscard]] bool idle_now() const noexcept;
  /// Earliest release cycle over all pending packets (UINT64_MAX if none).
  [[nodiscard]] std::uint64_t next_source_release() const noexcept;
  /// Jump the clock to `target`, emitting the queue-depth and time-series
  /// samples a dense engine would have produced on every interval boundary
  /// in (current, target].
  void advance_idle(std::uint64_t target);
  [[noreturn]] void throw_drain_timeout(std::uint64_t max_cycles) const;
  void eject_flit(const Flit& f, int node);
  void queue_packet(const PacketDescriptor& p);
  /// True when a packet from `src` can currently be delivered to `dst`
  /// (both routers live, route exists). Always true when not adaptive.
  [[nodiscard]] bool deliverable(int src, int dst) const noexcept;
  /// CRC-exhaustion escalation: a packet burned its whole retry budget, so
  /// every link on its current route grows one suspicion point; links that
  /// reach retry_suspicion_threshold are queued for quarantine.
  void suspect_path(const PacketDescriptor& d);
  /// End-of-cycle escalation: merge the chunks' watchdog verdicts with the
  /// suspicion queue, mark new casualties in the health map, flush, requeue
  /// and rebuild. Serial; deterministic for any lane count.
  void process_escalations(std::size_t chunk_ctxs);
  /// Drop every buffered flit network-wide, cancel mid-injection sources,
  /// and requeue the affected packets (in packet-id order) for a fresh
  /// attempt over the rebuilt routes.
  void quarantine_flush();
  /// Requeue `d` for reinjection if a live route still exists, else count
  /// it undeliverable.
  void requeue_or_drop(PacketDescriptor d);
  void sample_queue_depths();
  void sample_series();
  /// Flits a descriptor expands to at injection (+1 CRC flit if protected).
  [[nodiscard]] std::uint64_t flits_of(const PacketDescriptor& p)
      const noexcept {
    return p.size_flits + (protect_ ? 1u : 0u);
  }

  NocConfig cfg_;
  EngineMode engine_ = EngineMode::Event;
  std::vector<Router> routers_;
  std::vector<Source> sources_;
  NocStats stats_;
  FaultModel fault_;
  bool protect_ = false;       ///< cfg_.protection.crc
  bool carry_payload_ = false; ///< faults or protection active

  // --- resilience (DESIGN.md §13) ---
  bool adaptive_ = false;        ///< cfg_.resilience.adaptive()
  bool escalate_ = false;        ///< cfg_.resilience.escalate
  /// inflight_ is maintained when either CRC protection (NACK requeue) or
  /// escalation (quarantine-flush requeue) needs the original descriptors.
  bool track_inflight_ = false;
  HealthMap health_;
  std::unique_ptr<RouteTable> route_table_;  ///< null unless adaptive_
  /// Consecutive blocked-while-occupied cycles per link / router; crossing
  /// cfg_.resilience.stall_threshold_cycles escalates to quarantine.
  std::vector<std::uint32_t> link_streak_;    ///< [node * kNumPorts + port]
  std::vector<std::uint32_t> router_streak_;  ///< per router
  /// Retry-exhaustion suspicion points per link (see suspect_path).
  std::vector<std::uint32_t> link_suspicion_;
  /// Links fingered by suspect_path this cycle, quarantined at cycle end.
  std::vector<int> pending_down_links_;

  /// Packets in flight: packet id → original descriptor (attempt count
  /// included), so a CRC failure at ejection — or a quarantine flush — can
  /// requeue it. Maintained iff track_inflight_.
  std::unordered_map<std::uint32_t, PacketDescriptor> inflight_;
  /// Ejection-side running CRC per in-flight packet id.
  std::unordered_map<std::uint32_t, std::uint32_t> eject_crc_;
  std::vector<StagedMove> staged_;
  // staged occupancy per (router, port, vc) for capacity checks in a cycle
  std::vector<std::uint8_t> staged_count_;
  /// Cycle-boundary occupancy snapshot per (router, port, vc).
  std::vector<std::uint16_t> occ_;
  /// Cycle-boundary buffered-flit total per router (empty-router skip).
  std::vector<std::uint32_t> router_occ_;
  /// Switch contexts, one per partition chunk (index 0 doubles as the
  /// serial context). Persistent so per-cycle stepping does not allocate.
  std::vector<SwitchCtx> ctxs_;
  /// Downstream node per (router, output port); -1 for kLocal and mesh
  /// edges. Built once at construction for the switch fast path.
  std::vector<int> neighbor_;
  /// True while the current cycle may skip occupancy-free routers (event
  /// engine, faults off — fault counters tick per router per cycle).
  bool skip_empty_this_cycle_ = false;
  /// Fixed at construction: the run may use switch_router_fast (event
  /// engine, faults off, tracing off, slot count within one bitmask).
  /// Engine, fault and trace state never change after construction, so
  /// the incremental occupancy masks below are maintained iff this is set.
  bool fast_switch_ = false;
  /// Live occupied-slot bitmask per router (bit = flattened (port, VC)),
  /// updated on every push/pop. Fast-path only.
  std::vector<std::uint64_t> occ_mask_;
  /// Cached DOR output port of each slot's head flit (valid where the
  /// occupancy bit is set; heads change only on push-to-empty and pop).
  std::vector<std::uint8_t> head_out_;
  /// Live per-(router, port, VC) FIFO sizes, updated on every push/pop, so
  /// the cycle-boundary snapshot is one memcpy instead of a FIFO walk.
  /// Fast-path only.
  std::vector<std::uint16_t> live_occ_;
  int vcs_ = 1;
  [[nodiscard]] std::size_t stage_index(int node, int port,
                                        int vc) const noexcept {
    return (static_cast<std::size_t>(node) * kNumPorts +
            static_cast<std::size_t>(port)) *
               static_cast<std::size_t>(vcs_) +
           static_cast<std::size_t>(vc);
  }
  std::uint32_t next_packet_id_ = 1;
  std::function<void(const Flit&, std::uint64_t)> eject_hook_;

  // O(1) drain tracking (event engine; cross-checked by check_invariants).
  std::uint64_t queued_total_ = 0;  ///< sum of sources' queued_flits
  int active_sources_ = 0;          ///< sources mid-packet
  std::uint64_t idle_cycles_skipped_ = 0;

  // Observability. trace_noc_ caches the tracer gate at construction so the
  // per-hop emission check is one branch on a plain bool; link/eject counts
  // are unconditional (they back the utilization invariants below).
  bool trace_noc_ = false;
  bool observe_ = false;
  std::uint64_t trace_sample_ = 1;  ///< emit every Nth hop event
  std::uint64_t hop_seq_ = 0;       ///< hops seen, for sampling
  std::vector<std::uint64_t> link_flits_;   ///< [node * kNumPorts + port]
  std::vector<std::uint64_t> node_ejects_;  ///< per node
  std::vector<double> latency_samples_;
  std::vector<double> queue_samples_;

  // Time-series sink (null = detached). Window deltas are reconstructed
  // from the always-on cumulative counters, so sampling reads committed
  // state only.
  obs::TimeSeriesSet* series_ = nullptr;
  std::uint64_t series_interval_cycles_ = 0;
  std::uint64_t series_prev_injected_ = 0;
  std::uint64_t series_prev_ejected_ = 0;
  std::uint64_t series_prev_links_ = 0;
  std::uint64_t series_prev_rerouted_ = 0;
};

}  // namespace nocw::noc
