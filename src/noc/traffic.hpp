// Traffic pattern builders.
//
// The accelerator's layer phases reduce to three patterns: a stream between
// two fixed endpoints (chopped into maximum-size packets), a scatter from a
// memory interface to a set of PEs (weights/ifmap dispatch), and a gather
// from PEs back to a memory interface (ofmap writeback). Uniform random
// traffic is provided for NoC validation and micro-benchmarks.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "noc/config.hpp"
#include "noc/flit.hpp"

namespace nocw::noc {

/// Chop `total_flits` from src to dst into packets of at most
/// `flits_per_packet`, all eligible at `release_cycle`.
std::vector<PacketDescriptor> stream_flow(int src, int dst,
                                          std::uint64_t total_flits,
                                          std::uint32_t flits_per_packet,
                                          std::uint64_t release_cycle = 0);

/// Distribute `total_flits` from `src` round-robin over `dsts` in packets of
/// `flits_per_packet` (the MI -> PEs dispatch pattern).
std::vector<PacketDescriptor> scatter_flow(int src, std::span<const int> dsts,
                                           std::uint64_t total_flits,
                                           std::uint32_t flits_per_packet,
                                           std::uint64_t release_cycle = 0);

/// Gather `total_flits` from `srcs` (round-robin) into `dst` (the PEs -> MI
/// writeback pattern).
std::vector<PacketDescriptor> gather_flow(std::span<const int> srcs, int dst,
                                          std::uint64_t total_flits,
                                          std::uint32_t flits_per_packet,
                                          std::uint64_t release_cycle = 0);

/// `packets` uniform-random source/destination pairs (src != dst).
std::vector<PacketDescriptor> uniform_random_traffic(
    const NocConfig& cfg, int packets, std::uint32_t flits_per_packet,
    std::uint64_t seed);

/// Total flits described by a set of packets.
std::uint64_t total_flits(std::span<const PacketDescriptor> ps);

}  // namespace nocw::noc
