// Traffic pattern builders.
//
// The accelerator's layer phases reduce to three patterns: a stream between
// two fixed endpoints (chopped into maximum-size packets), a scatter from a
// memory interface to a set of PEs (weights/ifmap dispatch), and a gather
// from PEs back to a memory interface (ofmap writeback). Uniform random
// traffic is provided for NoC validation and micro-benchmarks.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "noc/config.hpp"
#include "noc/flit.hpp"
#include "util/units.hpp"

namespace nocw::noc {

/// Chop `total_flits` from src to dst into packets of at most
/// `flits_per_packet`, all eligible at `release_cycle`. `tag` is copied into
/// every descriptor (diagnostics label, e.g. the layer ordinal).
std::vector<PacketDescriptor> stream_flow(int src, int dst,
                                          std::uint64_t total_flits,
                                          std::uint32_t flits_per_packet,
                                          std::uint64_t release_cycle = 0,
                                          std::uint32_t tag = 0);

/// Distribute `total_flits` from `src` round-robin over `dsts` in packets of
/// `flits_per_packet` (the MI -> PEs dispatch pattern).
std::vector<PacketDescriptor> scatter_flow(int src, std::span<const int> dsts,
                                           std::uint64_t total_flits,
                                           std::uint32_t flits_per_packet,
                                           std::uint64_t release_cycle = 0,
                                           std::uint32_t tag = 0);

/// Gather `total_flits` from `srcs` (round-robin) into `dst` (the PEs -> MI
/// writeback pattern).
std::vector<PacketDescriptor> gather_flow(std::span<const int> srcs, int dst,
                                          std::uint64_t total_flits,
                                          std::uint32_t flits_per_packet,
                                          std::uint64_t release_cycle = 0,
                                          std::uint32_t tag = 0);

/// The accelerator's canonical layer phase: split `scatter_flits` into equal
/// per-MI shares scattered round-robin over the PEs, then `gather_flits`
/// likewise gathered from the PEs back per MI. One definition shared by the
/// layer simulator and the sweep drivers, and the unit the simulator's
/// phase-compilation cache memoizes on ((scatter, gather) volumes under a
/// fixed config always compile to this exact packet sequence).
std::vector<PacketDescriptor> phase_traffic(const NocConfig& cfg,
                                            units::Flits scatter_flits,
                                            units::Flits gather_flits,
                                            std::uint32_t flits_per_packet,
                                            std::uint32_t tag = 0);

/// phase_traffic over an explicit endpoint set: the accelerator's failover
/// path passes the *surviving* MIs and PEs (dead routers excluded), so a
/// degraded layer compiles to traffic that only touches live endpoints.
std::vector<PacketDescriptor> phase_traffic(const NocConfig& cfg,
                                            std::span<const int> mis,
                                            std::span<const int> pes,
                                            units::Flits scatter_flits,
                                            units::Flits gather_flits,
                                            std::uint32_t flits_per_packet,
                                            std::uint32_t tag = 0);

/// `packets` uniform-random source/destination pairs (src != dst).
std::vector<PacketDescriptor> uniform_random_traffic(
    const NocConfig& cfg, int packets, std::uint32_t flits_per_packet,
    std::uint64_t seed);

/// Total flits described by a set of packets.
units::Flits total_flits(std::span<const PacketDescriptor> ps);

}  // namespace nocw::noc
