// Event counters collected by the cycle engine.
//
// The power model (src/power) turns these event counts into energy via
// back-annotated per-event tables, exactly the structure of the paper's
// flow (circuit-level figures annotated onto the cycle-accurate simulator).
#pragma once

#include <cstdint>

#include "util/stats.hpp"
#include "util/units.hpp"

namespace nocw::noc {

struct NocStats {
  units::Cycles cycles;
  units::Flits flits_injected;
  units::Flits flits_ejected;
  std::uint64_t packets_injected = 0;
  std::uint64_t packets_ejected = 0;
  std::uint64_t router_traversals = 0;  ///< flit crossing a router crossbar
  std::uint64_t link_traversals = 0;    ///< flit crossing an inter-router link
  std::uint64_t buffer_writes = 0;
  std::uint64_t buffer_reads = 0;
  RunningStats packet_latency;  ///< injection to tail ejection, cycles

  // --- fault injection (zero unless a FaultConfig is active) ---
  std::uint64_t payload_bit_flips = 0;    ///< bits corrupted on links
  units::Cycles link_fault_cycles;   ///< (link, cycle) transient outages
  units::Cycles router_stall_cycles; ///< (router, cycle) stalls taken

  // --- CRC protection + retransmission (zero unless protection.crc) ---
  units::Flits crc_flits_injected;   ///< extra CRC flits added to packets
  std::uint64_t crc_flit_events = 0;     ///< flits through CRC gen/check logic
  std::uint64_t crc_failures = 0;        ///< packets failing the eject check
  std::uint64_t packets_delivered = 0;   ///< packets ejected CRC-clean
  std::uint64_t retransmissions = 0;     ///< NACK-triggered re-injections
  std::uint64_t packets_dropped = 0;     ///< retry budget exhausted

  // --- resilience / fault-aware routing (zero unless resilience active) ---
  std::uint64_t route_rebuilds = 0;        ///< RouteTable recomputations
  std::uint64_t links_quarantined = 0;     ///< links marked permanently down
  std::uint64_t routers_quarantined = 0;   ///< routers marked permanently down
  units::Flits flits_flushed;              ///< flits dropped by quarantine flush
  std::uint64_t packets_rerouted = 0;      ///< in-flight packets restarted
  std::uint64_t packets_undeliverable = 0; ///< dropped: no live route to dst
  units::Cycles recovery_cycles;           ///< detection latency spent stalled

  /// Delivered throughput in flits per cycle (typed rate; cross-dimension
  /// division in units.hpp carries the dimensions for us).
  [[nodiscard]] units::FlitsPerCycle throughput() const noexcept {
    return cycles.value() != 0 ? flits_ejected / cycles
                               : units::FlitsPerCycle{};
  }

  /// Restore the default-constructed state. Written as `*this = {}` so the
  /// struct can grow new counters without this silently missing them.
  void reset() { *this = {}; }
};

}  // namespace nocw::noc
