// Event counters collected by the cycle engine.
//
// The power model (src/power) turns these event counts into energy via
// back-annotated per-event tables, exactly the structure of the paper's
// flow (circuit-level figures annotated onto the cycle-accurate simulator).
#pragma once

#include <cstdint>

#include "util/stats.hpp"

namespace nocw::noc {

struct NocStats {
  std::uint64_t cycles = 0;
  std::uint64_t flits_injected = 0;
  std::uint64_t flits_ejected = 0;
  std::uint64_t packets_injected = 0;
  std::uint64_t packets_ejected = 0;
  std::uint64_t router_traversals = 0;  ///< flit crossing a router crossbar
  std::uint64_t link_traversals = 0;    ///< flit crossing an inter-router link
  std::uint64_t buffer_writes = 0;
  std::uint64_t buffer_reads = 0;
  RunningStats packet_latency;  ///< injection to tail ejection, cycles

  /// Delivered throughput in flits per cycle.
  [[nodiscard]] double throughput() const noexcept {
    return cycles ? static_cast<double>(flits_ejected) /
                        static_cast<double>(cycles)
                  : 0.0;
  }

  /// Restore the default-constructed state. Written as `*this = {}` so the
  /// struct can grow new counters without this silently missing them.
  void reset() { *this = {}; }
};

}  // namespace nocw::noc
