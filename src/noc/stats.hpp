// Event counters collected by the cycle engine.
//
// The power model (src/power) turns these event counts into energy via
// back-annotated per-event tables, exactly the structure of the paper's
// flow (circuit-level figures annotated onto the cycle-accurate simulator).
#pragma once

#include <cstdint>

#include "util/stats.hpp"

namespace nocw::noc {

struct NocStats {
  std::uint64_t cycles = 0;
  std::uint64_t flits_injected = 0;
  std::uint64_t flits_ejected = 0;
  std::uint64_t packets_injected = 0;
  std::uint64_t packets_ejected = 0;
  std::uint64_t router_traversals = 0;  ///< flit crossing a router crossbar
  std::uint64_t link_traversals = 0;    ///< flit crossing an inter-router link
  std::uint64_t buffer_writes = 0;
  std::uint64_t buffer_reads = 0;
  RunningStats packet_latency;  ///< injection to tail ejection, cycles

  // --- fault injection (zero unless a FaultConfig is active) ---
  std::uint64_t payload_bit_flips = 0;   ///< bits corrupted on links
  std::uint64_t link_fault_cycles = 0;   ///< (link, cycle) transient outages
  std::uint64_t router_stall_cycles = 0; ///< (router, cycle) stalls taken

  // --- CRC protection + retransmission (zero unless protection.crc) ---
  std::uint64_t crc_flits_injected = 0;  ///< extra CRC flits added to packets
  std::uint64_t crc_flit_events = 0;     ///< flits through CRC gen/check logic
  std::uint64_t crc_failures = 0;        ///< packets failing the eject check
  std::uint64_t packets_delivered = 0;   ///< packets ejected CRC-clean
  std::uint64_t retransmissions = 0;     ///< NACK-triggered re-injections
  std::uint64_t packets_dropped = 0;     ///< retry budget exhausted

  /// Delivered throughput in flits per cycle.
  [[nodiscard]] double throughput() const noexcept {
    return cycles ? static_cast<double>(flits_ejected) /
                        static_cast<double>(cycles)
                  : 0.0;
  }

  /// Restore the default-constructed state. Written as `*this = {}` so the
  /// struct can grow new counters without this silently missing them.
  void reset() { *this = {}; }
};

}  // namespace nocw::noc
