#include "noc/config.hpp"

#include <cstdlib>
#include <string>

#include "util/env.hpp"

namespace nocw::noc {

EngineMode engine_from_env(EngineMode configured) {
  const std::string v = env_string("NOCW_NOC_ENGINE", "");
  if (v == "dense") return EngineMode::Dense;
  if (v == "event") return EngineMode::Event;
  return configured;
}

std::vector<int> NocConfig::memory_interface_nodes() const {
  std::vector<int> out;
  out.reserve(4);
  for (int id = 0; id < node_count(); ++id) {
    if (is_memory_interface(id)) out.push_back(id);
  }
  return out;
}

std::vector<int> NocConfig::pe_nodes() const {
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(node_count()));
  for (int id = 0; id < node_count(); ++id) {
    if (!is_memory_interface(id)) out.push_back(id);
  }
  return out;
}

int NocConfig::hops(int a, int b) const noexcept {
  return std::abs(node_x(a) - node_x(b)) + std::abs(node_y(a) - node_y(b));
}

}  // namespace nocw::noc
