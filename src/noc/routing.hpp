// Route computation for the mesh: DOR plus a fault-aware west-first table.
//
// All next-hop decisions in the repo flow through this module (tools/lint.py
// `[route]` bans dor_next_hop() elsewhere): Router::route() delegates to
// dor_next_hop() when no table is installed, or to a RouteTable built here.
//
// The adaptive mode is the west-first turn model (Glass & Ni): the turns
// N→W and S→W are forbidden, so any westward travel must be a prefix of the
// path. Prohibiting those two turns breaks every cycle in the channel
// dependency graph, which keeps wormhole routing deadlock-free even on the
// non-minimal detours a fault forces. Construction is two-phase per
// destination: (A) reverse BFS from the destination over live links using
// only the travel directions {E, N, S}, assigning each reached node the
// shortest-path port (preferring the XY DOR port on ties, then a fixed
// E/N/S order); (B) every remaining node routes West along a live west
// chain into region A, or is marked unreachable. With zero faults region A
// is exactly {x ≤ dst.x}, the DOR tie-break always wins, and phase B is
// the DOR West column walk — so the table equals XY DOR entry for entry,
// which is what makes no-fault adaptive runs bit-identical to the baseline.
#pragma once

#include <cstdint>
#include <vector>

#include "noc/config.hpp"
#include "noc/flit.hpp"

namespace nocw::noc {

/// Dimension-order next hop for `node` toward `dst` under cfg.routing.
/// The one DOR formula in the tree (lint rule [route]).
[[nodiscard]] int dor_next_hop(const NocConfig& cfg, int node,
                               int dst) noexcept;

/// Which links and routers are currently considered permanently down.
/// Written serially (construction pre-marks, end-of-cycle escalation);
/// read-only during the switch phase.
class HealthMap {
 public:
  HealthMap() = default;
  explicit HealthMap(int node_count)
      : link_down_(static_cast<std::size_t>(node_count) * kNumPorts, 0),
        router_down_(static_cast<std::size_t>(node_count), 0) {}

  /// Mark link (router, out_port) down. Returns false if already down.
  bool mark_link_down(int router, int port);
  /// Mark a router (and implicitly all its links) down. Returns false if
  /// already down.
  bool mark_router_down(int router);

  [[nodiscard]] bool link_up(int router, int port) const noexcept {
    return link_down_[static_cast<std::size_t>(router) * kNumPorts +
                      static_cast<std::size_t>(port)] == 0;
  }
  [[nodiscard]] bool router_up(int router) const noexcept {
    return router_down_[static_cast<std::size_t>(router)] == 0;
  }

  [[nodiscard]] int links_down() const noexcept { return links_down_; }
  [[nodiscard]] int routers_down() const noexcept { return routers_down_; }
  [[nodiscard]] bool any_down() const noexcept {
    return links_down_ > 0 || routers_down_ > 0;
  }

 private:
  std::vector<std::uint8_t> link_down_;    ///< [router * kNumPorts + port]
  std::vector<std::uint8_t> router_down_;  ///< per router
  int links_down_ = 0;
  int routers_down_ = 0;
};

/// Precomputed next-hop table: port for every (node, dst) pair, or
/// kUnreachable when no west-first path over live components exists.
/// rebuild() recomputes the whole table from a HealthMap; between rebuilds
/// lookups are lock-free reads (the network flushes in-flight wormholes
/// before every rebuild, so no flit ever observes a mid-flight change).
class RouteTable {
 public:
  static constexpr int kUnreachable = -1;

  /// Builds the zero-fault table (== XY DOR). Requires cfg.routing == XY
  /// for RouteMode::WestFirst (throws nocw::CheckError otherwise).
  RouteTable(const NocConfig& cfg, RouteMode mode);

  /// Recompute every route around the down links/routers in `health`.
  void rebuild(const HealthMap& health);

  /// Output port for a flit at `node` heading to `dst`, or kUnreachable.
  [[nodiscard]] int next_hop(int node, int dst) const noexcept {
    return table_[static_cast<std::size_t>(node) *
                      static_cast<std::size_t>(n_) +
                  static_cast<std::size_t>(dst)];
  }

  /// True when a packet injected at `src` can reach `dst`.
  [[nodiscard]] bool reachable(int src, int dst) const noexcept {
    return src == dst || next_hop(src, dst) != kUnreachable;
  }

  [[nodiscard]] RouteMode mode() const noexcept { return mode_; }

 private:
  void build_destination(int dst, const HealthMap& health);

  NocConfig cfg_;
  RouteMode mode_;
  int n_ = 0;
  std::vector<std::int8_t> table_;  ///< [node * n_ + dst] → port
  std::vector<int> dist_;           ///< scratch: hops to dst in region A
  std::vector<int> queue_;          ///< scratch: BFS frontier
};

}  // namespace nocw::noc
