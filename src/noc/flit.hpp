// Flit/packet model for the wormhole-switched mesh (paper Sec. IV-A).
//
// Links are 64 bits wide at 1 GHz; a packet is a head flit, body flits and a
// tail flit (single-flit packets use HeadTail). Weights travel two-per-flit
// (two float32 per 64-bit link word); compressed segments travel as
// ⟨m, q, len⟩ records. The flit carries only what the simulator needs:
// routing endpoints, wormhole framing, and its injection cycle for latency
// accounting.
#pragma once

#include <cstdint>

namespace nocw::noc {

enum class FlitType : std::uint8_t { Head, Body, Tail, HeadTail };

struct Flit {
  std::uint32_t packet_id = 0;
  std::uint16_t src = 0;
  std::uint16_t dst = 0;
  FlitType type = FlitType::HeadTail;
  std::uint8_t vc = 0;             ///< virtual channel (fixed per packet)
  std::uint32_t inject_cycle = 0;  ///< cycle the head entered the source queue
  /// Caller-defined label copied from the packet descriptor (the accelerator
  /// stamps the layer ordinal). Diagnostics only — never read by routing,
  /// arbitration, or stats.
  std::uint32_t tag = 0;
  /// 64-bit link word. Only populated when fault injection or CRC protection
  /// is active: data flits carry a deterministic per-flit word, a packet's
  /// CRC flit carries the CRC-32 of the preceding payloads.
  std::uint64_t payload = 0;
};

/// A packet awaiting injection: `size_flits` flits from src to dst, eligible
/// for injection at `release_cycle`.
struct PacketDescriptor {
  std::uint16_t src = 0;
  std::uint16_t dst = 0;
  std::uint32_t size_flits = 1;
  std::uint64_t release_cycle = 0;
  /// Retransmission attempt count; 0 for fresh packets, maintained by the
  /// network's CRC/NACK recovery protocol.
  std::uint16_t attempt = 0;
  /// Caller-defined label carried into every flit of the packet (the
  /// accelerator stamps the layer ordinal). Surfaced by the drain-timeout
  /// diagnostics; otherwise inert.
  std::uint32_t tag = 0;
};

/// Router port indices. Local is the NI (injection/ejection) port.
enum Port : int {
  kLocal = 0,
  kNorth = 1,
  kEast = 2,
  kSouth = 3,
  kWest = 4,
};
inline constexpr int kNumPorts = 5;

/// Opposite direction (the port on the neighbour that receives from `p`).
constexpr int opposite(int p) noexcept {
  switch (p) {
    case kNorth: return kSouth;
    case kSouth: return kNorth;
    case kEast: return kWest;
    case kWest: return kEast;
    default: return kLocal;
  }
}

}  // namespace nocw::noc
