// Input-buffered wormhole router with dimension-order routing and virtual
// channels.
//
// Five physical ports (Local/N/E/S/W), `virtual_channels` FIFOs per input
// port. A packet's VC is fixed at injection and identical at every hop (its
// path is deterministic, so per-VC FIFO order is preserved end to end). The
// wormhole lock is held per (output port, VC): once a Head flit of VC v
// claims an output, only that packet may send VC-v flits there until its
// Tail passes — but packets on *other* VCs interleave freely on the same
// physical link, which is the blocking-avoidance VCs exist for. Switch
// allocation grants at most one flit per output per cycle, round-robin over
// the flattened (input port, VC) request set. Flow control is
// credit-equivalent per (port, VC) buffer. With virtual_channels = 1 this
// degenerates exactly to the classic single-lane wormhole router.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "noc/config.hpp"
#include "noc/flit.hpp"
#include "util/ring_buffer.hpp"

namespace nocw::noc {

class Router {
 public:
  Router(int id, const NocConfig& cfg);

  [[nodiscard]] int id() const noexcept { return id_; }
  [[nodiscard]] int vcs() const noexcept { return vcs_; }

  /// FIFO of (physical port, virtual channel).
  [[nodiscard]] RingBuffer<Flit>& input_vc(int port, int vc) {
    return buffers_[flat(port, vc)];
  }
  [[nodiscard]] const RingBuffer<Flit>& input_vc(int port, int vc) const {
    return buffers_[flat(port, vc)];
  }

  /// VC 0 of a port — the whole port when virtual_channels = 1.
  [[nodiscard]] RingBuffer<Flit>& input(int port) {
    return input_vc(port, 0);
  }
  [[nodiscard]] const RingBuffer<Flit>& input(int port) const {
    return input_vc(port, 0);
  }

  /// Dimension-order route computation: output port for destination `dst`.
  [[nodiscard]] int route(int dst) const noexcept;

  /// Switch allocation for one output port: choose a flattened
  /// (input port, VC) index whose head flit may traverse to `out_port`
  /// this cycle, honouring the per-(output, VC) wormhole locks with
  /// round-robin priority. `can_accept` lets the caller veto candidates
  /// whose downstream (port, VC) buffer is full, so a back-pressured VC
  /// does not stall the whole output while another VC could use it. With
  /// virtual_channels = 1 the returned index equals the input port number.
  [[nodiscard]] std::optional<int> allocate(
      int out_port,
      const std::function<bool(const Flit&)>& can_accept = {}) const;

  /// Commit a grant: pop the head flit of the flattened input index and
  /// update the wormhole lock of (out_port, flit.vc).
  Flit grant(int in_flat, int out_port);

  /// True when every input FIFO is empty.
  [[nodiscard]] bool idle() const noexcept;

  /// Validate structural invariants: per-VC occupancy within capacity
  /// (equivalently, credit counts in [0, buffer_depth]), wormhole lock
  /// owners and round-robin pointers in range. Throws nocw::CheckError on
  /// violation. Called from Network::check_invariants() at cycle-batch
  /// boundaries and from tests.
  void check_invariants() const;

  [[nodiscard]] std::size_t buffered_flits() const noexcept;

  [[nodiscard]] std::size_t flat(int port, int vc) const noexcept {
    return static_cast<std::size_t>(port) * static_cast<std::size_t>(vcs_) +
           static_cast<std::size_t>(vc);
  }

 private:
  int id_;
  int x_, y_;
  int vcs_;
  const NocConfig* cfg_;
  std::vector<RingBuffer<Flit>> buffers_;  ///< kNumPorts x vcs_
  /// Wormhole owner per (output port, VC): flattened input index or -1.
  std::vector<int> lock_;  ///< kNumPorts x vcs_
  /// Round-robin pointer per output port over flattened input indices.
  std::vector<int> rr_;  ///< kNumPorts
};

}  // namespace nocw::noc
