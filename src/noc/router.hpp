// Input-buffered wormhole router with dimension-order routing and virtual
// channels.
//
// Five physical ports (Local/N/E/S/W), `virtual_channels` FIFOs per input
// port. A packet's VC is fixed at injection and identical at every hop (its
// path is deterministic, so per-VC FIFO order is preserved end to end). The
// wormhole lock is held per (output port, VC): once a Head flit of VC v
// claims an output, only that packet may send VC-v flits there until its
// Tail passes — but packets on *other* VCs interleave freely on the same
// physical link, which is the blocking-avoidance VCs exist for. Switch
// allocation grants at most one flit per output per cycle, round-robin over
// the flattened (input port, VC) request set. Flow control is
// credit-equivalent per (port, VC) buffer. With virtual_channels = 1 this
// degenerates exactly to the classic single-lane wormhole router.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "noc/config.hpp"
#include "noc/flit.hpp"
#include "util/check.hpp"
#include "util/ring_buffer.hpp"

namespace nocw::noc {

class RouteTable;

class Router {
 public:
  Router(int id, const NocConfig& cfg);

  [[nodiscard]] int id() const noexcept { return id_; }
  [[nodiscard]] int vcs() const noexcept { return vcs_; }

  /// FIFO of (physical port, virtual channel).
  [[nodiscard]] RingBuffer<Flit>& input_vc(int port, int vc) {
    return buffers_[flat(port, vc)];
  }
  [[nodiscard]] const RingBuffer<Flit>& input_vc(int port, int vc) const {
    return buffers_[flat(port, vc)];
  }

  /// VC 0 of a port — the whole port when virtual_channels = 1.
  [[nodiscard]] RingBuffer<Flit>& input(int port) {
    return input_vc(port, 0);
  }
  [[nodiscard]] const RingBuffer<Flit>& input(int port) const {
    return input_vc(port, 0);
  }

  /// FIFO by flattened (port, VC) index — the index space allocate_with
  /// scans and grant() consumes. Used by the network's switch fast path.
  [[nodiscard]] RingBuffer<Flit>& input_flat(int slot) {
    return buffers_[static_cast<std::size_t>(slot)];
  }
  [[nodiscard]] const RingBuffer<Flit>& input_flat(int slot) const {
    return buffers_[static_cast<std::size_t>(slot)];
  }

  /// Round-robin priority pointer of an output port: the flattened input
  /// index the next allocation scan starts from.
  [[nodiscard]] int rr_pointer(int out_port) const noexcept {
    return rr_[static_cast<std::size_t>(out_port)];
  }

  /// Wormhole lock owner of (output port, VC): the flattened input index
  /// holding the lock, or -1 when the lane is free.
  [[nodiscard]] int lock_owner(int out_port, int vc) const noexcept {
    return lock_[flat(out_port, vc)];
  }

  /// Output port for destination `dst`: the installed RouteTable's entry
  /// when fault-aware routing is active, else dimension-order (noc/routing's
  /// dor_next_hop). An unreachable table entry falls back to kLocal — the
  /// network drops undeliverable packets before injection and flushes
  /// in-flight flits before any rebuild, so that branch never carries
  /// traffic.
  [[nodiscard]] int route(int dst) const noexcept;

  /// Install (or clear, with nullptr) a route table owned by the network.
  void set_route_table(const RouteTable* table) noexcept { table_ = table; }

  /// Drop every buffered flit and release all wormhole locks (quarantine
  /// flush: in-flight wormholes are restarted from their sources after a
  /// route rebuild). Returns the number of flits removed. Round-robin
  /// pointers keep their values — any in-range start is valid.
  std::size_t flush_buffers();

  /// Switch allocation for one output port: choose a flattened
  /// (input port, VC) index whose head flit may traverse to `out_port`
  /// this cycle, honouring the per-(output, VC) wormhole locks with
  /// round-robin priority. `can_accept` lets the caller veto candidates
  /// whose downstream (port, VC) buffer is full, so a back-pressured VC
  /// does not stall the whole output while another VC could use it. With
  /// virtual_channels = 1 the returned index equals the input port number.
  ///
  /// Statically dispatched on the predicate type: the network's switch
  /// core runs this once per output per router per cycle, so the predicate
  /// call must inline rather than go through std::function.
  template <typename Pred>
  [[nodiscard]] std::optional<int> allocate_with(int out_port,
                                                 Pred&& can_accept) const {
    const int total = kNumPorts * vcs_;
    const int start = rr_[static_cast<std::size_t>(out_port)];
    for (int k = 0; k < total; ++k) {
      const int in_flat = (start + k) % total;
      const auto& buf = buffers_[static_cast<std::size_t>(in_flat)];
      if (buf.empty()) continue;
      const Flit& f = buf.front();
      if (route(f.dst) != out_port) continue;
      const int owner = lock_[flat(out_port, static_cast<int>(f.vc))];
      const bool is_head =
          f.type == FlitType::Head || f.type == FlitType::HeadTail;
      if (!(is_head ? (owner == -1) : (owner == in_flat))) continue;
      if (!can_accept(f)) continue;
      return in_flat;
    }
    return std::nullopt;
  }

  /// Type-erased convenience overload (tests, cold paths). An empty
  /// function accepts every candidate.
  [[nodiscard]] std::optional<int> allocate(
      int out_port,
      const std::function<bool(const Flit&)>& can_accept = {}) const;

  /// Commit a grant: pop the head flit of the flattened input index and
  /// update the wormhole lock of (out_port, flit.vc). Header-inline: the
  /// switch core calls this for every traversal of every cycle.
  Flit grant(int in_flat, int out_port) {
    auto& buf = buffers_[static_cast<std::size_t>(in_flat)];
    NOCW_CHECK(!buf.empty());
    const Flit f = buf.pop();
    int& lock = lock_[flat(out_port, static_cast<int>(f.vc))];
    switch (f.type) {
      case FlitType::Head:
        lock = in_flat;
        break;
      case FlitType::Tail:
      case FlitType::HeadTail:
        lock = -1;
        break;
      case FlitType::Body:
        break;
    }
    // Rotate priority past the winner on every grant so concurrent packets
    // on different VCs share the physical link fairly (flit-level
    // interleaving).
    rr_[static_cast<std::size_t>(out_port)] =
        (in_flat + 1) % (kNumPorts * vcs_);
    return f;
  }

  /// True when every input FIFO is empty.
  [[nodiscard]] bool idle() const noexcept;

  /// Validate structural invariants: per-VC occupancy within capacity
  /// (equivalently, credit counts in [0, buffer_depth]), wormhole lock
  /// owners and round-robin pointers in range. Throws nocw::CheckError on
  /// violation. Called from Network::check_invariants() at cycle-batch
  /// boundaries and from tests.
  void check_invariants() const;

  [[nodiscard]] std::size_t buffered_flits() const noexcept;

  [[nodiscard]] std::size_t flat(int port, int vc) const noexcept {
    return static_cast<std::size_t>(port) * static_cast<std::size_t>(vcs_) +
           static_cast<std::size_t>(vc);
  }

 private:
  int id_;
  int vcs_;
  const NocConfig* cfg_;
  const RouteTable* table_ = nullptr;  ///< owned by the network; may be null
  std::vector<RingBuffer<Flit>> buffers_;  ///< kNumPorts x vcs_
  /// Wormhole owner per (output port, VC): flattened input index or -1.
  std::vector<int> lock_;  ///< kNumPorts x vcs_
  /// Round-robin pointer per output port over flattened input indices.
  std::vector<int> rr_;  ///< kNumPorts
};

}  // namespace nocw::noc
