// Cycle-level model of the per-PE decompression unit (paper Fig. 6).
//
// Datapath: a register holding the running reconstruction w̃, an adder, and a
// down-counter over |M_i|. Control: a two-state FSM — in *Init* the unit
// latches w̃_1 = q_i; in *Run* it emits w̃_j = w̃_{j-1} + m_i each cycle. One
// approximated weight is produced per clock, so decompression never stalls
// the MAC datapath it feeds. This model is bit-equivalent to core::decompress
// (verified by tests) and is what the accelerator simulator instantiates in
// every PE.
#pragma once

#include <cstdint>
#include <optional>

#include "core/codec.hpp"
#include "obs/trace.hpp"

namespace nocw::core {

class DecompressorUnit {
 public:
  enum class State : std::uint8_t { Idle, Init, Run };

  /// Latch a compressed segment ⟨m, q, |M|⟩. Only legal when idle.
  void load(const CompressedSegment& segment);

  /// Advance one clock. Returns the weight emitted this cycle, or nullopt
  /// when the unit is idle.
  std::optional<float> tick();

  [[nodiscard]] State state() const noexcept { return state_; }
  [[nodiscard]] bool busy() const noexcept { return state_ != State::Idle; }
  /// Weights still to emit (including the one of the current cycle).
  [[nodiscard]] std::uint32_t remaining() const noexcept { return remaining_; }
  /// Total clock cycles consumed since construction/reset.
  [[nodiscard]] std::uint64_t cycles() const noexcept { return cycles_; }
  /// Total weights emitted since construction/reset.
  [[nodiscard]] std::uint64_t emitted() const noexcept { return emitted_; }

  void reset() noexcept { *this = DecompressorUnit{}; }

 private:
  State state_ = State::Idle;
  float m_ = 0.0F;
  float accum_ = 0.0F;
  std::uint32_t remaining_ = 0;
  std::uint64_t cycles_ = 0;
  std::uint64_t emitted_ = 0;
  std::uint64_t run_start_ = 0;  ///< cycle the current Run phase entered
  /// Tracer gate cached at construction (one branch per FSM transition).
  bool trace_ = NOCW_TRACE_ON(obs::kCatDecomp);
};

}  // namespace nocw::core
