// Least-squares line fit for a monotonic sub-succession (paper Sec. III-B).
//
// For a segment M_i = {w_f, w_{f+1}, ..., w_l} the fit is over the points
// (j, w_{f+j}), j = 0..|M_i|-1, yielding the slope/intercept pair ⟨m_i, q_i⟩
// that minimizes the mean squared error. Because x is always the ramp
// 0,1,...,L-1, the normal-equation sums over x are closed-form, so the fit is
// one pass over the segment values and O(1) space.
#pragma once

#include <cstddef>
#include <span>

namespace nocw::core {

/// Fitted line w̃(j) = m*j + q plus the fit's residual sum of squares.
struct LineFit {
  double m = 0.0;    ///< slope
  double q = 0.0;    ///< intercept (= first reconstructed value)
  double sse = 0.0;  ///< residual sum of squared errors over the segment
};

/// Streaming accumulator: feed segment values in order, then fit().
/// Used by the codec so arbitrarily long layers compress in one pass.
class LineFitAccumulator {
 public:
  void reset() noexcept { *this = LineFitAccumulator{}; }

  void add(double y) noexcept {
    const double x = static_cast<double>(n_);
    sy_ += y;
    sxy_ += x * y;
    syy_ += y * y;
    ++n_;
  }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }

  /// Closed-form OLS solution. For a single point the line is the point
  /// itself (m = 0, q = y, sse = 0).
  [[nodiscard]] LineFit fit() const noexcept;

 private:
  std::size_t n_ = 0;
  double sy_ = 0.0;
  double sxy_ = 0.0;
  double syy_ = 0.0;
};

/// Convenience one-shot fit over a contiguous segment.
LineFit fit_line(std::span<const float> values);

}  // namespace nocw::core
