#include "core/linefit.hpp"

#include <algorithm>

namespace nocw::core {

LineFit LineFitAccumulator::fit() const noexcept {
  LineFit out;
  if (n_ == 0) return out;
  const auto n = static_cast<double>(n_);
  if (n_ == 1) {
    out.q = sy_;
    return out;
  }
  // x is the ramp 0..n-1, so its sums are closed-form.
  const double sx = n * (n - 1.0) / 2.0;
  const double sxx = (n - 1.0) * n * (2.0 * n - 1.0) / 6.0;
  const double sxx_c = sxx - sx * sx / n;   // centered Σ(x-x̄)²
  const double sxy_c = sxy_ - sx * sy_ / n; // centered Σ(x-x̄)(y-ȳ)
  const double syy_c = syy_ - sy_ * sy_ / n;
  out.m = sxy_c / sxx_c;
  out.q = (sy_ - out.m * sx) / n;
  // Residual SS of the OLS fit; clamp tiny negative values from cancellation.
  out.sse = std::max(0.0, syy_c - out.m * sxy_c);
  return out;
}

LineFit fit_line(std::span<const float> values) {
  LineFitAccumulator acc;
  for (float v : values) acc.add(static_cast<double>(v));
  return acc.fit();
}

}  // namespace nocw::core
