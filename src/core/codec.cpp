#include "core/codec.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "core/linefit.hpp"
#include "util/bitio.hpp"
#include "util/stats.hpp"

namespace nocw::core {

namespace {

constexpr std::uint64_t kMagic = 0xC17E;  // "compressed-tensor"
// v2 adds the flags byte (bit 0 = per-segment CRC-8) after the version.
constexpr std::uint64_t kVersion = 2;
constexpr std::uint64_t kFlagSegmentChecksum = 0x1;

unsigned clamp_coef_bits(unsigned bits) {
  if (bits < 9) return 9;    // sign + 8 exponent bits is the usable minimum
  if (bits > 32) return 32;
  return bits;
}

std::size_t max_segment_length(unsigned length_bits) {
  // The field stores |M_i| - 1, so length_bits bits encode up to 2^bits.
  if (length_bits >= 24) return std::size_t{1} << 24;  // sanity cap
  return std::size_t{1} << length_bits;
}

/// CRC-8 (poly 0x07) folded over the low `bytes` bytes of `value`,
/// little-endian — covers exactly the field values as stored, so any bit
/// flip inside a serialized record changes the checksum.
std::uint8_t crc8_update(std::uint8_t crc, std::uint64_t value,
                         unsigned bytes) {
  for (unsigned i = 0; i < bytes; ++i) {
    crc ^= static_cast<std::uint8_t>(value >> (8 * i));
    for (int b = 0; b < 8; ++b) {
      crc = static_cast<std::uint8_t>((crc << 1) ^ ((crc & 0x80U) ? 0x07 : 0));
    }
  }
  return crc;
}

std::uint8_t segment_crc8(std::uint64_t raw_m, std::uint64_t raw_q,
                          std::uint64_t len_field) {
  std::uint8_t crc = 0xFF;
  crc = crc8_update(crc, raw_m, 4);
  crc = crc8_update(crc, raw_q, 4);
  crc = crc8_update(crc, len_field, 4);
  return crc;
}

[[noreturn]] void fail(const std::string& what, std::size_t bit_offset) {
  throw DecodeError(what + " (bit " + std::to_string(bit_offset) + ", byte " +
                        std::to_string(bit_offset / 8) + ")",
                    bit_offset);
}

}  // namespace

float quantize_coefficient(double value, unsigned bits) noexcept {
  const auto f = static_cast<float>(value);
  bits = clamp_coef_bits(bits);
  if (bits == 32) return f;
  std::uint32_t raw;
  std::memcpy(&raw, &f, sizeof(raw));
  const unsigned drop = 32 - bits;
  // Round to nearest on the dropped bits; a carry that ripples into the
  // exponent is the correct IEEE rounding behaviour.
  raw += (1u << (drop - 1));
  raw &= ~((1u << drop) - 1u);
  float out;
  std::memcpy(&out, &raw, sizeof(out));
  return out;
}

CompressedLayer compress(std::span<const float> weights,
                         const CodecConfig& cfg) {
  CompressedLayer layer;
  layer.config = cfg;
  layer.config.coef_bits = clamp_coef_bits(cfg.coef_bits);
  layer.original_count = weights.size();
  layer.delta_abs = delta_from_percent(cfg.delta_percent, weights);
  if (weights.empty()) return layer;

  SegmenterConfig scfg;
  scfg.delta = layer.delta_abs;
  scfg.max_length = max_segment_length(cfg.length_bits);

  StreamSegmenter seg(scfg);
  LineFitAccumulator acc;
  auto emit = [&]() {
    const LineFit fit = acc.fit();
    CompressedSegment s;
    s.m = quantize_coefficient(fit.m, layer.config.coef_bits);
    s.q = quantize_coefficient(fit.q, layer.config.coef_bits);
    s.length = static_cast<std::uint32_t>(acc.count());
    layer.segments.push_back(s);
    acc.reset();
  };
  for (float w : weights) {
    if (seg.push(w) != 0) emit();
    acc.add(static_cast<double>(w));
  }
  if (seg.finish() != 0) emit();

  // Replay Eq. (2) in float — exactly what the hardware decompressor will
  // produce, including accumulation drift — to record the true SSE.
  double sse = 0.0;
  std::size_t idx = 0;
  for (const auto& s : layer.segments) {
    float w = s.q;
    for (std::uint32_t j = 0; j < s.length; ++j) {
      const double err = static_cast<double>(weights[idx + j]) -
                         static_cast<double>(w);
      sse += err * err;
      w += s.m;
    }
    idx += s.length;
  }
  layer.sse = sse;
  return layer;
}

void decompress(const CompressedLayer& layer, std::span<float> out) {
  if (out.size() != layer.original_count) {
    throw std::invalid_argument("decompress: output size mismatch");
  }
  std::size_t idx = 0;
  for (std::size_t i = 0; i < layer.segments.size(); ++i) {
    const CompressedSegment& s = layer.segments[i];
    // Validate before writing: a corrupted length field must degrade to a
    // descriptive error, never an out-of-bounds store; a non-finite
    // coefficient would poison every weight downstream of the segment.
    if (s.length > out.size() - idx) {
      throw DecodeError("decompress: segment " + std::to_string(i) +
                        " length " + std::to_string(s.length) +
                        " overruns declared output size " +
                        std::to_string(out.size()) + " at weight " +
                        std::to_string(idx));
    }
    if (!std::isfinite(s.m) || !std::isfinite(s.q)) {
      throw DecodeError("decompress: segment " + std::to_string(i) +
                        " has non-finite coefficients");
    }
    // Init state of the Fig. 6 FSM: w̃_1 = q; Run state: w̃_j = w̃_{j-1} + m.
    float w = s.q;
    for (std::uint32_t j = 0; j < s.length; ++j) {
      out[idx++] = w;
      w += s.m;
    }
  }
  if (idx != layer.original_count) {
    throw DecodeError("decompress: segment lengths tile " +
                      std::to_string(idx) + " weights, layer declares " +
                      std::to_string(layer.original_count));
  }
}

std::vector<float> decompress(const CompressedLayer& layer) {
  std::vector<float> out(layer.original_count);
  decompress(layer, out);
  return out;
}

std::size_t CompressedLayer::compressed_bits() const noexcept {
  return segments.size() *
         (2 * static_cast<std::size_t>(config.coef_bits) + config.length_bits +
          (config.segment_checksum ? 8 : 0));
}

std::size_t CompressedLayer::original_bits() const noexcept {
  return original_count * static_cast<std::size_t>(config.weight_bits);
}

double CompressedLayer::compression_ratio() const noexcept {
  const std::size_t cb = compressed_bits();
  if (cb == 0) return 1.0;
  return static_cast<double>(original_bits()) / static_cast<double>(cb);
}

double CompressedLayer::mse() const noexcept {
  return original_count ? sse / static_cast<double>(original_count) : 0.0;
}

double CompressedLayer::mean_segment_length() const noexcept {
  if (segments.empty()) return 0.0;
  return static_cast<double>(original_count) /
         static_cast<double>(segments.size());
}

std::vector<std::uint8_t> serialize(const CompressedLayer& layer) {
  BitWriter w;
  w.write(kMagic, 16);
  w.write(kVersion, 8);
  w.write(layer.config.segment_checksum ? kFlagSegmentChecksum : 0, 8);
  w.write(layer.config.coef_bits, 6);
  w.write(layer.config.length_bits, 6);
  w.write(layer.config.weight_bits, 6);
  w.write(layer.original_count, 48);
  w.write(layer.segments.size(), 48);
  w.write_float(static_cast<float>(layer.delta_abs));
  const unsigned coef_bits = layer.config.coef_bits;
  const unsigned len_bits = layer.config.length_bits;
  for (const auto& s : layer.segments) {
    std::uint32_t raw_m = 0;
    std::uint32_t raw_q = 0;
    std::memcpy(&raw_m, &s.m, sizeof(raw_m));
    std::memcpy(&raw_q, &s.q, sizeof(raw_q));
    const std::uint64_t m_field = raw_m >> (32 - coef_bits);
    const std::uint64_t q_field = raw_q >> (32 - coef_bits);
    w.write(m_field, coef_bits);
    w.write(q_field, coef_bits);
    if (s.length == 0 || s.length > (std::uint64_t{1} << len_bits)) {
      throw std::runtime_error("serialize: segment length out of field range");
    }
    const std::uint64_t len_field = s.length - 1;
    w.write(len_field, len_bits);
    if (layer.config.segment_checksum) {
      w.write(segment_crc8(m_field, q_field, len_field), 8);
    }
  }
  return w.bytes();
}

namespace {

struct StreamHeader {
  CompressedLayer layer;       // config/counts/delta filled, segments empty
  std::uint64_t n_segments = 0;
  bool checksum = false;
};

/// Parse and validate the fixed-size header. Shared by the strict and the
/// tolerant path — header corruption is fatal for both.
StreamHeader parse_header(BitReader& r, std::size_t total_bits) {
  constexpr std::size_t kHeaderBits = 16 + 8 + 8 + 3 * 6 + 2 * 48 + 32;
  if (total_bits < kHeaderBits) {
    fail("deserialize: stream truncated inside header: " +
             std::to_string(total_bits) + " bits, header needs " +
             std::to_string(kHeaderBits),
         total_bits);
  }
  if (r.read(16) != kMagic) fail("deserialize: bad magic", 0);
  const std::uint64_t version = r.read(8);
  if (version != kVersion) {
    fail("deserialize: unsupported version " + std::to_string(version) +
             " (expected " + std::to_string(kVersion) + ")",
         16);
  }
  const std::uint64_t flags = r.read(8);
  if ((flags & ~kFlagSegmentChecksum) != 0) {
    fail("deserialize: unknown flags " + std::to_string(flags), 24);
  }
  StreamHeader h;
  h.checksum = (flags & kFlagSegmentChecksum) != 0;
  h.layer.config.segment_checksum = h.checksum;
  h.layer.config.coef_bits = static_cast<unsigned>(r.read(6));
  h.layer.config.length_bits = static_cast<unsigned>(r.read(6));
  h.layer.config.weight_bits = static_cast<unsigned>(r.read(6));
  if (clamp_coef_bits(h.layer.config.coef_bits) != h.layer.config.coef_bits) {
    fail("deserialize: corrupt coef_bits field " +
             std::to_string(h.layer.config.coef_bits),
         32);
  }
  if (h.layer.config.length_bits == 0 || h.layer.config.length_bits > 48) {
    fail("deserialize: corrupt length_bits field " +
             std::to_string(h.layer.config.length_bits),
         38);
  }
  if (h.layer.config.weight_bits == 0) {
    fail("deserialize: corrupt weight_bits field", 44);
  }
  h.layer.original_count = r.read(48);
  h.n_segments = r.read(48);
  h.layer.delta_abs = static_cast<double>(r.read_float());
  return h;
}

std::size_t segment_record_bits(const StreamHeader& h) {
  return 2 * static_cast<std::size_t>(h.layer.config.coef_bits) +
         h.layer.config.length_bits + (h.checksum ? 8 : 0);
}

struct RawSegment {
  CompressedSegment seg;
  bool crc_ok = true;
};

RawSegment read_segment(BitReader& r, const StreamHeader& h) {
  const unsigned coef_bits = h.layer.config.coef_bits;
  RawSegment out;
  const std::uint64_t m_field = r.read(coef_bits);
  const std::uint64_t q_field = r.read(coef_bits);
  const std::uint64_t len_field = r.read(h.layer.config.length_bits);
  const auto raw_m = static_cast<std::uint32_t>(m_field << (32 - coef_bits));
  const auto raw_q = static_cast<std::uint32_t>(q_field << (32 - coef_bits));
  std::memcpy(&out.seg.m, &raw_m, sizeof(out.seg.m));
  std::memcpy(&out.seg.q, &raw_q, sizeof(out.seg.q));
  out.seg.length = static_cast<std::uint32_t>(len_field) + 1;
  if (h.checksum) {
    const auto stored = static_cast<std::uint8_t>(r.read(8));
    out.crc_ok = stored == segment_crc8(m_field, q_field, len_field);
  }
  return out;
}

}  // namespace

CompressedLayer deserialize(std::span<const std::uint8_t> bytes) {
  BitReader r(bytes);
  StreamHeader h = parse_header(r, bytes.size() * 8);
  const std::size_t record_bits = segment_record_bits(h);
  if (h.n_segments * record_bits > r.bits_left()) {
    fail("deserialize: stream truncated: " + std::to_string(h.n_segments) +
             " segments need " + std::to_string(h.n_segments * record_bits) +
             " bits, " + std::to_string(r.bits_left()) + " left",
         r.bit_pos());
  }
  CompressedLayer layer = std::move(h.layer);
  layer.segments.reserve(h.n_segments);
  std::uint64_t total = 0;
  for (std::uint64_t i = 0; i < h.n_segments; ++i) {
    const std::size_t seg_start = r.bit_pos();
    const RawSegment raw = read_segment(r, h);
    if (!raw.crc_ok) {
      fail("deserialize: segment " + std::to_string(i) + " failed CRC-8",
           seg_start);
    }
    if (!std::isfinite(raw.seg.m) || !std::isfinite(raw.seg.q)) {
      fail("deserialize: segment " + std::to_string(i) +
               " has non-finite coefficients",
           seg_start);
    }
    total += raw.seg.length;
    layer.segments.push_back(raw.seg);
  }
  if (total != layer.original_count) {
    fail("deserialize: segment lengths tile " + std::to_string(total) +
             " weights, header declares " +
             std::to_string(layer.original_count),
         r.bit_pos());
  }
  return layer;
}

CompressedLayer deserialize_tolerant(std::span<const std::uint8_t> bytes,
                                     DecodeDiagnostics* diag) {
  DecodeDiagnostics local;
  DecodeDiagnostics& d = diag ? *diag : local;
  d = {};

  BitReader r(bytes);
  StreamHeader h = parse_header(r, bytes.size() * 8);  // header stays fatal
  d.segments_total = h.n_segments;
  const std::size_t record_bits = segment_record_bits(h);

  CompressedLayer layer = std::move(h.layer);
  layer.segments.reserve(h.n_segments);
  std::uint64_t total = 0;
  for (std::uint64_t i = 0; i < h.n_segments; ++i) {
    if (r.bits_left() < record_bits) {
      d.truncated = true;
      break;
    }
    RawSegment raw = read_segment(r, h);
    bool bad = !raw.crc_ok || !std::isfinite(raw.seg.m) ||
               !std::isfinite(raw.seg.q);
    if (raw.seg.length > layer.original_count - total) {
      // Corrupted length field: clamp so the layer still tiles.
      raw.seg.length =
          static_cast<std::uint32_t>(layer.original_count - total);
      bad = true;
    }
    if (bad) {
      // Keep the (clamped) length — it still consumes its slot of the
      // weight stream — but reconstruct zeros: the fault-sweep's model of a
      // detected, unrecoverable segment.
      raw.seg.m = 0.0F;
      raw.seg.q = 0.0F;
      ++d.segments_corrupted;
    }
    if (raw.seg.length == 0) continue;  // fully clamped away
    total += raw.seg.length;
    layer.segments.push_back(raw.seg);
  }
  // Pad truncation (or under-tiling) with zero segments so the result always
  // reconstructs original_count weights.
  while (total < layer.original_count) {
    CompressedSegment pad;
    pad.length = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(layer.original_count - total,
                                std::uint64_t{1} << 24));
    total += pad.length;
    layer.segments.push_back(pad);
    ++d.segments_missing;
  }
  return layer;
}

}  // namespace nocw::core
