#include "core/codec.hpp"

#include <cstring>
#include <stdexcept>

#include "core/linefit.hpp"
#include "util/bitio.hpp"
#include "util/stats.hpp"

namespace nocw::core {

namespace {

constexpr std::uint64_t kMagic = 0xC17E;  // "compressed-tensor"
constexpr std::uint64_t kVersion = 1;

unsigned clamp_coef_bits(unsigned bits) {
  if (bits < 9) return 9;    // sign + 8 exponent bits is the usable minimum
  if (bits > 32) return 32;
  return bits;
}

std::size_t max_segment_length(unsigned length_bits) {
  // The field stores |M_i| - 1, so length_bits bits encode up to 2^bits.
  if (length_bits >= 24) return std::size_t{1} << 24;  // sanity cap
  return std::size_t{1} << length_bits;
}

}  // namespace

float quantize_coefficient(double value, unsigned bits) noexcept {
  const auto f = static_cast<float>(value);
  bits = clamp_coef_bits(bits);
  if (bits == 32) return f;
  std::uint32_t raw;
  std::memcpy(&raw, &f, sizeof(raw));
  const unsigned drop = 32 - bits;
  // Round to nearest on the dropped bits; a carry that ripples into the
  // exponent is the correct IEEE rounding behaviour.
  raw += (1u << (drop - 1));
  raw &= ~((1u << drop) - 1u);
  float out;
  std::memcpy(&out, &raw, sizeof(out));
  return out;
}

CompressedLayer compress(std::span<const float> weights,
                         const CodecConfig& cfg) {
  CompressedLayer layer;
  layer.config = cfg;
  layer.config.coef_bits = clamp_coef_bits(cfg.coef_bits);
  layer.original_count = weights.size();
  layer.delta_abs = delta_from_percent(cfg.delta_percent, weights);
  if (weights.empty()) return layer;

  SegmenterConfig scfg;
  scfg.delta = layer.delta_abs;
  scfg.max_length = max_segment_length(cfg.length_bits);

  StreamSegmenter seg(scfg);
  LineFitAccumulator acc;
  auto emit = [&]() {
    const LineFit fit = acc.fit();
    CompressedSegment s;
    s.m = quantize_coefficient(fit.m, layer.config.coef_bits);
    s.q = quantize_coefficient(fit.q, layer.config.coef_bits);
    s.length = static_cast<std::uint32_t>(acc.count());
    layer.segments.push_back(s);
    acc.reset();
  };
  for (float w : weights) {
    if (seg.push(w) != 0) emit();
    acc.add(static_cast<double>(w));
  }
  if (seg.finish() != 0) emit();

  // Replay Eq. (2) in float — exactly what the hardware decompressor will
  // produce, including accumulation drift — to record the true SSE.
  double sse = 0.0;
  std::size_t idx = 0;
  for (const auto& s : layer.segments) {
    float w = s.q;
    for (std::uint32_t j = 0; j < s.length; ++j) {
      const double err = static_cast<double>(weights[idx + j]) -
                         static_cast<double>(w);
      sse += err * err;
      w += s.m;
    }
    idx += s.length;
  }
  layer.sse = sse;
  return layer;
}

void decompress(const CompressedLayer& layer, std::span<float> out) {
  if (out.size() != layer.original_count) {
    throw std::invalid_argument("decompress: output size mismatch");
  }
  std::size_t idx = 0;
  for (const auto& s : layer.segments) {
    // Init state of the Fig. 6 FSM: w̃_1 = q; Run state: w̃_j = w̃_{j-1} + m.
    float w = s.q;
    for (std::uint32_t j = 0; j < s.length; ++j) {
      out[idx++] = w;
      w += s.m;
    }
  }
  if (idx != layer.original_count) {
    throw std::runtime_error("decompress: segment lengths do not tile layer");
  }
}

std::vector<float> decompress(const CompressedLayer& layer) {
  std::vector<float> out(layer.original_count);
  decompress(layer, out);
  return out;
}

std::size_t CompressedLayer::compressed_bits() const noexcept {
  return segments.size() *
         (2 * static_cast<std::size_t>(config.coef_bits) + config.length_bits);
}

std::size_t CompressedLayer::original_bits() const noexcept {
  return original_count * static_cast<std::size_t>(config.weight_bits);
}

double CompressedLayer::compression_ratio() const noexcept {
  const std::size_t cb = compressed_bits();
  if (cb == 0) return 1.0;
  return static_cast<double>(original_bits()) / static_cast<double>(cb);
}

double CompressedLayer::mse() const noexcept {
  return original_count ? sse / static_cast<double>(original_count) : 0.0;
}

double CompressedLayer::mean_segment_length() const noexcept {
  if (segments.empty()) return 0.0;
  return static_cast<double>(original_count) /
         static_cast<double>(segments.size());
}

std::vector<std::uint8_t> serialize(const CompressedLayer& layer) {
  BitWriter w;
  w.write(kMagic, 16);
  w.write(kVersion, 8);
  w.write(layer.config.coef_bits, 6);
  w.write(layer.config.length_bits, 6);
  w.write(layer.config.weight_bits, 6);
  w.write(layer.original_count, 48);
  w.write(layer.segments.size(), 48);
  w.write_float(static_cast<float>(layer.delta_abs));
  const unsigned coef_bits = layer.config.coef_bits;
  const unsigned len_bits = layer.config.length_bits;
  for (const auto& s : layer.segments) {
    std::uint32_t raw_m = 0;
    std::uint32_t raw_q = 0;
    std::memcpy(&raw_m, &s.m, sizeof(raw_m));
    std::memcpy(&raw_q, &s.q, sizeof(raw_q));
    w.write(raw_m >> (32 - coef_bits), coef_bits);
    w.write(raw_q >> (32 - coef_bits), coef_bits);
    if (s.length == 0 || s.length > (std::uint64_t{1} << len_bits)) {
      throw std::runtime_error("serialize: segment length out of field range");
    }
    w.write(s.length - 1, len_bits);
  }
  return w.bytes();
}

CompressedLayer deserialize(std::span<const std::uint8_t> bytes) {
  BitReader r(bytes);
  if (r.read(16) != kMagic) throw std::runtime_error("bad magic");
  if (r.read(8) != kVersion) throw std::runtime_error("bad version");
  CompressedLayer layer;
  layer.config.coef_bits = static_cast<unsigned>(r.read(6));
  layer.config.length_bits = static_cast<unsigned>(r.read(6));
  layer.config.weight_bits = static_cast<unsigned>(r.read(6));
  layer.original_count = r.read(48);
  const std::uint64_t n_segments = r.read(48);
  layer.delta_abs = static_cast<double>(r.read_float());
  const unsigned coef_bits = clamp_coef_bits(layer.config.coef_bits);
  if (coef_bits != layer.config.coef_bits) {
    throw std::runtime_error("corrupt coef_bits field");
  }
  layer.segments.reserve(n_segments);
  std::uint64_t total = 0;
  for (std::uint64_t i = 0; i < n_segments; ++i) {
    CompressedSegment s;
    const auto raw_m =
        static_cast<std::uint32_t>(r.read(coef_bits) << (32 - coef_bits));
    const auto raw_q =
        static_cast<std::uint32_t>(r.read(coef_bits) << (32 - coef_bits));
    std::memcpy(&s.m, &raw_m, sizeof(s.m));
    std::memcpy(&s.q, &raw_q, sizeof(s.q));
    s.length =
        static_cast<std::uint32_t>(r.read(layer.config.length_bits)) + 1;
    total += s.length;
    layer.segments.push_back(s);
  }
  if (total != layer.original_count) {
    throw std::runtime_error("segment lengths do not tile original count");
  }
  return layer;
}

}  // namespace nocw::core
