#include "core/entropy.hpp"

#include <array>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace nocw::core {

double weight_stream_entropy(std::span<const float> weights) {
  return shannon_entropy_hist(byte_histogram(weights));
}

double random_data_entropy(std::size_t n, std::uint64_t seed) {
  Xoshiro256pp rng(seed);
  std::vector<std::uint64_t> hist(256, 0);
  for (std::size_t i = 0; i < n; ++i) {
    ++hist[static_cast<std::uint8_t>(rng() & 0xFF)];
  }
  return shannon_entropy_hist(hist);
}

std::string sample_text(std::size_t min_bytes) {
  // Word pool with roughly English letter frequencies; sampling with a
  // Zipf-ish bias over a fixed list yields prose-like byte statistics
  // (entropy ≈ 4.2 bits/byte) without shipping a corpus file.
  static constexpr std::array<const char*, 65> kWords = {
      "the",     "of",        "and",       "to",       "in",      "a",
      "is",      "that",      "network",   "traffic",  "energy",  "latency",
      "memory",  "chip",      "weights",   "model",    "layer",   "accuracy",
      "inference", "compression", "parameters", "accelerator", "communication",
      "technique", "results",  "figure",    "table",    "between", "which",
      "with",    "for",       "are",       "this",     "be",      "as",
      "on",      "we",        "by",        "an",       "it",      "can",
      "from",    "reduction", "proposed",  "approach", "data",    "value",
      "each",    "when",      "more",      "other",    "such",    "their",
      "these",   "both",      "than",      "into",     "about",   "over",
      "under",   "through",   "during",    "because",  "however", "therefore"};
  Xoshiro256pp rng(0x7e87u);
  std::string out;
  out.reserve(min_bytes + 16);
  std::size_t sentence_len = 0;
  while (out.size() < min_bytes) {
    // Zipf-like rank bias: square the uniform to favour common words.
    const double u = rng.uniform();
    const auto idx = static_cast<std::size_t>(u * u * kWords.size());
    const char* word = kWords[idx < kWords.size() ? idx : kWords.size() - 1];
    if (sentence_len == 0 && !out.empty()) out += ' ';
    out += word;
    ++sentence_len;
    if (sentence_len >= 8 + rng.bounded(8)) {
      out += ". ";
      sentence_len = 0;
    } else {
      out += ' ';
      // keep counting words in the sentence
    }
  }
  return out;
}

double text_entropy(std::size_t min_bytes) {
  const std::string text = sample_text(min_bytes);
  return shannon_entropy_bytes(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
}

}  // namespace nocw::core
