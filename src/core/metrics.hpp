// Compression-efficiency metrics exactly as reported in the paper's Table II.
//
// Only one layer of the model is compressed (the Layer Selection policy of
// Sec. IV-A), so model-level numbers weight the layer-level compression ratio
// by the fraction f of the model's parameters that live in that layer. The
// paper's Table II columns follow (verified against its printed numbers):
//   Weighted CR      = f * CR + (1 - f)
//   Mem fp reduction = f * (1 - 1/CR)
#pragma once

#include <span>

#include "core/codec.hpp"

namespace nocw::core {

/// One row of Table II.
struct CompressionReport {
  double delta_percent = 0.0;       ///< δ column
  double cr = 1.0;                  ///< CR: layer-level compression ratio
  double weighted_cr = 1.0;         ///< Weighted CR column
  double mem_fp_reduction = 0.0;    ///< Mem fp reduction column (fraction)
  double mse = 0.0;                 ///< MSE column
  std::size_t segment_count = 0;
  double mean_segment_length = 0.0;
};

/// Model-level weighted compression ratio for a layer holding fraction
/// `layer_fraction` of the model's parameters.
double weighted_cr(double layer_cr, double layer_fraction) noexcept;

/// Model-level memory-footprint reduction (0..1).
double mem_footprint_reduction(double layer_cr, double layer_fraction) noexcept;

/// Compress `layer_weights` at `cfg.delta_percent` and produce the Table II
/// row for a layer accounting for `layer_fraction` of the model parameters.
CompressionReport assess_compression(std::span<const float> layer_weights,
                                     double layer_fraction,
                                     const CodecConfig& cfg);

}  // namespace nocw::core
