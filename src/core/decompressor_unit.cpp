#include "core/decompressor_unit.hpp"

#include <cmath>
#include <stdexcept>

namespace nocw::core {

void DecompressorUnit::load(const CompressedSegment& segment) {
  if (busy()) throw std::logic_error("DecompressorUnit::load while busy");
  // A non-finite coefficient (a corrupted stream that slipped past CRC, or a
  // caller bug) would propagate NaN through every weight the unit emits and
  // from there through the whole forward pass — reject it at the latch.
  if (!std::isfinite(segment.m) || !std::isfinite(segment.q)) {
    throw DecodeError("DecompressorUnit::load: non-finite coefficients");
  }
  if (segment.length == 0) return;  // empty segment: nothing to do
  m_ = segment.m;
  accum_ = segment.q;
  remaining_ = segment.length;
  state_ = State::Init;
  if (trace_) {
    obs::Tracer::global().record_instant(
        obs::kCatDecomp, "decomp.load", obs::kPidDecomp, 0, cycles_, "length",
        static_cast<double>(segment.length));
  }
}

std::optional<float> DecompressorUnit::tick() {
  ++cycles_;
  switch (state_) {
    case State::Idle:
      return std::nullopt;
    case State::Init: {
      // w̃_1 = q (already latched in accum_ by load()).
      const float out = accum_;
      ++emitted_;
      if (trace_) {
        obs::Tracer::global().record_span(obs::kCatDecomp, "decomp.init",
                                          obs::kPidDecomp, 0, cycles_ - 1, 1);
      }
      if (--remaining_ == 0) {
        state_ = State::Idle;
      } else {
        state_ = State::Run;
        run_start_ = cycles_;
      }
      return out;
    }
    case State::Run: {
      accum_ += m_;  // w̃_j = w̃_{j-1} + m — accumulate, never multiply
      const float out = accum_;
      ++emitted_;
      if (--remaining_ == 0) {
        state_ = State::Idle;
        if (trace_) {
          obs::Tracer::global().record_span(
              obs::kCatDecomp, "decomp.run", obs::kPidDecomp, 0, run_start_,
              cycles_ - run_start_, "weights",
              static_cast<double>(cycles_ - run_start_));
        }
      }
      return out;
    }
  }
  return std::nullopt;
}

}  // namespace nocw::core
