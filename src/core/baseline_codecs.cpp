#include "core/baseline_codecs.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <queue>
#include <stdexcept>

#include "util/bitio.hpp"

namespace nocw::core {

namespace {
constexpr std::uint8_t kEsc = 0xA5;
constexpr std::size_t kMinRun = 4;
}  // namespace

std::vector<std::uint8_t> rle_encode(std::span<const std::uint8_t> data) {
  // Grammar: ESC 0x00            -> one literal ESC byte
  //          ESC count byte      -> `count` copies of `byte` (count >= 4)
  //          anything else       -> literal byte
  std::vector<std::uint8_t> out;
  out.reserve(data.size());
  std::size_t i = 0;
  while (i < data.size()) {
    const std::uint8_t b = data[i];
    std::size_t run = 1;
    while (i + run < data.size() && data[i + run] == b && run < 255) ++run;
    if (run >= kMinRun) {
      out.push_back(kEsc);
      out.push_back(static_cast<std::uint8_t>(run));
      out.push_back(b);
      i += run;
    } else {
      for (std::size_t k = 0; k < run; ++k) {
        out.push_back(b);
        if (b == kEsc) out.push_back(0);  // stuff the escape
      }
      i += run;
    }
  }
  return out;
}

std::vector<std::uint8_t> rle_decode(std::span<const std::uint8_t> data) {
  std::vector<std::uint8_t> out;
  out.reserve(data.size());
  std::size_t i = 0;
  while (i < data.size()) {
    const std::uint8_t b = data[i++];
    if (b != kEsc) {
      out.push_back(b);
      continue;
    }
    if (i >= data.size()) throw std::runtime_error("rle: truncated escape");
    const std::uint8_t count = data[i++];
    if (count == 0) {
      out.push_back(kEsc);  // stuffed literal
      continue;
    }
    if (i >= data.size()) throw std::runtime_error("rle: truncated run");
    const std::uint8_t value = data[i++];
    for (std::uint8_t k = 0; k < count; ++k) out.push_back(value);
  }
  return out;
}

std::vector<std::uint8_t> huffman_encode(std::span<const std::uint8_t> data) {
  // Histogram.
  std::array<std::uint64_t, 256> freq{};
  for (auto b : data) ++freq[b];

  // Build code lengths via a simple Huffman tree (package in a heap).
  struct Node {
    std::uint64_t weight;
    int index;  // < 256: leaf symbol; >= 256: internal
  };
  struct Cmp {
    bool operator()(const Node& a, const Node& b) const {
      if (a.weight != b.weight) return a.weight > b.weight;
      return a.index > b.index;  // deterministic ties
    }
  };
  std::vector<std::pair<int, int>> children;  // internal node -> (l, r)
  std::priority_queue<Node, std::vector<Node>, Cmp> heap;
  int symbols = 0;
  for (int s = 0; s < 256; ++s) {
    if (freq[s] > 0) {
      heap.push(Node{freq[s], s});
      ++symbols;
    }
  }
  std::array<std::uint8_t, 256> code_len{};
  if (symbols == 1) {
    // Degenerate alphabet: one symbol, 1-bit codes.
    for (int s = 0; s < 256; ++s) {
      if (freq[s] > 0) code_len[s] = 1;
    }
  } else if (symbols > 1) {
    int next_internal = 256;
    while (heap.size() > 1) {
      const Node a = heap.top();
      heap.pop();
      const Node b = heap.top();
      heap.pop();
      children.emplace_back(a.index, b.index);
      heap.push(Node{a.weight + b.weight, next_internal++});
    }
    // Depth-first walk to assign lengths.
    struct Item {
      int index;
      std::uint8_t depth;
    };
    std::vector<Item> stack{{heap.top().index, 0}};
    while (!stack.empty()) {
      const Item it = stack.back();
      stack.pop_back();
      if (it.index < 256) {
        code_len[static_cast<std::size_t>(it.index)] = std::max<std::uint8_t>(
            it.depth, 1);
        continue;
      }
      const auto [l, r] = children[static_cast<std::size_t>(it.index - 256)];
      stack.push_back({l, static_cast<std::uint8_t>(it.depth + 1)});
      stack.push_back({r, static_cast<std::uint8_t>(it.depth + 1)});
    }
  }

  // Canonical codes from lengths.
  std::array<std::uint32_t, 256> code{};
  {
    std::vector<int> order;
    for (int s = 0; s < 256; ++s) {
      if (code_len[s] > 0) order.push_back(s);
    }
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      if (code_len[a] != code_len[b]) return code_len[a] < code_len[b];
      return a < b;
    });
    std::uint32_t next = 0;
    std::uint8_t prev_len = 0;
    for (int s : order) {
      next <<= (code_len[s] - prev_len);
      code[static_cast<std::size_t>(s)] = next++;
      prev_len = code_len[s];
    }
  }

  BitWriter w;
  w.write(data.size(), 48);
  for (int s = 0; s < 256; ++s) w.write(code_len[s], 8);
  for (auto b : data) {
    // MSB-first emission of the canonical code.
    const std::uint8_t len = code_len[b];
    const std::uint32_t c = code[b];
    for (int bit = len - 1; bit >= 0; --bit) w.write((c >> bit) & 1u, 1);
  }
  return w.bytes();
}

std::vector<std::uint8_t> huffman_decode(std::span<const std::uint8_t> data) {
  BitReader r(data);
  const std::uint64_t count = r.read(48);
  std::array<std::uint8_t, 256> code_len{};
  for (int s = 0; s < 256; ++s) {
    code_len[s] = static_cast<std::uint8_t>(r.read(8));
  }
  // Rebuild canonical codes and a (length -> first code, symbols) decoder.
  std::vector<int> order;
  for (int s = 0; s < 256; ++s) {
    if (code_len[s] > 0) order.push_back(s);
  }
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (code_len[a] != code_len[b]) return code_len[a] < code_len[b];
    return a < b;
  });
  std::array<std::uint32_t, 33> first_code{};
  std::array<std::uint32_t, 33> first_index{};
  std::array<std::uint32_t, 33> span_per_len{};
  {
    std::uint32_t next = 0;
    std::uint8_t prev_len = 0;
    for (std::size_t i = 0; i < order.size(); ++i) {
      const std::uint8_t len = code_len[static_cast<std::size_t>(order[i])];
      if (len > 32) throw std::runtime_error("huffman: code too long");
      if (len != prev_len) {
        next <<= (len - prev_len);
        first_code[len] = next;
        first_index[len] = static_cast<std::uint32_t>(i);
        prev_len = len;
      }
      ++span_per_len[len];
      ++next;
    }
  }
  std::vector<std::uint8_t> out;
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint32_t c = 0;
    std::uint8_t len = 0;
    int symbol = -1;
    while (len < 32) {
      c = (c << 1) | static_cast<std::uint32_t>(r.read(1));
      ++len;
      const std::uint32_t span = span_per_len[len];
      if (span != 0 && c >= first_code[len] && c < first_code[len] + span) {
        symbol = order[first_index[len] + (c - first_code[len])];
        break;
      }
    }
    if (symbol < 0) throw std::runtime_error("huffman: bad code");
    out.push_back(static_cast<std::uint8_t>(symbol));
  }
  return out;
}

double lossless_cr(std::size_t original_bytes, std::size_t encoded_bytes) {
  if (encoded_bytes == 0) return 1.0;
  return static_cast<double>(original_bytes) /
         static_cast<double>(encoded_bytes);
}

std::vector<std::uint8_t> weights_as_bytes(std::span<const float> weights) {
  std::vector<std::uint8_t> out(weights.size() * sizeof(float));
  std::memcpy(out.data(), weights.data(), out.size());
  return out;
}

}  // namespace nocw::core
