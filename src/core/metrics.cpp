#include "core/metrics.hpp"

namespace nocw::core {

double weighted_cr(double layer_cr, double layer_fraction) noexcept {
  return layer_fraction * layer_cr + (1.0 - layer_fraction);
}

double mem_footprint_reduction(double layer_cr,
                               double layer_fraction) noexcept {
  if (layer_cr <= 0.0) return 0.0;
  return layer_fraction * (1.0 - 1.0 / layer_cr);
}

CompressionReport assess_compression(std::span<const float> layer_weights,
                                     double layer_fraction,
                                     const CodecConfig& cfg) {
  const CompressedLayer layer = compress(layer_weights, cfg);
  CompressionReport r;
  r.delta_percent = cfg.delta_percent;
  r.cr = layer.compression_ratio();
  r.weighted_cr = weighted_cr(r.cr, layer_fraction);
  r.mem_fp_reduction = mem_footprint_reduction(r.cr, layer_fraction);
  r.mse = layer.mse();
  r.segment_count = layer.segments.size();
  r.mean_segment_length = layer.mean_segment_length();
  return r;
}

}  // namespace nocw::core
