// Classical lossless baselines: byte-level RLE and Huffman coding.
//
// The paper's Sec. III-B argues that CNN weight streams are too high-entropy
// for traditional compressors — run-length coding finds no runs and entropy
// coding finds a flat histogram — which motivates the custom lossy codec.
// These reference implementations let the claim be *measured* rather than
// asserted (see bench/ext_baseline_codecs): both achieve CR ≈ 1 on weights
// while Huffman gets ~2x on text.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace nocw::core {

/// Escape-based run-length encoding: runs of >= 4 identical bytes become
/// ESC, byte, count(1..255); the escape byte itself is stuffed. Worst case
/// expands by the escape-stuffing overhead only.
std::vector<std::uint8_t> rle_encode(std::span<const std::uint8_t> data);
std::vector<std::uint8_t> rle_decode(std::span<const std::uint8_t> data);

/// Canonical Huffman over the byte alphabet. The encoded stream embeds the
/// 256-entry code-length table (one byte each) plus the payload bit count,
/// so decode needs no side channel.
std::vector<std::uint8_t> huffman_encode(std::span<const std::uint8_t> data);
std::vector<std::uint8_t> huffman_decode(std::span<const std::uint8_t> data);

/// original size / encoded size for the given encoder output.
double lossless_cr(std::size_t original_bytes, std::size_t encoded_bytes);

/// Serialize a float weight stream to bytes (the representation a lossless
/// compressor would see in main memory).
std::vector<std::uint8_t> weights_as_bytes(std::span<const float> weights);

}  // namespace nocw::core
