// Entropy analysis of weight streams (paper Fig. 3).
//
// The paper motivates the custom codec by showing that serialized CNN weights
// have near-maximal byte entropy — indistinguishable from random data — so
// dictionary/statistical compressors cannot help. These helpers reproduce the
// three bars of Fig. 3: random data (upper bound ≈ 8 bits/byte), an English
// text file (≈ 4.2-4.8 bits/byte), and the per-model weight streams.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace nocw::core {

/// Byte-level Shannon entropy (bits/byte) of a serialized float stream.
double weight_stream_entropy(std::span<const float> weights);

/// Entropy of `n` bytes of uniform random data with the given seed.
double random_data_entropy(std::size_t n, std::uint64_t seed);

/// A deterministic pseudo-English corpus of at least `min_bytes` bytes,
/// generated from a word list so its letter statistics match typical prose.
/// Stands in for the paper's "text file" reference bar.
std::string sample_text(std::size_t min_bytes);

/// Entropy of sample_text(min_bytes).
double text_entropy(std::size_t min_bytes);

}  // namespace nocw::core
