// Lossy weights codec (paper Sec. III-B, III-C).
//
// Compression pipeline: greedy weak-monotonic segmentation with tolerance δ
// (segment.hpp) → per-segment least-squares line fit (linefit.hpp) → each
// segment stored as the triple ⟨m_i, q_i, |M_i|⟩. Decompression reconstructs
// w̃_1 = q_i, w̃_j = w̃_{j-1} + m_i (Eq. 2) — accumulation only, no multiply —
// exactly what the per-PE hardware decompression unit of Fig. 6 computes.
//
// Field widths are configurable so the storage-cost model can be explored
// (an ablation the paper leaves implicit): coefficients may be rounded to a
// truncated float32 (keeping the top `coef_bits` of the IEEE-754 encoding,
// i.e. bfloat16 when coef_bits = 16) and the segment length occupies
// `length_bits` bits, which also caps |M_i| at 2^length_bits.
#pragma once

#include <cstdint>
#include <cstddef>
#include <span>
#include <vector>

#include "core/segment.hpp"

namespace nocw::core {

struct CodecConfig {
  /// Tolerance threshold δ as a percentage of max(W)-min(W), the convention
  /// used throughout the paper's Table II / Fig. 10 ("δ = x%").
  double delta_percent = 0.0;

  /// Bits stored per line coefficient (m and q). 32 keeps exact float32;
  /// 16 truncates to bfloat16. Must be in [9, 32].
  unsigned coef_bits = 32;

  /// Bits of the segment-length field; caps |M_i| at 2^length_bits.
  unsigned length_bits = 8;

  /// Bits per weight in the *uncompressed* representation (32 for float
  /// models, 8 for int8-quantized models). Only used for ratio accounting.
  unsigned weight_bits = 32;
};

/// One encoded sub-succession: the fitted line and how many weights it
/// reconstructs. Coefficients are stored post-quantization, i.e. exactly the
/// values the decompressor will use.
struct CompressedSegment {
  float m = 0.0F;
  float q = 0.0F;
  std::uint32_t length = 0;
};

/// A compressed weight succession plus the bookkeeping needed for the
/// paper's metrics.
struct CompressedLayer {
  std::vector<CompressedSegment> segments;
  std::size_t original_count = 0;  ///< n = |W|
  double delta_abs = 0.0;          ///< absolute δ used for segmentation
  double sse = 0.0;                ///< Σ (w_i - w̃_i)² after Eq. 2 replay
  CodecConfig config;

  /// Payload bits of the compressed representation (no container header).
  [[nodiscard]] std::size_t compressed_bits() const noexcept;
  /// Bits of the uncompressed representation.
  [[nodiscard]] std::size_t original_bits() const noexcept;
  /// CR column of Table II: original bits / compressed bits.
  [[nodiscard]] double compression_ratio() const noexcept;
  /// MSE column of Table II.
  [[nodiscard]] double mse() const noexcept;
  /// Mean |M_i|.
  [[nodiscard]] double mean_segment_length() const noexcept;
};

/// Compress `weights` with tolerance δ = cfg.delta_percent % of the range.
/// Single pass for segmentation+fit, one replay pass for the exact SSE.
CompressedLayer compress(std::span<const float> weights,
                         const CodecConfig& cfg);

/// Reconstruct the approximated weights via Eq. (2). `out.size()` must equal
/// `layer.original_count`.
void decompress(const CompressedLayer& layer, std::span<float> out);
std::vector<float> decompress(const CompressedLayer& layer);

/// Serialize to the bit-packed storage format (what main memory would hold).
std::vector<std::uint8_t> serialize(const CompressedLayer& layer);
/// Parse a bit-packed stream back; throws std::runtime_error on corruption.
CompressedLayer deserialize(std::span<const std::uint8_t> bytes);

/// Round a double coefficient to the top `bits` bits of its float32 encoding
/// (round-to-nearest on the dropped mantissa bits). bits == 32 is exact.
float quantize_coefficient(double value, unsigned bits) noexcept;

}  // namespace nocw::core
