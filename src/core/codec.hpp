// Lossy weights codec (paper Sec. III-B, III-C).
//
// Compression pipeline: greedy weak-monotonic segmentation with tolerance δ
// (segment.hpp) → per-segment least-squares line fit (linefit.hpp) → each
// segment stored as the triple ⟨m_i, q_i, |M_i|⟩. Decompression reconstructs
// w̃_1 = q_i, w̃_j = w̃_{j-1} + m_i (Eq. 2) — accumulation only, no multiply —
// exactly what the per-PE hardware decompression unit of Fig. 6 computes.
//
// Field widths are configurable so the storage-cost model can be explored
// (an ablation the paper leaves implicit): coefficients may be rounded to a
// truncated float32 (keeping the top `coef_bits` of the IEEE-754 encoding,
// i.e. bfloat16 when coef_bits = 16) and the segment length occupies
// `length_bits` bits, which also caps |M_i| at 2^length_bits.
#pragma once

#include <cstdint>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/segment.hpp"

namespace nocw::core {

/// Raised when a compressed stream (or an in-memory CompressedLayer built
/// from one) is malformed: bad magic/version, truncation, a segment that
/// overruns the declared weight count, non-finite coefficients, or a failed
/// per-segment checksum. Never undefined behaviour — a corrupted stream is a
/// runtime input, not a programming error. `bit_offset()` locates the first
/// offending bit of the input stream (0 when the error is not tied to a
/// stream position, e.g. validation of an in-memory layer).
class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& what, std::size_t bit_offset = 0)
      : std::runtime_error(what), bit_offset_(bit_offset) {}

  [[nodiscard]] std::size_t bit_offset() const noexcept { return bit_offset_; }
  [[nodiscard]] std::size_t byte_offset() const noexcept {
    return bit_offset_ / 8;
  }

 private:
  std::size_t bit_offset_;
};

struct CodecConfig {
  /// Tolerance threshold δ as a percentage of max(W)-min(W), the convention
  /// used throughout the paper's Table II / Fig. 10 ("δ = x%").
  double delta_percent = 0.0;

  /// Bits stored per line coefficient (m and q). 32 keeps exact float32;
  /// 16 truncates to bfloat16. Must be in [9, 32].
  unsigned coef_bits = 32;

  /// Bits of the segment-length field; caps |M_i| at 2^length_bits.
  unsigned length_bits = 8;

  /// Bits per weight in the *uncompressed* representation (32 for float
  /// models, 8 for int8-quantized models). Only used for ratio accounting.
  unsigned weight_bits = 32;

  /// Append a CRC-8 to every serialized ⟨m, q, len⟩ record so a corrupted
  /// segment is detected (and can be zeroed by deserialize_tolerant) instead
  /// of silently reconstructing garbage weights. Costs 8 bits per segment in
  /// compressed_bits(); off by default so the paper's Table II numbers are
  /// unchanged.
  bool segment_checksum = false;
};

/// One encoded sub-succession: the fitted line and how many weights it
/// reconstructs. Coefficients are stored post-quantization, i.e. exactly the
/// values the decompressor will use.
struct CompressedSegment {
  float m = 0.0F;
  float q = 0.0F;
  std::uint32_t length = 0;
};

/// A compressed weight succession plus the bookkeeping needed for the
/// paper's metrics.
struct CompressedLayer {
  std::vector<CompressedSegment> segments;
  std::size_t original_count = 0;  ///< n = |W|
  double delta_abs = 0.0;          ///< absolute δ used for segmentation
  double sse = 0.0;                ///< Σ (w_i - w̃_i)² after Eq. 2 replay
  CodecConfig config;

  /// Payload bits of the compressed representation (no container header).
  [[nodiscard]] std::size_t compressed_bits() const noexcept;
  /// Bits of the uncompressed representation.
  [[nodiscard]] std::size_t original_bits() const noexcept;
  /// CR column of Table II: original bits / compressed bits.
  [[nodiscard]] double compression_ratio() const noexcept;
  /// MSE column of Table II.
  [[nodiscard]] double mse() const noexcept;
  /// Mean |M_i|.
  [[nodiscard]] double mean_segment_length() const noexcept;
};

/// Compress `weights` with tolerance δ = cfg.delta_percent % of the range.
/// Single pass for segmentation+fit, one replay pass for the exact SSE.
CompressedLayer compress(std::span<const float> weights,
                         const CodecConfig& cfg);

/// Reconstruct the approximated weights via Eq. (2). `out.size()` must equal
/// `layer.original_count`. Segment headers are validated first: a length that
/// would overrun `out`, a non-finite m or q, or lengths that fail to tile the
/// layer throw DecodeError — never an out-of-bounds write.
void decompress(const CompressedLayer& layer, std::span<float> out);
std::vector<float> decompress(const CompressedLayer& layer);

/// Serialize to the bit-packed storage format (what main memory would hold).
std::vector<std::uint8_t> serialize(const CompressedLayer& layer);
/// Parse a bit-packed stream back; throws DecodeError (with the offending
/// bit/byte offset in the message) on any corruption: short header, bad
/// magic/version, infeasible field widths, a declared segment count the
/// remaining bytes cannot hold, a failed per-segment CRC-8, non-finite
/// coefficients, or lengths that do not tile original_count.
CompressedLayer deserialize(std::span<const std::uint8_t> bytes);

/// What deserialize_tolerant had to repair. All zero ⇔ the stream was clean.
struct DecodeDiagnostics {
  std::size_t segments_total = 0;      ///< records the header declared
  std::size_t segments_corrupted = 0;  ///< CRC-8/validity failures, zeroed
  std::size_t segments_missing = 0;    ///< synthesized to cover truncation
  bool truncated = false;              ///< stream ended mid-payload
};

/// Best-effort parse for accuracy-under-fault studies: instead of throwing,
/// a segment whose CRC-8 fails (or whose coefficients are non-finite) keeps
/// its length but has m = q = 0, truncated tails are padded with zero
/// segments, and overrunning lengths are clamped — so the result always
/// decompresses to exactly `original_count` weights. Header corruption is
/// still fatal (DecodeError): without magic/version/counts there is nothing
/// to tolerate. `diag`, when non-null, reports what was repaired.
CompressedLayer deserialize_tolerant(std::span<const std::uint8_t> bytes,
                                     DecodeDiagnostics* diag = nullptr);

/// Round a double coefficient to the top `bits` bits of its float32 encoding
/// (round-to-nearest on the dropped mantissa bits). bits == 32 is exact.
float quantize_coefficient(double value, unsigned bits) noexcept;

}  // namespace nocw::core
