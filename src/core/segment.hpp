// Weakly monotonic segmentation of a weight succession (paper Sec. III-B).
//
// The succession W = {w_1..w_n} is greedily partitioned into maximal
// sub-successions that are monotonic *in the weak sense* with tolerance δ
// (Eq. 1): a sub-succession is weakly decreasing when every consecutive pair
// satisfies w_i > w_{i+1} OR |w_i - w_{i+1}| <= δ (weakly increasing is
// symmetric). δ = 0 degenerates to ordinary (non-strict) monotonicity; the
// paper's Fig. 5 worst case — a pairwise alternating sequence — collapses to
// a single segment once δ covers the alternation amplitude.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace nocw::core {

/// One weakly monotonic sub-succession M_i = W[first, first+length).
struct Segment {
  std::size_t first = 0;   ///< index of the first element in W
  std::size_t length = 0;  ///< number of elements (|M_i| >= 1)
};

struct SegmenterConfig {
  /// Tolerance threshold δ in *absolute* units of the weight values.
  /// Callers that follow the paper's convention (δ as a percentage of
  /// max(W)-min(W)) convert before calling; see delta_from_percent().
  double delta = 0.0;

  /// Maximum segment length (architectural cap so |M_i| fits the codec's
  /// length field). 0 means unlimited.
  std::size_t max_length = 255;
};

/// Convert the paper's δ-as-percent-of-range convention to an absolute δ.
/// Table II reports δ = x% meaning x * (max(W) - min(W)) / 100.
double delta_from_percent(double percent, std::span<const float> weights);

/// Greedy maximal segmentation. Every element of `weights` belongs to exactly
/// one segment; segments are returned in order and tile [0, n).
std::vector<Segment> segment_weights(std::span<const float> weights,
                                     const SegmenterConfig& config);

/// True when `values` is weakly monotonic (either direction) with tolerance
/// delta, per Eq. (1). Used by tests and assertions.
bool is_weakly_monotonic(std::span<const float> values, double delta);

/// Streaming segmenter: consumes one value at a time and emits segment
/// lengths, never holding more than O(1) state. Used when compressing layers
/// too large to keep two copies of in memory and by the hardware-style tests.
class StreamSegmenter {
 public:
  explicit StreamSegmenter(const SegmenterConfig& config) noexcept
      : cfg_(config) {}

  /// Feed the next weight. Returns the length of a segment that was just
  /// closed (i.e. `value` starts a new one), or 0 when the current segment
  /// simply grew.
  std::size_t push(float value) noexcept;

  /// Flush the trailing open segment; returns its length (0 if none).
  std::size_t finish() noexcept;

  /// Length of the currently open segment.
  [[nodiscard]] std::size_t open_length() const noexcept { return count_; }

 private:
  SegmenterConfig cfg_;
  double prev_ = 0.0;
  std::size_t count_ = 0;  // elements in the open segment
  bool can_increase_ = true;
  bool can_decrease_ = true;
};

}  // namespace nocw::core
