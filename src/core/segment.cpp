#include "core/segment.hpp"

#include "util/stats.hpp"

namespace nocw::core {

double delta_from_percent(double percent, std::span<const float> weights) {
  return percent * value_range(weights) / 100.0;
}

std::size_t StreamSegmenter::push(float value) noexcept {
  const double v = static_cast<double>(value);
  if (count_ == 0) {
    prev_ = v;
    count_ = 1;
    can_increase_ = can_decrease_ = true;
    return 0;
  }
  const double diff = v - prev_;
  const bool within = (diff <= cfg_.delta) && (-diff <= cfg_.delta);
  const bool pair_up = (diff > 0.0) || within;
  const bool pair_down = (diff < 0.0) || within;
  const bool inc_ok = can_increase_ && pair_up;
  const bool dec_ok = can_decrease_ && pair_down;
  const bool capped = cfg_.max_length != 0 && count_ >= cfg_.max_length;
  if ((!inc_ok && !dec_ok) || capped) {
    const std::size_t closed = count_;
    prev_ = v;
    count_ = 1;
    can_increase_ = can_decrease_ = true;
    return closed;
  }
  can_increase_ = inc_ok;
  can_decrease_ = dec_ok;
  prev_ = v;
  ++count_;
  return 0;
}

std::size_t StreamSegmenter::finish() noexcept {
  const std::size_t closed = count_;
  count_ = 0;
  can_increase_ = can_decrease_ = true;
  return closed;
}

std::vector<Segment> segment_weights(std::span<const float> weights,
                                     const SegmenterConfig& config) {
  std::vector<Segment> segments;
  if (weights.empty()) return segments;
  StreamSegmenter seg(config);
  std::size_t start = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const std::size_t closed = seg.push(weights[i]);
    if (closed != 0) {
      segments.push_back(Segment{start, closed});
      start += closed;
    }
  }
  const std::size_t tail = seg.finish();
  if (tail != 0) segments.push_back(Segment{start, tail});
  return segments;
}

bool is_weakly_monotonic(std::span<const float> values, double delta) {
  bool can_inc = true;
  bool can_dec = true;
  for (std::size_t i = 1; i < values.size(); ++i) {
    const double diff =
        static_cast<double>(values[i]) - static_cast<double>(values[i - 1]);
    const bool within = (diff <= delta) && (-diff <= delta);
    can_inc = can_inc && ((diff > 0.0) || within);
    can_dec = can_dec && ((diff < 0.0) || within);
    if (!can_inc && !can_dec) return false;
  }
  return true;
}

}  // namespace nocw::core
