#include "accel/summary.hpp"

#include <numeric>
#include <stdexcept>

namespace nocw::accel {

namespace {

using nn::LayerType;
using nn::Padding;

std::uint64_t elems(const std::vector<int>& shape) {
  std::uint64_t n = 1;
  for (int d : shape) n *= static_cast<std::uint64_t>(d);
  return n;
}

}  // namespace

const LayerSummary* ModelSummary::find(const std::string& name) const {
  for (const auto& l : layers) {
    if (l.name == name) return &l;
  }
  return nullptr;
}

std::vector<std::size_t> ModelSummary::macro_layers() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < layers.size(); ++i) {
    if (layers[i].traffic_bearing) out.push_back(i);
  }
  return out;
}

ModelSummary summarize(const nn::Model& model) {
  ModelSummary ms;
  ms.model_name = model.name;
  const nn::Graph& g = model.graph;
  std::vector<std::vector<int>> shapes(g.node_count());
  ms.layers.reserve(g.node_count());

  for (std::size_t i = 0; i < g.node_count(); ++i) {
    const auto& node = g.node(static_cast<int>(i));
    const nn::Layer& layer = g.layer(static_cast<int>(i));
    LayerSummary s;
    s.name = layer.name();
    s.type = layer.type();
    s.params = layer.param_count();
    s.weight_count = layer.kernel().size();

    std::uint64_t in_elems = 0;
    for (int in : node.inputs) {
      in_elems += elems(shapes[static_cast<std::size_t>(in)]);
    }
    const std::vector<int>* in0 =
        node.inputs.empty() ? nullptr
                            : &shapes[static_cast<std::size_t>(node.inputs[0])];

    std::vector<int> out_shape;
    switch (layer.type()) {
      case LayerType::Input: {
        const auto& il = static_cast<const nn::InputLayer&>(layer);
        out_shape = il.input_shape();
        out_shape[0] = 1;  // batch 1
        in_elems = 0;      // the graph input is not on-chip traffic yet
        break;
      }
      case LayerType::Conv2D: {
        const auto& c = static_cast<const nn::Conv2D&>(layer);
        const int h = (*in0)[1], w = (*in0)[2];
        const int oh = nn::conv_out_extent(h, c.kernel_h(), c.stride(),
                                           c.padding());
        const int ow = nn::conv_out_extent(w, c.kernel_w(), c.stride(),
                                           c.padding());
        out_shape = {1, oh, ow, c.out_channels()};
        s.macs = static_cast<std::uint64_t>(oh) * ow * c.kernel_h() *
                 c.kernel_w() * c.in_channels() * c.out_channels();
        s.traffic_bearing = true;
        break;
      }
      case LayerType::DepthwiseConv2D: {
        const auto& c = static_cast<const nn::DepthwiseConv2D&>(layer);
        const int h = (*in0)[1], w = (*in0)[2];
        const int oh = nn::conv_out_extent(h, c.kernel_h(), c.stride(),
                                           c.padding());
        const int ow = nn::conv_out_extent(w, c.kernel_w(), c.stride(),
                                           c.padding());
        out_shape = {1, oh, ow, c.channels()};
        s.macs = static_cast<std::uint64_t>(oh) * ow * c.kernel_h() *
                 c.kernel_w() * c.channels();
        s.traffic_bearing = true;
        break;
      }
      case LayerType::Dense: {
        const auto& d = static_cast<const nn::Dense&>(layer);
        out_shape = {1, d.out_features()};
        s.macs = static_cast<std::uint64_t>(d.in_features()) *
                 d.out_features();
        s.traffic_bearing = true;
        break;
      }
      case LayerType::MaxPool: {
        const auto& p = static_cast<const nn::MaxPool&>(layer);
        const int oh = nn::conv_out_extent((*in0)[1], p.pool(), p.stride(),
                                           p.padding());
        const int ow = nn::conv_out_extent((*in0)[2], p.pool(), p.stride(),
                                           p.padding());
        out_shape = {1, oh, ow, (*in0)[3]};
        s.ops = elems(out_shape) * static_cast<std::uint64_t>(p.pool()) *
                p.pool();
        s.traffic_bearing = true;
        break;
      }
      case LayerType::AvgPool: {
        const auto& p = static_cast<const nn::AvgPool&>(layer);
        const int oh = nn::conv_out_extent((*in0)[1], p.pool(), p.stride(),
                                           p.padding());
        const int ow = nn::conv_out_extent((*in0)[2], p.pool(), p.stride(),
                                           p.padding());
        out_shape = {1, oh, ow, (*in0)[3]};
        s.ops = elems(out_shape) * static_cast<std::uint64_t>(p.pool()) *
                p.pool();
        s.traffic_bearing = true;
        break;
      }
      case LayerType::GlobalAvgPool: {
        out_shape = {1, (*in0)[3]};
        s.ops = in_elems;
        s.traffic_bearing = true;
        break;
      }
      case LayerType::ReLU:
      case LayerType::ReLU6:
      case LayerType::Softmax:
      case LayerType::BatchNorm:
        out_shape = *in0;
        s.ops = in_elems;  // fused into the producer; no traffic of its own
        break;
      case LayerType::Flatten: {
        // Reshape carries a target shape; plain Flatten collapses.
        if (const auto* r = dynamic_cast<const nn::Reshape*>(&layer)) {
          out_shape = {1};
          out_shape.insert(out_shape.end(), r->per_sample_shape().begin(),
                           r->per_sample_shape().end());
        } else {
          out_shape = {1, static_cast<int>(elems(*in0))};
        }
        break;
      }
      case LayerType::Add: {
        out_shape = *in0;
        s.ops = in_elems;
        break;
      }
      case LayerType::Concat: {
        out_shape = *in0;
        int channels = 0;
        for (int in : node.inputs) {
          channels += shapes[static_cast<std::size_t>(in)].back();
        }
        out_shape.back() = channels;
        break;
      }
    }
    s.ifmap_elems = in_elems;
    s.ofmap_elems = elems(out_shape);
    s.output_shape = out_shape;
    shapes[i] = std::move(out_shape);
    ms.total_params += s.params;
    ms.total_macs += s.macs;
    ms.layers.push_back(std::move(s));
  }
  return ms;
}

}  // namespace nocw::accel
