// Analytic per-layer summary of a model (shapes, parameters, MACs).
//
// The accelerator simulator works from layer *volumes* — weight bytes to
// fetch, feature-map bytes to move, MACs to execute — not from live float
// math, so summarizing a 138M-parameter VGG-16 costs microseconds. Shapes
// are propagated symbolically through the graph with batch size 1 (one
// inference, as in the paper's latency/energy experiments).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/models.hpp"

namespace nocw::accel {

struct LayerSummary {
  std::string name;
  nn::LayerType type = nn::LayerType::Input;
  std::size_t params = 0;        ///< Keras-style parameter count
  std::uint64_t weight_count = 0;  ///< kernel elements (the compressible W)
  std::uint64_t ifmap_elems = 0;   ///< sum over all inputs
  std::uint64_t ofmap_elems = 0;
  std::uint64_t macs = 0;        ///< multiply-accumulates
  std::uint64_t ops = 0;         ///< non-MAC arithmetic (pooling, merging)
  /// True for the "macro" layers that exchange data with main memory in the
  /// Fig. 1 execution model (conv/dense/pool); activation/norm/shape layers
  /// are fused into their producer and move no traffic of their own.
  bool traffic_bearing = false;
  std::vector<int> output_shape;
};

struct ModelSummary {
  std::string model_name;
  std::vector<LayerSummary> layers;  ///< one per graph node, in graph order
  std::uint64_t total_params = 0;
  std::uint64_t total_macs = 0;

  [[nodiscard]] const LayerSummary* find(const std::string& name) const;
  /// Indices of traffic-bearing layers, in execution order.
  [[nodiscard]] std::vector<std::size_t> macro_layers() const;
};

/// Symbolic pass over the model graph.
ModelSummary summarize(const nn::Model& model);

}  // namespace nocw::accel
