// NoC-based CNN accelerator simulator (paper Fig. 7 reference architecture).
//
// Execution model per traffic-bearing layer, following the paper's Fig. 1:
//   (1) the four corner memory interfaces fetch weights (possibly in the
//       compressed ⟨m,q,len⟩ format) and the input feature map from main
//       memory;
//   (2) the NoC scatters them to the 12 PEs (cycle-accurate wormhole
//       simulation — window-sampled for very large layers, then scaled,
//       since the traffic is steady-state streaming);
//   (3) the PEs compute (8 vector-MAC lanes x 8-way dot product = 64
//       MACs/cycle each), decompressing weights on the fly at one weight per
//       cycle per decompressor (Fig. 6), which never stalls the stream;
//   (4) the output feature map is gathered back and written to main memory.
// The reported layer latency is the stacked sum of the memory,
// communication and computation components — the same decomposition the
// paper's Fig. 2 / Fig. 10 breakdowns use.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "accel/summary.hpp"
#include "noc/config.hpp"
#include "noc/stats.hpp"
#include "obs/observation.hpp"
#include "obs/timeseries.hpp"
#include "power/energy_model.hpp"
#include "util/units.hpp"

namespace nocw::accel {

struct AccelConfig {
  noc::NocConfig noc;
  int macs_per_pe_per_cycle = 64;     ///< 8 lanes x 8-way dot product
  int pe_local_memory_bytes = 8192;   ///< 8 KB per PE
  int dram_words_per_cycle_per_mi = 1;  ///< 64-bit words per cycle per MI
  double dram_efficiency = 0.7;       ///< sustained/peak bandwidth (row misses)
  int dram_latency_cycles = 100;      ///< first-access latency per layer
  std::uint32_t packet_flits = 32;    ///< wormhole packet size
  int bits_per_weight = 32;
  int bits_per_activation = 32;
  /// NoC sampling window: layers whose phase traffic exceeds this many flits
  /// are simulated for a window and scaled (streaming steady state).
  std::uint64_t noc_window_flits = 24000;
  std::uint64_t max_phase_cycles = 8000000;  ///< deadlock guard
  /// Phase timing model. The paper's stacked breakdowns correspond to the
  /// serialized model (layer latency = memory + NoC + compute). With
  /// double-buffered local memories the three phases stream concurrently
  /// and the layer is bound by its slowest phase; enable `overlap_phases`
  /// to model that (ablation_noc quantifies the difference).
  bool overlap_phases = false;
  /// Optional time-series sink (obs/timeseries). When non-null, the NoC
  /// cycle engine samples link/queue activity every `series_interval_cycles`
  /// simulated cycles, and the layer model synthesizes DRAM/MAC/decompress
  /// activity points over its analytic phase spans — all stamped on the
  /// inference-global timeline. Sampling reads committed state only, so
  /// simulation results are bit-identical with or without a sink. One sink
  /// belongs to one simulation run: concurrent sweep lanes must not share
  /// it (their timelines interleave and per-series cycles would go
  /// backwards).
  obs::TimeSeriesSet* series = nullptr;
  std::uint64_t series_interval_cycles = 256;
  /// Memoize cycle-accurate NoC phase runs by (scatter, gather) flit volume.
  /// Under one simulator config those volumes fully determine the compiled
  /// packet sequence and hence the phase result, and δ-sweeps re-simulate
  /// every unchanged layer once per grid point — the cache collapses those
  /// repeats to one run each. Automatically bypassed when a run has
  /// per-call side channels (time-series sink attached, NoC tracing live).
  bool reuse_noc_phases = true;
};

/// Per-layer override installed by the compression flow: the selected
/// layer's weight stream is replaced by its compressed size, and the PEs
/// charge one decompressor accumulate per reconstructed weight.
struct LayerCompression {
  std::uint64_t compressed_bits = 0;
  std::uint64_t weight_count = 0;  ///< decompress steps when reconstructing
};
using CompressionPlan = std::map<std::string, LayerCompression>;

/// Plan under which every weighted traffic-bearing layer streams *zero*
/// weight bits and performs zero decompress steps: the weights are already
/// resident in the PE local memories from a previous inference of the same
/// model. Feature-map traffic and MAC work are untouched. The serving
/// layer simulates each request class once with its real plan (cold cost)
/// and once with this plan (marginal batched cost); the gap is exactly the
/// weight traffic batching amortizes — the same traffic the paper's
/// compression attacks.
[[nodiscard]] CompressionPlan resident_weights_plan(
    const ModelSummary& summary);

/// Latency decomposition in cycles (the paper's three latency components).
/// Under the overlap model `overlap_cycles` holds the max-bound layer time;
/// total() still reports the stacked sum the paper's figures decompose.
/// FracCycles: the components are analytic (window-scaled) estimates, so
/// they are fractional — but they are still *cycles*, and the strong type
/// keeps them from ever being added to joules or seconds.
struct LatencyBreakdown {
  units::FracCycles memory_cycles;
  units::FracCycles comm_cycles;
  units::FracCycles compute_cycles;
  units::FracCycles overlap_cycles;
  [[nodiscard]] units::FracCycles total() const noexcept {
    return memory_cycles + comm_cycles + compute_cycles;
  }
  LatencyBreakdown& operator+=(const LatencyBreakdown& o) noexcept {
    memory_cycles += o.memory_cycles;
    comm_cycles += o.comm_cycles;
    compute_cycles += o.compute_cycles;
    overlap_cycles += o.overlap_cycles;
    return *this;
  }

  /// Invariant: every component is finite and non-negative.
  void check_invariants() const;
};

struct LayerResult {
  std::string name;
  nn::LayerType type = nn::LayerType::Input;
  units::Bits weight_stream_bits;  ///< after compression, if any
  units::Flits total_flits;
  LatencyBreakdown latency;
  power::EnergyBreakdown energy;
  /// NoC-phase observation (empty unless the network ran in observation
  /// mode; see Network::set_observation).
  obs::NocObservation noc_obs;
};

struct InferenceResult {
  std::string model_name;
  std::vector<LayerResult> layers;
  LatencyBreakdown latency;
  power::EnergyBreakdown energy;
  /// Merge of every traffic-bearing layer's NoC observation.
  obs::NocObservation noc_obs;

  [[nodiscard]] units::FracCycles total_cycles() const noexcept {
    return latency.total();
  }
  [[nodiscard]] units::Seconds total_seconds(double clock_ghz = 1.0) const {
    return units::seconds_at(latency.total(), clock_ghz);
  }
};

class AcceleratorSim {
 public:
  explicit AcceleratorSim(const AccelConfig& cfg = AccelConfig{},
                          const power::EnergyTable& table =
                              power::EnergyTable{});

  /// Simulate one inference of `summary`, optionally with a compression
  /// plan overriding selected layers' weight streams.
  [[nodiscard]] InferenceResult simulate(
      const ModelSummary& summary,
      const CompressionPlan* plan = nullptr) const;

  /// `tag` labels the layer's NoC packets for diagnostics (simulate() passes
  /// the layer ordinal); it never affects results.
  [[nodiscard]] LayerResult simulate_layer(
      const LayerSummary& layer,
      const LayerCompression* compression = nullptr,
      std::uint32_t tag = 0) const;

  [[nodiscard]] const AccelConfig& config() const noexcept { return cfg_; }

  /// Endpoints actually used for traffic and throughput. Equal to the mesh's
  /// full MI/PE sets unless fault-aware routing is on and permanent outages
  /// hit the mesh — then failover runs at construction: endpoints on dead
  /// routers are dropped, as are MIs/PEs the west-first turn model can no
  /// longer connect (a dead transit router disconnects some west-chains, and
  /// phase traffic must be lossless, never silently undeliverable). The
  /// survivors absorb the dropped endpoints' traffic shares and compute
  /// throughput (deterministically), so the inference completes degraded
  /// instead of deadlocking. Construction throws nocw::CheckError when no
  /// MI or no PE survives.
  [[nodiscard]] std::span<const int> live_memory_interfaces() const noexcept {
    return live_mis_;
  }
  [[nodiscard]] std::span<const int> live_processing_elements()
      const noexcept {
    return live_pes_;
  }

  /// NoC phase-cache effectiveness counters (see AccelConfig::
  /// reuse_noc_phases); accumulated across every simulate() call on this
  /// instance.
  [[nodiscard]] std::uint64_t noc_phase_cache_hits() const;
  [[nodiscard]] std::uint64_t noc_phase_cache_misses() const;

  /// Validate the configuration: positive mesh extents, buffer depth,
  /// packet size, word widths, clock and cycle budgets; DRAM efficiency in
  /// (0, 1]. Throws nocw::CheckError on violation. Runs once at
  /// construction, so a simulator that exists is a simulator whose derived
  /// rates (flits/word, words/cycle, seconds/cycle) are all well-defined.
  void check_invariants() const;

 private:
  struct NocPhase {
    units::FracCycles cycles;
    power::EventCounts events;
    obs::NocObservation observation;
  };
  /// Cycle-accurate scatter+gather for the layer's flit volumes, window
  /// sampled when large; memoized by volume when cacheable.
  [[nodiscard]] NocPhase run_noc_phase(units::Flits scatter_flits,
                                       units::Flits gather_flits,
                                       std::uint32_t tag) const;

  AccelConfig cfg_;
  power::EnergyTable table_;
  /// Surviving MI/PE node ids (== the config's full sets without failover).
  std::vector<int> live_mis_;
  std::vector<int> live_pes_;
  /// Fingerprint of every fault/protection/resilience/routing knob that can
  /// change what a phase run produces. Folded into the phase-cache key so a
  /// cached result can never be replayed under a different fault scenario
  /// or routing mode (defense in depth: cfg_ is immutable per instance, but
  /// the cache key should say so rather than assume it).
  std::uint64_t env_sig_ = 0;
  /// Phase memo keyed by (scatter, gather) flit volumes plus the fault/
  /// routing environment signature. mutable + mutex: simulate() is
  /// logically const and sweep drivers share one simulator across lanes.
  mutable std::mutex cache_mu_;
  mutable std::map<std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>,
                   NocPhase>
      phase_cache_;
  mutable std::uint64_t cache_hits_ = 0;
  mutable std::uint64_t cache_misses_ = 0;
};

}  // namespace nocw::accel
