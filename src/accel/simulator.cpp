#include "accel/simulator.hpp"

#include <algorithm>
#include <cmath>

#include "noc/network.hpp"
#include "noc/traffic.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

namespace nocw::accel {

namespace {

std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}

// Synthesize time-series points for an analytic phase: `amount` units of
// work spread uniformly over [start_cycle, start_cycle + phase_cycles).
// Point count follows the sampling interval but is capped: the analytic
// profile is uniform by construction, so extra points carry no information.
void sample_phase(obs::TimeSeriesSet* sink, const char* name,
                  std::uint64_t start_cycle, units::FracCycles phase_cycles,
                  double amount, std::uint64_t interval_cycles) {
  if (sink == nullptr || amount <= 0.0 ||
      phase_cycles <= units::FracCycles{0.0}) {
    return;
  }
  const std::uint64_t span = units::round_cycles(phase_cycles).value();
  if (span == 0) return;
  constexpr std::uint64_t kMaxPointsPerPhase = 32;
  const std::uint64_t n = std::clamp<std::uint64_t>(
      span / std::max<std::uint64_t>(interval_cycles, 1), 1,
      kMaxPointsPerPhase);
  for (std::uint64_t k = 1; k <= n; ++k) {
    // Each point reports the work done since the previous one (a window
    // delta, matching the NoC engine's series semantics).
    sink->append(name, "count", start_cycle + span * k / n,
                 amount / static_cast<double>(n));
  }
}

}  // namespace

void LatencyBreakdown::check_invariants() const {
  NOCW_CHECK(std::isfinite(memory_cycles.value()));
  NOCW_CHECK(std::isfinite(comm_cycles.value()));
  NOCW_CHECK(std::isfinite(compute_cycles.value()));
  NOCW_CHECK(std::isfinite(overlap_cycles.value()));
  NOCW_CHECK_GE(memory_cycles.value(), 0.0);
  NOCW_CHECK_GE(comm_cycles.value(), 0.0);
  NOCW_CHECK_GE(compute_cycles.value(), 0.0);
  NOCW_CHECK_GE(overlap_cycles.value(), 0.0);
}

AcceleratorSim::AcceleratorSim(const AccelConfig& cfg,
                               const power::EnergyTable& table)
    : cfg_(cfg), table_(table) {
  check_invariants();
}

void AcceleratorSim::check_invariants() const {
  NOCW_CHECK_GE(cfg_.noc.width, 1);
  NOCW_CHECK_GE(cfg_.noc.height, 1);
  NOCW_CHECK_GE(cfg_.noc.buffer_depth, 1);
  NOCW_CHECK_GE(cfg_.noc.link_width_bits, 1);
  NOCW_CHECK_GE(cfg_.noc.virtual_channels, 1);
  NOCW_CHECK_GT(cfg_.noc.clock_ghz, 0.0);
  NOCW_CHECK_GT(cfg_.macs_per_pe_per_cycle, 0);
  NOCW_CHECK_GE(cfg_.pe_local_memory_bytes, 0);
  NOCW_CHECK_GT(cfg_.dram_words_per_cycle_per_mi, 0);
  NOCW_CHECK_GT(cfg_.dram_efficiency, 0.0);
  NOCW_CHECK_LE(cfg_.dram_efficiency, 1.0);
  NOCW_CHECK_GE(cfg_.dram_latency_cycles, 0);
  NOCW_CHECK_GT(cfg_.packet_flits, 0U);
  NOCW_CHECK_GT(cfg_.bits_per_weight, 0);
  NOCW_CHECK_GT(cfg_.bits_per_activation, 0);
  NOCW_CHECK_GT(cfg_.noc_window_flits, std::uint64_t{0});
  NOCW_CHECK_GT(cfg_.max_phase_cycles, std::uint64_t{0});
  NOCW_CHECK_GT(cfg_.series_interval_cycles, std::uint64_t{0});
  // Fault/protection knobs ride inside cfg_.noc; validate probabilities here
  // so a mis-set sweep fails at construction, not mid-run.
  NOCW_CHECK_GE(cfg_.noc.fault.bit_flip_probability, 0.0);
  NOCW_CHECK_LE(cfg_.noc.fault.bit_flip_probability, 1.0);
  NOCW_CHECK_GE(cfg_.noc.fault.link_fault_probability, 0.0);
  NOCW_CHECK_LE(cfg_.noc.fault.link_fault_probability, 1.0);
  NOCW_CHECK_GE(cfg_.noc.fault.router_stall_probability, 0.0);
  NOCW_CHECK_LE(cfg_.noc.fault.router_stall_probability, 1.0);
  NOCW_CHECK_GE(cfg_.noc.fault.permanent_stuck_links, 0);
  NOCW_CHECK_GE(cfg_.noc.protection.max_retries, 0);
}

AcceleratorSim::NocPhase AcceleratorSim::run_noc_phase(
    units::Flits scatter_flits, units::Flits gather_flits,
    std::uint32_t tag) const {
  NocPhase out;
  const units::Flits total = scatter_flits + gather_flits;
  if (total.value() == 0) return out;

  // Memoization: under one config the (scatter, gather) volumes fully
  // determine the compiled packet sequence and hence the phase result (the
  // tag is a diagnostics label that never reaches stats). A δ-sweep
  // re-simulates every *unchanged* layer at each grid point; the cache
  // collapses those repeats to one cycle-accurate run per distinct volume
  // pair. Bypassed when the run has per-call side channels — a time-series
  // sink or live NoC tracing must fire on every call, not once.
  const bool cacheable = cfg_.reuse_noc_phases && cfg_.series == nullptr &&
                         !NOCW_TRACE_ON(obs::kCatNoc);
  const auto key = std::make_pair(scatter_flits.value(), gather_flits.value());
  if (cacheable) {
    std::lock_guard<std::mutex> lock(cache_mu_);
    if (const auto it = phase_cache_.find(key); it != phase_cache_.end()) {
      ++cache_hits_;
      return it->second;
    }
  }

  // Window sampling: preserve the scatter/gather mix, scale volumes down so
  // the cycle-accurate run stays bounded, then scale results back up. The
  // traffic is steady-state streaming, so throughput and per-flit event
  // counts are volume-independent once past the pipeline fill.
  const units::Flits window{cfg_.noc_window_flits};
  const double scale = total > window ? window / total : 1.0;
  const units::Flits scaled_scatter{static_cast<std::uint64_t>(
      std::llround(scatter_flits.dvalue() * scale))};
  const units::Flits scaled_gather{static_cast<std::uint64_t>(
      std::llround(gather_flits.dvalue() * scale))};

  noc::Network net(cfg_.noc);
  if (cfg_.series != nullptr) {
    net.set_series_sink(cfg_.series, cfg_.series_interval_cycles);
  }
  // Scatter: each MI streams an equal share of the weights+ifmap volume,
  // round-robin over the PEs. Gather: PEs stream the ofmap back, spread over
  // the MIs. phase_traffic is the one shared definition of that compilation.
  units::Flits injected;
  {
    const auto ps = noc::phase_traffic(cfg_.noc, scaled_scatter,
                                       scaled_gather, cfg_.packet_flits, tag);
    net.add_packets(ps);
    injected = noc::total_flits(ps);
  }
  if (injected.value() == 0) return out;

  // Steady-state throughput is measured between the 25% and 75% ejection
  // marks, excluding the pipeline fill and the drain tail; the window run's
  // own cycles are kept as-is and only the *remaining* volume is charged at
  // the steady rate. For scale = 1 (full simulation) this is exact.
  std::uint64_t ejected = 0;
  std::uint64_t q1_cycle = 0;
  std::uint64_t q3_cycle = 0;
  const std::uint64_t q1_mark =
      std::max<std::uint64_t>(1, injected.value() / 4);
  const std::uint64_t q3_mark =
      std::max<std::uint64_t>(q1_mark + 1, 3 * injected.value() / 4);
  net.set_eject_hook([&](const noc::Flit&, std::uint64_t cycle) {
    ++ejected;
    if (ejected == q1_mark) q1_cycle = cycle;
    if (ejected == q3_mark) q3_cycle = cycle;
  });
  const std::uint64_t cycles = net.run_until_drained(cfg_.max_phase_cycles);
  if (net.observing()) {
    const auto links = net.link_flit_counts();
    const auto ejects = net.node_eject_counts();
    out.observation.link_flits.assign(links.begin(), links.end());
    out.observation.node_ejections.assign(ejects.begin(), ejects.end());
    out.observation.packet_latency_cycles = net.packet_latency_samples();
    out.observation.queue_depth_flits = net.queue_depth_samples();
    out.observation.window_cycles = cycles;
    out.observation.collected = true;
  }
  const units::Flits remaining = total - injected;
  double extra = 0.0;
  if (remaining.value() > 0) {
    const double span =
        q3_cycle > q1_cycle ? static_cast<double>(q3_cycle - q1_cycle) : 1.0;
    const double steady_throughput =
        static_cast<double>(q3_mark - q1_mark) / span;
    extra = remaining.dvalue() / std::max(0.1, steady_throughput);
  }
  out.cycles = units::FracCycles{static_cast<double>(cycles) + extra};
  const double up = total / injected;
  const auto& st = net.stats();
  out.events.router_traversals = static_cast<std::uint64_t>(
      std::llround(static_cast<double>(st.router_traversals) * up));
  out.events.link_traversals = static_cast<std::uint64_t>(
      std::llround(static_cast<double>(st.link_traversals) * up));
  out.events.buffer_writes = static_cast<std::uint64_t>(
      std::llround(static_cast<double>(st.buffer_writes) * up));
  out.events.buffer_reads = static_cast<std::uint64_t>(
      std::llround(static_cast<double>(st.buffer_reads) * up));
  out.events.crc_flit_events = static_cast<std::uint64_t>(
      std::llround(static_cast<double>(st.crc_flit_events) * up));
  if (cacheable) {
    std::lock_guard<std::mutex> lock(cache_mu_);
    ++cache_misses_;
    phase_cache_.emplace(key, out);
  }
  return out;
}

std::uint64_t AcceleratorSim::noc_phase_cache_hits() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return cache_hits_;
}

std::uint64_t AcceleratorSim::noc_phase_cache_misses() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return cache_misses_;
}

LayerResult AcceleratorSim::simulate_layer(
    const LayerSummary& layer, const LayerCompression* compression,
    std::uint32_t tag) const {
  LayerResult r;
  r.name = layer.name;
  r.type = layer.type;
  if (!layer.traffic_bearing) return r;

  const auto word_bits = static_cast<std::uint64_t>(cfg_.noc.link_width_bits);
  const units::Bits weight_bits{
      compression ? compression->compressed_bits
                  : layer.weight_count *
                        static_cast<std::uint64_t>(cfg_.bits_per_weight)};
  r.weight_stream_bits = weight_bits;

  const units::Bits ifmap_bits{
      layer.ifmap_elems *
      static_cast<std::uint64_t>(cfg_.bits_per_activation)};
  const units::Bits ofmap_bits{
      layer.ofmap_elems *
      static_cast<std::uint64_t>(cfg_.bits_per_activation)};

  const units::Words weight_words = units::to_words(weight_bits, word_bits);
  const units::Words ifmap_words = units::to_words(ifmap_bits, word_bits);
  const units::Words ofmap_words = units::to_words(ofmap_bits, word_bits);

  // --- (1)/(4) main memory ---
  const units::Words dram_words = weight_words + ifmap_words + ofmap_words;
  const std::uint64_t mi_count = cfg_.noc.memory_interface_nodes().size();
  const double dram_rate =
      static_cast<double>(cfg_.dram_words_per_cycle_per_mi) *
      static_cast<double>(mi_count) * cfg_.dram_efficiency;
  r.latency.memory_cycles = units::FracCycles{
      dram_words.dvalue() / dram_rate + cfg_.dram_latency_cycles};

  // --- (2) NoC scatter + gather (one link-width word is one flit) ---
  const units::Flits scatter_flits =
      units::flits_of(weight_words + ifmap_words);
  const units::Flits gather_flits = units::flits_of(ofmap_words);
  r.total_flits = scatter_flits + gather_flits;
  const std::uint64_t mem_off =
      units::round_cycles(r.latency.memory_cycles).value();
  NocPhase phase;
  {
    // The network stamps phase-local cycles; shift its events past the DRAM
    // phase so the whole layer shares one timeline.
    obs::ScopedTimeBase noc_base(obs::time_base() + mem_off);
    phase = run_noc_phase(scatter_flits, gather_flits, tag);
  }
  r.noc_obs = std::move(phase.observation);
  r.latency.comm_cycles = phase.cycles;

  // --- (3) compute ---
  const std::uint64_t pe_count = cfg_.noc.pe_nodes().size();
  const std::uint64_t throughput =
      pe_count * static_cast<std::uint64_t>(cfg_.macs_per_pe_per_cycle);
  r.latency.compute_cycles = units::FracCycles{static_cast<double>(
      ceil_div(layer.macs + layer.ops,
               std::max<std::uint64_t>(throughput, 1)))};

  r.latency.overlap_cycles =
      std::max({r.latency.memory_cycles, r.latency.comm_cycles,
                r.latency.compute_cycles});

  // --- events -> energy ---
  power::EventCounts ev = phase.events;
  ev.dram_accesses = dram_words.value();
  ev.macs = layer.macs + layer.ops;
  ev.decompress_steps = compression ? compression->weight_count : 0;
  // Local SRAM: incoming words buffered once (one scatter flit carries
  // exactly one word, hence the explicit .value() unit hand-off), operands
  // read per MAC (two fp32 operands per MAC = one 64-bit word). The sum is
  // a dimensionless event count, so the raw magnitudes are the right form.
  // nocw-analyze: allow(units.value-launder)
  ev.sram_writes = scatter_flits.value() + ofmap_words.value();
  ev.sram_reads = layer.macs + layer.ops + ofmap_words.value();

  const units::FracCycles layer_cycles =
      cfg_.overlap_phases ? r.latency.overlap_cycles : r.latency.total();
  const units::Seconds seconds =
      units::seconds_at(layer_cycles, cfg_.noc.clock_ghz);
  const power::PlatformShape shape{cfg_.noc.node_count(),
                                   static_cast<int>(pe_count)};
  r.energy = power::annotate(ev, seconds, table_, shape);
  r.latency.check_invariants();
  r.energy.check_invariants();

  // Phase spans on the layer-local timeline (the caller's ScopedTimeBase
  // shifts them onto the inference-global one). Tracks: 0 = layer markers,
  // 1 = DRAM, 2 = NoC, 3 = MAC lanes, 4 = decompressors.
  const auto dur_of = [](units::FracCycles cycles) {
    return units::round_cycles(cycles).value();
  };
  const std::uint64_t comm_off = mem_off + dur_of(r.latency.comm_cycles);
  // Time-series activity for the analytic phases (the NoC phase sampled
  // itself cycle-by-cycle above). All on the inference-global timeline.
  if (cfg_.series != nullptr) {
    const std::uint64_t base = obs::time_base();
    sample_phase(cfg_.series, "accel.dram_words", base,
                 r.latency.memory_cycles, dram_words.dvalue(),
                 cfg_.series_interval_cycles);
    sample_phase(cfg_.series, "accel.macs", base + comm_off,
                 r.latency.compute_cycles,
                 static_cast<double>(layer.macs + layer.ops),
                 cfg_.series_interval_cycles);
    if (compression) {
      sample_phase(cfg_.series, "accel.decompress_weights", base + comm_off,
                   r.latency.compute_cycles,
                   static_cast<double>(compression->weight_count),
                   cfg_.series_interval_cycles);
    }
  }
  NOCW_TRACE_SPAN(obs::kCatMem, "dram", obs::kPidAccel, 1, 0,
                  dur_of(r.latency.memory_cycles));
  NOCW_TRACE_SPAN_ARG(obs::kCatNoc, "noc", obs::kPidAccel, 2, mem_off,
                      dur_of(r.latency.comm_cycles), "flits",
                      r.total_flits.dvalue());
  NOCW_TRACE_SPAN_ARG(obs::kCatMac, "mac", obs::kPidAccel, 3, comm_off,
                      dur_of(r.latency.compute_cycles), "macs",
                      static_cast<double>(layer.macs + layer.ops));
  if (compression) {
    // Decompressors reconstruct one weight per cycle per PE, overlapped
    // with the MAC phase (Fig. 6: decompression never stalls the stream).
    NOCW_TRACE_SPAN_ARG(obs::kCatDecomp, "decompress", obs::kPidAccel, 4,
                        comm_off, dur_of(r.latency.compute_cycles), "weights",
                        static_cast<double>(compression->weight_count));
  }
  NOCW_TRACE_SPAN(obs::kCatLayer, "layer:" + r.name, obs::kPidAccel, 0, 0,
                  dur_of(r.latency.total()));
  return r;
}

InferenceResult AcceleratorSim::simulate(const ModelSummary& summary,
                                         const CompressionPlan* plan) const {
  InferenceResult result;
  result.model_name = summary.model_name;
  // Layers stack on one inference-global timeline: each layer's spans are
  // emitted relative to its own start, so advance the thread-local time base
  // by the accumulated latency before simulating it.
  std::uint64_t clock = 0;
  const std::uint64_t outer_base = obs::time_base();
  for (std::size_t i = 0; i < summary.layers.size(); ++i) {
    const auto& layer = summary.layers[i];
    const LayerCompression* lc = nullptr;
    if (plan) {
      const auto it = plan->find(layer.name);
      if (it != plan->end()) lc = &it->second;
    }
    LayerResult lr;
    {
      obs::ScopedTimeBase layer_base(outer_base + clock);
      // The layer ordinal tags the layer's NoC packets (drain-timeout
      // diagnostics name the layer, not just node ids).
      lr = simulate_layer(layer, lc, static_cast<std::uint32_t>(i));
    }
    if (!layer.traffic_bearing) continue;
    clock += units::round_cycles(lr.latency.total()).value();
    result.latency += lr.latency;
    result.energy += lr.energy;
    result.noc_obs.merge(lr.noc_obs);
    result.layers.push_back(std::move(lr));
  }
  return result;
}

}  // namespace nocw::accel
