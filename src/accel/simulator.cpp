#include "accel/simulator.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "noc/fault.hpp"
#include "noc/network.hpp"
#include "noc/routing.hpp"
#include "noc/traffic.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

namespace nocw::accel {

namespace {

std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}

std::uint64_t sig_mix(std::uint64_t h, std::uint64_t v) noexcept {
  h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  return h;
}

/// Fingerprint of the NoC knobs that can change a phase run's outcome
/// (fault pattern, protection, resilience, routing). Pure config mixing —
/// deliberately not noc::fault_hash, which is reserved for fault sampling.
std::uint64_t env_signature(const noc::NocConfig& n) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  h = sig_mix(h, std::bit_cast<std::uint64_t>(n.fault.bit_flip_probability));
  h = sig_mix(h, std::bit_cast<std::uint64_t>(n.fault.link_fault_probability));
  h = sig_mix(h,
              std::bit_cast<std::uint64_t>(n.fault.router_stall_probability));
  h = sig_mix(h, static_cast<std::uint64_t>(n.fault.permanent_stuck_links));
  h = sig_mix(h, static_cast<std::uint64_t>(n.fault.permanent_link_outages));
  h = sig_mix(h, static_cast<std::uint64_t>(n.fault.permanent_router_outages));
  h = sig_mix(h, n.fault.seed);
  h = sig_mix(h, n.protection.crc ? 1u : 0u);
  h = sig_mix(h, static_cast<std::uint64_t>(n.protection.max_retries));
  h = sig_mix(h, n.protection.retry_backoff_cycles);
  h = sig_mix(h, n.protection.fail_on_drop ? 1u : 0u);
  h = sig_mix(h, static_cast<std::uint64_t>(n.resilience.route_mode));
  h = sig_mix(h, n.resilience.assume_known_outages ? 1u : 0u);
  h = sig_mix(h, n.resilience.escalate ? 1u : 0u);
  h = sig_mix(h, n.resilience.stall_threshold_cycles);
  h = sig_mix(h,
              static_cast<std::uint64_t>(n.resilience.retry_suspicion_threshold));
  h = sig_mix(h, static_cast<std::uint64_t>(n.routing));
  return h;
}

// Synthesize time-series points for an analytic phase: `amount` units of
// work spread uniformly over [start_cycle, start_cycle + phase_cycles).
// Point count follows the sampling interval but is capped: the analytic
// profile is uniform by construction, so extra points carry no information.
void sample_phase(obs::TimeSeriesSet* sink, const char* name,
                  std::uint64_t start_cycle, units::FracCycles phase_cycles,
                  double amount, std::uint64_t interval_cycles) {
  if (sink == nullptr || amount <= 0.0 ||
      phase_cycles <= units::FracCycles{0.0}) {
    return;
  }
  const std::uint64_t span = units::round_cycles(phase_cycles).value();
  if (span == 0) return;
  constexpr std::uint64_t kMaxPointsPerPhase = 32;
  const std::uint64_t n = std::clamp<std::uint64_t>(
      span / std::max<std::uint64_t>(interval_cycles, 1), 1,
      kMaxPointsPerPhase);
  for (std::uint64_t k = 1; k <= n; ++k) {
    // Each point reports the work done since the previous one (a window
    // delta, matching the NoC engine's series semantics).
    sink->append(name, "count", start_cycle + span * k / n,
                 amount / static_cast<double>(n));
  }
}

}  // namespace

void LatencyBreakdown::check_invariants() const {
  NOCW_CHECK(std::isfinite(memory_cycles.value()));
  NOCW_CHECK(std::isfinite(comm_cycles.value()));
  NOCW_CHECK(std::isfinite(compute_cycles.value()));
  NOCW_CHECK(std::isfinite(overlap_cycles.value()));
  NOCW_CHECK_GE(memory_cycles.value(), 0.0);
  NOCW_CHECK_GE(comm_cycles.value(), 0.0);
  NOCW_CHECK_GE(compute_cycles.value(), 0.0);
  NOCW_CHECK_GE(overlap_cycles.value(), 0.0);
}

AcceleratorSim::AcceleratorSim(const AccelConfig& cfg,
                               const power::EnergyTable& table)
    : cfg_(cfg), table_(table) {
  check_invariants();
  live_mis_ = cfg_.noc.memory_interface_nodes();
  live_pes_ = cfg_.noc.pe_nodes();
  if (cfg_.noc.resilience.adaptive()) {
    // PE/MI failover: endpoints on permanently-dead routers get no traffic
    // shares and contribute no throughput; survivors absorb their work.
    // Derived once, from the same seeded placement the network uses, so a
    // degraded run is deterministic for any thread count.
    const noc::FaultModel fm(cfg_.noc.fault, cfg_.noc.node_count(),
                             cfg_.noc.width);
    const auto dead = fm.dead_routers();
    if (!dead.empty() || !fm.dead_links().empty()) {
      const auto drop_dead = [&](std::vector<int>& nodes) {
        std::erase_if(nodes, [&](int node) {
          return std::binary_search(dead.begin(), dead.end(), node);
        });
      };
      drop_dead(live_mis_);
      drop_dead(live_pes_);
      // Transit connectivity: the west-first turn model cannot always
      // detour around a dead transit router/link (westward travel must be
      // a path prefix), so a live endpoint can still be unreachable from a
      // live MI — and phase traffic must be lossless, never silently
      // dropped as undeliverable. Drop MIs that cannot exchange data with
      // any PE, then PEs not mutually reachable with every remaining MI.
      noc::HealthMap health(cfg_.noc.node_count());
      for (const int link : fm.dead_links()) {
        health.mark_link_down(link / noc::kNumPorts, link % noc::kNumPorts);
      }
      for (const int rid : dead) health.mark_router_down(rid);
      noc::RouteTable table(cfg_.noc, cfg_.noc.resilience.route_mode);
      table.rebuild(health);
      const auto mutual = [&](int a, int b) {
        return table.reachable(a, b) && table.reachable(b, a);
      };
      const auto mutual_pe_count = [&](int mi) {
        std::size_t n = 0;
        for (const int pe : live_pes_) n += mutual(mi, pe) ? 1 : 0;
        return n;
      };
      // Keep the PEs every surviving MI can exchange data with. When that
      // set is empty the outage has split the mesh from the MIs' point of
      // view (e.g. a dead column-0 router strands one corner MI on the
      // wrong side of every west-chain); sacrificing the most-constraining
      // MI — fewest mutually reachable PEs, highest node id on ties — and
      // retrying trades one memory port for a usable compute pool. The
      // walk is a pure function of the fault placement: deterministic.
      while (true) {
        std::vector<int> ok;
        for (const int pe : live_pes_) {
          if (std::all_of(live_mis_.begin(), live_mis_.end(),
                          [&](int mi) { return mutual(mi, pe); })) {
            ok.push_back(pe);
          }
        }
        if (!ok.empty() || live_mis_.size() <= 1) {
          live_pes_ = std::move(ok);
          break;
        }
        int worst = live_mis_.front();
        std::size_t worst_count = mutual_pe_count(worst);
        for (const int mi : live_mis_) {
          const std::size_t count = mutual_pe_count(mi);
          if (count < worst_count ||
              (count == worst_count && mi > worst)) {
            worst = mi;
            worst_count = count;
          }
        }
        std::erase(live_mis_, worst);
      }
      // No surviving MI (or PE) means the workload cannot be remapped —
      // degradation has a floor, and silently dividing by zero is not it.
      NOCW_CHECK(!live_mis_.empty());
      NOCW_CHECK(!live_pes_.empty());
    }
  }
  env_sig_ = env_signature(cfg_.noc);
}

void AcceleratorSim::check_invariants() const {
  NOCW_CHECK_GE(cfg_.noc.width, 1);
  NOCW_CHECK_GE(cfg_.noc.height, 1);
  NOCW_CHECK_GE(cfg_.noc.buffer_depth, 1);
  NOCW_CHECK_GE(cfg_.noc.link_width_bits, 1);
  NOCW_CHECK_GE(cfg_.noc.virtual_channels, 1);
  NOCW_CHECK_GT(cfg_.noc.clock_ghz, 0.0);
  NOCW_CHECK_GT(cfg_.macs_per_pe_per_cycle, 0);
  NOCW_CHECK_GE(cfg_.pe_local_memory_bytes, 0);
  NOCW_CHECK_GT(cfg_.dram_words_per_cycle_per_mi, 0);
  NOCW_CHECK_GT(cfg_.dram_efficiency, 0.0);
  NOCW_CHECK_LE(cfg_.dram_efficiency, 1.0);
  NOCW_CHECK_GE(cfg_.dram_latency_cycles, 0);
  NOCW_CHECK_GT(cfg_.packet_flits, 0U);
  NOCW_CHECK_GT(cfg_.bits_per_weight, 0);
  NOCW_CHECK_GT(cfg_.bits_per_activation, 0);
  NOCW_CHECK_GT(cfg_.noc_window_flits, std::uint64_t{0});
  NOCW_CHECK_GT(cfg_.max_phase_cycles, std::uint64_t{0});
  NOCW_CHECK_GT(cfg_.series_interval_cycles, std::uint64_t{0});
  // Fault/protection knobs ride inside cfg_.noc; validate probabilities here
  // so a mis-set sweep fails at construction, not mid-run.
  NOCW_CHECK_GE(cfg_.noc.fault.bit_flip_probability, 0.0);
  NOCW_CHECK_LE(cfg_.noc.fault.bit_flip_probability, 1.0);
  NOCW_CHECK_GE(cfg_.noc.fault.link_fault_probability, 0.0);
  NOCW_CHECK_LE(cfg_.noc.fault.link_fault_probability, 1.0);
  NOCW_CHECK_GE(cfg_.noc.fault.router_stall_probability, 0.0);
  NOCW_CHECK_LE(cfg_.noc.fault.router_stall_probability, 1.0);
  NOCW_CHECK_GE(cfg_.noc.fault.permanent_stuck_links, 0);
  NOCW_CHECK_GE(cfg_.noc.fault.permanent_link_outages, 0);
  NOCW_CHECK_GE(cfg_.noc.fault.permanent_router_outages, 0);
  NOCW_CHECK_GE(cfg_.noc.protection.max_retries, 0);
  NOCW_CHECK(!cfg_.noc.resilience.escalate || cfg_.noc.resilience.adaptive());
  NOCW_CHECK_GE(cfg_.noc.resilience.stall_threshold_cycles, std::uint64_t{1});
  NOCW_CHECK_GE(cfg_.noc.resilience.retry_suspicion_threshold, 1);
}

AcceleratorSim::NocPhase AcceleratorSim::run_noc_phase(
    units::Flits scatter_flits, units::Flits gather_flits,
    std::uint32_t tag) const {
  NocPhase out;
  const units::Flits total = scatter_flits + gather_flits;
  if (total.value() == 0) return out;

  // Memoization: under one config the (scatter, gather) volumes fully
  // determine the compiled packet sequence and hence the phase result (the
  // tag is a diagnostics label that never reaches stats). A δ-sweep
  // re-simulates every *unchanged* layer at each grid point; the cache
  // collapses those repeats to one cycle-accurate run per distinct volume
  // pair. Bypassed when the run has per-call side channels — a time-series
  // sink or live NoC tracing must fire on every call, not once.
  const bool cacheable = cfg_.reuse_noc_phases && cfg_.series == nullptr &&
                         !NOCW_TRACE_ON(obs::kCatNoc);
  const auto key = std::make_tuple(scatter_flits.value(),
                                   gather_flits.value(), env_sig_);
  if (cacheable) {
    std::lock_guard<std::mutex> lock(cache_mu_);
    if (const auto it = phase_cache_.find(key); it != phase_cache_.end()) {
      ++cache_hits_;
      return it->second;
    }
  }

  // Window sampling: preserve the scatter/gather mix, scale volumes down so
  // the cycle-accurate run stays bounded, then scale results back up. The
  // traffic is steady-state streaming, so throughput and per-flit event
  // counts are volume-independent once past the pipeline fill.
  const units::Flits window{cfg_.noc_window_flits};
  const double scale = total > window ? window / total : 1.0;
  const units::Flits scaled_scatter{static_cast<std::uint64_t>(
      std::llround(scatter_flits.dvalue() * scale))};
  const units::Flits scaled_gather{static_cast<std::uint64_t>(
      std::llround(gather_flits.dvalue() * scale))};

  noc::Network net(cfg_.noc);
  if (cfg_.series != nullptr) {
    net.set_series_sink(cfg_.series, cfg_.series_interval_cycles);
  }
  // Scatter: each MI streams an equal share of the weights+ifmap volume,
  // round-robin over the PEs. Gather: PEs stream the ofmap back, spread over
  // the MIs. phase_traffic is the one shared definition of that compilation.
  units::Flits injected;
  {
    // Compile over the *live* endpoint lists (== the full sets without
    // failover), so a degraded layer's traffic never targets a dead router.
    const auto ps =
        noc::phase_traffic(cfg_.noc, live_mis_, live_pes_, scaled_scatter,
                           scaled_gather, cfg_.packet_flits, tag);
    net.add_packets(ps);
    injected = noc::total_flits(ps);
  }
  if (injected.value() == 0) return out;

  // Steady-state throughput is measured between the 25% and 75% ejection
  // marks, excluding the pipeline fill and the drain tail; the window run's
  // own cycles are kept as-is and only the *remaining* volume is charged at
  // the steady rate. For scale = 1 (full simulation) this is exact.
  std::uint64_t ejected = 0;
  std::uint64_t q1_cycle = 0;
  std::uint64_t q3_cycle = 0;
  const std::uint64_t q1_mark =
      std::max<std::uint64_t>(1, injected.value() / 4);
  const std::uint64_t q3_mark =
      std::max<std::uint64_t>(q1_mark + 1, 3 * injected.value() / 4);
  net.set_eject_hook([&](const noc::Flit&, std::uint64_t cycle) {
    ++ejected;
    if (ejected == q1_mark) q1_cycle = cycle;
    if (ejected == q3_mark) q3_cycle = cycle;
  });
  const std::uint64_t cycles = net.run_until_drained(cfg_.max_phase_cycles);
  if (net.observing()) {
    const auto links = net.link_flit_counts();
    const auto ejects = net.node_eject_counts();
    out.observation.link_flits.assign(links.begin(), links.end());
    out.observation.node_ejections.assign(ejects.begin(), ejects.end());
    out.observation.packet_latency_cycles = net.packet_latency_samples();
    out.observation.queue_depth_flits = net.queue_depth_samples();
    out.observation.window_cycles = cycles;
    out.observation.collected = true;
  }
  const units::Flits remaining = total - injected;
  double extra = 0.0;
  if (remaining.value() > 0) {
    const double span =
        q3_cycle > q1_cycle ? static_cast<double>(q3_cycle - q1_cycle) : 1.0;
    const double steady_throughput =
        static_cast<double>(q3_mark - q1_mark) / span;
    extra = remaining.dvalue() / std::max(0.1, steady_throughput);
  }
  out.cycles = units::FracCycles{static_cast<double>(cycles) + extra};
  const double up = total / injected;
  const auto& st = net.stats();
  out.events.router_traversals = static_cast<std::uint64_t>(
      std::llround(static_cast<double>(st.router_traversals) * up));
  out.events.link_traversals = static_cast<std::uint64_t>(
      std::llround(static_cast<double>(st.link_traversals) * up));
  out.events.buffer_writes = static_cast<std::uint64_t>(
      std::llround(static_cast<double>(st.buffer_writes) * up));
  out.events.buffer_reads = static_cast<std::uint64_t>(
      std::llround(static_cast<double>(st.buffer_reads) * up));
  out.events.crc_flit_events = static_cast<std::uint64_t>(
      std::llround(static_cast<double>(st.crc_flit_events) * up));
  if (cacheable) {
    std::lock_guard<std::mutex> lock(cache_mu_);
    ++cache_misses_;
    phase_cache_.emplace(key, out);
  }
  return out;
}

std::uint64_t AcceleratorSim::noc_phase_cache_hits() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return cache_hits_;
}

std::uint64_t AcceleratorSim::noc_phase_cache_misses() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return cache_misses_;
}

LayerResult AcceleratorSim::simulate_layer(
    const LayerSummary& layer, const LayerCompression* compression,
    std::uint32_t tag) const {
  LayerResult r;
  r.name = layer.name;
  r.type = layer.type;
  if (!layer.traffic_bearing) return r;

  const auto word_bits = static_cast<std::uint64_t>(cfg_.noc.link_width_bits);
  const units::Bits weight_bits{
      compression ? compression->compressed_bits
                  : layer.weight_count *
                        static_cast<std::uint64_t>(cfg_.bits_per_weight)};
  r.weight_stream_bits = weight_bits;

  const units::Bits ifmap_bits{
      layer.ifmap_elems *
      static_cast<std::uint64_t>(cfg_.bits_per_activation)};
  const units::Bits ofmap_bits{
      layer.ofmap_elems *
      static_cast<std::uint64_t>(cfg_.bits_per_activation)};

  const units::Words weight_words = units::to_words(weight_bits, word_bits);
  const units::Words ifmap_words = units::to_words(ifmap_bits, word_bits);
  const units::Words ofmap_words = units::to_words(ofmap_bits, word_bits);

  // --- (1)/(4) main memory ---
  const units::Words dram_words = weight_words + ifmap_words + ofmap_words;
  const std::uint64_t mi_count = live_mis_.size();
  const double dram_rate =
      static_cast<double>(cfg_.dram_words_per_cycle_per_mi) *
      static_cast<double>(mi_count) * cfg_.dram_efficiency;
  r.latency.memory_cycles = units::FracCycles{
      dram_words.dvalue() / dram_rate + cfg_.dram_latency_cycles};

  // --- (2) NoC scatter + gather (one link-width word is one flit) ---
  const units::Flits scatter_flits =
      units::flits_of(weight_words + ifmap_words);
  const units::Flits gather_flits = units::flits_of(ofmap_words);
  r.total_flits = scatter_flits + gather_flits;
  const std::uint64_t mem_off =
      units::round_cycles(r.latency.memory_cycles).value();
  NocPhase phase;
  {
    // The network stamps phase-local cycles; shift its events past the DRAM
    // phase so the whole layer shares one timeline.
    obs::ScopedTimeBase noc_base(obs::time_base() + mem_off);
    phase = run_noc_phase(scatter_flits, gather_flits, tag);
  }
  r.noc_obs = std::move(phase.observation);
  r.latency.comm_cycles = phase.cycles;

  // --- (3) compute ---
  const std::uint64_t pe_count = live_pes_.size();
  const std::uint64_t throughput =
      pe_count * static_cast<std::uint64_t>(cfg_.macs_per_pe_per_cycle);
  r.latency.compute_cycles = units::FracCycles{static_cast<double>(
      ceil_div(layer.macs + layer.ops,
               std::max<std::uint64_t>(throughput, 1)))};

  r.latency.overlap_cycles =
      std::max({r.latency.memory_cycles, r.latency.comm_cycles,
                r.latency.compute_cycles});

  // --- events -> energy ---
  power::EventCounts ev = phase.events;
  ev.dram_accesses = dram_words.value();
  ev.macs = layer.macs + layer.ops;
  ev.decompress_steps = compression ? compression->weight_count : 0;
  // Local SRAM: incoming words buffered once (one scatter flit carries
  // exactly one word, hence the explicit .value() unit hand-off), operands
  // read per MAC (two fp32 operands per MAC = one 64-bit word). The sum is
  // a dimensionless event count, so the raw magnitudes are the right form.
  // nocw-analyze: allow(units.value-launder)
  ev.sram_writes = scatter_flits.value() + ofmap_words.value();
  ev.sram_reads = layer.macs + layer.ops + ofmap_words.value();

  const units::FracCycles layer_cycles =
      cfg_.overlap_phases ? r.latency.overlap_cycles : r.latency.total();
  const units::Seconds seconds =
      units::seconds_at(layer_cycles, cfg_.noc.clock_ghz);
  const power::PlatformShape shape{cfg_.noc.node_count(),
                                   static_cast<int>(pe_count)};
  r.energy = power::annotate(ev, seconds, table_, shape);
  r.latency.check_invariants();
  r.energy.check_invariants();

  // Phase spans on the layer-local timeline (the caller's ScopedTimeBase
  // shifts them onto the inference-global one). Tracks: 0 = layer markers,
  // 1 = DRAM, 2 = NoC, 3 = MAC lanes, 4 = decompressors.
  const auto dur_of = [](units::FracCycles cycles) {
    return units::round_cycles(cycles).value();
  };
  const std::uint64_t comm_off = mem_off + dur_of(r.latency.comm_cycles);
  // Time-series activity for the analytic phases (the NoC phase sampled
  // itself cycle-by-cycle above). All on the inference-global timeline.
  if (cfg_.series != nullptr) {
    const std::uint64_t base = obs::time_base();
    sample_phase(cfg_.series, "accel.dram_words", base,
                 r.latency.memory_cycles, dram_words.dvalue(),
                 cfg_.series_interval_cycles);
    sample_phase(cfg_.series, "accel.macs", base + comm_off,
                 r.latency.compute_cycles,
                 static_cast<double>(layer.macs + layer.ops),
                 cfg_.series_interval_cycles);
    if (compression) {
      sample_phase(cfg_.series, "accel.decompress_weights", base + comm_off,
                   r.latency.compute_cycles,
                   static_cast<double>(compression->weight_count),
                   cfg_.series_interval_cycles);
    }
  }
  NOCW_TRACE_SPAN(obs::kCatMem, "dram", obs::kPidAccel, 1, 0,
                  dur_of(r.latency.memory_cycles));
  NOCW_TRACE_SPAN_ARG(obs::kCatNoc, "noc", obs::kPidAccel, 2, mem_off,
                      dur_of(r.latency.comm_cycles), "flits",
                      r.total_flits.dvalue());
  NOCW_TRACE_SPAN_ARG(obs::kCatMac, "mac", obs::kPidAccel, 3, comm_off,
                      dur_of(r.latency.compute_cycles), "macs",
                      static_cast<double>(layer.macs + layer.ops));
  if (compression) {
    // Decompressors reconstruct one weight per cycle per PE, overlapped
    // with the MAC phase (Fig. 6: decompression never stalls the stream).
    NOCW_TRACE_SPAN_ARG(obs::kCatDecomp, "decompress", obs::kPidAccel, 4,
                        comm_off, dur_of(r.latency.compute_cycles), "weights",
                        static_cast<double>(compression->weight_count));
  }
  NOCW_TRACE_SPAN(obs::kCatLayer, "layer:" + r.name, obs::kPidAccel, 0, 0,
                  dur_of(r.latency.total()));
  return r;
}

InferenceResult AcceleratorSim::simulate(const ModelSummary& summary,
                                         const CompressionPlan* plan) const {
  InferenceResult result;
  result.model_name = summary.model_name;
  // Layers stack on one inference-global timeline: each layer's spans are
  // emitted relative to its own start, so advance the thread-local time base
  // by the accumulated latency before simulating it.
  std::uint64_t clock = 0;
  const std::uint64_t outer_base = obs::time_base();
  for (std::size_t i = 0; i < summary.layers.size(); ++i) {
    const auto& layer = summary.layers[i];
    const LayerCompression* lc = nullptr;
    if (plan) {
      const auto it = plan->find(layer.name);
      if (it != plan->end()) lc = &it->second;
    }
    LayerResult lr;
    {
      obs::ScopedTimeBase layer_base(outer_base + clock);
      // The layer ordinal tags the layer's NoC packets (drain-timeout
      // diagnostics name the layer, not just node ids).
      lr = simulate_layer(layer, lc, static_cast<std::uint32_t>(i));
    }
    if (!layer.traffic_bearing) continue;
    clock += units::round_cycles(lr.latency.total()).value();
    result.latency += lr.latency;
    result.energy += lr.energy;
    result.noc_obs.merge(lr.noc_obs);
    result.layers.push_back(std::move(lr));
  }
  return result;
}

CompressionPlan resident_weights_plan(const ModelSummary& summary) {
  CompressionPlan plan;
  for (const LayerSummary& layer : summary.layers) {
    if (!layer.traffic_bearing || layer.weight_count == 0) continue;
    // compressed_bits = 0: no weight stream to fetch or scatter;
    // weight_count = 0: no decompress steps (nothing was encoded).
    plan[layer.name] = LayerCompression{0, 0};
  }
  return plan;
}

}  // namespace nocw::accel
