// ServeSim: the request-level driver tying arrivals, admission, scheduling,
// batching and the accelerator together on one cycle timeline.
//
// Event loop (DESIGN.md §14): the clock jumps between the only cycles at
// which anything can change — the next arrival, the batching deadline of
// the oldest queued request, and the completion of the in-flight batch.
// At each decision point, in fixed order: (1) arrivals due at or before
// `now` are admitted (or shed, typed and counted), (2) a finished batch
// retires and its requests' latencies are recorded, (3) if the accelerator
// is idle and the queue can start a batch (max_batch reached, the oldest
// request has waited max_wait, or no arrivals remain), the scheduler picks
// a seed request and up to max_batch-1 more *same-class* requests join it
// in arrival order.
//
// Service cost comes from the per-class ServiceProfile the constructor
// precomputes through the audited AcceleratorSim (the [serve] lint rule
// pins direct simulate() calls to this driver): a batch of n costs
// full + (n-1)*marginal cycles. The loop itself is serial and pure — the
// only parallelism lives inside AcceleratorSim, which is bit-identical
// across NOCW_THREADS, so a whole serving run diffs clean across {1,2,8}
// threads and repeated runs.
//
// Observability: enqueue/shed instants, per-batch spans and per-request
// latency spans go through the obs tracer (category "serve", pid
// kPidServe, tid = class id); when tracing is live the driver re-simulates
// each batch seed under ScopedTimeBase(start_cycle), so the accelerator's
// own layer/phase spans land stitched inside the batch span on the global
// serving timeline (a trace-only replay: results are discarded, timing
// always comes from the profiles, and simulation is pure, so enabling it
// cannot change any number). Queue depth is sampled to an optional
// TimeSeriesSet (unit "requests") at every depth change.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "accel/simulator.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"
#include "serve/arrival.hpp"
#include "serve/queue.hpp"
#include "serve/reqtrace.hpp"
#include "serve/request.hpp"
#include "serve/scheduler.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace nocw::serve {

struct BatchPolicy {
  /// Max same-class requests dispatched together.
  std::uint64_t max_batch = 4;
  /// Max cycles the oldest queued request waits before a batch starts
  /// regardless of its fill level.
  units::Cycles max_wait{50'000};
};

struct ServeConfig {
  accel::AccelConfig accel;  ///< the device every class is profiled on
  QueueConfig queue;
  BatchPolicy batch;
};

/// Latency/volume statistics for one class (or the "all" aggregate).
struct ClassServeStats {
  std::string name;
  int tenant = 0;
  std::uint64_t offered = 0;    ///< arrivals generated for this class
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;       ///< typed rejections (queue_full)
  std::uint64_t completed = 0;
  double shed_rate = 0.0;       ///< shed / offered (0 when nothing offered)
  /// Request latency (finish - arrival) in cycles.
  TailPercentiles latency;
};

/// Optional per-run observability attachments. All pointers may be null;
/// the loop's decisions and the ServeResult are identical whether or not
/// any hook is installed (hooks observe, they never feed back).
struct RunHooks {
  /// Queue-depth timeline sink ("serve.queue_depth").
  obs::TimeSeriesSet* series = nullptr;
  /// Streaming SLO evaluation over completions/sheds.
  obs::SloMonitor* slo = nullptr;
  /// Span-tree retention (tail sample + SLO exemplars). Needs trace_seed.
  RequestTraceSink* traces = nullptr;
  /// Seed for request_trace_context root-id minting (per sweep point, so
  /// trace ids are stable across schedulers replaying one timeline).
  std::uint64_t trace_seed = 0;
};

struct ServeResult {
  std::string scheduler;
  std::vector<ClassServeStats> per_class;  ///< one per RequestClass, in order
  ClassServeStats aggregate;               ///< name "all"
  std::uint64_t batches = 0;
  double mean_batch_size = 0.0;
  /// Cycle at which the last batch finished (drain complete).
  units::Cycles makespan{0};
  /// Completed requests per wall second at the accelerator clock.
  double goodput_rps = 0.0;

  /// Conservation: offered == admitted + shed, completed == admitted (the
  /// driver drains), per-class sums match the aggregate.
  void check_invariants() const;
};

class ServeSim {
 public:
  /// Profiles every class through one shared AcceleratorSim (phase cache
  /// hot after the first class of each flit volume). Throws CheckError on
  /// an empty class set or a class whose marginal cost exceeds its full
  /// cost (the resident-weights plan can only remove work).
  ServeSim(const ServeConfig& cfg, std::vector<RequestClass> classes);

  [[nodiscard]] std::span<const RequestClass> classes() const noexcept {
    return classes_;
  }
  [[nodiscard]] std::span<const ServiceProfile> profiles() const noexcept {
    return profiles_;
  }
  [[nodiscard]] const ServeConfig& config() const noexcept { return cfg_; }

  /// Run one serving experiment: feed `arrivals` (sorted, as produced by
  /// generate_arrivals) through the queue + `scheduler` and drain. When
  /// `series` is non-null the queue-depth timeline is appended to it as
  /// "serve.queue_depth" (one run per sink: cycles restart at 0 each run).
  [[nodiscard]] ServeResult run(std::span<const Arrival> arrivals,
                                const Scheduler& scheduler,
                                obs::TimeSeriesSet* series = nullptr) const;

  /// Convenience: run with a policy made by make_scheduler(name).
  [[nodiscard]] ServeResult run(std::span<const Arrival> arrivals,
                                std::string_view scheduler_name,
                                obs::TimeSeriesSet* series = nullptr) const;

  /// Fully-hooked run: SLO windows stream through `hooks.slo`, span trees
  /// through `hooks.traces` (finish() is called on both before returning).
  /// The returned ServeResult is bit-identical to the hook-less overloads.
  [[nodiscard]] ServeResult run(std::span<const Arrival> arrivals,
                                const Scheduler& scheduler,
                                const RunHooks& hooks) const;

  /// Per-class span-layout templates (full + marginal) the trace sink's
  /// trees are synthesized from.
  [[nodiscard]] std::span<const ClassTraceTemplate> trace_templates()
      const noexcept {
    return trace_templates_;
  }

 private:
  ServeConfig cfg_;
  std::vector<RequestClass> classes_;
  std::vector<ServiceProfile> profiles_;
  std::vector<ClassTraceTemplate> trace_templates_;
  accel::AcceleratorSim sim_;
};

}  // namespace nocw::serve
