#include "serve/trace_ids.hpp"

#include "serve/arrival.hpp"

namespace nocw::serve {

obs::TraceContext request_trace_context(std::uint64_t seed,
                                        std::uint64_t request_id) noexcept {
  obs::TraceContext ctx;
  ctx.trace_id = arrival_hash(seed, kSaltTraceId, request_id, 0) | 1u;
  ctx.span_id = arrival_hash(seed, kSaltTraceId, request_id, 1) | 1u;
  ctx.parent_span_id = 0;
  return ctx;
}

}  // namespace nocw::serve
