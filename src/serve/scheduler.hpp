// Pluggable dispatch policies over the admission queue.
//
// A Scheduler picks which queued request seeds the next accelerator batch.
// Policies are pure functions of the visible queue state — no hidden
// counters, no randomness — so a sweep that replays the same arrival
// timeline through two schedulers isolates exactly the policy difference.
// Ties always break toward the oldest request (lowest queue index; the
// queue is in arrival order), which keeps every policy deterministic and
// starvation-visible rather than starvation-hidden.
//
//   fifo      oldest request first (the baseline).
//   sjf       shortest job first: cheapest class by the memoized
//             full-inference cycle cost (the PR 6 layer->traffic
//             compilation is what makes this cost free to consult).
//   priority  highest tenant_weight first, FIFO within a weight level.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "serve/queue.hpp"
#include "serve/request.hpp"

namespace nocw::serve {

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Index (into `queue.pending()`) of the request to dispatch next.
  /// Precondition: the queue is non-empty. Must be deterministic.
  [[nodiscard]] virtual std::size_t pick(
      const AdmissionQueue& queue, std::span<const RequestClass> classes,
      std::span<const ServiceProfile> profiles) const = 0;
};

/// Factory for the built-in policies: "fifo", "sjf", "priority".
/// Throws nocw::CheckError on an unknown name.
[[nodiscard]] std::unique_ptr<Scheduler> make_scheduler(
    std::string_view name);

/// Canonical policy names, in the order benches sweep them.
[[nodiscard]] std::vector<std::string> scheduler_names();

}  // namespace nocw::serve
