#include "serve/serve_sim.hpp"

#include <algorithm>
#include <optional>
#include <utility>

#include "obs/trace.hpp"
#include "obs/trace_context.hpp"
#include "serve/trace_ids.hpp"
#include "util/check.hpp"

namespace nocw::serve {

namespace {

/// The batch currently occupying the accelerator.
struct Flight {
  std::vector<Request> requests;  ///< all of one class
  std::size_t class_id = 0;
  std::uint64_t start = 0;
  std::uint64_t finish = 0;
};

}  // namespace

void ServeResult::check_invariants() const {
  std::uint64_t offered = 0;
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;
  std::uint64_t completed = 0;
  for (const ClassServeStats& c : per_class) {
    NOCW_CHECK_EQ(c.offered, c.admitted + c.shed);
    NOCW_CHECK_EQ(c.completed, c.admitted);  // the driver drains fully
    offered += c.offered;
    admitted += c.admitted;
    shed += c.shed;
    completed += c.completed;
  }
  NOCW_CHECK_EQ(aggregate.offered, offered);
  NOCW_CHECK_EQ(aggregate.admitted, admitted);
  NOCW_CHECK_EQ(aggregate.shed, shed);
  NOCW_CHECK_EQ(aggregate.completed, completed);
  NOCW_CHECK_EQ(aggregate.latency.count, completed);
}

ServeSim::ServeSim(const ServeConfig& cfg, std::vector<RequestClass> classes)
    : cfg_(cfg), classes_(std::move(classes)), sim_(cfg.accel) {
  NOCW_CHECK(!classes_.empty());
  NOCW_CHECK_GT(cfg_.batch.max_batch, 0u);
  profiles_.reserve(classes_.size());
  for (const RequestClass& cls : classes_) {
    const accel::CompressionPlan* plan =
        cls.plan.empty() ? nullptr : &cls.plan;
    const accel::InferenceResult full = sim_.simulate(cls.summary, plan);
    const accel::CompressionPlan resident =
        accel::resident_weights_plan(cls.summary);
    const accel::InferenceResult marginal =
        sim_.simulate(cls.summary, &resident);
    ServiceProfile p;
    p.full_cycles = units::round_cycles(full.latency.total());
    p.marginal_cycles = units::round_cycles(marginal.latency.total());
    p.full_energy_j = full.energy.total();
    p.marginal_energy_j = marginal.energy.total();
    NOCW_CHECK_GT(p.full_cycles.value(), 0u);
    // Residency only removes weight traffic and decompression; it can
    // never make an inference slower.
    NOCW_CHECK_LE(p.marginal_cycles.value(), p.full_cycles.value());
    profiles_.push_back(p);

    // Span-layout templates for the trace sink: the same full/marginal
    // results, flattened into the simulator's phase-span geometry once, so
    // per-request tree synthesis never re-simulates anything.
    ClassTraceTemplate tpl;
    tpl.class_name = cls.name;
    tpl.full = layout_spans(full, plan);
    tpl.marginal = layout_spans(marginal, &resident);
    trace_templates_.push_back(std::move(tpl));
  }
}

ServeResult ServeSim::run(std::span<const Arrival> arrivals,
                          std::string_view scheduler_name,
                          obs::TimeSeriesSet* series) const {
  return run(arrivals, *make_scheduler(scheduler_name), series);
}

ServeResult ServeSim::run(std::span<const Arrival> arrivals,
                          const Scheduler& scheduler,
                          obs::TimeSeriesSet* series) const {
  RunHooks hooks;
  hooks.series = series;
  return run(arrivals, scheduler, hooks);
}

ServeResult ServeSim::run(std::span<const Arrival> arrivals,
                          const Scheduler& scheduler,
                          const RunHooks& hooks) const {
  obs::TimeSeriesSet* series = hooks.series;
  // Hooks observe the stream; nothing below feeds their state back into a
  // decision, which is what keeps this overload bit-identical to the
  // hook-less one (bench/ext_reqtrace gates it).
  const bool hooked = hooks.slo != nullptr || hooks.traces != nullptr;
  const std::uint64_t max_batch = cfg_.batch.max_batch;
  const std::uint64_t max_wait = cfg_.batch.max_wait.value();

  AdmissionQueue queue(cfg_.queue, classes_.size());
  std::vector<std::vector<double>> class_latency(classes_.size());
  std::vector<double> all_latency;
  std::vector<std::uint64_t> offered(classes_.size(), 0);
  for (const Arrival& a : arrivals) {
    NOCW_CHECK_LT(a.class_id, classes_.size());
    ++offered[a.class_id];
  }

  const auto sample_depth = [&](std::uint64_t cycle) {
    if (series != nullptr) {
      series->append("serve.queue_depth", "requests", cycle,
                     static_cast<double>(queue.size()));
    }
  };

  std::uint64_t now = 0;
  std::size_t next_arrival = 0;
  std::uint64_t next_id = 0;
  std::uint64_t batches = 0;
  std::uint64_t batched_requests = 0;
  std::uint64_t makespan = 0;
  std::optional<Flight> flight;

  while (true) {
    // (1) Admit every arrival due at or before `now`. The clock only ever
    // jumps *to* event cycles, so each arrival is admitted at exactly its
    // own cycle stamp.
    while (next_arrival < arrivals.size() &&
           arrivals[next_arrival].cycle <= now) {
      const Arrival& a = arrivals[next_arrival];
      Request r;
      r.id = next_id++;
      r.class_id = a.class_id;
      r.arrival_cycle = a.cycle;
      const std::optional<RejectReason> rejected = queue.offer(r);
      if (rejected.has_value()) {
        obs::TraceContext root;
        if (hooked) root = request_trace_context(hooks.trace_seed, r.id);
        {
          const obs::ScopedTraceContext tctx(root);
          NOCW_TRACE_INSTANT_ARG(obs::kCatServe,
                                 "serve.shed:" + classes_[r.class_id].name,
                                 obs::kPidServe,
                                 static_cast<std::uint32_t>(r.class_id),
                                 a.cycle, "request",
                                 static_cast<double>(r.id));
        }
        if (hooked) {
          obs::SloIngest ingest;
          if (hooks.slo != nullptr) {
            ingest = hooks.slo->on_shed(r.class_id, a.cycle, root.trace_id);
          }
          if (hooks.traces != nullptr) {
            TraceSeed seed;
            seed.request_id = r.id;
            seed.class_id = r.class_id;
            seed.shed = true;
            seed.root = root;
            seed.arrival_cycle = a.cycle;
            hooks.traces->ingest_shed(ingest, seed);
          }
        }
      } else {
        NOCW_TRACE_INSTANT_ARG(obs::kCatServe,
                               "serve.enqueue:" + classes_[r.class_id].name,
                               obs::kPidServe,
                               static_cast<std::uint32_t>(r.class_id),
                               a.cycle, "request", static_cast<double>(r.id));
        sample_depth(a.cycle);
      }
      ++next_arrival;
    }

    // (2) Retire the in-flight batch once its finish cycle is reached.
    if (flight.has_value() && now >= flight->finish) {
      for (std::size_t j = 0; j < flight->requests.size(); ++j) {
        Request& r = flight->requests[j];
        r.finish_cycle = flight->finish;
        const std::uint64_t latency_cycles =
            r.finish_cycle - r.arrival_cycle;
        const auto latency = static_cast<double>(latency_cycles);
        class_latency[r.class_id].push_back(latency);
        all_latency.push_back(latency);
        obs::TraceContext root;
        if (hooked) root = request_trace_context(hooks.trace_seed, r.id);
        {
          const obs::ScopedTraceContext tctx(root);
          NOCW_TRACE_SPAN_ARG(obs::kCatServe,
                              "serve.request:" + classes_[r.class_id].name,
                              obs::kPidServe,
                              static_cast<std::uint32_t>(r.class_id),
                              r.arrival_cycle, latency_cycles, "request",
                              static_cast<double>(r.id));
        }
        if (hooked) {
          obs::SloIngest ingest;
          if (hooks.slo != nullptr) {
            ingest = hooks.slo->on_complete(r.class_id, r.finish_cycle,
                                            latency_cycles, root.trace_id);
          }
          if (hooks.traces != nullptr) {
            // Batch geometry for the service span: the seed (j = 0) owns
            // the full-cost layout, followers serialize marginal slots
            // after it (batch cost = full + (n-1)*marginal).
            const std::uint64_t full =
                profiles_[flight->class_id].full_cycles.value();
            const std::uint64_t marginal =
                profiles_[flight->class_id].marginal_cycles.value();
            const std::uint64_t svc_start =
                j == 0 ? flight->start
                       : flight->start + full +
                             (static_cast<std::uint64_t>(j) - 1) * marginal;
            const std::uint64_t svc_dur = j == 0 ? full : marginal;
            TraceSeed seed;
            seed.request_id = r.id;
            seed.class_id = r.class_id;
            seed.marginal_layout = j > 0;
            seed.root = root;
            seed.arrival_cycle = r.arrival_cycle;
            seed.batch_start = flight->start;
            seed.svc_start = svc_start;
            seed.svc_dur = svc_dur;
            seed.finish_cycle = r.finish_cycle;
            seed.latency_cycles = latency_cycles;
            hooks.traces->ingest_complete(ingest, seed);
          }
        }
      }
      makespan = flight->finish;
      flight.reset();
    }

    if (flight.has_value()) {
      // Accelerator busy: jump to the next arrival or the batch finish,
      // whichever comes first.
      std::uint64_t next = flight->finish;
      if (next_arrival < arrivals.size()) {
        next = std::min(next, arrivals[next_arrival].cycle);
      }
      now = next;
      continue;
    }

    // (3) Accelerator idle.
    if (queue.empty()) {
      if (next_arrival >= arrivals.size()) break;  // drained
      now = arrivals[next_arrival].cycle;
      continue;
    }

    // The queue is in arrival order, so index 0 is the longest waiter; its
    // deadline bounds how long any batch formation may stall.
    const std::uint64_t deadline =
        queue.pending().front().arrival_cycle + max_wait;
    const bool no_more_arrivals = next_arrival >= arrivals.size();
    const bool start = queue.size() >= max_batch || now >= deadline ||
                       no_more_arrivals;
    if (!start) {
      std::uint64_t next = deadline;
      if (next_arrival < arrivals.size()) {
        next = std::min(next, arrivals[next_arrival].cycle);
      }
      now = next;
      continue;
    }

    // Dispatch: the scheduler seeds the batch, same-class requests join in
    // arrival order up to max_batch.
    const std::size_t seed_index = scheduler.pick(queue, classes_, profiles_);
    Flight f;
    f.requests.push_back(queue.take(seed_index));
    f.class_id = f.requests.front().class_id;
    std::size_t scan = 0;
    while (f.requests.size() < max_batch && scan < queue.size()) {
      if (queue.pending()[scan].class_id == f.class_id) {
        f.requests.push_back(queue.take(scan));
      } else {
        ++scan;
      }
    }
    const auto n = static_cast<std::uint64_t>(f.requests.size());
    const units::Cycles service = profiles_[f.class_id].batch_cycles(n);
    f.start = now;
    f.finish = now + service.value();
    for (Request& r : f.requests) r.start_cycle = now;
    ++batches;
    batched_requests += n;
    sample_depth(now);
    // The batch is attributed to its seed request's service span: the seed
    // owns the full-cost replay, so the accel/noc phase spans below land
    // re-parented under exactly the tree serve/reqtrace synthesizes for it.
    obs::TraceContext batch_ctx;
    if (hooked) {
      const obs::TraceContext seed_root =
          request_trace_context(hooks.trace_seed, f.requests.front().id);
      batch_ctx = obs::derive_child(seed_root, 2);
    }
    const obs::ScopedTraceContext batch_tctx(batch_ctx);
    NOCW_TRACE_SPAN_ARG(obs::kCatServe,
                        "serve.batch:" + classes_[f.class_id].name,
                        obs::kPidServe,
                        static_cast<std::uint32_t>(f.class_id), now,
                        service.value(), "requests", static_cast<double>(n));
    if (NOCW_TRACE_ON(obs::kCatServe)) {
      // Trace-only replay: stitch the accelerator's own layer/phase spans
      // inside this batch span on the serving timeline. Results are
      // discarded — timing always comes from the profiles — and simulation
      // is pure, so this cannot change any reported number.
      obs::ScopedTimeBase batch_base(obs::time_base() + now);
      const accel::CompressionPlan* plan =
          classes_[f.class_id].plan.empty() ? nullptr
                                            : &classes_[f.class_id].plan;
      (void)sim_.simulate(classes_[f.class_id].summary, plan);
    }
    flight = std::move(f);
  }

  // Close the monitor's final windows, then let the sink promote its
  // pending exemplar pins for them.
  if (hooks.slo != nullptr) hooks.slo->finish();
  if (hooks.traces != nullptr) hooks.traces->finish(trace_templates_);

  // Assemble per-class and aggregate statistics.
  ServeResult result;
  result.scheduler = std::string(scheduler.name());
  result.per_class.resize(classes_.size());
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    ClassServeStats& s = result.per_class[c];
    s.name = classes_[c].name;
    s.tenant = classes_[c].tenant;
    s.offered = offered[c];
    s.shed = queue.shed_for_class(c);
    s.admitted = s.offered - s.shed;
    s.completed = static_cast<std::uint64_t>(class_latency[c].size());
    s.shed_rate = s.offered > 0
                      ? static_cast<double>(s.shed) /
                            static_cast<double>(s.offered)
                      : 0.0;
    s.latency = tail_percentiles(class_latency[c]);
  }
  ClassServeStats& agg = result.aggregate;
  agg.name = "all";
  agg.tenant = -1;
  for (const ClassServeStats& s : result.per_class) {
    agg.offered += s.offered;
    agg.admitted += s.admitted;
    agg.shed += s.shed;
    agg.completed += s.completed;
  }
  agg.shed_rate = agg.offered > 0 ? static_cast<double>(agg.shed) /
                                        static_cast<double>(agg.offered)
                                  : 0.0;
  agg.latency = tail_percentiles(all_latency);
  result.batches = batches;
  result.mean_batch_size =
      batches > 0 ? static_cast<double>(batched_requests) /
                        static_cast<double>(batches)
                  : 0.0;
  result.makespan = units::Cycles{makespan};
  if (makespan > 0) {
    const units::Seconds secs = units::seconds_at(
        units::FracCycles{static_cast<double>(makespan)},
        cfg_.accel.noc.clock_ghz);
    result.goodput_rps =
        static_cast<double>(agg.completed) / secs.value();
  }
  result.check_invariants();
  return result;
}

}  // namespace nocw::serve
