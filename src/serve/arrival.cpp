#include "serve/arrival.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace nocw::serve {

namespace {

/// splitmix64 finalizer: full-avalanche mix of one 64-bit word.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Hash-stream salts: one per decision kind, so arrival sampling and MMPP
/// state transitions can never collide on the same counter.
constexpr std::uint64_t kSaltInterArrival = 0xA221;
constexpr std::uint64_t kSaltStateFlip = 0x57A7;

/// MMPP segment states, computed iteratively from segment 0 (still a pure
/// function of (seed, class, segment index); the walk just memoizes it).
class SegmentChain {
 public:
  SegmentChain(std::uint64_t seed, std::uint64_t class_id, double switch_p)
      : seed_(seed), class_id_(class_id), switch_p_(switch_p) {}

  /// True when `segment` is in the burst state.
  bool bursting(std::uint64_t segment) {
    while (known_ <= segment) {
      const double u = arrival_u01(
          arrival_hash(seed_, class_id_, known_, kSaltStateFlip));
      if (u < switch_p_) state_ = !state_;
      ++known_;
    }
    return states_at(segment);
  }

 private:
  bool states_at(std::uint64_t segment) {
    // The chain is consumed in non-decreasing segment order by the
    // generator; remember only the frontier plus the one queried state.
    NOCW_CHECK_LT(segment, known_);
    if (segment + 1 == known_) return state_;
    // Re-derive from scratch for out-of-order queries (tests only).
    bool s = false;
    for (std::uint64_t g = 0; g <= segment; ++g) {
      const double u =
          arrival_u01(arrival_hash(seed_, class_id_, g, kSaltStateFlip));
      if (u < switch_p_) s = !s;
    }
    return s;
  }

  std::uint64_t seed_;
  std::uint64_t class_id_;
  double switch_p_;
  bool state_ = false;  ///< segment -1 notionally calm
  std::uint64_t known_ = 0;
  };

}  // namespace

std::uint64_t arrival_hash(std::uint64_t seed, std::uint64_t a,
                           std::uint64_t b, std::uint64_t c) noexcept {
  // Distinct odd multipliers decorrelate the coordinates before the
  // finalizer; same construction as the fault-injection hash, different
  // constants so the two streams are independent even under equal seeds.
  std::uint64_t x = seed ^ 0x53525645u;  // "SRVE"
  x = mix64(x + a * 0x9e3779b97f4a7c15ull);
  x = mix64(x ^ (b * 0xc2b2ae3d27d4eb4full));
  x = mix64(x ^ (c * 0x165667b19e3779f9ull));
  return x;
}

double arrival_u01(std::uint64_t h) noexcept {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

std::vector<Arrival> generate_arrivals(std::span<const RequestClass> classes,
                                       const ArrivalConfig& cfg) {
  NOCW_CHECK_GT(cfg.horizon_cycles, 0u);
  NOCW_CHECK(std::isfinite(cfg.rate_per_mcycle));
  NOCW_CHECK_GE(cfg.rate_per_mcycle, 0.0);
  if (cfg.process == ArrivalProcess::kMmpp) {
    NOCW_CHECK_GT(cfg.burst_factor, 1.0);
    NOCW_CHECK_GT(cfg.segment_cycles, 0u);
    NOCW_CHECK_GE(cfg.switch_probability, 0.0);
    NOCW_CHECK_LE(cfg.switch_probability, 1.0);
  }

  double mix_total = 0.0;
  for (const RequestClass& c : classes) {
    NOCW_CHECK_GE(c.mix_fraction, 0.0);
    mix_total += c.mix_fraction;
  }

  std::vector<Arrival> out;
  if (mix_total <= 0.0 || cfg.rate_per_mcycle <= 0.0) return out;

  const double burst_scale =
      2.0 * cfg.burst_factor / (cfg.burst_factor + 1.0);
  const double calm_scale = 2.0 / (cfg.burst_factor + 1.0);

  for (std::size_t ci = 0; ci < classes.size(); ++ci) {
    const double rate_per_cycle = cfg.rate_per_mcycle *
                                  (classes[ci].mix_fraction / mix_total) /
                                  1e6;
    if (rate_per_cycle <= 0.0) continue;
    SegmentChain chain(cfg.seed, ci, cfg.switch_probability);
    double t = 0.0;
    for (std::uint64_t k = 0;; ++k) {
      double rate = rate_per_cycle;
      if (cfg.process == ArrivalProcess::kMmpp) {
        const auto segment =
            static_cast<std::uint64_t>(t) / cfg.segment_cycles;
        rate *= chain.bursting(segment) ? burst_scale : calm_scale;
      }
      const double u =
          arrival_u01(arrival_hash(cfg.seed, ci, k, kSaltInterArrival));
      // Exponential inter-arrival; 1-u avoids log(0) since u < 1.
      t += -std::log1p(-u) / rate;
      if (!(t < static_cast<double>(cfg.horizon_cycles))) break;
      out.push_back(Arrival{static_cast<std::uint64_t>(std::ceil(t)), ci, k});
    }
  }

  std::sort(out.begin(), out.end(), [](const Arrival& a, const Arrival& b) {
    if (a.cycle != b.cycle) return a.cycle < b.cycle;
    if (a.class_id != b.class_id) return a.class_id < b.class_id;
    return a.seq < b.seq;
  });
  return out;
}

}  // namespace nocw::serve
