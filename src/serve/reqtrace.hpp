// Request span trees and tail-based trace sampling for the serving layer.
//
// Every served request can be described as a span tree: a root span from
// arrival to completion, a queue-wait child, a service child covering the
// request's share of its batch, and under the service span the per-layer
// accelerator phases (DRAM fetch, NoC scatter/gather, MAC, decompress).
// Retaining that tree for *every* request would dwarf the results it
// explains, so the sink here samples tail-based: full trees are kept only
// for (a) the top-K completions by latency — the requests a p99/p99.9
// investigation actually opens — and (b) SLO window exemplars the
// obs::SloMonitor pins via its SloIngest protocol (the max-latency
// completion and first shed of every breached window). Everything else is
// counted, not stored.
//
// Trees are synthesized from per-class layer templates precomputed in the
// ServeSim constructor from the audited AcceleratorSim results — not
// scraped from the global tracer rings — so a tree is a pure function of
// (class profile, batch geometry, arrival cycle) and the export is
// bit-identical across NOCW_THREADS and immune to ring-buffer drops. Span
// ids follow the deterministic derivation of obs/trace_context: root ids
// minted by serve::request_trace_context (the [trace-ctx] lint boundary),
// child slots fixed by this file's layout (1 = queue wait, 2 = service,
// 3+i = layer i, phase children 1..4 under each layer).
//
// Exports: nocw.reqtrace.v1 line-wise JSON (one trace per line, hex ids
// matching the Perfetto args stamped by the live replay) and a
// TraceEvent conversion so one sampled tail request opens directly in
// ui.perfetto.dev.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "accel/simulator.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"
#include "obs/trace_context.hpp"

namespace nocw::serve {

/// One node of a request's span tree. Cycles are absolute (serving
/// timeline); ids follow obs/trace_context derivation.
struct ReqSpan {
  std::string name;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;  ///< 0 for the root
  std::uint64_t start_cycle = 0;
  std::uint64_t dur_cycles = 0;
};

/// A complete sampled tree. spans[0] is the root; its dur_cycles is the
/// request latency (0 for shed requests, which never started).
struct RequestTrace {
  std::uint64_t request_id = 0;
  std::size_t class_id = 0;
  std::string class_name;
  std::uint64_t root_trace_id = 0;
  std::uint64_t latency_cycles = 0;
  bool shed = false;
  std::vector<ReqSpan> spans;
};

/// One template span, relative to the service-span start. phase_slot: 0 =
/// the layer span itself, then its children 1 = dram, 2 = noc, 3 = mac,
/// 4 = decompress — the child-slot keys fed to obs::derive_child.
struct ReqSpanTemplate {
  std::string name;
  std::uint64_t start = 0;
  std::uint64_t dur = 0;
  std::size_t layer_index = 0;
  std::uint32_t phase_slot = 0;
};

/// Per-class span layouts: `full` for the batch seed (weights streamed),
/// `marginal` for follower positions (weights resident).
struct ClassTraceTemplate {
  std::string class_name;
  std::vector<ReqSpanTemplate> full;
  std::vector<ReqSpanTemplate> marginal;
};

/// Flatten one simulated inference into template spans, mirroring the
/// simulator's own phase-span layout (dram at 0, noc after the DRAM
/// phase, mac/decompress after the NoC phase, layers stacked by rounded
/// totals). `plan` marks which layers carry a decompress phase.
[[nodiscard]] std::vector<ReqSpanTemplate> layout_spans(
    const accel::InferenceResult& result, const accel::CompressionPlan* plan);

/// Everything needed to rebuild one request's tree later: a small POD, so
/// retaining a candidate during the serving loop costs a copy, never a
/// synthesis. `batch_start` ends the queue-wait span; `svc_start`/
/// `svc_dur` locate the request's share of the batch (seed: [batch start,
/// full); follower j: [start + full + (j-1)*marginal, marginal));
/// `marginal_layout` picks the matching template half.
struct TraceSeed {
  std::uint64_t request_id = 0;
  std::size_t class_id = 0;
  bool marginal_layout = false;
  bool shed = false;
  obs::TraceContext root;
  std::uint64_t arrival_cycle = 0;
  std::uint64_t batch_start = 0;
  std::uint64_t svc_start = 0;
  std::uint64_t svc_dur = 0;
  std::uint64_t finish_cycle = 0;
  std::uint64_t latency_cycles = 0;  ///< finish - arrival; 0 for sheds
};

/// Build a completed request's tree (seed.shed must be false).
[[nodiscard]] RequestTrace build_request_trace(const ClassTraceTemplate& tpl,
                                               const TraceSeed& seed);

/// Build a shed request's stub tree: zero-length root + shed marker
/// (seed.shed must be true).
[[nodiscard]] RequestTrace build_shed_trace(const ClassTraceTemplate& tpl,
                                            const TraceSeed& seed);

struct ReqTraceConfig {
  /// Top-K completions kept by (latency desc, request id asc).
  std::size_t tail_keep = 32;
  /// Bound on promoted window exemplars; overflow is counted, not stored.
  std::size_t exemplar_capacity = 256;
};

/// The retention policy: tail top-K plus SLO-pinned exemplars. Driven by
/// the serial ServeSim loop; deliberately not thread-safe.
///
/// Ingest stores seeds, never trees: the steady-state cost per completion
/// is one tail comparison plus (for candidates) a POD copy. Span trees are
/// synthesized once, in finish(), for exactly the retained set — which is
/// what keeps tracing-on under ext_reqtrace's <1% overhead gate even
/// though the phase-cached sweep itself is fast.
class RequestTraceSink {
 public:
  RequestTraceSink(std::size_t num_classes, const ReqTraceConfig& cfg = {});

  /// Ingest one completion (seed copied only when it is a tail candidate
  /// or its window's max so far).
  void ingest_complete(const obs::SloIngest& ingest, const TraceSeed& seed);
  /// Ingest one shed (seed copied only for the first shed of a window).
  void ingest_shed(const obs::SloIngest& ingest, const TraceSeed& seed);
  /// Promote the pending per-class pins (the monitor's final windows close
  /// without a follow-up event) and materialize every retained tree from
  /// the class templates. Call after SloMonitor::finish(); idempotent
  /// (the first call's templates win).
  void finish(std::span<const ClassTraceTemplate> templates);

  /// Retained tail, sorted by (latency desc, request id asc). Trees are
  /// materialized by finish(); empty before it.
  [[nodiscard]] const std::vector<RequestTrace>& tail() const noexcept {
    return tail_;
  }
  /// Promoted exemplar for a window's trace id, or nullptr (always, before
  /// finish()).
  [[nodiscard]] const RequestTrace* exemplar(
      std::uint64_t trace_id) const noexcept;
  [[nodiscard]] std::size_t exemplar_count() const noexcept {
    return exemplar_seeds_.size();
  }

  [[nodiscard]] std::uint64_t completions_seen() const noexcept {
    return completions_seen_;
  }
  [[nodiscard]] std::uint64_t sheds_seen() const noexcept {
    return sheds_seen_;
  }
  /// Completions whose tree is not in the final tail sample.
  [[nodiscard]] std::uint64_t dropped_trees() const noexcept {
    return completions_seen_ - static_cast<std::uint64_t>(tail_seeds_.size());
  }
  [[nodiscard]] std::uint64_t exemplar_drops() const noexcept {
    return exemplar_drops_;
  }

  /// Line-wise nocw.reqtrace.v1: one header object, then one trace per
  /// line (union of tail + exemplars, by request id), with hex ids.
  /// Requires finish().
  [[nodiscard]] std::string to_json() const;

 private:
  void promote_or_clear(std::size_t class_id, bool breached);
  void promote(std::optional<TraceSeed>& pending);
  [[nodiscard]] bool wants_tail(std::uint64_t latency_cycles,
                                std::uint64_t request_id) const;

  ReqTraceConfig cfg_;
  /// Max-heap under tail order while ingesting (front = eviction victim);
  /// sorted (latency desc, id asc) by finish().
  std::vector<TraceSeed> tail_seeds_;
  std::map<std::uint64_t, TraceSeed> exemplar_seeds_;  ///< by trace id
  std::vector<std::optional<TraceSeed>> pending_complete_;
  std::vector<std::optional<TraceSeed>> pending_shed_;
  /// Materialized by finish(), parallel to the seed containers.
  std::vector<RequestTrace> tail_;
  std::map<std::uint64_t, RequestTrace> exemplars_;
  bool finished_ = false;
  std::uint64_t completions_seen_ = 0;
  std::uint64_t sheds_seen_ = 0;
  std::uint64_t exemplar_drops_ = 0;
};

/// Convert one tree to Chrome-trace events (pid kPidServe, tid = request
/// id) for obs::to_chrome_json — the "open this tail request in Perfetto"
/// path.
[[nodiscard]] std::vector<obs::TraceEvent> to_trace_events(
    const RequestTrace& trace);

}  // namespace nocw::serve
