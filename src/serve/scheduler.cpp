#include "serve/scheduler.hpp"

#include "util/check.hpp"

namespace nocw::serve {

namespace {

class FifoScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "fifo";
  }
  [[nodiscard]] std::size_t pick(
      const AdmissionQueue& queue, std::span<const RequestClass> /*classes*/,
      std::span<const ServiceProfile> /*profiles*/) const override {
    NOCW_CHECK(!queue.empty());
    return 0;  // queue is in arrival order
  }
};

class SjfScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "sjf";
  }
  [[nodiscard]] std::size_t pick(
      const AdmissionQueue& queue, std::span<const RequestClass> /*classes*/,
      std::span<const ServiceProfile> profiles) const override {
    NOCW_CHECK(!queue.empty());
    const auto& pending = queue.pending();
    std::size_t best = 0;
    std::uint64_t best_cost =
        profiles[pending[0].class_id].full_cycles.value();
    for (std::size_t i = 1; i < pending.size(); ++i) {
      const std::uint64_t cost =
          profiles[pending[i].class_id].full_cycles.value();
      if (cost < best_cost) {  // strict: ties keep the oldest
        best = i;
        best_cost = cost;
      }
    }
    return best;
  }
};

class PriorityScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "priority";
  }
  [[nodiscard]] std::size_t pick(
      const AdmissionQueue& queue, std::span<const RequestClass> classes,
      std::span<const ServiceProfile> /*profiles*/) const override {
    NOCW_CHECK(!queue.empty());
    const auto& pending = queue.pending();
    std::size_t best = 0;
    double best_weight = classes[pending[0].class_id].tenant_weight;
    for (std::size_t i = 1; i < pending.size(); ++i) {
      const double w = classes[pending[i].class_id].tenant_weight;
      if (w > best_weight) {  // strict: equal weights keep the oldest
        best = i;
        best_weight = w;
      }
    }
    return best;
  }
};

}  // namespace

std::unique_ptr<Scheduler> make_scheduler(std::string_view name) {
  if (name == "fifo") return std::make_unique<FifoScheduler>();
  if (name == "sjf") return std::make_unique<SjfScheduler>();
  if (name == "priority") return std::make_unique<PriorityScheduler>();
  NOCW_CHECK(false && "unknown scheduler name (fifo|sjf|priority)");
  return nullptr;
}

std::vector<std::string> scheduler_names() {
  return {"fifo", "sjf", "priority"};
}

}  // namespace nocw::serve
