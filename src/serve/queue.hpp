// Bounded admission queue with typed rejection (load shedding).
//
// Admission is the only place the serving layer drops work, and it never
// does so silently: a rejected request returns a RejectReason and bumps a
// per-class shed counter. The queue holds requests in arrival order; the
// scheduler picks by index, so FIFO is "index of the oldest" and smarter
// policies scan the same window deterministically.
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <vector>

#include "serve/request.hpp"

namespace nocw::serve {

struct QueueConfig {
  std::size_t capacity = 64;  ///< max queued (not yet dispatched) requests
};

class AdmissionQueue {
 public:
  explicit AdmissionQueue(const QueueConfig& cfg, std::size_t num_classes);

  /// Admit `r` or return the typed reason it was shed. Shed requests are
  /// counted per class and in total.
  [[nodiscard]] std::optional<RejectReason> offer(const Request& r);

  /// Pending requests in arrival order (index 0 is the oldest).
  [[nodiscard]] const std::deque<Request>& pending() const noexcept {
    return pending_;
  }

  /// Remove and return the request at `index` (scheduler's pick).
  Request take(std::size_t index);

  [[nodiscard]] std::size_t size() const noexcept { return pending_.size(); }
  [[nodiscard]] bool empty() const noexcept { return pending_.empty(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  [[nodiscard]] std::uint64_t shed_total() const noexcept {
    return shed_total_;
  }
  [[nodiscard]] std::uint64_t shed_for_class(std::size_t class_id) const;

 private:
  std::size_t capacity_;
  std::deque<Request> pending_;
  std::vector<std::uint64_t> shed_per_class_;
  std::uint64_t shed_total_ = 0;
};

}  // namespace nocw::serve
