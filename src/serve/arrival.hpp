// Open-loop arrival generation: Poisson and bursty (MMPP) processes.
//
// Arrivals are *open loop*: the offered load never reacts to queueing or
// service state, which is what exposes tail latency under overload (a
// closed loop self-throttles and hides it). Every arrival time is derived
// from a counter-based hash in the style of noc::fault_hash — a pure
// function of (seed, class, counter) — so the generated timeline is
// identical for any thread count, iteration order, or repetition, and two
// schedulers can be compared on the *same* arrival sequence.
//
// The bursty process is a 2-state Markov-modulated Poisson process: time is
// cut into fixed dwell segments, each segment is calm or bursting according
// to a seeded two-state chain, and the arrival rate within a segment is the
// base rate scaled by 2f/(f+1) (burst) or 2/(f+1) (calm). With the
// symmetric chain the two states are equally likely, so the long-run mean
// rate equals the configured rate exactly — MMPP changes variance, not
// offered load.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "serve/request.hpp"

namespace nocw::serve {

enum class ArrivalProcess : std::uint8_t {
  kPoisson,  ///< exponential inter-arrivals at constant rate
  kMmpp,     ///< 2-state Markov-modulated Poisson (bursty)
};

[[nodiscard]] constexpr const char* to_string(ArrivalProcess p) noexcept {
  switch (p) {
    case ArrivalProcess::kPoisson:
      return "poisson";
    case ArrivalProcess::kMmpp:
      return "mmpp";
  }
  return "unknown";
}

struct ArrivalConfig {
  ArrivalProcess process = ArrivalProcess::kPoisson;
  /// Total offered rate across all classes, in requests per 1e6 cycles
  /// (a 1 GHz clock makes this requests per millisecond). Split across
  /// classes by their normalized mix_fractions.
  double rate_per_mcycle = 10.0;
  /// Generation stops at this cycle; the driver drains what arrived.
  std::uint64_t horizon_cycles = 10'000'000;
  std::uint64_t seed = 0x5E21;
  /// MMPP only: burst-state rate multiplier f > 1 (burst rate 2f/(f+1)x,
  /// calm rate 2/(f+1)x the class rate).
  double burst_factor = 4.0;
  /// MMPP only: dwell-segment length; each segment flips state with
  /// probability `switch_probability` (symmetric chain).
  std::uint64_t segment_cycles = 200'000;
  double switch_probability = 0.25;
};

/// One generated arrival. `seq` is the per-class counter that produced it
/// (stable across regenerations; useful for diagnostics).
struct Arrival {
  std::uint64_t cycle = 0;
  std::size_t class_id = 0;
  std::uint64_t seq = 0;
};

/// Counter-based uniform hash for arrival sampling: a pure function of
/// (seed, a, b, c), mirroring noc::fault_hash's role for fault decisions.
/// tools/lint.py keeps fault sampling inside noc/fault.cpp; serving has its
/// own primitive so the two stochastic domains can never share a stream.
[[nodiscard]] std::uint64_t arrival_hash(std::uint64_t seed, std::uint64_t a,
                                         std::uint64_t b,
                                         std::uint64_t c) noexcept;

/// Hash output -> uniform double in [0, 1) with 53-bit resolution.
[[nodiscard]] double arrival_u01(std::uint64_t h) noexcept;

/// Generate the merged arrival timeline for `classes` under `cfg`, sorted
/// by (cycle, class_id, seq). Classes with non-positive effective rate
/// contribute nothing. Pure: identical inputs give identical output on any
/// platform/thread count.
[[nodiscard]] std::vector<Arrival> generate_arrivals(
    std::span<const RequestClass> classes, const ArrivalConfig& cfg);

}  // namespace nocw::serve
