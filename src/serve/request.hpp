// Request-level serving types: classes, requests, service profiles.
//
// The serving layer (DESIGN.md §14) wraps the single-inference accelerator
// simulator in an open-loop request workload. A RequestClass names one
// (model, compression plan, tenant) combination offered to the accelerator;
// every in-flight Request carries only its class id and timeline stamps, so
// the hot event loop never copies model state.
//
// Service cost is precomputed per class as a ServiceProfile by running the
// audited AcceleratorSim twice: once cold (`full_cycles`: the weight stream
// is fetched and decompressed as in a standalone inference) and once with a
// resident-weights plan (`marginal_cycles`: weights already live in the PE
// local memories, only feature maps move and MACs run). A batch of n
// same-class requests then costs full + (n-1)*marginal — the amortization
// batching buys on this architecture is exactly the weight traffic the
// paper's compression attacks.
#pragma once

#include <cstdint>
#include <string>

#include "accel/simulator.hpp"
#include "accel/summary.hpp"
#include "util/units.hpp"

namespace nocw::serve {

/// One workload class: a model (pre-summarized; the serving layer never
/// touches live float math), an optional compression plan, and the tenant
/// it bills to. `mix_fraction`s across a class set describe how offered
/// load splits between them (normalized by the arrival generator).
struct RequestClass {
  std::string name;             ///< e.g. "lenet5_d8"
  int tenant = 0;               ///< tenant id for multi-tenant reporting
  double tenant_weight = 1.0;   ///< priority-scheduler weight (higher first)
  double mix_fraction = 1.0;    ///< share of total offered load
  accel::ModelSummary summary;  ///< symbolic layer volumes (owned copy)
  accel::CompressionPlan plan;  ///< empty = uncompressed weight stream
};

/// Precomputed service cost of one class on the configured accelerator.
struct ServiceProfile {
  units::Cycles full_cycles;      ///< cold inference (weights streamed)
  units::Cycles marginal_cycles;  ///< same-batch follow-up (weights resident)
  units::Joules full_energy_j;
  units::Joules marginal_energy_j;

  /// Cycles to serve a batch of `n` same-class requests back to back.
  [[nodiscard]] units::Cycles batch_cycles(std::uint64_t n) const {
    if (n == 0) return units::Cycles{0};
    return full_cycles + units::Cycles{(n - 1) * marginal_cycles.value()};
  }
};

/// Why the admission queue refused a request. Typed so load shedding is
/// counted per reason, never silently dropped.
enum class RejectReason : std::uint8_t {
  kQueueFull,  ///< bounded queue at capacity
};

[[nodiscard]] constexpr const char* to_string(RejectReason r) noexcept {
  switch (r) {
    case RejectReason::kQueueFull:
      return "queue_full";
  }
  return "unknown";
}

/// One in-flight request. Stamps are absolute cycles on the serving
/// timeline; start/finish stay zero until the scheduler dispatches it.
struct Request {
  std::uint64_t id = 0;        ///< unique per run, in arrival order
  std::size_t class_id = 0;    ///< index into the class set
  std::uint64_t arrival_cycle = 0;
  std::uint64_t start_cycle = 0;
  std::uint64_t finish_cycle = 0;
};

}  // namespace nocw::serve
