#include "serve/queue.hpp"

#include "util/check.hpp"

namespace nocw::serve {

AdmissionQueue::AdmissionQueue(const QueueConfig& cfg,
                               std::size_t num_classes)
    : capacity_(cfg.capacity), shed_per_class_(num_classes, 0) {
  NOCW_CHECK_GT(capacity_, 0u);
  NOCW_CHECK_GT(num_classes, 0u);
}

std::optional<RejectReason> AdmissionQueue::offer(const Request& r) {
  NOCW_CHECK_LT(r.class_id, shed_per_class_.size());
  if (pending_.size() >= capacity_) {
    ++shed_per_class_[r.class_id];
    ++shed_total_;
    return RejectReason::kQueueFull;
  }
  pending_.push_back(r);
  return std::nullopt;
}

Request AdmissionQueue::take(std::size_t index) {
  NOCW_CHECK_LT(index, pending_.size());
  Request r = pending_[index];
  pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(index));
  return r;
}

std::uint64_t AdmissionQueue::shed_for_class(std::size_t class_id) const {
  NOCW_CHECK_LT(class_id, shed_per_class_.size());
  return shed_per_class_[class_id];
}

}  // namespace nocw::serve
