#include "serve/reqtrace.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <utility>

#include "util/check.hpp"
#include "util/units.hpp"

namespace nocw::serve {

namespace {

std::string hex_id(std::uint64_t id) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(id));
  return std::string(buf);
}

std::uint64_t rounded(units::FracCycles cycles) {
  return units::round_cycles(cycles).value();
}

/// Tail order: worst latency first, then the earlier request — the order
/// a tail investigation reads them in, and a total order so the retained
/// set is independent of ingest order.
bool tail_before(const TraceSeed& a, const TraceSeed& b) {
  if (a.latency_cycles != b.latency_cycles) {
    return a.latency_cycles > b.latency_cycles;
  }
  return a.request_id < b.request_id;
}

RequestTrace materialize(const ClassTraceTemplate& tpl,
                         const TraceSeed& seed) {
  return seed.shed ? build_shed_trace(tpl, seed)
                   : build_request_trace(tpl, seed);
}

}  // namespace

std::vector<ReqSpanTemplate> layout_spans(const accel::InferenceResult& result,
                                          const accel::CompressionPlan* plan) {
  std::vector<ReqSpanTemplate> out;
  std::uint64_t clock = 0;
  for (std::size_t i = 0; i < result.layers.size(); ++i) {
    const accel::LayerResult& lr = result.layers[i];
    const std::uint64_t mem = rounded(lr.latency.memory_cycles);
    const std::uint64_t comm = rounded(lr.latency.comm_cycles);
    const std::uint64_t comp = rounded(lr.latency.compute_cycles);
    const std::uint64_t total = rounded(lr.latency.total());
    const std::uint64_t comm_off = mem + comm;
    const bool compressed =
        plan != nullptr && plan->find(lr.name) != plan->end();
    out.push_back({"layer:" + lr.name, clock, total, i, 0});
    out.push_back({"dram", clock, mem, i, 1});
    out.push_back({"noc", clock + mem, comm, i, 2});
    out.push_back({"mac", clock + comm_off, comp, i, 3});
    if (compressed) {
      out.push_back({"decompress", clock + comm_off, comp, i, 4});
    }
    clock += total;
  }
  return out;
}

RequestTrace build_request_trace(const ClassTraceTemplate& tpl,
                                 const TraceSeed& seed) {
  NOCW_CHECK(seed.root.valid());
  NOCW_CHECK(!seed.shed);
  RequestTrace t;
  t.request_id = seed.request_id;
  t.class_id = seed.class_id;
  t.class_name = tpl.class_name;
  t.root_trace_id = seed.root.trace_id;
  t.latency_cycles = seed.finish_cycle - seed.arrival_cycle;
  t.shed = false;

  const std::vector<ReqSpanTemplate>& layout =
      seed.marginal_layout ? tpl.marginal : tpl.full;
  t.spans.reserve(3 + layout.size());
  t.spans.push_back({"request:" + tpl.class_name, seed.root.span_id, 0,
                     seed.arrival_cycle, t.latency_cycles});
  const obs::TraceContext wait = obs::derive_child(seed.root, 1);
  t.spans.push_back({"queue_wait", wait.span_id, seed.root.span_id,
                     seed.arrival_cycle,
                     seed.batch_start - seed.arrival_cycle});
  const obs::TraceContext service = obs::derive_child(seed.root, 2);
  t.spans.push_back({"service", service.span_id, seed.root.span_id,
                     seed.svc_start, seed.svc_dur});

  for (const ReqSpanTemplate& s : layout) {
    const obs::TraceContext layer =
        obs::derive_child(service, 3 + s.layer_index);
    if (s.phase_slot == 0) {
      t.spans.push_back({s.name, layer.span_id, service.span_id,
                         seed.svc_start + s.start, s.dur});
    } else {
      const obs::TraceContext phase = obs::derive_child(layer, s.phase_slot);
      t.spans.push_back({s.name, phase.span_id, layer.span_id,
                         seed.svc_start + s.start, s.dur});
    }
  }
  return t;
}

RequestTrace build_shed_trace(const ClassTraceTemplate& tpl,
                              const TraceSeed& seed) {
  NOCW_CHECK(seed.root.valid());
  NOCW_CHECK(seed.shed);
  RequestTrace t;
  t.request_id = seed.request_id;
  t.class_id = seed.class_id;
  t.class_name = tpl.class_name;
  t.root_trace_id = seed.root.trace_id;
  t.latency_cycles = 0;
  t.shed = true;
  t.spans.push_back({"request:" + tpl.class_name, seed.root.span_id, 0,
                     seed.arrival_cycle, 0});
  const obs::TraceContext shed = obs::derive_child(seed.root, 1);
  t.spans.push_back({"shed", shed.span_id, seed.root.span_id,
                     seed.arrival_cycle, 0});
  return t;
}

RequestTraceSink::RequestTraceSink(std::size_t num_classes,
                                   const ReqTraceConfig& cfg)
    : cfg_(cfg),
      pending_complete_(num_classes),
      pending_shed_(num_classes) {
  NOCW_CHECK_GT(cfg_.tail_keep, 0u);
}

bool RequestTraceSink::wants_tail(std::uint64_t latency_cycles,
                                  std::uint64_t request_id) const {
  if (tail_seeds_.size() < cfg_.tail_keep) return true;
  // Heap front = the tail-order maximum = the worst-kept entry.
  const TraceSeed& worst_kept = tail_seeds_.front();
  if (latency_cycles != worst_kept.latency_cycles) {
    return latency_cycles > worst_kept.latency_cycles;
  }
  return request_id < worst_kept.request_id;
}

void RequestTraceSink::promote(std::optional<TraceSeed>& pending) {
  if (!pending.has_value()) return;
  const std::uint64_t key = pending->root.trace_id;
  if (exemplar_seeds_.size() < cfg_.exemplar_capacity ||
      exemplar_seeds_.count(key) > 0) {
    exemplar_seeds_.insert_or_assign(key, *pending);
  } else {
    ++exemplar_drops_;
  }
  pending.reset();
}

void RequestTraceSink::promote_or_clear(std::size_t class_id, bool breached) {
  if (breached) {
    promote(pending_complete_[class_id]);
    promote(pending_shed_[class_id]);
  } else {
    pending_complete_[class_id].reset();
    pending_shed_[class_id].reset();
  }
}

void RequestTraceSink::ingest_complete(const obs::SloIngest& ingest,
                                       const TraceSeed& seed) {
  NOCW_CHECK(seed.class_id < pending_complete_.size());
  ++completions_seen_;
  if (ingest.closed_window) {
    promote_or_clear(seed.class_id, ingest.closed_breached);
  }
  if (ingest.window_max) pending_complete_[seed.class_id] = seed;
  if (wants_tail(seed.latency_cycles, seed.request_id)) {
    // Max-heap under tail order, so the heap front is the next eviction
    // victim. Under overload latencies grow monotonically and nearly every
    // completion qualifies; a sorted vector would front-insert (a memmove
    // of the whole tail) each time, the heap costs O(log K) POD swaps.
    tail_seeds_.push_back(seed);
    std::push_heap(tail_seeds_.begin(), tail_seeds_.end(), tail_before);
    if (tail_seeds_.size() > cfg_.tail_keep) {
      std::pop_heap(tail_seeds_.begin(), tail_seeds_.end(), tail_before);
      tail_seeds_.pop_back();
    }
  }
}

void RequestTraceSink::ingest_shed(const obs::SloIngest& ingest,
                                   const TraceSeed& seed) {
  NOCW_CHECK(seed.class_id < pending_shed_.size());
  ++sheds_seen_;
  if (ingest.closed_window) {
    promote_or_clear(seed.class_id, ingest.closed_breached);
  }
  if (!pending_shed_[seed.class_id].has_value()) {
    pending_shed_[seed.class_id] = seed;
  }
}

void RequestTraceSink::finish(std::span<const ClassTraceTemplate> templates) {
  if (finished_) return;
  finished_ = true;
  // The monitor's final windows close inside SloMonitor::finish() with no
  // follow-up event to carry the verdict, so keep every pending pin: a
  // final breached window's exemplar must be resolvable.
  for (std::optional<TraceSeed>& p : pending_complete_) promote(p);
  for (std::optional<TraceSeed>& p : pending_shed_) promote(p);
  // Synthesize trees once, for exactly the retained set. The tail heap
  // becomes the sorted (latency desc, id asc) presentation order here.
  std::sort(tail_seeds_.begin(), tail_seeds_.end(), tail_before);
  tail_.reserve(tail_seeds_.size());
  for (const TraceSeed& s : tail_seeds_) {
    NOCW_CHECK(s.class_id < templates.size());
    tail_.push_back(materialize(templates[s.class_id], s));
  }
  for (const auto& [id, s] : exemplar_seeds_) {
    NOCW_CHECK(s.class_id < templates.size());
    exemplars_.emplace(id, materialize(templates[s.class_id], s));
  }
}

const RequestTrace* RequestTraceSink::exemplar(
    std::uint64_t trace_id) const noexcept {
  const auto it = exemplars_.find(trace_id);
  return it == exemplars_.end() ? nullptr : &it->second;
}

std::string RequestTraceSink::to_json() const {
  NOCW_CHECK(finished_);
  // Union of the tail sample and the promoted exemplars, one trace per
  // line, deduplicated by request and ordered by request id.
  struct Entry {
    const RequestTrace* trace = nullptr;
    bool tail = false;
    bool exemplar = false;
  };
  std::map<std::uint64_t, Entry> traces;
  for (const RequestTrace& t : tail_) {
    Entry& e = traces[t.request_id];
    e.trace = &t;
    e.tail = true;
  }
  for (const auto& [id, t] : exemplars_) {
    (void)id;
    Entry& e = traces[t.request_id];
    e.trace = &t;
    e.exemplar = true;
  }

  std::ostringstream os;
  os << "{\"schema\":\"nocw.reqtrace.v1\",\"tail_keep\":" << cfg_.tail_keep
     << ",\"completions\":" << completions_seen_
     << ",\"sheds\":" << sheds_seen_ << ",\"sampled\":" << tail_.size()
     << ",\"dropped_trees\":" << dropped_trees()
     << ",\"exemplars\":" << exemplars_.size()
     << ",\"exemplar_drops\":" << exemplar_drops_ << ",\"traces\":[\n";
  bool first = true;
  for (const auto& [id, entry] : traces) {
    (void)id;
    const RequestTrace& t = *entry.trace;
    if (!first) os << ",\n";
    first = false;
    os << "{\"trace\":\"" << hex_id(t.root_trace_id)
       << "\",\"request_id\":" << t.request_id
       << ",\"class_id\":" << t.class_id << ",\"class\":\"" << t.class_name
       << "\",\"latency_cycles\":" << t.latency_cycles
       << ",\"shed\":" << (t.shed ? "true" : "false")
       << ",\"tail\":" << (entry.tail ? "true" : "false")
       << ",\"exemplar\":" << (entry.exemplar ? "true" : "false")
       << ",\"spans\":[";
    bool sfirst = true;
    for (const ReqSpan& s : t.spans) {
      if (!sfirst) os << ",";
      sfirst = false;
      os << "{\"name\":\"" << s.name << "\",\"span\":\""
         << hex_id(s.span_id) << "\",\"parent\":\""
         << hex_id(s.parent_span_id) << "\",\"start\":" << s.start_cycle
         << ",\"dur\":" << s.dur_cycles << "}";
    }
    os << "]}";
  }
  os << "\n]}\n";
  return os.str();
}

std::vector<obs::TraceEvent> to_trace_events(const RequestTrace& trace) {
  std::vector<obs::TraceEvent> out;
  out.reserve(trace.spans.size());
  for (const ReqSpan& s : trace.spans) {
    obs::TraceEvent ev;
    ev.name = s.name;
    ev.ph = 'X';
    ev.cat = obs::kCatServe;
    ev.pid = obs::kPidServe;
    ev.tid = static_cast<std::uint32_t>(trace.request_id);
    ev.ts = s.start_cycle;
    ev.dur = s.dur_cycles;
    obs::stamp(ev, trace.root_trace_id, s.span_id, s.parent_span_id);
    out.push_back(std::move(ev));
  }
  return out;
}

}  // namespace nocw::serve
