// Root trace-id mint for the serving layer.
//
// Every request's span tree hangs off exactly one root TraceContext, and
// this helper is the only place allowed to construct one from scratch
// (tools/lint.py's [trace-ctx] rule pins TraceContext construction here and
// inside the obs trace plumbing). The root ids are derived from
// serve::arrival_hash — the same counter-based stream that times the
// arrivals — keyed by (trace seed, request id), so the whole id tree for a
// workload is a pure function of the sweep configuration: bit-identical
// across NOCW_THREADS, schedulers, and repeat runs, and stable enough to
// diff trace exports across commits.
#pragma once

#include <cstdint>

#include "obs/trace_context.hpp"

namespace nocw::serve {

/// Salt folded into arrival_hash for trace-id minting, disjoint from the
/// inter-arrival and MMPP state-flip salts so tracing can never perturb
/// the generated timeline.
inline constexpr std::uint64_t kSaltTraceId = 0x7201;

/// Mint the root context for `request_id` under `seed` (the sweep's trace
/// seed). trace_id and span_id are independent nonzero hashes; the root
/// has no parent (parent_span_id = 0).
[[nodiscard]] obs::TraceContext request_trace_context(
    std::uint64_t seed, std::uint64_t request_id) noexcept;

}  // namespace nocw::serve
