#include "quant/quantized_codec.hpp"

#include <algorithm>
#include <cmath>

namespace nocw::quant {

core::CompressedLayer compress_quantized(const QuantizedTensor& tensor,
                                         const QuantizedCodecConfig& cfg) {
  std::vector<float> codes(tensor.data.size());
  for (std::size_t i = 0; i < tensor.data.size(); ++i) {
    codes[i] = static_cast<float>(tensor.data[i]);
  }
  core::CodecConfig ccfg;
  ccfg.delta_percent = cfg.delta_percent;
  ccfg.coef_bits = cfg.coef_bits;
  ccfg.length_bits = cfg.length_bits;
  ccfg.weight_bits = 8;
  return core::compress(codes, ccfg);
}

QuantizedTensor decompress_quantized(const core::CompressedLayer& layer,
                                     const AffineParams& params) {
  const std::vector<float> codes = core::decompress(layer);
  QuantizedTensor out;
  out.params = params;
  out.data.resize(codes.size());
  for (std::size_t i = 0; i < codes.size(); ++i) {
    const float c = std::clamp(std::nearbyint(codes[i]), -128.0F, 127.0F);
    out.data[i] = static_cast<std::int8_t>(c);
  }
  return out;
}

}  // namespace nocw::quant
