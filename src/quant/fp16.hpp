// IEEE 754 binary16 (half precision) storage conversions.
//
// TFLite's milder quantization mode stores weights as fp16; we provide the
// same option so the Table III experiment can sweep representation width.
// Conversions are round-to-nearest-even and handle subnormals, inf and NaN.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace nocw::quant {

std::uint16_t float_to_half(float value) noexcept;
float half_to_float(std::uint16_t half) noexcept;

std::vector<std::uint16_t> to_half(std::span<const float> values);
std::vector<float> from_half(std::span<const std::uint16_t> halves);

/// Round-trip through fp16 (the approximation a half-precision store incurs).
std::vector<float> roundtrip_half(std::span<const float> values);

}  // namespace nocw::quant
