#include "quant/fp16.hpp"

#include <cstring>

namespace nocw::quant {

std::uint16_t float_to_half(float value) noexcept {
  std::uint32_t f;
  std::memcpy(&f, &value, sizeof(f));
  const std::uint32_t sign = (f >> 16) & 0x8000u;
  std::int32_t exp = static_cast<std::int32_t>((f >> 23) & 0xFF) - 127 + 15;
  std::uint32_t mant = f & 0x7FFFFFu;

  if (((f >> 23) & 0xFF) == 0xFF) {  // inf / NaN
    return static_cast<std::uint16_t>(sign | 0x7C00u | (mant ? 0x200u : 0u));
  }
  if (exp >= 0x1F) {  // overflow -> inf
    return static_cast<std::uint16_t>(sign | 0x7C00u);
  }
  if (exp <= 0) {  // subnormal or zero
    if (exp < -10) return static_cast<std::uint16_t>(sign);
    mant |= 0x800000u;  // implicit leading 1
    const unsigned shift = static_cast<unsigned>(14 - exp);
    std::uint32_t half_mant = mant >> shift;
    // round to nearest even
    const std::uint32_t rem = mant & ((1u << shift) - 1u);
    const std::uint32_t halfway = 1u << (shift - 1);
    if (rem > halfway || (rem == halfway && (half_mant & 1u))) ++half_mant;
    return static_cast<std::uint16_t>(sign | half_mant);
  }
  // normal number: keep top 10 mantissa bits with round-to-nearest-even
  std::uint32_t half = (static_cast<std::uint32_t>(exp) << 10) | (mant >> 13);
  const std::uint32_t rem = mant & 0x1FFFu;
  if (rem > 0x1000u || (rem == 0x1000u && (half & 1u))) ++half;  // may carry
  return static_cast<std::uint16_t>(sign | half);
}

float half_to_float(std::uint16_t half) noexcept {
  const std::uint32_t sign = (static_cast<std::uint32_t>(half) & 0x8000u) << 16;
  const std::uint32_t exp = (half >> 10) & 0x1Fu;
  std::uint32_t mant = half & 0x3FFu;
  std::uint32_t f;
  if (exp == 0) {
    if (mant == 0) {
      f = sign;  // signed zero
    } else {
      // subnormal: normalize
      int e = -1;
      do {
        ++e;
        mant <<= 1;
      } while ((mant & 0x400u) == 0);
      mant &= 0x3FFu;
      f = sign | (static_cast<std::uint32_t>(127 - 15 - e) << 23) | (mant << 13);
    }
  } else if (exp == 0x1F) {
    f = sign | 0x7F800000u | (mant << 13);  // inf / NaN
  } else {
    f = sign | ((exp - 15 + 127) << 23) | (mant << 13);
  }
  float out;
  std::memcpy(&out, &f, sizeof(out));
  return out;
}

std::vector<std::uint16_t> to_half(std::span<const float> values) {
  std::vector<std::uint16_t> out(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    out[i] = float_to_half(values[i]);
  }
  return out;
}

std::vector<float> from_half(std::span<const std::uint16_t> halves) {
  std::vector<float> out(halves.size());
  for (std::size_t i = 0; i < halves.size(); ++i) {
    out[i] = half_to_float(halves[i]);
  }
  return out;
}

std::vector<float> roundtrip_half(std::span<const float> values) {
  std::vector<float> out(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    out[i] = half_to_float(float_to_half(values[i]));
  }
  return out;
}

}  // namespace nocw::quant
