// Post-training affine (asymmetric) int8 quantization, TensorFlow-Lite style
// (paper Sec. IV-D): real_value = (int8_value - zero_point) * scale.
//
// This is the "hybrid 8-bit integer representation" the paper stacks its
// compression on top of in Table III. Parameters are chosen per tensor from
// the min/max of the data, exactly like the TFLite converter's weight path.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace nocw::quant {

struct AffineParams {
  float scale = 1.0F;
  std::int32_t zero_point = 0;

  [[nodiscard]] float dequantize(std::int8_t q) const noexcept {
    return static_cast<float>(static_cast<std::int32_t>(q) - zero_point) *
           scale;
  }

  [[nodiscard]] std::int8_t quantize(float real) const noexcept;
};

/// Choose per-tensor scale/zero-point so that [min(w), max(w)] maps onto
/// [-128, 127], always representing 0 exactly (required so zero padding and
/// pruned weights stay zero, as in TFLite).
AffineParams choose_params(std::span<const float> values);

/// A quantized weight tensor: the int8 payload plus its affine parameters.
struct QuantizedTensor {
  std::vector<std::int8_t> data;
  AffineParams params;

  [[nodiscard]] std::vector<float> dequantize() const;
};

QuantizedTensor quantize_tensor(std::span<const float> values);

/// Round-trip error of quantizing then dequantizing (mean squared).
double quantization_mse(std::span<const float> values);

}  // namespace nocw::quant
