#include "quant/affine.hpp"

#include <algorithm>
#include <cmath>

namespace nocw::quant {

std::int8_t AffineParams::quantize(float real) const noexcept {
  const float q = std::nearbyint(real / scale) + static_cast<float>(zero_point);
  const float clamped = std::clamp(q, -128.0F, 127.0F);
  return static_cast<std::int8_t>(clamped);
}

AffineParams choose_params(std::span<const float> values) {
  AffineParams p;
  if (values.empty()) return p;
  float lo = values[0];
  float hi = values[0];
  for (float v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  // The representable range must include 0 so that zero quantizes exactly.
  lo = std::min(lo, 0.0F);
  hi = std::max(hi, 0.0F);
  if (hi == lo) {
    p.scale = 1.0F;
    p.zero_point = 0;
    return p;
  }
  p.scale = (hi - lo) / 255.0F;
  // zero_point = the int8 code representing real 0, rounded and clamped.
  const float zp = -128.0F - lo / p.scale;
  p.zero_point =
      static_cast<std::int32_t>(std::clamp(std::nearbyint(zp), -128.0F, 127.0F));
  return p;
}

std::vector<float> QuantizedTensor::dequantize() const {
  std::vector<float> out(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    out[i] = params.dequantize(data[i]);
  }
  return out;
}

QuantizedTensor quantize_tensor(std::span<const float> values) {
  QuantizedTensor t;
  t.params = choose_params(values);
  t.data.resize(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    t.data[i] = t.params.quantize(values[i]);
  }
  return t;
}

double quantization_mse(std::span<const float> values) {
  const QuantizedTensor t = quantize_tensor(values);
  double acc = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    const double d = static_cast<double>(values[i]) -
                     static_cast<double>(t.params.dequantize(t.data[i]));
    acc += d * d;
  }
  return values.empty() ? 0.0 : acc / static_cast<double>(values.size());
}

}  // namespace nocw::quant
