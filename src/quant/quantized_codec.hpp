// Stacking the monotonic-segment codec on top of int8 quantization
// (paper Sec. IV-D / Table III).
//
// The compression operates on the *integer code* succession: quantization
// only remaps each weight through a monotone affine function, so the
// monotonic-segment structure the codec exploits is preserved — this is the
// orthogonality the paper demonstrates. Reconstructed codes are rounded and
// clamped back to int8 before dequantization. Defaults store the line
// coefficients in 16 bits (codes span only [-128, 127], so bfloat-style
// coefficients lose nothing that matters) and account the original
// representation at 8 bits/weight.
#pragma once

#include "core/codec.hpp"
#include "quant/affine.hpp"

namespace nocw::quant {

struct QuantizedCodecConfig {
  double delta_percent = 0.0;  ///< δ as % of the code range (max - min code)
  unsigned coef_bits = 16;
  unsigned length_bits = 8;
};

/// Compress the int8 code stream of `tensor`. The returned layer has
/// weight_bits = 8 so compression_ratio() is relative to the quantized size.
core::CompressedLayer compress_quantized(const QuantizedTensor& tensor,
                                         const QuantizedCodecConfig& cfg);

/// Reconstruct an int8 tensor (codes rounded to nearest, clamped) carrying
/// the original affine parameters.
QuantizedTensor decompress_quantized(const core::CompressedLayer& layer,
                                     const AffineParams& params);

}  // namespace nocw::quant
