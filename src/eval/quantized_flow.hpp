// Quantization + compression stacking flow (paper Sec. IV-D / Table III).
//
// Mirrors the TFLite hybrid path: every weight kernel is quantized to int8
// with per-tensor affine parameters; biases and BatchNorm statistics stay
// float32. The proposed compression then runs on the *int8 code stream* of
// the selected layer — the monotonic structure survives quantization, which
// is the orthogonality Table III demonstrates. Accuracy is measured against
// the float32 model's outputs (or labels, for the trained LeNet-5).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/codec.hpp"
#include "nn/digits.hpp"
#include "nn/models.hpp"
#include "quant/quantized_codec.hpp"

namespace nocw::eval {

struct QuantizedEvalConfig {
  int probes = 8;
  int topk = 5;
  std::uint64_t probe_seed = 4242;
  unsigned coef_bits = 16;   ///< codec coefficient width on int8 codes
  unsigned length_bits = 8;
};

struct QuantizedDeltaPoint {
  double delta_percent = 0.0;
  double weighted_cr = 0.0;  ///< whole model, float32 baseline vs QT+compressed
  double accuracy = 0.0;     ///< top-k vs the float32 model (or labels)
};

struct QuantizedBaseline {
  double weighted_cr = 0.0;  ///< QT alone (Table III "Weighted CR" column)
  double accuracy = 0.0;     ///< QT alone accuracy
};

class QuantizedDeltaEvaluator {
 public:
  /// Agreement mode (untrained zoo).
  QuantizedDeltaEvaluator(nn::Model& model, const QuantizedEvalConfig& cfg);
  /// Labeled mode (trained LeNet-5).
  QuantizedDeltaEvaluator(nn::Model& model, const nn::Dataset& test,
                          const QuantizedEvalConfig& cfg);
  ~QuantizedDeltaEvaluator();

  QuantizedDeltaEvaluator(const QuantizedDeltaEvaluator&) = delete;
  QuantizedDeltaEvaluator& operator=(const QuantizedDeltaEvaluator&) = delete;

  [[nodiscard]] const QuantizedBaseline& baseline() const noexcept {
    return baseline_;
  }

  /// Compress the selected layer's int8 codes at δ and measure the stacked
  /// accuracy / weighted CR.
  [[nodiscard]] QuantizedDeltaPoint evaluate(double delta_percent);

  [[nodiscard]] const std::string& selected_layer() const noexcept {
    return selected_name_;
  }

 private:
  void prepare(const nn::Tensor& inputs);

  nn::Model* model_;
  QuantizedEvalConfig cfg_;
  int selected_node_ = -1;
  std::string selected_name_;
  quant::QuantizedTensor selected_qt_;  ///< the selected layer's int8 codes
  nn::Tensor captured_;                 ///< input of the selected layer (QT model)
  nn::Tensor fp32_outputs_;             ///< float32 model outputs on probes
  std::vector<int> labels_;
  QuantizedBaseline baseline_;
  std::vector<float> original_weights_;  ///< fp32 weights of selected layer
  std::uint64_t model_fp32_bits_ = 0;
  std::uint64_t model_qt_bits_ = 0;      ///< whole model after quantization
  std::uint64_t selected_qt_bits_ = 0;   ///< selected layer's share of qt bits
};

}  // namespace nocw::eval
