#include "eval/flow.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "eval/layer_selection.hpp"
#include "eval/probes.hpp"
#include "nn/metrics.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace nocw::eval {

DeltaEvaluator::DeltaEvaluator(nn::Model& model, const EvalConfig& cfg)
    : model_(&model), cfg_(cfg) {
  const nn::Tensor probes = make_probes(
      cfg_.probes, model.input_size, model.input_channels, cfg_.probe_seed);
  prepare(probes);
  baseline_accuracy_ = 1.0;  // agreement with itself
}

DeltaEvaluator::DeltaEvaluator(nn::Model& model, const nn::Dataset& test,
                               const EvalConfig& cfg)
    : model_(&model), cfg_(cfg) {
  labels_ = test.labels;
  prepare(test.images);
  baseline_accuracy_ =
      nn::topk_accuracy(baseline_outputs_, labels_, cfg_.topk);
}

void DeltaEvaluator::prepare(const nn::Tensor& inputs) {
  selected_node_ = select_layer(*model_);
  selected_name_ = model_->graph.layer(selected_node_).name();
  const auto kernel = model_->graph.layer(selected_node_).kernel();
  selected_fraction_ =
      static_cast<double>(
          model_->graph.layer(selected_node_).param_count()) /
      static_cast<double>(model_->graph.total_params());
  original_weights_.assign(kernel.begin(), kernel.end());

  auto [outputs, captured] =
      model_->graph.forward_capturing(inputs, selected_node_);
  baseline_outputs_ = std::move(outputs);
  captured_ = std::move(captured);
}

DeltaPoint DeltaEvaluator::evaluate(double delta_percent) {
  ++evaluations_;
  return evaluate_on(model_->graph, delta_percent);
}

std::vector<DeltaPoint> DeltaEvaluator::evaluate_many(
    const std::vector<double>& delta_percents) {
  std::vector<DeltaPoint> points(delta_percents.size());
  ThreadPool& pool = global_pool();
  if (pool.size() <= 1 || ThreadPool::in_parallel_region() ||
      delta_percents.size() <= 1) {
    for (std::size_t i = 0; i < delta_percents.size(); ++i) {
      points[i] = evaluate(delta_percents[i]);
    }
    return points;
  }
  // Each lane replays the tail on its own replica; the caller's model is
  // only read (by clone()), never mutated, while the sweep runs.
  std::vector<std::unique_ptr<nn::Graph>> replicas(pool.size());
  pool.parallel_for(
      0, delta_percents.size(), /*grain=*/1,
      [&](std::size_t i0, std::size_t i1, unsigned lane) {
        auto& slot = replicas[lane];
        if (!slot) slot = std::make_unique<nn::Graph>(model_->graph.clone());
        for (std::size_t i = i0; i < i1; ++i) {
          points[i] = evaluate_on(*slot, delta_percents[i]);
        }
      });
  evaluations_ += delta_percents.size();
  NOCW_TRACE_INSTANT_ARG(obs::kCatEval, "delta_sweep", obs::kPidEval, 0,
                         evaluations_, "points",
                         static_cast<double>(delta_percents.size()));
  return points;
}

void DeltaEvaluator::annotate_registry(obs::Registry& reg,
                                       std::string_view prefix) const {
  const std::string base = std::string(prefix) + ".";
  reg.set_gauge(base + "baseline_accuracy", "fraction", baseline_accuracy_);
  reg.set_gauge(base + "selected_fraction", "fraction", selected_fraction_);
  reg.set_counter(base + "probes", "count",
                  static_cast<std::uint64_t>(cfg_.probes));
  reg.set_counter(base + "evaluations", "count", evaluations_);
}

void DeltaEvaluator::annotate_manifest(obs::RunManifest& m) const {
  if (m.model.empty()) m.model = model_->name;
  m.config["selected_layer"] = selected_name_;
  m.config["accuracy_mode"] = labels_.empty() ? "agreement" : "labeled";
  m.config["probes"] = std::to_string(cfg_.probes);
  m.config["topk"] = std::to_string(cfg_.topk);
  m.config["probe_seed"] = std::to_string(cfg_.probe_seed);
  m.metrics["eval.baseline_accuracy"] = baseline_accuracy_;
  m.metrics["eval.selected_fraction"] = selected_fraction_;
  m.metrics["eval.evaluations"] = static_cast<double>(evaluations_);
}

DeltaPoint DeltaEvaluator::evaluate_on(nn::Graph& graph,
                                       double delta_percent) const {
  DeltaPoint point;
  point.delta_percent = delta_percent;

  core::CodecConfig codec = cfg_.codec;
  codec.delta_percent = delta_percent;

  // Compress the original weights (never re-compress an approximation).
  const core::CompressedLayer compressed =
      core::compress(original_weights_, codec);
  point.report.delta_percent = delta_percent;
  point.report.cr = compressed.compression_ratio();
  point.report.weighted_cr =
      core::weighted_cr(point.report.cr, selected_fraction_);
  point.report.mem_fp_reduction =
      core::mem_footprint_reduction(point.report.cr, selected_fraction_);
  point.report.mse = compressed.mse();
  point.report.segment_count = compressed.segments.size();
  point.report.mean_segment_length = compressed.mean_segment_length();
  point.compression.compressed_bits = compressed.compressed_bits();
  point.compression.weight_count = compressed.original_count;

  // Install the approximated weights, replay the tail, restore.
  auto kernel = graph.layer(selected_node_).kernel();
  core::decompress(compressed, kernel);
  const nn::Tensor outputs = graph.forward_tail(captured_, selected_node_);
  std::copy(original_weights_.begin(), original_weights_.end(),
            kernel.begin());

  if (labels_.empty()) {
    point.accuracy =
        nn::mean_topk_agreement(baseline_outputs_, outputs, cfg_.topk);
  } else {
    point.accuracy = nn::topk_accuracy(outputs, labels_, cfg_.topk);
  }
  return point;
}

}  // namespace nocw::eval
