#include "eval/flow.hpp"

#include <algorithm>
#include <stdexcept>

#include "eval/layer_selection.hpp"
#include "eval/probes.hpp"
#include "nn/metrics.hpp"

namespace nocw::eval {

DeltaEvaluator::DeltaEvaluator(nn::Model& model, const EvalConfig& cfg)
    : model_(&model), cfg_(cfg) {
  const nn::Tensor probes = make_probes(
      cfg_.probes, model.input_size, model.input_channels, cfg_.probe_seed);
  prepare(probes);
  baseline_accuracy_ = 1.0;  // agreement with itself
}

DeltaEvaluator::DeltaEvaluator(nn::Model& model, const nn::Dataset& test,
                               const EvalConfig& cfg)
    : model_(&model), cfg_(cfg) {
  labels_ = test.labels;
  prepare(test.images);
  baseline_accuracy_ =
      nn::topk_accuracy(baseline_outputs_, labels_, cfg_.topk);
}

void DeltaEvaluator::prepare(const nn::Tensor& inputs) {
  selected_node_ = select_layer(*model_);
  selected_name_ = model_->graph.layer(selected_node_).name();
  const auto kernel = model_->graph.layer(selected_node_).kernel();
  selected_fraction_ =
      static_cast<double>(
          model_->graph.layer(selected_node_).param_count()) /
      static_cast<double>(model_->graph.total_params());
  original_weights_.assign(kernel.begin(), kernel.end());

  auto [outputs, captured] =
      model_->graph.forward_capturing(inputs, selected_node_);
  baseline_outputs_ = std::move(outputs);
  captured_ = std::move(captured);
}

DeltaPoint DeltaEvaluator::evaluate(double delta_percent) {
  DeltaPoint point;
  point.delta_percent = delta_percent;

  core::CodecConfig codec = cfg_.codec;
  codec.delta_percent = delta_percent;

  // Compress the original weights (never re-compress an approximation).
  const core::CompressedLayer compressed =
      core::compress(original_weights_, codec);
  point.report.delta_percent = delta_percent;
  point.report.cr = compressed.compression_ratio();
  point.report.weighted_cr =
      core::weighted_cr(point.report.cr, selected_fraction_);
  point.report.mem_fp_reduction =
      core::mem_footprint_reduction(point.report.cr, selected_fraction_);
  point.report.mse = compressed.mse();
  point.report.segment_count = compressed.segments.size();
  point.report.mean_segment_length = compressed.mean_segment_length();
  point.compression.compressed_bits = compressed.compressed_bits();
  point.compression.weight_count = compressed.original_count;

  // Install the approximated weights, replay the tail, restore.
  auto kernel = model_->graph.layer(selected_node_).kernel();
  core::decompress(compressed, kernel);
  const nn::Tensor outputs =
      model_->graph.forward_tail(captured_, selected_node_);
  std::copy(original_weights_.begin(), original_weights_.end(),
            kernel.begin());

  if (labels_.empty()) {
    point.accuracy =
        nn::mean_topk_agreement(baseline_outputs_, outputs, cfg_.topk);
  } else {
    point.accuracy = nn::topk_accuracy(outputs, labels_, cfg_.topk);
  }
  return point;
}

}  // namespace nocw::eval
